// Chaos suite for the self-healing control plane: availability-drift
// re-optimization drills, controller kills at every phase of the two-phase
// migration protocol (with byte-identical restores from whichever generation
// is live), crash recovery roll-forward/rollback, determinism under a fixed
// seed, proactive repair, and token-bucket pacing. The core contract: no
// matter where the controller dies, every object stays restorable with its
// error bound intact, and a restarted controller settles the journal.

#include <gtest/gtest.h>

#include <filesystem>

#include "rapids/control/controller.hpp"
#include "rapids/core/ft_optimizer.hpp"
#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/storage/fault_injector.hpp"

namespace rapids {
namespace {

namespace fs = std::filesystem;
using control::ControlOptions;
using control::Controller;
using control::MigrationPhase;
using control::MigrationPoint;
using control::MigrationRecord;
using mgard::Dims;

// The drill scenario every test here shares: objects are ingested under a
// tight parity budget (lean FT chains, so losing systems genuinely erodes
// the margin), then the operator responds to the incident by raising the
// budget — freed headroom the controller folds into its re-plan. Without
// that headroom Algorithm 1 is already pinned to the budget frontier and no
// amount of drift admits a better chain.
constexpr f64 kIngestBudget = 0.15;
constexpr f64 kRaisedBudget = 0.25;

core::PipelineConfig control_config(f64 overhead_budget = kIngestBudget) {
  core::PipelineConfig cfg;
  cfg.refactor.decomp_levels = 3;
  cfg.refactor.num_retrieval_levels = 4;
  cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  cfg.aco.iterations = 20;
  cfg.overhead_budget = overhead_budget;
  // Ground truth only: every restore must come off the storage systems, so a
  // half-migrated object can never hide behind a cached payload.
  cfg.restore_cache_bytes = 0;
  return cfg;
}

ControlOptions drill_options() {
  ControlOptions opt;
  opt.rate_bytes_per_s = 0.0;  // unlimited unless a test says otherwise
  opt.min_improvement = 0.01;
  opt.rescan_ticks = 0;  // event-driven only: deterministic tick counts
  return opt;
}

struct World {
  World(const std::string& tag, core::PipelineConfig cfg = control_config(),
        u64 cluster_seed = 42)
      : dir((fs::temp_directory_path() / ("rapids_ctl_chaos_" + tag)).string()),
        cluster(storage::ClusterConfig{16, 0.01, cluster_seed}) {
    fs::remove_all(dir);
    db = kv::Db::open(dir);
    pipeline = std::make_unique<core::RapidsPipeline>(cluster, *db, cfg);
  }
  ~World() {
    pipeline.reset();
    db.reset();
    fs::remove_all(dir);
  }

  /// Trip `system`'s breaker through the pipeline's health tracker — the
  /// same path a run of failed transfers takes, so the controller hears
  /// about it through its transition callback.
  void trip_breaker(u32 system) {
    auto& health = pipeline->system_health();
    for (u32 i = 0; i < 3; ++i) health.record_failure(system);
  }

  /// Reopen the pipeline over the same cluster and metadata store with a new
  /// overhead budget — the operator granting parity headroom mid-incident.
  void reopen_with_budget(f64 overhead_budget) {
    pipeline.reset();
    pipeline = std::make_unique<core::RapidsPipeline>(
        cluster, *db, control_config(overhead_budget));
  }

  std::string dir;
  storage::Cluster cluster;
  std::unique_ptr<kv::Db> db;
  std::unique_ptr<core::RapidsPipeline> pipeline;
};

void expect_bound_holds(const core::RestoreReport& report,
                        const std::vector<f32>& original) {
  ASSERT_FALSE(report.data.empty());
  const f64 err = data::relative_linf_error(original, report.data);
  EXPECT_LE(err, report.rel_error_bound);
}

TEST(ControlChaos, DriftReoptimizationRestoresAvailabilityMargin) {
  World w("drift");
  const Dims dims{17, 17, 9};
  const std::vector<std::string> names{"obj_a", "obj_b", "obj_c"};
  std::vector<std::vector<f32>> fields;
  for (u32 i = 0; i < names.size(); ++i) {
    fields.push_back(data::hurricane_pressure(dims, 10 + i));
    w.pipeline->prepare(fields[i], dims, names[i]);
  }
  std::vector<core::RestoreReport> baseline;
  for (const auto& name : names) baseline.push_back(w.pipeline->restore(name));

  w.reopen_with_budget(kRaisedBudget);
  Controller controller(*w.pipeline, drill_options());
  controller.mark_all_dirty();
  controller.tick();
  EXPECT_TRUE(controller.quiescent())
      << "headroom alone must not trigger: the margin is intact";
  EXPECT_EQ(controller.stats().migrations_started, 0u);

  // Two systems degrade hard after ingest; their breakers open and the
  // failure-prob estimates jump to the open-breaker floor.
  w.trip_breaker(2);
  w.trip_breaker(9);
  const auto probs = w.pipeline->failure_prob_estimates();
  ASSERT_GE(probs[2], 0.5);
  ASSERT_GE(probs[9], 0.5);

  // Stale achieved error before the controller reacts.
  std::vector<f64> stale_error(names.size());
  std::vector<f64> stale_avail(names.size());
  for (u32 i = 0; i < names.size(); ++i) {
    const auto rec = w.pipeline->snapshot_record(names[i]);
    ASSERT_TRUE(rec.has_value());
    core::FtProblem pr;
    pr.n = 16;
    pr.system_p = probs;
    pr.level_sizes = rec->level_sizes;
    for (u32 j = 0; j < rec->level_sizes.size(); ++j)
      pr.level_errors.push_back(rec->meta.rel_error_bound(j + 1));
    pr.original_size = rec->meta.original_bytes();
    pr.overhead_budget = w.pipeline->config().overhead_budget;
    stale_error[i] = core::ft_evaluate(pr, rec->ft).expected_error;
    stale_avail[i] = core::ft_level_availability(probs, rec->ft[0]);
    EXPECT_GT(stale_error[i], rec->planned_error * 1.25)
        << "drill premise: drift must erode the margin for " << names[i];
  }

  const u32 ticks = controller.run_until_quiescent();
  EXPECT_GT(ticks, 0u);
  EXPECT_TRUE(controller.quiescent());
  EXPECT_GE(controller.stats().breaker_events, 2u);
  EXPECT_GE(controller.stats().migrations_started, 1u);
  EXPECT_EQ(controller.stats().migrations_started,
            controller.stats().migrations_completed);
  EXPECT_GT(controller.stats().bytes_migrated, 0u);
  EXPECT_GT(controller.stats().repairs, 0u) << "proactive evacuation ran";

  // Every object's evaluated availability and expected error are back
  // within the plan's margin under the *drifted* estimates, and every
  // restore is byte-identical with its bound intact.
  const auto probs_after = w.pipeline->failure_prob_estimates();
  for (u32 i = 0; i < names.size(); ++i) {
    const auto rec = w.pipeline->snapshot_record(names[i]);
    ASSERT_TRUE(rec.has_value());
    core::FtProblem pr;
    pr.n = 16;
    pr.system_p = probs_after;
    pr.level_sizes = rec->level_sizes;
    for (u32 j = 0; j < rec->level_sizes.size(); ++j)
      pr.level_errors.push_back(rec->meta.rel_error_bound(j + 1));
    pr.original_size = rec->meta.original_bytes();
    pr.overhead_budget = w.pipeline->config().overhead_budget;
    const f64 achieved = core::ft_evaluate(pr, rec->ft).expected_error;
    EXPECT_LE(achieved, rec->planned_error * 1.25 + 1e-15)
        << names[i] << " still out of margin";
    EXPECT_LE(achieved, stale_error[i]) << names[i];
    const f64 avail = core::ft_level_availability(probs_after, rec->ft[0]);
    EXPECT_GE(avail, stale_avail[i]) << names[i];

    const auto report = w.pipeline->restore(names[i]);
    EXPECT_EQ(report.levels_used, 4u);
    EXPECT_EQ(report.data, baseline[i].data) << names[i];
    expect_bound_holds(report, fields[i]);
  }
}

// One migration driven to a specific phase point, killed there, verified
// restorable, then finished by a fresh controller — the crash drill run at
// every interruption point of the two-phase protocol.
void run_kill_drill(MigrationPoint kill_at, const std::string& tag) {
  SCOPED_TRACE("kill point " + tag);
  World w("kill_" + tag);
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 23);
  w.pipeline->prepare(field, dims, "obj");
  const auto baseline = w.pipeline->restore("obj");
  ASSERT_EQ(baseline.levels_used, 4u);
  const auto rec0 = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(rec0.has_value());

  w.reopen_with_budget(kRaisedBudget);
  auto controller = std::make_unique<Controller>(*w.pipeline, drill_options());
  controller->set_crash_hook(
      [kill_at](const MigrationRecord&, MigrationPoint p) {
        return p != kill_at;
      });
  w.trip_breaker(2);
  w.trip_breaker(9);
  (void)controller->run_until_quiescent();
  ASSERT_TRUE(controller->halted()) << "drill never reached the kill point";
  ASSERT_GE(controller->stats().migrations_started, 1u);
  EXPECT_EQ(controller->stats().migrations_completed, 0u);

  // The kill leaves a non-terminal journal entry (except at kDone, where
  // the halt landed after the terminal update)...
  const auto mid_journal = controller->journal_scan();
  ASSERT_GE(mid_journal.size(), 1u);

  // ...and whichever generation is live must restore byte-identically.
  const auto mid = w.pipeline->restore("obj");
  EXPECT_EQ(mid.levels_used, 4u);
  EXPECT_EQ(mid.data, baseline.data);
  expect_bound_holds(mid, field);

  // Process restart: a fresh controller recovers from the journal alone.
  controller.reset();
  Controller revived(*w.pipeline, drill_options());
  (void)revived.run_until_quiescent();
  EXPECT_TRUE(revived.quiescent());

  // Every journal entry is terminal and the object's migration finished.
  bool migrated = false;
  for (const auto& entry : revived.journal_scan()) {
    EXPECT_TRUE(entry.terminal()) << "seq " << entry.seq;
    if (entry.object == "obj" && entry.phase == MigrationPhase::kDone)
      migrated = true;
  }
  EXPECT_TRUE(migrated);

  const auto rec1 = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(rec1.has_value());
  EXPECT_GT(rec1->generation, rec0->generation);
  EXPECT_NE(rec1->ft, rec0->ft);

  // The old generation's fragments are gone from every system.
  const std::string old_prefix =
      "frag/" + core::generation_storage_name(
                    "obj", rec0->generation) + "/";
  for (u32 s = 0; s < w.cluster.size(); ++s)
    EXPECT_TRUE(w.cluster.system(s).keys_with_prefix(old_prefix).empty())
        << "system " << s;

  const auto final_restore = w.pipeline->restore("obj");
  EXPECT_EQ(final_restore.levels_used, 4u);
  EXPECT_EQ(final_restore.data, baseline.data);
  expect_bound_holds(final_restore, field);
}

TEST(ControlChaos, KillAfterLevelStoreRestoresAndResumes) {
  run_kill_drill(MigrationPoint::kAfterLevelStore, "after_level_store");
}

TEST(ControlChaos, KillAtNewWrittenRestoresAndResumes) {
  run_kill_drill(MigrationPoint::kNewWritten, "new_written");
}

TEST(ControlChaos, KillAfterFlipRollsForwardFromRecordGeneration) {
  run_kill_drill(MigrationPoint::kAfterFlip, "after_flip");
}

TEST(ControlChaos, KillAtFlippedFinishesGc) {
  run_kill_drill(MigrationPoint::kFlipped, "flipped");
}

TEST(ControlChaos, KillAfterGcClosesJournal) {
  run_kill_drill(MigrationPoint::kAfterGc, "after_gc");
}

TEST(ControlChaos, SameSeedSameMigrationSchedule) {
  struct Run {
    std::vector<MigrationRecord> journal;
    u64 migrations = 0;
    u64 bytes = 0;
    u64 evaluations = 0;
    u32 ticks = 0;
  };
  const auto run_once = [](const std::string& tag) {
    World w(tag);
    const Dims dims{17, 17, 9};
    for (u32 i = 0; i < 3; ++i)
      w.pipeline->prepare(data::scale_temperature(dims, 30 + i), dims,
                          "obj" + std::to_string(i));
    w.reopen_with_budget(kRaisedBudget);
    Controller controller(*w.pipeline, drill_options());
    w.trip_breaker(5);
    w.trip_breaker(11);
    Run out;
    out.ticks = controller.run_until_quiescent();
    out.journal = controller.journal_scan();
    out.migrations = controller.stats().migrations_started;
    out.bytes = controller.stats().bytes_migrated;
    out.evaluations = controller.stats().evaluations;
    return out;
  };

  const Run a = run_once("det_a");
  const Run b = run_once("det_b");
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (std::size_t i = 0; i < a.journal.size(); ++i) {
    EXPECT_EQ(a.journal[i].seq, b.journal[i].seq);
    EXPECT_EQ(a.journal[i].object, b.journal[i].object);
    EXPECT_EQ(a.journal[i].old_ft, b.journal[i].old_ft);
    EXPECT_EQ(a.journal[i].new_ft, b.journal[i].new_ft);
    EXPECT_EQ(a.journal[i].phase, b.journal[i].phase);
    EXPECT_DOUBLE_EQ(a.journal[i].planned_error, b.journal[i].planned_error);
  }
}

TEST(ControlChaos, PersistentStoreFailureRollsBackAndOldDataSurvives) {
  World w("rollback");
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 41);
  w.pipeline->prepare(field, dims, "obj");
  const auto baseline = w.pipeline->restore("obj");

  w.reopen_with_budget(kRaisedBudget);
  ControlOptions opt = drill_options();
  opt.max_migration_attempts = 2;
  Controller controller(*w.pipeline, opt);
  w.trip_breaker(2);
  w.trip_breaker(9);

  // Every put on every system now fails: phase 1 cannot make progress, so
  // after max_migration_attempts the migration must roll back.
  storage::FaultInjector injector;
  storage::FaultSpec spec;
  spec.put_fail_prob = 1.0;
  spec.seed = 99;
  injector.set_all(w.cluster.size(), spec);
  injector.install(w.cluster);

  (void)controller.run_until_quiescent(512);
  EXPECT_GE(controller.stats().migrations_rolled_back, 1u);
  EXPECT_EQ(controller.stats().migrations_completed, 0u);

  storage::FaultInjector::uninstall(w.cluster);

  // The object still serves generation 0 and restores byte-identically; no
  // half-written new-generation fragments linger anywhere.
  const auto rec = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->generation, 0u);
  for (const auto& entry : controller.journal_scan()) {
    if (entry.object == "obj") {
      EXPECT_NE(entry.phase, MigrationPhase::kDone);
    }
  }
  for (u32 s = 0; s < w.cluster.size(); ++s)
    EXPECT_TRUE(w.cluster.system(s).keys_with_prefix("frag/obj@g").empty())
        << "system " << s;
  const auto report = w.pipeline->restore("obj");
  EXPECT_EQ(report.data, baseline.data);
  expect_bound_holds(report, field);
}

TEST(ControlChaos, TokenBucketPacesMigrationTraffic) {
  const auto run_once = [](f64 rate, f64 burst, u64* waits) {
    World w("pace_" + std::to_string(static_cast<u64>(rate)));
    const Dims dims{17, 17, 9};
    const auto field = data::hurricane_pressure(dims, 55);
    w.pipeline->prepare(field, dims, "obj");
    w.reopen_with_budget(kRaisedBudget);
    ControlOptions opt;
    opt.min_improvement = 0.01;
    opt.rescan_ticks = 0;
    opt.rate_bytes_per_s = rate;
    opt.burst_bytes = burst;
    Controller controller(*w.pipeline, opt);
    w.trip_breaker(2);
    w.trip_breaker(9);
    const u32 ticks = controller.run_until_quiescent(4096);
    EXPECT_GE(controller.stats().migrations_completed, 1u);
    *waits = controller.stats().rate_limited_waits;
    return ticks;
  };

  u64 waits_unlimited = 0, waits_limited = 0;
  const u32 ticks_unlimited = run_once(0.0, 0.0, &waits_unlimited);
  // Tight budget: the burst barely covers one level's traffic, so the bucket
  // must refill between level steps, stretching the migration over many more
  // ticks — background pacing in action.
  const u32 ticks_limited = run_once(2.0 * 1024, 8.0 * 1024, &waits_limited);
  EXPECT_EQ(waits_unlimited, 0u);
  EXPECT_GT(waits_limited, 0u);
  EXPECT_GT(ticks_limited, ticks_unlimited);
}

}  // namespace
}  // namespace rapids
