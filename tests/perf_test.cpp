// Tests for the performance models: calibration produces sane rates, the
// scaling model has the right qualitative shape (Amdahl + caps), and the
// accelerator model applies the paper's speedups deterministically.

#include <gtest/gtest.h>

#include "rapids/perf/accelerator_model.hpp"
#include "rapids/perf/calibration.hpp"
#include "rapids/perf/scaling_model.hpp"

namespace rapids::perf {
namespace {

const Calibration& cal() {
  static const Calibration c = calibrate(CalibrationOptions{33, 1 << 20, 4 << 20, 7});
  return c;
}

TEST(Calibration, AllRatesPositive) {
  const auto& c = cal();
  EXPECT_GT(c.read_bps, 0.0);
  EXPECT_GT(c.write_bps, 0.0);
  EXPECT_GT(c.refactor_bps, 0.0);
  EXPECT_GT(c.reconstruct_bps, 0.0);
  EXPECT_GT(c.ec_encode_bps, 0.0);
  EXPECT_GT(c.ec_decode_bps, 0.0);
}

TEST(Calibration, RefactorSlowerThanEc) {
  // The paper's premise for Table 4: the multigrid refactorer costs several
  // times more compute per byte than RS erasure coding.
  const auto& c = cal();
  EXPECT_LT(c.refactor_bps, c.ec_encode_bps);
}

TEST(Calibration, IoFasterThanRefactor) {
  const auto& c = cal();
  EXPECT_GT(c.read_bps, c.refactor_bps);
}

TEST(Calibration, CachedReturnsSameObject) {
  const auto& a = cached_calibration();
  const auto& b = cached_calibration();
  EXPECT_EQ(&a, &b);
}

TEST(ScalingModel, SingleCoreMatchesCalibration) {
  const ClusterModel model(cal());
  const u64 bytes = 1 << 30;
  EXPECT_NEAR(model.op_seconds(Op::kRefactor, bytes, 1),
              static_cast<f64>(bytes) / cal().refactor_bps,
              static_cast<f64>(bytes) / cal().refactor_bps * 0.01);
}

TEST(ScalingModel, ComputeOpsScaleNearlyLinearly) {
  const ClusterModel model(cal());
  const u64 bytes = u64{1} << 40;
  const f64 t64 = model.op_seconds(Op::kRefactor, bytes, 64);
  const f64 t1024 = model.op_seconds(Op::kRefactor, bytes, 1024);
  const f64 speedup = t64 / t1024;
  EXPECT_GT(speedup, 8.0);   // strong scaling from 64 to 1024 cores
  EXPECT_LE(speedup, 16.0);  // bounded by the core ratio
}

TEST(ScalingModel, IoOpsHitAggregateCap) {
  const ClusterModel model(cal());
  const u64 bytes = u64{1} << 44;  // 16 TB
  const f64 t256 = model.op_seconds(Op::kRead, bytes, 256);
  const f64 t4096 = model.op_seconds(Op::kRead, bytes, 4096);
  // Far beyond the cap more cores stop helping.
  EXPECT_LT(t256 / t4096, 4.0);
  // And the floor is the cap rate.
  const f64 cap = model.scaling(Op::kRead).aggregate_cap_bps;
  EXPECT_GE(t4096, static_cast<f64>(bytes) / cap * 0.99);
}

TEST(ScalingModel, MoreCoresNeverSlower) {
  const ClusterModel model(cal());
  const u64 bytes = u64{1} << 38;
  for (Op op : {Op::kRefactor, Op::kReconstruct, Op::kEcEncode, Op::kRead}) {
    f64 prev = 1e300;
    for (u32 cores : {1u, 32u, 64u, 256u, 1024u}) {
      const f64 t = model.op_seconds(op, bytes, cores);
      ASSERT_LE(t, prev * (1 + 1e-9)) << "cores=" << cores;
      prev = t;
    }
  }
}

TEST(ScalingModel, SetScalingOverrides) {
  ClusterModel model(cal());
  model.set_scaling(Op::kRefactor, OpScaling{0.5, 0.0, 0.0});
  const u64 bytes = 1 << 30;
  // 50% serial: infinite cores still pay half the single-core time.
  const f64 t1 = model.op_seconds(Op::kRefactor, bytes, 1);
  const f64 tmany = model.op_seconds(Op::kRefactor, bytes, 1u << 20);
  EXPECT_GT(tmany, 0.49 * t1);
}

TEST(ScalingModel, ZeroCoresRejected) {
  const ClusterModel model(cal());
  EXPECT_THROW(model.op_seconds(Op::kRefactor, 100, 0), invariant_error);
}

TEST(Accelerator, SpeedupsNearPaperMeans) {
  const AcceleratorModel gpu(cal());
  f64 rf_sum = 0.0, rc_sum = 0.0;
  const std::vector<std::string> names = {"a", "b", "c", "d", "e", "f"};
  for (const auto& n : names) {
    const f64 rf = gpu.refactor_speedup(n);
    const f64 rc = gpu.reconstruct_speedup(n);
    EXPECT_GT(rf, 3.7 * 0.84);
    EXPECT_LT(rf, 3.7 * 1.16);
    EXPECT_GT(rc, 20.3 * 0.84);
    EXPECT_LT(rc, 20.3 * 1.16);
    rf_sum += rf;
    rc_sum += rc;
  }
  EXPECT_NEAR(rf_sum / names.size(), 3.7, 0.5);
  EXPECT_NEAR(rc_sum / names.size(), 20.3, 2.5);
}

TEST(Accelerator, DeterministicPerObject) {
  const AcceleratorModel gpu(cal());
  EXPECT_EQ(gpu.refactor_speedup("NYX:temperature"),
            gpu.refactor_speedup("NYX:temperature"));
  EXPECT_NE(gpu.refactor_speedup("NYX:temperature"),
            gpu.refactor_speedup("SCALE:T"));
}

TEST(Accelerator, ThroughputsScaleFromCpu) {
  const AcceleratorModel gpu(cal());
  EXPECT_NEAR(gpu.gpu_refactor_bps("x"),
              gpu.cpu_refactor_bps() * gpu.refactor_speedup("x"), 1e-6);
  EXPECT_GT(gpu.gpu_reconstruct_bps("x"), gpu.cpu_reconstruct_bps() * 15.0);
}

}  // namespace
}  // namespace rapids::perf
