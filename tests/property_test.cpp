// Property sweeps across the model space, heavier than the per-module unit
// tests: availability formulas vs Monte Carlo across failure probabilities,
// exhaustive any-k-of-n recovery for small RS geometries, refactorer bound
// guarantees across every generator and option combination, and WAN-model
// dominance on random instances.

#include <gtest/gtest.h>

#include <numeric>

#include "rapids/core/availability.hpp"
#include "rapids/core/ft_optimizer.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/ec/reed_solomon.hpp"
#include "rapids/mgard/refactorer.hpp"
#include "rapids/net/transfer_sim.hpp"
#include "rapids/storage/failure.hpp"

namespace rapids {
namespace {

// --- availability math vs Monte Carlo across p ---

class AvailabilitySweep : public ::testing::TestWithParam<f64> {};

TEST_P(AvailabilitySweep, EcFormulaMatchesMonteCarlo) {
  const f64 p = GetParam();
  const u32 n = 16, m = 3;
  storage::Cluster cluster(storage::ClusterConfig{n, p, 99});
  const f64 mc = storage::monte_carlo_expectation(
      cluster, 200000, 7, [&](const std::vector<bool>& outage) {
        u32 down = 0;
        for (bool b : outage) down += b;
        return down > m ? 1.0 : 0.0;
      });
  const f64 analytic = core::ec_unavailability(n, m, p);
  EXPECT_NEAR(mc, analytic, std::max(analytic * 0.25, 2e-4)) << "p=" << p;
}

TEST_P(AvailabilitySweep, WindowsSumToOne) {
  const f64 p = GetParam();
  const u32 n = 16;
  const core::FtConfig m = {7, 5, 3, 1};
  f64 total = core::binomial_range(n, m[0] + 1, n, p);  // loss window
  total += core::binomial_range(n, 0, m[3], p);         // full-quality window
  for (u32 j = 0; j + 1 < m.size(); ++j)
    total += core::level_window_probability(n, m[j], m[j + 1], p);
  EXPECT_NEAR(total, 1.0, 1e-10) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(FailureProbabilities, AvailabilitySweep,
                         ::testing::Values(0.001, 0.01, 0.052, 0.1, 0.2),
                         [](const auto& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 1000));
                         });

// --- exhaustive RS recovery for small geometries ---

TEST(RsExhaustive, EverySurvivorSubsetRecovers) {
  // For k+m <= 9, try *every* C(k+m, k) survivor combination.
  Rng rng(13);
  for (const auto [k, m] : {std::pair<u32, u32>{2, 2}, {3, 3}, {4, 4}, {5, 3},
                            {6, 2}, {3, 6}}) {
    const ec::ReedSolomon rs(k, m);
    std::vector<u8> data(777);
    for (auto& b : data) b = static_cast<u8>(rng.next_u64());
    const auto frags = rs.encode(data, "exhaustive", 0);
    const u32 n = k + m;
    // Enumerate k-subsets via bitmask.
    u32 checked = 0;
    for (u32 mask = 0; mask < (1u << n); ++mask) {
      if (static_cast<u32>(__builtin_popcount(mask)) != k) continue;
      std::vector<ec::Fragment> survivors;
      for (u32 i = 0; i < n; ++i)
        if (mask & (1u << i)) survivors.push_back(frags[i]);
      ASSERT_EQ(rs.decode(survivors), data)
          << "k=" << k << " m=" << m << " mask=" << mask;
      ++checked;
    }
    EXPECT_GT(checked, 0u);
  }
}

TEST(RsExhaustive, EveryMissingFragmentRepairable) {
  const ec::ReedSolomon rs(5, 4);
  Rng rng(14);
  std::vector<u8> data(1024);
  for (auto& b : data) b = static_cast<u8>(rng.next_u64());
  const auto frags = rs.encode(data, "repair", 1);
  for (u32 missing = 0; missing < rs.n(); ++missing) {
    std::vector<ec::Fragment> survivors;
    for (const auto& f : frags)
      if (f.id.index != missing) survivors.push_back(f);
    const auto rebuilt = rs.reconstruct_fragment(survivors, missing);
    ASSERT_EQ(rebuilt.payload, frags[missing].payload) << missing;
  }
}

// --- refactorer guarantees across the whole catalog ---

struct CatalogCase {
  const char* label;
  u64 seed;
  bool correction;
};

class CatalogBounds : public ::testing::TestWithParam<CatalogCase> {};

TEST_P(CatalogBounds, BoundsHoldOnEveryPrefix) {
  const auto& cc = GetParam();
  auto obj = data::find_object(cc.label, 1);
  obj.seed = cc.seed;
  const auto field = obj.generate();
  mgard::RefactorOptions opt;
  opt.decomp_levels = 3;
  opt.num_retrieval_levels = 4;
  opt.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  opt.l2_correction = cc.correction;
  const mgard::Refactorer rf(opt);
  const auto refactored = rf.refactor(field, obj.dims, obj.label());
  std::vector<Bytes> payloads;
  for (u32 j = 1; j <= 4; ++j) {
    payloads.push_back(refactored.levels[j - 1].payload);
    const auto rec = rf.reconstruct(refactored, payloads);
    ASSERT_LE(data::relative_linf_error(field, rec),
              refactored.rel_error_bound(j))
        << cc.label << " level " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, CatalogBounds,
    ::testing::Values(CatalogCase{"NYX:temperature", 11, true},
                      CatalogCase{"NYX:velocity_x", 12, true},
                      CatalogCase{"SCALE:PRES", 13, true},
                      CatalogCase{"SCALE:T", 14, true},
                      CatalogCase{"hurricane:Pf48.bin", 15, true},
                      CatalogCase{"hurricane:TCf48.bin", 16, true},
                      CatalogCase{"SCALE:PRES", 17, false},
                      CatalogCase{"NYX:temperature", 18, false}),
    [](const auto& info) {
      std::string name = info.param.label;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name + "_s" + std::to_string(info.param.seed) +
             (info.param.correction ? "_corr" : "_plain");
    });

// --- WAN model properties on random instances ---

TEST(WanProperties, MoreContentionNeverFaster) {
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<f64> bw(4);
    for (auto& b : bw) b = rng.uniform(10.0, 100.0);
    std::vector<net::Transfer> base;
    const u32 k = 1 + static_cast<u32>(rng.next_below(6));
    for (u32 i = 0; i < k; ++i)
      base.push_back({static_cast<u32>(rng.next_below(4)),
                      1 + rng.next_below(10000)});
    auto more = base;
    more.push_back({static_cast<u32>(rng.next_below(4)), 1 + rng.next_below(10000)});
    // Adding a transfer can only slow (or not affect) existing ones.
    const auto t_base = net::equal_share_times(base, bw);
    const auto t_more = net::equal_share_times(more, bw);
    for (std::size_t i = 0; i < base.size(); ++i)
      ASSERT_GE(t_more[i], t_base[i] - 1e-12);
  }
}

TEST(WanProperties, ProgressiveConservesWork) {
  // Per system, the last completion equals total queued bytes / bandwidth.
  Rng rng(20);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<f64> bw = {rng.uniform(10.0, 100.0)};
    std::vector<net::Transfer> ts;
    u64 total = 0;
    const u32 k = 1 + static_cast<u32>(rng.next_below(8));
    for (u32 i = 0; i < k; ++i) {
      const u64 bytes = 1 + rng.next_below(10000);
      ts.push_back({0, bytes});
      total += bytes;
    }
    const auto done = net::progressive_times(ts, bw);
    const f64 latest = *std::max_element(done.begin(), done.end());
    ASSERT_NEAR(latest, static_cast<f64>(total) / bw[0],
                static_cast<f64>(total) / bw[0] * 1e-6);
  }
}

// --- optimizer properties ---

TEST(OptimizerProperties, HeuristicAlwaysFeasibleWhenBruteIs) {
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    core::FtProblem pr;
    pr.n = 8 + static_cast<u32>(rng.next_below(12));
    pr.p = rng.uniform(0.001, 0.1);
    u64 size = 100 + rng.next_below(10000);
    f64 err = rng.uniform(1e-3, 1e-1);
    const u32 levels = 2 + static_cast<u32>(rng.next_below(3));
    for (u32 l = 0; l < levels; ++l) {
      pr.level_sizes.push_back(size);
      pr.level_errors.push_back(err);
      size *= 2 + rng.next_below(8);
      err /= rng.uniform(3.0, 30.0);
    }
    pr.original_size = size;
    pr.overhead_budget = rng.uniform(0.05, 1.0);
    const auto brute = core::ft_optimize_brute_force(pr);
    const auto heur = core::ft_optimize_heuristic(pr);
    ASSERT_EQ(brute.has_value(), heur.has_value()) << "trial " << trial;
    if (heur) {
      ASSERT_TRUE(core::valid_ft_config(pr.n, heur->m));
      ASSERT_LE(heur->storage_overhead, pr.overhead_budget + 1e-12);
      ASSERT_GE(heur->expected_error, brute->expected_error * (1 - 1e-12));
    }
  }
}

TEST(OptimizerProperties, ExpectedErrorBetweenExtremes) {
  // Eq. 5 always lies between the best achievable error (e_l) and 1.
  Rng rng(22);
  for (int trial = 0; trial < 200; ++trial) {
    const u32 n = 6 + static_cast<u32>(rng.next_below(14));
    const u32 l = 1 + static_cast<u32>(rng.next_below(std::min(4u, n - 1)));
    core::FtConfig m(l);
    // Random strictly decreasing config.
    std::vector<u32> vals;
    for (u32 v = 1; v < n; ++v) vals.push_back(v);
    for (u32 i = 0; i < l; ++i) {
      const u64 j = i + rng.next_below(vals.size() - i);
      std::swap(vals[i], vals[j]);
    }
    std::sort(vals.begin(), vals.begin() + l, std::greater<>());
    for (u32 i = 0; i < l; ++i) m[i] = vals[i];
    std::vector<f64> errors(l);
    f64 e = 0.1;
    for (auto& x : errors) {
      x = e;
      e /= 10.0;
    }
    const f64 p = rng.uniform(0.0, 0.5);
    const f64 expected = core::expected_relative_error(n, p, errors, m);
    ASSERT_GE(expected, errors.back() * (1 - 1e-12));
    ASSERT_LE(expected, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace rapids
