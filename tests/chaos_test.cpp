// Chaos suite: the pipeline under programmable fault injection. The core
// contract under test is "levels-first, never wrong": whatever the fault
// schedule, a restore either returns data whose measured relative L-inf
// error is within the reported rel_error_bound, or it reports the honest
// loss (empty data, rel_error_bound = 1.0) — never a silent violation,
// crash, or hang. Fault schedules are pure functions of their seeds, so the
// serial scenarios replay bit-for-bit.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/storage/failure.hpp"
#include "rapids/storage/fault_injector.hpp"

namespace rapids::core {
namespace {

namespace fs = std::filesystem;
using mgard::Dims;

PipelineConfig chaos_config() {
  PipelineConfig cfg;
  cfg.refactor.decomp_levels = 3;
  cfg.refactor.num_retrieval_levels = 4;
  cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  cfg.aco.iterations = 20;
  return cfg;
}

/// One self-contained world: cluster + metadata store + pipeline, torn down
/// with its temp directory. Rebuilt with the same seeds, it replays
/// identically.
struct World {
  World(const std::string& tag, PipelineConfig cfg, ThreadPool* pool = nullptr,
        u64 cluster_seed = 42)
      : dir((fs::temp_directory_path() / ("rapids_chaos_" + tag)).string()),
        cluster(storage::ClusterConfig{16, 0.01, cluster_seed}) {
    fs::remove_all(dir);
    db = kv::Db::open(dir);
    pipeline = std::make_unique<RapidsPipeline>(cluster, *db, cfg, pool);
  }
  ~World() {
    pipeline.reset();
    db.reset();
    fs::remove_all(dir);
  }

  std::string dir;
  storage::Cluster cluster;
  std::unique_ptr<kv::Db> db;
  std::unique_ptr<RapidsPipeline> pipeline;
};

/// The never-wrong check for one restore against its original field.
void expect_bound_holds(const RestoreReport& report,
                        const std::vector<f32>& original) {
  if (report.data.empty()) {
    EXPECT_EQ(report.levels_used, 0u);
    EXPECT_DOUBLE_EQ(report.rel_error_bound, 1.0);
    return;
  }
  ASSERT_EQ(report.data.size(), original.size());
  const f64 err = data::relative_linf_error(original, report.data);
  EXPECT_LE(err, report.rel_error_bound)
      << "silent bound violation at levels_used=" << report.levels_used;
}

TEST(Chaos, DeterministicUnderFaults) {
  // Same seeds, same fault schedule, same reports — the whole point of the
  // seeded-profile design. Serial pipelines: determinism is a property of
  // the schedule, not of thread interleaving.
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 5);

  const auto run = [&](const std::string& tag) {
    World w(tag, chaos_config());
    w.pipeline->prepare(field, dims, "obj");
    storage::FaultInjector injector;
    storage::FaultSpec spec;
    spec.get_fail_prob = 0.10;
    spec.corrupt_get_prob = 0.05;
    spec.straggler_prob = 0.10;
    spec.straggler_mult = 8.0;
    spec.seed = 777;
    injector.set_all(w.cluster.size(), spec);
    injector.install(w.cluster);
    std::vector<RestoreReport> reports;
    for (int i = 0; i < 4; ++i) reports.push_back(w.pipeline->restore("obj"));
    return reports;
  };

  const auto a = run("det_a");
  const auto b = run("det_b");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].levels_used, b[i].levels_used) << "restore " << i;
    EXPECT_DOUBLE_EQ(a[i].rel_error_bound, b[i].rel_error_bound);
    EXPECT_DOUBLE_EQ(a[i].gather_latency, b[i].gather_latency);
    EXPECT_EQ(a[i].fetch_retries, b[i].fetch_retries);
    EXPECT_EQ(a[i].hedged_fetches, b[i].hedged_fetches);
    EXPECT_EQ(a[i].hedge_wins, b[i].hedge_wins);
    EXPECT_EQ(a[i].replans, b[i].replans);
    EXPECT_EQ(a[i].data, b[i].data) << "restore " << i;
  }
}

TEST(Chaos, SoakBoundsHoldUnderConcurrentFaults) {
  // Concurrent prepare_batch / restore_batch / scrub against a cluster with
  // mixed per-system fault profiles. Which ops fail depends on thread
  // interleaving; the bound contract must hold regardless.
  ThreadPool pool(4);
  World w("soak", chaos_config(), &pool);

  const Dims dims{17, 17, 9};
  std::vector<std::vector<f32>> fields;
  std::vector<std::string> names;
  for (int i = 0; i < 4; ++i) {
    fields.push_back(data::hurricane_pressure(dims, 100 + i));
    names.push_back("soak" + std::to_string(i));
  }

  // Seed half the objects before the injector goes live.
  std::vector<PrepareRequest> first;
  for (int i = 0; i < 2; ++i) first.push_back({fields[i], dims, names[i]});
  w.pipeline->prepare_batch(first);

  storage::FaultInjector injector;
  for (u32 s = 0; s < w.cluster.size(); ++s) {
    storage::FaultSpec spec;
    spec.seed = 9000 + s;
    switch (s % 4) {
      case 0:
        spec.put_fail_prob = 0.10;
        spec.get_fail_prob = 0.10;
        break;
      case 1:
        spec.corrupt_get_prob = 0.08;
        break;
      case 2:
        spec.straggler_prob = 0.20;
        spec.straggler_mult = 12.0;
        break;
      case 3:
        spec.crash_after_ops = 40;
        spec.crash_for_ops = 30;
        break;
    }
    injector.set_spec(s, spec);
  }
  injector.install(w.cluster);

  // Prepare the second half, restore everything, and scrub — concurrently.
  std::atomic<int> maintenance_errors{0};
  std::thread scrubber([&] {
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 2; ++i) {
        try {
          w.pipeline->scrub(names[i], true);
        } catch (const io_error&) {
          ++maintenance_errors;  // heavy faults may defeat a repair; allowed
        } catch (const invariant_error&) {
          ++maintenance_errors;
        }
      }
    }
  });
  std::vector<PrepareRequest> second;
  for (int i = 2; i < 4; ++i) second.push_back({fields[i], dims, names[i]});
  try {
    w.pipeline->prepare_batch(second);
  } catch (const io_error&) {
    // Persistent distribution failure under faults is allowed; the objects
    // that did land must still restore correctly below.
  }
  scrubber.join();

  for (int round = 0; round < 3; ++round) {
    std::vector<std::string> known;
    std::vector<const std::vector<f32>*> originals;
    for (int i = 0; i < 4; ++i) {
      if (w.pipeline->lookup(names[i]).has_value()) {
        known.push_back(names[i]);
        originals.push_back(&fields[i]);
      }
    }
    ASSERT_GE(known.size(), 2u);  // the pre-fault objects at minimum
    const auto reports = w.pipeline->restore_batch(known);
    for (std::size_t i = 0; i < reports.size(); ++i)
      expect_bound_holds(reports[i], *originals[i]);
  }
  // The injector really was active.
  const auto counters = injector.total_counters();
  EXPECT_GT(counters.transient_gets + counters.corrupt_gets +
                counters.transient_puts + counters.crashed_ops,
            0u);
}

TEST(Chaos, ConcurrentFailRestoreDrill) {
  // TSan regression (satellite 1): availability flips from another thread
  // while restores run. The atomic flag + per-system store mutex must make
  // this data-race-free; every restore still honours the bound.
  ThreadPool pool(4);
  World w("drill", chaos_config(), &pool);
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 6);
  w.pipeline->prepare(field, dims, "drill");

  std::atomic<bool> stop{false};
  std::thread chaos_monkey([&] {
    Rng rng(31);
    while (!stop.load(std::memory_order_relaxed)) {
      const u32 victim = static_cast<u32>(rng.next_below(w.cluster.size()));
      w.cluster.fail(victim);
      std::this_thread::yield();
      w.cluster.restore(victim);
    }
  });

  const std::vector<std::string> names(8, "drill");
  for (int round = 0; round < 3; ++round) {
    const auto reports = w.pipeline->restore_batch(names);
    for (const auto& r : reports) expect_bound_holds(r, field);
  }
  stop.store(true, std::memory_order_relaxed);
  chaos_monkey.join();
}

TEST(Chaos, ReplanningExhaustionReturnsDegradedReport) {
  // Every get fails persistently on every system: replanning runs out of
  // systems and the restore must degrade to the documented lost report —
  // not throw, not hang (satellite 2).
  World w("exhaust", chaos_config());
  const Dims dims{17, 17, 9};
  const auto field = data::nyx_temperature(dims, 7);
  w.pipeline->prepare(field, dims, "gone");

  storage::FaultInjector injector;
  storage::FaultSpec spec;
  spec.get_fail_prob = 1.0;
  injector.set_all(w.cluster.size(), spec);
  injector.install(w.cluster);

  const auto report = w.pipeline->restore("gone");
  EXPECT_TRUE(report.data.empty());
  EXPECT_EQ(report.levels_used, 0u);
  EXPECT_DOUBLE_EQ(report.rel_error_bound, 1.0);
  EXPECT_GT(report.fetch_retries, 0u);  // it did try

  // And the failure is not sticky: faults gone -> full quality again.
  storage::FaultInjector::uninstall(w.cluster);
  const auto healed = w.pipeline->restore("gone");
  EXPECT_EQ(healed.data.size(), field.size());
  expect_bound_holds(healed, field);
}

TEST(Chaos, HedgedReadsCutStragglerLatency) {
  // One permanently slow endpoint (25x). With hedging, its planned
  // transfers are duplicated to an unplanned sibling-fragment holder and
  // the observed gather latency drops; without, the straggler gates the
  // restore. Deterministic: latency_mult with straggler_prob = 0 draws no
  // randomness.
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 8);

  const auto run = [&](bool hedged, const std::string& tag) {
    PipelineConfig cfg = chaos_config();
    cfg.hedged_reads = hedged;
    World w(tag, cfg);
    w.pipeline->prepare(field, dims, "strag");
    storage::FaultInjector injector;
    storage::FaultSpec spec;
    spec.latency_mult = 25.0;
    injector.set_spec(3, spec);
    injector.install(w.cluster);
    return w.pipeline->restore("strag");
  };

  const auto slow = run(false, "hedge_off");
  const auto fast = run(true, "hedge_on");
  expect_bound_holds(slow, field);
  expect_bound_holds(fast, field);
  EXPECT_EQ(fast.levels_used, slow.levels_used);
  EXPECT_GT(fast.hedged_fetches, 0u);
  EXPECT_GT(fast.hedge_wins, 0u);
  EXPECT_LT(fast.gather_latency, slow.gather_latency);
}

TEST(Chaos, PersistentPutFailureRelocatesFragments) {
  // A system that rejects every put: prepare must succeed anyway by
  // re-placing its fragments on the least-loaded healthy systems, and the
  // metadata must point at where they actually landed.
  World w("relocate", chaos_config());
  storage::FaultInjector injector;
  storage::FaultSpec spec;
  spec.put_fail_prob = 1.0;
  injector.set_spec(5, spec);
  injector.install(w.cluster);

  const Dims dims{17, 17, 9};
  const auto field = data::nyx_velocity(dims, 9);
  const auto prep = w.pipeline->prepare(field, dims, "reloc");
  EXPECT_GT(prep.relocations, 0u);
  EXPECT_GT(prep.put_retries, 0u);
  EXPECT_EQ(w.cluster.system(5).fragment_count(), 0u);
  // Full fragment complement landed elsewhere.
  u64 total = 0;
  for (u32 s = 0; s < w.cluster.size(); ++s)
    total += w.cluster.system(s).fragment_count();
  EXPECT_EQ(total, prep.fragments_stored);

  const auto report = w.pipeline->restore("reloc");
  EXPECT_EQ(report.levels_used, static_cast<u32>(prep.record.ft.size()));
  expect_bound_holds(report, field);
}

TEST(Chaos, CircuitBreakerShieldsFlakySystem) {
  // A fully dead-to-reads endpoint: after enough failed fetches the breaker
  // opens and later restores route around it at the planning stage instead
  // of burning retry budget on it every time.
  PipelineConfig cfg = chaos_config();
  cfg.health.failure_threshold = 2;
  cfg.health.open_cooldown_events = 1000;  // stays open for the whole test
  World w("breaker", cfg);
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 10);
  w.pipeline->prepare(field, dims, "brk");

  storage::FaultInjector injector;
  storage::FaultSpec spec;
  spec.get_fail_prob = 1.0;
  injector.set_spec(7, spec);
  injector.install(w.cluster);

  const auto first = w.pipeline->restore("brk");  // trips the breaker
  expect_bound_holds(first, field);
  EXPECT_GT(first.replans + first.hedge_wins, 0u);  // it had to work around 7
  EXPECT_TRUE(w.pipeline->system_health().is_open(7));

  const auto second = w.pipeline->restore("brk");
  expect_bound_holds(second, field);
  EXPECT_EQ(second.fetch_retries, 0u);  // planned around the open circuit
  EXPECT_EQ(second.replans, 0u);
  for (u32 j = 0; j < second.plan.systems_per_level.size(); ++j)
    for (u32 s : second.plan.systems_per_level[j])
      EXPECT_NE(s, 7u) << "level " << j << " planned the circuit-open system";
}

TEST(Chaos, StreamingPrepareBoundsHoldUnderTransientPutFaults) {
  // Pipelined encode-while-refactor with the put stream under cluster-wide
  // transient faults and stragglers: the retry machinery must absorb the
  // failures mid-stream and the prepared object must round-trip at full
  // quality.
  ThreadPool pool(4);
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 11);
  for (const f64 fail_prob : {0.05, 0.15}) {
    World w("stream_put_" + std::to_string(int(fail_prob * 100)),
            chaos_config(), &pool);
    storage::FaultInjector injector;
    storage::FaultSpec spec;
    spec.put_fail_prob = fail_prob;
    spec.straggler_prob = 0.10;
    spec.straggler_mult = 6.0;
    spec.seed = 1234;
    injector.set_all(w.cluster.size(), spec);
    injector.install(w.cluster);

    const auto prep = w.pipeline->prepare(field, dims, "sp");
    EXPECT_GT(prep.put_retries, 0u) << "fail_prob " << fail_prob;
    EXPECT_GT(prep.levels_streamed, 0u);
    EXPECT_EQ(prep.levels_streamed, static_cast<u32>(prep.record.ft.size()));
    u64 total = 0;
    for (u32 s = 0; s < w.cluster.size(); ++s)
      total += w.cluster.system(s).fragment_count();
    EXPECT_EQ(total, prep.fragments_stored);

    const auto report = w.pipeline->restore("sp");
    EXPECT_EQ(report.levels_used, static_cast<u32>(prep.record.ft.size()));
    expect_bound_holds(report, field);
  }
}

TEST(Chaos, StreamingPrepareRelocatesAndFallsBackMidStream) {
  // A system that rejects every put kills streamed uploads in flight: the
  // stream falls back to whole-fragment retries, the breaker-backed
  // relocation re-places the fragments, and the metadata points at where
  // they actually landed — all while later levels are still refactoring.
  ThreadPool pool(4);
  World w("stream_reloc", chaos_config(), &pool);
  storage::FaultInjector injector;
  storage::FaultSpec spec;
  spec.put_fail_prob = 1.0;
  injector.set_spec(5, spec);
  injector.install(w.cluster);

  const Dims dims{17, 17, 9};
  const auto field = data::nyx_velocity(dims, 12);
  const auto prep = w.pipeline->prepare(field, dims, "sr");
  EXPECT_GT(prep.relocations, 0u);
  EXPECT_GT(prep.put_retries, 0u);
  EXPECT_GT(prep.stream_fallback_puts, 0u);  // faults landed mid-stream
  EXPECT_EQ(w.cluster.system(5).fragment_count(), 0u);
  u64 total = 0;
  for (u32 s = 0; s < w.cluster.size(); ++s)
    total += w.cluster.system(s).fragment_count();
  EXPECT_EQ(total, prep.fragments_stored);

  const auto report = w.pipeline->restore("sr");
  EXPECT_EQ(report.levels_used, static_cast<u32>(prep.record.ft.size()));
  expect_bound_holds(report, field);
}

TEST(Chaos, StreamingPrepareDeterministicUnderFaultsWithPool) {
  // The conveyor orders streamed stores strictly by level, so the put-fault
  // draw sequence — and therefore the entire prepared state — is a pure
  // function of the seeds even with encode/store racing on a pool.
  ThreadPool pool(4);
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 13);

  const auto run = [&](const std::string& tag) {
    World w(tag, chaos_config(), &pool);
    storage::FaultInjector injector;
    storage::FaultSpec spec;
    spec.put_fail_prob = 0.10;
    spec.seed = 4242;
    injector.set_all(w.cluster.size(), spec);
    injector.install(w.cluster);
    const auto prep = w.pipeline->prepare(field, dims, "obj");
    auto restore = w.pipeline->restore("obj");
    return std::pair{prep, std::move(restore)};
  };

  const auto [prep_a, rest_a] = run("stream_det_a");
  const auto [prep_b, rest_b] = run("stream_det_b");
  EXPECT_EQ(prep_a.put_retries, prep_b.put_retries);
  EXPECT_EQ(prep_a.relocations, prep_b.relocations);
  EXPECT_EQ(prep_a.stream_fallback_puts, prep_b.stream_fallback_puts);
  EXPECT_EQ(prep_a.fragments_stored, prep_b.fragments_stored);
  EXPECT_EQ(prep_a.record.serialize(), prep_b.record.serialize());
  EXPECT_EQ(rest_a.data, rest_b.data);
  EXPECT_DOUBLE_EQ(rest_a.rel_error_bound, rest_b.rel_error_bound);
}

}  // namespace
}  // namespace rapids::core
