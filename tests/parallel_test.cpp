// Tests for the thread pool and parallel_for: correctness, exception
// propagation, nesting, and chunk coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "rapids/parallel/thread_pool.hpp"

namespace rapids {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), [&](u64 i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](u64) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.parallel_for(7, 8, [&](u64 i) {
    EXPECT_EQ(i, 7u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(8);
  const u64 n = 100000;
  std::atomic<u64> sum{0};
  pool.parallel_for(0, n, [&](u64 i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ParallelForChunks, ChunksPartitionRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<u64, u64>> chunks;
  pool.parallel_for_chunks(
      0, 1000,
      [&](u64 lo, u64 hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      64);
  std::sort(chunks.begin(), chunks.end());
  u64 expect = 0;
  for (auto [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 1000u);
}

TEST(ParallelForChunks, RespectsGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<u64> sizes;
  pool.parallel_for_chunks(
      0, 1000,
      [&](u64 lo, u64 hi) {
        std::lock_guard<std::mutex> lock(mu);
        sizes.push_back(hi - lo);
      },
      100);
  for (u64 s : sizes) EXPECT_LE(s, 100u);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](u64 i) {
                                   if (i == 57) throw std::runtime_error("bad");
                                 }),
               std::runtime_error);
}

TEST(ParallelFor, OtherChunksStillRunAfterThrow) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  bool threw = false;
  try {
    pool.parallel_for(0, 1000, [&](u64 i) {
      count.fetch_add(1);
      if (i == 0) throw std::runtime_error("early");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  // The throwing chunk aborts its remaining iterations, but every other
  // chunk runs to completion and the first error is rethrown afterwards.
  EXPECT_TRUE(threw);
  EXPECT_GE(count.load(), 900);
  EXPECT_LT(count.load(), 1001);
}

TEST(ParallelFor, NestedParallelismCompletes) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, [&](u64) {
    // Nested loops reuse the global pool helper path.
    parallel_for(0, 100, [&](u64) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 800);
}

TEST(ParallelFor, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, hits.size(), [&](u64 i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(GlobalPool, ConvenienceWrappersWork) {
  std::atomic<int> count{0};
  parallel_for(0, 50, [&](u64) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
  std::atomic<u64> covered{0};
  parallel_for_chunks(0, 50, [&](u64 lo, u64 hi) { covered.fetch_add(hi - lo); });
  EXPECT_EQ(covered.load(), 50u);
}

}  // namespace
}  // namespace rapids
