// Tests for the thread pool and parallel_for: correctness, exception
// propagation, nesting, and chunk coverage.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "rapids/parallel/completion.hpp"
#include "rapids/parallel/thread_pool.hpp"

namespace rapids {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), [&](u64 i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](u64) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.parallel_for(7, 8, [&](u64 i) {
    EXPECT_EQ(i, 7u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(8);
  const u64 n = 100000;
  std::atomic<u64> sum{0};
  pool.parallel_for(0, n, [&](u64 i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ParallelForChunks, ChunksPartitionRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<u64, u64>> chunks;
  pool.parallel_for_chunks(
      0, 1000,
      [&](u64 lo, u64 hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      64);
  std::sort(chunks.begin(), chunks.end());
  u64 expect = 0;
  for (auto [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 1000u);
}

TEST(ParallelForChunks, RespectsGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<u64> sizes;
  pool.parallel_for_chunks(
      0, 1000,
      [&](u64 lo, u64 hi) {
        std::lock_guard<std::mutex> lock(mu);
        sizes.push_back(hi - lo);
      },
      100);
  for (u64 s : sizes) EXPECT_LE(s, 100u);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](u64 i) {
                                   if (i == 57) throw std::runtime_error("bad");
                                 }),
               std::runtime_error);
}

TEST(ParallelFor, OtherChunksStillRunAfterThrow) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  bool threw = false;
  try {
    pool.parallel_for(0, 1000, [&](u64 i) {
      count.fetch_add(1);
      if (i == 0) throw std::runtime_error("early");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  // The throwing chunk aborts its remaining iterations, but every other
  // chunk runs to completion and the first error is rethrown afterwards.
  EXPECT_TRUE(threw);
  EXPECT_GE(count.load(), 900);
  EXPECT_LT(count.load(), 1001);
}

TEST(ParallelFor, NestedParallelismCompletes) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, [&](u64) {
    // Nested loops reuse the global pool helper path.
    parallel_for(0, 100, [&](u64) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 800);
}

TEST(ParallelFor, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, hits.size(), [&](u64 i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(Task, SmallCallableStaysInline) {
  int x = 0;
  Task small([&x] { x = 7; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(x, 7);
}

TEST(Task, LargeCallableGoesToHeap) {
  std::array<char, 128> big{};
  big[0] = 3;
  int out = 0;
  Task large([big, &out] { out = big[0]; });
  EXPECT_FALSE(large.is_inline());
  large();
  EXPECT_EQ(out, 3);
}

TEST(Task, MoveTransfersCallable) {
  int calls = 0;
  Task a([&calls] { ++calls; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(Task, MoveOnlyCallableAccepted) {
  auto p = std::make_unique<int>(5);
  int out = 0;
  Task t([p = std::move(p), &out] { out = *p; });
  t();
  EXPECT_EQ(out, 5);
}

TEST(TaskGroup, WaitJoinsAllForkedTasks) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 64);
  // Reusable after wait().
  group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 65);
}

TEST(TaskGroup, WaitRethrowsFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    group.run([&ran, i] {
      if (i == 3) throw std::runtime_error("forked failure");
      ran.fetch_add(1);
    });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The non-throwing siblings all still ran.
  EXPECT_EQ(ran.load(), 7);
}

TEST(TaskGroup, NestedGroupsInsideTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i)
    outer.run([&pool, &leaves] {
      // Fork/join from inside a pool task: the waiter must help, not block.
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) inner.run([&leaves] { leaves.fetch_add(1); });
      inner.wait();
    });
  outer.wait();
  EXPECT_EQ(leaves.load(), 32);
}

// Regression: a task submitted to the pool that itself runs parallel_for on
// the same pool must complete even when every worker is occupied by such a
// task — waiters cooperatively execute pending chunks instead of blocking.
TEST(ThreadPool, NestedParallelForInsideSubmittedTaskDoesNotDeadlock) {
  for (unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    std::atomic<u64> total{0};
    std::vector<std::future<void>> futs;
    for (unsigned t = 0; t < 2 * workers; ++t)
      futs.push_back(pool.submit([&pool, &total] {
        pool.parallel_for(0, 500,
                          [&total](u64) { total.fetch_add(1, std::memory_order_relaxed); });
      }));
    for (auto& f : futs) f.get();
    EXPECT_EQ(total.load(), 2 * workers * 500u) << "workers=" << workers;
  }
}

TEST(ThreadPool, StealingOccursUnderImbalance) {
  ThreadPool pool(4);
  // Both children land on the forking worker's deque and each blocks until
  // the other has started, so that worker cannot drain its own queue alone:
  // the second child must be taken from a foreign deque (by another worker,
  // or by the main thread helping inside wait() — either counts as a
  // steal). Guarantees a steal regardless of scheduling, where a plain
  // work burst let the forker drain everything itself on slow/1-core runs.
  std::atomic<int> started{0};
  TaskGroup group(&pool);
  pool.submit([&] {
      for (int i = 0; i < 2; ++i)
        group.run([&started] {
          started.fetch_add(1, std::memory_order_acq_rel);
          while (started.load(std::memory_order_acquire) < 2)
            std::this_thread::yield();
        });
    }).get();
  group.wait();
  EXPECT_EQ(started.load(), 2);
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(ThreadPool, TryRunOneDrainsQueuedWork) {
  ThreadPool pool(1);
  // Saturate the single worker so at least one queued task is observable
  // from the outside, then help from the calling thread.
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) group.run([&count] { count.fetch_add(1); });
  while (count.load() < 32)
    if (!pool.try_run_one()) std::this_thread::yield();
  group.wait();
  EXPECT_EQ(count.load(), 32);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(GlobalPool, ConvenienceWrappersWork) {
  std::atomic<int> count{0};
  parallel_for(0, 50, [&](u64) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
  std::atomic<u64> covered{0};
  parallel_for_chunks(0, 50, [&](u64 lo, u64 hi) { covered.fetch_add(hi - lo); });
  EXPECT_EQ(covered.load(), 50u);
}

// ------------------------------------------------- Completion / DeadlineGate

TEST(Completion, SetBeforeWaitReturnsImmediately) {
  parallel::Completion done;
  EXPECT_FALSE(done.ready());
  done.set();
  EXPECT_TRUE(done.ready());
  done.wait();  // must not block
}

TEST(Completion, SecondSetIsInvariantViolation) {
  parallel::Completion done;
  done.set();
  EXPECT_THROW(done.set(), invariant_error);
}

TEST(Completion, WaitBlocksUntilSetFromAnotherThread) {
  parallel::Completion done;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    done.wait();
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(woke);
  done.set();
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(Completion, WaitWithPoolHelpsDrainTheQueue) {
  // A waiter on the pool's own completion must help run queued tasks, so
  // waiting from the submitting thread can never deadlock a busy pool.
  ThreadPool pool(1);
  parallel::Completion gate_open;
  parallel::Completion done;
  // Occupy the single worker until the waiter has started helping.
  pool.submit([&] { gate_open.wait(); });
  for (int i = 0; i < 8; ++i) pool.submit([] {});
  pool.submit([&] { done.set(); });
  gate_open.set();
  done.wait(&pool);
  EXPECT_TRUE(done.ready());
}

TEST(DeadlineGate, RemainingBudgetClampsAtZero) {
  parallel::DeadlineGate gate(10.0);
  EXPECT_DOUBLE_EQ(gate.deadline_s(), 10.0);
  EXPECT_DOUBLE_EQ(gate.remaining_s(4.0), 6.0);
  EXPECT_DOUBLE_EQ(gate.remaining_s(10.0), 0.0);
  EXPECT_DOUBLE_EQ(gate.remaining_s(25.0), 0.0);
  EXPECT_FALSE(gate.expired(9.99));
  EXPECT_TRUE(gate.expired(10.0));
}

TEST(DeadlineGate, DefaultIsUnbounded) {
  parallel::DeadlineGate gate;
  EXPECT_FALSE(gate.expired(1e18));
  EXPECT_GT(gate.remaining_s(1e18), 0.0);
}

TEST(DeadlineGate, CancelIsStickyAndVisible) {
  parallel::DeadlineGate gate(1.0);
  EXPECT_FALSE(gate.cancelled());
  gate.cancel();
  EXPECT_TRUE(gate.cancelled());
  gate.cancel();  // idempotent
  EXPECT_TRUE(gate.cancelled());
}

TEST(DeadlineTask, RunsBodyWhenLive) {
  auto gate = std::make_shared<parallel::DeadlineGate>(5.0);
  int body_runs = 0, skip_runs = 0;
  auto task = parallel::deadline_task(
      gate, [&] { ++body_runs; }, [&] { ++skip_runs; });
  task();
  EXPECT_EQ(body_runs, 1);
  EXPECT_EQ(skip_runs, 0);
}

TEST(DeadlineTask, RunsSkipAfterCancel) {
  // The pre-run hook: a task popped after its gate was cancelled must take
  // the cheap skip path, never the body.
  auto gate = std::make_shared<parallel::DeadlineGate>(5.0);
  int body_runs = 0, skip_runs = 0;
  auto task = parallel::deadline_task(
      gate, [&] { ++body_runs; }, [&] { ++skip_runs; });
  gate->cancel();
  task();
  EXPECT_EQ(body_runs, 0);
  EXPECT_EQ(skip_runs, 1);
}

}  // namespace
}  // namespace rapids
