// Tests for the FT-configuration solvers: brute force as ground truth, the
// Algorithm 1 heuristic matching it (the paper's Table 3 claim), initial
// value rule (Eq. 9), feasibility, and edge cases.

#include <gtest/gtest.h>

#include "rapids/core/ft_optimizer.hpp"

namespace rapids::core {
namespace {

/// A paper-like problem: sizes growing ~6x per level, errors falling ~10x.
FtProblem paper_like_problem(u64 base_size, f64 budget) {
  FtProblem pr;
  pr.n = 16;
  pr.p = 0.01;
  pr.level_sizes = {base_size, base_size * 6, base_size * 36, base_size * 216};
  pr.level_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  pr.original_size = base_size * 800;  // refactoring compresses ~3x
  pr.overhead_budget = budget;
  return pr;
}

TEST(BruteForce, FindsFeasibleOptimum) {
  const auto pr = paper_like_problem(1 << 20, 0.4);
  const auto sol = ft_optimize_brute_force(pr);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(valid_ft_config(pr.n, sol->m));
  EXPECT_LE(sol->storage_overhead, pr.overhead_budget);
  EXPECT_GT(sol->evaluations, 0u);
}

TEST(BruteForce, RespectsBudgetStrictly) {
  const auto pr = paper_like_problem(1 << 20, 0.12);
  const auto sol = ft_optimize_brute_force(pr);
  ASSERT_TRUE(sol.has_value());
  EXPECT_LE(sol->storage_overhead, 0.12);
}

TEST(BruteForce, InfeasibleBudgetReturnsNullopt) {
  auto pr = paper_like_problem(1 << 20, 0.4);
  pr.overhead_budget = 1e-9;  // even [4,3,2,1] cannot fit
  EXPECT_FALSE(ft_optimize_brute_force(pr).has_value());
  EXPECT_FALSE(ft_optimize_heuristic(pr).has_value());
}

TEST(BruteForce, NoConfigBeatsTheOptimum) {
  // Exhaustively verify optimality on a small instance.
  FtProblem pr;
  pr.n = 8;
  pr.p = 0.02;
  pr.level_sizes = {100, 600, 3600};
  pr.level_errors = {1e-2, 1e-4, 1e-6};
  pr.original_size = 10000;
  pr.overhead_budget = 0.3;
  const auto sol = ft_optimize_brute_force(pr);
  ASSERT_TRUE(sol.has_value());
  // Check every strictly-decreasing triple explicitly.
  for (u32 a = 1; a < 8; ++a)
    for (u32 b = 1; b < a; ++b)
      for (u32 c = 1; c < b; ++c) {
        const FtConfig m = {a, b, c};
        if (ft_storage_overhead(pr.n, m, pr.level_sizes, pr.original_size) >
            pr.overhead_budget)
          continue;
        const f64 e = expected_relative_error(pr.n, pr.p, pr.level_errors, m);
        ASSERT_GE(e, sol->expected_error - 1e-15)
            << "[" << a << "," << b << "," << c << "] beats the optimum";
      }
}

TEST(InitialValue, Eq9MaximalMstar) {
  const auto pr = paper_like_problem(1 << 20, 0.4);
  const auto mstar = ft_initial_mstar(pr);
  ASSERT_TRUE(mstar.has_value());
  // Minimal-gap configuration at m* fits ...
  const u32 l = 4;
  FtConfig fit(l);
  for (u32 j = 0; j < l; ++j) fit[j] = *mstar + (l - 1 - j);
  EXPECT_LE(ft_storage_overhead(pr.n, fit, pr.level_sizes, pr.original_size),
            pr.overhead_budget);
  // ... and at m*+1 does not (or hits the ordering ceiling).
  if (*mstar + l - 1 < pr.n - 1) {
    FtConfig over(l);
    for (u32 j = 0; j < l; ++j) over[j] = *mstar + 1 + (l - 1 - j);
    EXPECT_GT(ft_storage_overhead(pr.n, over, pr.level_sizes, pr.original_size),
              pr.overhead_budget);
  }
}

struct HeuristicCase {
  const char* name;
  u64 base_size;
  f64 budget;
};

class HeuristicVsBruteForce : public ::testing::TestWithParam<HeuristicCase> {};

TEST_P(HeuristicVsBruteForce, SameOptimum) {
  // The paper's Table 3 claim: the heuristic finds the brute-force optimum.
  const auto& hc = GetParam();
  const auto pr = paper_like_problem(hc.base_size, hc.budget);
  const auto brute = ft_optimize_brute_force(pr);
  const auto heur = ft_optimize_heuristic(pr);
  ASSERT_TRUE(brute.has_value());
  ASSERT_TRUE(heur.has_value());
  EXPECT_TRUE(valid_ft_config(pr.n, heur->m));
  EXPECT_LE(heur->storage_overhead, pr.overhead_budget);
  // Brute force is exhaustive, so the heuristic can never beat it; Table 3
  // shows it matching on the paper's objects, and on synthetic sweeps it
  // lands within a fraction of a percent when configurations tie at the
  // 9th digit.
  EXPECT_GE(heur->expected_error, brute->expected_error * (1 - 1e-12));
  EXPECT_LE(heur->expected_error, brute->expected_error * 1.02);
}

TEST_P(HeuristicVsBruteForce, HeuristicSearchesLess) {
  const auto& hc = GetParam();
  const auto pr = paper_like_problem(hc.base_size, hc.budget);
  const auto brute = ft_optimize_brute_force(pr);
  const auto heur = ft_optimize_heuristic(pr);
  ASSERT_TRUE(brute && heur);
  EXPECT_LT(heur->evaluations, brute->evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, HeuristicVsBruteForce,
    ::testing::Values(HeuristicCase{"tight", 1 << 20, 0.1},
                      HeuristicCase{"mid", 1 << 20, 0.25},
                      HeuristicCase{"loose", 1 << 20, 0.5},
                      HeuristicCase{"veryloose", 1 << 20, 1.0},
                      HeuristicCase{"small_object", 1 << 12, 0.3}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Heuristic, ProducesDecreasingConfig) {
  const auto pr = paper_like_problem(1 << 18, 0.35);
  const auto sol = ft_optimize_heuristic(pr);
  ASSERT_TRUE(sol.has_value());
  for (std::size_t j = 1; j < sol->m.size(); ++j)
    EXPECT_LT(sol->m[j], sol->m[j - 1]);
}

TEST(Heuristic, LargerBudgetNeverWorse) {
  f64 prev_error = 2.0;
  for (f64 budget : {0.1, 0.2, 0.4, 0.8}) {
    const auto sol = ft_optimize_heuristic(paper_like_problem(1 << 20, budget));
    ASSERT_TRUE(sol.has_value()) << budget;
    EXPECT_LE(sol->expected_error, prev_error * (1 + 1e-12)) << budget;
    prev_error = sol->expected_error;
  }
}

TEST(Heuristic, TwoLevelProblem) {
  FtProblem pr;
  pr.n = 10;
  pr.p = 0.01;
  pr.level_sizes = {500, 5000};
  pr.level_errors = {1e-2, 1e-6};
  pr.original_size = 20000;
  pr.overhead_budget = 0.4;
  const auto brute = ft_optimize_brute_force(pr);
  const auto heur = ft_optimize_heuristic(pr);
  ASSERT_TRUE(brute && heur);
  EXPECT_NEAR(heur->expected_error, brute->expected_error, 1e-12);
}

TEST(Heuristic, SingleLevelDegeneratesToUniformEc) {
  // With one level the model reduces to choosing m for plain EC.
  FtProblem pr;
  pr.n = 12;
  pr.p = 0.02;
  pr.level_sizes = {4000};
  pr.level_errors = {1e-5};
  pr.original_size = 10000;
  pr.overhead_budget = 0.5;
  const auto brute = ft_optimize_brute_force(pr);
  const auto heur = ft_optimize_heuristic(pr);
  ASSERT_TRUE(brute && heur);
  EXPECT_EQ(heur->m, brute->m);
}

TEST(Optimizer, ValidationErrors) {
  FtProblem pr;  // level_sizes empty
  pr.original_size = 100;
  EXPECT_THROW(ft_optimize_brute_force(pr), invariant_error);
  pr.level_sizes = {10, 20};
  pr.level_errors = {1e-2};  // size mismatch
  EXPECT_THROW(ft_optimize_heuristic(pr), invariant_error);
}

TEST(Optimizer, TooManyLevelsForClusterRejected) {
  FtProblem pr;
  pr.n = 4;
  pr.p = 0.01;
  pr.level_sizes = {1, 2, 3, 4};
  pr.level_errors = {1e-1, 1e-2, 1e-3, 1e-4};
  pr.original_size = 100;
  EXPECT_THROW(ft_optimize_brute_force(pr), invariant_error);
}

}  // namespace
}  // namespace rapids::core
