// Tests for the grouped-subset ACO solver: feasibility enforcement,
// determinism, warm starts, convergence on problems with known optima.

#include <gtest/gtest.h>

#include <cmath>

#include "rapids/solver/aco.hpp"

namespace rapids::solver {
namespace {

TEST(SubsetAco, FeasibilityChecker) {
  SubsetAco aco(4, {2}, {{true, true, true, false}}, {1, 1, 1, 1});
  EXPECT_TRUE(aco.feasible({{0, 1}}));
  EXPECT_TRUE(aco.feasible({{1, 2}}));
  EXPECT_FALSE(aco.feasible({{0}}));          // wrong size
  EXPECT_FALSE(aco.feasible({{0, 3}}));       // disallowed item
  EXPECT_FALSE(aco.feasible({{1, 1}}));       // duplicate
  EXPECT_FALSE(aco.feasible({{0, 1}, {0, 1}})); // wrong group count
}

TEST(SubsetAco, InfeasibleProblemRejected) {
  // Group needs 3 items but only 2 are allowed.
  EXPECT_THROW(SubsetAco(4, {3}, {{true, true, false, false}}, {1, 1, 1, 1}),
               invariant_error);
}

TEST(SubsetAco, SolutionsAlwaysFeasible) {
  SubsetAco aco(6, {2, 3}, {std::vector<bool>(6, true), std::vector<bool>(6, true)},
                {1, 2, 3, 4, 5, 6});
  AcoOptions opt;
  opt.iterations = 10;
  const auto result = aco.solve([](const Selection&) { return 1.0; }, opt);
  EXPECT_TRUE(aco.feasible(result.best));
  EXPECT_GT(result.evaluations, 0u);
}

TEST(SubsetAco, DeterministicForSeed) {
  SubsetAco aco(8, {3}, {std::vector<bool>(8, true)}, {1, 1, 1, 1, 1, 1, 1, 1});
  auto objective = [](const Selection& s) {
    f64 sum = 0;
    for (u32 i : s[0]) sum += static_cast<f64>(i * i);
    return sum;
  };
  AcoOptions opt;
  opt.iterations = 30;
  opt.seed = 77;
  const auto a = aco.solve(objective, opt);
  const auto b = aco.solve(objective, opt);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_value, b.best_value);
}

TEST(SubsetAco, FindsObviousOptimum) {
  // Minimize the sum of selected indices: optimum is {0, 1, 2}.
  SubsetAco aco(10, {3}, {std::vector<bool>(10, true)},
                std::vector<f64>(10, 1.0));
  auto objective = [](const Selection& s) {
    f64 sum = 0;
    for (u32 i : s[0]) sum += static_cast<f64>(i);
    return sum;
  };
  AcoOptions opt;
  opt.iterations = 150;
  opt.ants = 32;
  const auto result = aco.solve(objective, opt);
  EXPECT_EQ(result.best[0], (std::vector<u32>{0, 1, 2}));
}

TEST(SubsetAco, WarmStartNeverWorsens) {
  SubsetAco aco(10, {4}, {std::vector<bool>(10, true)},
                std::vector<f64>(10, 1.0));
  auto objective = [](const Selection& s) {
    // Penalize clustering: best solutions spread selections apart.
    f64 cost = 0;
    for (std::size_t a = 0; a < s[0].size(); ++a)
      for (std::size_t b = a + 1; b < s[0].size(); ++b)
        cost += 1.0 / (1.0 + std::fabs(static_cast<f64>(s[0][a]) -
                                       static_cast<f64>(s[0][b])));
    return cost;
  };
  const Selection warm = {{0, 3, 6, 9}};
  const f64 warm_value = objective(warm);
  AcoOptions opt;
  opt.iterations = 40;
  const auto result = aco.solve(objective, opt, warm);
  EXPECT_LE(result.best_value, warm_value);
}

TEST(SubsetAco, InfeasibleWarmStartRejected) {
  SubsetAco aco(4, {2}, {{true, true, true, true}}, {1, 1, 1, 1});
  AcoOptions opt;
  EXPECT_THROW(
      aco.solve([](const Selection&) { return 0.0; }, opt, Selection{{0, 0}}),
      invariant_error);
}

TEST(SubsetAco, RespectsAllowedMask) {
  std::vector<bool> allowed = {true, false, true, false, true};
  SubsetAco aco(5, {2}, {allowed}, {1, 1, 1, 1, 1});
  AcoOptions opt;
  opt.iterations = 20;
  const auto result = aco.solve(
      [](const Selection& s) {
        f64 sum = 0;
        for (u32 i : s[0]) sum += i;
        return sum;
      },
      opt);
  for (u32 i : result.best[0]) EXPECT_TRUE(allowed[i]) << "item " << i;
  EXPECT_EQ(result.best[0], (std::vector<u32>{0, 2}));
}

TEST(SubsetAco, BiasSteersConstruction) {
  // With zero iterations of learning signal (flat objective), heavy bias on
  // one item should make it near-ubiquitous in the best-of-run selection.
  std::vector<f64> bias(6, 0.01);
  bias[4] = 100.0;
  SubsetAco aco(6, {1}, {std::vector<bool>(6, true)}, bias);
  AcoOptions opt;
  opt.iterations = 1;
  opt.ants = 16;
  const auto result =
      aco.solve([](const Selection&) { return 1.0; }, opt);
  EXPECT_EQ(result.best[0][0], 4u);
}

TEST(SubsetAco, TimeBudgetStopsEarly) {
  SubsetAco aco(12, {6}, {std::vector<bool>(12, true)},
                std::vector<f64>(12, 1.0));
  AcoOptions opt;
  opt.iterations = 1000000;  // would run far too long without the budget
  opt.time_budget_seconds = 0.05;
  const auto result = aco.solve(
      [](const Selection& s) {
        f64 sum = 0;
        for (u32 i : s[0]) sum += i;
        return sum;
      },
      opt);
  EXPECT_LT(result.iterations_run, 1000000u);
  EXPECT_TRUE(aco.feasible(result.best));
}

TEST(SubsetAco, MultiGroupObjective) {
  // Two groups with coupled cost: selecting the same item in both groups is
  // penalized; the solver should separate them.
  SubsetAco aco(4, {2, 2},
                {std::vector<bool>(4, true), std::vector<bool>(4, true)},
                {1, 1, 1, 1});
  auto objective = [](const Selection& s) {
    f64 overlap = 0;
    for (u32 a : s[0])
      for (u32 b : s[1]) overlap += (a == b);
    return overlap;
  };
  AcoOptions opt;
  opt.iterations = 120;
  const auto result = aco.solve(objective, opt);
  EXPECT_EQ(result.best_value, 0.0);
}

}  // namespace
}  // namespace rapids::solver
