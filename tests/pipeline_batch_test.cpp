// Tests for the stage-overlapped batch pipeline entry points
// (prepare_batch/restore_batch): byte-identity of fragments, metadata, and
// restored data against the serial prepare()/restore() loop, and a
// concurrent prepare+restore stress run on one pipeline.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/ec/fragment.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/parallel/thread_pool.hpp"

namespace rapids::core {
namespace {

namespace fs = std::filesystem;
using mgard::Dims;

/// One self-contained pipeline environment (cluster + metadata store), so a
/// serial reference run and a batch run never share state.
struct Env {
  explicit Env(const std::string& tag) {
    dir = (fs::temp_directory_path() / ("rapids_batch_" + tag)).string();
    fs::remove_all(dir);
    cluster = std::make_unique<storage::Cluster>(
        storage::ClusterConfig{16, 0.01, 42});
    db = kv::Db::open(dir);
  }
  ~Env() {
    db.reset();
    fs::remove_all(dir);
  }
  std::string dir;
  std::unique_ptr<storage::Cluster> cluster;
  std::unique_ptr<kv::Db> db;
};

PipelineConfig fast_config() {
  PipelineConfig cfg;
  cfg.refactor.decomp_levels = 3;
  cfg.refactor.num_retrieval_levels = 4;
  cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  cfg.aco.iterations = 20;
  return cfg;
}

struct TestObject {
  std::string name;
  Dims dims;
  std::vector<f32> field;
};

std::vector<TestObject> make_objects(u32 count) {
  std::vector<TestObject> objects;
  const Dims dims{33, 33, 17};
  for (u32 i = 0; i < count; ++i) {
    TestObject obj;
    obj.name = "obj" + std::to_string(i);
    obj.dims = dims;
    obj.field = i % 2 == 0 ? data::hurricane_pressure(dims, 10 + i)
                           : data::scale_temperature(dims, 10 + i);
    objects.push_back(std::move(obj));
  }
  return objects;
}

/// Assert that two environments hold byte-identical prepared state for
/// `name`: the serialized object record, every fragment-location entry, and
/// every stored fragment's serialized bytes (header + payload + CRC).
void expect_identical_prepared_state(Env& a, Env& b, const std::string& name) {
  const auto raw_a = a.db->get("obj/" + name);
  const auto raw_b = b.db->get("obj/" + name);
  ASSERT_TRUE(raw_a.has_value()) << name;
  ASSERT_TRUE(raw_b.has_value()) << name;
  EXPECT_EQ(*raw_a, *raw_b) << "object record bytes differ for " << name;

  const auto record = ObjectRecord::deserialize(
      {reinterpret_cast<const std::byte*>(raw_a->data()), raw_a->size()});
  const u32 n = a.cluster->size();
  for (u32 j = 0; j < record.level_sizes.size(); ++j) {
    for (u32 idx = 0; idx < n; ++idx) {
      const std::string key = ec::FragmentId{name, j, idx}.key();
      const auto loc_a = a.db->get(key);
      const auto loc_b = b.db->get(key);
      ASSERT_TRUE(loc_a.has_value()) << key;
      ASSERT_TRUE(loc_b.has_value()) << key;
      EXPECT_EQ(*loc_a, *loc_b) << "location differs for " << key;
      const u32 sys = static_cast<u32>(std::stoul(*loc_a));
      const auto frag_a = a.cluster->system(sys).get(key);
      const auto frag_b = b.cluster->system(sys).get(key);
      ASSERT_TRUE(frag_a.has_value()) << key;
      ASSERT_TRUE(frag_b.has_value()) << key;
      EXPECT_EQ(frag_a->serialize(), frag_b->serialize())
          << "fragment bytes differ for " << key;
    }
  }
}

TEST(PipelineBatch, PrepareBatchByteIdenticalToSerialLoop) {
  ThreadPool pool(4);
  const auto objects = make_objects(4);

  Env serial("serial");
  RapidsPipeline serial_pipe(*serial.cluster, *serial.db, fast_config(), &pool);
  std::vector<PrepareReport> serial_reports;
  for (const auto& obj : objects)
    serial_reports.push_back(serial_pipe.prepare(obj.field, obj.dims, obj.name));

  Env batch("batch");
  RapidsPipeline batch_pipe(*batch.cluster, *batch.db, fast_config(), &pool);
  std::vector<PrepareRequest> requests;
  for (const auto& obj : objects)
    requests.push_back({obj.field, obj.dims, obj.name});
  const auto batch_reports = batch_pipe.prepare_batch(requests);

  ASSERT_EQ(batch_reports.size(), objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    // Reports come back in request order with the same contents.
    EXPECT_EQ(batch_reports[i].fragments_stored, serial_reports[i].fragments_stored);
    EXPECT_EQ(batch_reports[i].record.ft, serial_reports[i].record.ft);
    EXPECT_EQ(batch_reports[i].record.level_sizes,
              serial_reports[i].record.level_sizes);
    EXPECT_DOUBLE_EQ(batch_reports[i].expected_error,
                     serial_reports[i].expected_error);
    EXPECT_EQ(batch_reports[i].record.serialize(),
              serial_reports[i].record.serialize());
    expect_identical_prepared_state(serial, batch, objects[i].name);
  }
}

TEST(PipelineBatch, RestoreBatchMatchesSerialRestores) {
  ThreadPool pool(4);
  const auto objects = make_objects(3);

  Env env("restore");
  RapidsPipeline pipeline(*env.cluster, *env.db, fast_config(), &pool);
  std::vector<PrepareRequest> requests;
  for (const auto& obj : objects)
    requests.push_back({obj.field, obj.dims, obj.name});
  pipeline.prepare_batch(requests);

  // Serial restores against an identically prepared twin environment.
  Env twin("restore_twin");
  RapidsPipeline twin_pipe(*twin.cluster, *twin.db, fast_config(), &pool);
  for (const auto& obj : objects) twin_pipe.prepare(obj.field, obj.dims, obj.name);

  std::vector<std::string> names;
  for (const auto& obj : objects) names.push_back(obj.name);
  const auto batch_reports = pipeline.restore_batch(names);
  ASSERT_EQ(batch_reports.size(), objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto serial_report = twin_pipe.restore(objects[i].name);
    EXPECT_EQ(batch_reports[i].levels_used, serial_report.levels_used);
    EXPECT_DOUBLE_EQ(batch_reports[i].rel_error_bound,
                     serial_report.rel_error_bound);
    // Decoded bytes are identical however the in-flight objects interleave.
    EXPECT_EQ(batch_reports[i].data, serial_report.data) << objects[i].name;
  }
}

TEST(PipelineBatch, SingleObjectAndEmptyBatchesWork) {
  ThreadPool pool(2);
  Env env("edge");
  RapidsPipeline pipeline(*env.cluster, *env.db, fast_config(), &pool);
  EXPECT_TRUE(pipeline.prepare_batch({}).empty());
  EXPECT_TRUE(pipeline.restore_batch({}).empty());

  const auto objects = make_objects(1);
  std::vector<PrepareRequest> one = {{objects[0].field, objects[0].dims,
                                      objects[0].name}};
  const auto reports = pipeline.prepare_batch(one);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].fragments_stored, 64u);
  std::vector<std::string> names = {objects[0].name};
  const auto restored = pipeline.restore_batch(names);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].levels_used, 4u);
}

TEST(PipelineBatch, RestoreBatchUnknownObjectPropagates) {
  ThreadPool pool(2);
  Env env("unknown");
  RapidsPipeline pipeline(*env.cluster, *env.db, fast_config(), &pool);
  const auto objects = make_objects(2);
  std::vector<PrepareRequest> requests;
  for (const auto& obj : objects)
    requests.push_back({obj.field, obj.dims, obj.name});
  pipeline.prepare_batch(requests);
  std::vector<std::string> names = {objects[0].name, "never-prepared",
                                    objects[1].name};
  EXPECT_THROW(pipeline.restore_batch(names), std::exception);
}

// Stress: prepare_batch of new objects racing restore_batch of existing ones
// on the same pipeline. Results on both sides must match a quiet serial run.
TEST(PipelineBatch, ConcurrentPrepareAndRestoreBatchesAreConsistent) {
  ThreadPool pool(4);
  const auto old_objects = make_objects(3);
  std::vector<TestObject> new_objects;
  const Dims dims{17, 17, 9};
  for (u32 i = 0; i < 3; ++i) {
    TestObject obj;
    obj.name = "new" + std::to_string(i);
    obj.dims = dims;
    obj.field = data::hurricane_temperature(dims, 50 + i);
    new_objects.push_back(std::move(obj));
  }

  Env env("stress");
  RapidsPipeline pipeline(*env.cluster, *env.db, fast_config(), &pool);
  std::vector<PrepareRequest> old_requests;
  for (const auto& obj : old_objects)
    old_requests.push_back({obj.field, obj.dims, obj.name});
  pipeline.prepare_batch(old_requests);

  // Twin environment prepared serially for the reference state.
  Env twin("stress_twin");
  RapidsPipeline twin_pipe(*twin.cluster, *twin.db, fast_config(), &pool);
  for (const auto& obj : old_objects)
    twin_pipe.prepare(obj.field, obj.dims, obj.name);
  for (const auto& obj : new_objects)
    twin_pipe.prepare(obj.field, obj.dims, obj.name);

  std::vector<PrepareRequest> new_requests;
  for (const auto& obj : new_objects)
    new_requests.push_back({obj.field, obj.dims, obj.name});
  std::vector<std::string> old_names;
  for (const auto& obj : old_objects) old_names.push_back(obj.name);

  std::vector<RestoreReport> restored;
  std::exception_ptr prepare_error;
  std::thread preparer([&] {
    try {
      pipeline.prepare_batch(new_requests);
    } catch (...) {
      prepare_error = std::current_exception();
    }
  });
  restored = pipeline.restore_batch(old_names);
  preparer.join();
  ASSERT_FALSE(prepare_error);

  // Restores that raced the prepares decoded the exact original state.
  ASSERT_EQ(restored.size(), old_objects.size());
  for (std::size_t i = 0; i < old_objects.size(); ++i) {
    const auto reference = twin_pipe.restore(old_objects[i].name);
    EXPECT_EQ(restored[i].levels_used, reference.levels_used);
    EXPECT_EQ(restored[i].data, reference.data) << old_objects[i].name;
  }
  // Objects prepared during the race are byte-identical to the quiet run.
  for (const auto& obj : new_objects)
    expect_identical_prepared_state(twin, env, obj.name);
  // And they restore cleanly afterwards.
  std::vector<std::string> new_names;
  for (const auto& obj : new_objects) new_names.push_back(obj.name);
  const auto new_restored = pipeline.restore_batch(new_names);
  for (std::size_t i = 0; i < new_objects.size(); ++i) {
    const auto reference = twin_pipe.restore(new_objects[i].name);
    EXPECT_EQ(new_restored[i].data, reference.data) << new_objects[i].name;
  }
}

}  // namespace
}  // namespace rapids::core
