// Tests for the adaptive components added on top of the paper's core: the
// EWMA bandwidth tracker (Section 4.3 behaviour), the pipeline's bandwidth
// learning across restores, and replanning around missing/damaged fragments.

#include <gtest/gtest.h>

#include <filesystem>

#include "rapids/core/pipeline.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/data/field_generators.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/net/bandwidth_tracker.hpp"
#include "rapids/storage/failure.hpp"

namespace rapids {
namespace {

namespace fs = std::filesystem;
using core::PipelineConfig;
using core::RapidsPipeline;
using mgard::Dims;
using net::BandwidthTracker;

// --- BandwidthTracker unit tests ---

TEST(BandwidthTracker, StartsAtPrior) {
  BandwidthTracker t({100.0, 200.0});
  EXPECT_DOUBLE_EQ(t.estimate(0), 100.0);
  EXPECT_DOUBLE_EQ(t.estimate(1), 200.0);
  EXPECT_EQ(t.observations(0), 0u);
}

TEST(BandwidthTracker, EwmaUpdate) {
  BandwidthTracker t({100.0}, 0.5);
  t.observe(0, 300, 1.0);  // observed 300 B/s
  EXPECT_DOUBLE_EQ(t.estimate(0), 200.0);
  t.observe(0, 300, 1.0);
  EXPECT_DOUBLE_EQ(t.estimate(0), 250.0);
  EXPECT_EQ(t.observations(0), 2u);
}

TEST(BandwidthTracker, ConvergesToTruth) {
  BandwidthTracker t({1.0e9}, 0.3);
  for (int i = 0; i < 40; ++i) t.observe(0, 250'000'000, 1.0);
  EXPECT_NEAR(t.estimate(0), 2.5e8, 1e6);
}

TEST(BandwidthTracker, SerializeRoundTrip) {
  BandwidthTracker t({100.0, 50.0, 75.0}, 0.25);
  t.observe(1, 500, 2.0);
  const Bytes wire = t.serialize();
  const auto back = BandwidthTracker::deserialize(as_bytes_view(wire));
  EXPECT_EQ(back.size(), 3u);
  EXPECT_DOUBLE_EQ(back.alpha(), 0.25);
  EXPECT_DOUBLE_EQ(back.estimate(1), t.estimate(1));
  EXPECT_EQ(back.observations(1), 1u);
}

TEST(BandwidthTracker, RejectsBadInputs) {
  EXPECT_THROW(BandwidthTracker({}), invariant_error);
  EXPECT_THROW(BandwidthTracker({0.0}), invariant_error);
  EXPECT_THROW(BandwidthTracker({1.0}, 0.0), invariant_error);
  BandwidthTracker t({1.0});
  EXPECT_THROW(t.observe(5, 1, 1.0), invariant_error);
  EXPECT_THROW(t.observe(0, 1, 0.0), invariant_error);
}

// --- pipeline integration ---

class AdaptivePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rapids_adapt_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name())))
               .string();
    fs::remove_all(dir_);
    cluster_ = std::make_unique<storage::Cluster>(
        storage::ClusterConfig{16, 0.01, 7});
    db_ = kv::Db::open(dir_);
  }
  void TearDown() override {
    db_.reset();
    fs::remove_all(dir_);
  }

  PipelineConfig config() {
    PipelineConfig cfg;
    cfg.refactor.decomp_levels = 3;
    cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
    cfg.aco.iterations = 15;
    return cfg;
  }

  std::string dir_;
  std::unique_ptr<storage::Cluster> cluster_;
  std::unique_ptr<kv::Db> db_;
};

TEST_F(AdaptivePipelineTest, TrackerLearnsBandwidthChange) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_pressure(dims, 1);
  pipeline.prepare(field, dims, "obj");

  // Slash system 5's real bandwidth 10x after preparation.
  const f64 original = cluster_->system(5).bandwidth();
  cluster_->system(5).set_bandwidth(original / 10.0);

  // Restores observe the (simulated) slow transfers and learn.
  for (int r = 0; r < 12; ++r) (void)pipeline.restore("obj");
  const auto estimates = pipeline.bandwidth_estimates();
  EXPECT_LT(estimates[5], original / 2.0)
      << "tracker should have learned the slowdown";
}

TEST_F(AdaptivePipelineTest, TrackerPersistsAcrossPipelines) {
  {
    RapidsPipeline pipeline(*cluster_, *db_, config());
    const Dims dims{33, 17, 9};
    const auto field = data::scale_pressure(dims, 2);
    pipeline.prepare(field, dims, "obj");
    cluster_->system(3).set_bandwidth(cluster_->system(3).bandwidth() / 8.0);
    for (int r = 0; r < 12; ++r) (void)pipeline.restore("obj");
  }
  // A fresh pipeline over the same metadata store inherits the estimates.
  RapidsPipeline fresh(*cluster_, *db_, config());
  (void)fresh.restore("obj");  // loads tracker lazily
  const auto estimates = fresh.bandwidth_estimates();
  EXPECT_NEAR(estimates[3], cluster_->system(3).bandwidth(),
              cluster_->system(3).bandwidth() * 0.6);
}

TEST_F(AdaptivePipelineTest, AdaptationCanBeDisabled) {
  auto cfg = config();
  cfg.adapt_bandwidth = false;
  RapidsPipeline pipeline(*cluster_, *db_, cfg);
  const Dims dims{33, 17, 9};
  const auto field = data::nyx_velocity(dims, 3);
  pipeline.prepare(field, dims, "obj");
  (void)pipeline.restore("obj");
  EXPECT_FALSE(db_->get("net/bandwidth_tracker").has_value());
  EXPECT_EQ(pipeline.bandwidth_estimates(), cluster_->bandwidths());
}

TEST_F(AdaptivePipelineTest, ReplansAroundMissingFragments) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{33, 33, 17};
  const auto field = data::scale_temperature(dims, 4);
  const auto prep = pipeline.prepare(field, dims, "obj");

  // Silently lose every fragment on systems 2 and 9 (systems stay "up", so
  // planning cannot know until the fetch fails).
  for (u32 sys : {2u, 9u}) {
    for (u32 level = 0; level < 4; ++level) {
      const u32 idx =
          storage::fragment_at(prep.record.placement, 16, level, sys);
      cluster_->system(sys).erase(ec::FragmentId{"obj", level, idx}.key());
    }
  }

  const auto rest = pipeline.restore("obj");
  EXPECT_GT(rest.levels_used, 0u);
  ASSERT_FALSE(rest.data.empty());
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

TEST_F(AdaptivePipelineTest, ReplansAroundDamagedFragment) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{33, 17, 9};
  const auto field = data::nyx_temperature(dims, 5);
  const auto prep = pipeline.prepare(field, dims, "obj");

  // Corrupt one fragment in place (bit rot): replace with a damaged copy.
  const u32 sys = 4;
  const u32 idx = storage::fragment_at(prep.record.placement, 16, 2, sys);
  auto frag = cluster_->system(sys).get(ec::FragmentId{"obj", 2, idx}.key());
  ASSERT_TRUE(frag.has_value());
  frag->payload[0] ^= 0xFF;  // CRC now mismatches
  // put() would recompute nothing: payload_crc field is stale on purpose.
  cluster_->system(sys).put(*frag);

  const auto rest = pipeline.restore("obj");
  EXPECT_GT(rest.levels_used, 0u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

TEST_F(AdaptivePipelineTest, TooManyLostFragmentsDegradesNotCrashes) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_temperature(dims, 6);
  const auto prep = pipeline.prepare(field, dims, "obj");

  // Lose the bottom level's fragments on more systems than m_l tolerates;
  // the restore must fall back to fewer levels.
  const u32 m_last = prep.record.ft.back();
  const u32 level = 3;
  for (u32 sys = 0; sys < m_last + 1; ++sys) {
    const u32 idx = storage::fragment_at(prep.record.placement, 16, level, sys);
    cluster_->system(sys).erase(ec::FragmentId{"obj", level, idx}.key());
  }
  const auto rest = pipeline.restore("obj");
  EXPECT_GT(rest.levels_used, 0u);
  EXPECT_LT(rest.levels_used, 4u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

}  // namespace
}  // namespace rapids
