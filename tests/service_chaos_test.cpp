// Service chaos drills: the multi-tenant object service under overload
// *combined* with storage faults, outages, and active background
// migrations. The contract is the same "never wrong, never silent" ladder
// as the pipeline chaos suite, lifted to the service layer: whatever the
// fault schedule, every admitted request terminates in a typed outcome
// (ok / brownout / shed / failed), every served response's achieved bound
// really holds against the original field, no executed request silently
// outlives its deadline, and the whole admission/shed/brownout schedule is
// a pure function of the seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <limits>

#include "rapids/control/controller.hpp"
#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/service/service.hpp"
#include "rapids/storage/failure.hpp"
#include "rapids/storage/fault_injector.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::service {
namespace {

namespace fs = std::filesystem;
using mgard::Dims;

constexpr f64 kInf = std::numeric_limits<f64>::infinity();

core::PipelineConfig chaos_config() {
  core::PipelineConfig cfg;
  cfg.refactor.decomp_levels = 3;
  cfg.refactor.num_retrieval_levels = 4;
  cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  cfg.aco.iterations = 20;
  return cfg;
}

struct World {
  explicit World(const std::string& tag, ThreadPool* pool = nullptr,
                 u64 cluster_seed = 42)
      : dir((fs::temp_directory_path() / ("rapids_svc_chaos_" + tag)).string()),
        cluster(storage::ClusterConfig{16, 0.01, cluster_seed}),
        dims{17, 17, 9},
        field(data::hurricane_pressure(dims, 5)) {
    fs::remove_all(dir);
    db = kv::Db::open(dir);
    pipeline = std::make_unique<core::RapidsPipeline>(cluster, *db,
                                                      chaos_config(), pool);
    pipeline->prepare(field, dims, "obj");
  }
  ~World() {
    pipeline.reset();
    db.reset();
    fs::remove_all(dir);
  }

  std::string dir;
  storage::Cluster cluster;
  std::unique_ptr<kv::Db> db;
  Dims dims;
  std::vector<f32> field;
  std::unique_ptr<core::RapidsPipeline> pipeline;
};

ServiceOptions drill_options() {
  ServiceOptions o;
  o.lanes = 2;
  o.tenant_weights = {1.0, 1.0, 1.0, 1.0};
  o.max_tenant_depth = 32;
  o.max_global_depth = 96;
  o.cost_fixed_s = 0.05;
  o.cost_bytes_per_s = 1.0e6;
  o.saturate_backlog_s = 0.4;
  o.saturate_exit_backlog_s = 0.1;
  o.brownout_backlog_s = 1.2;
  o.brownout_exit_backlog_s = 0.3;
  o.brownout_sustain_s = 0.1;
  return o;
}

Request restore_req(u32 tenant, f64 deadline = kInf, f64 bound = 0.0) {
  Request r;
  r.tenant = tenant;
  r.verb = Verb::kRestore;
  r.object = "obj";
  r.rel_bound = bound;
  r.deadline_s = deadline;
  return r;
}

/// Drive a seeded 4-tenant flood and return (responses, stats). Tenant 0 is
/// the aggressor: it submits at 8x the rate of the other three combined.
std::vector<Response> seeded_flood(ObjectService& svc, u64 seed, u32 count) {
  Rng rng(seed);
  f64 t = svc.now_s();
  for (u32 i = 0; i < count; ++i) {
    t += rng.next_double() * 0.01;
    svc.advance_to(t);
    const u32 tenant = rng.bernoulli(0.8) ? 0 : 1 + static_cast<u32>(
                                                      rng.next_below(3));
    Request r = restore_req(tenant);
    r.rel_bound = rng.bernoulli(0.5) ? 0.0 : 4e-3;
    r.deadline_s = rng.bernoulli(0.25) ? kInf : t + 0.1 + rng.next_double();
    r.priority = static_cast<Priority>(rng.next_below(3));
    svc.submit(r);
  }
  svc.drain();
  return svc.take_completed();
}

/// Never-wrong ladder for one response set: typed terminal outcomes only,
/// achieved bounds that hold against the original, honest deadline
/// accounting.
void expect_honest(const std::vector<Response>& responses,
                   const std::vector<f32>& original) {
  for (const auto& r : responses) {
    switch (r.outcome) {
      case Outcome::kOk:
      case Outcome::kBrownout:
        if (!r.result.empty()) {
          ASSERT_EQ(r.result.size(), original.size());
          EXPECT_LE(data::relative_linf_error(original, r.result),
                    r.achieved_bound)
              << "silent bound violation on request " << r.id;
        }
        if (r.brownout) {
          EXPECT_EQ(r.outcome, Outcome::kBrownout);
          EXPECT_GT(r.effective_bound, 0.0);  // the coarsening is reported
        }
        break;
      case Outcome::kShed:
        EXPECT_FALSE(r.deadline_met);
        EXPECT_FALSE(r.error.empty());
        break;
      case Outcome::kFailed:
        EXPECT_FALSE(r.error.empty());
        break;
    }
  }
}

TEST(ServiceChaos, TenantFloodUnderStorageFaults) {
  World w("flood");
  storage::FaultInjector injector;
  storage::FaultSpec spec;
  spec.get_fail_prob = 0.10;
  spec.corrupt_get_prob = 0.05;
  spec.straggler_prob = 0.10;
  spec.straggler_mult = 8.0;
  spec.seed = 777;
  injector.set_all(w.cluster.size(), spec);
  injector.install(w.cluster);

  ObjectService svc(*w.pipeline, drill_options());
  const auto responses = seeded_flood(svc, 31, 200);
  expect_honest(responses, w.field);
  // Every admitted request reached a terminal response.
  const auto st = svc.stats();
  EXPECT_EQ(responses.size(), st.admitted);
  EXPECT_EQ(svc.queue_depth(), 0u);
  // The flood was heavy enough to exercise the ladder.
  EXPECT_GE(st.saturation_entries, 1u);
  u64 executed = 0;
  for (const auto& r : responses)
    executed += (r.outcome == Outcome::kOk || r.outcome == Outcome::kBrownout);
  EXPECT_GT(executed, 0u);
}

TEST(ServiceChaos, DeadlineStormShedsInsteadOfExpiring) {
  // Every request carries a near-impossible deadline: the service must shed
  // fast (in queue or at dispatch) rather than execute doomed work, and the
  // few that do execute must have met their deadlines.
  World w("storm");
  ServiceOptions o = drill_options();
  ObjectService svc(*w.pipeline, o);
  Rng rng(55);
  f64 t = 0.0;
  for (int i = 0; i < 120; ++i) {
    t += rng.next_double() * 0.005;
    svc.advance_to(t);
    // Deadlines tighter than the fixed cost alone for most requests.
    svc.submit(restore_req(rng.next_below(4),
                           t + o.cost_fixed_s * (0.2 + 1.6 * rng.next_double()),
                           rng.bernoulli(0.5) ? 0.0 : 4e-3));
  }
  svc.drain();
  const auto responses = svc.take_completed();
  expect_honest(responses, w.field);
  u64 shed = 0, executed = 0, late = 0;
  for (const auto& r : responses) {
    if (r.outcome == Outcome::kShed) ++shed;
    if (r.outcome == Outcome::kOk || r.outcome == Outcome::kBrownout) {
      ++executed;
      late += !r.deadline_met;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(late, 0u) << "an accepted request silently expired";
  EXPECT_EQ(shed + executed +
                (responses.size() - shed - executed) /* failed */,
            responses.size());
  EXPECT_EQ(svc.stats().shed, shed);
}

TEST(ServiceChaos, OverloadDuringOutageStaysHonest) {
  // Two systems hard-down during the flood: restores replan around the
  // outage (possibly degraded), and every served bound still holds.
  World w("outage");
  w.cluster.fail(3);
  w.cluster.fail(11);
  ObjectService svc(*w.pipeline, drill_options());
  const auto responses = seeded_flood(svc, 67, 150);
  expect_honest(responses, w.field);
  u64 executed = 0;
  for (const auto& r : responses)
    executed += (r.outcome == Outcome::kOk || r.outcome == Outcome::kBrownout);
  EXPECT_GT(executed, 0u) << "outage must not wedge the service";
}

TEST(ServiceChaos, ControllerPausesMigrationTrafficUnderSaturation) {
  World w("ctrl");
  ObjectService svc(*w.pipeline, drill_options());

  control::ControlOptions copts;
  copts.tick_seconds = 0.5;
  control::Controller controller(*w.pipeline, copts);
  controller.set_load_probe([&svc] { return svc.saturated(); });

  // Saturate the service (queue a burst without draining it), then tick the
  // controller: its traffic-heavy steps must pause and be counted.
  for (int i = 0; i < 40; ++i) svc.submit(restore_req(0));
  ASSERT_TRUE(svc.saturated());
  for (int i = 0; i < 4; ++i) controller.tick();
  EXPECT_GE(controller.stats().saturation_pauses, 4u);

  // Drain the service; with the backpressure gone the controller proceeds
  // to quiescence (no pause counted for these ticks).
  svc.drain();
  EXPECT_FALSE(svc.saturated());
  const u64 paused_before = controller.stats().saturation_pauses;
  controller.mark_all_dirty();
  controller.run_until_quiescent();
  EXPECT_EQ(controller.stats().saturation_pauses, paused_before);
  EXPECT_GT(controller.stats().evaluations, 0u);
}

TEST(ServiceChaos, SameSeedSameScheduleUnderFaults) {
  // The determinism drill: identical worlds + identical fault schedules +
  // identical arrival seeds -> bit-identical decision hashes, request
  // counts, and outcome multisets.
  const auto run = [](const std::string& tag) {
    World w(tag);
    storage::FaultInjector injector;
    storage::FaultSpec spec;
    spec.get_fail_prob = 0.15;
    spec.straggler_prob = 0.10;
    spec.seed = 4242;
    injector.set_all(w.cluster.size(), spec);
    injector.install(w.cluster);
    ObjectService svc(*w.pipeline, drill_options());
    auto responses = seeded_flood(svc, 99, 160);
    const auto st = svc.stats();
    return std::tuple<u64, u64, u64, u64, std::vector<Outcome>>(
        st.schedule_hash, st.admitted, st.shed, st.completed, [&] {
          std::vector<Outcome> o;
          for (const auto& r : responses) o.push_back(r.outcome);
          return o;
        }());
  };
  const auto a = run("det_a");
  const auto b = run("det_b");
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_EQ(std::get<4>(a), std::get<4>(b));
}

TEST(ServiceChaos, DeadlineBudgetCapsRetriesInsidePipeline) {
  // The deadline budget propagates into the pipeline's retry/backoff and
  // hedging: with a zero simulated budget, a faulty restore may not charge
  // any backoff seconds, while the unbudgeted one retries freely. Both must
  // stay bound-honest.
  World w("budget");
  storage::FaultInjector injector;
  storage::FaultSpec spec;
  spec.get_fail_prob = 0.35;
  spec.seed = 1313;
  injector.set_all(w.cluster.size(), spec);
  injector.install(w.cluster);

  core::RestoreOptions tight;
  tight.sim_budget_s = 0.0;
  const auto strict = w.pipeline->restore("obj", tight);
  storage::FaultInjector::uninstall(w.cluster);

  World w2("budget2");
  storage::FaultInjector injector2;
  injector2.set_all(w2.cluster.size(), spec);
  injector2.install(w2.cluster);
  const auto loose = w2.pipeline->restore("obj");

  if (!strict.data.empty()) {
    EXPECT_LE(data::relative_linf_error(w.field, strict.data),
              strict.rel_error_bound);
    EXPECT_DOUBLE_EQ(strict.backoff_seconds, 0.0);  // no budget, no backoff
  }
  if (!loose.data.empty()) {
    EXPECT_LE(data::relative_linf_error(w2.field, loose.data),
              loose.rel_error_bound);
  }
  EXPECT_GE(loose.fetch_retries, strict.fetch_retries);
}

}  // namespace
}  // namespace rapids::service
