// Tests for the geo-distributed storage substrate: fragment store semantics,
// outage behaviour, directory spill, cluster construction, failure injection
// statistics, and placement policies.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "rapids/storage/cluster.hpp"
#include "rapids/storage/failure.hpp"
#include "rapids/storage/placement.hpp"

namespace rapids::storage {
namespace {

ec::Fragment make_fragment(const std::string& obj, u32 level, u32 index,
                           std::size_t bytes) {
  ec::Fragment f;
  f.id = ec::FragmentId{obj, level, index};
  f.k = 4;
  f.m = 2;
  f.level_bytes = bytes * 4;
  f.payload.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    f.payload[i] = static_cast<u8>(i + index);
  f.payload_crc = ec::fragment_crc(f.payload);
  return f;
}

TEST(StorageSystem, PutGetRoundTrip) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  const auto frag = make_fragment("obj", 1, 3, 100);
  sys.put(frag);
  EXPECT_TRUE(sys.has(frag.id.key()));
  const auto back = sys.get(frag.id.key());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, frag.payload);
  EXPECT_TRUE(back->verify());
}

TEST(StorageSystem, GetAbsentReturnsNullopt) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  EXPECT_FALSE(sys.get("frag/none/0/0").has_value());
}

TEST(StorageSystem, UnavailableThrowsOnAccess) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  const auto frag = make_fragment("obj", 0, 0, 10);
  sys.put(frag);
  sys.set_available(false);
  EXPECT_THROW(sys.put(frag), io_error);
  EXPECT_THROW(sys.get(frag.id.key()), io_error);
  // Metadata knowledge remains queryable.
  EXPECT_TRUE(sys.has(frag.id.key()));
  sys.set_available(true);
  EXPECT_TRUE(sys.get(frag.id.key()).has_value());
}

TEST(StorageSystem, UsedBytesTracksPayloads) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  sys.put(make_fragment("a", 0, 0, 100));
  sys.put(make_fragment("a", 0, 1, 50));
  EXPECT_EQ(sys.used_bytes(), 150u);
  EXPECT_EQ(sys.fragment_count(), 2u);
  // Replace shrinks.
  sys.put(make_fragment("a", 0, 0, 30));
  EXPECT_EQ(sys.used_bytes(), 80u);
  sys.erase(ec::FragmentId{"a", 0, 1}.key());
  EXPECT_EQ(sys.used_bytes(), 30u);
  EXPECT_EQ(sys.fragment_count(), 1u);
}

TEST(StorageSystem, DirectorySpillRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "rapids_store_test";
  std::filesystem::remove_all(dir);
  StorageSystem sys(1, "s1", 1e9, 0.01);
  sys.attach_directory(dir.string());
  const auto frag = make_fragment("obj/with/slashes", 2, 5, 333);
  sys.put(frag);
  const auto back = sys.get(frag.id.key());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, frag.payload);
  EXPECT_EQ(back->id, frag.id);
  EXPECT_EQ(sys.used_bytes(), 333u);
  sys.erase(frag.id.key());
  EXPECT_EQ(sys.used_bytes(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(StorageSystem, RejectsBadConstruction) {
  EXPECT_THROW(StorageSystem(0, "x", 0.0, 0.01), invariant_error);
  EXPECT_THROW(StorageSystem(0, "x", 1e9, 1.0), invariant_error);
}

TEST(Cluster, ConstructionSamplesBandwidths) {
  Cluster cluster(ClusterConfig{16, 0.01, 7});
  EXPECT_EQ(cluster.size(), 16u);
  const auto bw = cluster.bandwidths();
  for (f64 b : bw) {
    // The log-sampler means plus jitter: generous envelope around the
    // paper's 400 MB/s .. 3 GB/s.
    EXPECT_GT(b, 300.0e6);
    EXPECT_LT(b, 4.0e9);
  }
  // Not all equal.
  EXPECT_NE(bw.front(), bw.back());
}

TEST(Cluster, DeterministicForSeed) {
  Cluster a(ClusterConfig{8, 0.01, 9});
  Cluster b(ClusterConfig{8, 0.01, 9});
  EXPECT_EQ(a.bandwidths(), b.bandwidths());
  Cluster c(ClusterConfig{8, 0.01, 10});
  EXPECT_NE(a.bandwidths(), c.bandwidths());
}

TEST(Cluster, FailRestoreBookkeeping) {
  Cluster cluster(ClusterConfig{5, 0.01, 1});
  EXPECT_EQ(cluster.num_failed(), 0u);
  cluster.fail(1);
  cluster.fail(3);
  EXPECT_EQ(cluster.num_failed(), 2u);
  EXPECT_EQ(cluster.available_systems(), (std::vector<u32>{0, 2, 4}));
  cluster.restore(1);
  EXPECT_EQ(cluster.num_failed(), 1u);
  cluster.restore_all();
  EXPECT_EQ(cluster.num_failed(), 0u);
}

TEST(Failure, SampleOutageMatchesProbability) {
  Cluster cluster(ClusterConfig{16, 0.05, 2});
  Rng rng(3);
  u64 down = 0, total = 0;
  for (int t = 0; t < 20000; ++t) {
    const auto mask = sample_outage(cluster, rng);
    for (bool b : mask) down += b;
    total += mask.size();
  }
  EXPECT_NEAR(static_cast<f64>(down) / total, 0.05, 0.005);
}

TEST(Failure, ApplyOutage) {
  Cluster cluster(ClusterConfig{4, 0.01, 4});
  apply_outage(cluster, {true, false, true, false});
  EXPECT_FALSE(cluster.system(0).available());
  EXPECT_TRUE(cluster.system(1).available());
  EXPECT_EQ(cluster.num_failed(), 2u);
  apply_outage(cluster, {false, false, false, false});
  EXPECT_EQ(cluster.num_failed(), 0u);
}

TEST(Failure, FailExactly) {
  Cluster cluster(ClusterConfig{6, 0.01, 5});
  fail_exactly(cluster, {2, 5});
  EXPECT_EQ(cluster.num_failed(), 2u);
  EXPECT_FALSE(cluster.system(2).available());
  fail_exactly(cluster, {0});
  EXPECT_EQ(cluster.num_failed(), 1u);
  EXPECT_TRUE(cluster.system(2).available());
}

TEST(Failure, MonteCarloExpectationDeterministic) {
  Cluster cluster(ClusterConfig{8, 0.1, 6});
  auto count_failed = [](const std::vector<bool>& mask) {
    f64 n = 0;
    for (bool b : mask) n += b;
    return n;
  };
  const f64 a = monte_carlo_expectation(cluster, 5000, 11, count_failed);
  const f64 b = monte_carlo_expectation(cluster, 5000, 11, count_failed);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(a, 0.8, 0.05);  // E[failed] = n*p = 0.8
}

TEST(StorageSystem, ConcurrentFlipAndAccessIsRaceFree) {
  // Availability flips from one thread while others put/get/erase: the
  // atomic flag plus the per-system store mutex must keep this data-race
  // free (run under TSan via scripts/sanitize.sh). io_error from a
  // mid-flight flip is the expected, typed outcome.
  StorageSystem sys(0, "s0", 1e9, 0.01);
  for (u32 i = 0; i < 8; ++i) sys.put(make_fragment("c", 0, i, 64));
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool up = false;
    while (!stop.load(std::memory_order_relaxed)) {
      sys.set_available(up);
      up = !up;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&sys, w] {
      for (int i = 0; i < 2000; ++i) {
        const u32 idx = static_cast<u32>((i + w) % 8);
        try {
          if (i % 3 == 0) sys.put(make_fragment("c", 0, idx, 64));
          const auto got = sys.get(ec::FragmentId{"c", 0, idx}.key());
          if (got) EXPECT_TRUE(got->verify());
          (void)sys.used_bytes();
          (void)sys.fragment_count();
        } catch (const io_error&) {
          // flipped unavailable mid-access: typed, expected
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  sys.set_available(true);
  EXPECT_EQ(sys.fragment_count(), 8u);
  for (u32 i = 0; i < 8; ++i)
    EXPECT_TRUE(sys.get(ec::FragmentId{"c", 0, i}.key())->verify());
}

TEST(Cluster, ConcurrentFailRestoreKeepsCountsConsistent) {
  Cluster cluster(ClusterConfig{8, 0.01, 3});
  std::vector<std::thread> monkeys;
  for (u32 m = 0; m < 4; ++m) {
    monkeys.emplace_back([&cluster, m] {
      for (int i = 0; i < 2000; ++i) {
        const u32 victim = (m * 2 + i) % 8;
        cluster.fail(victim);
        (void)cluster.num_failed();
        (void)cluster.available_systems();
        cluster.restore(victim);
      }
    });
  }
  for (auto& t : monkeys) t.join();
  EXPECT_EQ(cluster.num_failed(), 0u);
}

TEST(Placement, IdentityAndRotate) {
  EXPECT_EQ(place_fragment(PlacementPolicy::kIdentity, 8, 3, 5), 5u);
  EXPECT_EQ(place_fragment(PlacementPolicy::kRotate, 8, 3, 5), 0u);
  EXPECT_EQ(place_fragment(PlacementPolicy::kRotate, 8, 0, 5), 5u);
}

TEST(Placement, InverseConsistency) {
  for (auto policy : {PlacementPolicy::kIdentity, PlacementPolicy::kRotate}) {
    for (u32 level = 0; level < 6; ++level) {
      for (u32 index = 0; index < 8; ++index) {
        const u32 sys = place_fragment(policy, 8, level, index);
        EXPECT_EQ(fragment_at(policy, 8, level, sys), index);
      }
    }
  }
}

TEST(Placement, RotateIsBijectivePerLevel) {
  for (u32 level = 0; level < 5; ++level) {
    std::vector<bool> hit(8, false);
    for (u32 index = 0; index < 8; ++index) {
      const u32 sys = place_fragment(PlacementPolicy::kRotate, 8, level, index);
      EXPECT_FALSE(hit[sys]);
      hit[sys] = true;
    }
  }
}

TEST(Placement, OutOfRangeRejected) {
  EXPECT_THROW(place_fragment(PlacementPolicy::kIdentity, 4, 0, 4),
               invariant_error);
}

}  // namespace
}  // namespace rapids::storage
