// Tests for the runtime-dispatched SIMD kernel layer: every compiled-in
// implementation tier must be byte-identical to the scalar reference for
// every coefficient (exhaustive 0..255) across awkward buffer lengths, the
// fused matrix_apply must match its scalar reference and the unfused
// per-row kernels, hardware CRC32C must equal slice-by-4, and the
// ISA-selection rules (RAPIDS_FORCE_SCALAR, test override) must hold.
// Finally, the Reed-Solomon codec must produce byte-identical fragments and
// payloads on the scalar and SIMD paths for all tested geometries.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "rapids/ec/gf256.hpp"
#include "rapids/ec/reed_solomon.hpp"
#include "rapids/simd/cpu_features.hpp"
#include "rapids/simd/crc32c_hw.hpp"
#include "rapids/simd/gf256_kernels.hpp"
#include "rapids/util/crc32c.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::simd {
namespace {

// Lengths that stress every vector-width boundary: empty, sub-word, word,
// one vector +/- 1 for 16- and 32-byte widths, the 64-byte unroll, the 8 KiB
// internal block edge, and a multi-block non-multiple-of-16 size.
const std::vector<std::size_t> kLengths = {0,  1,  3,    7,    8,    9,
                                           15, 16, 17,   31,   32,   33,
                                           63, 64, 65,   127,  255,  256,
                                           1000,   4095, 4096, 4097, 8193};

std::vector<u8> random_bytes(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> out(n);
  for (auto& b : out) b = static_cast<u8>(rng.next_u64());
  return out;
}

std::vector<IsaLevel> testable_levels() {
  std::vector<IsaLevel> out;
  for (IsaLevel l : {IsaLevel::kSsse3, IsaLevel::kAvx2, IsaLevel::kNeon})
    if (isa_supported(l)) out.push_back(l);
  return out;
}

// Restores automatic ISA selection even when a test fails mid-body.
struct IsaOverrideGuard {
  explicit IsaOverrideGuard(IsaLevel l) { set_isa_override(l); }
  ~IsaOverrideGuard() { set_isa_override(std::nullopt); }
};

// --- primitive kernels: exhaustive coefficient sweep per tier ---

TEST(SimdKernels, MulAccMatchesScalarForAllCoefficients) {
  for (IsaLevel level : testable_levels()) {
    const Gf256Kernels& k = kernels_for(level);
    for (std::size_t n : kLengths) {
      const auto src = random_bytes(n, 0x5EED0 + n);
      const auto base = random_bytes(n, 0xACC0 + n);
      for (u32 c = 0; c < 256; ++c) {
        std::vector<u8> want = base;
        scalar_kernels().mul_acc(want.data(), src.data(), n, static_cast<u8>(c));
        std::vector<u8> got = base;
        k.mul_acc(got.data(), src.data(), n, static_cast<u8>(c));
        ASSERT_EQ(want, got) << k.name << " mul_acc c=" << c << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, MulToMatchesScalarForAllCoefficients) {
  for (IsaLevel level : testable_levels()) {
    const Gf256Kernels& k = kernels_for(level);
    for (std::size_t n : kLengths) {
      const auto src = random_bytes(n, 0x5EED1 + n);
      for (u32 c = 0; c < 256; ++c) {
        std::vector<u8> want(n, 0xEE);
        scalar_kernels().mul_to(want.data(), src.data(), n, static_cast<u8>(c));
        std::vector<u8> got(n, 0xEE);
        k.mul_to(got.data(), src.data(), n, static_cast<u8>(c));
        ASSERT_EQ(want, got) << k.name << " mul_to c=" << c << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, XorAccMatchesScalar) {
  for (IsaLevel level : testable_levels()) {
    const Gf256Kernels& k = kernels_for(level);
    for (std::size_t n : kLengths) {
      const auto src = random_bytes(n, 0x5EED2 + n);
      const auto base = random_bytes(n, 0xACC2 + n);
      std::vector<u8> want = base;
      scalar_kernels().xor_acc(want.data(), src.data(), n);
      std::vector<u8> got = base;
      k.xor_acc(got.data(), src.data(), n);
      ASSERT_EQ(want, got) << k.name << " xor_acc n=" << n;
    }
  }
}

// The scalar kernels themselves against first-principles GF256::mul — they
// are the ground truth every SIMD tier is compared to, so they get their own
// oracle.
TEST(SimdKernels, ScalarKernelsMatchFieldMultiply) {
  const std::size_t n = 257;
  const auto src = random_bytes(n, 42);
  const auto base = random_bytes(n, 43);
  for (u32 c = 0; c < 256; ++c) {
    std::vector<u8> acc = base;
    scalar_kernels().mul_acc(acc.data(), src.data(), n, static_cast<u8>(c));
    std::vector<u8> to(n);
    scalar_kernels().mul_to(to.data(), src.data(), n, static_cast<u8>(c));
    for (std::size_t i = 0; i < n; ++i) {
      const u8 p = ec::GF256::mul(static_cast<u8>(c), src[i]);
      ASSERT_EQ(acc[i], static_cast<u8>(base[i] ^ p)) << "c=" << c << " i=" << i;
      ASSERT_EQ(to[i], p) << "c=" << c << " i=" << i;
    }
  }
}

// --- fused matrix_apply ---

TEST(SimdKernels, MatrixApplyMatchesScalarReference) {
  struct Geometry {
    u32 k, m;
  };
  for (const auto [k, m] : {Geometry{4, 2}, Geometry{12, 4}, Geometry{8, 8},
                            Geometry{1, 1}, Geometry{3, 5}}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                          std::size_t{64}, std::size_t{1000}, std::size_t{8193}}) {
      const auto coeffs = random_bytes(std::size_t{k} * m, 0xC0EFF + k + m);
      std::vector<std::vector<u8>> src_bufs(k);
      std::vector<const u8*> srcs(k);
      for (u32 d = 0; d < k; ++d) {
        src_bufs[d] = random_bytes(n, 100 + d + n);
        srcs[d] = src_bufs[d].data();
      }
      for (bool accumulate : {false, true}) {
        std::vector<std::vector<u8>> want_bufs(m), got_bufs(m);
        std::vector<u8*> want(m), got(m);
        for (u32 j = 0; j < m; ++j) {
          want_bufs[j] = random_bytes(n, 200 + j + n);
          got_bufs[j] = want_bufs[j];
          want[j] = want_bufs[j].data();
          got[j] = got_bufs[j].data();
        }
        matrix_apply_scalar(want.data(), m, srcs.data(), k, coeffs.data(), n,
                            accumulate);
        for (IsaLevel level : testable_levels()) {
          IsaOverrideGuard guard(level);
          // Reset got to the pre-apply contents (want_bufs already holds the
          // scalar result, so regenerate from the seed).
          for (u32 j = 0; j < m; ++j) {
            got_bufs[j] = random_bytes(n, 200 + j + n);
            got[j] = got_bufs[j].data();
          }
          matrix_apply(got.data(), m, srcs.data(), k, coeffs.data(), n,
                       accumulate);
          for (u32 j = 0; j < m; ++j)
            ASSERT_EQ(want_bufs[j], got_bufs[j])
                << isa_name(level) << " k=" << k << " m=" << m << " n=" << n
                << " acc=" << accumulate << " row " << j;
        }
      }
    }
  }
}

TEST(SimdKernels, MatrixApplyMatchesUnfusedMulAcc) {
  const u32 k = 6, m = 3;
  const std::size_t n = 4097;
  const auto coeffs = random_bytes(std::size_t{k} * m, 7);
  std::vector<std::vector<u8>> src_bufs(k);
  std::vector<const u8*> srcs(k);
  for (u32 d = 0; d < k; ++d) {
    src_bufs[d] = random_bytes(n, 300 + d);
    srcs[d] = src_bufs[d].data();
  }
  // Unfused reference: m*k separate scalar mul_acc passes over zeroed rows.
  std::vector<std::vector<u8>> want(m, std::vector<u8>(n, 0));
  for (u32 j = 0; j < m; ++j)
    for (u32 d = 0; d < k; ++d)
      scalar_kernels().mul_acc(want[j].data(), srcs[d], n, coeffs[j * k + d]);
  std::vector<std::vector<u8>> got_bufs(m, std::vector<u8>(n, 0xAB));
  std::vector<u8*> got(m);
  for (u32 j = 0; j < m; ++j) got[j] = got_bufs[j].data();
  matrix_apply(got.data(), m, srcs.data(), k, coeffs.data(), n,
               /*accumulate=*/false);
  for (u32 j = 0; j < m; ++j) ASSERT_EQ(want[j], got_bufs[j]) << "row " << j;
}

// --- CRC32C: hardware vs slice-by-4 ---

TEST(SimdCrc32c, HardwareMatchesSoftware) {
  if (!crc32c_hw_available()) GTEST_SKIP() << "no hardware CRC32C";
  for (std::size_t n : kLengths) {
    const auto rnd = random_bytes(n, 0xC4C + n);
    const std::vector<u8> zeros(n, 0);
    for (const auto& buf : {rnd, zeros}) {
      IsaOverrideGuard guard(IsaLevel::kScalar);  // pin software slice-by-4
      const u32 sw = rapids::crc32c(buf.data(), buf.size());
      const u32 hw = crc32c_hw(buf.data(), buf.size(), 0);
      ASSERT_EQ(sw, hw) << "n=" << n;
    }
  }
}

TEST(SimdCrc32c, HardwareMatchesSoftwareChained) {
  if (!crc32c_hw_available()) GTEST_SKIP() << "no hardware CRC32C";
  const auto buf = random_bytes(1000, 99);
  IsaOverrideGuard guard(IsaLevel::kScalar);
  // Chain in two uneven pieces through the seed parameter.
  const u32 sw = rapids::crc32c(buf.data() + 333, buf.size() - 333,
                                rapids::crc32c(buf.data(), 333));
  const u32 hw =
      crc32c_hw(buf.data() + 333, buf.size() - 333, crc32c_hw(buf.data(), 333, 0));
  EXPECT_EQ(sw, hw);
}

TEST(SimdCrc32c, PublicEntryPointIdenticalAcrossPaths) {
  if (!crc32c_hw_available()) GTEST_SKIP() << "no hardware CRC32C";
  const auto buf = random_bytes(12345, 7);
  u32 dispatched, scalar;
  {
    IsaOverrideGuard guard(IsaLevel::kAvx2);  // clamps to best supported
    dispatched = rapids::crc32c(buf.data(), buf.size());
  }
  {
    IsaOverrideGuard guard(IsaLevel::kScalar);
    scalar = rapids::crc32c(buf.data(), buf.size());
  }
  EXPECT_EQ(dispatched, scalar);
}

// --- ISA selection rules ---

TEST(CpuFeatures, ScalarAlwaysSupported) {
  EXPECT_TRUE(isa_supported(IsaLevel::kScalar));
  EXPECT_STREQ(kernels_for(IsaLevel::kScalar).name, "scalar");
}

TEST(CpuFeatures, UnsupportedLevelFallsBackToScalarKernels) {
#if !defined(__aarch64__)
  EXPECT_FALSE(isa_supported(IsaLevel::kNeon));
  EXPECT_STREQ(kernels_for(IsaLevel::kNeon).name, "scalar");
#else
  EXPECT_FALSE(isa_supported(IsaLevel::kAvx2));
  EXPECT_STREQ(kernels_for(IsaLevel::kAvx2).name, "scalar");
#endif
}

TEST(CpuFeatures, OverrideForcesScalar) {
  IsaOverrideGuard guard(IsaLevel::kScalar);
  EXPECT_EQ(active_isa(), IsaLevel::kScalar);
  EXPECT_STREQ(active_isa_name(), "scalar");
  EXPECT_STREQ(active_kernels().name, "scalar");
  EXPECT_FALSE(crc32c_hw_active());
}

TEST(CpuFeatures, ForceScalarEnvHonored) {
  // The env var is normally latched at startup; the refresh hook re-reads it
  // so the rule itself is testable in-process.
  ASSERT_EQ(setenv("RAPIDS_FORCE_SCALAR", "1", 1), 0);
  refresh_force_scalar_for_testing();
  EXPECT_TRUE(force_scalar());
  EXPECT_EQ(active_isa(), IsaLevel::kScalar);
  EXPECT_FALSE(crc32c_hw_active());
  ASSERT_EQ(unsetenv("RAPIDS_FORCE_SCALAR"), 0);
  refresh_force_scalar_for_testing();
  EXPECT_FALSE(force_scalar());
  // "0" and empty mean off as well.
  ASSERT_EQ(setenv("RAPIDS_FORCE_SCALAR", "0", 1), 0);
  refresh_force_scalar_for_testing();
  EXPECT_FALSE(force_scalar());
  ASSERT_EQ(unsetenv("RAPIDS_FORCE_SCALAR"), 0);
  refresh_force_scalar_for_testing();
}

TEST(CpuFeatures, BestIsaSelectedAutomatically) {
  const CpuFeatures& f = cpu_features();
  const IsaLevel active = active_isa();
#if defined(__x86_64__) || defined(__i386__)
  if (f.avx2) {
    EXPECT_EQ(active, IsaLevel::kAvx2);
  } else if (f.ssse3) {
    EXPECT_EQ(active, IsaLevel::kSsse3);
  } else {
    EXPECT_EQ(active, IsaLevel::kScalar);
  }
#elif defined(__aarch64__)
  EXPECT_EQ(active, IsaLevel::kNeon);
#else
  EXPECT_EQ(active, IsaLevel::kScalar);
#endif
}

// --- Reed-Solomon end-to-end: scalar path == SIMD path ---

struct RsGeometry {
  u32 k, m;
};

class RsSimdParityTest : public ::testing::TestWithParam<RsGeometry> {};

TEST_P(RsSimdParityTest, EncodeDecodeByteIdenticalAcrossPaths) {
  const auto [k, m] = GetParam();
  const ec::ReedSolomon rs(k, m);
  // Non-multiple-of-16 payload so every fragment has a vector tail.
  const auto payload = random_bytes(std::size_t{k} * 4096 + 1234 + k, 0xDA7A + k);

  std::vector<ec::Fragment> scalar_frags, simd_frags;
  {
    IsaOverrideGuard guard(IsaLevel::kScalar);
    scalar_frags = rs.encode(payload, "obj", 0);
  }
  simd_frags = rs.encode(payload, "obj", 0);
  ASSERT_EQ(scalar_frags.size(), simd_frags.size());
  for (std::size_t i = 0; i < scalar_frags.size(); ++i) {
    ASSERT_EQ(scalar_frags[i].payload, simd_frags[i].payload) << "fragment " << i;
    ASSERT_EQ(scalar_frags[i].payload_crc, simd_frags[i].payload_crc)
        << "fragment " << i;
  }

  // Worst-case survivor set (all parity in play) decoded on both paths.
  std::vector<ec::Fragment> survivors(simd_frags.begin() + std::min(k, m),
                                      simd_frags.end());
  std::vector<u8> scalar_out, simd_out;
  {
    IsaOverrideGuard guard(IsaLevel::kScalar);
    scalar_out = rs.decode(survivors);
  }
  simd_out = rs.decode(survivors);
  EXPECT_EQ(scalar_out, payload);
  EXPECT_EQ(simd_out, payload);
  EXPECT_EQ(scalar_out, simd_out);

  // Repair path: rebuild one data and one parity fragment on both paths.
  for (u32 missing : {u32{0}, k}) {
    std::vector<ec::Fragment> rest;
    for (const auto& f : simd_frags)
      if (f.id.index != missing) rest.push_back(f);
    ec::Fragment scalar_rebuilt, simd_rebuilt;
    {
      IsaOverrideGuard guard(IsaLevel::kScalar);
      scalar_rebuilt = rs.reconstruct_fragment(rest, missing);
    }
    simd_rebuilt = rs.reconstruct_fragment(rest, missing);
    EXPECT_EQ(scalar_rebuilt.payload, simd_frags[missing].payload);
    EXPECT_EQ(simd_rebuilt.payload, simd_frags[missing].payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, RsSimdParityTest,
                         ::testing::Values(RsGeometry{4, 2}, RsGeometry{12, 4},
                                           RsGeometry{8, 8}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "m" +
                                  std::to_string(info.param.m);
                         });

}  // namespace
}  // namespace rapids::simd
