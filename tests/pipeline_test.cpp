// Tests for the end-to-end pipeline (prepare/restore/repair) and the DP/EC
// baselines, including behaviour under injected outages.

#include <gtest/gtest.h>

#include <filesystem>

#include "rapids/core/baselines.hpp"
#include "rapids/core/pipeline.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/storage/failure.hpp"

namespace rapids::core {
namespace {

namespace fs = std::filesystem;
using mgard::Dims;

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rapids_pipe_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name())))
               .string();
    fs::remove_all(dir_);
    cluster_ = std::make_unique<storage::Cluster>(
        storage::ClusterConfig{16, 0.01, 42});
    db_ = kv::Db::open(dir_);
  }
  void TearDown() override {
    db_.reset();
    fs::remove_all(dir_);
  }

  PipelineConfig fast_config() {
    PipelineConfig cfg;
    cfg.refactor.decomp_levels = 3;
    cfg.refactor.num_retrieval_levels = 4;
    cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
    cfg.aco.iterations = 20;
    return cfg;
  }

  std::string dir_;
  std::unique_ptr<storage::Cluster> cluster_;
  std::unique_ptr<kv::Db> db_;
};

TEST_F(PipelineTest, PrepareDistributesAllFragments) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{33, 33, 17};
  const auto field = data::hurricane_pressure(dims, 1);
  const auto report = pipeline.prepare(field, dims, "hp");
  // 4 levels x 16 fragments.
  EXPECT_EQ(report.fragments_stored, 64u);
  for (u32 i = 0; i < cluster_->size(); ++i)
    EXPECT_EQ(cluster_->system(i).fragment_count(), 4u) << "system " << i;
  EXPECT_TRUE(valid_ft_config(16, report.record.ft));
  EXPECT_LE(report.storage_overhead, pipeline.config().overhead_budget);
  EXPECT_GT(report.expected_error, 0.0);
  EXPECT_LT(report.expected_error, 1e-2);
  EXPECT_GT(report.distribution_latency, 0.0);
}

TEST_F(PipelineTest, RestoreHealthyClusterFullQuality) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{33, 33, 17};
  const auto field = data::scale_temperature(dims, 2);
  pipeline.prepare(field, dims, "st");
  const auto report = pipeline.restore("st");
  EXPECT_EQ(report.levels_used, 4u);
  ASSERT_EQ(report.data.size(), field.size());
  const f64 err = data::relative_linf_error(field, report.data);
  EXPECT_LE(err, report.rel_error_bound);
  EXPECT_LE(err, 1e-6);
  EXPECT_GT(report.gather_latency, 0.0);
}

TEST_F(PipelineTest, RestoreDegradesGracefullyUnderOutages) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{33, 33, 17};
  const auto field = data::nyx_temperature(dims, 3);
  const auto prep = pipeline.prepare(field, dims, "nt");
  const FtConfig& ft = prep.record.ft;

  // Knock out exactly enough systems to lose the bottom level but keep the
  // upper ones: N = m_{l-1} failures (> m_l, <= m_{l-1}).
  const u32 kill = ft[ft.size() - 2];
  std::vector<u32> down;
  for (u32 i = 0; i < kill; ++i) down.push_back(i);
  storage::fail_exactly(*cluster_, down);

  const auto report = pipeline.restore("nt");
  EXPECT_EQ(report.levels_used, static_cast<u32>(ft.size()) - 1);
  const f64 err = data::relative_linf_error(field, report.data);
  EXPECT_LE(err, report.rel_error_bound);
  EXPECT_GT(report.rel_error_bound, 1e-6);  // degraded vs full quality
}

TEST_F(PipelineTest, RestoreReturnsLossWhenEverythingDown) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{17, 17, 9};
  const auto field = data::nyx_velocity(dims, 4);
  const auto prep = pipeline.prepare(field, dims, "nv");
  std::vector<u32> down;
  for (u32 i = 0; i <= prep.record.ft[0]; ++i) down.push_back(i);
  storage::fail_exactly(*cluster_, down);
  const auto report = pipeline.restore("nv");
  EXPECT_EQ(report.levels_used, 0u);
  EXPECT_TRUE(report.data.empty());
  EXPECT_DOUBLE_EQ(report.rel_error_bound, 1.0);  // the e_0 penalty
}

TEST_F(PipelineTest, AllStrategiesRestoreCorrectly) {
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_temperature(dims, 5);
  for (auto strategy : {GatherStrategy::kRandom, GatherStrategy::kNaive,
                        GatherStrategy::kOptimized}) {
    auto cfg = fast_config();
    cfg.strategy = strategy;
    RapidsPipeline pipeline(*cluster_, *db_, cfg);
    const std::string name = "obj" + std::to_string(static_cast<int>(strategy));
    pipeline.prepare(field, dims, name);
    const auto report = pipeline.restore(name);
    EXPECT_EQ(report.levels_used, 4u);
    EXPECT_LE(data::relative_linf_error(field, report.data),
              report.rel_error_bound);
  }
}

TEST_F(PipelineTest, MetadataSurvivesDbReopen) {
  const Dims dims{17, 17, 9};
  const auto field = data::scale_pressure(dims, 6);
  {
    RapidsPipeline pipeline(*cluster_, *db_, fast_config());
    pipeline.prepare(field, dims, "sp");
  }
  db_.reset();
  db_ = kv::Db::open(dir_);
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const auto record = pipeline.lookup("sp");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->meta.name, "sp");
  EXPECT_EQ(record->meta.dims, dims);
  const auto report = pipeline.restore("sp");
  EXPECT_LE(data::relative_linf_error(field, report.data),
            report.rel_error_bound);
}

TEST_F(PipelineTest, LookupUnknownObject) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  EXPECT_FALSE(pipeline.lookup("ghost").has_value());
  EXPECT_THROW(pipeline.restore("ghost"), invariant_error);
}

TEST_F(PipelineTest, RepairRebuildsLostFragment) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_pressure(dims, 7);
  const auto prep = pipeline.prepare(field, dims, "hp2");

  // Permanently lose level 2's fragment on its hosting system.
  const u32 level = 2, index = 5;
  const u32 host = storage::place_fragment(prep.record.placement, 16, level, index);
  cluster_->system(host).erase(ec::FragmentId{"hp2", level, index}.key());

  // Repair onto a different system.
  const u32 target = (host + 1) % 16;
  pipeline.repair_fragment("hp2", level, index, target);
  const auto frag =
      cluster_->system(target).get(ec::FragmentId{"hp2", level, index}.key());
  ASSERT_TRUE(frag.has_value());
  EXPECT_TRUE(frag->verify());
  EXPECT_EQ(frag->id.index, index);
}

TEST_F(PipelineTest, ObjectRecordSerializationRoundTrip) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{17, 17, 9};
  const auto field = data::nyx_velocity(dims, 8);
  const auto prep = pipeline.prepare(field, dims, "rt");
  const Bytes wire = prep.record.serialize();
  const auto back = ObjectRecord::deserialize(as_bytes_view(wire));
  EXPECT_EQ(back.ft, prep.record.ft);
  EXPECT_EQ(back.level_sizes, prep.record.level_sizes);
  EXPECT_EQ(back.matrix_kind, prep.record.matrix_kind);
  EXPECT_EQ(back.placement, prep.record.placement);
  EXPECT_EQ(back.meta.name, "rt");
}

TEST_F(PipelineTest, CauchyMatrixVariantWorksEndToEnd) {
  auto cfg = fast_config();
  cfg.matrix_kind = ec::MatrixKind::kCauchy;
  RapidsPipeline pipeline(*cluster_, *db_, cfg);
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 9);
  pipeline.prepare(field, dims, "cauchy");
  storage::fail_exactly(*cluster_, {0, 1});
  const auto report = pipeline.restore("cauchy");
  EXPECT_GE(report.levels_used, 3u);
  EXPECT_LE(data::relative_linf_error(field, report.data),
            report.rel_error_bound);
}

TEST_F(PipelineTest, IdentityPlacementWorksEndToEnd) {
  auto cfg = fast_config();
  cfg.placement = storage::PlacementPolicy::kIdentity;
  RapidsPipeline pipeline(*cluster_, *db_, cfg);
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 10);
  pipeline.prepare(field, dims, "ident");
  const auto report = pipeline.restore("ident");
  EXPECT_LE(data::relative_linf_error(field, report.data),
            report.rel_error_bound);
}

TEST_F(PipelineTest, ListObjects) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  EXPECT_TRUE(pipeline.list_objects().empty());
  const Dims dims{17, 17, 9};
  pipeline.prepare(data::hurricane_pressure(dims, 1), dims, "run/a");
  pipeline.prepare(data::scale_pressure(dims, 2), dims, "run/b");
  EXPECT_EQ(pipeline.list_objects(), (std::vector<std::string>{"run/a", "run/b"}));
}

TEST_F(PipelineTest, AgingReclaimsSpaceAndCapsAccuracy) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{33, 33, 17};
  const auto field = data::scale_temperature(dims, 11);
  const auto prep = pipeline.prepare(field, dims, "old_timestep");
  const f64 full_bound = prep.record.meta.rel_error_bound(4);
  const f64 aged_bound = prep.record.meta.rel_error_bound(2);

  u64 before = 0;
  for (u32 i = 0; i < 16; ++i) before += cluster_->system(i).used_bytes();
  const u64 reclaimed = pipeline.age_object("old_timestep", 2);
  EXPECT_GT(reclaimed, 0u);
  u64 after = 0;
  for (u32 i = 0; i < 16; ++i) after += cluster_->system(i).used_bytes();
  EXPECT_EQ(before - after, reclaimed);
  // The two deep levels were the bulk of the stored data.
  EXPECT_GT(reclaimed, before / 2);

  // Restores still work, now capped at the level-2 guarantee.
  const auto rest = pipeline.restore("old_timestep");
  EXPECT_EQ(rest.levels_used, 2u);
  EXPECT_DOUBLE_EQ(rest.rel_error_bound, aged_bound);
  const f64 err = data::relative_linf_error(field, rest.data);
  EXPECT_LE(err, aged_bound);
  EXPECT_GT(err, full_bound);  // accuracy genuinely reduced
}

TEST_F(PipelineTest, AgingToOneLevelStillRestores) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{17, 17, 9};
  const auto field = data::nyx_temperature(dims, 12);
  pipeline.prepare(field, dims, "ancient");
  pipeline.age_object("ancient", 1);
  const auto rest = pipeline.restore("ancient");
  EXPECT_EQ(rest.levels_used, 1u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

TEST_F(PipelineTest, AgingValidation) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{17, 17, 9};
  pipeline.prepare(data::nyx_velocity(dims, 13), dims, "v");
  EXPECT_THROW(pipeline.age_object("ghost", 2), invariant_error);
  EXPECT_THROW(pipeline.age_object("v", 0), invariant_error);
  EXPECT_THROW(pipeline.age_object("v", 4), invariant_error);
  // Aging twice to successively fewer levels works.
  pipeline.age_object("v", 3);
  pipeline.age_object("v", 2);
  EXPECT_EQ(pipeline.restore("v").levels_used, 2u);
}

TEST_F(PipelineTest, AgedObjectSurvivesOutagesWithinNewTolerance) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_temperature(dims, 14);
  const auto prep = pipeline.prepare(field, dims, "aged_ht");
  pipeline.age_object("aged_ht", 2);
  // Level 2's tolerance still applies after aging.
  const u32 m2 = prep.record.ft[1];
  std::vector<u32> down;
  for (u32 i = 0; i < m2; ++i) down.push_back(i);
  storage::fail_exactly(*cluster_, down);
  const auto rest = pipeline.restore("aged_ht");
  EXPECT_EQ(rest.levels_used, 2u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

TEST_F(PipelineTest, ScrubDetectsAndRepairsBitRot) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{33, 17, 9};
  const auto field = data::scale_pressure(dims, 15);
  pipeline.prepare(field, dims, "scrubbed");

  // Clean object scrubs clean.
  auto clean = pipeline.scrub("scrubbed");
  EXPECT_EQ(clean.fragments_checked, 64u);
  EXPECT_TRUE(clean.damaged.empty());

  // Corrupt one fragment, delete another.
  const auto corrupt = [&](u32 level, u32 sys) {
    const u32 idx = storage::fragment_at(storage::PlacementPolicy::kRotate, 16,
                                         level, sys);
    auto frag = cluster_->system(sys).get(ec::FragmentId{"scrubbed", level, idx}.key());
    ASSERT_TRUE(frag.has_value());
    frag->payload[3] ^= 0x55;
    cluster_->system(sys).put(*frag);
  };
  corrupt(1, 7);
  const u32 gone_idx =
      storage::fragment_at(storage::PlacementPolicy::kRotate, 16, 3, 2);
  cluster_->system(2).erase(ec::FragmentId{"scrubbed", 3, gone_idx}.key());

  auto found = pipeline.scrub("scrubbed", /*repair=*/true);
  EXPECT_EQ(found.damaged.size(), 2u);
  EXPECT_EQ(found.repaired, 2u);

  // After repair, everything verifies again and restores at full quality.
  auto after = pipeline.scrub("scrubbed");
  EXPECT_TRUE(after.damaged.empty());
  const auto rest = pipeline.restore("scrubbed");
  EXPECT_EQ(rest.levels_used, 4u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

TEST_F(PipelineTest, ScrubSkipsDownSystems) {
  RapidsPipeline pipeline(*cluster_, *db_, fast_config());
  const Dims dims{17, 17, 9};
  pipeline.prepare(data::nyx_temperature(dims, 16), dims, "s2");
  cluster_->fail(5);
  const auto report = pipeline.scrub("s2", false);
  EXPECT_EQ(report.fragments_checked, 60u);  // 4 levels x 15 reachable systems
  EXPECT_TRUE(report.damaged.empty());
}

// --- baselines ---

TEST_F(PipelineTest, DuplicationBaselineRoundTrip) {
  DuplicationBaseline dp(*cluster_, 3);
  std::vector<u8> payload(10000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<u8>(i * 13);
  const auto holders = dp.store("blob", payload);
  EXPECT_EQ(holders.size(), 3u);
  EXPECT_EQ(dp.fetch("blob").value(), payload);
  // Two of three holders down: still fetchable.
  storage::fail_exactly(*cluster_, {holders[0], holders[1]});
  EXPECT_EQ(dp.fetch("blob").value(), payload);
  // All three down: gone.
  storage::fail_exactly(*cluster_, holders);
  EXPECT_FALSE(dp.fetch("blob").has_value());
}

TEST_F(PipelineTest, EcBaselineRoundTrip) {
  EcBaseline ecb(*cluster_, 12, 4);
  std::vector<u8> payload(50000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<u8>(i * 7 + 1);
  ecb.store("blob", payload);
  EXPECT_EQ(ecb.fetch("blob").value(), payload);
  // 4 failures tolerated.
  storage::fail_exactly(*cluster_, {0, 5, 10, 15});
  EXPECT_EQ(ecb.fetch("blob").value(), payload);
  // 5 failures among the 16 holders: unrecoverable.
  storage::fail_exactly(*cluster_, {0, 3, 5, 10, 15});
  EXPECT_FALSE(ecb.fetch("blob").has_value());
}

TEST_F(PipelineTest, PlanningHelpersShapes) {
  const auto bw = cluster_->bandwidths();
  const auto dp = dp_distribution_plan(1000000, 2, bw);
  ASSERT_EQ(dp.size(), 2u);
  EXPECT_EQ(dp[0].bytes, 1000000u);
  // Highest-bandwidth systems picked.
  const f64 max_bw = *std::max_element(bw.begin(), bw.end());
  EXPECT_DOUBLE_EQ(bw[dp[0].system], max_bw);

  const auto ec = ec_distribution_plan(1200, 12, 4);
  ASSERT_EQ(ec.size(), 16u);
  EXPECT_EQ(ec[0].bytes, 100u);

  const auto rfec = rfec_distribution_plan(std::vector<u64>{800, 8000},
                                           FtConfig{4, 2}, 16);
  ASSERT_EQ(rfec.size(), 32u);
  EXPECT_EQ(rfec[0].bytes, ceil_div(800, 12));
  EXPECT_EQ(rfec[31].bytes, ceil_div(8000, 14));
}

TEST_F(PipelineTest, RestorePlansRespectAvailability) {
  const auto bw = cluster_->bandwidths();
  std::vector<bool> avail(16, true);
  avail[2] = false;
  const auto dp = dp_restore_plan(1000, std::vector<u32>{2, 3}, bw, avail);
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ((*dp)[0].system, 3u);
  const auto none =
      dp_restore_plan(1000, std::vector<u32>{2}, bw, avail);
  EXPECT_FALSE(none.has_value());

  std::vector<bool> five_down(16, true);
  for (u32 i = 0; i < 5; ++i) five_down[i] = false;
  EXPECT_FALSE(ec_restore_plan(1000, 12, 4, bw, five_down).has_value());
  const auto ok = ec_restore_plan(1000, 12, 4, bw, avail);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->size(), 12u);
}

}  // namespace
}  // namespace rapids::core
