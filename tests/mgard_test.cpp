// Tests for the multigrid refactorer: grid topology, transform exactness,
// coarse-space annihilation, bitplane codec error contracts, retrieval-level
// assembly invariants, and the end-to-end error-bound guarantee the rest of
// RAPIDS depends on.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "rapids/data/field_generators.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/mgard/bitplane.hpp"
#include "rapids/mgard/decompose.hpp"
#include "rapids/mgard/grid.hpp"
#include "rapids/mgard/refactorer.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::mgard {
namespace {

// --- GridHierarchy ---

TEST(Grid, PaddingToDyadicPlusOne) {
  GridHierarchy h(Dims{100, 1, 1}, 3);
  // 100 -> next c*8+1 >= 100 is 105.
  EXPECT_EQ(h.padded().nx, 105u);
  EXPECT_EQ(h.padded().ny, 1u);
  GridHierarchy h2(Dims{65, 65, 65}, 4);
  EXPECT_EQ(h2.padded(), (Dims{65, 65, 65}));  // already 4*16+1
}

TEST(Grid, GridAtStepShrinksDyadically) {
  GridHierarchy h(Dims{65, 33, 1}, 3);
  EXPECT_EQ(h.grid_at_step(0), (Dims{65, 33, 1}));
  EXPECT_EQ(h.grid_at_step(1), (Dims{33, 17, 1}));
  EXPECT_EQ(h.grid_at_step(2), (Dims{17, 9, 1}));
  EXPECT_EQ(h.grid_at_step(3), (Dims{9, 5, 1}));
}

TEST(Grid, LevelSizesSumToTotal) {
  for (u32 levels : {1u, 2u, 3u, 4u}) {
    GridHierarchy h(Dims{33, 17, 9}, levels);
    u64 total = 0;
    for (u32 d = 0; d <= levels; ++d) total += h.decomp_level_size(d);
    EXPECT_EQ(total, h.padded().total()) << "levels=" << levels;
  }
}

TEST(Grid, LevelSizesGrowFromBase) {
  GridHierarchy h(Dims{65, 65, 65}, 4);
  for (u32 d = 1; d < 4; ++d)
    EXPECT_LT(h.decomp_level_size(d), h.decomp_level_size(d + 1));
  // 3-D details grow ~8x per level.
  EXPECT_GT(h.decomp_level_size(4), 4 * h.decomp_level_size(3));
}

TEST(Grid, LevelOfClassification) {
  GridHierarchy h(Dims{17, 17, 1}, 2);
  // (0,0): divisible by 4 in both axes -> base level 0.
  EXPECT_EQ(h.level_of(0, 0, 0), 0u);
  EXPECT_EQ(h.level_of(4, 8, 0), 0u);
  // Odd index in any axis -> created at step 1 -> finest detail level L.
  EXPECT_EQ(h.level_of(1, 0, 0), 2u);
  EXPECT_EQ(h.level_of(4, 3, 0), 2u);
  // Even-but-not-multiple-of-4 -> step 2 -> detail level 1.
  EXPECT_EQ(h.level_of(2, 4, 0), 1u);
  EXPECT_EQ(h.level_of(4, 6, 0), 1u);
}

TEST(Grid, LevelNodesMatchClassification) {
  GridHierarchy h(Dims{9, 9, 5}, 2);
  u64 seen = 0;
  for (u32 d = 0; d <= 2; ++d) {
    const auto& nodes = h.level_nodes(d);
    EXPECT_EQ(nodes.size(), h.decomp_level_size(d));
    seen += nodes.size();
  }
  EXPECT_EQ(seen, h.padded().total());
}

TEST(Grid, DegenerateAxesUntouched) {
  GridHierarchy h(Dims{33, 1, 1}, 3);
  EXPECT_EQ(h.padded().ny, 1u);
  EXPECT_EQ(h.grid_at_step(3).ny, 1u);
}

TEST(Grid, RejectsBadArguments) {
  EXPECT_THROW(GridHierarchy(Dims{1, 1, 1}, 1), invariant_error);
  EXPECT_THROW(GridHierarchy(Dims{9, 9, 1}, 0), invariant_error);
}

TEST(Grid, PadAndCropRoundTrip) {
  const Dims orig{10, 7, 3};
  const GridHierarchy h(orig, 2);
  std::vector<f32> src(orig.total());
  std::iota(src.begin(), src.end(), 0.0f);
  const auto padded = pad_field(src, orig, h.padded());
  EXPECT_EQ(padded.size(), h.padded().total());
  EXPECT_EQ(crop_field(padded, h.padded(), orig), src);
}

TEST(Grid, PaddingReplicatesEdges) {
  const Dims orig{3, 1, 1};
  const Dims padded{5, 1, 1};
  const std::vector<f64> src = {1.0, 2.0, 3.0};
  const auto out = pad_field(src, orig, padded);
  EXPECT_EQ(out, (std::vector<f64>{1.0, 2.0, 3.0, 3.0, 3.0}));
}

// --- decompose / recompose ---

struct TransformCase {
  Dims dims;
  u32 levels;
  bool correction;
};

class TransformTest : public ::testing::TestWithParam<TransformCase> {};

TEST_P(TransformTest, RoundTripIsExact) {
  const auto& tc = GetParam();
  const GridHierarchy h(tc.dims, tc.levels);
  Rng rng(42);
  std::vector<f64> field(tc.dims.total());
  for (auto& v : field) v = rng.uniform(-10.0, 10.0);
  auto padded = pad_field(field, tc.dims, h.padded());
  const auto orig = padded;
  const DecomposeOptions opt{tc.correction};
  decompose(padded, h, opt);
  recompose(padded, h, opt);
  f64 max_err = 0.0;
  for (std::size_t i = 0; i < padded.size(); ++i)
    max_err = std::max(max_err, std::fabs(padded[i] - orig[i]));
  EXPECT_LT(max_err, 1e-10) << "dims=" << tc.dims.nx << "x" << tc.dims.ny << "x"
                            << tc.dims.nz;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransformTest,
    ::testing::Values(TransformCase{{129, 1, 1}, 4, true},
                      TransformCase{{129, 1, 1}, 4, false},
                      TransformCase{{65, 33, 1}, 3, true},
                      TransformCase{{33, 33, 33}, 3, true},
                      TransformCase{{33, 33, 33}, 3, false},
                      TransformCase{{17, 9, 5}, 2, true},
                      TransformCase{{100, 50, 20}, 3, true},
                      TransformCase{{2, 2, 2}, 1, true},
                      TransformCase{{513, 1, 1}, 5, true},
                      TransformCase{{65, 65, 1}, 6, true}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::to_string(p.dims.nx) + "x" + std::to_string(p.dims.ny) + "x" +
             std::to_string(p.dims.nz) + "L" + std::to_string(p.levels) +
             (p.correction ? "corr" : "plain");
    });

TEST(Transform, AnnihilatesLinearFunctions) {
  // A multilinear function lies in every coarse space: all detail
  // coefficients must vanish (interpolation is exact for linears).
  const Dims dims{17, 17, 9};
  const GridHierarchy h(dims, 3);
  std::vector<f64> field(dims.total());
  for (u64 k = 0; k < dims.nz; ++k)
    for (u64 j = 0; j < dims.ny; ++j)
      for (u64 i = 0; i < dims.nx; ++i)
        field[(k * dims.ny + j) * dims.nx + i] =
            2.0 * i - 3.0 * j + 0.5 * k + 7.0;
  auto padded = pad_field(field, dims, h.padded());
  decompose(padded, h, DecomposeOptions{false});
  for (u32 d = 1; d <= 3; ++d) {
    const auto coeffs = gather_level(padded, h, d);
    for (f64 c : coeffs) ASSERT_NEAR(c, 0.0, 1e-9);
  }
}

TEST(Transform, DetailMagnitudeDecaysForSmoothField) {
  // For a smooth field, max detail magnitude should shrink toward finer
  // levels (second-order interpolation error ~ h^2).
  const Dims dims{129, 129, 1};
  const GridHierarchy h(dims, 4);
  std::vector<f64> field(dims.total());
  for (u64 j = 0; j < dims.ny; ++j)
    for (u64 i = 0; i < dims.nx; ++i)
      field[j * dims.nx + i] = std::sin(0.05 * i) * std::cos(0.04 * j);
  auto padded = pad_field(field, dims, h.padded());
  decompose(padded, h, DecomposeOptions{true});
  std::vector<f64> max_mag(5, 0.0);
  for (u32 d = 1; d <= 4; ++d) {
    for (f64 c : gather_level(padded, h, d))
      max_mag[d] = std::max(max_mag[d], std::fabs(c));
  }
  // Coarsest detail (d=1) has the largest magnitude; finest the smallest.
  EXPECT_GT(max_mag[1], max_mag[4]);
  EXPECT_GT(max_mag[2], max_mag[4]);
}

TEST(Transform, CoarseValuesAreTheL2Projection) {
  // The defining property of the correction step (MGARD's projection): after
  // one decomposition step, the coarse nodal values represent Q_c u, the L2
  // projection of u onto the coarse space — equivalently, the residual
  // u - Q_c u is L2-orthogonal to every coarse hat function. Verify the
  // orthogonality directly with exact piecewise-linear integration in 1-D.
  const u64 n = 65;  // fine grid, one step -> coarse 33
  Rng rng(77);
  std::vector<f64> u(n);
  for (auto& v : u) v = rng.uniform(-1.0, 1.0);

  const GridHierarchy h(Dims{n, 1, 1}, 1);
  auto work = u;
  decompose(work, h, DecomposeOptions{true});

  // Rebuild the function Q_c u + r explicitly on the fine grid: coarse nodes
  // hold Q_c u; odd nodes hold detail + interpolation of Q_c u.
  std::vector<f64> approx(n);  // the coarse-space part Q_c u on fine nodes
  for (u64 i = 0; i < n; i += 2) approx[i] = work[i];
  for (u64 i = 1; i < n; i += 2) approx[i] = 0.5 * (work[i - 1] + work[i + 1]);
  std::vector<f64> residual(n);
  for (u64 i = 0; i < n; ++i) residual[i] = u[i] - approx[i];

  // <residual, phi_c_j> over the piecewise-linear fine mesh, exact formula
  // per interval: integral of (a..b linear)*(c..d linear) = h/6*(2ac+ad+bc+2bd).
  auto inner = [&](const std::vector<f64>& f, const std::vector<f64>& g) {
    f64 total = 0.0;
    for (u64 i = 0; i + 1 < n; ++i)
      total += (2 * f[i] * g[i] + f[i] * g[i + 1] + f[i + 1] * g[i] +
                2 * f[i + 1] * g[i + 1]) /
               6.0;
    return total;
  };
  for (u64 j = 0; j < n; j += 2) {
    std::vector<f64> hat(n, 0.0);  // coarse hat at node j on the fine grid
    hat[j] = 1.0;
    if (j >= 2) hat[j - 1] = 0.5;
    if (j + 2 < n) hat[j + 1] = 0.5;
    ASSERT_NEAR(inner(residual, hat), 0.0, 1e-10) << "coarse node " << j;
  }
}

TEST(Transform, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const Dims dims{65, 33, 17};
  const GridHierarchy h(dims, 3);
  Rng rng(5);
  std::vector<f64> field(dims.total());
  for (auto& v : field) v = rng.uniform(-1.0, 1.0);
  auto serial = pad_field(field, dims, h.padded());
  auto parallel = serial;
  decompose(serial, h, DecomposeOptions{true}, nullptr);
  decompose(parallel, h, DecomposeOptions{true}, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_NEAR(serial[i], parallel[i], 1e-12);
}

TEST(Transform, GatherScatterRoundTrip) {
  const Dims dims{17, 9, 5};
  const GridHierarchy h(dims, 2);
  Rng rng(6);
  std::vector<f64> data(h.padded().total());
  for (auto& v : data) v = rng.uniform(0.0, 1.0);
  auto copy = data;
  for (u32 d = 0; d <= 2; ++d) {
    const auto coeffs = gather_level(copy, h, d);
    std::vector<f64> zeroed(coeffs.size(), 0.0);
    scatter_level(copy, h, d, zeroed);
    scatter_level(copy, h, d, coeffs);
  }
  EXPECT_EQ(copy, data);
}

// --- bitplane codec ---

TEST(Bitplane, LosslessAtFullPlanes) {
  Rng rng(7);
  std::vector<f64> coeffs(5000);
  for (auto& c : coeffs) c = rng.uniform(-100.0, 100.0);
  const PlaneSet ps = encode_planes(coeffs);
  const auto back = decode_planes(ps, kMagnitudePlanes);
  // Quantization floor: 2^(E-32), E = exponent of max.
  const f64 floor = ps.error_bound(kMagnitudePlanes);
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    ASSERT_LE(std::fabs(coeffs[i] - back[i]), floor);
}

TEST(Bitplane, ErrorBoundHoldsAtEveryPrefix) {
  Rng rng(8);
  std::vector<f64> coeffs(2000);
  for (auto& c : coeffs) c = rng.normal(0.0, 5.0);
  const PlaneSet ps = encode_planes(coeffs);
  for (u32 p = 0; p <= kMagnitudePlanes; ++p) {
    const auto back = decode_planes(ps, p);
    const f64 bound = ps.error_bound(p);
    f64 max_err = 0.0;
    for (std::size_t i = 0; i < coeffs.size(); ++i)
      max_err = std::max(max_err, std::fabs(coeffs[i] - back[i]));
    ASSERT_LE(max_err, bound) << "planes=" << p;
  }
}

TEST(Bitplane, ErrorDecreasesWithPlanes) {
  Rng rng(9);
  std::vector<f64> coeffs(2000);
  for (auto& c : coeffs) c = rng.uniform(-1.0, 1.0);
  const PlaneSet ps = encode_planes(coeffs);
  f64 prev = 1e300;
  for (u32 p = 1; p <= 24; p += 4) {
    const auto back = decode_planes(ps, p);
    f64 max_err = 0.0;
    for (std::size_t i = 0; i < coeffs.size(); ++i)
      max_err = std::max(max_err, std::fabs(coeffs[i] - back[i]));
    ASSERT_LE(max_err, prev);
    prev = max_err;
  }
}

TEST(Bitplane, ZeroPrefixDecodesToZeros) {
  std::vector<f64> coeffs = {1.0, -2.0, 3.0};
  const PlaneSet ps = encode_planes(coeffs);
  const auto back = decode_planes(ps, 0);
  for (f64 v : back) EXPECT_EQ(v, 0.0);
}

TEST(Bitplane, AllZeroLevel) {
  std::vector<f64> coeffs(100, 0.0);
  const PlaneSet ps = encode_planes(coeffs);
  EXPECT_EQ(ps.max_abs, 0.0);
  EXPECT_EQ(ps.error_bound(0), 0.0);
  const auto back = decode_planes(ps, 0);
  for (f64 v : back) EXPECT_EQ(v, 0.0);
}

TEST(Bitplane, ExactZerosStayZero) {
  std::vector<f64> coeffs(100, 0.0);
  coeffs[7] = 42.0;  // one significant coefficient
  const PlaneSet ps = encode_planes(coeffs);
  const auto back = decode_planes(ps, 8);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (i != 7) ASSERT_EQ(back[i], 0.0) << "index " << i;
  }
  EXPECT_NEAR(back[7], 42.0, ps.error_bound(8));
}

TEST(Bitplane, SignsPreserved) {
  std::vector<f64> coeffs = {-5.0, 5.0, -0.25, 0.25, -1e-3, 1e-3};
  const PlaneSet ps = encode_planes(coeffs);
  const auto back = decode_planes(ps, kMagnitudePlanes);
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    if (back[i] != 0.0)
      ASSERT_EQ(std::signbit(coeffs[i]), std::signbit(back[i])) << i;
}

TEST(Bitplane, SparsePlanesCompressSmoothData) {
  // Coefficients with a tiny dynamic range: high planes are mostly zeros and
  // the sparse encoding must beat raw bit-packing overall.
  std::vector<f64> coeffs(100000);
  Rng rng(10);
  for (auto& c : coeffs) c = rng.uniform(0.0, 1e-6);
  coeffs[0] = 1.0;  // forces a large exponent
  const PlaneSet ps = encode_planes(coeffs);
  const u64 raw_bytes = (coeffs.size() / 8) * (kMagnitudePlanes + 1);
  EXPECT_LT(ps.prefix_bytes(kMagnitudePlanes), raw_bytes / 2);
}

TEST(Bitplane, SegmentRoundTripAllModes) {
  // Zero, sparse, and raw segments.
  const u64 bits = 1000;
  std::vector<u64> zero(ceil_div(bits, 64), 0);
  std::vector<u64> sparse = zero;
  sparse[3] = 0x10;
  std::vector<u64> dense(zero.size());
  Rng rng(11);
  for (auto& w : dense) w = rng.next_u64();
  for (const auto& words : {zero, sparse, dense}) {
    const PlaneSegment seg = encode_segment(words, bits);
    EXPECT_EQ(decode_segment(seg, bits), words);
  }
}

TEST(Bitplane, ParallelEncodeDecodeMatchesSerial) {
  ThreadPool pool(4);
  Rng rng(12);
  std::vector<f64> coeffs(200000);
  for (auto& c : coeffs) c = rng.normal(0.0, 1.0);
  const PlaneSet serial = encode_planes(coeffs, kMagnitudePlanes, nullptr);
  const PlaneSet parallel = encode_planes(coeffs, kMagnitudePlanes, &pool);
  ASSERT_EQ(serial.planes.size(), parallel.planes.size());
  for (std::size_t p = 0; p < serial.planes.size(); ++p)
    ASSERT_EQ(serial.planes[p].data, parallel.planes[p].data) << "plane " << p;
  EXPECT_EQ(decode_planes(serial, 16, nullptr), decode_planes(parallel, 16, &pool));
}

// Mode bytes are wire format (see encode_segment): 0 raw, 1 sparse, 2 zero,
// 3 Rice.
constexpr std::byte kRaw{0}, kSparse{1}, kZero{2}, kRice{3};

TEST(Bitplane, RiceSegmentEdgeCases) {
  // ones == 0: the zero mode, one byte, regardless of length.
  for (u64 bits : {1u, 64u, 4097u}) {
    std::vector<u64> none(ceil_div(bits, 64), 0);
    const PlaneSegment seg = encode_segment(none, bits);
    ASSERT_EQ(seg.data.size(), 1u);
    EXPECT_EQ(seg.data[0], kZero);
    EXPECT_EQ(decode_segment(seg, bits), none);
  }
  // ones == num_bits: Rice is not even considered (ones * 2 >= num_bits) and
  // sparse cannot beat raw, so the segment must be raw and round-trip.
  for (u64 bits : {1u, 63u, 64u, 65u, 1000u}) {
    std::vector<u64> all(ceil_div(bits, 64), 0);
    for (u64 i = 0; i < bits; ++i) all[i >> 6] |= u64{1} << (i & 63);
    const PlaneSegment seg = encode_segment(all, bits);
    EXPECT_EQ(seg.data[0], kRaw) << "bits=" << bits;
    EXPECT_EQ(decode_segment(seg, bits), all) << "bits=" << bits;
  }
  // Single-word segments at every sub-word length.
  Rng rng(21);
  for (u64 bits = 1; bits <= 64; ++bits) {
    const u64 mask = bits == 64 ? ~u64{0} : (u64{1} << bits) - 1;
    const std::vector<u64> words = {rng.next_u64() & mask};
    const PlaneSegment seg = encode_segment(words, bits);
    EXPECT_EQ(decode_segment(seg, bits), words) << "bits=" << bits;
  }
  // A long, very sparse plane must pick Rice and round-trip exactly.
  const u64 bits = 8192;
  std::vector<u64> plane(ceil_div(bits, 64), 0);
  for (u64 p : {5u, 700u, 701u, 3000u, 8191u}) plane[p >> 6] |= u64{1} << (p & 63);
  const PlaneSegment seg = encode_segment(plane, bits);
  EXPECT_EQ(seg.data[0], kRice);
  EXPECT_EQ(decode_segment(seg, bits), plane);
}

TEST(Bitplane, MalformedSegmentsRejected) {
  const u64 bits = 1000;
  const u64 nwords = ceil_div(bits, 64);
  // Empty body.
  EXPECT_THROW(decode_segment(PlaneSegment{}, bits), io_error);
  // Unknown mode byte.
  EXPECT_THROW(decode_segment(PlaneSegment{{std::byte{9}}}, bits), io_error);

  // Raw segment with its payload chopped.
  std::vector<u64> dense(nwords);
  Rng rng(22);
  for (auto& w : dense) w = rng.next_u64();
  PlaneSegment raw = encode_segment(dense, bits);
  ASSERT_EQ(raw.data[0], kRaw);
  raw.data.resize(raw.data.size() - 3);
  EXPECT_THROW(decode_segment(raw, bits), io_error);

  // Sparse segment: chop inside the packed words, then inside the bitmap.
  std::vector<u64> sparse(nwords, 0);
  sparse[2] = 0xFFFF;
  sparse[9] = 0x1;
  PlaneSegment sp = encode_segment(sparse, bits);
  ASSERT_EQ(sp.data[0], kSparse);
  PlaneSegment cut = sp;
  cut.data.resize(cut.data.size() - 1);
  EXPECT_THROW(decode_segment(cut, bits), io_error);
  cut.data.resize(3);
  EXPECT_THROW(decode_segment(cut, bits), io_error);

  // Rice segment abuse. Start from a valid one.
  std::vector<u64> few(nwords, 0);
  few[0] = 0x8;
  few[7] = 0x100;
  PlaneSegment rice = encode_segment(few, bits);
  ASSERT_EQ(rice.data[0], kRice);
  // Header truncated below the fixed 10-byte prefix.
  PlaneSegment h = rice;
  h.data.resize(5);
  EXPECT_THROW(decode_segment(h, bits), io_error);
  // k out of range (> 63).
  PlaneSegment badk = rice;
  badk.data[1] = std::byte{200};
  EXPECT_THROW(decode_segment(badk, bits), io_error);
  // ones > num_bits.
  PlaneSegment bado = rice;
  for (int i = 2; i < 10; ++i) bado.data[i] = std::byte{0xFF};
  EXPECT_THROW(decode_segment(bado, bits), io_error);
  // Body truncated: the decoder must detect the missing gap bits, never read
  // past the payload or fabricate positions.
  PlaneSegment body = rice;
  body.data.resize(body.data.size() - 1);
  EXPECT_THROW(decode_segment(body, bits), io_error);
  // ones claims more gaps than the stream encodes.
  PlaneSegment more = rice;
  more.data[2] = std::byte{60};  // 60 gaps, stream holds 2
  EXPECT_THROW(decode_segment(more, bits), io_error);
}

// --- retrieval assembly ---

std::vector<PlaneSet> make_plane_sets(u64 seed) {
  Rng rng(seed);
  std::vector<PlaneSet> sets;
  for (u64 count : {50u, 400u, 3200u}) {
    std::vector<f64> coeffs(count);
    const f64 scale = 1.0 / static_cast<f64>(sets.size() + 1);
    for (auto& c : coeffs) c = rng.uniform(-scale, scale);
    sets.push_back(encode_planes(coeffs));
  }
  return sets;
}

TEST(Retrieval, BoundsStrictlyDecrease) {
  const auto sets = make_plane_sets(13);
  RetrievalOptions opt;
  opt.num_levels = 4;
  opt.final_rel_error = 1e-6;
  const auto levels = assemble_retrieval_levels(sets, 1.0, opt);
  ASSERT_EQ(levels.size(), 4u);
  for (std::size_t j = 1; j < levels.size(); ++j)
    EXPECT_LT(levels[j].rel_error_bound, levels[j - 1].rel_error_bound);
}

TEST(Retrieval, ExplicitTargetsRespected) {
  const auto sets = make_plane_sets(14);
  RetrievalOptions opt;
  opt.num_levels = 3;
  opt.target_rel_errors = {1e-1, 1e-3, 1e-5};
  const auto levels = assemble_retrieval_levels(sets, 1.0, opt);
  for (std::size_t j = 0; j < levels.size(); ++j)
    EXPECT_LE(levels[j].rel_error_bound, opt.target_rel_errors[j]);
}

TEST(Retrieval, NonDecreasingTargetsRejected) {
  const auto sets = make_plane_sets(15);
  RetrievalOptions opt;
  opt.num_levels = 2;
  opt.target_rel_errors = {1e-3, 1e-3};
  EXPECT_THROW(assemble_retrieval_levels(sets, 1.0, opt), invariant_error);
}

TEST(Retrieval, PayloadParsesBackToSegments) {
  const auto sets = make_plane_sets(16);
  RetrievalOptions opt;
  opt.num_levels = 2;
  opt.target_rel_errors = {1e-2, 1e-4};
  const auto levels = assemble_retrieval_levels(sets, 1.0, opt);
  for (const auto& lvl : levels) {
    const auto parsed = parse_retrieval_payload(as_bytes_view(lvl.payload));
    ASSERT_EQ(parsed.size(), lvl.segments.size());
    for (std::size_t s = 0; s < parsed.size(); ++s) {
      EXPECT_EQ(parsed[s].first.dlevel, lvl.segments[s].dlevel);
      EXPECT_EQ(parsed[s].first.plane, lvl.segments[s].plane);
      EXPECT_EQ(parsed[s].second.size(), lvl.segments[s].bytes);
    }
  }
}

TEST(Retrieval, CollectRebuildsContiguousPlanes) {
  const auto sets = make_plane_sets(17);
  RetrievalOptions opt;
  opt.num_levels = 3;
  opt.target_rel_errors = {1e-1, 1e-3, 1e-6};
  const auto levels = assemble_retrieval_levels(sets, 1.0, opt);
  std::vector<DLevelMeta> meta;
  for (const auto& s : sets) meta.push_back({s.count, s.max_abs, s.exponent});
  std::vector<Bytes> payloads;
  for (const auto& l : levels) payloads.push_back(l.payload);
  const auto collected = collect_plane_sets(meta, payloads);
  ASSERT_EQ(collected.size(), sets.size());
  for (std::size_t d = 0; d < sets.size(); ++d) {
    // Collected planes must be an MSB-first prefix of the originals.
    ASSERT_LE(collected[d].planes.size(), sets[d].planes.size());
    for (std::size_t p = 0; p < collected[d].planes.size(); ++p)
      ASSERT_EQ(collected[d].planes[p].data, sets[d].planes[p].data);
  }
}

// --- refactorer end-to-end ---

struct RefactorCase {
  const char* name;
  Dims dims;
  u32 decomp_levels;
  bool correction;
};

class RefactorerTest : public ::testing::TestWithParam<RefactorCase> {};

TEST_P(RefactorerTest, ProgressiveBoundsHold) {
  const auto& rc = GetParam();
  const auto field = data::hurricane_pressure(rc.dims, 1234);
  RefactorOptions opt;
  opt.decomp_levels = rc.decomp_levels;
  opt.num_retrieval_levels = 4;
  opt.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  opt.l2_correction = rc.correction;
  const Refactorer rf(opt);
  const auto obj = rf.refactor(field, rc.dims, rc.name);
  ASSERT_EQ(obj.levels.size(), 4u);

  std::vector<Bytes> payloads;
  f64 prev_err = 2.0;
  for (u32 j = 1; j <= 4; ++j) {
    payloads.push_back(obj.levels[j - 1].payload);
    const auto rec = rf.reconstruct(obj, payloads);
    const f64 err = data::relative_linf_error(field, rec);
    ASSERT_LE(err, obj.rel_error_bound(j)) << "level " << j;
    ASSERT_LE(err, prev_err * 1.0000001) << "error must not increase";
    prev_err = err;
  }
}

TEST_P(RefactorerTest, TargetsMet) {
  const auto& rc = GetParam();
  const auto field = data::nyx_velocity(rc.dims, 99);
  RefactorOptions opt;
  opt.decomp_levels = rc.decomp_levels;
  opt.num_retrieval_levels = 4;
  opt.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  opt.l2_correction = rc.correction;
  const Refactorer rf(opt);
  const auto obj = rf.refactor(field, rc.dims, rc.name);
  for (u32 j = 1; j <= 4; ++j)
    EXPECT_LE(obj.rel_error_bound(j), opt.target_rel_errors[j - 1]);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RefactorerTest,
    ::testing::Values(RefactorCase{"cube", {33, 33, 33}, 3, true},
                      RefactorCase{"cube_nocorr", {33, 33, 33}, 3, false},
                      RefactorCase{"slab", {65, 65, 9}, 3, true},
                      RefactorCase{"odd", {40, 28, 12}, 2, true},
                      RefactorCase{"deep", {65, 65, 33}, 4, true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Refactorer, CompressesSmoothData) {
  const Dims dims{65, 65, 33};
  const auto field = data::scale_pressure(dims, 5);
  RefactorOptions opt;
  opt.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  const Refactorer rf(opt);
  const auto obj = rf.refactor(field, dims, "smooth");
  EXPECT_LT(obj.refactored_bytes(), obj.original_bytes());
}

TEST(Refactorer, LevelSizesGrowTopToBottom) {
  // The paper's s_1 < s_2 < ... < s_l assumption. It holds for smooth fields
  // (spiky fields like lognormal NYX temperature front-load bitplanes into
  // the first level, which the optimizers tolerate but the paper's intuition
  // does not rely on).
  const Dims dims{65, 65, 33};
  const auto field = data::scale_pressure(dims, 6);
  RefactorOptions opt;
  opt.decomp_levels = 4;
  opt.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  const Refactorer rf(opt);
  const auto obj = rf.refactor(field, dims, "pres");
  for (u32 j = 1; j < 4; ++j)
    EXPECT_LE(obj.level_bytes(j - 1), obj.level_bytes(j)) << "level " << j;
  EXPECT_LT(obj.level_bytes(0), obj.level_bytes(3) / 2);
}

TEST(Refactorer, MetadataRoundTrip) {
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_temperature(dims, 7);
  const Refactorer rf((RefactorOptions()));
  const auto obj = rf.refactor(field, dims, "meta_rt");
  const Bytes wire = obj.serialize_metadata();
  const auto back = RefactoredObject::deserialize_metadata(as_bytes_view(wire));
  EXPECT_EQ(back.name, obj.name);
  EXPECT_EQ(back.dims, obj.dims);
  EXPECT_EQ(back.decomp_levels, obj.decomp_levels);
  EXPECT_EQ(back.l2_correction, obj.l2_correction);
  EXPECT_DOUBLE_EQ(back.data_max_abs, obj.data_max_abs);
  ASSERT_EQ(back.dlevels.size(), obj.dlevels.size());
  for (std::size_t d = 0; d < back.dlevels.size(); ++d) {
    EXPECT_EQ(back.dlevels[d].count, obj.dlevels[d].count);
    EXPECT_DOUBLE_EQ(back.dlevels[d].max_abs, obj.dlevels[d].max_abs);
    EXPECT_EQ(back.dlevels[d].exponent, obj.dlevels[d].exponent);
  }
  ASSERT_EQ(back.levels.size(), obj.levels.size());
  for (std::size_t j = 0; j < back.levels.size(); ++j)
    EXPECT_DOUBLE_EQ(back.levels[j].rel_error_bound,
                     obj.levels[j].rel_error_bound);
}

TEST(Refactorer, ReconstructFromDeserializedMetadata) {
  // The restore path uses metadata that traveled through the KV store.
  const Dims dims{33, 33, 17};
  const auto field = data::scale_temperature(dims, 8);
  const Refactorer rf((RefactorOptions()));
  const auto obj = rf.refactor(field, dims, "rt2");
  const auto meta =
      RefactoredObject::deserialize_metadata(as_bytes_view(obj.serialize_metadata()));
  std::vector<Bytes> payloads = {obj.levels[0].payload, obj.levels[1].payload};
  const auto rec = rf.reconstruct(meta, payloads);
  EXPECT_LE(data::relative_linf_error(field, rec), meta.rel_error_bound(2));
}

TEST(Refactorer, ParallelMatchesSerialBitExact) {
  ThreadPool pool(4);
  const Dims dims{65, 33, 17};
  const auto field = data::nyx_velocity(dims, 9);
  RefactorOptions opt;
  const Refactorer serial(opt, nullptr);
  const Refactorer parallel(opt, &pool);
  const auto a = serial.refactor(field, dims, "x");
  const auto b = parallel.refactor(field, dims, "x");
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t j = 0; j < a.levels.size(); ++j)
    EXPECT_EQ(a.levels[j].payload, b.levels[j].payload) << "level " << j;
}

TEST(Refactorer, RejectsAllZeroInput) {
  std::vector<f32> zeros(9 * 9, 0.0f);
  const Refactorer rf((RefactorOptions()));
  EXPECT_THROW(rf.refactor(zeros, Dims{9, 9, 1}, "z"), invariant_error);
}

TEST(Refactorer, RejectsEmptyPrefix) {
  const Dims dims{17, 17, 1};
  const auto field = data::hurricane_pressure(dims, 10);
  const Refactorer rf((RefactorOptions()));
  const auto obj = rf.refactor(field, dims, "p");
  EXPECT_THROW(rf.reconstruct(obj, {}), invariant_error);
}

TEST(Refactorer, OneDimensionalField) {
  const Dims dims{1025, 1, 1};
  std::vector<f32> field(dims.total());
  for (u64 i = 0; i < dims.nx; ++i)
    field[i] = static_cast<f32>(std::sin(0.01 * i) + 0.2 * std::sin(0.3 * i));
  RefactorOptions opt;
  opt.decomp_levels = 5;
  opt.target_rel_errors = {1e-2, 1e-3, 1e-4, 1e-6};
  const Refactorer rf(opt);
  const auto obj = rf.refactor(field, dims, "1d");
  std::vector<Bytes> payloads;
  for (const auto& l : obj.levels) {
    payloads.push_back(l.payload);
  }
  const auto rec = rf.reconstruct(obj, payloads);
  EXPECT_LE(data::relative_linf_error(field, rec), obj.rel_error_bound(4));
}

TEST(Refactorer, TwoDimensionalField) {
  const Dims dims{129, 129, 1};
  const auto field = data::scale_pressure(dims, 11);
  RefactorOptions opt;
  opt.decomp_levels = 4;
  const Refactorer rf(opt);
  const auto obj = rf.refactor(field, dims, "2d");
  std::vector<Bytes> payloads = {obj.levels[0].payload};
  const auto rec = rf.reconstruct(obj, payloads);
  EXPECT_LE(data::relative_linf_error(field, rec), obj.rel_error_bound(1));
}

}  // namespace
}  // namespace rapids::mgard
