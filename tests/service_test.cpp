// Tests for the multi-tenant object service: the deterministic request
// scheduler (priority bands, weighted-fair queuing, EDF, shed-expired), the
// admission controller's typed fast rejects, deadline shedding, the
// saturation/brownout state machine, backpressure signals, and the
// determinism contract (same seed -> identical admission/shed/brownout
// schedule, with or without a thread pool).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>

#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/service/service.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::service {
namespace {

namespace fs = std::filesystem;
using mgard::Dims;

constexpr f64 kInf = std::numeric_limits<f64>::infinity();

// ------------------------------------------------------- RequestScheduler --

Ticket ticket(u64 id, u32 tenant, u32 band, f64 deadline, f64 cost) {
  return Ticket{id, tenant, band, deadline, cost, 0.0};
}

TEST(RequestScheduler, StrictPriorityAcrossBands) {
  RequestScheduler sched({1.0});
  sched.push(ticket(1, 0, 2, kInf, 1.0));  // batch
  sched.push(ticket(2, 0, 0, kInf, 1.0));  // high
  sched.push(ticket(3, 0, 1, kInf, 1.0));  // normal
  EXPECT_EQ(sched.pop()->id, 2u);
  EXPECT_EQ(sched.pop()->id, 3u);
  EXPECT_EQ(sched.pop()->id, 1u);
  EXPECT_FALSE(sched.pop().has_value());
}

TEST(RequestScheduler, EdfWithinTenant) {
  RequestScheduler sched({1.0});
  sched.push(ticket(1, 0, 1, 9.0, 1.0));
  sched.push(ticket(2, 0, 1, 3.0, 1.0));
  sched.push(ticket(3, 0, 1, 6.0, 1.0));
  sched.push(ticket(4, 0, 1, 3.0, 1.0));  // same deadline: id breaks the tie
  EXPECT_EQ(sched.pop()->id, 2u);
  EXPECT_EQ(sched.pop()->id, 4u);
  EXPECT_EQ(sched.pop()->id, 3u);
  EXPECT_EQ(sched.pop()->id, 1u);
}

TEST(RequestScheduler, WeightedFairSharesAcrossTenants) {
  // Tenant 0 has 3x the weight of tenant 1; with both backlogged and equal
  // costs, dispatches interleave 3:1.
  RequestScheduler sched({3.0, 1.0});
  u64 id = 1;
  for (int i = 0; i < 30; ++i) sched.push(ticket(id++, 0, 1, kInf, 1.0));
  for (int i = 0; i < 30; ++i) sched.push(ticket(id++, 1, 1, kInf, 1.0));
  u32 t0 = 0, t1 = 0;
  for (int i = 0; i < 40; ++i) {
    const auto t = sched.pop();
    ASSERT_TRUE(t.has_value());
    (t->tenant == 0 ? t0 : t1) += 1;
  }
  EXPECT_EQ(t0 + t1, 40u);
  EXPECT_NEAR(static_cast<f64>(t0), 30.0, 2.0);  // 3/4 of 40
  EXPECT_NEAR(static_cast<f64>(t1), 10.0, 2.0);  // 1/4 of 40
}

TEST(RequestScheduler, IdleTenantDoesNotBankCredit) {
  // A tenant that was idle while others were served must not starve them
  // afterwards: its tag snaps forward to the virtual clock (start-time fair
  // queuing), so history confers no burst credit.
  RequestScheduler sched({1.0, 1.0});
  u64 id = 1;
  for (int i = 0; i < 10; ++i) sched.push(ticket(id++, 0, 1, kInf, 1.0));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(sched.pop().has_value());
  // Tenant 1 arrives late; both push 10 more.
  for (int i = 0; i < 10; ++i) sched.push(ticket(id++, 0, 1, kInf, 1.0));
  for (int i = 0; i < 10; ++i) sched.push(ticket(id++, 1, 1, kInf, 1.0));
  u32 t1 = 0;
  for (int i = 0; i < 10; ++i) {
    const auto t = sched.pop();
    ASSERT_TRUE(t.has_value());
    if (t->tenant == 1) ++t1;
  }
  EXPECT_NEAR(static_cast<f64>(t1), 5.0, 1.0);  // fair half, not zero
}

TEST(RequestScheduler, ShedExpiredRemovesOnlyPastDeadlines) {
  RequestScheduler sched({1.0, 1.0});
  sched.push(ticket(1, 0, 1, 1.0, 0.5));
  sched.push(ticket(2, 0, 1, 5.0, 0.5));
  sched.push(ticket(3, 1, 1, 0.5, 0.5));
  const auto shed = sched.shed_expired(2.0);
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_EQ(shed[0].id, 1u);  // tenant ascending within band
  EXPECT_EQ(shed[1].id, 3u);
  EXPECT_EQ(sched.depth(), 1u);
  EXPECT_EQ(sched.pop()->id, 2u);
}

TEST(RequestScheduler, QueuedCostTracksPushAndPop) {
  RequestScheduler sched({1.0});
  EXPECT_DOUBLE_EQ(sched.queued_cost_s(), 0.0);
  sched.push(ticket(1, 0, 1, kInf, 2.0));
  sched.push(ticket(2, 0, 1, kInf, 3.0));
  EXPECT_DOUBLE_EQ(sched.queued_cost_s(), 5.0);
  sched.pop();
  EXPECT_DOUBLE_EQ(sched.queued_cost_s(), 3.0);
  sched.pop();
  EXPECT_DOUBLE_EQ(sched.queued_cost_s(), 0.0);
  EXPECT_TRUE(sched.empty());
}

// ----------------------------------------------------------- ObjectService --

core::PipelineConfig service_config() {
  core::PipelineConfig cfg;
  cfg.refactor.decomp_levels = 3;
  cfg.refactor.num_retrieval_levels = 4;
  cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  cfg.aco.iterations = 20;
  return cfg;
}

/// Self-contained world: cluster + metadata store + pipeline with one
/// prepared object ("obj"), torn down with its temp directory.
struct World {
  explicit World(const std::string& tag, ThreadPool* pool = nullptr,
                 u64 cluster_seed = 42)
      : dir((fs::temp_directory_path() / ("rapids_service_" + tag)).string()),
        cluster(storage::ClusterConfig{16, 0.01, cluster_seed}),
        dims{17, 17, 9},
        field(data::hurricane_pressure(dims, 5)) {
    fs::remove_all(dir);
    db = kv::Db::open(dir);
    pipeline = std::make_unique<core::RapidsPipeline>(cluster, *db,
                                                      service_config(), pool);
    pipeline->prepare(field, dims, "obj");
  }
  ~World() {
    pipeline.reset();
    db.reset();
    fs::remove_all(dir);
  }

  std::string dir;
  storage::Cluster cluster;
  std::unique_ptr<kv::Db> db;
  Dims dims;
  std::vector<f32> field;
  std::unique_ptr<core::RapidsPipeline> pipeline;
};

/// Options with a fixed cost model (1 MB/s, 0.1 s fixed) so estimates are
/// round numbers independent of the cluster's bandwidth seed.
ServiceOptions fixed_cost_options() {
  ServiceOptions o;
  o.lanes = 1;
  o.cost_fixed_s = 0.1;
  o.cost_bytes_per_s = 1.0e6;
  return o;
}

Request restore_req(u32 tenant, f64 deadline = kInf, f64 bound = 0.0,
                    Priority pri = Priority::kNormal) {
  Request r;
  r.tenant = tenant;
  r.verb = Verb::kRestore;
  r.object = "obj";
  r.rel_bound = bound;
  r.deadline_s = deadline;
  r.priority = pri;
  return r;
}

TEST(ObjectService, ServesARestoreWithBoundHeld) {
  World w("basic");
  ServiceOptions o = fixed_cost_options();
  ObjectService svc(*w.pipeline, o);
  const auto sub = svc.submit(restore_req(0));
  ASSERT_TRUE(sub.admitted());
  EXPECT_GT(sub.est_cost_s, o.cost_fixed_s);
  svc.drain();
  const auto done = svc.take_completed();
  ASSERT_EQ(done.size(), 1u);
  const Response& r = done[0];
  EXPECT_EQ(r.outcome, Outcome::kOk);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_FALSE(r.brownout);
  EXPECT_GT(r.levels_used, 0u);
  ASSERT_EQ(r.result.size(), w.field.size());
  EXPECT_LE(data::relative_linf_error(w.field, r.result), r.achieved_bound);
  const auto ts = svc.tenant_stats(0);
  EXPECT_EQ(ts.submitted, 1u);
  EXPECT_EQ(ts.completed, 1u);
  EXPECT_EQ(svc.stats().completed, 1u);
}

TEST(ObjectService, TenantDepthBoundRejectsTyped) {
  World w("tenant_depth");
  ServiceOptions o = fixed_cost_options();
  o.tenant_weights = {1.0, 1.0};
  o.max_tenant_depth = 2;
  o.max_global_depth = 100;
  ObjectService svc(*w.pipeline, o);
  // First submit occupies the single lane; the next two queue; the fourth
  // must be rejected with the tenant's depth snapshot.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(svc.submit(restore_req(0)).admitted());
  const auto rej = svc.submit(restore_req(0));
  ASSERT_FALSE(rej.admitted());
  EXPECT_EQ(rej.overloaded.reason, OverloadReason::kTenantQueueFull);
  EXPECT_EQ(rej.overloaded.tenant_depth, 2u);
  EXPECT_EQ(rej.overloaded.tenant_limit, 2u);
  EXPECT_GT(rej.overloaded.retry_after_s, 0.0);
  // The other tenant is not affected by tenant 0's full queue.
  EXPECT_TRUE(svc.submit(restore_req(1)).admitted());
  EXPECT_EQ(svc.tenant_stats(0).rejected_depth, 1u);
  svc.drain();
}

TEST(ObjectService, GlobalDepthBoundRejectsTyped) {
  World w("global_depth");
  ServiceOptions o = fixed_cost_options();
  o.tenant_weights = {1.0, 1.0};
  o.max_tenant_depth = 100;
  o.max_global_depth = 3;
  ObjectService svc(*w.pipeline, o);
  ASSERT_TRUE(svc.submit(restore_req(0)).admitted());  // running
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(svc.submit(restore_req(0)).admitted());
  const auto rej = svc.submit(restore_req(1));
  ASSERT_FALSE(rej.admitted());
  EXPECT_EQ(rej.overloaded.reason, OverloadReason::kGlobalQueueFull);
  EXPECT_EQ(rej.overloaded.global_depth, 3u);
  EXPECT_EQ(rej.overloaded.global_limit, 3u);
  svc.drain();
}

TEST(ObjectService, TokenBucketRateLimitsByEstimatedBytes) {
  World w("rate");
  ServiceOptions o = fixed_cost_options();
  o.lanes = 4;
  // Burst covers roughly one full restore; the refill rate is tiny, so the
  // second full-precision request must be rate-rejected with a positive
  // retry-after horizon.
  const auto rec = w.pipeline->snapshot_record("obj");
  u64 total = 0;
  for (const u64 b : rec->level_sizes) total += b;
  o.admit_rate_bytes_per_s = 1024.0;
  o.admit_burst_bytes = static_cast<f64>(total) * 1.5;
  ObjectService svc(*w.pipeline, o);
  ASSERT_TRUE(svc.submit(restore_req(0)).admitted());
  const auto rej = svc.submit(restore_req(0));
  ASSERT_FALSE(rej.admitted());
  EXPECT_EQ(rej.overloaded.reason, OverloadReason::kRateLimited);
  EXPECT_GT(rej.overloaded.retry_after_s, 0.0);
  EXPECT_EQ(svc.tenant_stats(0).rejected_rate, 1u);
  svc.drain();
}

TEST(ObjectService, ExpiredRequestsShedBeforeExecution) {
  World w("shed_expired");
  ServiceOptions o = fixed_cost_options();  // 1 lane
  o.shed_would_expire = false;              // isolate queue-expiry shedding
  ObjectService svc(*w.pipeline, o);
  const auto first = svc.submit(restore_req(0));  // occupies the lane
  ASSERT_TRUE(first.admitted());
  // Deadline falls inside the first request's lane hold: by the time a lane
  // frees, this one is expired and must be shed, never executed.
  const auto doomed = svc.submit(restore_req(0, first.est_cost_s * 0.5));
  ASSERT_TRUE(doomed.admitted());
  svc.drain();
  const auto done = svc.take_completed();
  ASSERT_EQ(done.size(), 2u);
  const Response* shed = nullptr;
  for (const auto& r : done)
    if (r.id == doomed.id) shed = &r;
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->outcome, Outcome::kShed);
  EXPECT_FALSE(shed->deadline_met);
  EXPECT_EQ(shed->sim_latency_s, 0.0);  // never executed
  EXPECT_EQ(shed->wan_bytes, 0u);
  EXPECT_EQ(svc.stats().shed, 1u);
}

TEST(ObjectService, WouldExpireShedsAtDispatch) {
  World w("shed_would");
  ServiceOptions o = fixed_cost_options();
  ObjectService svc(*w.pipeline, o);
  const auto first = svc.submit(restore_req(0));
  ASSERT_TRUE(first.admitted());
  // Deadline is after the lane frees but before a second restore could
  // finish: dispatch must shed it instead of starting doomed work.
  const auto doomed = svc.submit(restore_req(0, first.est_cost_s * 1.01));
  ASSERT_TRUE(doomed.admitted());
  svc.drain();
  const auto done = svc.take_completed();
  const Response* shed = nullptr;
  for (const auto& r : done)
    if (r.id == doomed.id) shed = &r;
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->outcome, Outcome::kShed);
  EXPECT_NE(shed->error.find("cannot meet deadline"), std::string::npos);
}

TEST(ObjectService, NoAcceptedRequestFinishesPastItsDeadline) {
  // The headline robustness property: with conservative estimates and
  // would-expire shedding, every request either completes within its
  // deadline or is shed — zero accepted-then-expired.
  World w("no_expired");
  ServiceOptions o = fixed_cost_options();
  o.lanes = 2;
  ObjectService svc(*w.pipeline, o);
  Rng rng(1234);
  f64 t = 0.0;
  for (int i = 0; i < 60; ++i) {
    t += rng.next_double() * 0.05;
    svc.advance_to(t);
    const f64 deadline = t + 0.05 + rng.next_double() * 2.0;
    svc.submit(restore_req(0, deadline, rng.bernoulli(0.5) ? 4e-3 : 0.0));
  }
  svc.drain();
  u32 executed = 0, shed = 0;
  for (const auto& r : svc.take_completed()) {
    if (r.outcome == Outcome::kShed) {
      ++shed;
      continue;
    }
    ASSERT_NE(r.outcome, Outcome::kFailed) << r.error;
    EXPECT_TRUE(r.deadline_met) << "request " << r.id << " finished late";
    ++executed;
  }
  EXPECT_GT(executed, 0u);
  EXPECT_EQ(executed + shed, 60u);
}

TEST(ObjectService, BrownoutCoarsensReportsAndExits) {
  World w("brownout");
  ServiceOptions o = fixed_cost_options();
  // Small thresholds so the burst below trips the ladder quickly.
  o.saturate_backlog_s = 0.5;
  o.saturate_exit_backlog_s = 0.1;
  o.brownout_backlog_s = 1.0;
  o.brownout_exit_backlog_s = 0.3;
  o.brownout_sustain_s = 0.2;
  ObjectService svc(*w.pipeline, o);
  const u32 levels =
      static_cast<u32>(w.pipeline->snapshot_record("obj")->level_sizes.size());
  // A long run of coarse (1-2 level) requests builds sustained backlog;
  // the full-precision requests queued behind them then dispatch while the
  // service is browned out, so their target prefix is the coarsened one —
  // the shared refine session has never been past it.
  for (int i = 0; i < 15; ++i)
    ASSERT_TRUE(svc.submit(restore_req(0, kInf, 4e-3)).admitted());
  std::vector<u64> full_ids;
  for (int i = 0; i < 6; ++i)
    full_ids.push_back(svc.submit(restore_req(0, kInf, 0.0)).id);
  EXPECT_NE(svc.load_state(), LoadState::kNormal);  // backpressure signal
  EXPECT_TRUE(svc.saturated());
  EXPECT_GT(svc.backlog_s(), o.saturate_backlog_s);
  svc.drain();
  const auto done = svc.take_completed();
  u32 browned = 0;
  for (const auto& r : done) {
    if (!r.brownout) continue;
    ++browned;
    EXPECT_EQ(r.outcome, Outcome::kBrownout);
    // Never silent: the response reports the coarser bound it aimed for and
    // achieved, and the achieved bound really holds against the data.
    EXPECT_GT(r.effective_bound, 0.0);
    EXPECT_LE(r.achieved_bound, r.effective_bound * (1.0 + 1e-9));
    EXPECT_LT(r.levels_used, levels);
    ASSERT_EQ(r.result.size(), w.field.size());
    EXPECT_LE(data::relative_linf_error(w.field, r.result), r.achieved_bound);
    if (r.requested_bound == 0.0) {
      EXPECT_TRUE(r.degraded);
    }
  }
  EXPECT_GT(browned, 0u);
  // At least one full-precision request was browned out (its levels capped
  // below the full prefix) — the accuracy-for-availability trade happened.
  bool full_browned = false;
  for (const auto& r : done)
    if (r.brownout && r.requested_bound == 0.0) full_browned = true;
  EXPECT_TRUE(full_browned);
  const auto st = svc.stats();
  EXPECT_GE(st.brownout_entries, 1u);
  EXPECT_GE(st.saturation_entries, 1u);
  EXPECT_GT(st.brownout_s, 0.0);
  EXPECT_GE(st.saturated_s, st.brownout_s);
  // Load drained: the ladder must have stepped back down to normal.
  EXPECT_EQ(svc.load_state(), LoadState::kNormal);
  const auto ts = svc.tenant_stats(0);
  EXPECT_EQ(ts.brownouts, browned);
  EXPECT_EQ(ts.completed + ts.shed, 21u);
}

TEST(ObjectService, FairnessUnderAggressivePoliteMix) {
  // Property (the starvation drill): tenant 0 submits 10x more than tenant
  // 1 at equal weight. The polite tenant's offered load is below its fair
  // share, so nearly all of its requests must complete; the aggressive
  // tenant absorbs the shedding; and no executed request finishes late.
  World w("fairness");
  ServiceOptions o = fixed_cost_options();
  o.lanes = 2;
  o.tenant_weights = {1.0, 1.0};
  o.max_tenant_depth = 256;
  o.max_global_depth = 512;
  ObjectService svc(*w.pipeline, o);

  // est per full restore with this cost model; tenant 1 offers ~25% of one
  // lane, tenant 0 offers ~10x that (well past saturation).
  const f64 est = svc.submit(restore_req(0)).est_cost_s;
  svc.drain();
  svc.take_completed();
  const f64 polite_gap = est * 4.0;
  const f64 aggressive_gap = polite_gap / 10.0;
  const f64 horizon = est * 120.0;
  f64 t_polite = 0.011, t_aggr = 0.0;  // offset: distinct arrival instants
  const f64 t0 = svc.now_s();
  f64 t = t0;
  while (t - t0 < horizon) {
    const f64 next_a = t0 + t_aggr, next_p = t0 + t_polite;
    t = std::min(next_a, next_p);
    svc.advance_to(t);
    if (t == next_a) {
      svc.submit(restore_req(0, t + est * 6.0));
      t_aggr += aggressive_gap;
    } else {
      svc.submit(restore_req(1, t + est * 6.0));
      t_polite += polite_gap;
    }
  }
  svc.drain();
  for (const auto& r : svc.take_completed()) {
    if (r.outcome == Outcome::kOk || r.outcome == Outcome::kBrownout) {
      EXPECT_TRUE(r.deadline_met);
    }
  }
  const auto polite = svc.tenant_stats(1);
  const auto aggressive = svc.tenant_stats(0);
  ASSERT_GT(polite.submitted, 10u);
  // Polite tenant: served within tolerance of its full offered load.
  EXPECT_GE(static_cast<f64>(polite.completed),
            0.85 * static_cast<f64>(polite.submitted));
  EXPECT_EQ(polite.rejected_depth + polite.rejected_rate, 0u);
  // Aggressive tenant offered ~10x: it, not the polite tenant, pays.
  EXPECT_GT(aggressive.shed + aggressive.rejected_depth, 0u);
  EXPECT_GT(aggressive.completed, polite.completed);  // weight share works
}

TEST(ObjectService, HighPriorityJumpsTheBacklog) {
  World w("priority");
  ServiceOptions o = fixed_cost_options();  // 1 lane
  ObjectService svc(*w.pipeline, o);
  ASSERT_TRUE(svc.submit(restore_req(0)).admitted());  // running
  std::vector<u64> batch_ids;
  for (int i = 0; i < 3; ++i)
    batch_ids.push_back(
        svc.submit(restore_req(0, kInf, 0.0, Priority::kBatch)).id);
  const u64 urgent =
      svc.submit(restore_req(0, kInf, 4e-3, Priority::kHigh)).id;
  svc.drain();
  const auto done = svc.take_completed();
  std::vector<u64> order;
  for (const auto& r : done) order.push_back(r.id);
  const auto pos = [&](u64 id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  for (const u64 b : batch_ids) EXPECT_LT(pos(urgent), pos(b));
}

TEST(ObjectService, SessionCursorMakesRepeatsCheap) {
  World w("cursor");
  ServiceOptions o = fixed_cost_options();
  ObjectService svc(*w.pipeline, o);
  const auto first = svc.submit(restore_req(0));
  ASSERT_TRUE(first.admitted());
  svc.drain();
  svc.take_completed();
  // The service's refine session already holds every level: a repeat is
  // charged only the fixed cost, not the WAN bytes.
  const auto second = svc.submit(restore_req(0));
  ASSERT_TRUE(second.admitted());
  EXPECT_GT(first.est_cost_s, o.cost_fixed_s);
  EXPECT_DOUBLE_EQ(second.est_cost_s, o.cost_fixed_s);
  svc.drain();
  const auto done = svc.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].outcome, Outcome::kOk);
  EXPECT_EQ(done[0].wan_bytes, 0u);  // session cache served everything
}

TEST(ObjectService, PrepareVerbArchivesANewObject) {
  World w("prepare");
  ServiceOptions o = fixed_cost_options();
  ObjectService svc(*w.pipeline, o);
  const auto field2 = data::hurricane_pressure(w.dims, 9);
  Request r;
  r.tenant = 0;
  r.verb = Verb::kPrepare;
  r.object = "obj2";
  r.data = field2;
  r.dims = w.dims;
  ASSERT_TRUE(svc.submit(r).admitted());
  svc.drain();
  const auto done = svc.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].outcome, Outcome::kOk) << done[0].error;
  EXPECT_TRUE(w.pipeline->lookup("obj2").has_value());
  // The archived object is servable through the same service.
  Request again = restore_req(0);
  again.object = "obj2";
  ASSERT_TRUE(svc.submit(again).admitted());
  svc.drain();
  const auto served = svc.take_completed();
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].outcome, Outcome::kOk) << served[0].error;
  ASSERT_EQ(served[0].result.size(), field2.size());
  EXPECT_LE(data::relative_linf_error(field2, served[0].result),
            served[0].achieved_bound);
}

TEST(ObjectService, UnknownObjectFailsHonestly) {
  World w("unknown");
  ObjectService svc(*w.pipeline, fixed_cost_options());
  Request r = restore_req(0);
  r.object = "nope";
  ASSERT_TRUE(svc.submit(r).admitted());
  svc.drain();
  const auto done = svc.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].outcome, Outcome::kFailed);
  EXPECT_FALSE(done[0].error.empty());
  EXPECT_EQ(svc.tenant_stats(0).failed, 1u);
}

// Same seeded arrival schedule -> bit-identical decision sequence, with and
// without a thread pool: the schedule hash certifies that execution threads
// never perturb scheduling.
u64 run_seeded_schedule(World& w, ThreadPool* pool) {
  ServiceOptions o;
  o.lanes = 2;
  o.tenant_weights = {2.0, 1.0, 1.0};
  o.max_tenant_depth = 8;
  o.max_global_depth = 16;
  o.cost_fixed_s = 0.05;
  o.cost_bytes_per_s = 2.0e6;
  o.saturate_backlog_s = 0.4;
  o.saturate_exit_backlog_s = 0.1;
  o.brownout_backlog_s = 1.2;
  o.brownout_exit_backlog_s = 0.3;
  o.brownout_sustain_s = 0.1;
  o.keep_data = false;
  ObjectService svc(*w.pipeline, o, pool);
  Rng rng(2024);
  f64 t = 0.0;
  for (int i = 0; i < 80; ++i) {
    t += rng.next_double() * 0.03;
    svc.advance_to(t);
    Request r = restore_req(rng.next_below(3) /*tenant*/);
    r.priority = static_cast<Priority>(rng.next_below(3));
    r.rel_bound = rng.bernoulli(0.5) ? 0.0 : 4e-3;
    r.deadline_s = rng.bernoulli(0.3) ? kInf : t + 0.1 + rng.next_double();
    svc.submit(r);
  }
  svc.drain();
  return svc.stats().schedule_hash;
}

TEST(ObjectService, ScheduleHashDeterministicAcrossRunsAndPools) {
  World w1("det1");
  World w2("det2");
  ThreadPool pool(4);
  const u64 serial = run_seeded_schedule(w1, nullptr);
  const u64 pooled = run_seeded_schedule(w2, &pool);
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial, 0u);
}

TEST(ObjectService, AdvanceToIsMonotoneAndDrainsEvents) {
  World w("advance");
  ServiceOptions o = fixed_cost_options();
  ObjectService svc(*w.pipeline, o);
  const auto sub = svc.submit(restore_req(0));
  ASSERT_TRUE(sub.admitted());
  svc.advance_to(sub.est_cost_s * 0.5);
  EXPECT_TRUE(svc.take_completed().empty());  // still in flight
  svc.advance_to(sub.est_cost_s * 1.1);
  const auto done = svc.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].completed_s, sub.est_cost_s);
  EXPECT_THROW(svc.advance_to(0.0), invariant_error);  // clock is monotone
}

}  // namespace
}  // namespace rapids::service
