// Tests for the fragment-granular streaming dataflow: the bounded Channel,
// StorageSystem::PutStream / get_range, and the byte-identity contract of
// the streaming prepare/restore paths against the staged baseline at every
// level prefix.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/ec/fragment.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/parallel/channel.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/storage/failure.hpp"
#include "rapids/storage/storage_system.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::core {
namespace {

namespace fs = std::filesystem;
using mgard::Dims;

// ---------------------------------------------------------------- Channel

TEST(Channel, FifoOrderWithinCapacity) {
  Channel<int> ch(3);
  EXPECT_EQ(ch.capacity(), 3u);
  for (int v : {1, 2, 3}) EXPECT_TRUE(ch.try_push(std::move(v)));
  int overflow = 4;
  EXPECT_FALSE(ch.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, 4);  // full: operand left intact
  int out = 0;
  for (int want : {1, 2, 3}) {
    ASSERT_TRUE(ch.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ch.try_pop(out));  // drained
}

TEST(Channel, CloseDeliversQueuedItemsThenReportsClosed) {
  Channel<int> ch(4);
  int a = 7, b = 8;
  EXPECT_TRUE(ch.try_push(std::move(a)));
  EXPECT_TRUE(ch.try_push(std::move(b)));
  ch.close();
  ch.close();  // idempotent
  EXPECT_TRUE(ch.closed());
  int rejected = 9;
  EXPECT_FALSE(ch.try_push(std::move(rejected)));
  EXPECT_FALSE(ch.push(10));
  int out = 0;
  using Wait = Channel<int>::Wait;
  EXPECT_EQ(ch.pop_for(out, std::chrono::milliseconds(1)), Wait::kItem);
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(ch.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_EQ(ch.pop_for(out, std::chrono::milliseconds(1)), Wait::kClosed);
  EXPECT_FALSE(ch.pop(out));
}

TEST(Channel, TryPushAfterCloseLeavesOperandIntact) {
  // Contract: try_push only moves from its operand on success, and "closed"
  // is indistinguishable from "full" through the return value — the caller
  // checks closed() when it needs to stop generating.
  Channel<std::string> ch(4);
  ch.close();
  std::string item = "payload";
  EXPECT_FALSE(ch.try_push(std::move(item)));
  EXPECT_EQ(item, "payload");
  EXPECT_TRUE(ch.closed());
  EXPECT_EQ(ch.size(), 0u);  // nothing buffered post-close
}

TEST(Channel, ZeroCapacityClampsToOne) {
  Channel<int> ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
  EXPECT_TRUE(ch.try_push(1));
  int two = 2;
  EXPECT_FALSE(ch.try_push(std::move(two)));
}

TEST(Channel, CloseWakesBlockedProducerAndDropsItsItem) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.try_push(1));  // fill: the next push must block
  std::atomic<bool> pushed{false};
  std::atomic<bool> accepted{true};
  std::thread producer([&] {
    accepted = ch.push(2);  // blocks on the full window until close()
    pushed = true;
  });
  while (ch.size() == 0) std::this_thread::yield();
  ch.close();
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_FALSE(accepted);  // close() rejected the blocked push
  // The consumer sees exactly the pre-close item, then closed-and-drained.
  int out = 0;
  EXPECT_TRUE(ch.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(ch.pop(out));
}

TEST(Channel, CloseWakesWaitingPopForWithoutFullTimeout) {
  Channel<int> ch(1);
  std::atomic<int> result{-1};
  std::thread consumer([&] {
    int out = 0;
    // Far longer than the test may take: only a close() wake explains an
    // early kClosed return.
    result = static_cast<int>(ch.pop_for(out, std::chrono::seconds(60)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  consumer.join();
  EXPECT_EQ(result.load(), static_cast<int>(Channel<int>::Wait::kClosed));
}

TEST(Channel, PopForTimesOutOnOpenEmptyChannel) {
  Channel<int> ch(1);
  int out = 0;
  EXPECT_EQ(ch.pop_for(out, std::chrono::milliseconds(1)),
            Channel<int>::Wait::kTimeout);
}

TEST(Channel, BlockingProducerConsumerAcrossThreads) {
  // Capacity 2 forces the producer to block on the full window; the consumer
  // must still receive every item exactly once, in order.
  Channel<int> ch(2);
  constexpr int kItems = 200;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) EXPECT_TRUE(ch.push(i));
    ch.close();
  });
  int expected = 0;
  int out = 0;
  while (ch.pop(out)) {
    EXPECT_EQ(out, expected);
    ++expected;
  }
  EXPECT_EQ(expected, kItems);
  producer.join();
}

// --------------------------------------------- PutStream / ranged reads

ec::Fragment make_fragment(const std::string& object, u32 level, u32 index,
                           u64 bytes, u64 seed) {
  ec::Fragment f;
  f.id = {object, level, index};
  f.k = 12;
  f.m = 4;
  f.level_bytes = bytes;
  f.payload.resize(bytes);
  Rng rng(seed);
  for (auto& b : f.payload) b = static_cast<u8>(rng.next_u64());
  f.payload_crc = ec::fragment_crc(f.payload);
  return f;
}

TEST(PutStream, CommitMatchesWholeFragmentPut) {
  storage::StorageSystem whole(0, "whole", 1e6, 0.0);
  storage::StorageSystem streamed(1, "streamed", 1e6, 0.0);
  const auto frag = make_fragment("obj", 2, 5, 10'000, 11);

  whole.put(frag);
  auto stream = streamed.begin_put(frag);
  const std::span<const u8> payload(frag.payload);
  for (u64 lo = 0; lo < payload.size(); lo += 4096) {
    stream.append(payload.subspan(lo, std::min<u64>(4096, payload.size() - lo)));
    EXPECT_EQ(stream.staged_bytes(), std::min<u64>(lo + 4096, payload.size()));
  }
  stream.commit();

  const auto a = whole.get(frag.id.key());
  const auto b = streamed.get(frag.id.key());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->serialize(), b->serialize());
  EXPECT_TRUE(b->verify());
  EXPECT_EQ(whole.used_bytes(), streamed.used_bytes());
}

TEST(PutStream, AppendThrowsOnMidStreamOutageAndAbortLeavesNothing) {
  storage::StorageSystem sys(0, "s0", 1e6, 0.0);
  const auto frag = make_fragment("obj", 0, 1, 4096, 12);
  auto stream = sys.begin_put(frag);
  const std::span<const u8> payload(frag.payload);
  stream.append(payload.first(1024));
  sys.set_available(false);  // outage lands mid-stream
  EXPECT_THROW(stream.append(payload.subspan(1024, 1024)), io_error);
  stream.abort();
  stream.abort();  // idempotent
  EXPECT_EQ(stream.staged_bytes(), 0u);
  sys.set_available(true);
  EXPECT_FALSE(sys.has(frag.id.key()));  // nothing persisted, nothing charged
  EXPECT_EQ(sys.used_bytes(), 0u);
  EXPECT_EQ(sys.fragment_count(), 0u);
}

TEST(PutStream, GetRangeSlicesAndClampsPastEnd) {
  storage::StorageSystem sys(0, "s0", 1e6, 0.0);
  const auto frag = make_fragment("obj", 1, 3, 1000, 13);
  sys.put(frag);
  const std::string key = frag.id.key();

  const auto whole = sys.get_range(key, 0, 1000);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, frag.payload);

  const auto mid = sys.get_range(key, 100, 250);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->size(), 250u);
  EXPECT_TRUE(std::equal(mid->begin(), mid->end(), frag.payload.begin() + 100));

  const auto tail = sys.get_range(key, 900, 500);  // clamps to the last 100
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 100u);
  EXPECT_TRUE(std::equal(tail->begin(), tail->end(), frag.payload.begin() + 900));

  const auto past = sys.get_range(key, 5000, 16);  // fully past the end
  ASSERT_TRUE(past.has_value());
  EXPECT_TRUE(past->empty());

  EXPECT_FALSE(sys.get_range("frag/absent/0/0", 0, 16).has_value());

  sys.set_available(false);
  EXPECT_THROW(sys.get_range(key, 0, 16), io_error);
}

// ------------------------------------- streaming-vs-staged byte identity

/// One self-contained pipeline environment (cluster + metadata store), so
/// the staged reference run and the streaming run never share state.
struct Env {
  explicit Env(const std::string& tag) {
    dir = (fs::temp_directory_path() / ("rapids_stream_" + tag)).string();
    fs::remove_all(dir);
    cluster = std::make_unique<storage::Cluster>(
        storage::ClusterConfig{16, 0.01, 42});
    db = kv::Db::open(dir);
  }
  ~Env() {
    db.reset();
    fs::remove_all(dir);
  }
  std::string dir;
  std::unique_ptr<storage::Cluster> cluster;
  std::unique_ptr<kv::Db> db;
};

PipelineConfig fast_config(bool streaming) {
  PipelineConfig cfg;
  cfg.refactor.decomp_levels = 3;
  cfg.refactor.num_retrieval_levels = 4;
  cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  cfg.aco.iterations = 20;
  cfg.streaming = streaming;
  cfg.stream_stripe_bytes = 8 * 1024;  // small stripes: many per fragment
  return cfg;
}

/// Assert byte-identical prepared state for `name` across two environments:
/// the serialized object record, every fragment location, and every stored
/// fragment's serialized bytes (header + payload + CRC).
void expect_identical_prepared_state(Env& a, Env& b, const std::string& name) {
  const auto raw_a = a.db->get("obj/" + name);
  const auto raw_b = b.db->get("obj/" + name);
  ASSERT_TRUE(raw_a.has_value()) << name;
  ASSERT_TRUE(raw_b.has_value()) << name;
  EXPECT_EQ(*raw_a, *raw_b) << "object record bytes differ for " << name;
  const auto record = ObjectRecord::deserialize(
      {reinterpret_cast<const std::byte*>(raw_a->data()), raw_a->size()});
  const u32 n = a.cluster->size();
  for (u32 j = 0; j < record.level_sizes.size(); ++j) {
    for (u32 idx = 0; idx < n; ++idx) {
      const std::string key = ec::FragmentId{name, j, idx}.key();
      const auto loc_a = a.db->get(key);
      const auto loc_b = b.db->get(key);
      ASSERT_TRUE(loc_a.has_value()) << key;
      ASSERT_TRUE(loc_b.has_value()) << key;
      EXPECT_EQ(*loc_a, *loc_b) << "location differs for " << key;
      const u32 sys = static_cast<u32>(std::stoul(*loc_a));
      const auto frag_a = a.cluster->system(sys).get(key);
      const auto frag_b = b.cluster->system(sys).get(key);
      ASSERT_TRUE(frag_a.has_value()) << key;
      ASSERT_TRUE(frag_b.has_value()) << key;
      EXPECT_EQ(frag_a->serialize(), frag_b->serialize())
          << "fragment bytes differ for " << key;
    }
  }
}

bool same_floats(const std::vector<f32>& a, const std::vector<f32>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) == 0);
}

TEST(StreamingPrepare, ByteIdenticalToStagedWithAndWithoutPool) {
  ThreadPool pool(4);
  const Dims dims{33, 33, 17};
  const auto field = data::hurricane_pressure(dims, 21);

  Env staged("staged");
  RapidsPipeline staged_pipe(*staged.cluster, *staged.db, fast_config(false));
  const auto staged_report = staged_pipe.prepare(field, dims, "hp");

  Env pooled("pooled");
  RapidsPipeline pooled_pipe(*pooled.cluster, *pooled.db, fast_config(true),
                             &pool);
  const auto pooled_report = pooled_pipe.prepare(field, dims, "hp");

  Env serial("serial");  // streaming flow, no pool: the inline path
  RapidsPipeline serial_pipe(*serial.cluster, *serial.db, fast_config(true));
  serial_pipe.prepare(field, dims, "hp");

  EXPECT_EQ(pooled_report.record.serialize(), staged_report.record.serialize());
  EXPECT_EQ(pooled_report.fragments_stored, staged_report.fragments_stored);
  EXPECT_DOUBLE_EQ(pooled_report.expected_error, staged_report.expected_error);
  expect_identical_prepared_state(staged, pooled, "hp");
  expect_identical_prepared_state(staged, serial, "hp");
  EXPECT_EQ(pooled_report.levels_streamed,
            static_cast<u32>(staged_report.record.ft.size()));
  EXPECT_EQ(pooled_report.stream_fallback_puts, 0u);  // healthy cluster
  // End-to-end latency is populated; the streaming-vs-staged latency win is
  // asserted in bench/streaming_pipeline (unit-test wall clocks are too noisy).
  EXPECT_GT(pooled_report.prepare_latency, 0.0);
}

TEST(StreamingRestore, ByteIdenticalToStagedAtEveryLevelPrefix) {
  // Knock out progressively more systems so restores run at every usable
  // level prefix; at each prefix the streamed incremental reconstruction
  // must match the staged full-gather reconstruction bit for bit.
  ThreadPool pool(4);
  const Dims dims{33, 33, 17};
  const auto field = data::scale_temperature(dims, 22);

  auto cfg_staged = fast_config(false);
  auto cfg_stream = fast_config(true);
  // No restore cache: cached levels would mask the outages and keep every
  // restore at full depth.
  cfg_staged.restore_cache_bytes = 0;
  cfg_stream.restore_cache_bytes = 0;

  Env staged("prefix_staged");
  RapidsPipeline staged_pipe(*staged.cluster, *staged.db, cfg_staged);
  const auto prep = staged_pipe.prepare(field, dims, "st");
  Env stream("prefix_stream");
  RapidsPipeline stream_pipe(*stream.cluster, *stream.db, cfg_stream, &pool);
  stream_pipe.prepare(field, dims, "st");

  const FtConfig& ft = prep.record.ft;
  const u32 levels = static_cast<u32>(ft.size());
  for (u32 target = levels; target >= 1; --target) {
    // m_target failures keep at least levels 1..target (m is non-increasing);
    // a deeper level survives only if its m ties m_target.
    std::vector<u32> down;
    for (u32 i = 0; i < ft[target - 1]; ++i) down.push_back(i);
    storage::fail_exactly(*staged.cluster, down);
    storage::fail_exactly(*stream.cluster, down);
    u32 expected = target;
    while (expected < levels && ft[expected] >= ft[target - 1]) ++expected;

    const auto a = staged_pipe.restore("st");
    const auto b = stream_pipe.restore("st");
    ASSERT_EQ(a.levels_used, expected);
    ASSERT_EQ(b.levels_used, expected);
    EXPECT_DOUBLE_EQ(a.rel_error_bound, b.rel_error_bound);
    EXPECT_TRUE(same_floats(a.data, b.data))
        << "restored bytes differ at prefix " << target;
    const f64 err = data::relative_linf_error(field, b.data);
    EXPECT_LE(err, b.rel_error_bound);
  }
}

TEST(StreamingRestore, StreamsLevelsAndCutsTimeToFirstByte) {
  ThreadPool pool(4);
  Env env("ttfb");
  // A loose first target keeps retrieval level 1 genuinely small so its
  // fragments land well before the deep levels (the realistic size skew; at
  // this bench scale the default targets make level 1 the largest level).
  auto cfg = fast_config(true);
  cfg.refactor.target_rel_errors = {1e-1, 1e-3, 1e-5, 1e-7};
  RapidsPipeline pipeline(*env.cluster, *env.db, cfg, &pool);
  const Dims dims{33, 33, 17};
  const auto field = data::nyx_temperature(dims, 23);
  pipeline.prepare(field, dims, "nt");

  const auto first = pipeline.restore("nt");
  EXPECT_EQ(first.levels_used, 4u);
  EXPECT_EQ(first.levels_streamed, 4u);  // nothing cached: all streamed in
  // Level 1 is decodable as soon as its own (small) fragments land — long
  // before the full gather completes.
  EXPECT_GT(first.first_level_latency, 0.0);
  EXPECT_LT(first.first_level_latency, first.gather_latency);
  EXPECT_GT(first.first_byte_seconds, 0.0);
  ASSERT_FALSE(first.plan.level_latencies.empty());
  const f64 err = data::relative_linf_error(field, first.data);
  EXPECT_LE(err, first.rel_error_bound);

  // Second restore: the cache serves every level, so the first usable
  // approximation needs no WAN wait at all.
  const auto second = pipeline.restore("nt");
  EXPECT_EQ(second.cache_hits, 4u);
  EXPECT_EQ(second.levels_streamed, 0u);
  EXPECT_DOUBLE_EQ(second.first_level_latency, 0.0);
  EXPECT_TRUE(same_floats(first.data, second.data));
}

TEST(StreamingPrepare, ReportsStageBreakdown) {
  ThreadPool pool(4);
  Env env("breakdown");
  RapidsPipeline pipeline(*env.cluster, *env.db, fast_config(true), &pool);
  const Dims dims{33, 33, 17};
  const auto field = data::hurricane_temperature(dims, 24);
  const auto report = pipeline.prepare(field, dims, "ht");
  EXPECT_GT(report.transform_seconds, 0.0);
  EXPECT_GT(report.plane_encode_seconds, 0.0);
  EXPECT_GE(report.refactor_seconds,
            report.transform_seconds + report.plane_encode_seconds);
  EXPECT_GT(report.prepare_latency, 0.0);
  EXPECT_GT(report.distribution_latency, 0.0);
}

TEST(StreamingPrepare, BatchMatchesStagedSerialLoop) {
  ThreadPool pool(4);
  const Dims dims{33, 33, 17};
  std::vector<std::string> names;
  std::vector<std::vector<f32>> fields;
  for (u32 i = 0; i < 3; ++i) {
    names.push_back("obj" + std::to_string(i));
    fields.push_back(data::hurricane_pressure(dims, 30 + i));
  }

  Env staged("batch_staged");
  RapidsPipeline staged_pipe(*staged.cluster, *staged.db, fast_config(false));
  for (u32 i = 0; i < names.size(); ++i)
    staged_pipe.prepare(fields[i], dims, names[i]);

  Env batch("batch_stream");
  RapidsPipeline batch_pipe(*batch.cluster, *batch.db, fast_config(true),
                            &pool);
  std::vector<PrepareRequest> requests;
  for (u32 i = 0; i < names.size(); ++i)
    requests.push_back({fields[i], dims, names[i]});
  const auto reports = batch_pipe.prepare_batch(requests);
  ASSERT_EQ(reports.size(), names.size());

  for (const auto& name : names)
    expect_identical_prepared_state(staged, batch, name);
}

TEST(StreamingRefine, DeliversLevelsThroughTheSink) {
  ThreadPool pool(4);
  Env env("refine");
  RapidsPipeline pipeline(*env.cluster, *env.db, fast_config(true), &pool);
  const Dims dims{33, 33, 17};
  const auto field = data::nyx_velocity(dims, 25);
  const auto prep = pipeline.prepare(field, dims, "nv");

  auto session = pipeline.begin_refine("nv");
  const auto first = pipeline.refine(*session, 1e-3);
  EXPECT_GT(first.levels_streamed, 0u);
  EXPECT_GT(first.first_level_latency, 0.0);
  const auto rest = pipeline.refine(*session, 0.0);  // to the deepest level
  EXPECT_EQ(session->levels(), static_cast<u32>(prep.record.ft.size()));
  const f64 err = data::relative_linf_error(field, rest.data);
  EXPECT_LE(err, rest.rel_error_bound);
}

}  // namespace
}  // namespace rapids::core
