// Tests for incremental progressive refinement: the incremental bitplane
// decoder (decode_planes_incremental must be bit-identical to a from-scratch
// decode at every prefix), the CRC-verified restore cache, and the pipeline's
// refine() sessions (byte-identical refinement ladder, per-rung transfer
// accounting, plan reuse, cache corruption recovery, outage degradation).

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/mgard/bitplane.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/storage/restore_cache.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::mgard {
namespace {

bool bit_identical(const std::vector<f64>& a, const std::vector<f64>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f64)) == 0);
}

bool bit_identical(const std::vector<f32>& a, const std::vector<f32>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) == 0);
}

std::vector<f64> mixed_sign_coeffs(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<f64> coeffs(n);
  for (auto& c : coeffs) c = rng.normal(0.0, 25.0);
  if (!coeffs.empty()) coeffs[0] = 0.0;  // exercise the zero fast path too
  return coeffs;
}

// --- incremental bitplane decode ---

TEST(ProgressiveDecode, EveryPlanePairBitIdentical) {
  const std::size_t lengths[] = {1, 63, 64, 65, 4097};
  const u32 stops[] = {0, 1, 2, 5, 31, 32};
  for (std::size_t li = 0; li < std::size(lengths); ++li) {
    const auto coeffs = mixed_sign_coeffs(lengths[li], 1000 + li);
    const PlaneSet ps = encode_planes(coeffs);
    for (u32 p0 : stops) {
      for (u32 p1 : stops) {
        if (p0 >= p1) continue;
        ProgressiveState state;
        const auto first = decode_planes_incremental(ps, p0, state, nullptr);
        ASSERT_TRUE(bit_identical(first, decode_planes(ps, p0)))
            << "n=" << lengths[li] << " p0=" << p0;
        const auto second = decode_planes_incremental(ps, p1, state, nullptr);
        ASSERT_TRUE(bit_identical(second, decode_planes(ps, p1)))
            << "n=" << lengths[li] << " p0=" << p0 << " p1=" << p1;
      }
    }
  }
}

TEST(ProgressiveDecode, ChainedRefinementMatchesEveryPrefix) {
  const auto coeffs = mixed_sign_coeffs(2500, 77);
  const PlaneSet ps = encode_planes(coeffs);
  ProgressiveState state;
  for (u32 p : {0u, 1u, 2u, 5u, 13u, 31u, 32u}) {
    const auto inc = decode_planes_incremental(ps, p, state, nullptr);
    ASSERT_TRUE(bit_identical(inc, decode_planes(ps, p))) << "planes=" << p;
    EXPECT_EQ(state.planes_decoded, p);
  }
}

TEST(ProgressiveDecode, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const auto coeffs = mixed_sign_coeffs(1u << 17, 5);
  const PlaneSet ps = encode_planes(coeffs);
  ProgressiveState serial, parallel;
  for (u32 p : {3u, 17u, 32u}) {
    const auto a = decode_planes_incremental(ps, p, serial, nullptr);
    const auto b = decode_planes_incremental(ps, p, parallel, &pool);
    ASSERT_TRUE(bit_identical(a, b)) << "planes=" << p;
  }
}

TEST(ProgressiveDecode, AllZeroLevel) {
  const std::vector<f64> coeffs(129, 0.0);
  const PlaneSet ps = encode_planes(coeffs);
  ProgressiveState state;
  const auto a = decode_planes_incremental(ps, 0, state, nullptr);
  const auto b = decode_planes_incremental(ps, 32, state, nullptr);
  EXPECT_TRUE(bit_identical(a, std::vector<f64>(129, 0.0)));
  EXPECT_TRUE(bit_identical(b, std::vector<f64>(129, 0.0)));
}

TEST(ProgressiveDecode, RejectsShrinkingPlaneCount) {
  const auto coeffs = mixed_sign_coeffs(100, 9);
  const PlaneSet ps = encode_planes(coeffs);
  ProgressiveState state;
  (void)decode_planes_incremental(ps, 8, state, nullptr);
  EXPECT_THROW(decode_planes_incremental(ps, 4, state, nullptr),
               std::exception);
}

// The word-at-a-time BitReader must still detect truncated streams instead
// of reading past the end. A Rice-coded segment (mode byte 3) exercises both
// get_unary and get_bits refill paths.
TEST(ProgressiveDecode, TruncatedSegmentThrows) {
  Rng rng(11);
  std::vector<f64> coeffs(5000, 0.0);
  for (std::size_t i = 0; i < coeffs.size(); i += 97)
    coeffs[i] = rng.normal(0.0, 3.0);  // sparse: gap coding kicks in
  PlaneSet ps = encode_planes(coeffs);
  bool truncated_one = false;
  for (auto& plane : ps.planes) {
    if (plane.data.size() < 8) continue;
    PlaneSet damaged = ps;
    auto& seg =
        damaged.planes[static_cast<std::size_t>(&plane - ps.planes.data())];
    seg.data.resize(seg.data.size() / 2);
    EXPECT_THROW(decode_planes(damaged, kMagnitudePlanes), std::exception);
    truncated_one = true;
    break;
  }
  EXPECT_TRUE(truncated_one);
}

}  // namespace
}  // namespace rapids::mgard

namespace rapids::storage {
namespace {

Bytes make_payload(std::size_t n, u8 fill) {
  return Bytes(n, std::byte{fill});
}

TEST(RestoreCache, HitMissAndLru) {
  RestoreCache cache(1024);
  Bytes out;
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kMiss);
  cache.put("a", 0, 0, make_payload(100, 1));
  cache.put("a", 0, 1, make_payload(100, 2));
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kHit);
  EXPECT_EQ(out, make_payload(100, 1));
  EXPECT_EQ(cache.get("a", 0, 1, out), RestoreCache::Outcome::kHit);
  EXPECT_EQ(out, make_payload(100, 2));
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 200u);
}

TEST(RestoreCache, EvictsLeastRecentlyUsedUnderBudget) {
  RestoreCache cache(300);
  cache.put("a", 0, 0, make_payload(100, 1));
  cache.put("a", 0, 1, make_payload(100, 2));
  cache.put("a", 0, 2, make_payload(100, 3));
  Bytes out;
  // Touch level 0 so level 1 becomes the LRU victim.
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kHit);
  cache.put("a", 0, 3, make_payload(100, 4));
  EXPECT_EQ(cache.get("a", 0, 1, out), RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kHit);
  EXPECT_EQ(cache.get("a", 0, 2, out), RestoreCache::Outcome::kHit);
  EXPECT_EQ(cache.get("a", 0, 3, out), RestoreCache::Outcome::kHit);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 300u);
}

TEST(RestoreCache, CorruptEntryEvictedThenMisses) {
  RestoreCache cache(1024);
  cache.put("a", 0, 0, make_payload(64, 9));
  ASSERT_TRUE(cache.corrupt_entry_for_test("a", 0, 0));
  Bytes out;
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kCorrupt);
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.stats().corrupt_evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(RestoreCache, InvalidateFromDropsDeepLevelsOnly) {
  RestoreCache cache(1024);
  for (u32 j = 0; j < 4; ++j) cache.put("a", 0, j, make_payload(10, u8(j)));
  cache.put("b", 0, 3, make_payload(10, 50));
  cache.invalidate_from("a", 2);
  Bytes out;
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kHit);
  EXPECT_EQ(cache.get("a", 0, 1, out), RestoreCache::Outcome::kHit);
  EXPECT_EQ(cache.get("a", 0, 2, out), RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.get("a", 0, 3, out), RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.get("b", 0, 3, out), RestoreCache::Outcome::kHit);
  cache.invalidate("a");
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.get("b", 0, 3, out), RestoreCache::Outcome::kHit);
}

TEST(RestoreCache, OversizePayloadAndZeroBudgetRejected) {
  RestoreCache cache(100);
  cache.put("a", 0, 0, make_payload(101, 1));
  Bytes out;
  EXPECT_EQ(cache.get("a", 0, 0, out), RestoreCache::Outcome::kMiss);
  RestoreCache off(0);
  off.put("a", 0, 0, make_payload(1, 1));
  EXPECT_EQ(off.get("a", 0, 0, out), RestoreCache::Outcome::kMiss);
  EXPECT_EQ(off.stats().inserts, 0u);
}

}  // namespace
}  // namespace rapids::storage

namespace rapids::core {
namespace {

namespace fs = std::filesystem;
using mgard::Dims;

class RefineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rapids_refine_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    fs::remove_all(dir_);
    cluster_ = std::make_unique<storage::Cluster>(
        storage::ClusterConfig{16, 0.0, 42});
    db_ = kv::Db::open(dir_);
  }
  void TearDown() override {
    db_.reset();
    fs::remove_all(dir_);
  }

  // Deterministic byte accounting: no stragglers (prob 0 above), no hedges,
  // no bandwidth adaptation, so every fetch of level j costs exactly
  // k_j x fragment_bytes(j) regardless of plan or ordering.
  PipelineConfig refine_config() {
    PipelineConfig cfg;
    cfg.refactor.decomp_levels = 3;
    cfg.refactor.num_retrieval_levels = 4;
    cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
    cfg.aco.iterations = 20;
    cfg.adapt_bandwidth = false;
    cfg.hedged_reads = false;
    return cfg;
  }

  // Expected field for a j-level prefix, reconstructed directly from the
  // prepared payloads (no network, no cache).
  std::vector<f32> expected_prefix(const PrepareReport& prep, u32 j) const {
    std::vector<Bytes> payloads;
    for (u32 i = 0; i < j; ++i)
      payloads.push_back(prep.record.meta.levels[i].payload);
    const mgard::Refactorer refactorer(config_used_);
    return refactorer.reconstruct(prep.record.meta, payloads);
  }

  bool bit_identical(const std::vector<f32>& a,
                     const std::vector<f32>& b) const {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) == 0);
  }

  std::string dir_;
  std::unique_ptr<storage::Cluster> cluster_;
  std::unique_ptr<kv::Db> db_;
  mgard::RefactorOptions config_used_;
};

TEST_F(RefineTest, LadderBitIdenticalToFullRestoreAtEveryRung) {
  auto cfg = refine_config();
  config_used_ = cfg.refactor;
  RapidsPipeline pipeline(*cluster_, *db_, cfg);
  const Dims dims{33, 33, 17};
  const auto field = data::hurricane_pressure(dims, 1);
  const auto prep = pipeline.prepare(field, dims, "hp");

  // Full-restore byte baseline from a cache-disabled pipeline.
  auto cold = cfg;
  cold.restore_cache_bytes = 0;
  RapidsPipeline baseline(*cluster_, *db_, cold);
  const auto full = baseline.restore("hp");
  ASSERT_EQ(full.levels_used, 4u);
  ASSERT_GT(full.bytes_transferred, 0u);

  auto session = pipeline.begin_refine("hp");
  u64 cumulative = 0;
  u32 rung = 0;
  for (f64 bound : {4e-3, 5e-4, 6e-5, 1e-6}) {
    const auto report = pipeline.refine(*session, bound);
    ++rung;
    ASSERT_EQ(report.levels_used, rung) << "bound=" << bound;
    EXPECT_LE(report.rel_error_bound, bound);
    // Each rung transfers strictly less than the equivalent full restore:
    // only the new levels' fragments move.
    EXPECT_GT(report.bytes_transferred, 0u);
    EXPECT_LT(report.bytes_transferred, full.bytes_transferred);
    EXPECT_GT(report.planes_decoded, 0u);
    cumulative += report.bytes_transferred;
    ASSERT_TRUE(bit_identical(report.data, expected_prefix(prep, rung)))
        << "rung " << rung;
    EXPECT_EQ(session->levels(), rung);
    const f64 err = data::relative_linf_error(field, report.data);
    EXPECT_LE(err, report.rel_error_bound);
  }
  // The whole ladder moves exactly the bytes of one full restore.
  EXPECT_EQ(cumulative, full.bytes_transferred);
  ASSERT_TRUE(bit_identical(session->data(), full.data));
}

TEST_F(RefineTest, SecondRungReusesLadderPlan) {
  auto cfg = refine_config();
  RapidsPipeline pipeline(*cluster_, *db_, cfg);
  const Dims dims{33, 33, 17};
  const auto field = data::scale_temperature(dims, 3);
  pipeline.prepare(field, dims, "st");

  auto session = pipeline.begin_refine("st");
  const auto first = pipeline.refine(*session, 4e-3);
  EXPECT_FALSE(first.plan_reused);  // ladder planned on the first rung
  const auto second = pipeline.refine(*session, 6e-5);
  EXPECT_TRUE(second.plan_reused);
  EXPECT_EQ(second.levels_used, 3u);
  EXPECT_LT(second.planning_seconds, first.planning_seconds + 1e-9);
}

TEST_F(RefineTest, MetBoundTransfersNothing) {
  RapidsPipeline pipeline(*cluster_, *db_, refine_config());
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 4);
  pipeline.prepare(field, dims, "st");

  const auto first = pipeline.refine("st", 5e-4);
  ASSERT_EQ(first.levels_used, 2u);
  const auto again = pipeline.refine("st", 4e-3);  // looser: already met
  EXPECT_EQ(again.levels_used, 2u);
  EXPECT_EQ(again.bytes_transferred, 0u);
  EXPECT_EQ(again.planes_decoded, 0u);
  EXPECT_TRUE(bit_identical(again.data, first.data));
  pipeline.end_refine("st");
}

TEST_F(RefineTest, RepeatRestoreServedFromCache) {
  RapidsPipeline pipeline(*cluster_, *db_, refine_config());
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_pressure(dims, 2);
  pipeline.prepare(field, dims, "hp");

  const auto first = pipeline.restore("hp");
  ASSERT_EQ(first.levels_used, 4u);
  EXPECT_GT(first.bytes_transferred, 0u);
  EXPECT_EQ(first.cache_hits, 0u);

  const auto second = pipeline.restore("hp");
  EXPECT_EQ(second.cache_hits, 4u);
  EXPECT_EQ(second.bytes_transferred, 0u);
  EXPECT_TRUE(bit_identical(second.data, first.data));
}

TEST_F(RefineTest, CacheServesFullQualityDuringTotalOutage) {
  RapidsPipeline pipeline(*cluster_, *db_, refine_config());
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 5);
  pipeline.prepare(field, dims, "st");
  const auto warm = pipeline.restore("st");
  ASSERT_EQ(warm.levels_used, 4u);

  for (u32 i = 0; i < cluster_->size(); ++i) cluster_->fail(i);
  const auto outage = pipeline.restore("st");
  EXPECT_EQ(outage.levels_used, 4u);
  EXPECT_EQ(outage.bytes_transferred, 0u);
  EXPECT_TRUE(bit_identical(outage.data, warm.data));
  for (u32 i = 0; i < cluster_->size(); ++i) cluster_->restore(i);
}

TEST_F(RefineTest, CorruptedCacheEntryRefetchedAndBoundStillHolds) {
  RapidsPipeline pipeline(*cluster_, *db_, refine_config());
  const Dims dims{33, 33, 9};
  const auto field = data::hurricane_pressure(dims, 6);
  pipeline.prepare(field, dims, "hp");
  const auto first = pipeline.restore("hp");
  ASSERT_EQ(first.levels_used, 4u);

  ASSERT_TRUE(pipeline.restore_cache().corrupt_entry_for_test("hp", 0, 1, 7));
  const auto second = pipeline.restore("hp");
  EXPECT_EQ(second.cache_corrupt, 1u);
  EXPECT_EQ(second.cache_hits, 3u);
  EXPECT_GT(second.bytes_transferred, 0u);  // level 1 refetched
  EXPECT_LT(second.bytes_transferred, first.bytes_transferred);
  EXPECT_TRUE(bit_identical(second.data, first.data));
  const f64 err = data::relative_linf_error(field, second.data);
  EXPECT_LE(err, second.rel_error_bound);
}

TEST_F(RefineTest, RefineDegradesGracefullyUnderOutageThenRecovers) {
  RapidsPipeline pipeline(*cluster_, *db_, refine_config());
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 8);
  pipeline.prepare(field, dims, "st");

  auto session = pipeline.begin_refine("st");
  for (u32 i = 0; i < cluster_->size(); ++i) cluster_->fail(i);
  const auto blocked = pipeline.refine(*session, 1e-6);
  EXPECT_EQ(blocked.levels_used, 0u);
  EXPECT_TRUE(blocked.data.empty());
  EXPECT_EQ(blocked.rel_error_bound, 1.0);

  for (u32 i = 0; i < cluster_->size(); ++i) cluster_->restore(i);
  const auto healed = pipeline.refine(*session, 1e-6);
  EXPECT_EQ(healed.levels_used, 4u);
  const f64 err = data::relative_linf_error(field, healed.data);
  EXPECT_LE(err, healed.rel_error_bound);
}

TEST_F(RefineTest, AgingInvalidatesDroppedCacheLevels) {
  RapidsPipeline pipeline(*cluster_, *db_, refine_config());
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 9);
  pipeline.prepare(field, dims, "st");
  (void)pipeline.restore("st");  // warm the cache with all 4 levels

  pipeline.age_object("st", 2);
  const auto after = pipeline.restore("st");
  EXPECT_EQ(after.levels_used, 2u);
  EXPECT_EQ(after.cache_hits, 2u);       // kept levels still served
  EXPECT_EQ(after.bytes_transferred, 0u);
}

TEST_F(RefineTest, ConcurrentSessionsConvergeIdentically) {
  auto cfg = refine_config();
  RapidsPipeline pipeline(*cluster_, *db_, cfg);
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_pressure(dims, 10);
  pipeline.prepare(field, dims, "hp");

  auto s1 = pipeline.begin_refine("hp");
  auto s2 = pipeline.begin_refine("hp");
  const f64 ladder[] = {4e-3, 5e-4, 6e-5, 1e-6};
  auto drive = [&](RefineSession& s) {
    for (const f64 bound : ladder) {
      const auto report = pipeline.refine(s, bound);
      ASSERT_LE(report.rel_error_bound, bound);
    }
  };
  std::thread t1([&] { drive(*s1); });
  std::thread t2([&] { drive(*s2); });
  t1.join();
  t2.join();
  EXPECT_EQ(s1->levels(), 4u);
  EXPECT_EQ(s2->levels(), 4u);
  ASSERT_TRUE(bit_identical(s1->data(), s2->data()));

  config_used_ = cfg.refactor;
  const auto full = pipeline.restore("hp");
  ASSERT_TRUE(bit_identical(s1->data(), full.data));
}

}  // namespace
}  // namespace rapids::core
