// Tests for the metadata key-value store: WAL framing and torn-tail
// recovery, memtable semantics, sorted-run files, and the DB facade
// (flush, compaction, prefix scans, reopen durability).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

#include "rapids/kvstore/db.hpp"
#include "rapids/util/bytes.hpp"

namespace rapids::kv {
namespace {

namespace fs = std::filesystem;

class KvDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rapids_kv_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

// --- WAL ---

class WalTest : public KvDirTest {};

TEST_F(WalTest, AppendReplayRoundTrip) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/wal.log";
  {
    WalWriter w(path);
    w.append(WalOp::kPut, "alpha", "1");
    w.append(WalOp::kPut, "beta", "2");
    w.append(WalOp::kDelete, "alpha", "");
  }
  std::vector<WalRecord> records;
  const u64 n = wal_replay(path, [&](const WalRecord& r) { records.push_back(r); });
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(records[0].op, WalOp::kPut);
  EXPECT_EQ(records[0].key, "alpha");
  EXPECT_EQ(records[2].op, WalOp::kDelete);
  EXPECT_EQ(records[2].key, "alpha");
}

TEST_F(WalTest, MissingFileReplaysNothing) {
  EXPECT_EQ(wal_replay(dir_ + "/nope.log", [](const WalRecord&) { FAIL(); }), 0u);
}

TEST_F(WalTest, TornTailIgnored) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/wal.log";
  {
    WalWriter w(path);
    w.append(WalOp::kPut, "good", "value");
    w.append(WalOp::kPut, "tail", "casualty");
  }
  // Simulate a crash mid-append: truncate the last few bytes.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 3);
  u64 n = wal_replay(path, [](const WalRecord&) {});
  EXPECT_EQ(n, 1u);
}

TEST_F(WalTest, CorruptBodyStopsReplay) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/wal.log";
  {
    WalWriter w(path);
    w.append(WalOp::kPut, "first", "ok");
    w.append(WalOp::kPut, "second", "will-be-corrupted");
  }
  // Flip a byte inside the second record's body.
  auto raw = read_file(path);
  raw[raw.size() - 2] ^= std::byte{0xFF};
  write_file(path, as_bytes_view(raw));
  std::vector<std::string> keys;
  wal_replay(path, [&](const WalRecord& r) { keys.push_back(r.key); });
  EXPECT_EQ(keys, std::vector<std::string>{"first"});
}

TEST_F(WalTest, ResetTruncates) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/wal.log";
  WalWriter w(path);
  w.append(WalOp::kPut, "k", "v");
  EXPECT_GT(w.bytes_written(), 0u);
  w.reset();
  EXPECT_EQ(w.bytes_written(), 0u);
  EXPECT_EQ(wal_replay(path, [](const WalRecord&) {}), 0u);
}

// --- MemTable ---

TEST_F(WalTest, AppendBatchReplaysLikeIndividualAppends) {
  fs::create_directories(dir_);
  const std::string batched = dir_ + "/batched.log";
  const std::string individual = dir_ + "/individual.log";
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"frag/a/0/0", "3"}, {"frag/a/0/1", "7"}, {"frag/a/0/2", "11"}};
  {
    WalWriter w(batched);
    w.append_batch(entries);
  }
  {
    WalWriter w(individual);
    for (const auto& [k, v] : entries) w.append(WalOp::kPut, k, v);
  }
  // One group append produces the same byte stream as N single appends, so
  // replay (and torn-tail recovery) cannot tell them apart.
  std::ifstream a(batched, std::ios::binary), b(individual, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(b)), {});
  EXPECT_EQ(bytes_a, bytes_b);
  std::vector<WalRecord> records;
  EXPECT_EQ(wal_replay(batched, [&](const WalRecord& r) { records.push_back(r); }), 3u);
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(records[i].op, WalOp::kPut);
    EXPECT_EQ(records[i].key, entries[i].first);
    EXPECT_EQ(records[i].value, entries[i].second);
  }
}

TEST_F(WalTest, AppendBatchEmptyIsNoop) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/wal.log";
  {
    WalWriter w(path);
    w.append_batch({});
  }
  EXPECT_EQ(wal_replay(path, [](const WalRecord&) { FAIL(); }), 0u);
}

TEST(MemTable, PutGetDelete) {
  MemTable mt;
  EXPECT_FALSE(mt.get("a").has_value());
  mt.put("a", "1");
  ASSERT_TRUE(mt.get("a").has_value());
  EXPECT_EQ(mt.get("a")->value(), "1");
  mt.del("a");
  ASSERT_TRUE(mt.get("a").has_value());       // known here...
  EXPECT_FALSE(mt.get("a")->has_value());     // ...as a tombstone
  mt.put("a", "2");
  EXPECT_EQ(mt.get("a")->value(), "2");
}

TEST(MemTable, OrderedIteration) {
  MemTable mt;
  mt.put("b", "2");
  mt.put("a", "1");
  mt.put("c", "3");
  std::vector<std::string> keys;
  for (const auto& [k, v] : mt.entries()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MemTable, ApproximateBytesGrows) {
  MemTable mt;
  const u64 before = mt.approximate_bytes();
  mt.put("key", std::string(1000, 'x'));
  EXPECT_GT(mt.approximate_bytes(), before + 999);
  mt.clear();
  EXPECT_EQ(mt.approximate_bytes(), 0u);
  EXPECT_TRUE(mt.empty());
}

// --- SortedRun ---

class RunTest : public KvDirTest {};

TEST_F(RunTest, WriteOpenRoundTrip) {
  fs::create_directories(dir_);
  const std::vector<RunEntry> entries = {
      {"a", "1"}, {"b", std::nullopt}, {"c", "3"}};
  SortedRun::write(dir_ + "/r.sst", entries);
  const SortedRun run = SortedRun::open(dir_ + "/r.sst");
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run.get("a")->value(), "1");
  EXPECT_FALSE(run.get("b")->has_value());  // tombstone
  EXPECT_FALSE(run.get("zzz").has_value()); // absent
}

TEST_F(RunTest, UnsortedRejected) {
  fs::create_directories(dir_);
  const std::vector<RunEntry> entries = {{"b", "2"}, {"a", "1"}};
  EXPECT_THROW(SortedRun::write(dir_ + "/bad.sst", entries), invariant_error);
}

TEST_F(RunTest, CorruptionDetected) {
  fs::create_directories(dir_);
  SortedRun::write(dir_ + "/r.sst", {{"key", "value"}});
  auto raw = read_file(dir_ + "/r.sst");
  raw[raw.size() - 1] ^= std::byte{0x01};
  write_file(dir_ + "/r.sst", as_bytes_view(raw));
  EXPECT_THROW(SortedRun::open(dir_ + "/r.sst"), io_error);
}

TEST_F(RunTest, PrefixScan) {
  fs::create_directories(dir_);
  SortedRun::write(dir_ + "/r.sst", {{"frag/a/0", "x"},
                                     {"frag/a/1", "y"},
                                     {"frag/b/0", "z"},
                                     {"obj/a", "meta"}});
  const SortedRun run = SortedRun::open(dir_ + "/r.sst");
  const auto hits = run.scan_prefix("frag/a/");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].key, "frag/a/0");
  EXPECT_EQ(hits[1].key, "frag/a/1");
  EXPECT_TRUE(run.scan_prefix("nope/").empty());
}

// --- Db facade ---

class DbTest : public KvDirTest {};

TEST_F(DbTest, PutGetDelete) {
  auto db = Db::open(dir_);
  EXPECT_FALSE(db->get("k").has_value());
  db->put("k", "v1");
  EXPECT_EQ(db->get("k").value(), "v1");
  db->put("k", "v2");
  EXPECT_EQ(db->get("k").value(), "v2");
  db->del("k");
  EXPECT_FALSE(db->get("k").has_value());
}

TEST_F(DbTest, SurvivesReopenViaWal) {
  {
    auto db = Db::open(dir_);
    db->put("persist", "me");
    db->put("doomed", "x");
    db->del("doomed");
  }  // no flush: data only in the WAL
  auto db = Db::open(dir_);
  EXPECT_EQ(db->get("persist").value(), "me");
  EXPECT_FALSE(db->get("doomed").has_value());
}

TEST_F(DbTest, SurvivesReopenViaRuns) {
  {
    auto db = Db::open(dir_);
    for (int i = 0; i < 100; ++i)
      db->put("key" + std::to_string(i), "value" + std::to_string(i));
    db->flush();
    db->put("late", "wal-only");
  }
  auto db = Db::open(dir_);
  EXPECT_EQ(db->get("key42").value(), "value42");
  EXPECT_EQ(db->get("late").value(), "wal-only");
}

TEST_F(DbTest, PutBatchVisibleAndDurable) {
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"frag/x/0/0", "0"}, {"frag/x/0/1", "5"}, {"frag/x/1/0", "9"}};
  {
    auto db = Db::open(dir_);
    db->put_batch(entries);
    for (const auto& [k, v] : entries) EXPECT_EQ(db->get(k).value(), v);
  }  // no flush: the batch lives only in the WAL's single group append
  auto db = Db::open(dir_);
  for (const auto& [k, v] : entries) EXPECT_EQ(db->get(k).value(), v);
}

TEST_F(DbTest, PutBatchRejectsEmptyKeyAtomically) {
  auto db = Db::open(dir_);
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"good", "1"}, {"", "2"}};
  EXPECT_THROW(db->put_batch(entries), invariant_error);
  // Validation happens before the WAL append: nothing was written.
  EXPECT_FALSE(db->get("good").has_value());
}

TEST_F(DbTest, TombstoneShadowsFlushedValue) {
  auto db = Db::open(dir_);
  db->put("k", "old");
  db->flush();
  db->del("k");
  EXPECT_FALSE(db->get("k").has_value());
  db->flush();
  EXPECT_FALSE(db->get("k").has_value());
}

TEST_F(DbTest, NewestRunWins) {
  auto db = Db::open(dir_);
  db->put("k", "v1");
  db->flush();
  db->put("k", "v2");
  db->flush();
  EXPECT_EQ(db->num_runs(), 2u);
  EXPECT_EQ(db->get("k").value(), "v2");
}

TEST_F(DbTest, CompactMergesRunsAndDropsTombstones) {
  auto db = Db::open(dir_);
  db->put("keep", "1");
  db->put("drop", "2");
  db->flush();
  db->del("drop");
  db->flush();
  EXPECT_EQ(db->num_runs(), 2u);
  db->compact();
  EXPECT_EQ(db->num_runs(), 1u);
  EXPECT_EQ(db->get("keep").value(), "1");
  EXPECT_FALSE(db->get("drop").has_value());
}

TEST_F(DbTest, AutoFlushOnThreshold) {
  DbOptions opts;
  opts.memtable_flush_bytes = 1024;
  auto db = Db::open(dir_, opts);
  for (int i = 0; i < 100; ++i)
    db->put("key" + std::to_string(i), std::string(64, 'v'));
  EXPECT_GT(db->num_runs(), 0u);
  EXPECT_EQ(db->get("key99").value(), std::string(64, 'v'));
}

TEST_F(DbTest, AutoCompactionBoundsRunCount) {
  DbOptions opts;
  opts.memtable_flush_bytes = 256;
  opts.compaction_trigger = 4;
  auto db = Db::open(dir_, opts);
  for (int i = 0; i < 400; ++i)
    db->put("key" + std::to_string(i), std::string(32, 'v'));
  EXPECT_LE(db->num_runs(), 5u);
  for (int i = 0; i < 400; ++i)
    ASSERT_TRUE(db->get("key" + std::to_string(i)).has_value()) << i;
}

TEST_F(DbTest, ScanPrefixMergesLayers) {
  auto db = Db::open(dir_);
  db->put("frag/obj/0/0", "sys3");
  db->put("frag/obj/0/1", "sys4");
  db->flush();
  db->put("frag/obj/0/1", "sys9");  // overwrite in memtable
  db->put("frag/obj/1/0", "sys5");
  db->del("frag/obj/0/0");  // tombstone in memtable
  const auto hits = db->scan_prefix("frag/obj/");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, "frag/obj/0/1");
  EXPECT_EQ(hits[0].second, "sys9");
  EXPECT_EQ(hits[1].first, "frag/obj/1/0");
}

TEST_F(DbTest, EmptyKeyRejected) {
  auto db = Db::open(dir_);
  EXPECT_THROW(db->put("", "x"), invariant_error);
}

TEST_F(DbTest, CrashDuringWalAppendRecovers) {
  {
    auto db = Db::open(dir_);
    db->put("committed", "yes");
  }
  // Simulate a torn append at the tail of the WAL.
  {
    std::ofstream f(dir_ + "/wal.log", std::ios::binary | std::ios::app);
    f.write("\x12\x34\x56", 3);
  }
  {
    auto db = Db::open(dir_);
    EXPECT_EQ(db->get("committed").value(), "yes");
    db->put("after", "recovery");
    EXPECT_EQ(db->get("after").value(), "recovery");
  }
  // The torn tail was truncated at recovery, so a second reopen must still
  // see the post-recovery write.
  auto db = Db::open(dir_);
  EXPECT_EQ(db->get("committed").value(), "yes");
  EXPECT_EQ(db->get("after").value(), "recovery");
}

TEST_F(DbTest, BinaryValuesSafe) {
  auto db = Db::open(dir_);
  std::string value;
  for (int i = 0; i < 256; ++i) value.push_back(static_cast<char>(i));
  db->put("binary", value);
  db->flush();
  auto reopened = Db::open(dir_ + "_other");
  EXPECT_EQ(db->get("binary").value(), value);
}

}  // namespace
}  // namespace rapids::kv
