// Tests for GF(2^8) arithmetic, matrix algebra, and the Reed-Solomon codec:
// field axioms as property sweeps, matrix invertibility of the RS
// constructions, and the any-k-of-n recovery contract across geometries.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "rapids/ec/gf256.hpp"
#include "rapids/ec/matrix.hpp"
#include "rapids/ec/reed_solomon.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::ec {
namespace {

// --- GF(2^8) field axioms ---

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0xAB, 0xCD), 0xAB ^ 0xCD);
  EXPECT_EQ(GF256::sub(0xAB, 0xCD), 0xAB ^ 0xCD);
}

TEST(GF256, MulIdentityAndZero) {
  for (u32 a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<u8>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<u8>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<u8>(a), 0), 0);
  }
}

TEST(GF256, MulCommutative) {
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    const u8 a = static_cast<u8>(rng.next_u64());
    const u8 b = static_cast<u8>(rng.next_u64());
    ASSERT_EQ(GF256::mul(a, b), GF256::mul(b, a));
  }
}

TEST(GF256, MulAssociative) {
  Rng rng(2);
  for (int t = 0; t < 2000; ++t) {
    const u8 a = static_cast<u8>(rng.next_u64());
    const u8 b = static_cast<u8>(rng.next_u64());
    const u8 c = static_cast<u8>(rng.next_u64());
    ASSERT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
  }
}

TEST(GF256, MulDistributesOverAdd) {
  Rng rng(3);
  for (int t = 0; t < 2000; ++t) {
    const u8 a = static_cast<u8>(rng.next_u64());
    const u8 b = static_cast<u8>(rng.next_u64());
    const u8 c = static_cast<u8>(rng.next_u64());
    ASSERT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(GF256, EveryNonzeroHasInverse) {
  for (u32 a = 1; a < 256; ++a) {
    const u8 inv = GF256::inv(static_cast<u8>(a));
    ASSERT_EQ(GF256::mul(static_cast<u8>(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, InverseOfZeroThrows) { EXPECT_THROW(GF256::inv(0), invariant_error); }

TEST(GF256, DivisionConsistent) {
  Rng rng(4);
  for (int t = 0; t < 2000; ++t) {
    const u8 a = static_cast<u8>(rng.next_u64());
    u8 b = static_cast<u8>(rng.next_u64());
    if (b == 0) b = 1;
    ASSERT_EQ(GF256::mul(GF256::div(a, b), b), a);
  }
  EXPECT_THROW(GF256::div(5, 0), invariant_error);
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (u8 a : {u8{2}, u8{3}, u8{0x53}}) {
    u8 acc = 1;
    for (u32 e = 0; e < 300; ++e) {
      ASSERT_EQ(GF256::pow(a, e), acc) << "a=" << int(a) << " e=" << e;
      acc = GF256::mul(acc, a);
    }
  }
  EXPECT_EQ(GF256::pow(0, 0), 1);
  EXPECT_EQ(GF256::pow(0, 5), 0);
}

TEST(GF256, GeneratorHasFullOrder) {
  // alpha = 2 generates the multiplicative group: 2^255 == 1, 2^i != 1 before.
  u8 acc = 1;
  for (u32 e = 1; e < 255; ++e) {
    acc = GF256::mul(acc, 2);
    ASSERT_NE(acc, 1) << "order divides " << e;
  }
  EXPECT_EQ(GF256::mul(acc, 2), 1);
}

TEST(GF256, MulAccMatchesScalarLoop) {
  Rng rng(5);
  std::vector<u8> dst(1000), src(1000), expect(1000);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<u8>(rng.next_u64());
    src[i] = static_cast<u8>(rng.next_u64());
  }
  for (u8 c : {u8{0}, u8{1}, u8{0x1D}, u8{0xFF}}) {
    auto d = dst;
    for (std::size_t i = 0; i < d.size(); ++i)
      expect[i] = GF256::add(dst[i], GF256::mul(c, src[i]));
    GF256::mul_acc(d, src, c);
    ASSERT_EQ(d, expect) << "c=" << int(c);
  }
}

TEST(GF256, MulToMatchesScalarLoop) {
  Rng rng(6);
  std::vector<u8> src(257);
  for (auto& v : src) v = static_cast<u8>(rng.next_u64());
  std::vector<u8> dst(src.size()), expect(src.size());
  for (u8 c : {u8{0}, u8{1}, u8{0xA7}}) {
    for (std::size_t i = 0; i < src.size(); ++i) expect[i] = GF256::mul(c, src[i]);
    GF256::mul_to(dst, src, c);
    ASSERT_EQ(dst, expect);
  }
}

// --- Matrix ---

TEST(Matrix, IdentityMultiplication) {
  const Matrix id = Matrix::identity(5);
  Matrix a(5, 5);
  Rng rng(7);
  for (u32 r = 0; r < 5; ++r)
    for (u32 c = 0; c < 5; ++c) a.at(r, c) = static_cast<u8>(rng.next_u64());
  EXPECT_EQ(id.multiply(a), a);
  EXPECT_EQ(a.multiply(id), a);
}

TEST(Matrix, InverseRoundTrip) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix a(6, 6);
    // Random matrices over GF(256) are invertible with high probability;
    // retry until one is.
    do {
      for (u32 r = 0; r < 6; ++r)
        for (u32 c = 0; c < 6; ++c) a.at(r, c) = static_cast<u8>(rng.next_u64());
    } while (a.singular());
    const Matrix inv = a.inverted();
    EXPECT_EQ(a.multiply(inv), Matrix::identity(6));
    EXPECT_EQ(inv.multiply(a), Matrix::identity(6));
  }
}

TEST(Matrix, SingularDetected) {
  Matrix a(3, 3);  // all zeros
  EXPECT_TRUE(a.singular());
  EXPECT_THROW(a.inverted(), invariant_error);
  Matrix b = Matrix::identity(3);
  b.at(2, 2) = 0;
  EXPECT_TRUE(b.singular());
}

TEST(Matrix, ApplyMatchesMultiply) {
  Rng rng(9);
  Matrix a(4, 6);
  for (u32 r = 0; r < 4; ++r)
    for (u32 c = 0; c < 6; ++c) a.at(r, c) = static_cast<u8>(rng.next_u64());
  std::vector<u8> x(6), y(4);
  for (auto& v : x) v = static_cast<u8>(rng.next_u64());
  a.apply(x, y);
  for (u32 r = 0; r < 4; ++r) {
    u8 expect = 0;
    for (u32 c = 0; c < 6; ++c)
      expect = GF256::add(expect, GF256::mul(a.at(r, c), x[c]));
    EXPECT_EQ(y[r], expect);
  }
}

TEST(Matrix, SelectRows) {
  Matrix a(5, 3);
  for (u32 r = 0; r < 5; ++r)
    for (u32 c = 0; c < 3; ++c) a.at(r, c) = static_cast<u8>(r * 10 + c);
  const std::vector<u32> rows = {4, 0, 2};
  const Matrix s = a.select_rows(rows);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s.at(0, 1), 41);
  EXPECT_EQ(s.at(1, 0), 0);
  EXPECT_EQ(s.at(2, 2), 22);
}

struct RsGeometry {
  u32 k;
  u32 m;
};

class RsMatrixTest : public ::testing::TestWithParam<RsGeometry> {};

TEST_P(RsMatrixTest, SystematicTopIsIdentity) {
  const auto [k, m] = GetParam();
  for (const Matrix& e : {Matrix::rs_vandermonde(k, m), Matrix::rs_cauchy(k, m)}) {
    ASSERT_EQ(e.rows(), k + m);
    ASSERT_EQ(e.cols(), k);
    for (u32 r = 0; r < k; ++r)
      for (u32 c = 0; c < k; ++c)
        ASSERT_EQ(e.at(r, c), r == c ? 1 : 0) << "r=" << r << " c=" << c;
  }
}

TEST_P(RsMatrixTest, EveryKRowSubmatrixInvertible) {
  const auto [k, m] = GetParam();
  for (const Matrix& e : {Matrix::rs_vandermonde(k, m), Matrix::rs_cauchy(k, m)}) {
    // Exhaustive over combinations when small, random subsets otherwise.
    std::vector<u32> idx(k + m);
    std::iota(idx.begin(), idx.end(), 0u);
    Rng rng(10);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<u32> pick = idx;
      for (u32 i = 0; i < k; ++i) {
        const u64 j = i + rng.next_below(pick.size() - i);
        std::swap(pick[i], pick[j]);
      }
      pick.resize(k);
      std::sort(pick.begin(), pick.end());
      ASSERT_FALSE(e.select_rows(pick).singular());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, RsMatrixTest,
                         ::testing::Values(RsGeometry{2, 1}, RsGeometry{4, 2},
                                           RsGeometry{4, 4}, RsGeometry{6, 3},
                                           RsGeometry{12, 4}, RsGeometry{15, 1},
                                           RsGeometry{10, 6}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "m" +
                                  std::to_string(info.param.m);
                         });

// --- Reed-Solomon codec ---

std::vector<u8> random_payload(std::size_t size, u64 seed) {
  Rng rng(seed);
  std::vector<u8> data(size);
  for (auto& b : data) b = static_cast<u8>(rng.next_u64());
  return data;
}

class RsCodecTest : public ::testing::TestWithParam<RsGeometry> {};

TEST_P(RsCodecTest, EncodeGeometry) {
  const auto [k, m] = GetParam();
  const ReedSolomon rs(k, m);
  const auto data = random_payload(1000, 11);
  const auto frags = rs.encode(data, "obj", 3);
  ASSERT_EQ(frags.size(), k + m);
  const u64 expect_size = ceil_div(1000, k);
  for (u32 i = 0; i < frags.size(); ++i) {
    EXPECT_EQ(frags[i].payload.size(), expect_size);
    EXPECT_EQ(frags[i].id.index, i);
    EXPECT_EQ(frags[i].id.level, 3u);
    EXPECT_EQ(frags[i].level_bytes, 1000u);
    EXPECT_TRUE(frags[i].verify());
    EXPECT_EQ(frags[i].is_data(), i < k);
  }
}

TEST_P(RsCodecTest, AllDataFragmentsFastPath) {
  const auto [k, m] = GetParam();
  const ReedSolomon rs(k, m);
  const auto data = random_payload(997, 12);  // not divisible by k
  auto frags = rs.encode(data, "obj", 0);
  frags.resize(k);  // keep only the systematic rows
  EXPECT_EQ(rs.decode(frags), data);
}

TEST_P(RsCodecTest, RecoversFromAnyKSurvivors) {
  const auto [k, m] = GetParam();
  const ReedSolomon rs(k, m);
  const auto data = random_payload(4096 + 17, 13);
  const auto frags = rs.encode(data, "obj", 0);
  Rng rng(14);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<u32> idx(k + m);
    std::iota(idx.begin(), idx.end(), 0u);
    for (u32 i = 0; i < k; ++i) {
      const u64 j = i + rng.next_below(idx.size() - i);
      std::swap(idx[i], idx[j]);
    }
    std::vector<Fragment> survivors;
    for (u32 i = 0; i < k; ++i) survivors.push_back(frags[idx[i]]);
    ASSERT_EQ(rs.decode(survivors), data);
  }
}

TEST_P(RsCodecTest, ParityOnlyDecode) {
  const auto [k, m] = GetParam();
  if (m < k) GTEST_SKIP() << "needs m >= k to decode from parity alone";
  const ReedSolomon rs(k, m);
  const auto data = random_payload(512, 15);
  const auto frags = rs.encode(data, "obj", 0);
  std::vector<Fragment> parity(frags.begin() + k, frags.begin() + k + k);
  EXPECT_EQ(rs.decode(parity), data);
}

INSTANTIATE_TEST_SUITE_P(Geometries, RsCodecTest,
                         ::testing::Values(RsGeometry{2, 1}, RsGeometry{4, 2},
                                           RsGeometry{4, 4}, RsGeometry{6, 3},
                                           RsGeometry{12, 4}, RsGeometry{15, 1},
                                           RsGeometry{3, 6}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "m" +
                                  std::to_string(info.param.m);
                         });

TEST(ReedSolomon, CauchyAndVandermondeBothRecover) {
  const auto data = random_payload(2000, 16);
  for (auto kind : {MatrixKind::kVandermonde, MatrixKind::kCauchy}) {
    const ReedSolomon rs(5, 3, kind);
    auto frags = rs.encode(data, "obj", 0);
    // Drop 3 data fragments.
    std::vector<Fragment> survivors = {frags[3], frags[4], frags[5], frags[6],
                                       frags[7]};
    EXPECT_EQ(rs.decode(survivors), data);
  }
}

TEST(ReedSolomon, TooFewFragmentsThrows) {
  const ReedSolomon rs(4, 2);
  const auto data = random_payload(100, 17);
  auto frags = rs.encode(data, "obj", 0);
  std::vector<Fragment> three(frags.begin(), frags.begin() + 3);
  EXPECT_THROW(rs.decode(three), invariant_error);
}

TEST(ReedSolomon, DuplicateIndicesRejected) {
  const ReedSolomon rs(3, 2);
  const auto data = random_payload(100, 18);
  auto frags = rs.encode(data, "obj", 0);
  std::vector<Fragment> dup = {frags[0], frags[0], frags[1]};
  EXPECT_THROW(rs.decode(dup), invariant_error);
}

TEST(ReedSolomon, CorruptFragmentDetected) {
  const ReedSolomon rs(4, 2);
  const auto data = random_payload(1000, 19);
  auto frags = rs.encode(data, "obj", 0);
  frags[2].payload[10] ^= 0xFF;  // damage without updating CRC
  std::vector<Fragment> survivors(frags.begin(), frags.begin() + 4);
  EXPECT_THROW(rs.decode(survivors), invariant_error);
}

TEST(ReedSolomon, DuplicateExtrasSkipped) {
  // A duplicate index among the survivors is skipped, not fatal, as long as
  // k distinct fragments remain.
  const ReedSolomon rs(4, 2);
  const auto data = random_payload(1000, 40);
  auto frags = rs.encode(data, "obj", 0);
  std::vector<Fragment> survivors = {frags[0], frags[0], frags[1], frags[2],
                                     frags[3]};
  EXPECT_EQ(rs.decode(survivors), data);
  // Same with a parity fragment duplicated.
  std::vector<Fragment> with_parity = {frags[4], frags[4], frags[0], frags[1],
                                       frags[2]};
  EXPECT_EQ(rs.decode(with_parity), data);
}

TEST(ReedSolomon, CorruptExtraSkipped) {
  // A CRC-damaged fragment among extra survivors is skipped; decode proceeds
  // on the k healthy ones.
  const ReedSolomon rs(4, 2);
  const auto data = random_payload(1000, 41);
  auto frags = rs.encode(data, "obj", 0);
  frags[1].payload[10] ^= 0xFF;  // damage without updating CRC
  EXPECT_EQ(rs.decode(frags), data);
  // Reconstruction also routes around the damage.
  const Fragment rebuilt = rs.reconstruct_fragment(frags, 1);
  EXPECT_TRUE(rebuilt.verify());
}

TEST(ReedSolomon, CorruptBeyondRepairStillThrows) {
  // With only k survivors, damage leaves fewer than k healthy fragments.
  const ReedSolomon rs(4, 2);
  const auto data = random_payload(1000, 42);
  auto frags = rs.encode(data, "obj", 0);
  frags[2].payload[0] ^= 0x01;
  std::vector<Fragment> survivors(frags.begin(), frags.begin() + 4);
  EXPECT_THROW(rs.decode(survivors), invariant_error);
}

TEST(ReedSolomon, GeometryMismatchRejected) {
  const ReedSolomon rs4(4, 2);
  const ReedSolomon rs5(5, 2);
  const auto data = random_payload(1000, 20);
  auto frags4 = rs4.encode(data, "obj", 0);
  auto frags5 = rs5.encode(data, "obj", 0);
  std::vector<Fragment> mixed = {frags4[0], frags4[1], frags5[2], frags4[3]};
  EXPECT_THROW(rs4.decode(mixed), invariant_error);
}

TEST(ReedSolomon, InvalidGeometryRejected) {
  EXPECT_THROW(ReedSolomon(0, 2), invariant_error);
  EXPECT_THROW(ReedSolomon(2, 0), invariant_error);
  EXPECT_THROW(ReedSolomon(200, 100), invariant_error);
}

TEST(ReedSolomon, EmptyPayload) {
  const ReedSolomon rs(4, 2);
  const std::vector<u8> empty;
  auto frags = rs.encode(empty, "obj", 0);
  EXPECT_EQ(frags.size(), 6u);
  std::vector<Fragment> survivors(frags.begin() + 2, frags.end());
  EXPECT_TRUE(rs.decode(survivors).empty());
}

TEST(ReedSolomon, OneBytePayload) {
  const ReedSolomon rs(4, 2);
  const std::vector<u8> one = {0x5A};
  auto frags = rs.encode(one, "obj", 0);
  std::vector<Fragment> survivors = {frags[5], frags[4], frags[3], frags[2]};
  EXPECT_EQ(rs.decode(survivors), one);
}

TEST(ReedSolomon, ReconstructMissingDataFragment) {
  const ReedSolomon rs(6, 3);
  const auto data = random_payload(3000, 21);
  const auto frags = rs.encode(data, "obj", 2);
  for (u32 missing : {0u, 3u, 5u}) {
    std::vector<Fragment> survivors;
    for (const auto& f : frags)
      if (f.id.index != missing) survivors.push_back(f);
    const Fragment rebuilt = rs.reconstruct_fragment(survivors, missing);
    EXPECT_EQ(rebuilt.payload, frags[missing].payload);
    EXPECT_EQ(rebuilt.payload_crc, frags[missing].payload_crc);
    EXPECT_EQ(rebuilt.id.index, missing);
    EXPECT_EQ(rebuilt.id.level, 2u);
  }
}

TEST(ReedSolomon, ReconstructMissingParityFragment) {
  const ReedSolomon rs(6, 3);
  const auto data = random_payload(3000, 22);
  const auto frags = rs.encode(data, "obj", 0);
  for (u32 missing : {6u, 7u, 8u}) {
    std::vector<Fragment> survivors;
    for (const auto& f : frags)
      if (f.id.index != missing) survivors.push_back(f);
    const Fragment rebuilt = rs.reconstruct_fragment(survivors, missing);
    EXPECT_EQ(rebuilt.payload, frags[missing].payload);
  }
}

TEST(ReedSolomon, ParallelEncodeMatchesSerial) {
  ThreadPool pool(4);
  const ReedSolomon rs(8, 4);
  const auto data = random_payload(1 << 20, 23);
  const auto serial = rs.encode(data, "obj", 0);
  const auto parallel = rs.encode(data, "obj", 0, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i].payload, parallel[i].payload) << "fragment " << i;
}

TEST(ReedSolomon, ParallelDecodeMatchesSerial) {
  ThreadPool pool(4);
  const ReedSolomon rs(8, 4);
  const auto data = random_payload(1 << 20, 24);
  auto frags = rs.encode(data, "obj", 0);
  std::vector<Fragment> survivors(frags.begin() + 4, frags.end());
  EXPECT_EQ(rs.decode(survivors, &pool), data);
}

// --- Fragment serialization ---

TEST(Fragment, SerializeRoundTrip) {
  Fragment f;
  f.id = FragmentId{"NYX:temperature", 2, 7};
  f.k = 12;
  f.m = 4;
  f.level_bytes = 123456;
  f.payload = random_payload(500, 25);
  f.payload_crc = fragment_crc(f.payload);
  const Bytes wire = f.serialize();
  const Fragment back = Fragment::deserialize(as_bytes_view(wire));
  EXPECT_EQ(back.id, f.id);
  EXPECT_EQ(back.k, f.k);
  EXPECT_EQ(back.m, f.m);
  EXPECT_EQ(back.level_bytes, f.level_bytes);
  EXPECT_EQ(back.payload, f.payload);
  EXPECT_TRUE(back.verify());
}

TEST(Fragment, DeserializeBadMagicThrows) {
  Bytes junk(64, std::byte{0x11});
  EXPECT_THROW(Fragment::deserialize(as_bytes_view(junk)), io_error);
}

TEST(Fragment, TruncatedThrows) {
  Fragment f;
  f.id = FragmentId{"x", 0, 0};
  f.k = 2;
  f.m = 1;
  f.payload = random_payload(100, 26);
  f.payload_crc = fragment_crc(f.payload);
  Bytes wire = f.serialize();
  wire.resize(wire.size() / 2);
  EXPECT_THROW(Fragment::deserialize(as_bytes_view(wire)), io_error);
}

TEST(Fragment, KeyFormat) {
  const FragmentId id{"SCALE:T", 3, 15};
  EXPECT_EQ(id.key(), "frag/SCALE:T/3/15");
}

TEST(Fragment, VerifyCatchesDamage) {
  Fragment f;
  f.payload = random_payload(64, 27);
  f.payload_crc = fragment_crc(f.payload);
  EXPECT_TRUE(f.verify());
  f.payload[0] ^= 1;
  EXPECT_FALSE(f.verify());
}

// --- stripe-ranged encode/decode vs the whole-payload paths ---

// Edge-case payload lengths: 1 byte (all padding), straddling the k=12 row
// boundary (63/64/65 → fragment sizes 6/6/6 with varying padding), and a
// multi-stripe payload one past a power of two.
constexpr u64 kStripeLens[] = {1, 63, 64, 65, 4097};

TEST(ReedSolomonStripes, StitchedEncodeMatchesWholePayloadEncode) {
  const ReedSolomon rs(12, 4);
  u64 seed = 40;
  for (const u64 len : kStripeLens) {
    const auto data = random_payload(len, seed++);
    const auto whole = rs.encode(data, "obj", 2);
    const u64 frag_size = rs.fragment_size(len);
    for (const u64 stripe : {u64{64}, u64{1000}, frag_size}) {
      auto frags = rs.make_fragments(len, "obj", 2);
      // Walk the ranges backwards: stripe order must not matter.
      u64 hi = frag_size;
      while (hi > 0) {
        const u64 lo = hi > stripe ? hi - stripe : 0;
        rs.encode_stripe(data, lo, hi, frags);
        hi = lo;
      }
      rs.finish_fragments(frags);
      ASSERT_EQ(frags.size(), whole.size());
      for (std::size_t i = 0; i < frags.size(); ++i) {
        EXPECT_EQ(frags[i].serialize(), whole[i].serialize())
            << "len " << len << " stripe " << stripe << " fragment " << i;
        EXPECT_TRUE(frags[i].verify());
      }
    }
  }
}

TEST(ReedSolomonStripes, ClampedAndOutOfRangeStripesAreHarmless) {
  const ReedSolomon rs(12, 4);
  const auto data = random_payload(65, 50);
  const auto whole = rs.encode(data, "obj", 0);
  const u64 frag_size = rs.fragment_size(data.size());
  auto frags = rs.make_fragments(data.size(), "obj", 0);
  rs.encode_stripe(data, 0, frag_size + 100, frags);  // clamped to frag_size
  rs.encode_stripe(data, frag_size + 5, frag_size + 9, frags);  // no-op
  rs.encode_stripe(data, 3, 3, frags);                          // empty range
  rs.finish_fragments(frags);
  for (std::size_t i = 0; i < frags.size(); ++i)
    EXPECT_EQ(frags[i].serialize(), whole[i].serialize());
}

TEST(ReedSolomonStripes, StitchedDecodeMatchesWholePayloadDecode) {
  ThreadPool pool(4);
  const ReedSolomon rs(12, 4);
  u64 seed = 60;
  for (const u64 len : kStripeLens) {
    const auto data = random_payload(len, seed++);
    const auto frags = rs.encode(data, "obj", 1, &pool);
    // Survivors: drop 4 data fragments so parity rows join the decode.
    const std::vector<Fragment> survivors(frags.begin() + 4, frags.end());
    const auto whole = rs.decode(survivors);
    ASSERT_EQ(whole, data);
    const u64 frag_size = rs.fragment_size(len);
    for (const u64 stripe : {u64{64}, u64{1000}, frag_size}) {
      std::vector<u8> rows(12 * frag_size);
      for (u64 lo = 0; lo < frag_size; lo += stripe) {
        const u64 hi = std::min(frag_size, lo + stripe);
        std::vector<u8> slice(12 * (hi - lo));
        rs.decode_stripe(survivors, lo, hi, slice);
        for (u32 row = 0; row < 12; ++row)
          std::copy_n(slice.begin() + row * (hi - lo), hi - lo,
                      rows.begin() + row * frag_size + lo);
      }
      rows.resize(len);  // truncate padding, row-major == payload order
      EXPECT_EQ(rows, whole) << "len " << len << " stripe " << stripe;
    }
  }
}

}  // namespace
}  // namespace rapids::ec
