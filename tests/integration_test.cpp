// Cross-module integration scenarios: the full prepare -> outage -> restore
// -> repair lifecycle on all six paper objects, fragment files through the
// FSDF container, directory-backed storage, and RAPIDS-vs-baseline
// comparisons on real bytes.

#include <gtest/gtest.h>

#include <filesystem>

#include "rapids/core/baselines.hpp"
#include "rapids/core/pipeline.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/kvstore/replicated_db.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/fsdf/fsdf.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/storage/failure.hpp"

namespace rapids {
namespace {

namespace fs = std::filesystem;
using core::FtConfig;
using core::GatherStrategy;
using core::PipelineConfig;
using core::RapidsPipeline;
using mgard::Dims;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rapids_integ_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name())))
               .string();
    fs::remove_all(dir_);
    cluster_ = std::make_unique<storage::Cluster>(
        storage::ClusterConfig{16, 0.01, 2024});
    db_ = kv::Db::open(dir_ + "/db");
  }
  void TearDown() override {
    db_.reset();
    fs::remove_all(dir_);
  }

  PipelineConfig config() {
    PipelineConfig cfg;
    cfg.refactor.decomp_levels = 3;
    cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
    cfg.aco.iterations = 15;
    return cfg;
  }

  std::string dir_;
  std::unique_ptr<storage::Cluster> cluster_;
  std::unique_ptr<kv::Db> db_;
};

TEST_F(IntegrationTest, AllSixPaperObjectsRoundTrip) {
  ThreadPool pool(4);
  RapidsPipeline pipeline(*cluster_, *db_, config(), &pool);
  for (const auto& obj : data::paper_objects(1)) {
    const auto field = obj.generate(&pool);
    const auto prep = pipeline.prepare(field, obj.dims, obj.label());
    EXPECT_LE(prep.storage_overhead, 0.5) << obj.label();
    const auto rest = pipeline.restore(obj.label());
    ASSERT_EQ(rest.data.size(), field.size()) << obj.label();
    EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound)
        << obj.label();
  }
  // All 6 objects x 4 levels on every system.
  for (u32 i = 0; i < cluster_->size(); ++i)
    EXPECT_EQ(cluster_->system(i).fragment_count(), 24u);
}

TEST_F(IntegrationTest, ProgressiveDegradationLifecycle) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const auto obj = data::find_object("NYX:temperature", 1);
  const auto field = obj.generate();
  const auto prep = pipeline.prepare(field, obj.dims, "nyx");
  const FtConfig& ft = prep.record.ft;

  // Increasing outages -> weakly increasing error bound, always honored.
  f64 prev_bound = 0.0;
  for (u32 kill = 0; kill <= ft[0]; ++kill) {
    std::vector<u32> down;
    for (u32 i = 0; i < kill; ++i) down.push_back(15 - i);
    storage::fail_exactly(*cluster_, down);
    const auto rest = pipeline.restore("nyx");
    ASSERT_GT(rest.levels_used, 0u) << "kill=" << kill;
    EXPECT_GE(rest.rel_error_bound, prev_bound - 1e-15);
    EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
    prev_bound = rest.rel_error_bound;
  }
}

TEST_F(IntegrationTest, RepairThenRestoreAfterPermanentLoss) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const auto obj = data::find_object("hurricane:Pf48.bin", 1);
  const auto field = obj.generate();
  const auto prep = pipeline.prepare(field, obj.dims, "h");

  // Permanently lose every fragment on systems 0 and 1 (disk loss, not
  // outage), repair them onto systems 14/15... then restore.
  for (u32 level = 0; level < 4; ++level) {
    for (u32 sys : {0u, 1u}) {
      const u32 idx =
          storage::fragment_at(prep.record.placement, 16, level, sys);
      cluster_->system(sys).erase(ec::FragmentId{"h", level, idx}.key());
      pipeline.repair_fragment("h", level, idx, sys);  // rebuild in place
    }
  }
  const auto rest = pipeline.restore("h");
  EXPECT_EQ(rest.levels_used, 4u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

TEST_F(IntegrationTest, DirectoryBackedClusterEndToEnd) {
  for (u32 i = 0; i < cluster_->size(); ++i)
    cluster_->system(i).attach_directory(dir_ + "/sys" + std::to_string(i));
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{33, 17, 9};
  const auto field = data::scale_pressure(dims, 3);
  pipeline.prepare(field, dims, "disk");
  storage::fail_exactly(*cluster_, {4, 9});
  const auto rest = pipeline.restore("disk");
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
  // Fragments really are on disk as parseable files.
  u64 files = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir_ + "/sys0")) files += e.is_regular_file();
  EXPECT_EQ(files, 4u);
}

TEST_F(IntegrationTest, FragmentsTravelThroughFsdfContainers) {
  // Wrap each fragment in a self-describing FSDF file, re-read, and decode:
  // the interchange the paper does with HDF5/ADIOS fragment files.
  const ec::ReedSolomon rs(4, 2);
  std::vector<u8> payload(5000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<u8>(i ^ 0x3C);
  const auto frags = rs.encode(payload, "SCALE:T", 1);

  fs::create_directories(dir_ + "/fsdf");
  std::vector<std::string> paths;
  for (const auto& f : frags) {
    fsdf::Writer w;
    w.set_attr("object_name", f.id.object_name);
    w.set_attr("level", static_cast<i64>(f.id.level));
    w.set_attr("index", static_cast<i64>(f.id.index));
    w.add_dataset("fragment", f.serialize());
    const std::string path =
        dir_ + "/fsdf/frag" + std::to_string(f.id.index) + ".fsdf";
    w.write(path);
    paths.push_back(path);
  }
  // Read back any 4 and decode.
  std::vector<ec::Fragment> survivors;
  for (u32 i : {5u, 3u, 1u, 0u}) {
    const auto r = fsdf::Reader::open(paths[i]);
    EXPECT_EQ(r.attr_string("object_name"), "SCALE:T");
    survivors.push_back(
        ec::Fragment::deserialize(as_bytes_view(r.dataset("fragment"))));
  }
  EXPECT_EQ(rs.decode(survivors), payload);
}

TEST_F(IntegrationTest, RapidsBeatsBaselinesOnOverheadAtComparableQuality) {
  // The Fig. 2 comparison on real refactored sizes: RF+EC expected error vs
  // DP(3 replicas) and EC(12+4) at their storage overheads.
  auto cfg = config();
  cfg.overhead_budget = 0.16;  // half of plain EC(12,4)'s overhead
  RapidsPipeline pipeline(*cluster_, *db_, cfg);
  const auto obj = data::find_object("NYX:temperature", 1);
  const auto field = obj.generate();
  const auto prep = pipeline.prepare(field, obj.dims, "cmp");

  const f64 dp_overhead = core::duplication_storage_overhead(2);   // 1.0
  const f64 ec_overhead = core::ec_storage_overhead(12, 4);        // 0.333
  const f64 dp_error = core::duplication_unavailability(16, 2, 0.01);

  // RAPIDS: far better expected error than DP and far lower overhead than
  // both baselines (compression makes parity bytes cheap) — Fig. 2's shape.
  EXPECT_LE(prep.storage_overhead, 0.16);
  EXPECT_LT(prep.storage_overhead, ec_overhead / 2.0);
  EXPECT_LT(prep.storage_overhead, dp_overhead / 6.0);
  EXPECT_LT(prep.expected_error, dp_error);
}

TEST_F(IntegrationTest, MetadataScanEnumeratesFragments) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{17, 17, 9};
  const auto field = data::nyx_velocity(dims, 4);
  pipeline.prepare(field, dims, "scanme");
  const auto hits = db_->scan_prefix("frag/scanme/");
  EXPECT_EQ(hits.size(), 4u * 16u);
  // Values are hosting-system ids.
  for (const auto& [key, value] : hits) {
    const u32 sys = static_cast<u32>(std::stoul(value));
    EXPECT_LT(sys, 16u);
  }
}

TEST_F(IntegrationTest, PipelineRunsOnReplicatedMetadata) {
  // The paper's future-work configuration: metadata on a quorum-replicated
  // store. The full prepare/restore cycle must work, and must keep working
  // when a metadata replica dies between the two phases.
  auto rdb = kv::ReplicatedDb::open(dir_ + "/rdb", 3, 2, 2);
  RapidsPipeline pipeline(*cluster_, *rdb, config());
  const Dims dims{33, 17, 9};
  const auto field = data::hurricane_pressure(dims, 21);
  pipeline.prepare(field, dims, "repl");
  rdb->set_replica_up(1, false);  // metadata server outage
  storage::fail_exactly(*cluster_, {2, 7});
  const auto rest = pipeline.restore("repl");
  EXPECT_GT(rest.levels_used, 0u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);
}

TEST_F(IntegrationTest, EvacuateSystemThenRestore) {
  // Retire a storage system: its fragments migrate to the least-loaded
  // peers, the metadata store learns the new locations, and a restore that
  // plans onto the moved fragments still works.
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{33, 33, 17};
  const auto field = data::scale_temperature(dims, 22);
  pipeline.prepare(field, dims, "evac");

  const u32 moved = pipeline.evacuate_system("evac", 6);
  EXPECT_EQ(moved, 4u);  // one fragment per retrieval level
  EXPECT_EQ(cluster_->system(6).fragment_count(), 0u);

  // The retired system goes dark for good; restore must not miss a beat.
  cluster_->fail(6);
  const auto rest = pipeline.restore("evac");
  EXPECT_GT(rest.levels_used, 0u);
  EXPECT_LE(data::relative_linf_error(field, rest.data), rest.rel_error_bound);

  // Evacuating again is a no-op.
  EXPECT_EQ(pipeline.evacuate_system("evac", 6), 0u);
}

TEST_F(IntegrationTest, TwoObjectsCoexist) {
  RapidsPipeline pipeline(*cluster_, *db_, config());
  const Dims dims{17, 17, 9};
  const auto a = data::hurricane_pressure(dims, 5);
  const auto b = data::scale_temperature(dims, 6);
  pipeline.prepare(a, dims, "a");
  pipeline.prepare(b, dims, "b");
  const auto ra = pipeline.restore("a");
  const auto rb = pipeline.restore("b");
  EXPECT_LE(data::relative_linf_error(a, ra.data), ra.rel_error_bound);
  EXPECT_LE(data::relative_linf_error(b, rb.data), rb.rel_error_bound);
}

}  // namespace
}  // namespace rapids
