// Tests for the gathering strategies: recoverability logic, plan
// feasibility, Naive vs Random vs Optimized orderings, and behaviour under
// outages — the machinery behind the paper's Fig. 4.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rapids/core/gather.hpp"

namespace rapids::core {
namespace {

GatherProblem make_problem(u32 failed = 0) {
  GatherProblem pr;
  pr.n = 16;
  pr.m = {8, 5, 4, 2};
  pr.level_sizes = {1u << 20, 6u << 20, 36u << 20, 200u << 20};
  pr.bandwidths.resize(pr.n);
  for (u32 i = 0; i < pr.n; ++i)
    pr.bandwidths[i] = 400.0e6 + 170.0e6 * i;  // 0.4 .. 3 GB/s spread
  pr.available.assign(pr.n, true);
  for (u32 i = 0; i < failed; ++i) pr.available[i] = false;
  return pr;
}

TEST(GatherProblem, RecoverableLevelsByFailureCount) {
  // m = [8,5,4,2]: N<=2 -> 4 levels, N<=4 -> 3, N=5 -> 2, 6<=N<=8 -> 1, N>8 -> 0.
  EXPECT_EQ(make_problem(0).recoverable_levels(), 4u);
  EXPECT_EQ(make_problem(2).recoverable_levels(), 4u);
  EXPECT_EQ(make_problem(3).recoverable_levels(), 3u);
  EXPECT_EQ(make_problem(4).recoverable_levels(), 3u);
  EXPECT_EQ(make_problem(5).recoverable_levels(), 2u);
  EXPECT_EQ(make_problem(6).recoverable_levels(), 1u);
  EXPECT_EQ(make_problem(8).recoverable_levels(), 1u);
  EXPECT_EQ(make_problem(9).recoverable_levels(), 0u);
}

TEST(GatherProblem, FragmentBytes) {
  const auto pr = make_problem();
  EXPECT_EQ(pr.fragment_bytes(1), ceil_div(1u << 20, 16 - 8));
  EXPECT_EQ(pr.fragment_bytes(4), ceil_div(200u << 20, 16 - 2));
}

void expect_feasible(const GatherProblem& pr, const GatherPlan& plan) {
  const u32 levels = pr.recoverable_levels();
  ASSERT_EQ(plan.systems_per_level.size(), levels);
  for (u32 j = 0; j < levels; ++j) {
    EXPECT_EQ(plan.systems_per_level[j].size(), pr.n - pr.m[j]) << "level " << j;
    std::set<u32> distinct;
    for (u32 sys : plan.systems_per_level[j]) {
      EXPECT_TRUE(pr.available[sys]) << "level " << j << " uses down system";
      distinct.insert(sys);
    }
    EXPECT_EQ(distinct.size(), plan.systems_per_level[j].size());
  }
  EXPECT_GT(plan.latency, 0.0);
  EXPECT_GT(plan.mean_time, 0.0);
  EXPECT_GE(plan.latency, plan.mean_time);
}

TEST(RandomPlan, FeasibleAndSeedDependent) {
  const auto pr = make_problem(2);
  Rng rng1(1), rng2(1), rng3(2);
  const auto a = random_plan(pr, rng1);
  const auto b = random_plan(pr, rng2);
  const auto c = random_plan(pr, rng3);
  expect_feasible(pr, a);
  EXPECT_EQ(a.systems_per_level, b.systems_per_level);  // same seed
  EXPECT_NE(a.systems_per_level, c.systems_per_level);  // different seed
}

TEST(NaivePlan, PicksHighestBandwidthSystems) {
  const auto pr = make_problem();
  const auto plan = naive_plan(pr);
  expect_feasible(pr, plan);
  // Level 1 needs n-m_1 = 8 fragments: the 8 fastest systems are ids 8..15.
  const std::set<u32> expect = {8, 9, 10, 11, 12, 13, 14, 15};
  const std::set<u32> got(plan.systems_per_level[0].begin(),
                          plan.systems_per_level[0].end());
  EXPECT_EQ(got, expect);
}

TEST(NaivePlan, SkipsUnavailableSystems) {
  auto pr = make_problem();
  pr.available[15] = false;  // fastest system down
  const auto plan = naive_plan(pr);
  expect_feasible(pr, plan);
  for (const auto& level : plan.systems_per_level)
    for (u32 sys : level) EXPECT_NE(sys, 15u);
}

TEST(NaivePlan, SuffersContention) {
  // The greedy strategy loads the fast systems with one request per level;
  // its bottom-level transfers therefore share bandwidth 4 ways on the top
  // machines. Verify the contention shows in the objective.
  const auto pr = make_problem();
  const auto plan = naive_plan(pr);
  // System 15 serves one fragment of every level -> 4 concurrent requests.
  u32 uses_of_15 = 0;
  for (const auto& level : plan.systems_per_level)
    for (u32 sys : level) uses_of_15 += (sys == 15);
  EXPECT_EQ(uses_of_15, 4u);
}

TEST(OptimizedPlan, FeasibleAndDeterministic) {
  const auto pr = make_problem(1);
  solver::AcoOptions opt;
  opt.iterations = 40;
  opt.seed = 5;
  const auto a = optimized_plan(pr, opt);
  const auto b = optimized_plan(pr, opt);
  expect_feasible(pr, a);
  EXPECT_EQ(a.systems_per_level, b.systems_per_level);
  EXPECT_GE(a.planning_seconds, 0.0);
}

TEST(OptimizedPlan, NeverWorseThanNaiveObjective) {
  // Warm-started from Naive, the ACO's Eq. 10 objective can only improve.
  for (u32 failed : {0u, 2u, 4u}) {
    const auto pr = make_problem(failed);
    solver::AcoOptions opt;
    opt.iterations = 60;
    const auto naive = naive_plan(pr);
    const auto optimized = optimized_plan(pr, opt);
    EXPECT_LE(optimized.mean_time, naive.mean_time * (1 + 1e-12))
        << "failed=" << failed;
  }
}

TEST(OptimizedPlan, BeatsRandomOnAverage) {
  const auto pr = make_problem();
  solver::AcoOptions opt;
  opt.iterations = 80;
  const auto optimized = optimized_plan(pr, opt);
  f64 random_total = 0.0;
  Rng rng(9);
  const int trials = 20;
  for (int t = 0; t < trials; ++t) random_total += random_plan(pr, rng).mean_time;
  EXPECT_LT(optimized.mean_time, random_total / trials);
}

TEST(OptimizedPlan, SpreadsLoadOffHotSystems) {
  // With enough optimization the per-system request concentration should be
  // no worse than Naive's worst case.
  const auto pr = make_problem();
  solver::AcoOptions opt;
  opt.iterations = 80;
  const auto plan = optimized_plan(pr, opt);
  std::vector<u32> load(pr.n, 0);
  for (const auto& level : plan.systems_per_level)
    for (u32 sys : level) load[sys] += 1;
  const u32 max_load = *std::max_element(load.begin(), load.end());
  EXPECT_LE(max_load, 4u);
}

TEST(Gather, NothingRecoverableThrows) {
  const auto pr = make_problem(9);  // > m_1 failures
  Rng rng(1);
  EXPECT_THROW(random_plan(pr, rng), invariant_error);
  EXPECT_THROW(naive_plan(pr), invariant_error);
}

TEST(Gather, PartialRecoveryPlansOnlySurvivingLevels) {
  const auto pr = make_problem(5);  // levels 1..2 recoverable
  const auto plan = naive_plan(pr);
  EXPECT_EQ(plan.systems_per_level.size(), 2u);
  expect_feasible(pr, plan);
}

TEST(Gather, PlanTransfersMatchSelection) {
  const auto pr = make_problem();
  const auto plan = naive_plan(pr);
  const auto transfers = plan_transfers(pr, plan.systems_per_level);
  u64 expect_count = 0;
  for (u32 j = 0; j < 4; ++j) expect_count += pr.n - pr.m[j];
  EXPECT_EQ(transfers.size(), expect_count);
  // Bytes per level match the fragment size.
  EXPECT_EQ(transfers.front().bytes, pr.fragment_bytes(1));
  EXPECT_EQ(transfers.back().bytes, pr.fragment_bytes(4));
}

TEST(Gather, EvaluatePlanConsistentWithNetModel) {
  const auto pr = make_problem();
  const auto plan = naive_plan(pr);
  const auto transfers = plan_transfers(pr, plan.systems_per_level);
  EXPECT_DOUBLE_EQ(plan.mean_time,
                   net::equal_share_mean_time(transfers, pr.bandwidths));
  EXPECT_DOUBLE_EQ(plan.latency,
                   net::equal_share_latency(transfers, pr.bandwidths));
}

}  // namespace
}  // namespace rapids::core
