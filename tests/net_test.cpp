// Tests for the WAN substrate: the Globus-log bandwidth estimator and both
// transfer-time models (static equal share vs progressive refill).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rapids/net/bandwidth.hpp"
#include "rapids/net/transfer_sim.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::net {
namespace {

// --- bandwidth estimation ---

TEST(Bandwidth, SynthLogsCoverEveryEndpoint) {
  const auto logs = synth_globus_logs(16, 32, 5);
  EXPECT_EQ(logs.size(), 16u * 32u);
  std::vector<u32> counts(16, 0);
  for (const auto& rec : logs) {
    ASSERT_LT(rec.endpoint, 16u);
    counts[rec.endpoint] += 1;
    EXPECT_GT(rec.bytes, 0u);
    EXPECT_GT(rec.seconds, 0.0);
  }
  for (u32 c : counts) EXPECT_EQ(c, 32u);
}

TEST(Bandwidth, EstimatesWithinSampledRange) {
  const auto bw = sample_endpoint_bandwidths(16, 6);
  ASSERT_EQ(bw.size(), 16u);
  for (f64 b : bw) {
    EXPECT_GT(b, 300.0e6);  // lognormal jitter can dip slightly below 400 MB/s
    EXPECT_LT(b, 4.0e9);
  }
}

TEST(Bandwidth, DeterministicInSeed) {
  EXPECT_EQ(sample_endpoint_bandwidths(8, 7), sample_endpoint_bandwidths(8, 7));
  EXPECT_NE(sample_endpoint_bandwidths(8, 7), sample_endpoint_bandwidths(8, 8));
}

TEST(Bandwidth, EstimatorAveragesThroughput) {
  std::vector<TransferLogRecord> logs = {
      {0, 1000, 1.0},  // 1000 B/s
      {0, 3000, 1.0},  // 3000 B/s
      {1, 500, 0.5},   // 1000 B/s
  };
  const auto bw = estimate_bandwidths(logs, 2);
  EXPECT_DOUBLE_EQ(bw[0], 2000.0);
  EXPECT_DOUBLE_EQ(bw[1], 1000.0);
}

TEST(Bandwidth, EndpointWithoutLogsRejected) {
  std::vector<TransferLogRecord> logs = {{0, 1000, 1.0}};
  EXPECT_THROW(estimate_bandwidths(logs, 2), invariant_error);
}

TEST(Bandwidth, SpreadIsWide) {
  // The paper reports 400 MB/s .. >3 GB/s: fastest endpoint should be several
  // times the slowest.
  const auto bw = sample_endpoint_bandwidths(16, 42);
  const f64 lo = *std::min_element(bw.begin(), bw.end());
  const f64 hi = *std::max_element(bw.begin(), bw.end());
  EXPECT_GT(hi / lo, 3.0);
}

// --- equal-share model ---

TEST(EqualShare, SingleTransferUsesFullBandwidth) {
  const std::vector<Transfer> ts = {{0, 1000}};
  const std::vector<f64> bw = {100.0};
  const auto times = equal_share_times(ts, bw);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
}

TEST(EqualShare, ContentionSplitsBandwidth) {
  // Two transfers at the same system each get half the bandwidth.
  const std::vector<Transfer> ts = {{0, 1000}, {0, 1000}};
  const std::vector<f64> bw = {100.0};
  const auto times = equal_share_times(ts, bw);
  EXPECT_DOUBLE_EQ(times[0], 20.0);
  EXPECT_DOUBLE_EQ(times[1], 20.0);
}

TEST(EqualShare, IndependentSystemsDontInteract) {
  const std::vector<Transfer> ts = {{0, 1000}, {1, 500}};
  const std::vector<f64> bw = {100.0, 100.0};
  const auto times = equal_share_times(ts, bw);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(EqualShare, LatencyIsSlowest) {
  const std::vector<Transfer> ts = {{0, 1000}, {1, 4000}};
  const std::vector<f64> bw = {100.0, 100.0};
  EXPECT_DOUBLE_EQ(equal_share_latency(ts, bw), 40.0);
}

TEST(EqualShare, MeanMatchesHandComputation) {
  const std::vector<Transfer> ts = {{0, 1000}, {0, 1000}, {1, 300}};
  const std::vector<f64> bw = {100.0, 100.0};
  // System 0: two transfers at 50 B/s each -> 20 s each. System 1: 3 s.
  EXPECT_DOUBLE_EQ(equal_share_mean_time(ts, bw), (20.0 + 20.0 + 3.0) / 3.0);
}

TEST(EqualShare, EmptyPlanIsZero) {
  const std::vector<Transfer> none;
  const std::vector<f64> bw = {100.0};
  EXPECT_DOUBLE_EQ(equal_share_mean_time(none, bw), 0.0);
  EXPECT_DOUBLE_EQ(equal_share_latency(none, bw), 0.0);
}

TEST(EqualShare, UnknownSystemRejected) {
  const std::vector<Transfer> ts = {{5, 100}};
  const std::vector<f64> bw = {100.0};
  EXPECT_THROW(equal_share_times(ts, bw), invariant_error);
}

// --- progressive refill ---

TEST(Progressive, MatchesEqualShareWithoutContention) {
  const std::vector<Transfer> ts = {{0, 1000}, {1, 2000}};
  const std::vector<f64> bw = {100.0, 100.0};
  const auto prog = progressive_times(ts, bw);
  const auto eq = equal_share_times(ts, bw);
  EXPECT_NEAR(prog[0], eq[0], 1e-9);
  EXPECT_NEAR(prog[1], eq[1], 1e-9);
}

TEST(Progressive, RefillAcceleratesSurvivor) {
  // Two transfers share system 0; the short one finishes, then the long one
  // gets full bandwidth. Static model: long takes 2*3000/100 = 60s.
  // Progressive: 10s shared (500 B done), then 2500 B at 100 B/s -> 35s.
  const std::vector<Transfer> ts = {{0, 500}, {0, 3000}};
  const std::vector<f64> bw = {100.0};
  const auto prog = progressive_times(ts, bw);
  EXPECT_NEAR(prog[0], 10.0, 1e-6);
  EXPECT_NEAR(prog[1], 35.0, 1e-6);
  EXPECT_DOUBLE_EQ(equal_share_times(ts, bw)[1], 60.0);
}

TEST(Progressive, NeverSlowerThanStatic) {
  // Property: progressive refill dominates the static model per transfer.
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<f64> bw(6);
    for (auto& b : bw) b = rng.uniform(50.0, 500.0);
    std::vector<Transfer> ts;
    const u32 n = 1 + static_cast<u32>(rng.next_below(12));
    for (u32 i = 0; i < n; ++i)
      ts.push_back({static_cast<u32>(rng.next_below(6)),
                    1 + rng.next_below(100000)});
    const auto prog = progressive_times(ts, bw);
    const auto stat = equal_share_times(ts, bw);
    for (std::size_t i = 0; i < ts.size(); ++i)
      ASSERT_LE(prog[i], stat[i] * (1.0 + 1e-9)) << "trial " << trial;
  }
}

TEST(Progressive, ConservationOfBytes) {
  // Total completion-weighted throughput equals total bytes: validated via
  // the slowest transfer bounding total bytes / aggregate bandwidth.
  const std::vector<Transfer> ts = {{0, 1000}, {0, 1000}, {0, 1000}};
  const std::vector<f64> bw = {100.0};
  const auto prog = progressive_times(ts, bw);
  const f64 latest = *std::max_element(prog.begin(), prog.end());
  EXPECT_NEAR(latest, 3000.0 / 100.0, 1e-6);
}

TEST(Progressive, ZeroByteTransferFinishesImmediately) {
  const std::vector<Transfer> ts = {{0, 0}, {0, 1000}};
  const std::vector<f64> bw = {100.0};
  const auto prog = progressive_times(ts, bw);
  EXPECT_NEAR(prog[0], 0.0, 1e-9);
  EXPECT_NEAR(prog[1], 10.0, 1e-6);
}

}  // namespace
}  // namespace rapids::net
