// Bit-identity tests for the panel-major refactor kernels. Every dispatched
// kernel (AVX2 / NEON) must produce results byte-identical to the scalar
// reference on awkward shapes, and the rebuilt decompose/recompose must be
// byte-identical to the pre-panel per-line implementation (embedded below as
// `seedref`) — refactored payloads written before this change must restore
// unchanged after it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "rapids/mgard/bitplane.hpp"
#include "rapids/mgard/decompose.hpp"
#include "rapids/mgard/grid.hpp"
#include "rapids/mgard/kernels/kernels.hpp"
#include "rapids/mgard/workspace.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/simd/cpu_features.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::mgard {
namespace {

using simd::IsaLevel;

struct IsaOverrideGuard {
  explicit IsaOverrideGuard(IsaLevel l) { simd::set_isa_override(l); }
  ~IsaOverrideGuard() { simd::set_isa_override(std::nullopt); }
};

// The non-scalar tiers to pit against the reference. On x86 kNeon resolves to
// the scalar forwarder (and vice versa), so testing both everywhere is cheap.
const IsaLevel kTiers[] = {IsaLevel::kAvx2, IsaLevel::kNeon};

template <typename T>
std::vector<T> random_field(u64 n, u64 seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) {
    x = static_cast<T>(rng.uniform(-3.0, 3.0));
    if (rng.bernoulli(0.05)) x = 0;  // exercise exact-zero handling
  }
  return v;
}

template <typename T>
::testing::AssertionResult BytesEqual(const std::vector<T>& a,
                                      const std::vector<T>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  if (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0)
    return ::testing::AssertionSuccess();
  for (u64 i = 0; i < a.size(); ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(T)) != 0)
      return ::testing::AssertionFailure()
             << "first mismatch at [" << i << "]: " << a[i] << " vs " << b[i];
  return ::testing::AssertionFailure() << "memcmp mismatch";
}

// ---------------------------------------------------------------------------
// seedref: the pre-panel per-line transform, kept verbatim (minus threading)
// as the payload-compatibility arbiter. Do not "improve" this code — its
// arithmetic shape IS the contract.
// ---------------------------------------------------------------------------
namespace seedref {

template <typename Body>
void for_each_line(Dims dims, u32 axis, const Body& body) {
  u64 len = 0, stride = 0, o1 = 0, s1 = 0, o2 = 0, s2 = 0;
  switch (axis) {
    case 0:
      len = dims.nx; stride = 1;
      o1 = dims.ny; s1 = dims.nx;
      o2 = dims.nz; s2 = dims.nx * dims.ny;
      break;
    case 1:
      len = dims.ny; stride = dims.nx;
      o1 = dims.nx; s1 = 1;
      o2 = dims.nz; s2 = dims.nx * dims.ny;
      break;
    default:
      len = dims.nz; stride = dims.nx * dims.ny;
      o1 = dims.nx; s1 = 1;
      o2 = dims.ny; s2 = dims.nx;
      break;
  }
  for (u64 b = 0; b < o2; ++b)
    for (u64 a = 0; a < o1; ++a) body(a * s1 + b * s2, stride, len);
}

template <typename T>
void cascade(std::vector<T>& w, Dims dims, u32 axis, T sign) {
  for_each_line(dims, axis, [&](u64 base, u64 stride, u64 len) {
    T* v = w.data() + base;
    for (u64 i = 1; i + 1 < len; i += 2)
      v[i * stride] += sign * static_cast<T>(0.5) *
                       (v[(i - 1) * stride] + v[(i + 1) * stride]);
  });
}

Dims coarsen_axis(Dims d, u32 axis) {
  auto shrink = [](u64 s) { return s <= 1 ? s : (s - 1) / 2 + 1; };
  if (axis == 0) d.nx = shrink(d.nx);
  else if (axis == 1) d.ny = shrink(d.ny);
  else d.nz = shrink(d.nz);
  return d;
}

template <typename T>
std::vector<T> apply_load(const std::vector<T>& src, Dims sdims, u32 axis) {
  const Dims odims = coarsen_axis(sdims, axis);
  std::vector<T> out(odims.total());
  const u64 slen = axis == 0 ? sdims.nx : axis == 1 ? sdims.ny : sdims.nz;
  u64 olen = 0, ostride = 0, sstride = 0;
  u64 o1 = 0, s1o = 0, s1s = 0, o2 = 0, s2o = 0, s2s = 0;
  switch (axis) {
    case 0:
      olen = odims.nx; ostride = 1; sstride = 1;
      o1 = odims.ny; s1o = odims.nx; s1s = sdims.nx;
      o2 = odims.nz; s2o = odims.nx * odims.ny; s2s = sdims.nx * sdims.ny;
      break;
    case 1:
      olen = odims.ny; ostride = odims.nx; sstride = sdims.nx;
      o1 = odims.nx; s1o = 1; s1s = 1;
      o2 = odims.nz; s2o = odims.nx * odims.ny; s2s = sdims.nx * sdims.ny;
      break;
    default:
      olen = odims.nz; ostride = odims.nx * odims.ny;
      sstride = sdims.nx * sdims.ny;
      o1 = odims.nx; s1o = 1; s1s = 1;
      o2 = odims.ny; s2o = odims.nx; s2s = sdims.nx;
      break;
  }
  const T c6 = static_cast<T>(1.0 / 6.0);
  auto line = [&](u64 obase, u64 sbase) {
    const T* v = src.data() + sbase;
    T* o = out.data() + obase;
    o[0] = c6 * (static_cast<T>(2.5) * v[0] + 3 * v[sstride] +
                 static_cast<T>(0.5) * v[2 * sstride]);
    for (u64 i = 1; i + 1 < olen; ++i) {
      const T* p = v + 2 * i * sstride;
      o[i * ostride] =
          c6 * (static_cast<T>(0.5) * p[-2 * static_cast<i64>(sstride)] +
                3 * p[-static_cast<i64>(sstride)] + 5 * p[0] + 3 * p[sstride] +
                static_cast<T>(0.5) * p[2 * sstride]);
    }
    const T* e = v + (slen - 1) * sstride;
    o[(olen - 1) * ostride] =
        c6 * (static_cast<T>(2.5) * e[0] + 3 * e[-static_cast<i64>(sstride)] +
              static_cast<T>(0.5) * e[-2 * static_cast<i64>(sstride)]);
  };
  for (u64 b = 0; b < o2; ++b)
    for (u64 a = 0; a < o1; ++a) line(a * s1o + b * s2o, a * s1s + b * s2s);
  return out;
}

template <typename T>
void mass_solve(std::vector<T>& g, Dims dims, u32 axis) {
  const u64 n = axis == 0 ? dims.nx : axis == 1 ? dims.ny : dims.nz;
  if (n <= 1) return;
  for_each_line(dims, axis, [&](u64 base, u64 stride, u64 len) {
    T* v = g.data() + base;
    constexpr f64 off = 1.0 / 3.0;
    std::vector<f64> cp(len);
    f64 diag0 = 2.0 / 3.0;
    cp[0] = off / diag0;
    v[0] = static_cast<T>(v[0] / diag0);
    for (u64 i = 1; i < len; ++i) {
      const f64 diag = (i + 1 == len) ? 2.0 / 3.0 : 4.0 / 3.0;
      const f64 denom = diag - off * cp[i - 1];
      cp[i] = off / denom;
      v[i * stride] =
          static_cast<T>((v[i * stride] - off * v[(i - 1) * stride]) / denom);
    }
    for (u64 i = len - 1; i-- > 0;)
      v[i * stride] -= static_cast<T>(cp[i] * v[(i + 1) * stride]);
  });
}

template <typename T>
std::vector<T> compute_correction(const std::vector<T>& w, Dims adims) {
  std::vector<T> r = w;
  const u64 sx = adims.nx > 1 ? 2 : 1;
  const u64 sy = adims.ny > 1 ? 2 : 1;
  const u64 sz = adims.nz > 1 ? 2 : 1;
  for (u64 k = 0; k < adims.nz; k += sz)
    for (u64 j = 0; j < adims.ny; j += sy)
      for (u64 i = 0; i < adims.nx; i += sx)
        r[(k * adims.ny + j) * adims.nx + i] = 0;
  Dims cur = adims;
  for (u32 axis = 0; axis < 3; ++axis) {
    const u64 extent = axis == 0 ? cur.nx : axis == 1 ? cur.ny : cur.nz;
    if (extent <= 1) continue;
    r = apply_load(r, cur, axis);
    cur = coarsen_axis(cur, axis);
  }
  for (u32 axis = 0; axis < 3; ++axis) {
    const u64 extent = axis == 0 ? cur.nx : axis == 1 ? cur.ny : cur.nz;
    if (extent <= 1) continue;
    mass_solve(r, cur, axis);
  }
  return r;
}

template <typename T>
std::vector<T> gather_active(const std::vector<T>& full, Dims pdims,
                             Dims adims, u64 stride) {
  std::vector<T> w(adims.total());
  for (u64 k = 0; k < adims.nz; ++k)
    for (u64 j = 0; j < adims.ny; ++j) {
      const T* src =
          full.data() + ((k * stride) * pdims.ny + j * stride) * pdims.nx;
      T* dst = w.data() + (k * adims.ny + j) * adims.nx;
      for (u64 i = 0; i < adims.nx; ++i) dst[i] = src[i * stride];
    }
  return w;
}

template <typename T>
void scatter_active(std::vector<T>& full, Dims pdims, const std::vector<T>& w,
                    Dims adims, u64 stride) {
  for (u64 k = 0; k < adims.nz; ++k)
    for (u64 j = 0; j < adims.ny; ++j) {
      T* dst = full.data() + ((k * stride) * pdims.ny + j * stride) * pdims.nx;
      const T* src = w.data() + (k * adims.ny + j) * adims.nx;
      for (u64 i = 0; i < adims.nx; ++i) dst[i * stride] = src[i];
    }
}

template <typename T>
void apply_correction(std::vector<T>& w, Dims adims, const std::vector<T>& z,
                      Dims cdims, T sign) {
  const u64 sx = adims.nx > 1 ? 2 : 1;
  const u64 sy = adims.ny > 1 ? 2 : 1;
  const u64 sz = adims.nz > 1 ? 2 : 1;
  for (u64 k = 0; k < cdims.nz; ++k)
    for (u64 j = 0; j < cdims.ny; ++j) {
      const T* src = z.data() + (k * cdims.ny + j) * cdims.nx;
      T* dst = w.data() + ((k * sz) * adims.ny + j * sy) * adims.nx;
      for (u64 i = 0; i < cdims.nx; ++i) dst[i * sx] += sign * src[i];
    }
}

template <typename T>
void decompose(std::vector<T>& data, const GridHierarchy& h, bool l2) {
  const Dims pdims = h.padded();
  for (u32 t = 1; t <= h.levels(); ++t) {
    const Dims adims = h.grid_at_step(t - 1);
    const u64 stride = u64{1} << (t - 1);
    std::vector<T> w = gather_active(data, pdims, adims, stride);
    for (u32 axis = 0; axis < 3; ++axis) {
      const u64 extent = axis == 0 ? adims.nx : axis == 1 ? adims.ny : adims.nz;
      if (extent > 1) cascade(w, adims, axis, static_cast<T>(-1));
    }
    if (l2) {
      const std::vector<T> z = compute_correction(w, adims);
      apply_correction(w, adims, z, h.grid_at_step(t), static_cast<T>(1));
    }
    scatter_active(data, pdims, w, adims, stride);
  }
}

template <typename T>
void recompose(std::vector<T>& data, const GridHierarchy& h, bool l2) {
  const Dims pdims = h.padded();
  for (u32 t = h.levels(); t >= 1; --t) {
    const Dims adims = h.grid_at_step(t - 1);
    const u64 stride = u64{1} << (t - 1);
    std::vector<T> w = gather_active(data, pdims, adims, stride);
    if (l2) {
      const std::vector<T> z = compute_correction(w, adims);
      apply_correction(w, adims, z, h.grid_at_step(t), static_cast<T>(-1));
    }
    for (u32 axis = 3; axis-- > 0;) {
      const u64 extent = axis == 0 ? adims.nx : axis == 1 ? adims.ny : adims.nz;
      if (extent > 1) cascade(w, adims, axis, static_cast<T>(1));
    }
    scatter_active(data, pdims, w, adims, stride);
  }
}

}  // namespace seedref

// ---------------------------------------------------------------------------
// Per-kernel scalar-vs-dispatched bit identity.
// ---------------------------------------------------------------------------

const u64 kRowLens[] = {1,  2,  3,  5,   7,   8,   16,  17,
                        18, 31, 63, 64,  65,  100, 257, 4097};

template <typename T>
void check_cross_axis_rows(IsaLevel tier) {
  const auto& s = kernels::row_ops_scalar<T>();
  const auto& v = kernels::row_ops_at<T>(tier);
  u64 seed = 17;
  for (u64 n : kRowLens) {
    const auto lo = random_field<T>(n, ++seed);
    const auto hi = random_field<T>(n, ++seed);
    const auto m2 = random_field<T>(n, ++seed);
    const auto p2 = random_field<T>(n, ++seed);
    auto a = random_field<T>(n, ++seed);
    auto b = a;

    s.cascade_fwd(a.data(), lo.data(), hi.data(), n);
    v.cascade_fwd(b.data(), lo.data(), hi.data(), n);
    EXPECT_TRUE(BytesEqual(a, b)) << "cascade_fwd n=" << n;
    s.cascade_inv(a.data(), lo.data(), hi.data(), n);
    v.cascade_inv(b.data(), lo.data(), hi.data(), n);
    EXPECT_TRUE(BytesEqual(a, b)) << "cascade_inv n=" << n;

    std::vector<T> oa(n), ob(n);
    s.load_interior(oa.data(), m2.data(), lo.data(), a.data(), hi.data(),
                    p2.data(), n);
    v.load_interior(ob.data(), m2.data(), lo.data(), b.data(), hi.data(),
                    p2.data(), n);
    EXPECT_TRUE(BytesEqual(oa, ob)) << "load_interior n=" << n;
    s.load_boundary(oa.data(), lo.data(), a.data(), hi.data(), n);
    v.load_boundary(ob.data(), lo.data(), b.data(), hi.data(), n);
    EXPECT_TRUE(BytesEqual(oa, ob)) << "load_boundary n=" << n;

    s.thomas_first(a.data(), 2.0 / 3.0, n);
    v.thomas_first(b.data(), 2.0 / 3.0, n);
    EXPECT_TRUE(BytesEqual(a, b)) << "thomas_first n=" << n;
    s.thomas_fwd(a.data(), lo.data(), 1.0 / 3.0, 1.25, n);
    v.thomas_fwd(b.data(), lo.data(), 1.0 / 3.0, 1.25, n);
    EXPECT_TRUE(BytesEqual(a, b)) << "thomas_fwd n=" << n;
    s.thomas_bwd(a.data(), hi.data(), 0.3, n);
    v.thomas_bwd(b.data(), hi.data(), 0.3, n);
    EXPECT_TRUE(BytesEqual(a, b)) << "thomas_bwd n=" << n;
  }
}

TEST(RowKernels, CrossAxisRowsBitIdentical) {
  for (IsaLevel tier : kTiers) {
    check_cross_axis_rows<f32>(tier);
    check_cross_axis_rows<f64>(tier);
  }
}

template <typename T>
void check_x_kernels(IsaLevel tier) {
  const auto& s = kernels::row_ops_scalar<T>();
  const auto& v = kernels::row_ops_at<T>(tier);
  u64 seed = 99;
  for (u64 n : kRowLens) {
    auto a = random_field<T>(n, ++seed);
    auto b = a;
    s.cascade_fwd_x(a.data(), n);
    v.cascade_fwd_x(b.data(), n);
    EXPECT_TRUE(BytesEqual(a, b)) << "cascade_fwd_x n=" << n;
    s.cascade_inv_x(a.data(), n);
    v.cascade_inv_x(b.data(), n);
    EXPECT_TRUE(BytesEqual(a, b)) << "cascade_inv_x n=" << n;
  }
  // load_x needs odd slen >= 3. 9..11 straddle the f32 AVX2 path's
  // one-vector-iteration threshold (interior outputs i..i+7 need i+9<=olen).
  for (u64 olen : {2ull, 3ull, 5ull, 9ull, 10ull, 11ull, 16ull, 17ull, 32ull,
                   33ull, 63ull, 2049ull}) {
    const u64 slen = 2 * olen - 1;
    const auto src = random_field<T>(slen, ++seed);
    std::vector<T> oa(olen), ob(olen);
    s.load_x(oa.data(), src.data(), olen, slen);
    v.load_x(ob.data(), src.data(), olen, slen);
    EXPECT_TRUE(BytesEqual(oa, ob)) << "load_x olen=" << olen;
  }
}

TEST(RowKernels, XAxisKernelsBitIdentical) {
  for (IsaLevel tier : kTiers) {
    check_x_kernels<f32>(tier);
    check_x_kernels<f64>(tier);
  }
}

template <typename T>
void check_movement_kernels(IsaLevel tier) {
  const auto& s = kernels::row_ops_scalar<T>();
  const auto& v = kernels::row_ops_at<T>(tier);
  u64 seed = 4242;
  for (u64 n : kRowLens) {
    for (u64 stride : {1ull, 2ull, 4ull, 129ull}) {
      const auto src = random_field<T>(n * stride + 1, ++seed);
      std::vector<T> da(n, T{-1}), db(n, T{-1});
      s.gather_stride(da.data(), src.data(), n, stride);
      v.gather_stride(db.data(), src.data(), n, stride);
      EXPECT_TRUE(BytesEqual(da, db)) << "gather n=" << n << " s=" << stride;

      std::vector<T> fa(n * stride + 1, T{0}), fb(n * stride + 1, T{0});
      s.scatter_stride(fa.data(), da.data(), n, stride);
      v.scatter_stride(fb.data(), db.data(), n, stride);
      EXPECT_TRUE(BytesEqual(fa, fb)) << "scatter n=" << n << " s=" << stride;
    }
    for (u64 zstride : {1ull, 2ull}) {
      const auto src = random_field<T>(n, ++seed);
      std::vector<T> da(n, T{7}), db(n, T{7});
      s.copy_zero(da.data(), src.data(), n, zstride);
      v.copy_zero(db.data(), src.data(), n, zstride);
      EXPECT_TRUE(BytesEqual(da, db)) << "copy_zero n=" << n << " z=" << zstride;
    }
  }
  // Panel transpose: pack then unpack must be the identity and match scalar.
  for (u64 w : {1ull, 3ull, 4ull, 16ull}) {
    for (u64 len : {1ull, 2ull, 5ull, 64ull, 65ull}) {
      const u64 line_stride = len + 3;
      const auto src = random_field<T>(w * line_stride, ++seed);
      std::vector<T> pa(w * len), pb(w * len);
      s.pack_panel(pa.data(), src.data(), w, len, line_stride);
      v.pack_panel(pb.data(), src.data(), w, len, line_stride);
      EXPECT_TRUE(BytesEqual(pa, pb)) << "pack w=" << w << " len=" << len;
      std::vector<T> ua(w * line_stride, T{0}), ub(w * line_stride, T{0});
      s.unpack_panel(ua.data(), pa.data(), w, len, line_stride);
      v.unpack_panel(ub.data(), pb.data(), w, len, line_stride);
      EXPECT_TRUE(BytesEqual(ua, ub)) << "unpack w=" << w << " len=" << len;
      for (u64 l = 0; l < w; ++l)
        for (u64 i = 0; i < len; ++i)
          EXPECT_EQ(ua[l * line_stride + i], src[l * line_stride + i]);
    }
  }
}

TEST(RowKernels, MovementKernelsBitIdentical) {
  for (IsaLevel tier : kTiers) {
    check_movement_kernels<f32>(tier);
    check_movement_kernels<f64>(tier);
  }
}

// ---------------------------------------------------------------------------
// Bitplane kernels.
// ---------------------------------------------------------------------------

TEST(BitplaneKernels, MaxAbsMatchesScalar) {
  const auto& s = kernels::bitplane_ops_scalar();
  for (IsaLevel tier : kTiers) {
    const auto& v = kernels::bitplane_ops_at(tier);
    for (u64 n : {0ull, 1ull, 3ull, 64ull, 1000ull, 4097ull}) {
      auto c = random_field<f64>(n, 7 + n);
      if (n > 0) c[n / 2] = -5.5;  // make the max a negative value
      EXPECT_EQ(s.max_abs(c.data(), n), v.max_abs(c.data(), n)) << "n=" << n;
    }
  }
}

TEST(BitplaneKernels, Quantize64MatchesScalar) {
  const auto& s = kernels::bitplane_ops_scalar();
  Rng rng(333);
  for (IsaLevel tier : kTiers) {
    const auto& v = kernels::bitplane_ops_at(tier);
    for (u32 valid : {0u, 1u, 31u, 32u, 63u, 64u}) {
      f64 c[64];
      for (auto& x : c) {
        x = rng.uniform(-2.0, 2.0);
        if (rng.bernoulli(0.1)) x = 0.0;
        if (rng.bernoulli(0.05)) x = -0.0;  // signbit without magnitude
        if (rng.bernoulli(0.05)) x *= 1e9;  // force the 2^32-1 clamp
      }
      const f64 scale = std::ldexp(1.0, 30);
      u64 ba[64], bb[64], sa = 0, sb = 0;
      s.quantize64(c, valid, scale, ba, &sa);
      v.quantize64(c, valid, scale, bb, &sb);
      EXPECT_EQ(sa, sb) << "sign word, valid=" << valid;
      EXPECT_EQ(0, std::memcmp(ba, bb, sizeof ba)) << "valid=" << valid;
    }
  }
}

TEST(BitplaneKernels, Transpose64InvolutionAndDispatchIdentity) {
  Rng rng(555);
  u64 ref[64];
  for (auto& w : ref) w = rng.next_u64();
  u64 a[64];
  std::memcpy(a, ref, sizeof ref);
  kernels::bitplane_ops_scalar().transpose64(a);
  // Definition check against the naive bit walk.
  for (u32 i = 0; i < 64; ++i)
    for (u32 j = 0; j < 64; ++j)
      ASSERT_EQ((a[i] >> j) & 1, (ref[j] >> i) & 1);
  for (IsaLevel tier : kTiers) {
    u64 b[64];
    std::memcpy(b, ref, sizeof ref);
    kernels::bitplane_ops_at(tier).transpose64(b);
    EXPECT_EQ(0, std::memcmp(a, b, sizeof a));
    kernels::bitplane_ops_at(tier).transpose64(b);
    EXPECT_EQ(0, std::memcmp(b, ref, sizeof ref)) << "involution";
  }
}

TEST(BitplaneKernels, DequantizeMatchesScalar) {
  const auto& s = kernels::bitplane_ops_scalar();
  Rng rng(777);
  for (IsaLevel tier : kTiers) {
    const auto& v = kernels::bitplane_ops_at(tier);
    for (u64 n : {1ull, 4ull, 63ull, 64ull, 65ull, 100ull, 4113ull}) {
      std::vector<u32> q(n);
      for (auto& x : q) {
        x = static_cast<u32>(rng.next_u64());
        if (rng.bernoulli(0.3)) x = 0;  // exact-zero path
      }
      std::vector<u64> signs((n + 63) / 64);
      for (auto& w : signs) w = rng.next_u64();
      for (u32 mid : {0u, 1u << 20, 0x80000000u}) {
        std::vector<f64> oa(n), ob(n);
        s.dequantize(oa.data(), q.data(), signs.data(), 0x1p-32, mid, n);
        v.dequantize(ob.data(), q.data(), signs.data(), 0x1p-32, mid, n);
        EXPECT_TRUE(BytesEqual(oa, ob)) << "n=" << n << " mid=" << mid;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-transform identity: across ISA tiers, against the seed reference,
// serial vs pooled, and through the plane codec.
// ---------------------------------------------------------------------------

struct Shape {
  Dims dims;
  u32 levels;
};

const Shape kShapes[] = {
    {{65, 65, 65}, 4}, {{64, 63, 65}, 3}, {{33, 17, 9}, 3}, {{5, 63, 3}, 2},
    {{63, 5, 1}, 3},   {{1, 65, 1}, 3},   {{1, 1, 65}, 2},  {{2, 2, 2}, 2},
    {{1, 2, 3}, 1},    {{5, 5, 5}, 1},    {{3, 1, 65}, 2},
};

template <typename T>
void check_transform_identity(bool l2) {
  const DecomposeOptions opt{l2};
  for (const Shape& sh : kShapes) {
    const GridHierarchy h(sh.dims, sh.levels);
    const auto field = random_field<T>(h.padded().total(), 1234);

    // Seed-reference and scalar-kernel decompositions.
    std::vector<T> ref = field;
    seedref::decompose(ref, h, l2);
    std::vector<T> scal = field;
    {
      IsaOverrideGuard g(IsaLevel::kScalar);
      decompose(scal, h, opt);
    }
    EXPECT_TRUE(BytesEqual(ref, scal))
        << "seedref vs scalar decompose " << sh.dims.nx << "x" << sh.dims.ny
        << "x" << sh.dims.nz << " l2=" << l2;

    // Every dispatched tier must match bit-for-bit.
    for (IsaLevel tier : kTiers) {
      IsaOverrideGuard g(tier);
      std::vector<T> vec = field;
      decompose(vec, h, opt);
      EXPECT_TRUE(BytesEqual(ref, vec))
          << "tier " << simd::isa_name(tier) << " decompose " << sh.dims.nx
          << "x" << sh.dims.ny << "x" << sh.dims.nz << " l2=" << l2;
    }

    // Recompose identity, starting from the decomposed coefficients.
    std::vector<T> rref = ref;
    seedref::recompose(rref, h, l2);
    std::vector<T> rscal = ref;
    {
      IsaOverrideGuard g(IsaLevel::kScalar);
      recompose(rscal, h, opt);
    }
    EXPECT_TRUE(BytesEqual(rref, rscal)) << "seedref vs scalar recompose";
    for (IsaLevel tier : kTiers) {
      IsaOverrideGuard g(tier);
      std::vector<T> rvec = ref;
      recompose(rvec, h, opt);
      EXPECT_TRUE(BytesEqual(rref, rvec))
          << "tier " << simd::isa_name(tier) << " recompose " << sh.dims.nx
          << "x" << sh.dims.ny << "x" << sh.dims.nz << " l2=" << l2;
    }
  }
}

TEST(Transform, BitIdenticalToSeedAndAcrossIsaL2) {
  check_transform_identity<f64>(true);
  check_transform_identity<f32>(true);
}

TEST(Transform, BitIdenticalToSeedAndAcrossIsaInterpOnly) {
  check_transform_identity<f64>(false);
  check_transform_identity<f32>(false);
}

TEST(Transform, PooledMatchesSerialBitForBit) {
  ThreadPool pool(4);
  for (const Shape& sh : kShapes) {
    const GridHierarchy h(sh.dims, sh.levels);
    const auto field = random_field<f64>(h.padded().total(), 99);
    std::vector<f64> serial = field, pooled = field;
    decompose(serial, h, {});
    decompose(pooled, h, {}, &pool);
    EXPECT_TRUE(BytesEqual(serial, pooled)) << sh.dims.nx << "x" << sh.dims.ny;
    recompose(serial, h, {});
    recompose(pooled, h, {}, &pool);
    EXPECT_TRUE(BytesEqual(serial, pooled)) << sh.dims.nx << "x" << sh.dims.ny;
  }
}

TEST(Transform, WorkspaceReuseIsDeterministic) {
  const GridHierarchy h(Dims{33, 33, 17}, 3);
  const auto field = random_field<f64>(h.padded().total(), 5);
  std::vector<f64> fresh = field;
  decompose(fresh, h, {});

  RefactorWorkspace ws;
  for (int round = 0; round < 3; ++round) {
    std::vector<f64> reused = field;
    decompose(reused, h, {}, nullptr, &ws);
    EXPECT_TRUE(BytesEqual(fresh, reused)) << "round " << round;
    recompose(reused, h, {}, nullptr, &ws);
    std::vector<f64> rfresh = fresh;
    recompose(rfresh, h, {});
    EXPECT_TRUE(BytesEqual(rfresh, reused)) << "round " << round;
  }
}

TEST(Transform, WorkspacePoolReusesInsteadOfCreating) {
  WorkspacePool pool;
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    EXPECT_NE(a.get(), nullptr);
    EXPECT_NE(b.get(), nullptr);
    EXPECT_EQ(pool.created(), 2u);
    EXPECT_EQ(pool.idle(), 0u);
  }
  EXPECT_EQ(pool.idle(), 2u);
  {
    auto c = pool.acquire();
    EXPECT_EQ(pool.created(), 2u);  // reused, not created
    EXPECT_EQ(pool.idle(), 1u);
  }
  EXPECT_EQ(pool.idle(), 2u);
}

// ---------------------------------------------------------------------------
// Level gather/scatter against the level_nodes map they replaced.
// ---------------------------------------------------------------------------

TEST(Levels, GatherScatterMatchLevelNodes) {
  ThreadPool pool(4);
  for (const Shape& sh : kShapes) {
    const GridHierarchy h(sh.dims, sh.levels);
    const auto field = random_field<f64>(h.padded().total(), 31);
    std::vector<f64> rebuilt(field.size(), 0.0);
    u64 covered = 0;
    for (u32 d = 0; d < h.num_decomp_levels(); ++d) {
      const auto& nodes = h.level_nodes(d);
      const std::vector<f64> got = gather_level(field, h, d, &pool);
      ASSERT_EQ(got.size(), nodes.size());
      for (u64 i = 0; i < nodes.size(); ++i)
        ASSERT_EQ(got[i], field[nodes[i]])
            << "level " << d << " index " << i << " shape " << sh.dims.nx
            << "x" << sh.dims.ny << "x" << sh.dims.nz;
      scatter_level(rebuilt, h, d, got, &pool);
      covered += nodes.size();
    }
    EXPECT_EQ(covered, field.size());
    EXPECT_TRUE(BytesEqual(field, rebuilt));
  }
}

// ---------------------------------------------------------------------------
// Plane codec under dispatch: encoded bytes and decoded values must not
// depend on the ISA tier.
// ---------------------------------------------------------------------------

TEST(Planes, EncodeDecodeIndependentOfIsa) {
  ThreadPool pool(4);
  auto coeffs = random_field<f64>(10000, 2026);
  coeffs[17] = 0.0;
  coeffs[4099] = -coeffs[4099];

  PlaneSet base;
  {
    IsaOverrideGuard g(IsaLevel::kScalar);
    base = encode_planes(coeffs, kMagnitudePlanes, &pool);
  }
  std::vector<f64> base_dec;
  {
    IsaOverrideGuard g(IsaLevel::kScalar);
    base_dec = decode_planes(base, 12, &pool);
  }

  for (IsaLevel tier : kTiers) {
    IsaOverrideGuard g(tier);
    const PlaneSet ps = encode_planes(coeffs, kMagnitudePlanes, &pool);
    EXPECT_EQ(ps.count, base.count);
    EXPECT_EQ(ps.max_abs, base.max_abs);
    EXPECT_EQ(ps.exponent, base.exponent);
    ASSERT_EQ(ps.planes.size(), base.planes.size());
    EXPECT_EQ(ps.sign.data, base.sign.data);
    for (u64 p = 0; p < ps.planes.size(); ++p)
      EXPECT_EQ(ps.planes[p].data, base.planes[p].data) << "plane " << p;
    const std::vector<f64> dec = decode_planes(base, 12, &pool);
    EXPECT_TRUE(BytesEqual(dec, base_dec));
  }
}

// RAPIDS_FORCE_SCALAR must pin the whole transform to the scalar tier — the
// guarantee scripts/sanitize.sh relies on for its scalar round-trip run.
TEST(Planes, ForceScalarEnvPinsTransform) {
  const GridHierarchy h(Dims{33, 33, 9}, 2);
  const auto field = random_field<f64>(h.padded().total(), 13);
  std::vector<f64> expect = field;
  {
    IsaOverrideGuard g(IsaLevel::kScalar);
    decompose(expect, h, {});
  }
  ::setenv("RAPIDS_FORCE_SCALAR", "1", 1);
  simd::refresh_force_scalar_for_testing();
  EXPECT_EQ(simd::active_isa(), IsaLevel::kScalar);
  std::vector<f64> forced = field;
  decompose(forced, h, {});
  ::unsetenv("RAPIDS_FORCE_SCALAR");
  simd::refresh_force_scalar_for_testing();
  EXPECT_TRUE(BytesEqual(expect, forced));
}

// ---------------------------------------------------------------------------
// Entropy-codec kernels: the density x length bit-identity matrix. Every
// CodecOps entry of every tier must match the scalar reference exactly, and
// whole encoded segments must come out byte-identical regardless of tier,
// RAPIDS_FORCE_SCALAR, or pool width.
// ---------------------------------------------------------------------------

enum class Density { kZero, kOneBit, kSparse, kHalf, kDense, kAllOnes };
const Density kDensities[] = {Density::kZero,  Density::kOneBit,
                              Density::kSparse, Density::kHalf,
                              Density::kDense,  Density::kAllOnes};
const u64 kBitLengths[] = {1, 63, 64, 65, 4095, 4097};

const char* density_name(Density d) {
  switch (d) {
    case Density::kZero: return "zero";
    case Density::kOneBit: return "one-bit";
    case Density::kSparse: return "sparse";
    case Density::kHalf: return "half";
    case Density::kDense: return "dense";
    case Density::kAllOnes: return "all-ones";
  }
  return "?";
}

// A packed plane of num_bits bits at the requested density; bits past
// num_bits stay zero (the coder's input contract).
std::vector<u64> make_plane(u64 num_bits, Density d, u64 seed) {
  std::vector<u64> w((num_bits + 63) / 64, 0);
  const auto set = [&](u64 i) { w[i >> 6] |= u64{1} << (i & 63); };
  Rng rng(seed);
  const auto fill = [&](f64 p) {
    for (u64 i = 0; i < num_bits; ++i)
      if (rng.bernoulli(p)) set(i);
  };
  switch (d) {
    case Density::kZero: break;
    case Density::kOneBit: set(num_bits / 2); break;
    case Density::kSparse: fill(0.01); break;
    case Density::kHalf: fill(0.5); break;
    case Density::kDense: fill(0.97); break;
    case Density::kAllOnes:
      for (u64 i = 0; i < num_bits; ++i) set(i);
      break;
  }
  return w;
}

TEST(Codec, KernelMatrixBitIdenticalAcrossIsa) {
  const kernels::CodecOps& ref = kernels::codec_ops_scalar();
  for (IsaLevel tier : kTiers) {
    const kernels::CodecOps& ops = kernels::codec_ops_at(tier);
    for (Density d : kDensities) {
      for (u64 nbits : kBitLengths) {
        SCOPED_TRACE(std::string(simd::isa_name(tier)) + " " +
                     density_name(d) + " nbits=" + std::to_string(nbits));
        const auto plane = make_plane(nbits, d, nbits * 7 + 1);
        const u64 nwords = plane.size();

        u64 ones = 0, nzw = 0, ones_ref = 0, nzw_ref = 0;
        ops.segment_stats(plane.data(), nwords, &ones, &nzw);
        ref.segment_stats(plane.data(), nwords, &ones_ref, &nzw_ref);
        EXPECT_EQ(ones, ones_ref);
        EXPECT_EQ(nzw, nzw_ref);

        // bit_positions: +7 slack entries per the CodecOps contract.
        std::vector<u64> pos(ones + 7, ~u64{0}), pos_ref(ones + 7, ~u64{0});
        EXPECT_EQ(ops.bit_positions(plane.data(), nwords, pos.data()), ones);
        EXPECT_EQ(ref.bit_positions(plane.data(), nwords, pos_ref.data()),
                  ones);
        for (u64 i = 0; i < ones; ++i) ASSERT_EQ(pos[i], pos_ref[i]) << i;

        const u64 bitmap_words = (nwords + 63) / 64;
        std::vector<u64> bm(bitmap_words, 0), packed(nzw + 1, ~u64{0});
        std::vector<u64> bm_ref(bitmap_words, 0), pk_ref(nzw + 1, ~u64{0});
        EXPECT_EQ(ops.sparse_pack(plane.data(), nwords, bm.data(),
                                  packed.data()),
                  nzw);
        EXPECT_EQ(ref.sparse_pack(plane.data(), nwords, bm_ref.data(),
                                  pk_ref.data()),
                  nzw);
        EXPECT_EQ(bm, bm_ref);
        EXPECT_EQ(packed, pk_ref);
        std::vector<u64> expanded(nwords, 0);
        EXPECT_EQ(ops.sparse_expand(expanded.data(), nwords, bm.data(),
                                    packed.data()),
                  nzw);
        EXPECT_EQ(expanded, plane);

        if (ones == 0) continue;
        for (u32 k : {0u, 1u, 5u, 13u}) {
          const u64 bits = ops.rice_length_bits(pos.data(), ones, k);
          ASSERT_EQ(bits, ref.rice_length_bits(pos_ref.data(), ones, k))
              << "k=" << k;
          std::vector<u64> stream((bits + 63) / 64, 0);
          std::vector<u64> stream_ref((bits + 63) / 64, 0);
          ops.rice_emit(pos.data(), ones, k, stream.data());
          ref.rice_emit(pos_ref.data(), ones, k, stream_ref.data());
          EXPECT_EQ(stream, stream_ref) << "k=" << k;
          std::vector<u64> back(nwords, 0);
          ASSERT_TRUE(ops.rice_expand(stream.data(), bits, ones, k, nbits,
                                      back.data()))
              << "k=" << k;
          EXPECT_EQ(back, plane) << "k=" << k;
        }
      }
    }
  }
}

TEST(Codec, SegmentBytesBitIdenticalAcrossIsa) {
  for (Density d : kDensities) {
    for (u64 nbits : kBitLengths) {
      const auto plane = make_plane(nbits, d, nbits * 31 + 5);
      PlaneSegment base;
      {
        IsaOverrideGuard g(IsaLevel::kScalar);
        base = encode_segment(plane, nbits);
        EXPECT_EQ(decode_segment(base, nbits), plane);
      }
      for (IsaLevel tier : kTiers) {
        IsaOverrideGuard g(tier);
        const PlaneSegment seg = encode_segment(plane, nbits);
        EXPECT_EQ(seg.data, base.data)
            << simd::isa_name(tier) << " " << density_name(d)
            << " nbits=" << nbits;
        EXPECT_EQ(decode_segment(seg, nbits), plane);
      }
    }
  }
}

// RAPIDS_FORCE_SCALAR must pin the segment coder too, not just the transform.
TEST(Codec, ForceScalarEnvPinsCodec) {
  const auto coeffs = random_field<f64>(5000, 77);
  PlaneSet expect;
  {
    IsaOverrideGuard g(IsaLevel::kScalar);
    expect = encode_planes(coeffs);
  }
  ::setenv("RAPIDS_FORCE_SCALAR", "1", 1);
  simd::refresh_force_scalar_for_testing();
  const PlaneSet forced = encode_planes(coeffs);
  ::unsetenv("RAPIDS_FORCE_SCALAR");
  simd::refresh_force_scalar_for_testing();
  EXPECT_EQ(forced.sign.data, expect.sign.data);
  ASSERT_EQ(forced.planes.size(), expect.planes.size());
  for (u64 p = 0; p < forced.planes.size(); ++p)
    EXPECT_EQ(forced.planes[p].data, expect.planes[p].data) << "plane " << p;
}

// Pooled and serial codec runs must agree on bytes AND on every CodecStats
// counter (only the wall time may differ).
TEST(Codec, PooledStatsAndBytesMatchSerial) {
  ThreadPool pool(4);
  const auto coeffs = random_field<f64>(20000, 2024);
  CodecStats serial_cs, pooled_cs;
  const PlaneSet serial = encode_planes(coeffs, kMagnitudePlanes, nullptr,
                                        &serial_cs);
  const PlaneSet pooled = encode_planes(coeffs, kMagnitudePlanes, &pool,
                                        &pooled_cs);
  EXPECT_EQ(pooled.sign.data, serial.sign.data);
  ASSERT_EQ(pooled.planes.size(), serial.planes.size());
  for (u64 p = 0; p < pooled.planes.size(); ++p)
    EXPECT_EQ(pooled.planes[p].data, serial.planes[p].data) << "plane " << p;
  EXPECT_EQ(pooled_cs.segments, serial_cs.segments);
  EXPECT_EQ(pooled_cs.bytes, serial_cs.bytes);
  EXPECT_EQ(pooled_cs.mode_raw, serial_cs.mode_raw);
  EXPECT_EQ(pooled_cs.mode_sparse, serial_cs.mode_sparse);
  EXPECT_EQ(pooled_cs.mode_zero, serial_cs.mode_zero);
  EXPECT_EQ(pooled_cs.mode_rice, serial_cs.mode_rice);
  EXPECT_GT(serial_cs.segments, 0u);
  EXPECT_EQ(serial_cs.segments,
            serial_cs.mode_raw + serial_cs.mode_sparse + serial_cs.mode_zero +
                serial_cs.mode_rice);

  CodecStats dec_serial, dec_pooled;
  const auto a = decode_planes(serial, 16, nullptr, &dec_serial);
  const auto b = decode_planes(serial, 16, &pool, &dec_pooled);
  EXPECT_TRUE(BytesEqual(a, b));
  EXPECT_EQ(dec_serial.segments, dec_pooled.segments);
  EXPECT_EQ(dec_serial.bytes, dec_pooled.bytes);
}

// The level-fused traversal is a pure data-movement change: toggling
// DecomposeOptions::level_fusion must not move a single bit, pooled or not.
TEST(Codec, FusedTraversalBitIdenticalToUnfused) {
  ThreadPool pool(4);
  DecomposeOptions fused;    // level_fusion defaults on
  DecomposeOptions unfused;
  unfused.level_fusion = false;
  for (const Shape& sh : kShapes) {
    const GridHierarchy h(sh.dims, sh.levels);
    const auto field = random_field<f64>(h.padded().total(), 404);
    std::vector<f64> a = field, b = field;
    decompose(a, h, fused, &pool);
    decompose(b, h, unfused, &pool);
    EXPECT_TRUE(BytesEqual(a, b))
        << "decompose " << sh.dims.nx << "x" << sh.dims.ny << "x" << sh.dims.nz;
    std::vector<f64> ra = a, rb = a;
    recompose(ra, h, fused, &pool);
    recompose(rb, h, unfused, &pool);
    EXPECT_TRUE(BytesEqual(ra, rb))
        << "recompose " << sh.dims.nx << "x" << sh.dims.ny << "x" << sh.dims.nz;
  }
}

}  // namespace
}  // namespace rapids::mgard
