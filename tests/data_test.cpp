// Tests for the dataset substrate: noise determinism and smoothness, field
// generator character (ranges, structure), the Table-2 catalog, stats, and
// raw IO.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "rapids/data/datasets.hpp"
#include "rapids/data/noise.hpp"
#include "rapids/data/raw_io.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/parallel/thread_pool.hpp"

namespace rapids::data {
namespace {

using mgard::Dims;

// --- noise ---

TEST(Noise, DeterministicInSeedAndPosition) {
  EXPECT_EQ(value_noise(1, 0.3, 0.7, 1.2), value_noise(1, 0.3, 0.7, 1.2));
  EXPECT_NE(value_noise(1, 0.3, 0.7, 1.2), value_noise(2, 0.3, 0.7, 1.2));
}

TEST(Noise, Bounded) {
  for (int i = 0; i < 2000; ++i) {
    const f64 v = value_noise(5, i * 0.13, i * 0.07, i * 0.03);
    ASSERT_GE(v, -1.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST(Noise, ContinuousAcrossLatticeCells) {
  // Value at a lattice point approached from both sides must agree.
  const f64 eps = 1e-7;
  const f64 a = value_noise(9, 3.0 - eps, 0.5, 0.5);
  const f64 b = value_noise(9, 3.0 + eps, 0.5, 0.5);
  EXPECT_NEAR(a, b, 1e-5);
}

TEST(Noise, FbmBounded) {
  for (int i = 0; i < 500; ++i) {
    const f64 v = fbm(3, i * 0.11, i * 0.05, 0.0, 5);
    ASSERT_GE(v, -1.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST(Noise, FbmAddsDetail) {
  // More octaves => more small-scale variation (compare neighboring samples).
  f64 rough1 = 0.0, rough5 = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const f64 x = i * 0.01;
    rough1 += std::fabs(fbm(4, x + 0.01, 0, 0, 1) - fbm(4, x, 0, 0, 1));
    rough5 += std::fabs(fbm(4, x + 0.01, 0, 0, 5) - fbm(4, x, 0, 0, 5));
  }
  EXPECT_GT(rough5, rough1);
}

// --- field generators ---

struct GenCase {
  const char* name;
  std::vector<f32> (*fn)(Dims, u64, ThreadPool*);
  f64 min_ok, max_ok;  // plausible physical range
};

class GeneratorTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorTest, DeterministicAndInRange) {
  const auto& gc = GetParam();
  const Dims dims{33, 33, 17};
  const auto a = gc.fn(dims, 42, nullptr);
  const auto b = gc.fn(dims, 42, nullptr);
  ASSERT_EQ(a.size(), dims.total());
  EXPECT_EQ(a, b);
  const auto st = field_stats(a);
  EXPECT_GE(st.min, gc.min_ok) << gc.name;
  EXPECT_LE(st.max, gc.max_ok) << gc.name;
  EXPECT_GT(st.max, st.min);
}

TEST_P(GeneratorTest, SeedChangesField) {
  const auto& gc = GetParam();
  const Dims dims{17, 17, 9};
  const auto a = gc.fn(dims, 1, nullptr);
  const auto b = gc.fn(dims, 2, nullptr);
  EXPECT_NE(a, b);
}

TEST_P(GeneratorTest, ParallelMatchesSerial) {
  const auto& gc = GetParam();
  ThreadPool pool(4);
  const Dims dims{33, 17, 9};
  EXPECT_EQ(gc.fn(dims, 7, nullptr), gc.fn(dims, 7, &pool));
}

INSTANTIATE_TEST_SUITE_P(
    Fields, GeneratorTest,
    ::testing::Values(
        GenCase{"hurricane_p", hurricane_pressure, 700.0, 1100.0},
        GenCase{"hurricane_tc", hurricane_temperature, -60.0, 60.0},
        GenCase{"nyx_temp", nyx_temperature, 0.0, 1.0e7},
        GenCase{"nyx_vel", nyx_velocity, -1.0e8, 1.0e8},
        GenCase{"scale_pres", scale_pressure, 1.0e4, 1.2e5},
        GenCase{"scale_t", scale_temperature, 150.0, 350.0}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Generators, HurricaneHasLowPressureEye) {
  const Dims dims{65, 65, 5};
  const auto p = hurricane_pressure(dims, 3, nullptr);
  // Mid-plane center must be well below the domain edge.
  const u64 k = 2;
  const f64 center = p[(k * dims.ny + 32) * dims.nx + 32];
  const f64 corner = p[(k * dims.ny + 2) * dims.nx + 2];
  EXPECT_LT(center, corner - 20.0);
}

TEST(Generators, NyxTemperatureHighDynamicRange) {
  const Dims dims{33, 33, 33};
  const auto t = nyx_temperature(dims, 4, nullptr);
  const auto st = field_stats(t);
  EXPECT_GT(st.max / std::max(st.min, 1.0), 20.0);  // filaments vs voids
}

TEST(Generators, ScalePressureDecaysWithHeight) {
  const Dims dims{17, 17, 33};
  const auto p = scale_pressure(dims, 5, nullptr);
  f64 bottom = 0.0, top = 0.0;
  for (u64 j = 0; j < dims.ny; ++j)
    for (u64 i = 0; i < dims.nx; ++i) {
      bottom += p[(0 * dims.ny + j) * dims.nx + i];
      top += p[((dims.nz - 1) * dims.ny + j) * dims.nx + i];
    }
  EXPECT_GT(bottom, top * 1.5);
}

// --- catalog ---

TEST(Catalog, SixObjectsMatchingTable2) {
  const auto objects = paper_objects();
  ASSERT_EQ(objects.size(), 6u);
  EXPECT_EQ(objects[0].label(), "NYX:temperature");
  EXPECT_EQ(objects[2].label(), "SCALE:PRES");
  EXPECT_EQ(objects[4].label(), "hurricane:Pf48.bin");
  // Paper sizes: 16 TB, 16.82 TB, 2.98 TB.
  EXPECT_EQ(objects[0].full_size_bytes, u64{16} << 40);
  EXPECT_NEAR(static_cast<f64>(objects[2].full_size_bytes) / (1ull << 40), 16.82,
              0.01);
  EXPECT_NEAR(static_cast<f64>(objects[4].full_size_bytes) / (1ull << 40), 2.98,
              0.01);
}

TEST(Catalog, GenerateProducesDims) {
  const auto obj = find_object("hurricane:Pf48.bin", 1);
  const auto field = obj.generate();
  EXPECT_EQ(field.size(), obj.dims.total());
}

TEST(Catalog, ScaleGrowsExtents) {
  const auto small = paper_objects(1);
  const auto big = paper_objects(2);
  EXPECT_GT(big[0].dims.total(), 6 * small[0].dims.total());
}

TEST(Catalog, UnknownLabelThrows) {
  EXPECT_THROW(find_object("NOPE:object"), invariant_error);
}

TEST(Catalog, AllObjectsGenerate) {
  for (const auto& obj : paper_objects(1)) {
    const auto field = obj.generate();
    EXPECT_EQ(field.size(), obj.dims.total()) << obj.label();
    EXPECT_GT(field_stats(field).max_abs, 0.0) << obj.label();
  }
}

// --- stats ---

TEST(Stats, FieldStatsBasics) {
  const std::vector<f32> v = {-2.0f, 0.0f, 4.0f, 2.0f};
  const auto st = field_stats(v);
  EXPECT_DOUBLE_EQ(st.min, -2.0);
  EXPECT_DOUBLE_EQ(st.max, 4.0);
  EXPECT_DOUBLE_EQ(st.max_abs, 4.0);
  EXPECT_DOUBLE_EQ(st.mean, 1.0);
  EXPECT_NEAR(st.rms, std::sqrt(24.0 / 4.0), 1e-12);
}

TEST(Stats, LinfDistance) {
  const std::vector<f32> a = {1.0f, 2.0f, 3.0f};
  const std::vector<f32> b = {1.5f, 2.0f, 1.0f};
  EXPECT_DOUBLE_EQ(linf_distance(a, b), 2.0);
}

TEST(Stats, RelativeLinfMatchesEq3) {
  const std::vector<f32> orig = {10.0f, -20.0f, 5.0f};
  const std::vector<f32> rec = {10.0f, -18.0f, 5.0f};
  EXPECT_DOUBLE_EQ(relative_linf_error(orig, rec), 2.0 / 20.0);
}

TEST(Stats, ZeroPenaltyIsOne) {
  // Reconstructing with all zeros gives exactly the paper's e_0 = 1.
  const std::vector<f32> orig = {3.0f, -7.0f, 2.0f};
  const std::vector<f32> zeros(3, 0.0f);
  EXPECT_DOUBLE_EQ(relative_linf_error(orig, zeros), 1.0);
}

TEST(Stats, MismatchedSizesThrow) {
  const std::vector<f32> a(3), b(4);
  EXPECT_THROW(linf_distance(a, b), invariant_error);
}

TEST(Stats, Rmse) {
  const std::vector<f32> a = {0.0f, 0.0f};
  const std::vector<f32> b = {3.0f, 4.0f};
  EXPECT_NEAR(rmse(a, b), std::sqrt(12.5), 1e-12);
}

// --- raw IO ---

TEST(RawIo, RoundTrip) {
  const Dims dims{7, 5, 3};
  std::vector<f32> field(dims.total());
  for (std::size_t i = 0; i < field.size(); ++i)
    field[i] = static_cast<f32>(i) * 0.25f - 3.0f;
  const std::string path =
      (std::filesystem::temp_directory_path() / "rapids_raw.f32").string();
  save_f32(path, field);
  EXPECT_EQ(load_f32(path, dims), field);
  std::filesystem::remove(path);
}

TEST(RawIo, SizeMismatchThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rapids_raw2.f32").string();
  save_f32(path, std::vector<f32>(10));
  EXPECT_THROW(load_f32(path, Dims{4, 1, 1}), io_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rapids::data
