// Tests for the availability math (Eqs. 1, 2, 4, 5, 6): closed-form values,
// sanity orderings, and cross-validation against Monte Carlo failure
// injection on the storage cluster.

#include <gtest/gtest.h>

#include <cmath>

#include "rapids/core/availability.hpp"
#include "rapids/storage/failure.hpp"

namespace rapids::core {
namespace {

TEST(Binomial, PmfBasics) {
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 4, 1.0), 1.0);
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 3, 0.2),
              120.0 * std::pow(0.2, 3) * std::pow(0.8, 7), 1e-12);
}

TEST(Binomial, PmfSumsToOne) {
  for (f64 p : {0.01, 0.3, 0.9}) {
    f64 sum = 0.0;
    for (u32 i = 0; i <= 16; ++i) sum += binomial_pmf(16, i, p);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "p=" << p;
  }
}

TEST(Binomial, RangeEdges) {
  EXPECT_DOUBLE_EQ(binomial_range(8, 3, 2, 0.5), 0.0);  // empty range
  EXPECT_NEAR(binomial_range(8, 0, 8, 0.37), 1.0, 1e-12);
  EXPECT_NEAR(binomial_range(8, 0, 100, 0.37), 1.0, 1e-12);  // clamped
}

TEST(Duplication, Eq1MatchesDirectComputation) {
  // n=3 systems, m=2 replicas, p: data lost iff both replica hosts down.
  const f64 p = 0.1;
  // Direct: P(both hosts down) = p^2 (independent of the third system).
  EXPECT_NEAR(duplication_unavailability(3, 2, p), p * p, 1e-12);
}

TEST(Duplication, MoreReplicasMoreAvailable) {
  f64 prev = 1.0;
  for (u32 m = 1; m <= 5; ++m) {
    const f64 u = duplication_unavailability(16, m, 0.01);
    EXPECT_LT(u, prev);
    prev = u;
  }
  EXPECT_NEAR(duplication_unavailability(16, 1, 0.01), 0.01, 1e-12);
}

TEST(Duplication, StorageOverhead) {
  EXPECT_DOUBLE_EQ(duplication_storage_overhead(1), 0.0);
  EXPECT_DOUBLE_EQ(duplication_storage_overhead(3), 2.0);
}

TEST(ErasureCoding, Eq2MatchesDirectComputation) {
  // n=6, m=2: unavailable iff >= 3 systems down.
  const f64 p = 0.2;
  f64 direct = 0.0;
  for (u32 i = 3; i <= 6; ++i) direct += binomial_pmf(6, i, p);
  EXPECT_NEAR(ec_unavailability(6, 2, p), direct, 1e-12);
}

TEST(ErasureCoding, MoreParityMoreAvailable) {
  f64 prev = 1.0;
  for (u32 m = 0; m <= 6; ++m) {
    const f64 u = ec_unavailability(16, m, 0.01);
    EXPECT_LT(u, prev);
    prev = u;
  }
}

TEST(ErasureCoding, StorageOverhead) {
  EXPECT_DOUBLE_EQ(ec_storage_overhead(4, 2), 0.5);
  EXPECT_DOUBLE_EQ(ec_storage_overhead(12, 4), 1.0 / 3.0);
}

TEST(ErasureCoding, BeatsDuplicationAtSameTolerance) {
  // Both tolerate 2 failures. EC's unavailability is a little higher (any 3
  // of 6 systems kill it, vs the 3 specific replica hosts for DP) but stays
  // in the same decade, while its storage overhead is 4x smaller — the
  // paper's Section 1 trade-off.
  const f64 p = 0.01;
  const f64 dp_unavail = duplication_unavailability(6, 3, p);   // 3 replicas
  const f64 ec_unavail = ec_unavailability(6, 2, p);            // k=4, m=2
  EXPECT_LE(ec_unavail, dp_unavail * 25);
  EXPECT_GE(ec_unavail, dp_unavail);  // C(6,3) combinations vs one
  EXPECT_LT(ec_storage_overhead(4, 2), duplication_storage_overhead(3) / 3.0);
}

TEST(FtConfig, Validation) {
  EXPECT_TRUE(valid_ft_config(16, {4, 3, 2, 1}));
  EXPECT_TRUE(valid_ft_config(16, {8, 5, 4, 2}));
  EXPECT_FALSE(valid_ft_config(16, {}));
  EXPECT_FALSE(valid_ft_config(16, {16, 3, 2, 1}));  // m_1 must be < n
  EXPECT_FALSE(valid_ft_config(16, {4, 4, 2, 1}));   // strict decrease
  EXPECT_FALSE(valid_ft_config(16, {4, 3, 2, 0}));   // m_l >= 1
}

TEST(LevelWindow, Eq4MatchesDirectComputation) {
  const f64 p = 0.05;
  // P(2 < N <= 4) for n=16.
  f64 direct = 0.0;
  for (u32 i = 3; i <= 4; ++i) direct += binomial_pmf(16, i, p);
  EXPECT_NEAR(level_window_probability(16, 4, 2, p), direct, 1e-12);
}

TEST(ExpectedError, WindowsPartitionProbability) {
  // The four windows of Eq. 5 (loss, levels 1..l-1, full quality) must
  // cover all outcomes: with all e_j = 1 the expectation is exactly 1.
  const FtConfig m = {6, 4, 3, 1};
  const std::vector<f64> ones(4, 1.0);
  EXPECT_NEAR(expected_relative_error(16, 0.3, ones, m), 1.0, 1e-12);
}

TEST(ExpectedError, ZeroFailureProbabilityGivesFullQuality) {
  const FtConfig m = {4, 3, 2, 1};
  const std::vector<f64> errors = {4e-3, 5e-4, 6e-5, 1e-7};
  EXPECT_NEAR(expected_relative_error(16, 0.0, errors, m), 1e-7, 1e-18);
}

TEST(ExpectedError, PaperFig2Configuration) {
  // The paper's Fig. 2 RF+EC point: n=16, p=0.01, m=[4,3,2,1],
  // e=[4e-3, 5e-4, 6e-5, 1e-7]. The expectation must be dominated by the
  // full-quality term and far below both baselines shown in the figure.
  const FtConfig m = {4, 3, 2, 1};
  const std::vector<f64> errors = {4e-3, 5e-4, 6e-5, 1e-7};
  const f64 e = expected_relative_error(16, 0.01, errors, m);
  // Baselines: DP with 2 replicas, EC with 3 parity fragments.
  const f64 dp = duplication_unavailability(16, 2, 0.01);
  const f64 ec = ec_unavailability(16, 3, 0.01);
  EXPECT_LT(e, dp);
  EXPECT_LT(e, ec * 100.0);  // same magnitude class or better
  EXPECT_GT(e, 0.0);
}

TEST(ExpectedError, MoreToleranceNeverHurts) {
  const std::vector<f64> errors = {4e-3, 5e-4, 6e-5, 1e-7};
  const f64 weak = expected_relative_error(16, 0.02, errors, {4, 3, 2, 1});
  const f64 strong = expected_relative_error(16, 0.02, errors, {8, 5, 3, 2});
  EXPECT_LT(strong, weak);
}

TEST(ExpectedError, InvalidInputsRejected) {
  const std::vector<f64> errors = {1e-3, 1e-5};
  EXPECT_THROW(expected_relative_error(16, 0.01, errors, {3, 3}),
               invariant_error);
  const std::vector<f64> wrong_size = {1e-3};
  EXPECT_THROW(expected_relative_error(16, 0.01, wrong_size, {3, 2}),
               invariant_error);
}

TEST(Overhead, Eq6MatchesHandComputation) {
  // n=8, m=[4,2], sizes=[100, 1000], S=10000.
  // parity = 4/4*100 + 2/6*1000 = 100 + 333.33 = 433.33; W = 0.04333.
  const f64 w = ft_storage_overhead(8, {4, 2}, std::vector<u64>{100, 1000}, 10000);
  EXPECT_NEAR(w, (100.0 + 1000.0 / 3.0) / 10000.0, 1e-12);
}

TEST(Overhead, NetworkCountsAllFragments)  {
  // Every system receives one fragment of every level: n/(n-m_j) * s_j.
  const f64 w = ft_network_overhead(8, {4, 2}, std::vector<u64>{100, 1000}, 10000);
  EXPECT_NEAR(w, (100.0 * 2.0 + 1000.0 * 8.0 / 6.0) / 10000.0, 1e-12);
}

// --- Monte Carlo cross-validation (the formulas vs actual failure draws) ---

TEST(MonteCarlo, DuplicationUnavailabilityMatches) {
  const u32 n = 16;
  const f64 p = 0.05;
  storage::Cluster cluster(storage::ClusterConfig{n, p, 3});
  // Replicas on systems {0, 1, 2}: data unavailable iff all three down.
  const auto score = [](const std::vector<bool>& outage) {
    return (outage[0] && outage[1] && outage[2]) ? 1.0 : 0.0;
  };
  const f64 mc = storage::monte_carlo_expectation(cluster, 400000, 17, score);
  EXPECT_NEAR(mc, duplication_unavailability(n, 3, p), 3e-4);
}

TEST(MonteCarlo, EcUnavailabilityMatches) {
  const u32 n = 12;
  const f64 p = 0.08;
  storage::Cluster cluster(storage::ClusterConfig{n, p, 4});
  const u32 m = 3;
  const auto score = [&](const std::vector<bool>& outage) {
    u32 down = 0;
    for (bool b : outage) down += b;
    return down > m ? 1.0 : 0.0;
  };
  const f64 mc = storage::monte_carlo_expectation(cluster, 400000, 18, score);
  EXPECT_NEAR(mc, ec_unavailability(n, m, p), 2e-3);
}

TEST(MonteCarlo, ExpectedRelativeErrorMatchesEq5) {
  const u32 n = 16;
  const f64 p = 0.06;  // inflated p so windows get hit often enough
  storage::Cluster cluster(storage::ClusterConfig{n, p, 5});
  const FtConfig m = {5, 3, 2, 1};
  const std::vector<f64> errors = {4e-3, 5e-4, 6e-5, 1e-7};
  const auto score = [&](const std::vector<bool>& outage) {
    u32 down = 0;
    for (bool b : outage) down += b;
    if (down > m[0]) return 1.0;  // e_0
    // Deepest level j with down <= m_j.
    u32 j = 0;
    while (j < m.size() && down <= m[j]) ++j;
    return errors[j - 1];
  };
  const f64 mc = storage::monte_carlo_expectation(cluster, 600000, 19, score);
  const f64 analytic = expected_relative_error(n, p, errors, m);
  EXPECT_NEAR(mc, analytic, analytic * 0.2 + 1e-6);
}

}  // namespace
}  // namespace rapids::core
