// Tests for the quorum-replicated metadata store (the paper's "metadata
// duplication and distributed metadata management" future work): quorum
// enforcement, newest-wins reads, read repair, replica recovery, and
// persistence across reopen.

#include <gtest/gtest.h>

#include <filesystem>
#include <utility>
#include <vector>

#include "rapids/kvstore/replicated_db.hpp"

namespace rapids::kv {
namespace {

namespace fs = std::filesystem;

class ReplicatedDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (fs::temp_directory_path() /
               ("rapids_rdb_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
                  .string();
    for (u32 i = 0; i < 5; ++i) fs::remove_all(prefix_ + std::to_string(i));
  }
  void TearDown() override {
    for (u32 i = 0; i < 5; ++i) fs::remove_all(prefix_ + std::to_string(i));
  }
  std::string prefix_;
};

TEST_F(ReplicatedDbTest, QuorumValidation) {
  EXPECT_THROW(ReplicatedDb::open(prefix_, 3, 1, 1, {}), invariant_error);
  EXPECT_THROW(ReplicatedDb::open(prefix_ + "b", 3, 0, 3, {}), invariant_error);
  auto ok = ReplicatedDb::open(prefix_ + "c", 3, 2, 2, {});
  EXPECT_EQ(ok->num_replicas(), 3u);
}

TEST_F(ReplicatedDbTest, PutGetDeleteAllUp) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  EXPECT_FALSE(db->get("k").has_value());
  db->put("k", "v1");
  EXPECT_EQ(db->get("k").value(), "v1");
  db->put("k", "v2");
  EXPECT_EQ(db->get("k").value(), "v2");
  db->del("k");
  EXPECT_FALSE(db->get("k").has_value());
}

TEST_F(ReplicatedDbTest, WritesLandOnAllUpReplicas) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->put("k", "v");
  for (u32 i = 0; i < 3; ++i)
    EXPECT_TRUE(db->replica(i).get("k").has_value()) << "replica " << i;
}

TEST_F(ReplicatedDbTest, PutBatchLandsOnAllUpReplicas) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"frag/a/0/0", "3"}, {"frag/a/0/1", "7"}, {"frag/a/0/2", "11"}};
  db->put_batch(entries);
  for (const auto& [k, v] : entries) {
    EXPECT_EQ(db->get(k).value(), v);
    for (u32 i = 0; i < 3; ++i)
      EXPECT_TRUE(db->replica(i).get(k).has_value()) << "replica " << i;
  }
}

TEST_F(ReplicatedDbTest, PutBatchRespectsWriteQuorum) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->set_replica_up(0, false);
  const std::vector<std::pair<std::string, std::string>> entries = {{"k", "v"}};
  db->put_batch(entries);  // 2 of 3 still satisfies W = 2
  EXPECT_EQ(db->get("k").value(), "v");
  db->set_replica_up(1, false);
  EXPECT_THROW(db->put_batch(entries), quorum_error);
}

TEST_F(ReplicatedDbTest, SurvivesMinorityOutage) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->put("before", "outage");
  db->set_replica_up(0, false);
  db->put("during", "outage");            // 2 of 3 still satisfies W = 2
  EXPECT_EQ(db->get("before").value(), "outage");
  EXPECT_EQ(db->get("during").value(), "outage");
}

TEST_F(ReplicatedDbTest, MajorityOutageRejected) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->set_replica_up(0, false);
  db->set_replica_up(1, false);
  EXPECT_THROW(db->put("k", "v"), quorum_error);
  EXPECT_THROW(db->get("k"), quorum_error);
  EXPECT_THROW(db->scan_prefix(""), quorum_error);
}

TEST_F(ReplicatedDbTest, NewestWinsAfterStaleReplicaReturns) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->put("k", "old");
  db->set_replica_up(2, false);
  db->put("k", "new");          // replica 2 misses this
  db->set_replica_up(2, true);  // back with a stale copy
  EXPECT_EQ(db->get("k").value(), "new");  // quorum intersect finds the newest
}

TEST_F(ReplicatedDbTest, ReadRepairHealsStaleReplica) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->put("k", "old");
  db->set_replica_up(2, false);
  db->put("k", "new");
  db->set_replica_up(2, true);
  (void)db->get("k");  // triggers repair
  // Now even reading replica 2 alone shows the new value.
  db->set_replica_up(0, false);
  db->set_replica_up(1, false);
  db->set_replica_up(0, true);  // need R=2: use 0 and 2
  EXPECT_EQ(db->get("k").value(), "new");
}

TEST_F(ReplicatedDbTest, DeleteShadowsOldValueOnStaleReplica) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->put("k", "v");
  db->set_replica_up(0, false);
  db->del("k");  // replica 0 still holds the old put
  db->set_replica_up(0, true);
  EXPECT_FALSE(db->get("k").has_value());  // tombstone wins by sequence
}

TEST_F(ReplicatedDbTest, SyncReplicaCatchesUp) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->set_replica_up(1, false);
  for (int i = 0; i < 20; ++i)
    db->put("key" + std::to_string(i), "value" + std::to_string(i));
  db->set_replica_up(1, true);
  const u64 repaired = db->sync_replica(1);
  EXPECT_EQ(repaired, 20u);
  // Replica 1 now serves everything even if the others go dark... with R=2
  // we pair it with replica 0.
  db->set_replica_up(2, false);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(db->get("key" + std::to_string(i)).value(),
              "value" + std::to_string(i));
}

TEST_F(ReplicatedDbTest, ScanPrefixMergesNewest) {
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->put("frag/a/0", "sys1");
  db->put("frag/a/1", "sys2");
  db->set_replica_up(2, false);
  db->put("frag/a/1", "sys9");  // replica 2 stale for this key
  db->del("frag/a/0");
  db->set_replica_up(2, true);
  const auto hits = db->scan_prefix("frag/a/");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, "frag/a/1");
  EXPECT_EQ(hits[0].second, "sys9");
}

TEST_F(ReplicatedDbTest, SequencePersistsAcrossReopen) {
  {
    auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
    db->put("k", "v1");
    db->set_replica_up(2, false);
    db->put("k", "v2");
  }
  // Reopen: the sequence counter must resume above the stored maximum so a
  // new write still beats the stale copy on replica 2.
  auto db = ReplicatedDb::open(prefix_, 3, 2, 2);
  db->put("k", "v3");
  EXPECT_EQ(db->get("k").value(), "v3");
}

TEST_F(ReplicatedDbTest, SingleReplicaDegeneratesToDb) {
  auto db = ReplicatedDb::open(prefix_, 1, 1, 1);
  db->put("k", "v");
  EXPECT_EQ(db->get("k").value(), "v");
  db->del("k");
  EXPECT_FALSE(db->get("k").has_value());
}

TEST_F(ReplicatedDbTest, FiveReplicasTolerateTwoFailures) {
  auto db = ReplicatedDb::open(prefix_, 5, 3, 3);
  db->put("important", "metadata");
  db->set_replica_up(0, false);
  db->set_replica_up(3, false);
  EXPECT_EQ(db->get("important").value(), "metadata");
  db->put("still", "writable");
  EXPECT_EQ(db->get("still").value(), "writable");
}

}  // namespace
}  // namespace rapids::kv
