// Tests for rapids/util: checksum, RNG determinism, byte serialization,
// logging plumbing, and the invariant macro.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "rapids/util/bytes.hpp"
#include "rapids/util/common.hpp"
#include "rapids/util/crc32c.hpp"
#include "rapids/util/logging.hpp"
#include "rapids/util/rng.hpp"
#include "rapids/util/timer.hpp"

namespace rapids {
namespace {

// --- common.hpp ---

TEST(Common, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
}

TEST(Common, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(Common, RequireThrowsTypedException) {
  EXPECT_THROW(
      [] { RAPIDS_REQUIRE_MSG(1 == 2, "should fire"); }(), invariant_error);
  EXPECT_NO_THROW([] { RAPIDS_REQUIRE(2 == 2); }());
}

TEST(Common, RequireMessageIncludesContext) {
  try {
    RAPIDS_REQUIRE_MSG(false, "my context");
    FAIL() << "should have thrown";
  } catch (const invariant_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

// --- crc32c ---

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vectors for CRC-32C.
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
  std::vector<u8> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<u8> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(crc32c(nullptr, 0), 0u); }

TEST(Crc32c, ChainingMatchesOneShot) {
  std::vector<u8> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  const u32 oneshot = crc32c(data.data(), data.size());
  u32 chained = crc32c(data.data(), 400);
  chained = crc32c(data.data() + 400, 600, chained);
  EXPECT_EQ(chained, oneshot);
}

TEST(Crc32c, DetectsSingleBitFlip) {
  std::vector<u8> data(256, 0xAB);
  const u32 base = crc32c(data.data(), data.size());
  for (std::size_t bit : {0u, 100u, 2047u}) {
    auto copy = data;
    copy[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    EXPECT_NE(crc32c(copy.data(), copy.size()), base) << "bit " << bit;
  }
}

TEST(Crc32c, UnalignedOffsetsAgree) {
  std::vector<u8> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i);
  // CRC of the same logical bytes must not depend on pointer alignment.
  std::vector<u8> shifted(buf.begin() + 1, buf.end());
  EXPECT_EQ(crc32c(buf.data() + 1, 63), crc32c(shifted.data(), 63));
}

// --- rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const f64 v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(11);
  for (u64 bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(13);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<f64>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  f64 sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const f64 v = r.normal(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const f64 mean = sum / n;
  const f64 var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next_u64() == c2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) {
    const f64 v = r.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

// --- bytes ---

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(3.14159);
  w.put_f32(2.5f);
  ByteReader r(as_bytes_view(w.bytes()));
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_FLOAT_EQ(r.get_f32(), 2.5f);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304u);
  const auto& b = w.bytes();
  EXPECT_EQ(static_cast<u8>(b[0]), 0x04);
  EXPECT_EQ(static_cast<u8>(b[3]), 0x01);
}

TEST(Bytes, StringsAndBlobs) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  Bytes blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(as_bytes_view(blob));
  ByteReader r(as_bytes_view(w.bytes()));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  auto back = r.get_bytes();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[2], std::byte{3});
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(as_bytes_view(w.bytes()));
  (void)r.get_u16();
  (void)r.get_u16();
  EXPECT_THROW(r.get_u8(), io_error);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.put_u32(100);  // claims a 100-byte string with no body
  ByteReader r(as_bytes_view(w.bytes()));
  EXPECT_THROW(r.get_string(), io_error);
}

TEST(Bytes, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rapids_bytes_test.bin").string();
  Bytes data(1234);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i * 31);
  write_file(path, as_bytes_view(data));
  EXPECT_EQ(read_file(path), data);
  std::filesystem::remove(path);
}

TEST(Bytes, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/rapids/xyz.bin"), io_error);
}

TEST(Bytes, EmptyFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rapids_empty_test.bin").string();
  write_file(path, {});
  EXPECT_TRUE(read_file(path).empty());
  std::filesystem::remove(path);
}

// --- logging ---

TEST(Logging, LevelGate) {
  const auto saved = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Below-level writes are no-ops (just exercising the path).
  log::info("test", "invisible ", 42);
  log::error("test", "visible once");
  log::set_level(saved);
}

// --- timer ---

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile f64 sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
  const f64 first = t.seconds();
  const f64 second = t.seconds();
  EXPECT_LE(first, second);  // monotone across calls
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace rapids
