// Tests for the fault-injection substrate: deterministic FaultProfile
// schedules, injected put/get faults through StorageSystem, retry/backoff
// discipline, and the SystemHealth circuit breaker.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "rapids/storage/cluster.hpp"
#include "rapids/storage/fault_injector.hpp"
#include "rapids/storage/system_health.hpp"
#include "rapids/util/retry.hpp"

namespace rapids::storage {
namespace {

ec::Fragment make_fragment(const std::string& obj, u32 level, u32 index,
                           std::size_t bytes) {
  ec::Fragment f;
  f.id = ec::FragmentId{obj, level, index};
  f.k = 4;
  f.m = 2;
  f.level_bytes = bytes * 4;
  f.payload.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    f.payload[i] = static_cast<u8>(i * 31 + index);
  f.payload_crc = ec::fragment_crc(f.payload);
  return f;
}

// ---------------------------------------------------------------- profile --

TEST(FaultProfile, SameSeedSameSchedule) {
  FaultSpec spec;
  spec.put_fail_prob = 0.3;
  spec.get_fail_prob = 0.2;
  spec.corrupt_get_prob = 0.1;
  spec.straggler_prob = 0.25;
  spec.seed = 1234;
  FaultProfile a(spec), b(spec);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.next_put_fault(), b.next_put_fault());
    EXPECT_EQ(a.next_get_fault(), b.next_get_fault());
    EXPECT_EQ(a.next_transfer_multiplier(), b.next_transfer_multiplier());
  }
  EXPECT_EQ(a.counters().transient_puts, b.counters().transient_puts);
  EXPECT_EQ(a.counters().corrupt_gets, b.counters().corrupt_gets);
  EXPECT_EQ(a.counters().stragglers, b.counters().stragglers);
}

TEST(FaultProfile, BernoulliRatesMatchSpec) {
  FaultSpec spec;
  spec.put_fail_prob = 0.2;
  spec.get_fail_prob = 0.1;
  spec.seed = 7;
  FaultProfile p(spec);
  const int trials = 20000;
  int put_fails = 0, get_fails = 0;
  for (int i = 0; i < trials; ++i) {
    put_fails += p.next_put_fault() == PutFault::kTransient;
    get_fails += p.next_get_fault() == GetFault::kTransient;
  }
  EXPECT_NEAR(put_fails / static_cast<f64>(trials), 0.2, 0.02);
  EXPECT_NEAR(get_fails / static_cast<f64>(trials), 0.1, 0.02);
}

TEST(FaultProfile, FailNextKIsExact) {
  FaultSpec spec;
  spec.fail_next_puts = 3;
  spec.fail_next_gets = 2;
  spec.corrupt_next_gets = 1;
  FaultProfile p(spec);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(p.next_put_fault(), PutFault::kTransient);
  EXPECT_EQ(p.next_put_fault(), PutFault::kNone);
  for (int i = 0; i < 2; ++i)
    EXPECT_EQ(p.next_get_fault(), GetFault::kTransient);
  EXPECT_EQ(p.next_get_fault(), GetFault::kCorrupt);
  EXPECT_EQ(p.next_get_fault(), GetFault::kNone);
  EXPECT_EQ(p.counters().transient_puts, 3u);
  EXPECT_EQ(p.counters().transient_gets, 2u);
  EXPECT_EQ(p.counters().corrupt_gets, 1u);
}

TEST(FaultProfile, CrashWindowCoversExactOps) {
  FaultSpec spec;
  spec.crash_after_ops = 2;  // ops 3..5 (1-based) crash
  spec.crash_for_ops = 3;
  FaultProfile p(spec);
  EXPECT_EQ(p.next_get_fault(), GetFault::kNone);   // op 1
  EXPECT_EQ(p.next_put_fault(), PutFault::kNone);   // op 2
  EXPECT_EQ(p.next_get_fault(), GetFault::kTransient);  // op 3
  EXPECT_EQ(p.next_put_fault(), PutFault::kTransient);  // op 4
  EXPECT_EQ(p.next_get_fault(), GetFault::kTransient);  // op 5
  EXPECT_EQ(p.next_get_fault(), GetFault::kNone);   // op 6: recovered
  EXPECT_EQ(p.counters().crashed_ops, 3u);
}

TEST(FaultProfile, StragglerMultiplierStacksOnLatency) {
  FaultSpec spec;
  spec.latency_mult = 2.0;
  spec.straggler_prob = 0.5;
  spec.straggler_mult = 10.0;
  spec.seed = 11;
  FaultProfile p(spec);
  int straggled = 0;
  for (int i = 0; i < 2000; ++i) {
    const f64 m = p.next_transfer_multiplier();
    if (m > 2.0) {
      EXPECT_DOUBLE_EQ(m, 20.0);
      ++straggled;
    } else {
      EXPECT_DOUBLE_EQ(m, 2.0);
    }
  }
  EXPECT_NEAR(straggled / 2000.0, 0.5, 0.05);
  EXPECT_EQ(p.counters().stragglers, static_cast<u64>(straggled));
}

TEST(FaultProfile, CorruptPayloadFlipsExactlyOneByte) {
  FaultSpec spec;
  spec.seed = 3;
  FaultProfile p(spec);
  std::vector<u8> payload(64, 0xAB);
  p.corrupt_payload(payload);
  int changed = 0;
  for (u8 b : payload) changed += b != 0xAB;
  EXPECT_EQ(changed, 1);
  std::vector<u8> empty;
  p.corrupt_payload(empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

// ------------------------------------------------- through StorageSystem --

TEST(FaultInjection, TransientPutThrowsWithoutStoring) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  FaultSpec spec;
  spec.fail_next_puts = 1;
  sys.attach_fault_profile(std::make_shared<FaultProfile>(spec));
  const auto frag = make_fragment("obj", 0, 0, 64);
  EXPECT_THROW(sys.put(frag), io_error);
  EXPECT_FALSE(sys.has(frag.id.key()));
  sys.put(frag);  // second attempt succeeds
  EXPECT_TRUE(sys.get(frag.id.key()).has_value());
}

TEST(FaultInjection, TornPutPersistsDamageDetectableByCrc) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  FaultSpec spec;
  spec.torn_put_prob = 1.0;
  sys.attach_fault_profile(std::make_shared<FaultProfile>(spec));
  const auto frag = make_fragment("obj", 0, 0, 64);
  EXPECT_THROW(sys.put(frag), io_error);
  // The torn write left *something* behind, and it fails verification.
  EXPECT_TRUE(sys.has(frag.id.key()));
  sys.attach_fault_profile(nullptr);
  const auto back = sys.get(frag.id.key());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->verify());
  // A clean replacement put heals it.
  sys.put(frag);
  EXPECT_TRUE(sys.get(frag.id.key())->verify());
}

TEST(FaultInjection, CorruptGetDamagesCopyNotStore) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  const auto frag = make_fragment("obj", 0, 0, 128);
  sys.put(frag);
  FaultSpec spec;
  spec.corrupt_next_gets = 1;
  sys.attach_fault_profile(std::make_shared<FaultProfile>(spec));
  const auto bad = sys.get(frag.id.key());
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->verify());  // CRC catches the in-flight flip
  const auto good = sys.get(frag.id.key());
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(good->verify());  // stored bytes were never touched
  EXPECT_EQ(good->payload, frag.payload);
}

TEST(FaultInjection, TransferMultiplierDefaultsToOne) {
  StorageSystem sys(0, "s0", 1e9, 0.01);
  EXPECT_DOUBLE_EQ(sys.sample_transfer_multiplier(), 1.0);
  FaultSpec spec;
  spec.latency_mult = 3.0;
  sys.attach_fault_profile(std::make_shared<FaultProfile>(spec));
  EXPECT_DOUBLE_EQ(sys.sample_transfer_multiplier(), 3.0);
  sys.attach_fault_profile(nullptr);
  EXPECT_DOUBLE_EQ(sys.sample_transfer_multiplier(), 1.0);
}

TEST(FaultInjection, InjectorInstallsPerSystemProfiles) {
  Cluster cluster(ClusterConfig{4, 0.01, 42});
  FaultInjector injector;
  FaultSpec spec;
  spec.fail_next_gets = 1;
  injector.set_all(cluster.size(), spec);
  injector.install(cluster);
  for (u32 i = 0; i < cluster.size(); ++i) {
    ASSERT_NE(cluster.system(i).fault_profile(), nullptr);
    EXPECT_THROW(cluster.system(i).get("frag/x/0/0"), io_error);
    EXPECT_FALSE(cluster.system(i).get("frag/x/0/0").has_value());
  }
  EXPECT_EQ(injector.total_counters().transient_gets, 4u);
  FaultInjector::uninstall(cluster);
  for (u32 i = 0; i < cluster.size(); ++i)
    EXPECT_EQ(cluster.system(i).fault_profile(), nullptr);
}

TEST(FaultInjection, SetAllDerivesIndependentSeeds) {
  FaultInjector injector;
  FaultSpec spec;
  spec.straggler_prob = 0.5;
  injector.set_all(2, spec);
  // Different per-system seeds -> different straggler schedules.
  std::vector<f64> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(injector.profile(0)->next_transfer_multiplier());
    b.push_back(injector.profile(1)->next_transfer_multiplier());
  }
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- backoff --

TEST(Backoff, DeterministicForSeed) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  Backoff a(policy, 99), b(policy, 99);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(a.record_failure(), b.record_failure());
}

TEST(Backoff, GrowsExponentiallyWithinJitterAndCap) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_s = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 1.0;
  policy.jitter_frac = 0.25;
  Backoff backoff(policy, 5);
  f64 expected = 0.1;
  for (int i = 0; i < 9; ++i) {
    const f64 d = backoff.record_failure();  // failures 1..9: retry follows
    const f64 nominal = std::min(expected, policy.max_backoff_s);
    EXPECT_GE(d, nominal * 0.75);
    EXPECT_LE(d, nominal * 1.25);
    expected *= 2.0;
  }
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_DOUBLE_EQ(backoff.record_failure(), 0.0);  // 10th: budget gone
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_EQ(backoff.failures(), 10u);
}

TEST(Backoff, ExhaustionChargesNothingAndThrowsBeyond) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.jitter_frac = 0.0;
  Backoff backoff(policy, 1);
  EXPECT_GT(backoff.record_failure(), 0.0);         // backoff before retry
  EXPECT_DOUBLE_EQ(backoff.record_failure(), 0.0);  // budget exhausted
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_THROW(backoff.record_failure(), invariant_error);
}

TEST(Backoff, DeadlineBudgetStopsRetriesBeforeAttemptCount) {
  // Regression: a backoff schedule must never charge simulated seconds past
  // the caller's remaining deadline budget, even with attempts left.
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_s = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.jitter_frac = 0.0;
  Backoff backoff(policy, 1, /*deadline_s=*/1.2);
  EXPECT_DOUBLE_EQ(backoff.record_failure(), 0.5);  // total 0.5 <= 1.2
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_DOUBLE_EQ(backoff.record_failure(), 0.0);  // 0.5+1.0 would overrun
  EXPECT_TRUE(backoff.deadline_hit());
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_EQ(backoff.failures(), 2u);  // stopped well before max_attempts
  EXPECT_DOUBLE_EQ(backoff.total_backoff_s(), 0.5);
}

TEST(Backoff, NonPositiveDeadlineDisablesRetries) {
  RetryPolicy policy;
  policy.jitter_frac = 0.0;
  Backoff backoff(policy, 1, /*deadline_s=*/0.0);
  EXPECT_DOUBLE_EQ(backoff.record_failure(), 0.0);
  EXPECT_TRUE(backoff.deadline_hit());
  EXPECT_TRUE(backoff.exhausted());
}

TEST(Backoff, InfiniteDeadlineReproducesPolicyOnlySchedule) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  Backoff plain(policy, 99);
  Backoff budgeted(policy, 99, std::numeric_limits<f64>::infinity());
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(plain.record_failure(), budgeted.record_failure());
  EXPECT_FALSE(budgeted.deadline_hit());
}

TEST(Retry, WithinDeadlineStopsRetryingEarly) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_s = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.jitter_frac = 0.0;
  int calls = 0;
  const auto result = retry_io_within(policy, 7, /*deadline_s=*/1.5,
                                      [&]() -> int {
                                        ++calls;
                                        throw io_error("always down");
                                      });
  EXPECT_FALSE(result.ok());
  // First failure backs off 1.0s (within 1.5); the second backoff (2.0s)
  // would overrun, so exactly two attempts run — not max_attempts.
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(result.backoff_seconds, 1.0);
}

TEST(Retry, SucceedsAfterTransientFailures) {
  int calls = 0;
  const auto result = retry_io(RetryPolicy{}, 7, [&] {
    if (++calls < 3) throw io_error("flaky");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value, 42);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_GT(result.backoff_seconds, 0.0);
}

TEST(Retry, GivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  const auto result = retry_io(policy, 7, [&]() -> int {
    ++calls;
    throw io_error("always down");
  });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result.last_error, "always down");
}

TEST(Retry, InvariantErrorsPropagate) {
  EXPECT_THROW(retry_io(RetryPolicy{}, 7,
                        [&]() -> int { throw invariant_error("bug"); }),
               invariant_error);
}

TEST(Retry, StableHashIsStableAndSensitive) {
  EXPECT_EQ(stable_hash("obj", 1, 2), stable_hash("obj", 1, 2));
  EXPECT_NE(stable_hash("obj", 1, 2), stable_hash("obj", 1, 3));
  EXPECT_NE(stable_hash("obj", 1, 2), stable_hash("objx", 1, 2));
}

// ----------------------------------------------------------------- health --

TEST(SystemHealth, BreakerOpensAtThresholdAndBlocks) {
  HealthOptions options;
  options.failure_threshold = 3;
  options.open_cooldown_events = 4;
  SystemHealth health(2, options);
  EXPECT_TRUE(health.allow(0));
  health.record_failure(0);
  health.record_failure(0);
  EXPECT_TRUE(health.allow(0));  // still closed below threshold
  health.record_failure(0);
  EXPECT_TRUE(health.is_open(0));
  EXPECT_FALSE(health.allow(0));
  EXPECT_TRUE(health.allow(1));  // independent per system
}

TEST(SystemHealth, HalfOpenProbeClosesOnSuccess) {
  HealthOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_events = 3;
  SystemHealth health(2, options);
  health.record_failure(0);
  health.record_failure(0);  // opens
  EXPECT_FALSE(health.allow(0));
  // Other systems' traffic advances the logical event clock past cooldown.
  health.record_success(1);
  health.record_success(1);
  health.record_success(1);
  EXPECT_TRUE(health.allow(0));  // half-open: one probe admitted
  health.record_success(0);      // probe succeeded -> closed
  EXPECT_TRUE(health.allow(0));
  EXPECT_FALSE(health.is_open(0));
  EXPECT_EQ(health.circuit_opens(0), 1u);
}

TEST(SystemHealth, HalfOpenProbeFailureReopensImmediately) {
  HealthOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_events = 2;
  SystemHealth health(2, options);
  health.record_failure(0);
  health.record_failure(0);  // opens
  health.record_success(1);
  health.record_success(1);
  EXPECT_TRUE(health.allow(0));  // half-open probe
  health.record_failure(0);      // probe failed -> open again, single failure
  EXPECT_FALSE(health.allow(0));
  EXPECT_EQ(health.circuit_opens(0), 2u);
}

TEST(SystemHealth, CountersAndLatencyEwma) {
  SystemHealth health(1);
  health.record_success(0, 1.0);
  health.record_success(0, 11.0);  // alpha 0.3: 1.0 -> 1.0 -> 4.0
  health.record_failure(0);
  EXPECT_EQ(health.successes(0), 2u);
  EXPECT_EQ(health.failures(0), 1u);
  EXPECT_EQ(health.consecutive_failures(0), 1u);
  EXPECT_NEAR(health.latency_ewma(0), 0.7 * (0.7 * 1.0 + 0.3 * 1.0) + 0.3 * 11.0,
              1e-12);
  health.record_success(0);
  EXPECT_EQ(health.consecutive_failures(0), 0u);
}

TEST(SystemHealth, SerializeRoundTrip) {
  HealthOptions options;
  options.failure_threshold = 2;
  options.open_cooldown_events = 5;
  SystemHealth health(3, options);
  health.record_success(0, 2.0);
  health.record_failure(1);
  health.record_failure(1);  // open
  health.record_success(2);
  const Bytes wire = health.serialize();
  SystemHealth back = SystemHealth::deserialize(wire);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.successes(0), 1u);
  EXPECT_EQ(back.failures(1), 2u);
  EXPECT_TRUE(back.is_open(1));
  EXPECT_FALSE(back.is_open(0));
  EXPECT_NEAR(back.latency_ewma(0), health.latency_ewma(0), 1e-12);
  EXPECT_EQ(back.circuit_opens(1), 1u);
}

TEST(SystemHealth, DeserializeRejectsGarbage) {
  Bytes junk(16, std::byte{0x5A});
  EXPECT_THROW(SystemHealth::deserialize(junk), io_error);
}

}  // namespace
}  // namespace rapids::storage
