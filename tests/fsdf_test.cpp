// Tests for the FSDF self-describing container: typed attributes, dataset
// integrity, file round trips, and corruption detection.

#include <gtest/gtest.h>

#include <filesystem>

#include "rapids/fsdf/fsdf.hpp"

namespace rapids::fsdf {
namespace {

Bytes blob(std::initializer_list<int> vals) {
  Bytes out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Fsdf, AttributeRoundTrip) {
  Writer w;
  w.set_attr("object_name", std::string("NYX:temperature"));
  w.set_attr("level", i64{3});
  w.set_attr("error_bound", 4.5e-4);
  const Reader r(w.finish());
  EXPECT_EQ(r.attr_string("object_name"), "NYX:temperature");
  EXPECT_EQ(r.attr_i64("level"), 3);
  EXPECT_DOUBLE_EQ(r.attr_f64("error_bound"), 4.5e-4);
  EXPECT_TRUE(r.has_attr("level"));
  EXPECT_FALSE(r.has_attr("missing"));
}

TEST(Fsdf, AttributeOverwrite) {
  Writer w;
  w.set_attr("x", i64{1});
  w.set_attr("x", i64{2});
  const Reader r(w.finish());
  EXPECT_EQ(r.attr_i64("x"), 2);
}

TEST(Fsdf, WrongTypeThrows) {
  Writer w;
  w.set_attr("x", i64{1});
  const Reader r(w.finish());
  EXPECT_THROW(r.attr_f64("x"), io_error);
  EXPECT_THROW(r.attr_string("x"), io_error);
  EXPECT_THROW(r.attr_i64("absent"), io_error);
}

TEST(Fsdf, DatasetRoundTrip) {
  Writer w;
  w.add_dataset("payload", blob({1, 2, 3, 4, 5}));
  w.add_dataset("empty", Bytes{});
  const Reader r(w.finish());
  EXPECT_EQ(r.dataset_names(), (std::vector<std::string>{"payload", "empty"}));
  EXPECT_EQ(r.dataset("payload"), blob({1, 2, 3, 4, 5}));
  EXPECT_TRUE(r.dataset("empty").empty());
  EXPECT_TRUE(r.has_dataset("payload"));
  EXPECT_FALSE(r.has_dataset("nope"));
}

TEST(Fsdf, DuplicateDatasetRejected) {
  Writer w;
  w.add_dataset("d", blob({1}));
  EXPECT_THROW(w.add_dataset("d", blob({2})), invariant_error);
}

TEST(Fsdf, MissingDatasetThrows) {
  Writer w;
  const Reader r(w.finish());
  EXPECT_THROW(r.dataset("ghost"), io_error);
}

TEST(Fsdf, CorruptDatasetDetected) {
  Writer w;
  w.set_attr("n", i64{1});
  w.add_dataset("d", blob({10, 20, 30, 40}));
  Bytes raw = w.finish();
  raw[raw.size() - 2] ^= std::byte{0xFF};  // damage the dataset body
  const Reader r(std::move(raw));
  EXPECT_EQ(r.attr_i64("n"), 1);  // attributes still fine
  EXPECT_THROW(r.dataset("d"), io_error);
}

TEST(Fsdf, BadMagicRejected) {
  Bytes junk(32, std::byte{0x5A});
  EXPECT_THROW(Reader{junk}, io_error);
}

TEST(Fsdf, TruncatedFileRejected) {
  Writer w;
  w.add_dataset("d", Bytes(100, std::byte{7}));
  Bytes raw = w.finish();
  raw.resize(raw.size() - 50);
  EXPECT_THROW(Reader{std::move(raw)}, io_error);
}

TEST(Fsdf, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rapids_test.fsdf").string();
  Writer w;
  w.set_attr("kind", std::string("fragment"));
  w.add_dataset("payload", blob({9, 8, 7}));
  w.write(path);
  const Reader r = Reader::open(path);
  EXPECT_EQ(r.attr_string("kind"), "fragment");
  EXPECT_EQ(r.dataset("payload"), blob({9, 8, 7}));
  std::filesystem::remove(path);
}

TEST(Fsdf, ManyDatasetsKeepOrder) {
  Writer w;
  for (int i = 0; i < 50; ++i)
    w.add_dataset("ds" + std::to_string(i), blob({i}));
  const Reader r(w.finish());
  const auto names = r.dataset_names();
  ASSERT_EQ(names.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(names[i], "ds" + std::to_string(i));
    EXPECT_EQ(r.dataset(names[i]), blob({i}));
  }
}

TEST(Fsdf, SelfDescribingFragmentExample) {
  // The shape the pipeline writes: a fragment payload plus the description
  // needed to interpret it without the metadata service.
  Writer w;
  w.set_attr("object_name", std::string("SCALE:PRES"));
  w.set_attr("level", i64{2});
  w.set_attr("index", i64{7});
  w.set_attr("k", i64{12});
  w.set_attr("m", i64{4});
  w.set_attr("rel_error_bound", 6e-5);
  w.add_dataset("payload", Bytes(256, std::byte{0xAB}));
  const Reader r(w.finish());
  EXPECT_EQ(r.attr_i64("k"), 12);
  EXPECT_EQ(r.dataset("payload").size(), 256u);
}

}  // namespace
}  // namespace rapids::fsdf
