// Robustness suite: every serialized artifact, when bit-flipped or
// truncated at random, must surface a typed error (io_error /
// invariant_error) — never crash, hang, or silently return wrong data. This
// matters for RAPIDS specifically: fragments live on remote systems for
// years and come back through unreliable channels.

#include <gtest/gtest.h>

#include "rapids/core/pipeline.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/data/field_generators.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/ec/fragment.hpp"
#include "rapids/storage/fault_injector.hpp"
#include "rapids/fsdf/fsdf.hpp"
#include "rapids/kvstore/sorted_run.hpp"
#include "rapids/mgard/refactorer.hpp"
#include "rapids/util/rng.hpp"

#include <filesystem>
#include <limits>

namespace rapids {
namespace {

/// Apply one random mutation: flip a byte, truncate, or extend.
Bytes mutate(const Bytes& input, Rng& rng) {
  Bytes out = input;
  switch (rng.next_below(3)) {
    case 0: {  // flip a random byte
      if (out.empty()) break;
      const u64 at = rng.next_below(out.size());
      out[at] ^= static_cast<std::byte>(1 + rng.next_below(255));
      break;
    }
    case 1: {  // truncate
      out.resize(rng.next_below(out.size() + 1));
      break;
    }
    default: {  // garbage tail
      for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::byte>(rng.next_u64()));
      break;
    }
  }
  return out;
}

/// Run `parse` on `trials` mutations of `wire`; any outcome is fine except a
/// crash or an untyped exception.
template <typename ParseFn>
void fuzz(const Bytes& wire, u64 seed, int trials, const ParseFn& parse) {
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    const Bytes bad = mutate(wire, rng);
    try {
      parse(bad);
    } catch (const io_error&) {
    } catch (const invariant_error&) {
    }
  }
}

TEST(Robustness, FragmentDeserializeFuzz) {
  ec::Fragment f;
  f.id = {"fuzz/object", 2, 7};
  f.k = 12;
  f.m = 4;
  f.level_bytes = 1000;
  f.payload.resize(512);
  Rng rng(1);
  for (auto& b : f.payload) b = static_cast<u8>(rng.next_u64());
  f.payload_crc = ec::fragment_crc(f.payload);
  const Bytes wire = f.serialize();
  fuzz(wire, 2, 400, [](const Bytes& bad) {
    const auto frag = ec::Fragment::deserialize(as_bytes_view(bad));
    // Parsed despite mutation: verify() must catch payload damage (header
    // damage may legitimately parse to a different-but-consistent record).
    (void)frag.verify();
  });
}

TEST(Robustness, FsdfReaderFuzz) {
  fsdf::Writer w;
  w.set_attr("object_name", std::string("fuzz"));
  w.set_attr("level", i64{3});
  w.set_attr("bound", 1.5e-4);
  w.add_dataset("payload", Bytes(256, std::byte{0x5A}));
  w.add_dataset("extra", Bytes(32, std::byte{0x11}));
  const Bytes wire = w.finish();
  fuzz(wire, 3, 400, [](const Bytes& bad) {
    const fsdf::Reader r{Bytes(bad)};
    for (const auto& name : r.dataset_names()) (void)r.dataset(name);
  });
}

TEST(Robustness, RefactoredMetadataFuzz) {
  const mgard::Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 4);
  const mgard::Refactorer rf{mgard::RefactorOptions{}};
  const auto obj = rf.refactor(field, dims, "fuzzmeta");
  const Bytes wire = obj.serialize_metadata();
  fuzz(wire, 5, 400, [](const Bytes& bad) {
    (void)mgard::RefactoredObject::deserialize_metadata(as_bytes_view(bad));
  });
}

TEST(Robustness, ObjectRecordFuzz) {
  const mgard::Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 5);
  const mgard::Refactorer rf{mgard::RefactorOptions{}};
  core::ObjectRecord record;
  record.meta = rf.refactor(field, dims, "fuzzrec");
  record.ft = {4, 3, 2, 1};
  record.level_sizes = {10, 20, 30, 40};
  const Bytes wire = record.serialize();
  fuzz(wire, 6, 400, [](const Bytes& bad) {
    (void)core::ObjectRecord::deserialize(as_bytes_view(bad));
  });
}

TEST(Robustness, RetrievalPayloadFuzz) {
  const mgard::Dims dims{33, 17, 9};
  const auto field = data::nyx_velocity(dims, 7);
  const mgard::Refactorer rf{mgard::RefactorOptions{}};
  const auto obj = rf.refactor(field, dims, "fuzzpay");
  fuzz(obj.levels[0].payload, 8, 300, [&](const Bytes& bad) {
    // Either the payload parse or the plane decode may reject it.
    std::vector<Bytes> payloads = {bad};
    (void)rf.reconstruct(obj, payloads);
  });
}

TEST(Robustness, SortedRunFileFuzz) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "rapids_fuzz_run";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "r.sst").string();
  std::vector<kv::RunEntry> entries;
  for (int i = 0; i < 50; ++i)
    entries.push_back({"key" + std::to_string(100 + i), "value"});
  kv::SortedRun::write(path, entries);
  const Bytes wire = read_file(path);
  Rng rng(9);
  for (int t = 0; t < 200; ++t) {
    write_file(path, as_bytes_view(mutate(wire, rng)));
    try {
      const auto run = kv::SortedRun::open(path);
      (void)run.get("key120");
    } catch (const io_error&) {
    } catch (const invariant_error&) {
    }
  }
  fs::remove_all(dir);
}

TEST(Robustness, InjectedCorruptionIsCaughtNeverSilent) {
  // End-to-end CRC discipline: a storage system that hands back bit-flipped
  // fragment copies must never leak a wrong float to the caller. The
  // corruption is scripted with exact counters (corrupt the next K gets on
  // a handful of systems), so the restore sees damage regardless of the
  // plan, retries the reads, and — re-reads being clean — still returns
  // full-quality data within the reported bound.
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "rapids_robust_corrupt";
  fs::remove_all(dir);
  {
    storage::Cluster cluster(storage::ClusterConfig{16, 0.01, 42});
    auto db = kv::Db::open(dir.string());
    core::PipelineConfig cfg;
    cfg.refactor.decomp_levels = 3;
    cfg.refactor.num_retrieval_levels = 4;
    cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
    cfg.aco.iterations = 20;
    core::RapidsPipeline pipeline(cluster, *db, cfg);
    const mgard::Dims dims{17, 17, 9};
    const auto field = data::hurricane_pressure(dims, 12);
    pipeline.prepare(field, dims, "crc");

    storage::FaultInjector injector;
    for (u32 s = 0; s < cluster.size(); s += 3) {
      storage::FaultSpec spec;
      spec.corrupt_next_gets = 2;  // exactly scripted, then exhausted
      injector.set_spec(s, spec);
    }
    injector.install(cluster);

    const auto report = pipeline.restore("crc");
    // Corruption was actually injected and detected (each detection is a
    // CRC-failed read that got retried).
    EXPECT_GT(injector.total_counters().corrupt_gets, 0u);
    EXPECT_GT(report.fetch_retries, 0u);
    // ... and absorbed: full quality, bound holds, no silent wrong data.
    EXPECT_EQ(report.levels_used, 4u);
    ASSERT_EQ(report.data.size(), field.size());
    EXPECT_LE(data::relative_linf_error(field, report.data),
              report.rel_error_bound);
  }
  fs::remove_all(dir);
}

TEST(Robustness, AtRestDamageTriggersReplanAndRepair) {
  // Fragments damaged *in place* (torn write persisted a truncated payload)
  // never verify on any re-read; the restore must replan around the damaged
  // system, and a scrub must find and rebuild the fragment.
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "rapids_robust_atrest";
  fs::remove_all(dir);
  {
    storage::Cluster cluster(storage::ClusterConfig{16, 0.01, 42});
    auto db = kv::Db::open(dir.string());
    core::PipelineConfig cfg;
    cfg.refactor.decomp_levels = 3;
    cfg.refactor.num_retrieval_levels = 4;
    cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
    cfg.aco.iterations = 20;
    core::RapidsPipeline pipeline(cluster, *db, cfg);
    const mgard::Dims dims{17, 17, 9};
    const auto field = data::scale_temperature(dims, 13);
    pipeline.prepare(field, dims, "rot");

    // Bit-rot one stored fragment by replacing it with a torn-write copy.
    storage::FaultSpec torn;
    torn.torn_put_prob = 1.0;
    auto profile = std::make_shared<storage::FaultProfile>(torn);
    const auto record = pipeline.lookup("rot");
    ASSERT_TRUE(record.has_value());
    auto& victim = cluster.system(2);
    const auto original = victim.get(ec::FragmentId{"rot", 0, 2}.key());
    ASSERT_TRUE(original.has_value());
    victim.attach_fault_profile(profile);
    EXPECT_THROW(victim.put(*original), io_error);
    victim.attach_fault_profile(nullptr);
    ASSERT_FALSE(victim.get(ec::FragmentId{"rot", 0, 2}.key())->verify());

    // Restore replans around the damage and stays within the full bound.
    const auto report = pipeline.restore("rot");
    EXPECT_EQ(report.levels_used, 4u);
    ASSERT_EQ(report.data.size(), field.size());
    EXPECT_LE(data::relative_linf_error(field, report.data),
              report.rel_error_bound);

    // Scrub finds the damage and heals it in place.
    const auto scrub = pipeline.scrub("rot", true);
    EXPECT_EQ(scrub.damaged.size(), 1u);
    EXPECT_EQ(scrub.repaired, 1u);
    EXPECT_TRUE(victim.get(ec::FragmentId{"rot", 0, 2}.key())->verify());
  }
  fs::remove_all(dir);
}

TEST(Robustness, RefactorerRejectsNonFiniteInput) {
  const mgard::Dims dims{9, 9, 1};
  const mgard::Refactorer rf{mgard::RefactorOptions{}};
  std::vector<f32> with_nan(dims.total(), 1.0f);
  with_nan[40] = std::numeric_limits<f32>::quiet_NaN();
  EXPECT_THROW(rf.refactor(with_nan, dims, "nan"), invariant_error);
  std::vector<f32> with_inf(dims.total(), 1.0f);
  with_inf[3] = std::numeric_limits<f32>::infinity();
  EXPECT_THROW(rf.refactor(with_inf, dims, "inf"), invariant_error);
}

TEST(Robustness, DecodePlanesOnTruncatedSegment) {
  Rng rng(10);
  std::vector<f64> coeffs(500);
  for (auto& c : coeffs) c = rng.normal(0.0, 1.0);
  auto ps = mgard::encode_planes(coeffs);
  // Truncate a mid plane's data.
  auto& seg = ps.planes[5].data;
  if (seg.size() > 4) seg.resize(seg.size() / 2);
  EXPECT_THROW((void)mgard::decode_planes(ps, 16), io_error);
}

TEST(Robustness, ExtremeValuesRoundTrip) {
  // Denormals, tiny, huge, and mixed-magnitude inputs must refactor within
  // bounds (no overflow in the fixed-point quantizer).
  const mgard::Dims dims{33, 9, 1};
  std::vector<f32> field(dims.total());
  Rng rng(11);
  for (std::size_t i = 0; i < field.size(); ++i) {
    switch (i % 4) {
      case 0: field[i] = static_cast<f32>(rng.uniform(-1e30, 1e30)); break;
      case 1: field[i] = static_cast<f32>(rng.uniform(-1e-30, 1e-30)); break;
      case 2: field[i] = 0.0f; break;
      default: field[i] = static_cast<f32>(rng.normal(0.0, 1.0)); break;
    }
  }
  mgard::RefactorOptions opt;
  opt.decomp_levels = 2;
  opt.target_rel_errors = {1e-2, 1e-4, 1e-6, 1e-7};
  const mgard::Refactorer rf(opt);
  const auto obj = rf.refactor(field, dims, "extreme");
  std::vector<Bytes> payloads;
  for (const auto& l : obj.levels) payloads.push_back(l.payload);
  const auto rec = rf.reconstruct(obj, payloads);
  const f64 max_abs = 1e30;
  for (std::size_t i = 0; i < field.size(); ++i) {
    const f64 err = std::fabs(static_cast<f64>(field[i]) - rec[i]);
    ASSERT_LE(err, obj.rel_error_bound(4) * max_abs * 1.01) << i;
  }
}

}  // namespace
}  // namespace rapids
