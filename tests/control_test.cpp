// Unit tests for the self-healing control plane's building blocks: the
// token-bucket rate limiter, the crash-safe migration journal, breaker
// transition callbacks, heterogeneous (Poisson-binomial) availability math,
// the evaluate/re-optimize entry points, generation-tagged cache keys, and
// the two-phase migration primitives on the pipeline.

#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <thread>

#include "rapids/control/controller.hpp"
#include "rapids/control/journal.hpp"
#include "rapids/control/rate_limiter.hpp"
#include "rapids/core/ft_optimizer.hpp"
#include "rapids/core/pipeline.hpp"
#include "rapids/data/datasets.hpp"
#include "rapids/data/stats.hpp"
#include "rapids/kvstore/db.hpp"
#include "rapids/storage/restore_cache.hpp"
#include "rapids/storage/storage_system.hpp"
#include "rapids/storage/system_health.hpp"
#include "rapids/util/crc32c.hpp"

namespace rapids {
namespace {

namespace fs = std::filesystem;
using control::MigrationJournal;
using control::MigrationPhase;
using control::MigrationRecord;
using control::TokenBucket;
using mgard::Dims;

// --- token bucket ---

TEST(TokenBucket, StartsFullAndRefillsAtRate) {
  TokenBucket bucket(100.0, 500.0);
  EXPECT_TRUE(bucket.try_acquire(500));
  EXPECT_FALSE(bucket.try_acquire(1));
  EXPECT_DOUBLE_EQ(bucket.seconds_until(100), 1.0);
  bucket.advance(1.0);
  EXPECT_TRUE(bucket.try_acquire(100));
  EXPECT_FALSE(bucket.try_acquire(1));
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket bucket(100.0, 200.0);
  bucket.advance(1000.0);  // long idle: tokens cap at burst, not rate*time
  EXPECT_TRUE(bucket.try_acquire(200));
  EXPECT_FALSE(bucket.try_acquire(1));
}

TEST(TokenBucket, TimeIsMonotone) {
  TokenBucket bucket(100.0, 100.0);
  ASSERT_TRUE(bucket.try_acquire(100));
  bucket.advance(1.0);
  bucket.advance(0.5);  // going backwards must not mint tokens
  EXPECT_DOUBLE_EQ(bucket.tokens(), 100.0);
}

TEST(TokenBucket, NonPositiveRateDisablesLimiting) {
  TokenBucket bucket(0.0, 0.0);
  EXPECT_TRUE(bucket.try_acquire(u64{1} << 40));
  EXPECT_DOUBLE_EQ(bucket.seconds_until(u64{1} << 40), 0.0);
}

// --- migration journal ---

MigrationRecord sample_record() {
  MigrationRecord rec;
  rec.object = "temperature/t042";
  rec.old_generation = 3;
  rec.new_generation = 4;
  rec.old_ft = {9, 6, 3, 1};
  rec.new_ft = {11, 5, 2, 1};
  rec.planned_p = 0.034;
  rec.planned_error = 1.25e-4;
  rec.phase = MigrationPhase::kPlanned;
  rec.levels_written = 2;
  rec.attempts = 1;
  return rec;
}

TEST(MigrationJournal, RecordRoundTrips) {
  MigrationRecord rec = sample_record();
  rec.seq = 17;
  const auto back = MigrationRecord::deserialize(as_bytes_view(rec.serialize()));
  EXPECT_EQ(back.seq, 17u);
  EXPECT_EQ(back.object, rec.object);
  EXPECT_EQ(back.old_generation, 3u);
  EXPECT_EQ(back.new_generation, 4u);
  EXPECT_EQ(back.old_ft, rec.old_ft);
  EXPECT_EQ(back.new_ft, rec.new_ft);
  EXPECT_DOUBLE_EQ(back.planned_p, rec.planned_p);
  EXPECT_DOUBLE_EQ(back.planned_error, rec.planned_error);
  EXPECT_EQ(back.phase, MigrationPhase::kPlanned);
  EXPECT_EQ(back.levels_written, 2u);
  EXPECT_EQ(back.attempts, 1u);
}

TEST(MigrationJournal, AppendUpdateScanAndPending) {
  const std::string dir =
      (fs::temp_directory_path() / "rapids_ctl_journal").string();
  fs::remove_all(dir);
  auto db = kv::Db::open(dir);
  MigrationJournal journal(*db);

  MigrationRecord a = sample_record();
  MigrationRecord b = sample_record();
  b.object = "other";
  EXPECT_EQ(journal.append(a), 1u);
  EXPECT_EQ(journal.append(b), 2u);

  a.phase = MigrationPhase::kDone;
  journal.update(a);

  const auto all = journal.scan();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].seq, 1u);
  EXPECT_EQ(all[0].phase, MigrationPhase::kDone);
  EXPECT_EQ(all[1].seq, 2u);

  const auto open = journal.pending();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].object, "other");

  ASSERT_TRUE(journal.get(2).has_value());
  EXPECT_EQ(journal.get(2)->object, "other");
  EXPECT_FALSE(journal.get(99).has_value());

  db.reset();
  fs::remove_all(dir);
}

TEST(MigrationJournal, SurvivesDbReopenAndResumesSequence) {
  const std::string dir =
      (fs::temp_directory_path() / "rapids_ctl_journal_reopen").string();
  fs::remove_all(dir);
  {
    auto db = kv::Db::open(dir);
    MigrationJournal journal(*db);
    MigrationRecord rec = sample_record();
    journal.append(rec);
    // No flush: the entry must survive on the WAL alone.
  }
  {
    auto db = kv::Db::open(dir);
    MigrationJournal journal(*db);
    EXPECT_EQ(journal.next_seq(), 2u);
    const auto open = journal.pending();
    ASSERT_EQ(open.size(), 1u);
    EXPECT_EQ(open[0].object, "temperature/t042");
    EXPECT_EQ(open[0].levels_written, 2u);
  }
  fs::remove_all(dir);
}

// --- breaker transition callbacks ---

TEST(SystemHealthTransitions, OpenHalfOpenRecoverSequenceFires) {
  storage::HealthOptions opt;
  opt.failure_threshold = 3;
  opt.open_cooldown_events = 4;
  storage::SystemHealth health(2, opt);
  std::vector<std::pair<u32, storage::HealthTransition>> events;
  health.set_transition_callback(
      [&](u32 system, storage::HealthTransition t) {
        events.emplace_back(system, t);
      });

  health.record_failure(1);
  health.record_failure(1);
  EXPECT_TRUE(events.empty());  // below threshold
  health.record_failure(1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, 1u);
  EXPECT_EQ(events[0].second, storage::HealthTransition::kOpened);
  EXPECT_EQ(health.circuit_state(1), storage::CircuitState::kOpen);

  // Cooldown is counted in recorded events across all systems.
  for (int i = 0; i < 4; ++i) health.record_success(0);
  EXPECT_EQ(events.size(), 1u);  // successes on 0 close nothing on 1
  EXPECT_TRUE(health.allow(1));  // cooldown elapsed: half-open probe
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].second, storage::HealthTransition::kHalfOpened);
  EXPECT_EQ(health.circuit_state(1), storage::CircuitState::kHalfOpen);

  health.record_success(1);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].second, storage::HealthTransition::kRecovered);
  EXPECT_EQ(health.circuit_state(1), storage::CircuitState::kClosed);

  // Steady-state successes on a closed circuit must not fire kRecovered.
  health.record_success(1);
  health.record_success(1);
  EXPECT_EQ(events.size(), 3u);
}

TEST(SystemHealthTransitions, FailureDuringHalfOpenReopens) {
  storage::HealthOptions opt;
  opt.failure_threshold = 2;
  opt.open_cooldown_events = 2;
  storage::SystemHealth health(1, opt);
  std::vector<storage::HealthTransition> events;
  health.set_transition_callback(
      [&](u32, storage::HealthTransition t) { events.push_back(t); });

  health.record_failure(0);
  health.record_failure(0);  // threshold: opens here, cooldown starts
  health.record_failure(0);  // while open: counts toward cooldown only
  health.record_failure(0);  // cooldown (2 events since open) elapsed
  EXPECT_TRUE(health.allow(0));
  health.record_failure(0);  // probe fails: straight back to open
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.back(), storage::HealthTransition::kOpened);
  EXPECT_EQ(health.circuit_state(0), storage::CircuitState::kOpen);
}

TEST(SystemHealthTransitions, CallbackSafeUnderExternalLockTsan) {
  // SystemHealth is externally synchronized; the pipeline calls it under its
  // I/O mutex with the transition callback attached. Two threads hammering
  // through a shared mutex with a callback that touches shared state must be
  // race-free — this is the TSan regression for the callback plumbing.
  storage::HealthOptions opt;
  opt.failure_threshold = 2;
  opt.open_cooldown_events = 2;
  storage::SystemHealth health(4, opt);
  std::mutex mu;
  u64 transitions = 0;
  health.set_transition_callback(
      [&](u32, storage::HealthTransition) { ++transitions; });

  const auto worker = [&](u32 seed) {
    for (u32 i = 0; i < 500; ++i) {
      std::lock_guard<std::mutex> lock(mu);
      const u32 sys = (seed + i) % 4;
      if ((i * 2654435761u + seed) % 3 == 0)
        health.record_failure(sys);
      else
        health.record_success(sys);
      (void)health.allow(sys);
    }
  };
  std::thread t1(worker, 1), t2(worker, 2);
  t1.join();
  t2.join();
  EXPECT_GT(transitions, 0u);
}

TEST(SystemHealth, EstimatedFailureProbTracksCountersAndFloorsWhenOpen) {
  storage::HealthOptions opt;
  opt.failure_threshold = 3;
  opt.open_cooldown_events = 1000;
  storage::SystemHealth health(2, opt);

  // No observations: posterior mean equals the prior.
  EXPECT_NEAR(health.estimated_failure_prob(0, 0.01, 20.0), 0.01, 1e-12);

  // 80 successes, 20 (non-consecutive) failures: estimate pulls toward 0.2.
  for (int round = 0; round < 20; ++round) {
    for (int s = 0; s < 4; ++s) health.record_success(0, 1.0);
    health.record_failure(0);
  }
  const f64 est = health.estimated_failure_prob(0, 0.01, 20.0);
  EXPECT_NEAR(est, (20.0 + 20.0 * 0.01) / (100.0 + 20.0), 1e-12);
  EXPECT_EQ(health.circuit_state(0), storage::CircuitState::kClosed);

  // An open breaker floors the estimate at 0.5 regardless of history.
  health.record_failure(1);
  health.record_failure(1);
  health.record_failure(1);
  EXPECT_EQ(health.circuit_state(1), storage::CircuitState::kOpen);
  EXPECT_GE(health.estimated_failure_prob(1, 0.01, 20.0), 0.5);
}

// --- heterogeneous availability math ---

TEST(PoissonBinomial, MatchesBinomialAtUniformP) {
  const u32 n = 16;
  const f64 p = 0.07;
  const std::vector<f64> probs(n, p);
  const auto pmf = core::poisson_binomial_pmf(probs);
  ASSERT_EQ(pmf.size(), n + 1);
  f64 total = 0.0;
  for (u32 i = 0; i <= n; ++i) {
    EXPECT_NEAR(pmf[i], core::binomial_pmf(n, i, p), 1e-12) << "i=" << i;
    total += pmf[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(core::poisson_binomial_range(probs, 0, 4),
              core::binomial_range(n, 0, 4, p), 1e-12);
}

TEST(PoissonBinomial, HeteroExpectedErrorReducesToHomogeneous) {
  const u32 n = 16;
  const f64 p = 0.03;
  const std::vector<f64> probs(n, p);
  const std::vector<f64> errors{4e-3, 5e-4, 6e-5, 1e-6};
  const core::FtConfig m{9, 6, 3, 1};
  EXPECT_NEAR(core::expected_relative_error_hetero(probs, errors, m),
              core::expected_relative_error(n, p, errors, m), 1e-12);
}

TEST(PoissonBinomial, DegradedSystemLowersLevelAvailability) {
  std::vector<f64> probs(16, 0.01);
  const f64 healthy = core::ft_level_availability(probs, 2);
  probs[3] = 0.6;
  probs[7] = 0.4;
  const f64 degraded = core::ft_level_availability(probs, 2);
  EXPECT_LT(degraded, healthy);
  EXPECT_GT(degraded, 0.0);
  // More parity strictly helps under the same probabilities.
  EXPECT_GT(core::ft_level_availability(probs, 6), degraded);
}

// --- evaluate / re-optimize ---

core::FtProblem drill_problem() {
  core::FtProblem pr;
  pr.n = 16;
  pr.p = 0.01;
  pr.level_sizes = {1u << 20, 2u << 20, 4u << 20, 8u << 20};
  pr.level_errors = {4e-3, 5e-4, 6e-5, 1e-6};
  pr.original_size = 32u << 20;
  pr.overhead_budget = 0.6;
  return pr;
}

TEST(FtReoptimize, EvaluateScoresWhatOptimizeChose) {
  const auto pr = drill_problem();
  const auto sol = core::ft_optimize_heuristic(pr);
  ASSERT_TRUE(sol.has_value());
  const auto scored = core::ft_evaluate(pr, sol->m);
  EXPECT_DOUBLE_EQ(scored.expected_error, sol->expected_error);
  EXPECT_DOUBLE_EQ(scored.storage_overhead, sol->storage_overhead);
}

TEST(FtReoptimize, NoDriftNoChange) {
  const auto pr = drill_problem();
  const auto sol = core::ft_optimize_heuristic(pr);
  ASSERT_TRUE(sol.has_value());
  const auto re = core::ft_reoptimize(pr, sol->m);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ(re->m, sol->m);
  EXPECT_DOUBLE_EQ(re->expected_error, sol->expected_error);
}

TEST(FtReoptimize, DriftedSystemsImproveOnStaleConfig) {
  auto pr = drill_problem();
  const auto cold = core::ft_optimize_heuristic(pr);
  ASSERT_TRUE(cold.has_value());

  // Two systems degrade badly after ingest.
  pr.system_p.assign(pr.n, 0.01);
  pr.system_p[2] = 0.35;
  pr.system_p[9] = 0.20;

  const f64 stale = core::ft_evaluate(pr, cold->m).expected_error;
  const auto re = core::ft_reoptimize(pr, cold->m);
  ASSERT_TRUE(re.has_value());
  EXPECT_LE(re->expected_error, stale);
  EXPECT_LE(re->storage_overhead, pr.overhead_budget + 1e-12);
  EXPECT_TRUE(core::valid_ft_config(pr.n, re->m));
}

TEST(FtReoptimize, WarmStartNeverWorseThanCurrent) {
  auto pr = drill_problem();
  pr.system_p.assign(pr.n, 0.01);
  pr.system_p[0] = 0.5;
  // A deliberately weak current config (minimal chain).
  const core::FtConfig weak{4, 3, 2, 1};
  const f64 weak_error = core::ft_evaluate(pr, weak).expected_error;
  const auto re = core::ft_reoptimize(pr, weak);
  ASSERT_TRUE(re.has_value());
  EXPECT_LE(re->expected_error, weak_error);
}

// --- generation-tagged restore cache ---

Bytes fill(std::size_t n, u8 v) { return Bytes(n, std::byte{v}); }

TEST(RestoreCacheGenerations, GenerationsAreDistinctKeys) {
  storage::RestoreCache cache(4096);
  cache.put("a", 0, 0, fill(64, 1));
  cache.put("a", 1, 0, fill(64, 2));
  Bytes out;
  ASSERT_EQ(cache.get("a", 0, 0, out), storage::RestoreCache::Outcome::kHit);
  EXPECT_EQ(out, fill(64, 1));
  ASSERT_EQ(cache.get("a", 1, 0, out), storage::RestoreCache::Outcome::kHit);
  EXPECT_EQ(out, fill(64, 2));
  EXPECT_EQ(cache.get("a", 2, 0, out), storage::RestoreCache::Outcome::kMiss);
}

TEST(RestoreCacheGenerations, InvalidateDropsEveryGeneration) {
  storage::RestoreCache cache(4096);
  cache.put("a", 0, 0, fill(32, 1));
  cache.put("a", 1, 0, fill(32, 2));
  cache.put("a", 7, 3, fill(32, 3));
  cache.put("b", 1, 0, fill(32, 4));
  cache.invalidate("a");
  Bytes out;
  EXPECT_EQ(cache.get("a", 0, 0, out), storage::RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.get("a", 1, 0, out), storage::RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.get("a", 7, 3, out), storage::RestoreCache::Outcome::kMiss);
  EXPECT_EQ(cache.get("b", 1, 0, out), storage::RestoreCache::Outcome::kHit);
}

TEST(RestoreCacheGenerations, InvalidateFromFiltersLevelAcrossGenerations) {
  storage::RestoreCache cache(4096);
  for (u32 gen = 0; gen < 3; ++gen)
    for (u32 level = 0; level < 4; ++level)
      cache.put("a", gen, level, fill(16, u8(gen * 4 + level)));
  cache.invalidate_from("a", 2);
  Bytes out;
  for (u32 gen = 0; gen < 3; ++gen) {
    EXPECT_EQ(cache.get("a", gen, 0, out),
              storage::RestoreCache::Outcome::kHit);
    EXPECT_EQ(cache.get("a", gen, 1, out),
              storage::RestoreCache::Outcome::kHit);
    EXPECT_EQ(cache.get("a", gen, 2, out),
              storage::RestoreCache::Outcome::kMiss);
    EXPECT_EQ(cache.get("a", gen, 3, out),
              storage::RestoreCache::Outcome::kMiss);
  }
}

// --- storage key sweep ---

TEST(StorageSystemPrefix, KeysWithPrefixFindsFragmentsWhileDown) {
  storage::StorageSystem sys(0, "s0", 1e9, 0.01);
  const auto frag_with_key = [](const std::string& name, u32 level, u32 idx) {
    ec::Fragment f;
    f.id = ec::FragmentId{name, level, idx};
    f.k = 2;
    f.m = 1;
    f.payload = {u8{1}, u8{2}};
    f.level_bytes = 4;
    f.payload_crc = crc32c(as_bytes_view(f.payload));
    return f;
  };
  sys.put(frag_with_key("obj@g1", 0, 0));
  sys.put(frag_with_key("obj@g1", 1, 0));
  sys.put(frag_with_key("obj", 0, 0));
  const auto gen1 = sys.keys_with_prefix("frag/obj@g1/");
  ASSERT_EQ(gen1.size(), 2u);
  EXPECT_EQ(gen1[0], "frag/obj@g1/0/0");
  EXPECT_EQ(gen1[1], "frag/obj@g1/1/0");

  // Metadata knowledge survives an outage, like has().
  sys.set_available(false);
  EXPECT_EQ(sys.keys_with_prefix("frag/obj@g1/").size(), 2u);
  EXPECT_EQ(sys.keys_with_prefix("frag/none/").size(), 0u);
}

// --- batched deletes ---

TEST(DbDeleteBatch, TombstonesApplyAndSurviveReopen) {
  const std::string dir =
      (fs::temp_directory_path() / "rapids_ctl_delbatch").string();
  fs::remove_all(dir);
  {
    auto db = kv::Db::open(dir);
    db->put("k/1", "a");
    db->put("k/2", "b");
    db->put("k/3", "c");
    const std::vector<std::string> victims{"k/1", "k/3"};
    db->del_batch(victims);
    EXPECT_FALSE(db->get("k/1").has_value());
    EXPECT_TRUE(db->get("k/2").has_value());
    EXPECT_FALSE(db->get("k/3").has_value());
    // No flush: tombstones must replay from the WAL.
  }
  {
    auto db = kv::Db::open(dir);
    EXPECT_FALSE(db->get("k/1").has_value());
    ASSERT_TRUE(db->get("k/2").has_value());
    EXPECT_EQ(*db->get("k/2"), "b");
    EXPECT_FALSE(db->get("k/3").has_value());
    EXPECT_EQ(db->scan_prefix("k/").size(), 1u);
  }
  fs::remove_all(dir);
}

// --- ObjectRecord v2 wire compatibility ---

struct RecordWorld {
  RecordWorld()
      : dir((fs::temp_directory_path() / "rapids_ctl_record").string()),
        cluster(storage::ClusterConfig{16, 0.01, 7}) {
    fs::remove_all(dir);
    db = kv::Db::open(dir);
    core::PipelineConfig cfg;
    cfg.refactor.decomp_levels = 3;
    cfg.refactor.num_retrieval_levels = 4;
    cfg.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-6};
    cfg.aco.iterations = 20;
    pipeline = std::make_unique<core::RapidsPipeline>(cluster, *db, cfg);
  }
  ~RecordWorld() {
    pipeline.reset();
    db.reset();
    fs::remove_all(dir);
  }
  std::string dir;
  storage::Cluster cluster;
  std::unique_ptr<kv::Db> db;
  std::unique_ptr<core::RapidsPipeline> pipeline;
};

TEST(ObjectRecordWire, V2RoundTripsGenerationAndPlan) {
  RecordWorld w;
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 3);
  w.pipeline->prepare(field, dims, "obj");
  const auto rec = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->generation, 0u);
  EXPECT_GT(rec->planned_p, 0.0);
  EXPECT_GT(rec->planned_error, 0.0);

  core::ObjectRecord copy = *rec;
  copy.generation = 5;
  copy.planned_p = 0.2;
  copy.planned_error = 3e-3;
  const auto back =
      core::ObjectRecord::deserialize(as_bytes_view(copy.serialize()));
  EXPECT_EQ(back.generation, 5u);
  EXPECT_DOUBLE_EQ(back.planned_p, 0.2);
  EXPECT_DOUBLE_EQ(back.planned_error, 3e-3);
  EXPECT_EQ(back.ft, rec->ft);
}

TEST(ObjectRecordWire, V1RecordsDeserializeWithDefaults) {
  RecordWorld w;
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 4);
  w.pipeline->prepare(field, dims, "obj");
  const auto rec = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(rec.has_value());

  // A v1 record is the v2 wire minus the 20-byte control-plane tail
  // (u32 generation + 2 x f64), with the version field patched to 1.
  Bytes v2 = rec->serialize();
  ASSERT_GT(v2.size(), 26u);
  Bytes v1(v2.begin(), v2.end() - 20);
  v1[4] = std::byte{1};  // u16 version, little-endian, after the u32 magic
  v1[5] = std::byte{0};

  const auto back = core::ObjectRecord::deserialize(as_bytes_view(v1));
  EXPECT_EQ(back.generation, 0u);
  EXPECT_DOUBLE_EQ(back.planned_p, 0.0);
  EXPECT_DOUBLE_EQ(back.planned_error, 0.0);
  EXPECT_EQ(back.ft, rec->ft);
  EXPECT_EQ(back.level_sizes, rec->level_sizes);
}

// --- two-phase migration primitives ---

TEST(MigrationPrimitives, GenerationStorageNames) {
  EXPECT_EQ(core::generation_storage_name("obj", 0), "obj");
  EXPECT_EQ(core::generation_storage_name("obj", 1), "obj@g1");
  EXPECT_EQ(core::generation_storage_name("obj", 12), "obj@g12");
}

TEST(MigrationPrimitives, StoreFlipGcRoundTripIsByteIdentical) {
  RecordWorld w;
  const Dims dims{17, 17, 9};
  const auto field = data::hurricane_pressure(dims, 11);
  w.pipeline->prepare(field, dims, "obj");
  const auto before = w.pipeline->restore("obj");
  ASSERT_EQ(before.levels_used, 4u);

  const auto rec = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(rec.has_value());
  core::FtConfig new_ft = rec->ft;
  new_ft[0] += 1;  // still strictly decreasing
  ASSERT_TRUE(core::valid_ft_config(16, new_ft));

  // Phase 1: re-encode every level under generation 1. The live object must
  // keep restoring identically throughout.
  for (u32 level = 0; level < 4; ++level) {
    u64 wan = 0;
    const Bytes payload = w.pipeline->fetch_level_payload("obj", level, &wan);
    ASSERT_FALSE(payload.empty());
    const u64 shipped = w.pipeline->store_level_generation(
        "obj", 1, level, new_ft[level], payload);
    EXPECT_GT(shipped, 0u);
  }
  const auto mid = w.pipeline->restore("obj");
  EXPECT_EQ(mid.data, before.data);

  // Idempotent replay of phase 1 (the crash-resume path).
  {
    const Bytes payload = w.pipeline->fetch_level_payload("obj", 2);
    w.pipeline->store_level_generation("obj", 1, 2, new_ft[2], payload);
  }

  // Phase 2: atomic flip, then the old generation is garbage.
  w.pipeline->flip_generation("obj", 1, new_ft, 0.05, 1e-4);
  const auto flipped_rec = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(flipped_rec.has_value());
  EXPECT_EQ(flipped_rec->generation, 1u);
  EXPECT_EQ(flipped_rec->ft, new_ft);
  EXPECT_DOUBLE_EQ(flipped_rec->planned_p, 0.05);
  const auto after = w.pipeline->restore("obj");
  EXPECT_EQ(after.data, before.data);

  // Phase 3: GC the old generation; restores still serve generation 1.
  const u64 erased = w.pipeline->gc_generation("obj", 0);
  EXPECT_GT(erased, 0u);
  EXPECT_EQ(w.pipeline->gc_generation("obj", 0), 0u);  // idempotent
  const auto final_restore = w.pipeline->restore("obj");
  EXPECT_EQ(final_restore.data, before.data);

  // The live generation is protected from GC.
  EXPECT_THROW(w.pipeline->gc_generation("obj", 1), invariant_error);
}

TEST(MigrationPrimitives, PrepareOverwriteDropsPriorGenerations) {
  RecordWorld w;
  const Dims dims{17, 17, 9};
  const auto field = data::scale_temperature(dims, 9);
  w.pipeline->prepare(field, dims, "obj");
  const auto rec = w.pipeline->snapshot_record("obj");
  core::FtConfig new_ft = rec->ft;
  new_ft[0] += 1;
  for (u32 level = 0; level < 4; ++level) {
    const Bytes payload = w.pipeline->fetch_level_payload("obj", level);
    w.pipeline->store_level_generation("obj", 1, level, new_ft[level],
                                       payload);
  }
  w.pipeline->flip_generation("obj", 1, new_ft, 0.01, 1e-4);

  // Re-preparing the object starts over at generation 0 and must leave no
  // generation-1 fragments behind.
  w.pipeline->prepare(field, dims, "obj");
  const auto fresh = w.pipeline->snapshot_record("obj");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->generation, 0u);
  for (u32 s = 0; s < w.cluster.size(); ++s)
    EXPECT_TRUE(w.cluster.system(s).keys_with_prefix("frag/obj@g1/").empty())
        << "system " << s;
  const auto report = w.pipeline->restore("obj");
  EXPECT_EQ(report.levels_used, 4u);
}

}  // namespace
}  // namespace rapids
