# Empty compiler generated dependencies file for rapids.
# This may be replaced when dependencies are built.
