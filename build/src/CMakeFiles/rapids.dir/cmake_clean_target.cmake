file(REMOVE_RECURSE
  "librapids.a"
)
