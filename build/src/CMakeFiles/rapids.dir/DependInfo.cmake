
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapids/core/availability.cpp" "src/CMakeFiles/rapids.dir/rapids/core/availability.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/core/availability.cpp.o.d"
  "/root/repo/src/rapids/core/baselines.cpp" "src/CMakeFiles/rapids.dir/rapids/core/baselines.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/core/baselines.cpp.o.d"
  "/root/repo/src/rapids/core/ft_optimizer.cpp" "src/CMakeFiles/rapids.dir/rapids/core/ft_optimizer.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/core/ft_optimizer.cpp.o.d"
  "/root/repo/src/rapids/core/gather.cpp" "src/CMakeFiles/rapids.dir/rapids/core/gather.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/core/gather.cpp.o.d"
  "/root/repo/src/rapids/core/pipeline.cpp" "src/CMakeFiles/rapids.dir/rapids/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/core/pipeline.cpp.o.d"
  "/root/repo/src/rapids/data/datasets.cpp" "src/CMakeFiles/rapids.dir/rapids/data/datasets.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/data/datasets.cpp.o.d"
  "/root/repo/src/rapids/data/field_generators.cpp" "src/CMakeFiles/rapids.dir/rapids/data/field_generators.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/data/field_generators.cpp.o.d"
  "/root/repo/src/rapids/data/noise.cpp" "src/CMakeFiles/rapids.dir/rapids/data/noise.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/data/noise.cpp.o.d"
  "/root/repo/src/rapids/data/raw_io.cpp" "src/CMakeFiles/rapids.dir/rapids/data/raw_io.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/data/raw_io.cpp.o.d"
  "/root/repo/src/rapids/data/stats.cpp" "src/CMakeFiles/rapids.dir/rapids/data/stats.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/data/stats.cpp.o.d"
  "/root/repo/src/rapids/ec/fragment.cpp" "src/CMakeFiles/rapids.dir/rapids/ec/fragment.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/ec/fragment.cpp.o.d"
  "/root/repo/src/rapids/ec/gf256.cpp" "src/CMakeFiles/rapids.dir/rapids/ec/gf256.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/ec/gf256.cpp.o.d"
  "/root/repo/src/rapids/ec/matrix.cpp" "src/CMakeFiles/rapids.dir/rapids/ec/matrix.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/ec/matrix.cpp.o.d"
  "/root/repo/src/rapids/ec/reed_solomon.cpp" "src/CMakeFiles/rapids.dir/rapids/ec/reed_solomon.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/ec/reed_solomon.cpp.o.d"
  "/root/repo/src/rapids/fsdf/fsdf.cpp" "src/CMakeFiles/rapids.dir/rapids/fsdf/fsdf.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/fsdf/fsdf.cpp.o.d"
  "/root/repo/src/rapids/kvstore/db.cpp" "src/CMakeFiles/rapids.dir/rapids/kvstore/db.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/kvstore/db.cpp.o.d"
  "/root/repo/src/rapids/kvstore/memtable.cpp" "src/CMakeFiles/rapids.dir/rapids/kvstore/memtable.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/kvstore/memtable.cpp.o.d"
  "/root/repo/src/rapids/kvstore/replicated_db.cpp" "src/CMakeFiles/rapids.dir/rapids/kvstore/replicated_db.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/kvstore/replicated_db.cpp.o.d"
  "/root/repo/src/rapids/kvstore/sorted_run.cpp" "src/CMakeFiles/rapids.dir/rapids/kvstore/sorted_run.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/kvstore/sorted_run.cpp.o.d"
  "/root/repo/src/rapids/kvstore/wal.cpp" "src/CMakeFiles/rapids.dir/rapids/kvstore/wal.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/kvstore/wal.cpp.o.d"
  "/root/repo/src/rapids/mgard/bitplane.cpp" "src/CMakeFiles/rapids.dir/rapids/mgard/bitplane.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/mgard/bitplane.cpp.o.d"
  "/root/repo/src/rapids/mgard/decompose.cpp" "src/CMakeFiles/rapids.dir/rapids/mgard/decompose.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/mgard/decompose.cpp.o.d"
  "/root/repo/src/rapids/mgard/grid.cpp" "src/CMakeFiles/rapids.dir/rapids/mgard/grid.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/mgard/grid.cpp.o.d"
  "/root/repo/src/rapids/mgard/refactorer.cpp" "src/CMakeFiles/rapids.dir/rapids/mgard/refactorer.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/mgard/refactorer.cpp.o.d"
  "/root/repo/src/rapids/mgard/retrieval.cpp" "src/CMakeFiles/rapids.dir/rapids/mgard/retrieval.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/mgard/retrieval.cpp.o.d"
  "/root/repo/src/rapids/net/bandwidth.cpp" "src/CMakeFiles/rapids.dir/rapids/net/bandwidth.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/net/bandwidth.cpp.o.d"
  "/root/repo/src/rapids/net/bandwidth_tracker.cpp" "src/CMakeFiles/rapids.dir/rapids/net/bandwidth_tracker.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/net/bandwidth_tracker.cpp.o.d"
  "/root/repo/src/rapids/net/transfer_sim.cpp" "src/CMakeFiles/rapids.dir/rapids/net/transfer_sim.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/net/transfer_sim.cpp.o.d"
  "/root/repo/src/rapids/parallel/thread_pool.cpp" "src/CMakeFiles/rapids.dir/rapids/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/rapids/perf/accelerator_model.cpp" "src/CMakeFiles/rapids.dir/rapids/perf/accelerator_model.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/perf/accelerator_model.cpp.o.d"
  "/root/repo/src/rapids/perf/calibration.cpp" "src/CMakeFiles/rapids.dir/rapids/perf/calibration.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/perf/calibration.cpp.o.d"
  "/root/repo/src/rapids/perf/scaling_model.cpp" "src/CMakeFiles/rapids.dir/rapids/perf/scaling_model.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/perf/scaling_model.cpp.o.d"
  "/root/repo/src/rapids/solver/aco.cpp" "src/CMakeFiles/rapids.dir/rapids/solver/aco.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/solver/aco.cpp.o.d"
  "/root/repo/src/rapids/storage/cluster.cpp" "src/CMakeFiles/rapids.dir/rapids/storage/cluster.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/storage/cluster.cpp.o.d"
  "/root/repo/src/rapids/storage/failure.cpp" "src/CMakeFiles/rapids.dir/rapids/storage/failure.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/storage/failure.cpp.o.d"
  "/root/repo/src/rapids/storage/placement.cpp" "src/CMakeFiles/rapids.dir/rapids/storage/placement.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/storage/placement.cpp.o.d"
  "/root/repo/src/rapids/storage/storage_system.cpp" "src/CMakeFiles/rapids.dir/rapids/storage/storage_system.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/storage/storage_system.cpp.o.d"
  "/root/repo/src/rapids/util/bytes.cpp" "src/CMakeFiles/rapids.dir/rapids/util/bytes.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/util/bytes.cpp.o.d"
  "/root/repo/src/rapids/util/crc32c.cpp" "src/CMakeFiles/rapids.dir/rapids/util/crc32c.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/util/crc32c.cpp.o.d"
  "/root/repo/src/rapids/util/logging.cpp" "src/CMakeFiles/rapids.dir/rapids/util/logging.cpp.o" "gcc" "src/CMakeFiles/rapids.dir/rapids/util/logging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
