# Empty dependencies file for fig2_quality_vs_overhead.
# This may be replaced when dependencies are built.
