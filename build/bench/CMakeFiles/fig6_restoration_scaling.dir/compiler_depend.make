# Empty compiler generated dependencies file for fig6_restoration_scaling.
# This may be replaced when dependencies are built.
