file(REMOVE_RECURSE
  "CMakeFiles/table5_restoration_overall.dir/table5_restoration_overall.cpp.o"
  "CMakeFiles/table5_restoration_overall.dir/table5_restoration_overall.cpp.o.d"
  "table5_restoration_overall"
  "table5_restoration_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_restoration_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
