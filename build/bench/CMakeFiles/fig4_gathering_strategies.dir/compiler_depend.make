# Empty compiler generated dependencies file for fig4_gathering_strategies.
# This may be replaced when dependencies are built.
