file(REMOVE_RECURSE
  "CMakeFiles/fig4_gathering_strategies.dir/fig4_gathering_strategies.cpp.o"
  "CMakeFiles/fig4_gathering_strategies.dir/fig4_gathering_strategies.cpp.o.d"
  "fig4_gathering_strategies"
  "fig4_gathering_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gathering_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
