file(REMOVE_RECURSE
  "CMakeFiles/table3_ft_optimization.dir/table3_ft_optimization.cpp.o"
  "CMakeFiles/table3_ft_optimization.dir/table3_ft_optimization.cpp.o.d"
  "table3_ft_optimization"
  "table3_ft_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ft_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
