# Empty dependencies file for table3_ft_optimization.
# This may be replaced when dependencies are built.
