file(REMOVE_RECURSE
  "CMakeFiles/fig3_distribution_latency.dir/fig3_distribution_latency.cpp.o"
  "CMakeFiles/fig3_distribution_latency.dir/fig3_distribution_latency.cpp.o.d"
  "fig3_distribution_latency"
  "fig3_distribution_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_distribution_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
