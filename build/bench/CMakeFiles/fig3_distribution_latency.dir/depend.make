# Empty dependencies file for fig3_distribution_latency.
# This may be replaced when dependencies are built.
