# Empty dependencies file for fig7_accelerator_throughput.
# This may be replaced when dependencies are built.
