file(REMOVE_RECURSE
  "CMakeFiles/fig7_accelerator_throughput.dir/fig7_accelerator_throughput.cpp.o"
  "CMakeFiles/fig7_accelerator_throughput.dir/fig7_accelerator_throughput.cpp.o.d"
  "fig7_accelerator_throughput"
  "fig7_accelerator_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_accelerator_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
