file(REMOVE_RECURSE
  "CMakeFiles/table4_preparation_overall.dir/table4_preparation_overall.cpp.o"
  "CMakeFiles/table4_preparation_overall.dir/table4_preparation_overall.cpp.o.d"
  "table4_preparation_overall"
  "table4_preparation_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_preparation_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
