# Empty dependencies file for rapids_cli.
# This may be replaced when dependencies are built.
