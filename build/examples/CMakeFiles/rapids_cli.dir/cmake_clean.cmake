file(REMOVE_RECURSE
  "CMakeFiles/rapids_cli.dir/rapids_cli.cpp.o"
  "CMakeFiles/rapids_cli.dir/rapids_cli.cpp.o.d"
  "rapids_cli"
  "rapids_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapids_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
