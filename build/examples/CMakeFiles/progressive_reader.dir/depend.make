# Empty dependencies file for progressive_reader.
# This may be replaced when dependencies are built.
