file(REMOVE_RECURSE
  "CMakeFiles/progressive_reader.dir/progressive_reader.cpp.o"
  "CMakeFiles/progressive_reader.dir/progressive_reader.cpp.o.d"
  "progressive_reader"
  "progressive_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
