# Empty dependencies file for campaign_aging.
# This may be replaced when dependencies are built.
