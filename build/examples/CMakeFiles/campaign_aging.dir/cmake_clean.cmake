file(REMOVE_RECURSE
  "CMakeFiles/campaign_aging.dir/campaign_aging.cpp.o"
  "CMakeFiles/campaign_aging.dir/campaign_aging.cpp.o.d"
  "campaign_aging"
  "campaign_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
