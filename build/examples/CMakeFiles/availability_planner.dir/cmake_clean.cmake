file(REMOVE_RECURSE
  "CMakeFiles/availability_planner.dir/availability_planner.cpp.o"
  "CMakeFiles/availability_planner.dir/availability_planner.cpp.o.d"
  "availability_planner"
  "availability_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
