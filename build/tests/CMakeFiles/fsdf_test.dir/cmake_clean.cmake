file(REMOVE_RECURSE
  "CMakeFiles/fsdf_test.dir/fsdf_test.cpp.o"
  "CMakeFiles/fsdf_test.dir/fsdf_test.cpp.o.d"
  "fsdf_test"
  "fsdf_test.pdb"
  "fsdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
