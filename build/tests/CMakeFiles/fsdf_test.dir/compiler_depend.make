# Empty compiler generated dependencies file for fsdf_test.
# This may be replaced when dependencies are built.
