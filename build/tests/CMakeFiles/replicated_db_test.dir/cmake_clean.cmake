file(REMOVE_RECURSE
  "CMakeFiles/replicated_db_test.dir/replicated_db_test.cpp.o"
  "CMakeFiles/replicated_db_test.dir/replicated_db_test.cpp.o.d"
  "replicated_db_test"
  "replicated_db_test.pdb"
  "replicated_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
