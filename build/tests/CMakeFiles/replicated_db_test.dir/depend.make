# Empty dependencies file for replicated_db_test.
# This may be replaced when dependencies are built.
