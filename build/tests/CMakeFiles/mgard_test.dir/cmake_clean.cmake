file(REMOVE_RECURSE
  "CMakeFiles/mgard_test.dir/mgard_test.cpp.o"
  "CMakeFiles/mgard_test.dir/mgard_test.cpp.o.d"
  "mgard_test"
  "mgard_test.pdb"
  "mgard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
