# Empty compiler generated dependencies file for mgard_test.
# This may be replaced when dependencies are built.
