file(REMOVE_RECURSE
  "CMakeFiles/ft_optimizer_test.dir/ft_optimizer_test.cpp.o"
  "CMakeFiles/ft_optimizer_test.dir/ft_optimizer_test.cpp.o.d"
  "ft_optimizer_test"
  "ft_optimizer_test.pdb"
  "ft_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
