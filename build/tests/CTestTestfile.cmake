# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/mgard_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/replicated_db_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/fsdf_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/availability_test[1]_include.cmake")
include("/root/repo/build/tests/ft_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/gather_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
