#!/usr/bin/env bash
# Sanitizer sweep over the concurrency- and fault-sensitive test suites.
#
# Two build trees (ASan+UBSan and TSan cannot share one binary):
#   build-asan : -DRAPIDS_SANITIZE=address,undefined
#   build-tsan : -DRAPIDS_SANITIZE=thread
#
# Each runs the parallel executor tests, the batch/pipeline suites, and the
# chaos suite (ctest label `chaos`), where the data races worth finding live:
# concurrent prepare/restore/scrub under fault injection and availability
# flips from failure drills.
#
# Usage: scripts/sanitize.sh [asan|tsan|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 4)"
# The suites where shared mutable state is exercised; everything else is
# covered by the plain tier-1 run. kernel_test and mgard_test ride along for
# the vectorized refactor kernels: ASan/UBSan over the intrinsics paths and
# TSan over the panel-parallel sweeps.
SUITES=(parallel_test pipeline_test pipeline_batch_test progressive_test storage_test
        fault_injector_test chaos_test kernel_test mgard_test streaming_test
        control_test control_chaos_test service_test service_chaos_test)

run_tree() {
  local dir="$1" sanitize="$2"
  echo "=== ${dir}: -DRAPIDS_SANITIZE=${sanitize} ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRAPIDS_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target "${SUITES[@]}"
  local t
  for t in "${SUITES[@]}"; do
    echo "--- ${dir}/tests/${t}"
    "${dir}/tests/${t}"
  done
  # Whole-transform round trip with the dispatcher pinned to the scalar
  # reference tier — proves the env-var escape hatch still covers the full
  # refactor path after the vectorized kernels landed.
  echo "--- ${dir}/tests/kernel_test (RAPIDS_FORCE_SCALAR=1)"
  RAPIDS_FORCE_SCALAR=1 "${dir}/tests/kernel_test" \
    --gtest_filter='Transform.*:Planes.*:Levels.*:Codec.*'
}

case "${MODE}" in
  asan) run_tree build-asan "address,undefined" ;;
  tsan) TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
          run_tree build-tsan "thread" ;;
  all)
    run_tree build-asan "address,undefined"
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" run_tree build-tsan "thread"
    ;;
  *) echo "usage: $0 [asan|tsan|all]" >&2; exit 2 ;;
esac

echo "sanitize: all requested trees passed"
