// rapids_cli — drive the full pipeline from the command line against a
// persistent on-disk workspace (metadata DB + per-system fragment
// directories), so prepare / outage / restore can happen across separate
// process runs, like the real deployment the paper describes.
//
//   rapids_cli generate <label> <nx> <ny> <nz> <out.f32> [seed]
//       synthesize a field (labels: NYX:temperature, NYX:velocity_x,
//       SCALE:PRES, SCALE:T, hurricane:Pf48.bin, hurricane:TCf48.bin)
//   rapids_cli prepare <workspace> <in.f32> <nx> <ny> <nz> <name> [budget]
//       refactor + optimize + erasure-code + distribute + record metadata
//   rapids_cli restore <workspace> <name> <out.f32> [down,sys,ids]
//       plan gathering, fetch, decode, reconstruct under the given outages
//   rapids_cli refine <workspace> <name> <out_prefix> <bound[,bound...]> [down,sys,ids]
//       walk a refinement ladder in one session: each bound fetches only the
//       retrieval levels past the previous rung and decodes only the new
//       bitplanes; rung r's field goes to <out_prefix>.r.f32
//   rapids_cli info <workspace> [name]
//       list objects, or show one object's configuration and level profile
//   rapids_cli status <workspace>
//       control-plane view: per-system breaker state and failure-probability
//       estimates, per-object availability under those estimates, the
//       migration journal (pending vs completed background migrations), and
//       the last recorded multi-tenant service run (per-tenant admit/shed/
//       brownout counters and saturation state)
//   rapids_cli serve <workspace> [tenants] [seconds] [overload] [seed]
//       drive the multi-tenant object service over a seeded open-loop
//       arrival schedule (overload = offered load as a multiple of
//       capacity), print per-tenant admission/shed/brownout accounting,
//       and persist the snapshot for `status`
//
// Example session:
//   rapids_cli generate SCALE:PRES 65 65 33 pres.f32
//   rapids_cli prepare ws pres.f32 65 65 33 run1/PRES 0.4
//   rapids_cli restore ws run1/PRES out.f32 3,11
//   rapids_cli refine ws run1/PRES out 4e-3,5e-4,1e-6
//   rapids_cli info ws run1/PRES

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>

#include "rapids/rapids.hpp"

using namespace rapids;

namespace {

constexpr u32 kSystems = 16;
constexpr u64 kClusterSeed = 2023;

/// Open the workspace: metadata DB plus a directory-backed cluster whose
/// bandwidths are reproducible from the fixed seed.
struct Workspace {
  std::unique_ptr<kv::Db> db;
  std::unique_ptr<storage::Cluster> cluster;
};

Workspace open_workspace(const std::string& dir) {
  Workspace ws;
  ws.db = kv::Db::open(dir + "/db");
  ws.cluster = std::make_unique<storage::Cluster>(
      storage::ClusterConfig{kSystems, 0.01, kClusterSeed});
  for (u32 i = 0; i < kSystems; ++i)
    ws.cluster->system(i).attach_directory(dir + "/sys" + std::to_string(i));
  return ws;
}

mgard::Dims parse_dims(char** argv, int at) {
  return mgard::Dims{std::strtoull(argv[at], nullptr, 10),
                     std::strtoull(argv[at + 1], nullptr, 10),
                     std::strtoull(argv[at + 2], nullptr, 10)};
}

/// Print the entropy-codec substage line of a prepare/restore breakdown:
/// segment wall time, payload bytes, and the per-mode segment histogram.
void print_codec_stats(const char* verb, const mgard::CodecStats& cs) {
  if (cs.segments == 0) return;
  std::printf("    entropy codec: %s %.4fs, %llu bytes across %llu segments "
              "(raw %llu, sparse %llu, zero %llu, rice %llu)\n",
              verb, cs.seconds, (unsigned long long)cs.bytes,
              (unsigned long long)cs.segments, (unsigned long long)cs.mode_raw,
              (unsigned long long)cs.mode_sparse,
              (unsigned long long)cs.mode_zero,
              (unsigned long long)cs.mode_rice);
}

int cmd_generate(int argc, char** argv) {
  if (argc < 7) {
    std::fprintf(stderr, "usage: rapids_cli generate <label> <nx> <ny> <nz> <out.f32> [seed]\n");
    return 2;
  }
  const std::string label = argv[2];
  const mgard::Dims dims = parse_dims(argv, 3);
  const u64 seed = argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 42;
  auto obj = data::find_object(label, 1);
  obj.seed = seed;
  ThreadPool pool;
  const auto field = obj.generate(dims, &pool);
  data::save_f32(argv[6], field);
  const auto st = data::field_stats(field);
  std::printf("wrote %s: %llux%llux%llu f32, range [%.4g, %.4g]\n", argv[6],
              (unsigned long long)dims.nx, (unsigned long long)dims.ny,
              (unsigned long long)dims.nz, st.min, st.max);
  return 0;
}

int cmd_prepare(int argc, char** argv) {
  if (argc < 8) {
    std::fprintf(stderr,
                 "usage: rapids_cli prepare <workspace> <in.f32> <nx> <ny> <nz> "
                 "<name> [budget]\n");
    return 2;
  }
  const std::string wsdir = argv[2];
  const mgard::Dims dims = parse_dims(argv, 4);
  const std::string name = argv[7];
  const f64 budget = argc > 8 ? std::strtod(argv[8], nullptr) : 0.5;

  const auto field = data::load_f32(argv[3], dims);
  auto ws = open_workspace(wsdir);
  ThreadPool pool;
  core::PipelineConfig config;
  config.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  config.overhead_budget = budget;
  core::RapidsPipeline pipeline(*ws.cluster, *ws.db, config, &pool);
  const auto report = pipeline.prepare(field, dims, name);

  std::printf("prepared %s\n", name.c_str());
  std::printf("  fault tolerance: [");
  for (std::size_t j = 0; j < report.record.ft.size(); ++j)
    std::printf("%s%u", j ? "," : "", report.record.ft[j]);
  std::printf("]  (budget %.2f, used %.3f)\n", budget, report.storage_overhead);
  std::printf("  expected rel L-inf error: %.3e\n", report.expected_error);
  std::printf("  fragments: %llu across %u systems under %s/sys*/\n",
              (unsigned long long)report.fragments_stored, kSystems,
              wsdir.c_str());
  std::printf("  timings: refactor %.2fs (transform %.2fs, planes %.2fs), "
              "optimize %.4fs, encode %.2fs, store %.2fs\n",
              report.refactor_seconds, report.transform_seconds,
              report.plane_encode_seconds, report.optimize_seconds,
              report.encode_seconds, report.store_seconds);
  print_codec_stats("encode", report.plane_codec);
  std::printf("  streaming: %u level%s overlapped encode/store; simulated "
              "end-to-end prepare latency %.3fs\n",
              report.levels_streamed, report.levels_streamed == 1 ? "" : "s",
              report.prepare_latency);
  return 0;
}

/// Rebuild each system's fragment index from the metadata records so get()
/// can serve files written by a previous process. Returns false when the
/// object is unknown.
bool rebuild_fragment_index(Workspace& ws, const std::string& wsdir,
                            const std::string& name) {
  core::PipelineConfig probe_cfg;
  core::RapidsPipeline probe(*ws.cluster, *ws.db, probe_cfg);
  const auto record = probe.lookup(name);
  if (!record) {
    std::fprintf(stderr, "unknown object: %s\n", name.c_str());
    return false;
  }
  // Fragment keys live under the record's *current generation* name — after
  // a background migration that is "<name>@g<gen>", not the bare name.
  const std::string sname = record->storage_name(name);
  for (const auto& [key, sys_str] : ws.db->scan_prefix("frag/" + sname + "/")) {
    const u32 sys = static_cast<u32>(std::stoul(sys_str));
    std::string flat = key;
    for (char& c : flat)
      if (c == '/') c = '_';
    const std::string path =
        wsdir + "/sys" + std::to_string(sys) + "/" + flat + ".frag";
    if (!std::filesystem::exists(path)) continue;
    const auto raw = read_file(path);
    ec::Fragment frag;
    try {
      frag = ec::Fragment::deserialize(as_bytes_view(raw));
    } catch (const io_error&) {
      // Damaged container (bad magic / truncated header): register a
      // CRC-mismatched placeholder under the recorded id so restore sees
      // detectable damage and replans/repairs, instead of dying here.
      const std::string rel = key.substr(5);  // strip "frag/"
      const auto last = rel.rfind('/');
      const auto prev = rel.rfind('/', last - 1);
      frag.id = ec::FragmentId{
          rel.substr(0, prev),
          static_cast<u32>(std::stoul(rel.substr(prev + 1, last - prev - 1))),
          static_cast<u32>(std::stoul(rel.substr(last + 1)))};
      frag.payload_crc = ~ec::fragment_crc(frag.payload);
    }
    ws.cluster->system(sys).put(frag);
  }
  return true;
}

void apply_outages(Workspace& ws, const char* spec) {
  for (const char* p = spec; *p != '\0';) {
    char* end = nullptr;
    const u32 sys = static_cast<u32>(std::strtoul(p, &end, 10));
    ws.cluster->fail(sys);
    std::printf("outage: system %u down\n", sys);
    if (*end == '\0') break;
    p = end + 1;
  }
}

int cmd_restore(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: rapids_cli restore <workspace> <name> <out.f32> "
                 "[down,sys,ids]\n");
    return 2;
  }
  const std::string wsdir = argv[2];
  const std::string name = argv[3];
  auto ws = open_workspace(wsdir);
  if (!rebuild_fragment_index(ws, wsdir, name)) return 1;
  if (argc > 5) apply_outages(ws, argv[5]);

  ThreadPool pool;
  core::PipelineConfig config;
  config.aco.time_budget_seconds = 0.5;
  core::RapidsPipeline pipeline(*ws.cluster, *ws.db, config, &pool);
  const auto report = pipeline.restore(name);
  if (report.levels_used == 0) {
    std::fprintf(stderr, "unrecoverable: too many systems down\n");
    return 1;
  }
  data::save_f32(argv[4], report.data);
  std::printf("restored %s -> %s\n", name.c_str(), argv[4]);
  std::printf("  retrieval levels used: %u\n", report.levels_used);
  std::printf("  guaranteed rel L-inf error <= %.3e\n", report.rel_error_bound);
  std::printf("  simulated gather latency: %.3fs (first level %.3fs); "
              "fetch %.3fs, decode %.3fs, reconstruct %.3fs\n",
              report.gather_latency, report.first_level_latency,
              report.fetch_seconds, report.decode_seconds,
              report.reconstruct_seconds);
  print_codec_stats("decode", report.plane_codec);
  if (report.levels_streamed > 0)
    std::printf("  streamed %u level%s; first bytes after %.3fs wall\n",
                report.levels_streamed, report.levels_streamed == 1 ? "" : "s",
                report.first_byte_seconds);
  return 0;
}

int cmd_refine(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: rapids_cli refine <workspace> <name> <out_prefix> "
                 "<bound[,bound...]> [down,sys,ids]\n");
    return 2;
  }
  const std::string wsdir = argv[2];
  const std::string name = argv[3];
  const std::string prefix = argv[4];

  std::vector<f64> bounds;
  for (const char* p = argv[5]; *p != '\0';) {
    char* end = nullptr;
    bounds.push_back(std::strtod(p, &end));
    if (end == p || *end == '\0') break;
    p = end + 1;
  }
  if (bounds.empty()) {
    std::fprintf(stderr, "no bounds given\n");
    return 2;
  }

  auto ws = open_workspace(wsdir);
  if (!rebuild_fragment_index(ws, wsdir, name)) return 1;
  if (argc > 6) apply_outages(ws, argv[6]);

  ThreadPool pool;
  core::PipelineConfig config;
  config.aco.time_budget_seconds = 0.5;
  core::RapidsPipeline pipeline(*ws.cluster, *ws.db, config, &pool);
  auto session = pipeline.begin_refine(name);

  std::printf("refining %s through %zu bound%s\n", name.c_str(), bounds.size(),
              bounds.size() == 1 ? "" : "s");
  for (std::size_t r = 0; r < bounds.size(); ++r) {
    const auto report = pipeline.refine(*session, bounds[r]);
    if (report.levels_used == 0) {
      std::fprintf(stderr, "rung %zu: unrecoverable, too many systems down\n",
                   r + 1);
      return 1;
    }
    const std::string out = prefix + "." + std::to_string(r + 1) + ".f32";
    data::save_f32(out, report.data);
    std::printf("  rung %zu: bound <= %.3e (asked %.3e), levels %u -> %s\n",
                r + 1, report.rel_error_bound, bounds[r], report.levels_used,
                out.c_str());
    std::printf(
        "    WAN bytes %llu, planes decoded %llu, cache %u hit / %u miss%s%s\n",
        (unsigned long long)report.bytes_transferred,
        (unsigned long long)report.planes_decoded, report.cache_hits,
        report.cache_misses, report.plan_reused ? ", plan reused" : "",
        report.cache_corrupt ? ", corrupt entries refetched" : "");
    print_codec_stats("decode", report.plane_codec);
  }
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: rapids_cli info <workspace> [name]\n");
    return 2;
  }
  auto ws = open_workspace(argv[2]);
  core::PipelineConfig config;
  core::RapidsPipeline pipeline(*ws.cluster, *ws.db, config);
  if (argc == 3) {
    std::printf("objects in workspace %s:\n", argv[2]);
    for (const auto& [key, value] : ws.db->scan_prefix("obj/"))
      std::printf("  %s\n", key.substr(4).c_str());
    return 0;
  }
  const auto record = pipeline.lookup(argv[3]);
  if (!record) {
    std::fprintf(stderr, "unknown object: %s\n", argv[3]);
    return 1;
  }
  std::printf("%s\n", argv[3]);
  std::printf("  dims: %llu x %llu x %llu (f32, %llu bytes)\n",
              (unsigned long long)record->meta.dims.nx,
              (unsigned long long)record->meta.dims.ny,
              (unsigned long long)record->meta.dims.nz,
              (unsigned long long)record->meta.original_bytes());
  std::printf("  levels (bytes | rel error bound | tolerates):\n");
  for (u32 j = 0; j < record->level_sizes.size(); ++j)
    std::printf("    %u: %10llu | %.3e | %u failures\n", j + 1,
                (unsigned long long)record->level_sizes[j],
                record->meta.rel_error_bound(j + 1), record->ft[j]);
  return 0;
}

std::string format_ft(const core::FtConfig& ft) {
  std::string out = "[";
  for (std::size_t j = 0; j < ft.size(); ++j) {
    if (j) out += ',';
    out += std::to_string(ft[j]);
  }
  out += ']';
  return out;
}

int cmd_status(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: rapids_cli status <workspace>\n");
    return 2;
  }
  auto ws = open_workspace(argv[2]);
  core::PipelineConfig config;
  core::RapidsPipeline pipeline(*ws.cluster, *ws.db, config);

  // Failure/trial counters persist with the workspace ("net/system_health"),
  // so the probability estimates reflect the workspace's whole history;
  // breaker state is in-process, so a fresh CLI run reports closed breakers
  // even for systems that were open when the last process exited. The
  // journal below is durable and lists every migration ever run here.
  const auto states = pipeline.breaker_states();
  const auto probs = pipeline.failure_prob_estimates();
  const auto bw = pipeline.snapshot_bandwidths();
  std::printf("systems (%zu):\n", states.size());
  for (std::size_t s = 0; s < states.size(); ++s) {
    const char* state =
        states[s] == storage::CircuitState::kOpen       ? "open"
        : states[s] == storage::CircuitState::kHalfOpen ? "half-open"
                                                        : "closed";
    std::printf("  sys %2zu: breaker %-9s  est. failure prob %.4f"
                "  bandwidth %7.2f MB/s\n",
                s, state, probs[s], bw[s] / 1e6);
  }

  const auto names = pipeline.snapshot_object_names();
  std::printf("objects (%zu):\n", names.size());
  for (const auto& name : names) {
    const auto record = pipeline.snapshot_record(name);
    if (!record || record->ft.empty()) continue;
    std::printf("  %s: generation %u, ft %s\n", name.c_str(),
                record->generation, format_ft(record->ft).c_str());
    if (probs.size() != ws.cluster->size()) continue;
    std::vector<f64> errors;
    for (u32 j = 0; j < record->level_sizes.size(); ++j)
      errors.push_back(record->meta.rel_error_bound(j + 1));
    try {
      const f64 avail = core::ft_level_availability(probs, record->ft.front());
      const f64 err =
          core::expected_relative_error_hetero(probs, errors, record->ft);
      std::printf("    availability (not-total-loss) %.9f under current "
                  "estimates\n", avail);
      std::printf("    expected rel error %.3e (planned %.3e)%s\n", err,
                  record->planned_error,
                  record->planned_error > 0.0 && err > record->planned_error
                      ? "  [drifted]"
                      : "");
    } catch (const invariant_error&) {
      // foreign/aged geometry the evaluator rejects: identity only
    }
  }

  // Last recorded `serve` run (persisted under "svc/stats"): per-tenant
  // queue depth, admit/shed/brownout counters, and the saturation state the
  // run ended in.
  std::optional<std::string> svc;
  pipeline.with_metadata_lock(
      [&](kv::KvStore& db) { svc = db.get("svc/stats"); });
  if (svc) {
    std::printf("service (last `serve` run):\n");
    std::istringstream lines(*svc);
    for (std::string line; std::getline(lines, line);)
      if (!line.empty()) std::printf("  %s\n", line.c_str());
  } else {
    std::printf("service: no recorded run (use `rapids_cli serve`)\n");
  }

  std::vector<control::MigrationRecord> journal_records;
  pipeline.with_metadata_lock([&](kv::KvStore& db) {
    control::MigrationJournal journal(db);
    journal_records = journal.scan();
  });
  u32 pending = 0, completed = 0, rolled_back = 0;
  for (const auto& rec : journal_records) {
    if (rec.phase == control::MigrationPhase::kDone) ++completed;
    else if (rec.phase == control::MigrationPhase::kRolledBack) ++rolled_back;
    else ++pending;
  }
  std::printf("migrations (%zu journaled: %u pending, %u completed, "
              "%u rolled back):\n",
              journal_records.size(), pending, completed, rolled_back);
  for (const auto& rec : journal_records) {
    std::printf("  #%llu %s: gen %u -> %u, ft %s -> %s, phase %s",
                (unsigned long long)rec.seq, rec.object.c_str(),
                rec.old_generation, rec.new_generation,
                format_ft(rec.old_ft).c_str(), format_ft(rec.new_ft).c_str(),
                control::migration_phase_name(rec.phase));
    if (!rec.terminal())
      std::printf(" (%u/%zu levels written, %u attempts)", rec.levels_written,
                  rec.new_ft.size(), rec.attempts);
    std::printf("\n");
  }
  return 0;
}

/// Drive the multi-tenant object service against the workspace's objects
/// with a seeded open-loop Poisson arrival schedule. `overload` scales the
/// offered load relative to the service's estimated capacity, so `serve ws
/// 8 30 4` reproduces the 4x-overload regime of the service benchmark. The
/// per-tenant snapshot is persisted under the metadata key "svc/stats" so a
/// later `status` (possibly another process) can show it.
int cmd_serve(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: rapids_cli serve <workspace> [tenants] [seconds] "
                 "[overload] [seed]\n");
    return 2;
  }
  const std::string wsdir = argv[2];
  const u32 tenants =
      argc > 3 ? static_cast<u32>(std::strtoul(argv[3], nullptr, 10)) : 4;
  const f64 duration = argc > 4 ? std::strtod(argv[4], nullptr) : 30.0;
  const f64 overload = argc > 5 ? std::strtod(argv[5], nullptr) : 2.0;
  const u64 seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 7;
  if (tenants == 0 || duration <= 0.0 || overload <= 0.0) {
    std::fprintf(stderr, "tenants, seconds, and overload must be positive\n");
    return 2;
  }

  auto ws = open_workspace(wsdir);
  std::vector<std::string> names;
  for (const auto& [key, value] : ws.db->scan_prefix("obj/"))
    names.push_back(key.substr(4));
  if (names.empty()) {
    std::fprintf(stderr, "no objects in workspace; run `prepare` first\n");
    return 1;
  }
  for (const auto& name : names)
    if (!rebuild_fragment_index(ws, wsdir, name)) return 1;

  ThreadPool pool;
  core::PipelineConfig config;
  config.aco.time_budget_seconds = 0.5;
  core::RapidsPipeline pipeline(*ws.cluster, *ws.db, config, &pool);

  service::ServiceOptions opts;
  opts.tenant_weights.assign(tenants, 1.0);
  if (tenants > 1) opts.tenant_weights[0] = 2.0;  // show weighted fairness
  opts.keep_data = false;  // accounting run: don't hold restored fields
  service::ObjectService svc(pipeline, opts, &pool);

  // Size the offered load from the same cost model the service charges:
  // capacity ~= lanes / mean request seconds.
  const auto bw = pipeline.snapshot_bandwidths();
  f64 rate = 0.0;
  for (const f64 b : bw) rate += b;
  rate /= static_cast<f64>(bw.size());
  f64 mean_bytes = 0.0;
  std::vector<std::vector<f64>> ladders(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto record = pipeline.lookup(names[i]);
    u64 total = 0;
    for (u32 j = 0; j < record->level_sizes.size(); ++j) {
      total += record->level_sizes[j];
      ladders[i].push_back(record->meta.rel_error_bound(j + 1));
    }
    mean_bytes += static_cast<f64>(total);
  }
  mean_bytes /= static_cast<f64>(names.size());
  const f64 mean_cost_s = opts.cost_fixed_s + mean_bytes / rate;
  const f64 lambda_per_tenant =
      overload * static_cast<f64>(opts.lanes) /
      (mean_cost_s * static_cast<f64>(tenants));

  struct Arrival {
    f64 t;
    u32 tenant;
    bool operator<(const Arrival& o) const {
      return t != o.t ? t < o.t : tenant < o.tenant;
    }
  };
  std::vector<Arrival> arrivals;
  Rng root(seed);
  std::vector<Rng> streams;
  for (u32 u = 0; u < tenants; ++u) streams.push_back(root.fork());
  for (u32 u = 0; u < tenants; ++u) {
    f64 t = 0.0;
    while (true) {
      const f64 draw = streams[u].next_double();
      t += -std::log(1.0 - draw) / lambda_per_tenant;
      if (t >= duration) break;
      arrivals.push_back({t, u});
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::printf("serving %zu objects to %u tenants for %.0fs at %.2fx capacity "
              "(%zu arrivals, seed %llu)\n",
              names.size(), tenants, duration, overload, arrivals.size(),
              (unsigned long long)seed);
  for (const auto& a : arrivals) {
    svc.advance_to(a.t);
    auto& rng = streams[a.tenant];
    const std::size_t obj = rng.next_below(names.size());
    service::Request req;
    req.tenant = a.tenant;
    req.verb = service::Verb::kRestore;
    req.object = names[obj];
    // Mix full-precision restores with bounded ones off the object's ladder.
    const std::size_t rung = rng.next_below(ladders[obj].size() + 1);
    req.rel_bound = rung == 0 ? 0.0 : ladders[obj][rung - 1];
    const f64 pri = rng.next_double();
    req.priority = pri < 0.2   ? service::Priority::kHigh
                   : pri < 0.8 ? service::Priority::kNormal
                               : service::Priority::kBatch;
    req.deadline_s = a.t + mean_cost_s * (2.0 + 8.0 * rng.next_double());
    svc.submit(req);
  }
  svc.drain();
  const auto responses = svc.take_completed();

  // Per-tenant completion latency percentiles (executed requests only).
  std::vector<std::vector<f64>> lat(tenants);
  for (const auto& r : responses)
    if (r.outcome == service::Outcome::kOk ||
        r.outcome == service::Outcome::kBrownout)
      lat[r.tenant].push_back(r.completed_s - r.submitted_s);
  const auto pct = [](std::vector<f64>& v, f64 q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto at = static_cast<std::size_t>(q * static_cast<f64>(v.size() - 1));
    return v[at];
  };

  const auto total = svc.stats();
  std::ostringstream snap;
  char line[512];
  std::snprintf(line, sizeof line,
                "run: tenants=%u seconds=%.0f overload=%.2fx seed=%llu "
                "objects=%zu arrivals=%zu",
                tenants, duration, overload, (unsigned long long)seed,
                names.size(), arrivals.size());
  snap << line << '\n';
  std::snprintf(line, sizeof line,
                "state=%s backlog=%.2fs schedule_hash=%016llx decisions=%llu",
                to_string(svc.load_state()), svc.backlog_s(),
                (unsigned long long)total.schedule_hash,
                (unsigned long long)total.decisions);
  snap << line << '\n';
  std::snprintf(line, sizeof line,
                "admitted=%llu rejected=%llu shed=%llu completed=%llu "
                "brownout_entries=%llu saturation_entries=%llu "
                "brownout_s=%.2f saturated_s=%.2f",
                (unsigned long long)total.admitted,
                (unsigned long long)total.rejected,
                (unsigned long long)total.shed,
                (unsigned long long)total.completed,
                (unsigned long long)total.brownout_entries,
                (unsigned long long)total.saturation_entries,
                total.brownout_s, total.saturated_s);
  snap << line << '\n';
  for (u32 u = 0; u < tenants; ++u) {
    const auto ts = svc.tenant_stats(u);
    std::snprintf(
        line, sizeof line,
        "tenant %u: weight=%.1f depth=%u peak=%u submitted=%llu "
        "admitted=%llu rejected=%llu+%llu(rate) shed=%llu completed=%llu "
        "brownouts=%llu missed=%llu p50=%.3fs p99=%.3fs",
        u, opts.tenant_weights[u], ts.queue_depth, ts.peak_depth,
        (unsigned long long)ts.submitted, (unsigned long long)ts.admitted,
        (unsigned long long)ts.rejected_depth,
        (unsigned long long)ts.rejected_rate, (unsigned long long)ts.shed,
        (unsigned long long)ts.completed, (unsigned long long)ts.brownouts,
        (unsigned long long)ts.deadline_missed, pct(lat[u], 0.5),
        pct(lat[u], 0.99));
    snap << line << '\n';
  }
  const std::string snapshot = snap.str();
  std::printf("%s", snapshot.c_str());
  pipeline.with_metadata_lock(
      [&](kv::KvStore& db) { db.put("svc/stats", snapshot); });
  std::printf("snapshot persisted; `rapids_cli status %s` shows it\n",
              wsdir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::fprintf(
          stderr,
          "usage: rapids_cli "
          "<generate|prepare|restore|refine|info|status|serve> ...\n");
      return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "prepare") return cmd_prepare(argc, argv);
    if (cmd == "restore") return cmd_restore(argc, argv);
    if (cmd == "refine") return cmd_refine(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "status") return cmd_status(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
