// Failure drill: the scenario the paper opens with — a large simulation
// output must stay usable while storage systems fail, degrade, and recover.
//
// The drill prepares a cosmology field, then walks through escalating
// incidents: random outages drawn from per-system failure probabilities, a
// targeted multi-system blackout that degrades quality level by level, a
// permanent fragment loss repaired from survivors, and a final full-quality
// restore after recovery.
//
// Run:  ./failure_drill

#include <cstdio>
#include <filesystem>

#include "rapids/rapids.hpp"

using namespace rapids;

namespace {

void report(const char* phase, const core::RestoreReport& r,
            const std::vector<f32>& truth) {
  if (r.levels_used == 0) {
    std::printf("%-28s UNRECOVERABLE (expected error penalty e_0 = 1)\n", phase);
    return;
  }
  const f64 err = data::relative_linf_error(truth, r.data);
  std::printf("%-28s levels=%u  bound=%.1e  measured=%.1e  gather=%.3fs\n",
              phase, r.levels_used, r.rel_error_bound, err, r.gather_latency);
}

}  // namespace

int main() {
  const mgard::Dims dims{65, 65, 33};
  const auto field = data::nyx_temperature(dims, 77);

  storage::Cluster cluster({.num_systems = 16, .failure_prob = 0.04});
  const auto db_dir =
      (std::filesystem::temp_directory_path() / "rapids_drill_db").string();
  std::filesystem::remove_all(db_dir);
  auto db = kv::Db::open(db_dir);

  ThreadPool pool;
  core::PipelineConfig config;
  config.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  core::RapidsPipeline pipeline(cluster, *db, config, &pool);

  const auto prep = pipeline.prepare(field, dims, "nyx/temperature");
  std::printf("prepared nyx/temperature: ft=%s overhead=%.3f\n\n", [&] {
    std::string s = "[";
    for (std::size_t j = 0; j < prep.record.ft.size(); ++j)
      s += (j ? "," : "") + std::to_string(prep.record.ft[j]);
    return s + "]";
  }().c_str(), prep.storage_overhead);

  // Phase 1: healthy cluster.
  report("healthy cluster:", pipeline.restore("nyx/temperature"), field);

  // Phase 2: random outages drawn from the failure model, three draws.
  Rng rng(5);
  for (int draw = 1; draw <= 3; ++draw) {
    const auto outage = storage::sample_outage(cluster, rng);
    storage::apply_outage(cluster, outage);
    u32 down = 0;
    for (bool b : outage) down += b;
    char label[64];
    std::snprintf(label, sizeof(label), "random outage #%d (N=%u):", draw, down);
    report(label, pipeline.restore("nyx/temperature"), field);
  }
  cluster.restore_all();

  // Phase 3: escalating blackout — watch quality degrade level by level.
  std::printf("\nescalating blackout:\n");
  for (u32 kill = 1; kill <= prep.record.ft[0] + 1; ++kill) {
    std::vector<u32> down;
    for (u32 i = 0; i < kill; ++i) down.push_back(i);
    storage::fail_exactly(cluster, down);
    char label[64];
    std::snprintf(label, sizeof(label), "  %u systems dark:", kill);
    report(label, pipeline.restore("nyx/temperature"), field);
  }
  cluster.restore_all();

  // Phase 4: permanent loss on system 6 (disk dead, machine up) + repair.
  std::printf("\npermanent fragment loss on system 6, repairing:\n");
  for (u32 level = 0; level < 4; ++level) {
    const u32 idx = storage::fragment_at(prep.record.placement, 16, level, 6);
    cluster.system(6).erase(ec::FragmentId{"nyx/temperature", level, idx}.key());
    pipeline.repair_fragment("nyx/temperature", level, idx, 6);
  }
  report("after repair:", pipeline.restore("nyx/temperature"), field);

  std::filesystem::remove_all(db_dir);
  return 0;
}
