// Availability planner: the capacity-planning view a facility operator
// needs. For a dataset about to be archived, sweep the storage-overhead
// budget and show, per budget, what fault-tolerance configuration RAPIDS
// would pick, what expected quality it buys, and how the two conventional
// methods compare at the same quality class — the quantitative trade-off
// study of the paper's Section 3.2 as a tool.
//
// Run:  ./availability_planner

#include <cstdio>

#include "rapids/rapids.hpp"

using namespace rapids;

int main() {
  const u32 n = 16;
  const f64 p = 0.01;

  // Refactor the target dataset once to get its real level profile.
  ThreadPool pool;
  const auto obj = data::find_object("SCALE:PRES", 1);
  const auto field = obj.generate(&pool);
  mgard::RefactorOptions ropt;
  ropt.decomp_levels = 4;
  ropt.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  const mgard::Refactorer rf(ropt, &pool);
  const auto refactored = rf.refactor(field, obj.dims, obj.label());

  std::vector<u64> sizes;
  std::vector<f64> errors;
  for (u32 j = 0; j < 4; ++j) {
    sizes.push_back(refactored.level_bytes(j));
    errors.push_back(refactored.rel_error_bound(j + 1));
  }
  const u64 S = refactored.original_bytes();

  std::printf("planning for %s: %llu B original, refactored to %llu B "
              "(levels:", obj.label().c_str(), static_cast<unsigned long long>(S),
              static_cast<unsigned long long>(refactored.refactored_bytes()));
  for (u64 s : sizes) std::printf(" %llu", static_cast<unsigned long long>(s));
  std::printf(")\nn = %u storage systems, per-system outage probability p = %.2f\n\n",
              n, p);

  std::printf("%-8s  %-14s  %-10s  %-22s\n", "budget", "FT config",
              "overhead", "expected rel L-inf err");
  for (const f64 budget :
       {0.02, 0.05, 0.08, 0.12, 0.2, 0.3, 0.5, 0.8, 1.2}) {
    core::FtProblem problem;
    problem.n = n;
    problem.p = p;
    problem.level_sizes = sizes;
    problem.level_errors = errors;
    problem.original_size = S;
    problem.overhead_budget = budget;
    const auto sol = core::ft_optimize_heuristic(problem);
    if (!sol) {
      std::printf("%-8.2f  %-14s\n", budget, "infeasible");
      continue;
    }
    std::string cfg = "[";
    for (std::size_t j = 0; j < sol->m.size(); ++j)
      cfg += (j ? "," : "") + std::to_string(sol->m[j]);
    cfg += "]";
    std::printf("%-8.2f  %-14s  %-10.3f  %.3e\n", budget, cfg.c_str(),
                sol->storage_overhead, sol->expected_error);
  }

  std::printf("\nconventional methods at the same n and p:\n");
  for (u32 replicas : {2u, 3u, 4u})
    std::printf("  DP %u replicas: overhead %.2f, expected error %.3e\n",
                replicas, core::duplication_storage_overhead(replicas),
                core::duplication_unavailability(n, replicas, p));
  for (u32 m : {1u, 2u, 3u, 4u})
    std::printf("  EC (%u+%u):     overhead %.2f, expected error %.3e\n", n - m,
                m, core::ec_storage_overhead(n - m, m),
                core::ec_unavailability(n, m, p));
  return 0;
}
