// Quickstart: the full RAPIDS loop in ~60 lines.
//
//   1. Generate a scientific field (a hurricane pressure volume).
//   2. prepare(): refactor -> optimize fault tolerance -> erasure code ->
//      distribute across 16 simulated geo-distributed storage systems.
//   3. Knock two systems offline.
//   4. restore(): plan gathering -> fetch -> decode -> reconstruct, and
//      check the guaranteed error bound against the measured error.
//
// Run:  ./quickstart

#include <cstdio>
#include <filesystem>

#include "rapids/rapids.hpp"

using namespace rapids;

int main() {
  // A 65x65x33 float32 pressure field (deterministic synthetic hurricane).
  const mgard::Dims dims{65, 65, 33};
  const auto field = data::hurricane_pressure(dims, /*seed=*/2023);
  std::printf("generated field: %llu values (%.1f MB)\n",
              static_cast<unsigned long long>(dims.total()),
              dims.total() * 4.0 / 1e6);

  // 16 geo-distributed storage systems, each down with probability 1%.
  storage::Cluster cluster({.num_systems = 16, .failure_prob = 0.01});

  // Metadata store (RocksDB-style embedded KV).
  const auto db_dir =
      (std::filesystem::temp_directory_path() / "rapids_quickstart_db").string();
  std::filesystem::remove_all(db_dir);
  auto db = kv::Db::open(db_dir);

  // Pipeline: 4 retrieval levels at the paper's error targets, at most 50%
  // storage overhead for parity.
  core::PipelineConfig config;
  config.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  config.overhead_budget = 0.5;
  ThreadPool pool;
  core::RapidsPipeline pipeline(cluster, *db, config, &pool);

  // --- Data preparation ---
  const auto prep = pipeline.prepare(field, dims, "hurricane/pressure");
  std::printf("prepared: fault tolerance m = [");
  for (std::size_t j = 0; j < prep.record.ft.size(); ++j)
    std::printf("%s%u", j ? "," : "", prep.record.ft[j]);
  std::printf("], storage overhead %.3f, expected rel error %.2e\n",
              prep.storage_overhead, prep.expected_error);
  std::printf("          %llu fragments distributed, WAN latency %.3f s "
              "(simulated)\n",
              static_cast<unsigned long long>(prep.fragments_stored),
              prep.distribution_latency);

  // --- Outage ---
  cluster.fail(3);
  cluster.fail(11);
  std::printf("outage: systems 3 and 11 are down\n");

  // --- Data restoration ---
  const auto rest = pipeline.restore("hurricane/pressure");
  const f64 measured = data::relative_linf_error(field, rest.data);
  std::printf("restored from %u/%zu retrieval levels\n", rest.levels_used,
              prep.record.ft.size());
  std::printf("  guaranteed rel L-inf error <= %.2e, measured %.2e  [%s]\n",
              rest.rel_error_bound, measured,
              measured <= rest.rel_error_bound ? "bound holds" : "VIOLATION");
  std::printf("  gathering latency %.3f s (simulated WAN), decode %.3f s, "
              "reconstruct %.3f s\n",
              rest.gather_latency, rest.decode_seconds,
              rest.reconstruct_seconds);

  std::filesystem::remove_all(db_dir);
  return measured <= rest.rel_error_bound ? 0 : 1;
}
