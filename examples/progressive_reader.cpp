// Progressive reader: the refactorer on its own, without the distribution
// machinery — the use case where an analyst wants a quick low-accuracy view
// of a huge remote dataset and progressively refines it as more retrieval
// levels arrive (the paper's Section 2.2 capability).
//
// Refactors a weather temperature volume, then "streams in" one retrieval
// level at a time, printing bytes transferred so far, the guaranteed bound,
// the measured error, and a tiny ASCII rendering of a mid-volume slice so
// the refinement is visible.
//
// Run:  ./progressive_reader

#include <cstdio>

#include "rapids/rapids.hpp"

using namespace rapids;

namespace {

/// Render a coarse ASCII view of the k = nz/2 slice.
void render_slice(const std::vector<f32>& field, mgard::Dims dims) {
  const char* shades = " .:-=+*#%@";
  f32 lo = field[0], hi = field[0];
  for (f32 v : field) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const u64 k = dims.nz / 2;
  const u64 rows = 12, cols = 40;
  for (u64 r = 0; r < rows; ++r) {
    std::printf("    ");
    for (u64 c = 0; c < cols; ++c) {
      const u64 i = c * (dims.nx - 1) / (cols - 1);
      const u64 j = r * (dims.ny - 1) / (rows - 1);
      const f32 v = field[(k * dims.ny + j) * dims.nx + i];
      const int shade =
          static_cast<int>((v - lo) / (hi - lo + 1e-30f) * 9.0f);
      std::printf("%c", shades[std::clamp(shade, 0, 9)]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const mgard::Dims dims{129, 129, 33};
  const auto field = data::scale_temperature(dims, 31);
  const u64 original_bytes = dims.total() * sizeof(f32);

  ThreadPool pool;
  mgard::RefactorOptions opt;
  opt.decomp_levels = 4;
  opt.num_retrieval_levels = 4;
  opt.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  const mgard::Refactorer rf(opt, &pool);
  const auto obj = rf.refactor(field, dims, "scale/T");

  std::printf("original: %.2f MB; refactored: %.2f MB in %zu retrieval levels\n",
              original_bytes / 1e6, obj.refactored_bytes() / 1e6,
              obj.levels.size());

  std::vector<Bytes> received;
  u64 transferred = 0;
  for (u32 j = 1; j <= obj.levels.size(); ++j) {
    received.push_back(obj.levels[j - 1].payload);
    transferred += obj.level_bytes(j - 1);
    const auto approx = rf.reconstruct(obj, received);
    const f64 err = data::relative_linf_error(field, approx);
    std::printf(
        "\nafter level %u: %.2f MB transferred (%.1f%% of original), "
        "bound <= %.1e, measured %.1e\n",
        j, transferred / 1e6, 100.0 * transferred / original_bytes,
        obj.rel_error_bound(j), err);
    render_slice(approx, dims);
  }
  return 0;
}
