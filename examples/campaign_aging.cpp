// Campaign aging: a simulation campaign writes many timesteps; storage is
// finite. Because RAPIDS stores each timestep as an error-bounded hierarchy,
// old timesteps can *degrade* instead of being deleted: dropping their deep
// retrieval levels reclaims most of their space while keeping them
// restorable at a coarser guaranteed accuracy — the availability/accuracy/
// capacity trade the paper's hierarchy makes possible, applied over time.
//
// This drill prepares 6 timesteps, applies a retention schedule (recent =
// full fidelity, older = fewer levels), retires a storage system via
// evacuation, and verifies every timestep still restores within its
// (possibly coarsened) guarantee.
//
// Run:  ./campaign_aging

#include <cstdio>
#include <filesystem>

#include "rapids/rapids.hpp"

using namespace rapids;

int main() {
  const mgard::Dims dims{65, 65, 17};
  storage::Cluster cluster({.num_systems = 16, .failure_prob = 0.01});
  const auto db_dir =
      (std::filesystem::temp_directory_path() / "rapids_campaign_db").string();
  std::filesystem::remove_all(db_dir);
  auto db = kv::Db::open(db_dir);

  ThreadPool pool;
  core::PipelineConfig config;
  config.refactor.target_rel_errors = {4e-3, 5e-4, 6e-5, 1e-7};
  core::RapidsPipeline pipeline(cluster, *db, config, &pool);

  // Write 6 timesteps of an evolving temperature field.
  std::vector<std::vector<f32>> truth;
  for (u32 step = 0; step < 6; ++step) {
    const auto field = data::scale_temperature(dims, 1000 + step * 17);
    const std::string name = "campaign/T/" + std::to_string(step);
    const auto prep = pipeline.prepare(field, dims, name);
    truth.push_back(field);
    std::printf("t=%u prepared (%zu levels, overhead %.3f)\n", step,
                prep.record.ft.size(), prep.storage_overhead);
  }

  u64 used = 0;
  for (u32 i = 0; i < cluster.size(); ++i) used += cluster.system(i).used_bytes();
  std::printf("\ncampaign footprint before aging: %.2f MB across %u systems\n",
              used / 1e6, cluster.size());

  // Retention schedule: steps 0-1 keep 1 level, steps 2-3 keep 2, the two
  // newest stay at full fidelity.
  u64 reclaimed = 0;
  for (u32 step = 0; step < 4; ++step) {
    const u32 keep = step < 2 ? 1 : 2;
    reclaimed += pipeline.age_object("campaign/T/" + std::to_string(step), keep);
  }
  used = 0;
  for (u32 i = 0; i < cluster.size(); ++i) used += cluster.system(i).used_bytes();
  std::printf("aged 4 old timesteps: reclaimed %.2f MB, footprint now %.2f MB\n",
              reclaimed / 1e6, used / 1e6);

  // Retire storage system 12: evacuate every object's fragments off it.
  u32 moved = 0;
  for (const auto& name : pipeline.list_objects())
    moved += pipeline.evacuate_system(name, 12);
  cluster.fail(12);
  std::printf("retired system 12 (%u fragments migrated)\n\n", moved);

  // Every timestep must restore within its current guarantee.
  std::printf("%-16s %-7s %-12s %-12s %s\n", "timestep", "levels", "bound",
              "measured", "ok");
  bool all_ok = true;
  for (u32 step = 0; step < 6; ++step) {
    const auto rest = pipeline.restore("campaign/T/" + std::to_string(step));
    const f64 err = data::relative_linf_error(truth[step], rest.data);
    const bool ok = err <= rest.rel_error_bound;
    all_ok &= ok;
    std::printf("campaign/T/%-5u %-7u %-12.2e %-12.2e %s\n", step,
                rest.levels_used, rest.rel_error_bound, err, ok ? "yes" : "NO");
  }

  std::filesystem::remove_all(db_dir);
  return all_ok ? 0 : 1;
}
