#pragma once

/// \file scaling_model.hpp
/// Weak-scaling performance model for the Andes-style cluster runs of
/// Fig. 5/6 and Table 4/5. Per-operation time over `bytes` of original data
/// on `cores` cores:
///
///     rate(cores) = min( single_core_rate * cores * eff(cores),  agg_cap )
///     eff(cores)  = (1 - serial_fraction) / (1 + per_core_overhead*(cores-1))
///                   + serial_fraction / cores ... folded into Amdahl form:
///     t = bytes * serial_fraction / rate(1) + bytes * (1-serial_fraction) / rate(cores)
///
/// Compute operations (refactor, reconstruct, EC) are embarrassingly
/// parallel over blocks (paper Section 5.5) — tiny serial fraction, no cap.
/// Filesystem read/write scale until they hit the parallel filesystem's
/// aggregate bandwidth. Network operations (distribute/gather) do not scale
/// with cores at all; they come from net::transfer_sim instead.

#include "rapids/perf/calibration.hpp"
#include "rapids/util/common.hpp"

namespace rapids::perf {

/// Pipeline operations covered by the model.
enum class Op { kRead, kWrite, kRefactor, kReconstruct, kEcEncode, kEcDecode };

/// Scaling parameters of one operation.
struct OpScaling {
  f64 serial_fraction = 0.0;   ///< Amdahl serial part
  f64 per_core_overhead = 0.0; ///< parallel-efficiency decay per extra core
  f64 aggregate_cap_bps = 0.0; ///< 0 = uncapped (compute); else FS ceiling
};

/// The cluster model: calibration anchors + per-op scaling shapes.
class ClusterModel {
 public:
  /// Build with measured calibration and default scaling shapes (documented
  /// in DESIGN.md; the defaults reproduce the paper's Fig. 5/6 shapes).
  explicit ClusterModel(const Calibration& calibration);

  /// Override one op's scaling shape (ablation benches).
  void set_scaling(Op op, const OpScaling& scaling);
  const OpScaling& scaling(Op op) const;

  /// Single-core throughput of `op` from the calibration (bytes/s).
  f64 base_rate(Op op) const;

  /// Modeled wall-clock seconds for `op` over `bytes` on `cores` cores.
  f64 op_seconds(Op op, u64 bytes, u32 cores) const;

 private:
  Calibration cal_;
  OpScaling scalings_[6];
};

}  // namespace rapids::perf
