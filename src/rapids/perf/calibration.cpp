#include "rapids/perf/calibration.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "rapids/data/field_generators.hpp"
#include "rapids/ec/reed_solomon.hpp"
#include "rapids/mgard/refactorer.hpp"
#include "rapids/util/bytes.hpp"
#include "rapids/util/rng.hpp"
#include "rapids/util/timer.hpp"

namespace rapids::perf {

namespace {

/// Best-of-N wall-clock measurement: throughput is depressed, never inflated,
/// by scheduling noise, so the max over repetitions is the honest estimate.
template <typename Fn>
f64 best_rate(u64 bytes, int reps, const Fn& fn) {
  f64 best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::max(best, static_cast<f64>(bytes) / t.seconds());
  }
  return best;
}

}  // namespace

Calibration calibrate(const CalibrationOptions& options) {
  Calibration cal;

  // --- Refactor / reconstruct on a real field (single-threaded). ---
  const mgard::Dims dims{options.field_extent, options.field_extent,
                         options.field_extent};
  const auto field = data::hurricane_pressure(dims, options.seed);
  const u64 field_bytes = dims.total() * sizeof(f32);

  mgard::RefactorOptions ropt;
  ropt.decomp_levels = 4;
  ropt.num_retrieval_levels = 4;
  const mgard::Refactorer refactorer(ropt, nullptr);

  mgard::RefactoredObject obj;
  cal.refactor_bps = best_rate(field_bytes, 2, [&] {
    obj = refactorer.refactor(field, dims, "calib");
  });

  std::vector<Bytes> payloads;
  for (const auto& l : obj.levels) payloads.push_back(l.payload);
  std::vector<f32> rec;
  cal.reconstruct_bps = best_rate(field_bytes, 2, [&] {
    rec = refactorer.reconstruct(obj, payloads);
  });
  RAPIDS_REQUIRE(rec.size() == field.size());

  // --- Erasure coding on a synthetic payload. ---
  std::vector<u8> payload(options.ec_bytes);
  Rng rng(options.seed);
  for (auto& b : payload) b = static_cast<u8>(rng.next_u64());
  const ec::ReedSolomon rs(12, 4);
  std::vector<ec::Fragment> frags;
  cal.ec_encode_bps = best_rate(payload.size(), 2, [&] {
    frags = rs.encode(payload, "calib", 0);
  });

  // Decode with 4 data fragments replaced by parity (forces matrix path).
  const std::vector<ec::Fragment> survivors(frags.begin() + 4, frags.end());
  std::vector<u8> decoded;
  cal.ec_decode_bps = best_rate(payload.size(), 2, [&] {
    decoded = rs.decode(survivors);
  });
  RAPIDS_REQUIRE(decoded == payload);

  // --- Local file IO. ---
  // Per-process scratch name: test binaries calibrate concurrently under
  // `ctest -j`, and a shared path lets one process delete the file out from
  // under another's read.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("rapids_calib." + std::to_string(::getpid()) + ".bin"))
          .string();
  Bytes blob(options.io_bytes);
  for (u64 i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::byte>(i * 2654435761u >> 24);
  cal.write_bps = best_rate(blob.size(), 2,
                            [&] { write_file(path, as_bytes_view(blob)); });
  Bytes back;
  cal.read_bps = best_rate(blob.size(), 2, [&] { back = read_file(path); });
  RAPIDS_REQUIRE(back.size() == blob.size());
  std::error_code ignore;
  std::filesystem::remove(path, ignore);

  return cal;
}

const Calibration& cached_calibration() {
  static const Calibration cal = calibrate();
  return cal;
}

}  // namespace rapids::perf
