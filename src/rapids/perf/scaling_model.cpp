#include "rapids/perf/scaling_model.hpp"

#include <algorithm>

namespace rapids::perf {

namespace {
std::size_t op_index(Op op) { return static_cast<std::size_t>(op); }
}  // namespace

ClusterModel::ClusterModel(const Calibration& calibration) : cal_(calibration) {
  // Compute ops: block-parallel ("embarrassingly parallel" per the paper's
  // Section 5.5), tiny serial fraction and coordination overhead, no cap.
  const OpScaling compute{0.0002, 0.0002, 0.0};
  scalings_[op_index(Op::kRefactor)] = compute;
  scalings_[op_index(Op::kReconstruct)] = compute;
  scalings_[op_index(Op::kEcEncode)] = compute;
  scalings_[op_index(Op::kEcDecode)] = compute;
  // Parallel filesystem: scales across client cores until the aggregate
  // ceiling (Alpine-class: ~2.5 TB/s peak; a shared production figure of a
  // few hundred GB/s per job is what the paper's read/write curves suggest).
  scalings_[op_index(Op::kRead)] = OpScaling{0.001, 0.001, 240.0e9};
  scalings_[op_index(Op::kWrite)] = OpScaling{0.001, 0.001, 120.0e9};
}

void ClusterModel::set_scaling(Op op, const OpScaling& scaling) {
  scalings_[op_index(op)] = scaling;
}

const OpScaling& ClusterModel::scaling(Op op) const {
  return scalings_[op_index(op)];
}

f64 ClusterModel::base_rate(Op op) const {
  switch (op) {
    case Op::kRead: return cal_.read_bps;
    case Op::kWrite: return cal_.write_bps;
    case Op::kRefactor: return cal_.refactor_bps;
    case Op::kReconstruct: return cal_.reconstruct_bps;
    case Op::kEcEncode: return cal_.ec_encode_bps;
    case Op::kEcDecode: return cal_.ec_decode_bps;
  }
  throw invariant_error("base_rate: unknown op");
}

f64 ClusterModel::op_seconds(Op op, u64 bytes, u32 cores) const {
  RAPIDS_REQUIRE(cores >= 1);
  const OpScaling& s = scalings_[op_index(op)];
  const f64 r1 = base_rate(op);
  RAPIDS_REQUIRE_MSG(r1 > 0.0, "op_seconds: zero base rate (calibration missing)");
  const f64 eff = 1.0 / (1.0 + s.per_core_overhead * static_cast<f64>(cores - 1));
  f64 parallel_rate = r1 * static_cast<f64>(cores) * eff;
  if (s.aggregate_cap_bps > 0.0)
    parallel_rate = std::min(parallel_rate, s.aggregate_cap_bps);
  const f64 b = static_cast<f64>(bytes);
  return b * s.serial_fraction / r1 + b * (1.0 - s.serial_fraction) / parallel_rate;
}

}  // namespace rapids::perf
