#include "rapids/perf/accelerator_model.hpp"

#include <cmath>

#include "rapids/util/rng.hpp"

namespace rapids::perf {

namespace {

/// Deterministic multiplier in [1-spread, 1+spread] keyed by a string.
f64 name_jitter(const std::string& name, u64 salt, f64 spread) {
  u64 h = 1469598103934665603ull ^ salt;
  for (char c : name) h = (h ^ static_cast<u8>(c)) * 1099511628211ull;
  SplitMix64 sm(h);
  const f64 u = static_cast<f64>(sm.next() >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + spread * (2.0 * u - 1.0);
}

}  // namespace

AcceleratorModel::AcceleratorModel(const Calibration& calibration,
                                   f64 refactor_speedup_mean,
                                   f64 reconstruct_speedup_mean)
    : cal_(calibration), refactor_mean_(refactor_speedup_mean),
      reconstruct_mean_(reconstruct_speedup_mean) {
  RAPIDS_REQUIRE(refactor_speedup_mean > 0.0 && reconstruct_speedup_mean > 0.0);
}

f64 AcceleratorModel::refactor_speedup(const std::string& object_name) const {
  return refactor_mean_ * name_jitter(object_name, 0xF5EEDF00Dull, 0.15);
}

f64 AcceleratorModel::reconstruct_speedup(const std::string& object_name) const {
  return reconstruct_mean_ * name_jitter(object_name, 0xFEEDFACEull, 0.15);
}

f64 AcceleratorModel::gpu_refactor_bps(const std::string& object_name) const {
  return cal_.refactor_bps * refactor_speedup(object_name);
}

f64 AcceleratorModel::gpu_reconstruct_bps(const std::string& object_name) const {
  return cal_.reconstruct_bps * reconstruct_speedup(object_name);
}

}  // namespace rapids::perf
