#pragma once

/// \file calibration.hpp
/// Measures the single-core throughput of every pipeline operation by timing
/// the *real* kernels of this library on a calibration-sized workload. These
/// measurements anchor the cluster scaling model (scaling_model.hpp) that
/// regenerates the paper's Fig. 5/6 and Table 4/5 — absolute seconds come
/// from our kernels, scaling shape from the model (DESIGN.md substitution #5).

#include "rapids/util/common.hpp"

namespace rapids::perf {

/// Single-core throughput of each pipeline operation, bytes of *original
/// data* processed per second (so operations compose over the same S).
struct Calibration {
  f64 read_bps = 0.0;        ///< local storage read (buffered file IO)
  f64 write_bps = 0.0;       ///< local storage write
  f64 refactor_bps = 0.0;    ///< mgard decompose + bitplane encode
  f64 reconstruct_bps = 0.0; ///< bitplane decode + recompose
  f64 ec_encode_bps = 0.0;   ///< RS(12,4) encode
  f64 ec_decode_bps = 0.0;   ///< RS(12,4) decode with parity rows in play
};

/// Options for the calibration run.
struct CalibrationOptions {
  /// Calibration field is extent^3 float32. Large enough that per-call fixed
  /// costs do not depress the measured per-byte rate (the scaling model
  /// extrapolates to multi-TB objects).
  u64 field_extent = 129;
  u64 ec_bytes = 32 << 20; ///< payload size for the EC timing
  u64 io_bytes = 64 << 20; ///< file size for the read/write timing
  u64 seed = 7;
};

/// Run the calibration (single-threaded kernels; a few hundred ms total).
Calibration calibrate(const CalibrationOptions& options = {});

/// Process-wide cached calibration (first call measures, later calls reuse).
const Calibration& cached_calibration();

}  // namespace rapids::perf
