#pragma once

/// \file accelerator_model.hpp
/// GPU throughput model for Fig. 7. No GPU exists in this environment, so we
/// cannot *run* the CUDA refactorer; instead the model applies the paper's
/// measured average speedups — 3.7x for refactoring, 20.3x for
/// reconstruction on a K80 vs one CPU core — with deterministic per-object
/// variation, on top of the *measured* single-core throughput of our real
/// kernels. The bench labels modeled numbers explicitly (DESIGN.md
/// substitution #6).

#include <string>

#include "rapids/perf/calibration.hpp"
#include "rapids/util/common.hpp"

namespace rapids::perf {

/// Modeled accelerator.
class AcceleratorModel {
 public:
  /// `calibration` supplies the measured single-core CPU rates.
  explicit AcceleratorModel(const Calibration& calibration,
                            f64 refactor_speedup_mean = 3.7,
                            f64 reconstruct_speedup_mean = 20.3);

  /// Deterministic per-object speedup (mean +- ~15%, keyed by object name).
  f64 refactor_speedup(const std::string& object_name) const;
  f64 reconstruct_speedup(const std::string& object_name) const;

  /// Modeled GPU throughput (bytes of original data per second).
  f64 gpu_refactor_bps(const std::string& object_name) const;
  f64 gpu_reconstruct_bps(const std::string& object_name) const;

  /// Measured CPU single-core throughput (pass-through for the bench).
  f64 cpu_refactor_bps() const { return cal_.refactor_bps; }
  f64 cpu_reconstruct_bps() const { return cal_.reconstruct_bps; }

 private:
  Calibration cal_;
  f64 refactor_mean_;
  f64 reconstruct_mean_;
};

}  // namespace rapids::perf
