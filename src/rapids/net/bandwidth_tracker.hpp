#pragma once

/// \file bandwidth_tracker.hpp
/// Adaptive per-endpoint bandwidth estimation — the paper's Section 4.3:
/// "the throughput of each data transfer is also recorded by this component,
/// which can be used to update the bandwidth parameters in our data
/// gathering strategy optimization model so that the results of our model
/// can adapt to any network bandwidth variation." Exponentially weighted
/// moving average per endpoint, serializable so the pipeline can persist it
/// through the metadata store.

#include <vector>

#include "rapids/util/bytes.hpp"
#include "rapids/util/common.hpp"

namespace rapids::net {

/// EWMA bandwidth estimator per storage system.
class BandwidthTracker {
 public:
  /// Start from prior estimates (e.g. Globus-log averages). `alpha` is the
  /// EWMA weight of a new observation.
  explicit BandwidthTracker(std::vector<f64> initial, f64 alpha = 0.3);

  u32 size() const { return static_cast<u32>(estimates_.size()); }
  f64 alpha() const { return alpha_; }

  /// Record one observed transfer: `bytes` moved from `system` in `seconds`
  /// of *exclusive* throughput (callers divide out contention first).
  void observe(u32 system, u64 bytes, f64 seconds);

  /// Current estimate for one system / all systems (bytes/s).
  f64 estimate(u32 system) const { return estimates_.at(system); }
  const std::vector<f64>& estimates() const { return estimates_; }

  /// Number of observations folded in per system.
  u64 observations(u32 system) const { return counts_.at(system); }

  Bytes serialize() const;
  static BandwidthTracker deserialize(std::span<const std::byte> data);

 private:
  std::vector<f64> estimates_;
  std::vector<u64> counts_;
  f64 alpha_;
};

}  // namespace rapids::net
