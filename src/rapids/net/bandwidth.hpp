#pragma once

/// \file bandwidth.hpp
/// Endpoint bandwidth estimation, reproducing the paper's methodology
/// (Section 5.1.2): the authors could not measure live WAN bandwidth, so
/// they estimated per-endpoint throughput by averaging historical Globus
/// transfer logs, obtaining 400 MB/s .. 3 GB/s across 16 endpoints. Here a
/// synthetic log generator produces per-endpoint transfer records with
/// realistic dispersion, and the same averaging recovers the endpoint
/// estimate. sample_endpoint_bandwidths() is the convenience wrapper the
/// cluster uses.

#include <span>
#include <vector>

#include "rapids/util/common.hpp"

namespace rapids::net {

/// One synthetic Globus transfer-log record (anonymized-log schema subset).
struct TransferLogRecord {
  u32 endpoint = 0;   ///< remote endpoint id
  u64 bytes = 0;      ///< transferred bytes
  f64 seconds = 0.0;  ///< wall-clock duration
  /// User-perceived throughput, the quantity the paper averages.
  f64 throughput() const { return static_cast<f64>(bytes) / seconds; }
};

/// Generate `records_per_endpoint` synthetic log records for each of `n`
/// endpoints. Each endpoint has a latent mean bandwidth log-uniform in
/// [min_bw, max_bw]; individual transfers scatter around it (lognormal,
/// sigma ~0.25) with sizes from 1 GiB to 1 TiB.
std::vector<TransferLogRecord> synth_globus_logs(u32 n, u32 records_per_endpoint,
                                                 u64 seed, f64 min_bw = 400.0e6,
                                                 f64 max_bw = 3.0e9);

/// The paper's estimator: average user-perceived throughput per endpoint.
/// Returns a vector of n bandwidth estimates (bytes/s).
std::vector<f64> estimate_bandwidths(std::span<const TransferLogRecord> logs,
                                     u32 n);

/// synth_globus_logs + estimate_bandwidths in one step (what Cluster uses).
std::vector<f64> sample_endpoint_bandwidths(u32 n, u64 seed, f64 min_bw = 400.0e6,
                                            f64 max_bw = 3.0e9);

}  // namespace rapids::net
