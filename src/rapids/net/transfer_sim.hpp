#pragma once

/// \file transfer_sim.hpp
/// Wide-area transfer timing. Two models:
///
///  * *Static equal share* — the paper's model (Section 3.3): a system's
///    bandwidth is divided evenly among all requests touching it for the
///    whole duration, so a request of s bytes at system i with c_i sibling
///    requests takes s / (B_i / c_i). The paper computes both the gathering
///    objective and the reported latencies this way.
///  * *Progressive refill* — an event-driven simulation where a finishing
///    request returns its share to the remaining ones. Strictly faster than
///    the static model; used by the ablation bench to quantify how
///    conservative the paper's model is.
///
/// All transfers are assumed to start at t = 0 (the paper launches all
/// fetches in parallel); the plan latency is the slowest completion.

#include <span>
#include <vector>

#include "rapids/util/common.hpp"

namespace rapids::net {

/// One planned transfer: `bytes` from storage system `system`.
struct Transfer {
  u32 system = 0;
  u64 bytes = 0;
};

/// Per-transfer completion times under the static equal-share model.
std::vector<f64> equal_share_times(std::span<const Transfer> transfers,
                                   std::span<const f64> bandwidths);

/// Equal-share completion times with a per-transfer latency multiplier
/// (>= 1) applied on top of the contention share — how injected stragglers
/// and degraded endpoints are fed into the simulated transfer clock.
/// `multipliers` is indexed like `transfers` (one sampled draw per transfer,
/// not per system, so two fetches from one flaky endpoint can straggle
/// independently).
std::vector<f64> equal_share_times_scaled(std::span<const Transfer> transfers,
                                          std::span<const f64> bandwidths,
                                          std::span<const f64> multipliers);

/// Slowest completion under the static equal-share model (the paper's
/// overall transfer latency).
f64 equal_share_latency(std::span<const Transfer> transfers,
                        std::span<const f64> bandwidths);

/// Average completion time under the static model — the objective of the
/// paper's gathering optimization (Eq. 10).
f64 equal_share_mean_time(std::span<const Transfer> transfers,
                          std::span<const f64> bandwidths);

/// Per-transfer completion times under the progressive-refill simulation.
std::vector<f64> progressive_times(std::span<const Transfer> transfers,
                                   std::span<const f64> bandwidths);

/// Slowest completion under progressive refill.
f64 progressive_latency(std::span<const Transfer> transfers,
                        std::span<const f64> bandwidths);

}  // namespace rapids::net
