#include "rapids/net/bandwidth.hpp"

#include <cmath>

#include "rapids/util/rng.hpp"

namespace rapids::net {

std::vector<TransferLogRecord> synth_globus_logs(u32 n, u32 records_per_endpoint,
                                                 u64 seed, f64 min_bw, f64 max_bw) {
  RAPIDS_REQUIRE(n >= 1 && records_per_endpoint >= 1);
  RAPIDS_REQUIRE(0.0 < min_bw && min_bw <= max_bw);
  Rng rng(seed);
  std::vector<TransferLogRecord> logs;
  logs.reserve(u64{n} * records_per_endpoint);
  const f64 log_lo = std::log(min_bw), log_hi = std::log(max_bw);
  for (u32 e = 0; e < n; ++e) {
    Rng er = rng.fork();
    const f64 mean_bw = std::exp(er.uniform(log_lo, log_hi));
    for (u32 r = 0; r < records_per_endpoint; ++r) {
      TransferLogRecord rec;
      rec.endpoint = e;
      // 1 GiB .. 1 TiB, log-uniform.
      rec.bytes = static_cast<u64>(
          std::exp(er.uniform(std::log(1.0e9), std::log(1.0e12))));
      // Per-transfer throughput scatters lognormally around the latent mean.
      const f64 tput = mean_bw * std::exp(er.normal(0.0, 0.25));
      rec.seconds = static_cast<f64>(rec.bytes) / tput;
      logs.push_back(rec);
    }
  }
  return logs;
}

std::vector<f64> estimate_bandwidths(std::span<const TransferLogRecord> logs,
                                     u32 n) {
  std::vector<f64> sum(n, 0.0);
  std::vector<u64> count(n, 0);
  for (const auto& rec : logs) {
    RAPIDS_REQUIRE(rec.endpoint < n);
    sum[rec.endpoint] += rec.throughput();
    count[rec.endpoint] += 1;
  }
  std::vector<f64> out(n);
  for (u32 e = 0; e < n; ++e) {
    RAPIDS_REQUIRE_MSG(count[e] > 0, "estimate_bandwidths: endpoint without logs");
    out[e] = sum[e] / static_cast<f64>(count[e]);
  }
  return out;
}

std::vector<f64> sample_endpoint_bandwidths(u32 n, u64 seed, f64 min_bw,
                                            f64 max_bw) {
  const auto logs = synth_globus_logs(n, 32, seed, min_bw, max_bw);
  return estimate_bandwidths(logs, n);
}

}  // namespace rapids::net
