#include "rapids/net/bandwidth_tracker.hpp"

namespace rapids::net {

BandwidthTracker::BandwidthTracker(std::vector<f64> initial, f64 alpha)
    : estimates_(std::move(initial)), counts_(estimates_.size(), 0),
      alpha_(alpha) {
  RAPIDS_REQUIRE(!estimates_.empty());
  RAPIDS_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  for (f64 e : estimates_) RAPIDS_REQUIRE_MSG(e > 0.0, "non-positive estimate");
}

void BandwidthTracker::observe(u32 system, u64 bytes, f64 seconds) {
  RAPIDS_REQUIRE(system < estimates_.size());
  RAPIDS_REQUIRE(seconds > 0.0);
  const f64 observed = static_cast<f64>(bytes) / seconds;
  estimates_[system] = alpha_ * observed + (1.0 - alpha_) * estimates_[system];
  counts_[system] += 1;
}

Bytes BandwidthTracker::serialize() const {
  ByteWriter w;
  w.put_u32(0x42575452u);  // "BWTR"
  w.put_f64(alpha_);
  w.put_u32(size());
  for (u32 i = 0; i < size(); ++i) {
    w.put_f64(estimates_[i]);
    w.put_u64(counts_[i]);
  }
  return w.take();
}

BandwidthTracker BandwidthTracker::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.get_u32() != 0x42575452u) throw io_error("BandwidthTracker: bad magic");
  const f64 alpha = r.get_f64();
  const u32 n = r.get_u32();
  if (u64{n} * 16 > r.remaining())
    throw io_error("BandwidthTracker: bad system count");
  std::vector<f64> estimates(n);
  std::vector<u64> counts(n);
  for (u32 i = 0; i < n; ++i) {
    estimates[i] = r.get_f64();
    counts[i] = r.get_u64();
  }
  BandwidthTracker t(std::move(estimates), alpha);
  t.counts_ = std::move(counts);
  return t;
}

}  // namespace rapids::net
