#include "rapids/net/transfer_sim.hpp"

#include <algorithm>
#include <limits>

namespace rapids::net {

namespace {

std::vector<u32> requests_per_system(std::span<const Transfer> transfers,
                                     std::size_t num_systems) {
  std::vector<u32> count(num_systems, 0);
  for (const auto& t : transfers) {
    RAPIDS_REQUIRE(t.system < num_systems);
    count[t.system] += 1;
  }
  return count;
}

}  // namespace

std::vector<f64> equal_share_times(std::span<const Transfer> transfers,
                                   std::span<const f64> bandwidths) {
  const auto count = requests_per_system(transfers, bandwidths.size());
  std::vector<f64> out;
  out.reserve(transfers.size());
  for (const auto& t : transfers) {
    const f64 share = bandwidths[t.system] / static_cast<f64>(count[t.system]);
    out.push_back(static_cast<f64>(t.bytes) / share);
  }
  return out;
}

std::vector<f64> equal_share_times_scaled(std::span<const Transfer> transfers,
                                          std::span<const f64> bandwidths,
                                          std::span<const f64> multipliers) {
  RAPIDS_REQUIRE(multipliers.size() == transfers.size());
  std::vector<f64> out = equal_share_times(transfers, bandwidths);
  for (std::size_t i = 0; i < out.size(); ++i) {
    RAPIDS_REQUIRE(multipliers[i] >= 1.0);
    out[i] *= multipliers[i];
  }
  return out;
}

f64 equal_share_latency(std::span<const Transfer> transfers,
                        std::span<const f64> bandwidths) {
  f64 latest = 0.0;
  for (f64 t : equal_share_times(transfers, bandwidths))
    latest = std::max(latest, t);
  return latest;
}

f64 equal_share_mean_time(std::span<const Transfer> transfers,
                          std::span<const f64> bandwidths) {
  if (transfers.empty()) return 0.0;
  const auto times = equal_share_times(transfers, bandwidths);
  f64 sum = 0.0;
  for (f64 t : times) sum += t;
  return sum / static_cast<f64>(times.size());
}

std::vector<f64> progressive_times(std::span<const Transfer> transfers,
                                   std::span<const f64> bandwidths) {
  const std::size_t n = transfers.size();
  std::vector<f64> done(n, 0.0);
  std::vector<f64> remaining(n);
  std::vector<bool> active(n, true);
  auto count = requests_per_system(transfers, bandwidths.size());
  for (std::size_t i = 0; i < n; ++i)
    remaining[i] = static_cast<f64>(transfers[i].bytes);

  f64 now = 0.0;
  std::size_t live = n;
  while (live > 0) {
    // Current rate of each active transfer.
    f64 dt = std::numeric_limits<f64>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      const f64 rate =
          bandwidths[transfers[i].system] / static_cast<f64>(count[transfers[i].system]);
      dt = std::min(dt, remaining[i] / rate);
    }
    // Advance to the earliest completion; mark everything that finishes.
    now += dt;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      const f64 rate =
          bandwidths[transfers[i].system] / static_cast<f64>(count[transfers[i].system]);
      remaining[i] -= rate * dt;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      if (remaining[i] <= 1e-9 * std::max<f64>(1.0, static_cast<f64>(transfers[i].bytes))) {
        active[i] = false;
        done[i] = now;
        count[transfers[i].system] -= 1;
        --live;
      }
    }
  }
  return done;
}

f64 progressive_latency(std::span<const Transfer> transfers,
                        std::span<const f64> bandwidths) {
  f64 latest = 0.0;
  for (f64 t : progressive_times(transfers, bandwidths))
    latest = std::max(latest, t);
  return latest;
}

}  // namespace rapids::net
