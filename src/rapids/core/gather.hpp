#pragma once

/// \file gather.hpp
/// Data-gathering strategies (Section 3.3 / 5.4): decide which storage
/// system serves each needed fragment so that the restore transfer finishes
/// fast despite bandwidth contention. Implements the paper's three
/// strategies — Random, Naive (greedy by bandwidth), and Optimized (the
/// MINLP of Eq. 10 solved by ACO with a Naive warm start) — plus the shared
/// plan evaluation under the equal-share transfer model.

#include <optional>
#include <vector>

#include "rapids/core/availability.hpp"
#include "rapids/net/transfer_sim.hpp"
#include "rapids/solver/aco.hpp"
#include "rapids/util/common.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::core {

/// Inputs of one gathering decision.
struct GatherProblem {
  u32 n = 16;                    ///< storage systems
  FtConfig m;                    ///< per-level tolerances m_1..m_l
  std::vector<u64> level_sizes;  ///< s_1..s_l, bytes (encoded level payloads)
  std::vector<f64> bandwidths;   ///< per-system bytes/s
  std::vector<bool> available;   ///< per-system availability

  /// Highest j such that levels 1..j are recoverable given the current
  /// outages: requires failed-count <= m_j (paper Section 3.3). 0 = nothing
  /// recoverable.
  u32 recoverable_levels() const;

  /// Fragment size of level j (1-based): s_j / (n - m_j), the EC padding
  /// rounded up.
  u64 fragment_bytes(u32 j) const;
};

/// A gathering plan: for each recoverable level (outer index = level-1), the
/// systems that serve one fragment each.
struct GatherPlan {
  solver::Selection systems_per_level;
  f64 mean_time = 0.0;      ///< Eq. 10 objective under equal share
  f64 latency = 0.0;        ///< slowest transfer (reported gathering latency)
  f64 planning_seconds = 0; ///< optimizer wall time (paper adds this for ACO)
  /// Per recoverable level: when that level's slowest fragment lands under
  /// the same equal-share model `latency` uses. level_latencies[0] is the
  /// plan's time-to-first-byte — what a staged gather forfeits by waiting
  /// for all levels, and the baseline a streaming restore is judged against.
  std::vector<f64> level_latencies;
};

/// Expand a plan into transfer requests for net:: evaluation.
std::vector<net::Transfer> plan_transfers(const GatherProblem& problem,
                                          const solver::Selection& selection);

/// Score a selection: fills mean_time and latency.
GatherPlan evaluate_plan(const GatherProblem& problem,
                         solver::Selection selection);

/// "Random" strategy — uniformly random feasible selection per level.
GatherPlan random_plan(const GatherProblem& problem, Rng& rng);

/// "Naive" strategy — for every level take the needed fragments from the
/// available systems with the highest bandwidth (ignores contention).
GatherPlan naive_plan(const GatherProblem& problem);

/// "Optimized" strategy — ACO on Eq. 10, warm-started from Naive. The
/// solver's wall time lands in planning_seconds; the paper budgets 60 s and
/// adds it to the reported latency.
GatherPlan optimized_plan(const GatherProblem& problem,
                          const solver::AcoOptions& options);

}  // namespace rapids::core
