#pragma once

/// \file pipeline.hpp
/// The end-to-end RAPIDS pipeline — the four software components of the
/// paper's Section 4 wired together:
///
///   prepare():  read -> refactor (pMGARD role) -> optimize FT configuration
///               (Algorithm 1) -> per-level erasure coding -> self-describing
///               fragments -> distribute across the cluster -> metadata into
///               the key-value store.
///   restore():  metadata lookup -> gathering plan (Random/Naive/Optimized)
///               -> WAN transfer (simulated clock, real bytes) -> erasure
///               decode -> progressive reconstruction -> error accounting.
///
/// The cluster and metadata store are injected, so tests can drive outages
/// between prepare and restore and examples can persist across runs.

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "rapids/core/availability.hpp"
#include "rapids/core/ft_optimizer.hpp"
#include "rapids/core/gather.hpp"
#include "rapids/ec/reed_solomon.hpp"
#include "rapids/kvstore/kvstore.hpp"
#include "rapids/mgard/refactorer.hpp"
#include "rapids/net/bandwidth_tracker.hpp"
#include "rapids/storage/cluster.hpp"
#include "rapids/storage/placement.hpp"
#include "rapids/storage/restore_cache.hpp"
#include "rapids/storage/system_health.hpp"
#include "rapids/util/common.hpp"
#include "rapids/util/retry.hpp"

namespace rapids::core {

/// Gathering strategy selector (paper Section 5.4).
enum class GatherStrategy { kRandom, kNaive, kOptimized };

/// Pipeline configuration.
struct PipelineConfig {
  mgard::RefactorOptions refactor;  ///< refactoring knobs
  f64 overhead_budget = 0.5;        ///< omega for the FT optimizer
  ec::MatrixKind matrix_kind = ec::MatrixKind::kVandermonde;
  storage::PlacementPolicy placement = storage::PlacementPolicy::kRotate;
  GatherStrategy strategy = GatherStrategy::kOptimized;
  solver::AcoOptions aco;           ///< budget for the Optimized strategy
  u64 random_seed = 99;             ///< seed for the Random strategy
  /// Learn per-system bandwidth from observed transfer throughput (paper
  /// Section 4.3) and persist the estimates in the metadata store, so
  /// gathering plans adapt to network variation across restores.
  bool adapt_bandwidth = true;

  // --- resilient I/O policy (fault model: transient / permanent / corrupt /
  //     straggler; see DESIGN.md "Fault model and resilience policy") ---

  /// Bounded retry with deterministic backoff for every remote storage op
  /// (distribution puts, restore/repair/scrub gets). Backoff runs on the
  /// simulated clock; jitter seeds derive from the op identity, so retry
  /// schedules are reproducible under any thread interleaving.
  RetryPolicy retry;
  /// Hedge fetches whose simulated transfer time exceeds hedge_threshold ×
  /// the plan median: a duplicate read of a sibling fragment of the same
  /// level is issued to the fastest unplanned holder, and the faster of the
  /// two completions wins. Also rescues persistently failed fetches without
  /// a full replan.
  bool hedged_reads = true;
  f64 hedge_threshold = 2.0;
  /// Track per-system success/failure/latency in a SystemHealth circuit
  /// breaker (persisted next to the bandwidth tracker) and exclude
  /// circuit-open systems from gathering plans when that does not reduce
  /// the recoverable level count.
  bool health_tracking = true;
  storage::HealthOptions health;

  // --- progressive refinement (restore cache + refine sessions) ---

  /// Byte budget of the CRC-verified LRU cache of fetched retrieval-level
  /// payloads, shared across restores and refine sessions. Consulted before
  /// gather planning; a hit skips the WAN fetch and erasure decode for that
  /// level. 0 disables caching (every restore refetches, the pre-cache
  /// behavior).
  u64 restore_cache_bytes = 256ull << 20;
  /// A refine session reuses its cached gathering plan while availability is
  /// unchanged and no system's bandwidth estimate has drifted by more than
  /// this relative tolerance; beyond it the ladder is replanned.
  f64 plan_reuse_bw_tolerance = 0.25;

  // --- streaming dataflow (fragment-granular pipelining) ---

  /// Stream prepare and restore at retrieval-level/stripe granularity:
  /// prepare erasure-codes and distributes each level as the refactorer
  /// materializes it (a bounded channel connects the stages), restore decodes
  /// and merges each level as its fragment quorum lands instead of waiting
  /// for the full gather. Outputs are byte-identical to the staged path at
  /// every level prefix; false restores the staged flow (the bench baseline).
  bool streaming = true;
  /// Stripe width for the fragment-granular RS encode and the streamed WAN
  /// puts: stripe s of a level encodes (and ships) while stripe s+1 is still
  /// in flight and later levels still refactor.
  u64 stream_stripe_bytes = 256 * 1024;
  /// Bounded capacity (in retrieval levels) of the refactor -> encode ->
  /// distribute channel: the refactorer stalls (backpressure) once this many
  /// materialized levels are waiting on downstream stages.
  u32 stream_level_window = 2;
};

/// Storage-key name of one encoding generation of an object: generation 0
/// keeps the plain object name (the pre-migration layout, and what prepare
/// always writes), generation g > 0 appends "@g<g>" so both generations'
/// fragments coexist on the systems while a background migration is in
/// flight. '@' never appears in a generation suffix's digits, so prefixes of
/// distinct generations can never shadow each other.
std::string generation_storage_name(const std::string& name, u32 generation);

/// Everything persisted about one prepared object (the metadata record).
struct ObjectRecord {
  mgard::RefactoredObject meta;  ///< payloads empty when deserialized
  FtConfig ft;                   ///< chosen m_1..m_l
  std::vector<u64> level_sizes;  ///< encoded retrieval-level bytes s_1..s_l
  ec::MatrixKind matrix_kind = ec::MatrixKind::kVandermonde;
  storage::PlacementPolicy placement = storage::PlacementPolicy::kRotate;
  /// Encoding generation the fragment keys live under (bumped by each
  /// completed background migration; 0 = as prepared).
  u32 generation = 0;
  /// Per-system failure probability the current ft was optimized against
  /// (mean across systems when heterogeneous) — the drift baseline.
  f64 planned_p = 0.0;
  /// Eq. 5 expected error the optimizer promised under planned_p; the
  /// controller re-evaluates against this margin as availability moves.
  f64 planned_error = 0.0;

  /// The name fragment keys of the current generation are stored under.
  std::string storage_name(const std::string& name) const {
    return generation_storage_name(name, generation);
  }

  Bytes serialize() const;
  static ObjectRecord deserialize(std::span<const std::byte> data);
};

/// prepare() outcome + instrumentation.
struct PrepareReport {
  ObjectRecord record;
  f64 expected_error = 1.0;      ///< Eq. 5 under the chosen configuration
  f64 storage_overhead = 0.0;    ///< Eq. 6 (parity bytes / original bytes)
  f64 network_overhead = 0.0;    ///< shipped bytes / original bytes
  f64 distribution_latency = 0;  ///< simulated WAN latency (equal share)
  /// End-to-end prepare latency: wall time of the compute stages plus the
  /// simulated WAN distribution. Streaming overlaps the two — each level's
  /// puts start while later levels still refactor — so this is
  /// max_j(store-start wall of level j + level j's simulated latency);
  /// staged pays the full compute wall plus the whole-plan latency.
  f64 prepare_latency = 0.0;
  f64 refactor_seconds = 0.0;       ///< transform + plane encode + assemble
  f64 transform_seconds = 0.0;      ///< widen/pad/multigrid share of refactor
  f64 plane_encode_seconds = 0.0;   ///< bitplane-encode share of refactor
  /// Entropy-codec substage of the plane encode: segment wall time, emitted
  /// bytes, and the raw/sparse/zero/Rice mode histogram.
  mgard::CodecStats plane_codec;
  f64 optimize_seconds = 0.0;
  f64 encode_seconds = 0.0;  ///< RS encode (streaming: summed across levels,
                             ///< which overlap, so the sum may exceed wall)
  f64 store_seconds = 0.0;   ///< distribution puts (streaming: summed)
  u64 fragments_stored = 0;
  u32 put_retries = 0;       ///< transient put failures absorbed by retry
  u32 relocations = 0;       ///< fragments re-placed after persistent failure
  f64 backoff_seconds = 0.0; ///< simulated backoff charged to distribution
  u32 levels_streamed = 0;   ///< levels shipped through the streaming channel
  u32 stream_fallback_puts = 0;  ///< streamed puts that fell back to a
                                 ///< whole-fragment retry after a mid-stream
                                 ///< fault or outage
};

/// One object of a prepare_batch(): the caller keeps `data` alive until the
/// batch returns.
struct PrepareRequest {
  std::span<const f32> data;
  mgard::Dims dims;
  std::string name;
};

/// restore() outcome + instrumentation.
struct RestoreReport {
  std::vector<f32> data;        ///< reconstructed field (empty if nothing recoverable)
  u32 levels_used = 0;          ///< retrieval levels that survived the outage
  f64 rel_error_bound = 1.0;    ///< guaranteed bound for levels_used (1 = lost)
  GatherPlan plan;              ///< chosen gathering plan
  f64 gather_latency = 0.0;     ///< simulated WAN latency actually observed
                                ///< (stragglers, hedges, retry backoff folded
                                ///< in; equals the plan latency when healthy)
  /// Simulated time until retrieval level 1 was decodable — the streamed
  /// restore's time-to-first-byte. 0 when level 1 came from the restore
  /// cache; equals gather_latency on the staged path (nothing is usable
  /// before the full gather lands).
  f64 first_level_latency = 0.0;
  /// Wall time from restore start until the first (level-1) approximation
  /// was reconstructed and available to the caller.
  f64 first_byte_seconds = 0.0;
  f64 planning_seconds = 0.0;   ///< optimizer wall time
  f64 fetch_seconds = 0.0;      ///< wall time in the fragment-fetch stage
  f64 decode_seconds = 0.0;
  f64 reconstruct_seconds = 0.0;
  u32 fetch_retries = 0;        ///< fetch attempts beyond the first
  u32 hedged_fetches = 0;       ///< hedge reads launched against stragglers
  u32 hedge_wins = 0;           ///< hedges that beat or rescued the primary
  u32 replans = 0;              ///< gathering replans forced by bad systems
  f64 backoff_seconds = 0.0;    ///< simulated retry backoff (in gather_latency)
  u64 bytes_transferred = 0;    ///< fragment payload bytes fetched over the
                                ///< (simulated) WAN, hedges included — zero
                                ///< for levels served from the restore cache
  u64 planes_decoded = 0;       ///< magnitude bitplane segments decoded (a
                                ///< refine rung decodes only its new planes)
  /// Entropy-codec substage of the plane decode: segment wall time, consumed
  /// bytes, and the raw/sparse/zero/Rice mode histogram.
  mgard::CodecStats plane_codec;
  u32 cache_hits = 0;           ///< retrieval levels served from the cache
  u32 cache_misses = 0;         ///< levels that had to be fetched
  u32 cache_corrupt = 0;        ///< cached levels evicted on CRC mismatch
  bool plan_reused = false;     ///< gathering plan reused from the session
  u32 levels_streamed = 0;      ///< levels delivered incrementally as their
                                ///< fragment quorum landed (streaming restore)
};

/// Per-call resource bounds for one restore/refine. `sim_budget_s` is the
/// caller's remaining *simulated* deadline budget (e.g. the service layer's
/// `deadline - dispatch_time`): the fetch path charges every retry backoff
/// against it and refuses to launch a retry — or a hedged read whose launch
/// point lies beyond it — once the budget is spent, so no I/O outlives the
/// request that issued it. The default (+inf) reproduces the policy-only
/// retry behaviour bit-for-bit. The budget bounds the *extra* simulated
/// delay the resilience machinery may add; first attempts of planned
/// fragments always go out (degradation stays levels-first, never partial).
struct RestoreOptions {
  f64 sim_budget_s = std::numeric_limits<f64>::infinity();
};

/// A progressive-refinement session: everything already materialized for one
/// object — the accumulated plane sets of fetched retrieval levels, the
/// per-decomposition-level ProgressiveState, the last recomposed field, and
/// the cached gathering plan for the levels still to come — so each
/// RapidsPipeline::refine() rung pays only for retrieval levels beyond the
/// previous cursor. Obtain via begin_refine(); safe to share across threads
/// (refine serializes on the session's mutex).
class RefineSession {
 public:
  explicit RefineSession(std::string name) : name_(std::move(name)) {}

  RefineSession(const RefineSession&) = delete;
  RefineSession& operator=(const RefineSession&) = delete;

  const std::string& name() const { return name_; }

  /// Retrieval levels fetched and decoded so far (the refinement cursor).
  u32 levels() const;
  /// Guaranteed relative error bound of data() (1.0 before the first rung).
  f64 rel_error_bound() const;
  /// The last recomposed field (empty before the first successful rung).
  std::vector<f32> data() const;

 private:
  friend class RapidsPipeline;

  /// Forget the cached ladder plan (availability or bandwidths moved).
  void clear_plan() {
    planned_rows_.clear();
    plan_bandwidths_.clear();
    plan_available_.clear();
  }

  mutable std::mutex mu_;
  const std::string name_;
  u32 cursor_ = 0;   ///< retrieval levels materialized into data_
  f64 bound_ = 1.0;  ///< rel error bound at cursor_
  std::vector<f32> data_;
  std::vector<mgard::PlaneSet> plane_sets_;
  std::vector<mgard::ProgressiveState> pstates_;
  /// Ladder plan computed once for all then-remaining levels: row of serving
  /// systems per retrieval level, plus the bandwidth/availability snapshot it
  /// was computed against (for the staleness check).
  std::map<u32, std::vector<u32>> planned_rows_;
  std::vector<f64> plan_bandwidths_;
  std::vector<bool> plan_available_;
};

/// The orchestrator.
class RapidsPipeline {
 public:
  RapidsPipeline(storage::Cluster& cluster, kv::KvStore& db,
                 PipelineConfig config = {}, ThreadPool* pool = nullptr);

  const PipelineConfig& config() const { return config_; }

  /// The cluster's nominal per-system outage probability (immutable config,
  /// safe without the I/O lock) — the prior behind failure_prob_estimates()
  /// and the fallback plan baseline for records that predate the control
  /// plane.
  f64 nominal_failure_prob() const;

  /// Full data-preparation phase for one object.
  PrepareReport prepare(std::span<const f32> data, mgard::Dims dims,
                        const std::string& name);

  /// Prepare a batch of objects with their stages overlapped: each object is
  /// one task on the pool, so object B refactors while object A erasure-codes
  /// and object C's fragments distribute. Compute stages (refactor, FT
  /// optimization, per-level encode) run concurrently across objects; the
  /// shared stage (cluster stores + metadata writes) is serialized internally,
  /// with fragment locations batched per level. Results are byte-identical to
  /// an equivalent serial prepare() loop. Reports come back in request order;
  /// the first failure (if any) is rethrown after all objects settle.
  /// Falls back to the serial loop when no pool was injected.
  std::vector<PrepareReport> prepare_batch(std::span<const PrepareRequest> requests);

  /// Full data-restoration phase under the cluster's *current* availability.
  /// Transient fetch failures and in-flight corruption are retried with
  /// deterministic backoff; stragglers are hedged against sibling fragment
  /// holders; if a planned fragment stays missing or damaged, the affected
  /// system is excluded and the gathering is replanned (bounded) instead of
  /// failing the restore. Degradation is levels-first, never wrong: the
  /// returned rel_error_bound always holds for levels_used, and exhausted
  /// replanning yields the documented degraded report (empty data,
  /// rel_error_bound = 1.0) rather than a throw.
  RestoreReport restore(const std::string& name);

  /// restore() with per-call resource bounds (deadline-budgeted retries and
  /// hedges — see RestoreOptions).
  RestoreReport restore(const std::string& name, const RestoreOptions& opts);

  /// Restore a batch of objects concurrently (one task per object; planning,
  /// erasure decode, and reconstruction overlap across objects, while the
  /// metadata/fragment fetch stage is serialized internally). Safe to run
  /// concurrently with prepare_batch on the same pipeline. Reconstructed data
  /// is byte-identical to serial restore() calls. Reports in request order.
  std::vector<RestoreReport> restore_batch(std::span<const std::string> names);

  /// Open a progressive-refinement session for `name`. refine() on the
  /// returned handle fetches only retrieval levels beyond the session's
  /// cursor. Multiple sessions — even for the same object — may be active
  /// concurrently, and all share the pipeline's restore cache.
  std::shared_ptr<RefineSession> begin_refine(const std::string& name);

  /// Advance `session` until its guaranteed bound is <= rel_bound (or to the
  /// object's deepest level when no level bound is that tight): consult the
  /// restore cache, fetch only the uncached levels past the cursor (reusing
  /// the session's gathering plan while bandwidth estimates have not drifted
  /// past plan_reuse_bw_tolerance), decode only the new bitplanes, and
  /// recompose. The returned field is byte-identical to a from-scratch
  /// restore of the same level prefix. If outages put the requested bound
  /// out of reach, the rung degrades to the deepest reachable level —
  /// possibly the session's current state — instead of throwing.
  RestoreReport refine(RefineSession& session, f64 rel_bound);

  /// refine() with per-call resource bounds (deadline-budgeted retries and
  /// hedges — see RestoreOptions).
  RestoreReport refine(RefineSession& session, f64 rel_bound,
                       const RestoreOptions& opts);

  /// Convenience overload against a pipeline-owned session for `name`,
  /// created on first use and dropped by end_refine().
  RestoreReport refine(const std::string& name, f64 rel_bound);
  RestoreReport refine(const std::string& name, f64 rel_bound,
                       const RestoreOptions& opts);

  /// Drop the pipeline-owned refine session for `name` (no-op when absent).
  void end_refine(const std::string& name);

  /// The shared CRC-verified retrieval-level payload cache.
  storage::RestoreCache& restore_cache() { return restore_cache_; }

  /// The pipeline's current per-system bandwidth estimates: the tracker's
  /// learned values when adapt_bandwidth is on, else the cluster's.
  std::vector<f64> bandwidth_estimates() const;

  /// Metadata lookup (nullopt if the object was never prepared).
  std::optional<ObjectRecord> lookup(const std::string& name) const;

  /// The per-system health tracker (circuit breakers + error/latency
  /// counters), lazily loaded from the metadata store. Mutating it directly
  /// is for tests/tools; the pipeline records outcomes on its own.
  storage::SystemHealth& system_health();

  /// Rebuild one lost/damaged fragment from survivors and re-store it on
  /// `target_system` (the repair flow of Section 4.2). Throws if fewer than
  /// k survivors are reachable.
  void repair_fragment(const std::string& name, u32 level, u32 index,
                       u32 target_system);

  /// Migrate every fragment of `name` off `system` onto other systems
  /// (least-loaded first), rebuilding from survivors — the maintenance flow
  /// for retiring a storage system without losing tolerance. The metadata
  /// store is updated with the new locations. Returns fragments moved.
  u32 evacuate_system(const std::string& name, u32 system);

  /// Names of every prepared object, in key order.
  std::vector<std::string> list_objects() const;

  /// Outcome of a scrub pass over one object.
  struct ScrubReport {
    u64 fragments_checked = 0;
    /// (level, index, system) of fragments found missing or CRC-damaged.
    std::vector<std::tuple<u32, u32, u32>> damaged;
    u64 repaired = 0;  ///< rebuilt in place (when repair = true)
  };

  /// Periodic integrity scrub: verify the CRC of every recorded fragment on
  /// every reachable system; optionally rebuild damaged/missing ones in
  /// place from survivors. Unreachable (down) systems are skipped, not
  /// flagged — outage is the availability model's job, bit rot is scrub's.
  ScrubReport scrub(const std::string& name, bool repair = true);

  /// Graceful data aging: drop retrieval levels `keep_levels+1..l` of `name`
  /// from every storage system, reclaiming their space. The object remains
  /// restorable at the (coarser) guaranteed error of level `keep_levels` —
  /// the accuracy-for-capacity trade the hierarchy makes possible for cold
  /// timesteps. Irreversible. Returns the logical bytes reclaimed
  /// (fragments including parity). Requires 1 <= keep_levels < current.
  u64 age_object(const std::string& name, u32 keep_levels);

  // --- control-plane surface (background controller, CLI status) ---
  //
  // Everything below takes the pipeline's I/O lock internally, so a
  // background controller thread can drive it while foreground prepares /
  // restores are in flight.

  /// Metadata lookup under the I/O lock (lookup() itself is unsynchronized
  /// and meant for single-threaded callers).
  std::optional<ObjectRecord> snapshot_record(const std::string& name);

  /// list_objects() under the I/O lock.
  std::vector<std::string> snapshot_object_names();

  /// Current per-system bandwidth estimates under the I/O lock.
  std::vector<f64> snapshot_bandwidths();

  /// Per-system failure-probability estimates for re-evaluation: the health
  /// tracker's Beta-smoothed counter estimate (prior = the cluster's nominal
  /// p), floored at 0.5 while a breaker is open, and 1.0 for systems the
  /// cluster currently marks unavailable.
  std::vector<f64> failure_prob_estimates(f64 prior_strength = 20.0);

  /// Per-system breaker states (non-mutating peek under the I/O lock).
  std::vector<storage::CircuitState> breaker_states();

  /// Register (or with an empty function, detach) the health tracker's
  /// breaker-transition callback. It fires while the pipeline holds its I/O
  /// lock, so the callback must only hand the event off (enqueue under its
  /// own leaf lock) — it must not call back into the pipeline.
  void set_health_transition_callback(
      storage::SystemHealth::TransitionCallback cb);

  /// Run `fn` with exclusive access to the metadata store. The control
  /// plane's migration journal shares the KV database with the pipeline,
  /// whose own accesses all serialize on the same internal lock; routing
  /// journal reads/writes through here keeps that invariant. `fn` must not
  /// call back into the pipeline.
  void with_metadata_lock(const std::function<void(kv::KvStore&)>& fn);

  // --- crash-safe two-phase migration primitives (control::MigrationEngine
  //     sequences these; each call is individually atomic/idempotent) ---

  /// Fetch and erasure-decode one retrieval level of `name`'s *current*
  /// generation (restore cache consulted first). Adds the fragment bytes
  /// actually fetched over the simulated WAN to *wan_bytes when non-null.
  /// Throws io_error when the level is not recoverable right now.
  Bytes fetch_level_payload(const std::string& name, u32 level,
                            u64* wan_bytes = nullptr);

  /// Phase 1 of a migration step: re-encode one level payload with parity
  /// count `m_new` and store its fragments under generation `generation`'s
  /// keys (streaming puts when the pipeline streams, with the usual retry /
  /// relocate / health machinery). The object's live record is untouched —
  /// restores keep serving the old generation. Re-running the same call
  /// overwrites the same keys, so phase-1 resume after a crash is a plain
  /// replay. Returns fragment bytes shipped.
  u64 store_level_generation(const std::string& name, u32 generation,
                             u32 level, u32 m_new,
                             std::span<const std::byte> payload);

  /// Phase 2, the commit point: durably flip `name` to `new_generation` /
  /// `new_ft` with one atomic ObjectRecord write (single KV put → single
  /// WAL barrier), stamping the re-optimizer's planned_p / planned_error.
  /// Every cached payload of the object is invalidated. Idempotent.
  void flip_generation(const std::string& name, u32 new_generation,
                       const FtConfig& new_ft, f64 planned_p,
                       f64 planned_error);

  /// Phase 3 / rollback: drop every fragment of `name`'s generation
  /// `generation` — location keys from the metadata store (one delete
  /// batch) plus a per-system key sweep that catches orphans whose
  /// locations were never recorded (a phase-1 crash window). Idempotent:
  /// absent fragments and keys are no-ops. Returns fragments erased.
  u64 gc_generation(const std::string& name, u32 generation);

 private:
  /// Single-object bodies shared by the serial and batch entry points. The
  /// compute stages run lock-free; every touch of shared state (cluster
  /// stores/fetches, metadata reads/writes, the bandwidth tracker) happens
  /// under io_mu_. Invariant: code holding io_mu_ never calls into the pool
  /// (a helping waiter could steal a task that needs the same lock).
  PrepareReport do_prepare(std::span<const f32> data, mgard::Dims dims,
                           const std::string& name);
  /// The staged flow: refactor everything, optimize, encode every level,
  /// then distribute — the pre-streaming baseline (config_.streaming off).
  PrepareReport do_prepare_staged(std::span<const f32> data, mgard::Dims dims,
                                  const std::string& name);
  /// The streaming flow: retrieval levels ride a bounded channel from the
  /// refactorer into stripe-granular RS encode and distribution, so level
  /// j's WAN puts start while level j+1 still refactors. Stored bytes,
  /// metadata record, and report.record are byte-identical to the staged
  /// flow's.
  PrepareReport do_prepare_streaming(std::span<const f32> data,
                                     mgard::Dims dims, const std::string& name);
  /// Outcome counters of one level's fragment distribution.
  struct StoreStats {
    u64 fragments_stored = 0;
    u32 put_retries = 0;
    u32 relocations = 0;
    u32 fallback_puts = 0;
    f64 backoff_seconds = 0.0;
    std::vector<net::Transfer> transfers;  ///< (target system, bytes) per put
  };
  /// Distribute one level's fragments (placement, retry, relocation, health,
  /// per-level location batch). Caller holds io_mu_. stripe_bytes > 0 ships
  /// each fragment through a streamed put in stripes of that size, falling
  /// back to the whole-fragment retry path on a mid-stream fault;
  /// stripe_bytes == 0 is the staged whole-fragment put.
  void store_level_locked(const std::string& name, u32 level,
                          const std::vector<ec::Fragment>& frags,
                          u64 stripe_bytes, StoreStats& stats);
  RestoreReport do_restore(const std::string& name,
                           const RestoreOptions& opts = {});
  ec::ReedSolomon codec_for(const ObjectRecord& record, u32 level) const;
  net::BandwidthTracker& tracker();
  void persist_tracker();
  storage::SystemHealth& health();
  void persist_health();
  /// Record one storage-op outcome in the health tracker (no-op when
  /// health_tracking is off). Must be called under io_mu_.
  void record_health(u32 system, bool ok, f64 latency_multiplier = 1.0);
  /// Fetch one fragment with bounded retry, classifying failures: io_error
  /// is transient (retried with backoff), a missing fragment is permanent
  /// (no retry), a CRC mismatch is in-flight corruption (retried — a
  /// re-read may come back clean). Must be called under io_mu_.
  struct FetchOutcome {
    std::optional<ec::Fragment> fragment;  ///< set iff a verified copy landed
    u32 attempts = 1;
    f64 backoff_seconds = 0.0;
    bool missing = false;  ///< permanent: no fragment recorded/stored
  };
  /// `budget_s` is the remaining simulated deadline budget: retries stop as
  /// soon as the next backoff would overrun it (default: unbounded).
  FetchOutcome fetch_with_retry(
      u32 system, const ec::FragmentId& id,
      f64 budget_s = std::numeric_limits<f64>::infinity());
  /// repair_fragment body; caller must hold io_mu_ (runs pool-free: a
  /// helping waiter inside the lock could steal a task that needs it).
  void repair_fragment_locked(const std::string& name, u32 level, u32 index,
                              u32 target_system);
  /// gc_generation body; caller must hold io_mu_.
  u64 gc_generation_locked(const std::string& name, u32 generation);
  GatherPlan plan_gather(const GatherProblem& problem) const;
  /// Fragment locations of one level from the metadata store: system -> the
  /// fragment index it hosts (the authoritative map; placement only seeds it
  /// at prepare time, repair/evacuation may move fragments afterwards).
  std::map<u32, u32> fragment_locations(const std::string& name, u32 level) const;
  /// Metadata lookup + gathering-problem snapshot (availability, bandwidth
  /// estimates, health exclusions) under io_mu_. Throws on unknown objects.
  void snapshot_problem(const std::string& name,
                        std::optional<ObjectRecord>& record,
                        GatherProblem& problem);
  /// Streamed delivery of one landed retrieval level: called (on the calling
  /// thread, outside io_mu_) the moment `level`'s fragment quorum fetched and
  /// decoded, strictly ascending over the requested levels. `latency` is the
  /// simulated time at which the level was decodable (equal-share completion
  /// of its slowest fragment, stragglers/hedges/backoff folded in).
  using FetchSink = std::function<void(u32 level, const Bytes& payload,
                                       f64 latency)>;
  /// Plan, fetch, and erasure-decode the given retrieval levels (0-based,
  /// ascending) into payloads[level], replanning internally around bad
  /// systems (mutates problem.available, counts into report.replans).
  /// Levels are fetched and decoded one at a time in ascending order and
  /// announced through `sink`; a landed level survives later replans — a
  /// replan only covers the levels still in flight. `preplanned`, when
  /// non-null, carries one row of serving systems per requested level to
  /// reuse instead of planning. Returns false when some still-unfetched
  /// requested level stopped being recoverable — the caller decides how to
  /// degrade; payloads of landed levels are filled (and announced) even
  /// then.
  bool fetch_levels(const ObjectRecord& record, const std::string& name,
                    GatherProblem& problem, const std::vector<u32>& levels,
                    const solver::Selection* preplanned, RestoreReport& report,
                    std::vector<Bytes>& payloads, const FetchSink& sink = {},
                    const RestoreOptions& opts = {});

  storage::Cluster& cluster_;
  kv::KvStore& db_;
  PipelineConfig config_;
  ThreadPool* pool_;
  /// Shared across prepare/restore/refine calls (it is stateless apart from
  /// options and pool) instead of being rebuilt per call; the heavy per-call
  /// scratch lives in the WorkspacePool the refactorer leases from.
  mgard::Refactorer refactorer_;
  std::optional<net::BandwidthTracker> tracker_;
  std::optional<storage::SystemHealth> health_;
  /// Serializes shared-state stages when batch objects run concurrently.
  /// Maintenance APIs (repair, scrub, evacuate, age) take it too, so chaos
  /// runs may scrub while batches are in flight.
  std::mutex io_mu_;
  /// Retrieval-level payload cache (self-locking; a leaf in the lock order:
  /// never held while taking io_mu_ or a session mutex).
  storage::RestoreCache restore_cache_;
  /// Pipeline-owned sessions for the refine(name, bound) convenience API.
  /// Lock order: session.mu_ -> io_mu_; sessions_mu_ only guards the map.
  std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<RefineSession>> sessions_;
};

}  // namespace rapids::core
