#include "rapids/core/gather.hpp"

#include <algorithm>
#include <numeric>

#include "rapids/util/timer.hpp"

namespace rapids::core {

u32 GatherProblem::recoverable_levels() const {
  RAPIDS_REQUIRE(valid_ft_config(n, m));
  RAPIDS_REQUIRE(available.size() == n);
  u32 failed = 0;
  for (bool a : available) failed += !a;
  u32 j = 0;
  while (j < m.size() && failed <= m[j]) ++j;
  return j;
}

u64 GatherProblem::fragment_bytes(u32 j) const {
  RAPIDS_REQUIRE(j >= 1 && j <= level_sizes.size());
  return ceil_div(level_sizes[j - 1], n - m[j - 1]);
}

std::vector<net::Transfer> plan_transfers(const GatherProblem& problem,
                                          const solver::Selection& selection) {
  std::vector<net::Transfer> out;
  for (u32 j = 0; j < selection.size(); ++j) {
    const u64 frag = problem.fragment_bytes(j + 1);
    for (u32 sys : selection[j]) out.push_back(net::Transfer{sys, frag});
  }
  return out;
}

GatherPlan evaluate_plan(const GatherProblem& problem,
                         solver::Selection selection) {
  GatherPlan plan;
  const auto transfers = plan_transfers(problem, selection);
  const std::vector<f64> times =
      net::equal_share_times(transfers, problem.bandwidths);
  plan.mean_time = net::equal_share_mean_time(transfers, problem.bandwidths);
  plan.latency = net::equal_share_latency(transfers, problem.bandwidths);
  // plan_transfers is level-major, so level j's transfers are the next
  // selection[j].size() entries; its landing time is their max.
  plan.level_latencies.resize(selection.size(), 0.0);
  u64 at = 0;
  for (u32 j = 0; j < selection.size(); ++j) {
    f64 worst = 0.0;
    for (u64 i = 0; i < selection[j].size(); ++i, ++at)
      worst = std::max(worst, times[at]);
    plan.level_latencies[j] = worst;
  }
  plan.systems_per_level = std::move(selection);
  return plan;
}

namespace {

/// Available-system ids, and the per-level fragment counts needed.
struct Feasibility {
  std::vector<u32> avail;
  std::vector<u32> needed;  // per recoverable level: n - m_j
};

Feasibility feasibility(const GatherProblem& problem) {
  Feasibility f;
  for (u32 i = 0; i < problem.n; ++i)
    if (problem.available[i]) f.avail.push_back(i);
  const u32 levels = problem.recoverable_levels();
  RAPIDS_REQUIRE_MSG(levels >= 1, "gather: no level is recoverable");
  for (u32 j = 0; j < levels; ++j) {
    const u32 need = problem.n - problem.m[j];
    RAPIDS_REQUIRE(need <= f.avail.size());
    f.needed.push_back(need);
  }
  return f;
}

}  // namespace

GatherPlan random_plan(const GatherProblem& problem, Rng& rng) {
  const Feasibility f = feasibility(problem);
  solver::Selection sel(f.needed.size());
  for (u32 j = 0; j < f.needed.size(); ++j) {
    std::vector<u32> pool = f.avail;
    // Partial Fisher-Yates: draw `needed` distinct systems.
    for (u32 pick = 0; pick < f.needed[j]; ++pick) {
      const u64 r = pick + rng.next_below(pool.size() - pick);
      std::swap(pool[pick], pool[r]);
      sel[j].push_back(pool[pick]);
    }
    std::sort(sel[j].begin(), sel[j].end());
  }
  return evaluate_plan(problem, std::move(sel));
}

GatherPlan naive_plan(const GatherProblem& problem) {
  const Feasibility f = feasibility(problem);
  // Sort available systems by bandwidth, descending (ties by id for
  // determinism).
  std::vector<u32> ranked = f.avail;
  std::sort(ranked.begin(), ranked.end(), [&](u32 a, u32 b) {
    if (problem.bandwidths[a] != problem.bandwidths[b])
      return problem.bandwidths[a] > problem.bandwidths[b];
    return a < b;
  });
  solver::Selection sel(f.needed.size());
  for (u32 j = 0; j < f.needed.size(); ++j) {
    sel[j].assign(ranked.begin(), ranked.begin() + f.needed[j]);
    std::sort(sel[j].begin(), sel[j].end());
  }
  return evaluate_plan(problem, std::move(sel));
}

GatherPlan optimized_plan(const GatherProblem& problem,
                          const solver::AcoOptions& options) {
  Timer timer;
  const Feasibility f = feasibility(problem);

  std::vector<std::vector<bool>> allowed(
      f.needed.size(), std::vector<bool>(problem.n, false));
  for (auto& row : allowed)
    for (u32 i : f.avail) row[i] = true;

  // Bias construction toward high-bandwidth endpoints (eta in ACO terms);
  // normalize so beta is scale-free.
  const f64 max_bw =
      *std::max_element(problem.bandwidths.begin(), problem.bandwidths.end());
  std::vector<f64> bias(problem.n, 1e-6);
  for (u32 i : f.avail) bias[i] = problem.bandwidths[i] / max_bw;

  const solver::SubsetAco aco(problem.n, f.needed, allowed, bias);

  const auto objective = [&](const solver::Selection& s) {
    return net::equal_share_mean_time(plan_transfers(problem, s),
                                      problem.bandwidths);
  };

  const GatherPlan warm = naive_plan(problem);
  const auto result = aco.solve(objective, options, warm.systems_per_level);

  GatherPlan plan = evaluate_plan(problem, result.best);
  plan.planning_seconds = timer.seconds();
  return plan;
}

}  // namespace rapids::core
