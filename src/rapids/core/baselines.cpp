#include "rapids/core/baselines.hpp"

#include <algorithm>
#include <numeric>

namespace rapids::core {

namespace {

/// System ids sorted by bandwidth descending (ties by id).
std::vector<u32> ranked_by_bandwidth(std::span<const f64> bandwidths) {
  std::vector<u32> ids(bandwidths.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::sort(ids.begin(), ids.end(), [&](u32 a, u32 b) {
    if (bandwidths[a] != bandwidths[b]) return bandwidths[a] > bandwidths[b];
    return a < b;
  });
  return ids;
}

}  // namespace

std::vector<net::Transfer> dp_distribution_plan(u64 object_bytes, u32 extra_copies,
                                                std::span<const f64> bandwidths) {
  RAPIDS_REQUIRE(extra_copies <= bandwidths.size());
  const auto ranked = ranked_by_bandwidth(bandwidths);
  std::vector<net::Transfer> out;
  for (u32 c = 0; c < extra_copies; ++c)
    out.push_back(net::Transfer{ranked[c], object_bytes});
  return out;
}

std::vector<net::Transfer> ec_distribution_plan(u64 object_bytes, u32 k, u32 m) {
  RAPIDS_REQUIRE(k >= 1);
  const u64 frag = ceil_div(object_bytes, k);
  std::vector<net::Transfer> out;
  for (u32 i = 0; i < k + m; ++i) out.push_back(net::Transfer{i, frag});
  return out;
}

std::vector<net::Transfer> rfec_distribution_plan(std::span<const u64> level_sizes,
                                                  const FtConfig& m, u32 n) {
  RAPIDS_REQUIRE(level_sizes.size() == m.size());
  std::vector<net::Transfer> out;
  for (std::size_t j = 0; j < m.size(); ++j) {
    const u64 frag = ceil_div(level_sizes[j], n - m[j]);
    for (u32 i = 0; i < n; ++i) out.push_back(net::Transfer{i, frag});
  }
  return out;
}

std::optional<std::vector<net::Transfer>> dp_restore_plan(
    u64 object_bytes, std::span<const u32> holders,
    std::span<const f64> bandwidths, const std::vector<bool>& available) {
  u32 best = ~0u;
  for (u32 h : holders) {
    if (!available[h]) continue;
    if (best == ~0u || bandwidths[h] > bandwidths[best]) best = h;
  }
  if (best == ~0u) return std::nullopt;
  return std::vector<net::Transfer>{net::Transfer{best, object_bytes}};
}

std::optional<std::vector<net::Transfer>> ec_restore_plan(
    u64 object_bytes, u32 k, u32 m, std::span<const f64> bandwidths,
    const std::vector<bool>& available) {
  // Holders are systems 0..k+m-1 (see ec_distribution_plan).
  std::vector<u32> up;
  for (u32 i = 0; i < k + m; ++i)
    if (available[i]) up.push_back(i);
  if (up.size() < k) return std::nullopt;
  std::sort(up.begin(), up.end(), [&](u32 a, u32 b) {
    if (bandwidths[a] != bandwidths[b]) return bandwidths[a] > bandwidths[b];
    return a < b;
  });
  const u64 frag = ceil_div(object_bytes, k);
  std::vector<net::Transfer> out;
  for (u32 i = 0; i < k; ++i) out.push_back(net::Transfer{up[i], frag});
  return out;
}

DuplicationBaseline::DuplicationBaseline(storage::Cluster& cluster, u32 replicas)
    : cluster_(cluster), replicas_(replicas) {
  RAPIDS_REQUIRE(replicas >= 1 && replicas <= cluster.size());
}

std::vector<u32> DuplicationBaseline::store(const std::string& name,
                                            std::span<const u8> bytes) {
  const auto ranked = ranked_by_bandwidth(cluster_.bandwidths());
  std::vector<u32> holders(ranked.begin(), ranked.begin() + replicas_);
  for (u32 c = 0; c < replicas_; ++c) {
    ec::Fragment copy;
    copy.id = ec::FragmentId{name, 0, c};
    copy.k = 1;
    copy.m = 0;
    copy.level_bytes = bytes.size();
    copy.payload.assign(bytes.begin(), bytes.end());
    copy.payload_crc = ec::fragment_crc(copy.payload);
    cluster_.system(holders[c]).put(copy);
  }
  holders_[name] = holders;
  return holders;
}

std::optional<std::vector<u8>> DuplicationBaseline::fetch(
    const std::string& name) const {
  auto it = holders_.find(name);
  RAPIDS_REQUIRE_MSG(it != holders_.end(), "DP fetch: unknown object " + name);
  // Fastest available holder first.
  std::vector<u32> holders = it->second;
  const auto bw = cluster_.bandwidths();
  std::sort(holders.begin(), holders.end(), [&](u32 a, u32 b) {
    if (bw[a] != bw[b]) return bw[a] > bw[b];
    return a < b;
  });
  for (u32 c = 0; c < holders.size(); ++c) {
    const auto& sys = cluster_.system(holders[c]);
    if (!sys.available()) continue;
    for (u32 idx = 0; idx < replicas_; ++idx) {
      const auto frag = sys.get(ec::FragmentId{name, 0, idx}.key());
      if (frag && frag->verify()) return frag->payload;
    }
  }
  return std::nullopt;
}

EcBaseline::EcBaseline(storage::Cluster& cluster, u32 k, u32 m,
                       ec::MatrixKind kind, ThreadPool* pool)
    : cluster_(cluster), rs_(k, m, kind), pool_(pool) {
  RAPIDS_REQUIRE_MSG(k + m <= cluster.size(),
                     "EC baseline: cluster too small for k+m fragments");
}

void EcBaseline::store(const std::string& name, std::span<const u8> bytes) {
  auto frags = rs_.encode(bytes, name, 0, pool_);
  for (u32 i = 0; i < frags.size(); ++i) cluster_.system(i).put(frags[i]);
}

std::optional<std::vector<u8>> EcBaseline::fetch(const std::string& name) const {
  const auto bw = cluster_.bandwidths();
  std::vector<u32> up;
  for (u32 i = 0; i < rs_.n(); ++i)
    if (cluster_.system(i).available()) up.push_back(i);
  if (up.size() < rs_.k()) return std::nullopt;
  std::sort(up.begin(), up.end(), [&](u32 a, u32 b) {
    if (bw[a] != bw[b]) return bw[a] > bw[b];
    return a < b;
  });
  std::vector<ec::Fragment> frags;
  for (u32 i : up) {
    if (frags.size() == rs_.k()) break;
    const auto frag = cluster_.system(i).get(ec::FragmentId{name, 0, i}.key());
    if (frag) frags.push_back(*frag);
  }
  if (frags.size() < rs_.k()) return std::nullopt;
  return rs_.decode(frags, pool_);
}

}  // namespace rapids::core
