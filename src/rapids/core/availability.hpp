#pragma once

/// \file availability.hpp
/// The paper's closed-form availability and data-quality math (Section 2.1
/// and 3.2): unavailability of data duplication (Eq. 1) and regular erasure
/// coding (Eq. 2), the probability of reconstructing with error e_j under a
/// per-level fault-tolerance configuration (Eq. 4), the expected relative
/// L-infinity error of the restored data (Eq. 5), and the storage/network
/// overhead accounting used throughout the evaluation. Cross-validated
/// against Monte Carlo failure injection in the test suite.

#include <span>
#include <vector>

#include "rapids/util/common.hpp"

namespace rapids::core {

/// Binomial pmf: P[X = i] for X ~ Binomial(n, p). Numerically stable for the
/// small n (<= a few hundred) used here.
f64 binomial_pmf(u32 n, u32 i, f64 p);

/// P[a <= X <= b] for X ~ Binomial(n, p); empty range (a > b) gives 0.
f64 binomial_range(u32 n, u32 a, u32 b, f64 p);

/// Eq. 1 — probability the data is unavailable when m replicas are stored on
/// m of the n systems, each independently down with probability p.
f64 duplication_unavailability(u32 n, u32 m, f64 p);

/// Eq. 2 — probability the data is unavailable under RS erasure coding with
/// n fragments total of which m are parity (tolerates m concurrent outages).
f64 ec_unavailability(u32 n, u32 m, f64 p);

/// Storage overhead of duplication with m replicas total: m - 1 (paper §2.1).
f64 duplication_storage_overhead(u32 m);

/// Storage overhead of regular EC with k data + m parity fragments: m / k.
f64 ec_storage_overhead(u32 k, u32 m);

/// One per-level fault-tolerance configuration: the paper's [m_1 ... m_l]
/// with m_1 > m_2 > ... > m_l >= 1.
using FtConfig = std::vector<u32>;

/// Validate the constraint n > m_1 > ... > m_l >= 1.
bool valid_ft_config(u32 n, const FtConfig& m);

/// Eq. 4 — probability that exactly error level e_j is achievable, i.e.
/// m_{j+1} < N <= m_j concurrent failures (with m_{l+1} := -inf handled by
/// passing next = 0 semantics internally; see expected_relative_error).
f64 level_window_probability(u32 n, u32 m_j, u32 m_next, f64 p);

/// Eq. 5 — expected relative L-infinity error of the restored data.
/// `errors` holds e_1..e_l (errors when reconstructing from levels 1..j);
/// e_0 = 1 (total loss penalty) is implicit. `m` holds m_1..m_l.
f64 expected_relative_error(u32 n, f64 p, std::span<const f64> errors,
                            const FtConfig& m);

/// Eq. 6 (left side) — storage overhead W of a per-level FT configuration:
/// sum_j (m_j / (n - m_j)) * s_j / S, with `level_sizes` = s_1..s_l and
/// `original_size` = S.
f64 ft_storage_overhead(u32 n, const FtConfig& m, std::span<const u64> level_sizes,
                        u64 original_size);

/// Network overhead: total bytes shipped to remote systems per original byte.
/// For RF+EC that is sum_j s_j * n/(n - m_j) / S (every system gets one
/// fragment of every level).
f64 ft_network_overhead(u32 n, const FtConfig& m, std::span<const u64> level_sizes,
                        u64 original_size);

// --- Heterogeneous per-system availability (control-plane re-evaluation) ---
//
// The paper's closed forms assume one failure probability p shared by all n
// systems. The health tracker observes *per-system* failure rates, so the
// control plane re-evaluates configurations against a vector p_0..p_{n-1}.
// The failure-count distribution is then Poisson-binomial; the O(n^2) DP
// below is exact and cheap for n <= a few hundred.

/// Full pmf of the number of failed systems: out[i] = P[N = i] for
/// independent failures with per-system probabilities `probs` (size n,
/// each in [0, 1]). Returns a vector of size n + 1.
std::vector<f64> poisson_binomial_pmf(std::span<const f64> probs);

/// P[a <= N <= b] under the Poisson-binomial distribution of `probs`;
/// empty range (a > b) gives 0. b is clamped to n.
f64 poisson_binomial_range(std::span<const f64> probs, u32 a, u32 b);

/// P[N <= m_j]: probability that a level protected with m_j parity fragments
/// is recoverable under heterogeneous per-system failure probabilities.
/// With m_j = m_1 this is the object's not-total-loss availability.
f64 ft_level_availability(std::span<const f64> probs, u32 m_j);

/// Eq. 5 generalized to heterogeneous per-system failure probabilities:
/// expected relative L-infinity error of the restored data when system i
/// fails independently with probability probs[i]. probs.size() must equal n
/// (the fragment count); reduces to expected_relative_error when all
/// entries are equal.
f64 expected_relative_error_hetero(std::span<const f64> probs,
                                   std::span<const f64> errors,
                                   const FtConfig& m);

}  // namespace rapids::core
