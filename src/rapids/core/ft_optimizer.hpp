#pragma once

/// \file ft_optimizer.hpp
/// Solvers for the paper's fault-tolerance configuration model (Eq. 7):
/// choose m_1 > m_2 > ... > m_l (failures each retrieval level tolerates) to
/// minimize the expected relative L-infinity error (Eq. 5) subject to the
/// storage-overhead budget (Eq. 6). Two solvers:
///
///  * brute force — enumerate every strictly decreasing m-vector (O(U^4) for
///    the paper's four levels);
///  * the paper's Algorithm 1 heuristic — start from the minimal-gap
///    configuration whose bottom value m* is the largest satisfying Eq. 9,
///    then sweep bottom-to-top repeatedly, raising any level that the
///    ordering and the budget still allow, until a sweep changes nothing.
///
/// Table 3 of the paper (reproduced by bench/table3_ft_optimization) shows
/// the heuristic matching brute force at >100x less search work.

#include <optional>
#include <vector>

#include "rapids/core/availability.hpp"
#include "rapids/util/common.hpp"

namespace rapids::core {

/// Problem statement for one data object.
struct FtProblem {
  u32 n = 16;                    ///< number of storage systems
  f64 p = 0.01;                  ///< per-system outage probability
  std::vector<f64> system_p;     ///< optional per-system outage probabilities
                                 ///  (size n); when non-empty it overrides `p`
                                 ///  and the Poisson-binomial forms are used
  std::vector<u64> level_sizes;  ///< s_1..s_l (bytes)
  std::vector<f64> level_errors; ///< e_1..e_l (relative L-inf errors)
  u64 original_size = 0;         ///< S (bytes)
  f64 overhead_budget = 0.5;     ///< the paper's omega
};

/// Solver result.
struct FtSolution {
  FtConfig m;                ///< optimal [m_1..m_l]
  f64 expected_error = 1.0;  ///< Eq. 5 value
  f64 storage_overhead = 0;  ///< Eq. 6 value
  u64 evaluations = 0;       ///< objective evaluations performed (search work)
};

/// Exhaustive search. Returns nullopt if no feasible configuration exists.
std::optional<FtSolution> ft_optimize_brute_force(const FtProblem& problem);

/// Algorithm 1. Returns nullopt if even the cheapest configuration
/// ([l, l-1, ..., 1]) violates the budget.
std::optional<FtSolution> ft_optimize_heuristic(const FtProblem& problem);

/// Eq. 9 — the largest m* such that the minimal-gap configuration
/// [m*+l-1, ..., m*] fits the budget. Returns nullopt if even m* = 1 does
/// not fit.
std::optional<u32> ft_initial_mstar(const FtProblem& problem);

/// Score an existing configuration against the (possibly drifted) problem
/// without searching: Eq. 5 expected error plus Eq. 6 overhead, using the
/// Poisson-binomial forms when `problem.system_p` is set. The control plane
/// calls this on every dirty object to decide whether a migration is worth
/// its traffic. `m` must be a valid FT chain for problem.n.
FtSolution ft_evaluate(const FtProblem& problem, const FtConfig& m);

/// Incremental re-optimization entry point for the control plane: warm-start
/// the Algorithm-1 sweep from `current` (raising levels bottom-to-top is
/// monotone in expected error, so the sweep only improves it), then compare
/// with a cold heuristic run — observed drift can make *reshaping* (lowering
/// an expensive deep m_j to free budget for m_1) beat any pure raise.
/// Returns the better of the two, or nullopt when no feasible configuration
/// exists at all.
std::optional<FtSolution> ft_reoptimize(const FtProblem& problem,
                                        const FtConfig& current);

}  // namespace rapids::core
