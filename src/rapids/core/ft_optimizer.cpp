#include "rapids/core/ft_optimizer.hpp"

#include <functional>

namespace rapids::core {

namespace {

void validate(const FtProblem& pr) {
  RAPIDS_REQUIRE(pr.n >= 2);
  RAPIDS_REQUIRE(!pr.level_sizes.empty());
  RAPIDS_REQUIRE(pr.level_sizes.size() == pr.level_errors.size());
  RAPIDS_REQUIRE(pr.original_size > 0);
  RAPIDS_REQUIRE(pr.overhead_budget > 0.0);
  RAPIDS_REQUIRE_MSG(pr.level_sizes.size() < pr.n,
                     "need more systems than levels for a strict m-chain");
  RAPIDS_REQUIRE_MSG(pr.system_p.empty() || pr.system_p.size() == pr.n,
                     "system_p must be empty or have one entry per system");
}

f64 overhead(const FtProblem& pr, const FtConfig& m) {
  return ft_storage_overhead(pr.n, m, pr.level_sizes, pr.original_size);
}

f64 expected_error(const FtProblem& pr, const FtConfig& m) {
  if (!pr.system_p.empty())
    return expected_relative_error_hetero(pr.system_p, pr.level_errors, m);
  return expected_relative_error(pr.n, pr.p, pr.level_errors, m);
}

FtSolution make_solution(const FtProblem& pr, const FtConfig& m, u64 evals) {
  FtSolution s;
  s.m = m;
  s.expected_error = expected_error(pr, m);
  s.storage_overhead = overhead(pr, m);
  s.evaluations = evals;
  return s;
}

}  // namespace

std::optional<FtSolution> ft_optimize_brute_force(const FtProblem& problem) {
  validate(problem);
  const u32 l = static_cast<u32>(problem.level_sizes.size());
  FtConfig current(l);
  std::optional<FtConfig> best;
  f64 best_error = 2.0;  // above the e_0 = 1 ceiling
  u64 evals = 0;

  // Depth-first enumeration of strictly decreasing vectors in [1, n-1].
  std::function<void(u32, u32)> recurse = [&](u32 j, u32 upper) {
    if (j == l) {
      if (overhead(problem, current) > problem.overhead_budget) return;
      const f64 err = expected_error(problem, current);
      ++evals;
      if (err < best_error) {
        best_error = err;
        best = current;
      }
      return;
    }
    // m_j must leave room for l-1-j strictly smaller values >= 1.
    const u32 reserve = l - 1 - j;
    for (u32 v = upper; v >= reserve + 1; --v) {
      current[j] = v;
      recurse(j + 1, v - 1);
    }
  };
  recurse(0, problem.n - 1);

  if (!best) return std::nullopt;
  FtSolution s = make_solution(problem, *best, evals);
  return s;
}

std::optional<u32> ft_initial_mstar(const FtProblem& problem) {
  validate(problem);
  const u32 l = static_cast<u32>(problem.level_sizes.size());
  // Largest m* with [m*+l-1, ..., m*] feasible: scan downward from the
  // ordering ceiling (m_1 = m*+l-1 <= n-1).
  for (u32 mstar = problem.n - l; mstar >= 1; --mstar) {
    FtConfig m(l);
    for (u32 j = 0; j < l; ++j) m[j] = mstar + (l - 1 - j);
    if (overhead(problem, m) <= problem.overhead_budget) return mstar;
  }
  return std::nullopt;
}

std::optional<FtSolution> ft_optimize_heuristic(const FtProblem& problem) {
  validate(problem);
  const u32 l = static_cast<u32>(problem.level_sizes.size());
  const auto mstar = ft_initial_mstar(problem);
  if (!mstar) return std::nullopt;

  FtConfig m(l);
  for (u32 j = 0; j < l; ++j) m[j] = *mstar + (l - 1 - j);
  u64 evals = 1;

  // Algorithm 1: sweep bottom-to-top; raise every level that ordering and
  // budget permit; stop when a full sweep leaves M unchanged (M == M_prev).
  for (;;) {
    FtConfig prev = m;
    for (u32 j = l; j-- > 0;) {  // j = l-1 (bottom) .. 0 (top)
      const u32 ceiling = j == 0 ? problem.n - 1 : m[j - 1] - 1;
      while (m[j] < ceiling) {
        m[j] += 1;
        ++evals;
        if (overhead(problem, m) > problem.overhead_budget) {
          m[j] -= 1;  // revert: budget violated
          break;
        }
      }
    }
    if (m == prev) break;
  }
  return make_solution(problem, m, evals);
}

FtSolution ft_evaluate(const FtProblem& problem, const FtConfig& m) {
  validate(problem);
  RAPIDS_REQUIRE_MSG(valid_ft_config(problem.n, m),
                     "ft_evaluate: invalid FT configuration");
  RAPIDS_REQUIRE(m.size() == problem.level_sizes.size());
  return make_solution(problem, m, 1);
}

std::optional<FtSolution> ft_reoptimize(const FtProblem& problem,
                                        const FtConfig& current) {
  validate(problem);
  RAPIDS_REQUIRE_MSG(valid_ft_config(problem.n, current),
                     "ft_reoptimize: invalid current configuration");
  RAPIDS_REQUIRE(current.size() == problem.level_sizes.size());

  const u32 l = static_cast<u32>(current.size());
  std::optional<FtSolution> best;
  u64 warm_evals = 0;

  // Warm start: if the current configuration still fits the budget, run the
  // Algorithm-1 raise sweep from it. Raising any m_j strictly lowers Eq. 5
  // (more failures tolerated at every affected window), so the sweep can
  // only improve on `current`.
  if (overhead(problem, current) <= problem.overhead_budget) {
    FtConfig m = current;
    ++warm_evals;
    for (;;) {
      FtConfig prev = m;
      for (u32 j = l; j-- > 0;) {
        const u32 ceiling = j == 0 ? problem.n - 1 : m[j - 1] - 1;
        while (m[j] < ceiling) {
          m[j] += 1;
          ++warm_evals;
          if (overhead(problem, m) > problem.overhead_budget) {
            m[j] -= 1;
            break;
          }
        }
      }
      if (m == prev) break;
    }
    best = make_solution(problem, m, warm_evals);
  }

  // Cold comparison: drift can make reshaping (lower a deep, expensive m_j
  // to afford a higher m_1) beat any raise-only walk from `current`, and the
  // warm start cannot reach those shapes. The heuristic is cheap; take the
  // better of the two.
  if (auto cold = ft_optimize_heuristic(problem)) {
    cold->evaluations += warm_evals;
    if (!best || cold->expected_error < best->expected_error) best = cold;
    else best->evaluations = cold->evaluations;
  }
  return best;
}

}  // namespace rapids::core
