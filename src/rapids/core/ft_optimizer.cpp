#include "rapids/core/ft_optimizer.hpp"

#include <functional>

namespace rapids::core {

namespace {

void validate(const FtProblem& pr) {
  RAPIDS_REQUIRE(pr.n >= 2);
  RAPIDS_REQUIRE(!pr.level_sizes.empty());
  RAPIDS_REQUIRE(pr.level_sizes.size() == pr.level_errors.size());
  RAPIDS_REQUIRE(pr.original_size > 0);
  RAPIDS_REQUIRE(pr.overhead_budget > 0.0);
  RAPIDS_REQUIRE_MSG(pr.level_sizes.size() < pr.n,
                     "need more systems than levels for a strict m-chain");
}

f64 overhead(const FtProblem& pr, const FtConfig& m) {
  return ft_storage_overhead(pr.n, m, pr.level_sizes, pr.original_size);
}

FtSolution make_solution(const FtProblem& pr, const FtConfig& m, u64 evals) {
  FtSolution s;
  s.m = m;
  s.expected_error = expected_relative_error(pr.n, pr.p, pr.level_errors, m);
  s.storage_overhead = overhead(pr, m);
  s.evaluations = evals;
  return s;
}

}  // namespace

std::optional<FtSolution> ft_optimize_brute_force(const FtProblem& problem) {
  validate(problem);
  const u32 l = static_cast<u32>(problem.level_sizes.size());
  FtConfig current(l);
  std::optional<FtConfig> best;
  f64 best_error = 2.0;  // above the e_0 = 1 ceiling
  u64 evals = 0;

  // Depth-first enumeration of strictly decreasing vectors in [1, n-1].
  std::function<void(u32, u32)> recurse = [&](u32 j, u32 upper) {
    if (j == l) {
      if (overhead(problem, current) > problem.overhead_budget) return;
      const f64 err =
          expected_relative_error(problem.n, problem.p, problem.level_errors, current);
      ++evals;
      if (err < best_error) {
        best_error = err;
        best = current;
      }
      return;
    }
    // m_j must leave room for l-1-j strictly smaller values >= 1.
    const u32 reserve = l - 1 - j;
    for (u32 v = upper; v >= reserve + 1; --v) {
      current[j] = v;
      recurse(j + 1, v - 1);
    }
  };
  recurse(0, problem.n - 1);

  if (!best) return std::nullopt;
  FtSolution s = make_solution(problem, *best, evals);
  return s;
}

std::optional<u32> ft_initial_mstar(const FtProblem& problem) {
  validate(problem);
  const u32 l = static_cast<u32>(problem.level_sizes.size());
  // Largest m* with [m*+l-1, ..., m*] feasible: scan downward from the
  // ordering ceiling (m_1 = m*+l-1 <= n-1).
  for (u32 mstar = problem.n - l; mstar >= 1; --mstar) {
    FtConfig m(l);
    for (u32 j = 0; j < l; ++j) m[j] = mstar + (l - 1 - j);
    if (overhead(problem, m) <= problem.overhead_budget) return mstar;
  }
  return std::nullopt;
}

std::optional<FtSolution> ft_optimize_heuristic(const FtProblem& problem) {
  validate(problem);
  const u32 l = static_cast<u32>(problem.level_sizes.size());
  const auto mstar = ft_initial_mstar(problem);
  if (!mstar) return std::nullopt;

  FtConfig m(l);
  for (u32 j = 0; j < l; ++j) m[j] = *mstar + (l - 1 - j);
  u64 evals = 1;

  // Algorithm 1: sweep bottom-to-top; raise every level that ordering and
  // budget permit; stop when a full sweep leaves M unchanged (M == M_prev).
  for (;;) {
    FtConfig prev = m;
    for (u32 j = l; j-- > 0;) {  // j = l-1 (bottom) .. 0 (top)
      const u32 ceiling = j == 0 ? problem.n - 1 : m[j - 1] - 1;
      while (m[j] < ceiling) {
        m[j] += 1;
        ++evals;
        if (overhead(problem, m) > problem.overhead_budget) {
          m[j] -= 1;  // revert: budget violated
          break;
        }
      }
    }
    if (m == prev) break;
  }
  return make_solution(problem, m, evals);
}

}  // namespace rapids::core
