#include "rapids/core/availability.hpp"

#include <algorithm>
#include <cmath>

namespace rapids::core {

namespace {

// std::lgamma writes the process-global `signgam`, a data race when FT
// optimizations for different batch objects run concurrently. Use the
// reentrant variant where available; the sign is irrelevant here because
// every argument is >= 1 (gamma is positive).
f64 lgamma_threadsafe(f64 x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

f64 binomial_pmf(u32 n, u32 i, f64 p) {
  RAPIDS_REQUIRE(i <= n);
  RAPIDS_REQUIRE(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return i == 0 ? 1.0 : 0.0;
  if (p == 1.0) return i == n ? 1.0 : 0.0;
  // log-space for stability: C(n,i) p^i (1-p)^(n-i).
  const f64 log_c = lgamma_threadsafe(static_cast<f64>(n) + 1.0) -
                    lgamma_threadsafe(static_cast<f64>(i) + 1.0) -
                    lgamma_threadsafe(static_cast<f64>(n - i) + 1.0);
  return std::exp(log_c + i * std::log(p) + (n - i) * std::log1p(-p));
}

f64 binomial_range(u32 n, u32 a, u32 b, f64 p) {
  if (a > b) return 0.0;
  b = std::min(b, n);
  f64 sum = 0.0;
  for (u32 i = a; i <= b; ++i) sum += binomial_pmf(n, i, p);
  return std::min(sum, 1.0);
}

f64 duplication_unavailability(u32 n, u32 m, f64 p) {
  RAPIDS_REQUIRE_MSG(m >= 1 && m <= n, "duplication: need 1 <= m <= n");
  // Eq. 1: all m replica hosts down (prob p^m), any i of the other n-m also
  // down. Summing over i just multiplies by 1, matching the paper's form:
  f64 sum = 0.0;
  for (u32 i = 0; i <= n - m; ++i)
    sum += binomial_pmf(n - m, i, p) * std::pow(p, static_cast<f64>(m));
  return sum;
}

f64 ec_unavailability(u32 n, u32 m, f64 p) {
  RAPIDS_REQUIRE_MSG(m < n, "EC: parity count must be < n");
  // Eq. 2: more than m of the n systems down.
  return binomial_range(n, m + 1, n, p);
}

f64 duplication_storage_overhead(u32 m) {
  RAPIDS_REQUIRE(m >= 1);
  return static_cast<f64>(m - 1);
}

f64 ec_storage_overhead(u32 k, u32 m) {
  RAPIDS_REQUIRE(k >= 1);
  return static_cast<f64>(m) / static_cast<f64>(k);
}

bool valid_ft_config(u32 n, const FtConfig& m) {
  if (m.empty()) return false;
  if (m.front() >= n) return false;
  for (std::size_t j = 1; j < m.size(); ++j)
    if (m[j] >= m[j - 1]) return false;
  return m.back() >= 1;
}

f64 level_window_probability(u32 n, u32 m_j, u32 m_next, f64 p) {
  RAPIDS_REQUIRE(m_next < m_j);
  // Eq. 4: m_{j+1} < N <= m_j.
  return binomial_range(n, m_next + 1, m_j, p);
}

f64 expected_relative_error(u32 n, f64 p, std::span<const f64> errors,
                            const FtConfig& m) {
  RAPIDS_REQUIRE_MSG(valid_ft_config(n, m), "invalid FT configuration");
  RAPIDS_REQUIRE(errors.size() == m.size());
  const std::size_t l = m.size();
  // Eq. 5, three terms: total loss (N > m_1) at e_0 = 1; full quality
  // (N <= m_l) at e_l; and the per-level windows in between.
  f64 e = 1.0 * binomial_range(n, m.front() + 1, n, p);
  e += errors[l - 1] * binomial_range(n, 0, m.back(), p);
  for (std::size_t j = 0; j + 1 < l; ++j)
    e += errors[j] * binomial_range(n, m[j + 1] + 1, m[j], p);
  return e;
}

f64 ft_storage_overhead(u32 n, const FtConfig& m, std::span<const u64> level_sizes,
                        u64 original_size) {
  RAPIDS_REQUIRE(level_sizes.size() == m.size());
  RAPIDS_REQUIRE(original_size > 0);
  f64 parity_bytes = 0.0;
  for (std::size_t j = 0; j < m.size(); ++j) {
    RAPIDS_REQUIRE_MSG(m[j] < n, "ft_storage_overhead: m_j must be < n");
    parity_bytes += static_cast<f64>(m[j]) / static_cast<f64>(n - m[j]) *
                    static_cast<f64>(level_sizes[j]);
  }
  return parity_bytes / static_cast<f64>(original_size);
}

f64 ft_network_overhead(u32 n, const FtConfig& m, std::span<const u64> level_sizes,
                        u64 original_size) {
  RAPIDS_REQUIRE(level_sizes.size() == m.size());
  RAPIDS_REQUIRE(original_size > 0);
  f64 shipped = 0.0;
  for (std::size_t j = 0; j < m.size(); ++j) {
    RAPIDS_REQUIRE_MSG(m[j] < n, "ft_network_overhead: m_j must be < n");
    shipped += static_cast<f64>(level_sizes[j]) * static_cast<f64>(n) /
               static_cast<f64>(n - m[j]);
  }
  return shipped / static_cast<f64>(original_size);
}

std::vector<f64> poisson_binomial_pmf(std::span<const f64> probs) {
  // Classic DP: fold systems in one at a time; after processing i systems,
  // pmf[j] = P[j failures among them]. Exact, O(n^2), all terms nonnegative
  // so there is no cancellation to worry about.
  std::vector<f64> pmf(probs.size() + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t used = 0;
  for (f64 p : probs) {
    RAPIDS_REQUIRE_MSG(p >= 0.0 && p <= 1.0,
                       "poisson_binomial: probabilities must lie in [0, 1]");
    ++used;
    for (std::size_t j = used; j > 0; --j)
      pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
    pmf[0] *= (1.0 - p);
  }
  return pmf;
}

f64 poisson_binomial_range(std::span<const f64> probs, u32 a, u32 b) {
  if (a > b) return 0.0;
  const std::vector<f64> pmf = poisson_binomial_pmf(probs);
  b = std::min<u32>(b, static_cast<u32>(probs.size()));
  f64 sum = 0.0;
  for (u32 i = a; i <= b; ++i) sum += pmf[i];
  return std::min(sum, 1.0);
}

f64 ft_level_availability(std::span<const f64> probs, u32 m_j) {
  return poisson_binomial_range(probs, 0, m_j);
}

f64 expected_relative_error_hetero(std::span<const f64> probs,
                                   std::span<const f64> errors,
                                   const FtConfig& m) {
  const u32 n = static_cast<u32>(probs.size());
  RAPIDS_REQUIRE_MSG(valid_ft_config(n, m), "invalid FT configuration");
  RAPIDS_REQUIRE(errors.size() == m.size());
  const std::vector<f64> pmf = poisson_binomial_pmf(probs);
  auto range = [&](u32 a, u32 b) {
    if (a > b) return 0.0;
    b = std::min(b, n);
    f64 sum = 0.0;
    for (u32 i = a; i <= b; ++i) sum += pmf[i];
    return std::min(sum, 1.0);
  };
  const std::size_t l = m.size();
  // Same three terms as the homogeneous Eq. 5, with the binomial tail
  // probabilities replaced by their Poisson-binomial counterparts.
  f64 e = 1.0 * range(m.front() + 1, n);
  e += errors[l - 1] * range(0, m.back());
  for (std::size_t j = 0; j + 1 < l; ++j)
    e += errors[j] * range(m[j + 1] + 1, m[j]);
  return e;
}

}  // namespace rapids::core
