#pragma once

/// \file baselines.hpp
/// The two comparison methods of the paper's evaluation: data duplication
/// (DP) and regular erasure coding (EC) applied uniformly to the whole
/// object. Provides both pure planning helpers (transfer plans and overhead
/// math for the benches) and real byte-moving pipelines against the storage
/// cluster (for integration tests and examples).

#include <optional>
#include <string>
#include <vector>

#include "rapids/core/availability.hpp"
#include "rapids/ec/reed_solomon.hpp"
#include "rapids/net/transfer_sim.hpp"
#include "rapids/storage/cluster.hpp"
#include "rapids/util/common.hpp"

namespace rapids {
class ThreadPool;
}

namespace rapids::core {

/// --- Planning helpers (no data movement) --- ///

/// DP distribution: `extra_copies` full copies, each to a distinct remote
/// system, always targeting the highest-bandwidth systems (paper Fig. 3).
std::vector<net::Transfer> dp_distribution_plan(u64 object_bytes, u32 extra_copies,
                                                std::span<const f64> bandwidths);

/// EC distribution: k+m fragments of ceil(S/k) bytes, one per system
/// (systems 0..k+m-1).
std::vector<net::Transfer> ec_distribution_plan(u64 object_bytes, u32 k, u32 m);

/// RF+EC distribution: per retrieval level j, n fragments of
/// ceil(s_j/(n-m_j)) bytes, one per system.
std::vector<net::Transfer> rfec_distribution_plan(std::span<const u64> level_sizes,
                                                  const FtConfig& m, u32 n);

/// DP restore: one full copy from the fastest *available* replica holder.
/// `holders` are the systems storing replicas. nullopt if all are down.
std::optional<std::vector<net::Transfer>> dp_restore_plan(
    u64 object_bytes, std::span<const u32> holders,
    std::span<const f64> bandwidths, const std::vector<bool>& available);

/// EC restore: k fragments from the k fastest available holders (naive
/// strategy, what the paper uses for the EC baseline). nullopt if fewer than
/// k holders are up.
std::optional<std::vector<net::Transfer>> ec_restore_plan(
    u64 object_bytes, u32 k, u32 m, std::span<const f64> bandwidths,
    const std::vector<bool>& available);

/// --- Real byte-moving baselines over the cluster --- ///

/// Data-duplication pipeline: stores full copies as k=1 "fragments".
class DuplicationBaseline {
 public:
  /// Copies land on the `replicas` highest-bandwidth systems.
  DuplicationBaseline(storage::Cluster& cluster, u32 replicas);

  /// Store `bytes` under `name`. Returns the replica holder system ids.
  std::vector<u32> store(const std::string& name, std::span<const u8> bytes);

  /// Fetch from the fastest available holder; nullopt if none is reachable.
  std::optional<std::vector<u8>> fetch(const std::string& name) const;

 private:
  storage::Cluster& cluster_;
  u32 replicas_;
  std::map<std::string, std::vector<u32>> holders_;
};

/// Regular erasure-coding pipeline: RS(k, m) over the whole object.
class EcBaseline {
 public:
  EcBaseline(storage::Cluster& cluster, u32 k, u32 m,
             ec::MatrixKind kind = ec::MatrixKind::kVandermonde,
             ThreadPool* pool = nullptr);

  /// Encode and place one fragment per system (0..k+m-1).
  void store(const std::string& name, std::span<const u8> bytes);

  /// Gather any k available fragments (fastest holders first) and decode;
  /// nullopt if fewer than k systems are up.
  std::optional<std::vector<u8>> fetch(const std::string& name) const;

  const ec::ReedSolomon& codec() const { return rs_; }

 private:
  storage::Cluster& cluster_;
  ec::ReedSolomon rs_;
  ThreadPool* pool_;
};

}  // namespace rapids::core
