#include "rapids/core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "rapids/core/baselines.hpp"

#include "rapids/parallel/thread_pool.hpp"
#include "rapids/util/logging.hpp"
#include "rapids/util/timer.hpp"

namespace rapids::core {

namespace {
constexpr u32 kRecordMagic = 0x524F4252u;  // "ROBR"

std::string object_key(const std::string& name) { return "obj/" + name; }

std::span<const u8> payload_u8(const Bytes& payload) {
  return {reinterpret_cast<const u8*>(payload.data()), payload.size()};
}

f64 median_of(std::vector<f64> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// Deepest restorable prefix when some levels are already on hand: a cached
/// level needs no fragments, so it only requires the levels before it —
/// during a total outage an object can still be served entirely from cache.
u32 recoverable_prefix(const GatherProblem& problem,
                       const std::vector<bool>& cached) {
  u32 failed = 0;
  for (const bool a : problem.available) failed += a ? 0 : 1;
  u32 j = 0;
  while (j < problem.m.size() && (cached[j] || failed <= problem.m[j])) ++j;
  return j;
}
}  // namespace

u32 RefineSession::levels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cursor_;
}

f64 RefineSession::rel_error_bound() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_;
}

std::vector<f32> RefineSession::data() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

Bytes ObjectRecord::serialize() const {
  ByteWriter w;
  w.put_u32(kRecordMagic);
  w.put_u16(1);
  w.put_bytes(as_bytes_view(meta.serialize_metadata()));
  w.put_u32(static_cast<u32>(ft.size()));
  for (u32 m : ft) w.put_u32(m);
  w.put_u32(static_cast<u32>(level_sizes.size()));
  for (u64 s : level_sizes) w.put_u64(s);
  w.put_u8(matrix_kind == ec::MatrixKind::kVandermonde ? 0 : 1);
  w.put_u8(placement == storage::PlacementPolicy::kIdentity ? 0 : 1);
  return w.take();
}

ObjectRecord ObjectRecord::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.get_u32() != kRecordMagic) throw io_error("ObjectRecord: bad magic");
  if (r.get_u16() != 1) throw io_error("ObjectRecord: bad version");
  ObjectRecord rec;
  rec.meta = mgard::RefactoredObject::deserialize_metadata(r.get_bytes());
  const u32 nft = r.get_u32();
  if (u64{nft} * 4 > r.remaining()) throw io_error("ObjectRecord: bad ft count");
  rec.ft.resize(nft);
  for (auto& m : rec.ft) m = r.get_u32();
  const u32 nsz = r.get_u32();
  if (u64{nsz} * 8 > r.remaining())
    throw io_error("ObjectRecord: bad level count");
  rec.level_sizes.resize(nsz);
  for (auto& s : rec.level_sizes) s = r.get_u64();
  rec.matrix_kind =
      r.get_u8() == 0 ? ec::MatrixKind::kVandermonde : ec::MatrixKind::kCauchy;
  rec.placement = r.get_u8() == 0 ? storage::PlacementPolicy::kIdentity
                                  : storage::PlacementPolicy::kRotate;
  return rec;
}

RapidsPipeline::RapidsPipeline(storage::Cluster& cluster, kv::KvStore& db,
                               PipelineConfig config, ThreadPool* pool)
    : cluster_(cluster),
      db_(db),
      config_(std::move(config)),
      pool_(pool),
      refactorer_(config_.refactor, pool),
      restore_cache_(config_.restore_cache_bytes) {}

ec::ReedSolomon RapidsPipeline::codec_for(const ObjectRecord& record,
                                          u32 level) const {
  const u32 n = cluster_.size();
  const u32 m = record.ft.at(level);
  return ec::ReedSolomon(n - m, m, record.matrix_kind);
}

PrepareReport RapidsPipeline::prepare(std::span<const f32> data,
                                      mgard::Dims dims, const std::string& name) {
  return do_prepare(data, dims, name);
}

std::vector<PrepareReport> RapidsPipeline::prepare_batch(
    std::span<const PrepareRequest> requests) {
  std::vector<PrepareReport> reports(requests.size());
  if (pool_ == nullptr || pool_->size() <= 1 || requests.size() <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i)
      reports[i] =
          do_prepare(requests[i].data, requests[i].dims, requests[i].name);
    return reports;
  }
  // One task per object: the pool's stealing overlaps object A's encode with
  // object B's refactor while object C distributes fragments under io_mu_.
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    group.run([this, &requests, &reports, i] {
      reports[i] =
          do_prepare(requests[i].data, requests[i].dims, requests[i].name);
    });
  }
  group.wait();
  return reports;
}

PrepareReport RapidsPipeline::do_prepare(std::span<const f32> data,
                                         mgard::Dims dims,
                                         const std::string& name) {
  const u32 n = cluster_.size();
  PrepareReport report;
  Timer t;

  // 1-2) Read + refactor into the hierarchical representation.
  mgard::RefactoredObject obj = refactorer_.refactor(data, dims, name);
  report.refactor_seconds = t.seconds();

  // 3) Optimize the fault-tolerance configuration (Algorithm 1).
  t.reset();
  FtProblem problem;
  problem.n = n;
  problem.p = cluster_.config().failure_prob;
  problem.original_size = obj.original_bytes();
  problem.overhead_budget = config_.overhead_budget;
  for (u32 j = 0; j < obj.levels.size(); ++j) {
    problem.level_sizes.push_back(obj.level_bytes(j));
    problem.level_errors.push_back(obj.rel_error_bound(j + 1));
  }
  const auto solution = ft_optimize_heuristic(problem);
  RAPIDS_REQUIRE_MSG(solution.has_value(),
                     "prepare: no FT configuration fits the overhead budget");
  report.optimize_seconds = t.seconds();

  // 4) Erasure-code every level with its own configuration. Levels are
  // independent, so each one's encode is forked as its own task — a second
  // axis of parallelism on top of the intra-encode parallel_for.
  t.reset();
  std::vector<std::vector<ec::Fragment>> per_level(obj.levels.size());
  const auto encode_level = [&](u32 j) {
    const u32 m = solution->m[j];
    const ec::ReedSolomon rs(n - m, m, config_.matrix_kind);
    per_level[j] = rs.encode(payload_u8(obj.levels[j].payload), name, j, pool_);
  };
  if (pool_ != nullptr && pool_->size() > 1 && obj.levels.size() > 1) {
    TaskGroup group(pool_);
    for (u32 j = 0; j < obj.levels.size(); ++j)
      group.run([&encode_level, j] { encode_level(j); });
    group.wait();
  } else {
    for (u32 j = 0; j < obj.levels.size(); ++j) encode_level(j);
  }
  report.encode_seconds = t.seconds();

  // Build and serialize the object record before taking the lock: only the
  // actual stores below need to be serialized against other batch objects.
  ObjectRecord record;
  record.meta = obj;
  record.ft = solution->m;
  for (u32 j = 0; j < obj.levels.size(); ++j)
    record.level_sizes.push_back(obj.level_bytes(j));
  record.matrix_kind = config_.matrix_kind;
  record.placement = config_.placement;
  const Bytes record_bytes = record.serialize();

  // 5-6) Distribute one fragment of every level to every system and persist
  // the object record. Shared-state stage: cluster and metadata store are
  // not thread-safe, so it runs under io_mu_ (and never touches the pool
  // while holding it). Transient put failures are retried with deterministic
  // backoff; a system that keeps failing gets its fragment re-placed on the
  // least-loaded healthy system, and the metadata records where the fragment
  // actually landed. Fragment locations go to the store as one batch per
  // level instead of one put per fragment.
  t.reset();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    std::vector<std::pair<std::string, std::string>> locations;
    for (u32 j = 0; j < per_level.size(); ++j) {
      locations.clear();
      locations.reserve(per_level[j].size());
      for (u32 idx = 0; idx < per_level[j].size(); ++idx) {
        const ec::Fragment& frag = per_level[j][idx];
        const u32 preferred = storage::place_fragment(config_.placement, n, j, idx);

        const auto try_put = [&](u32 sys, u64 salt) {
          const auto r = retry_io(
              config_.retry, stable_hash(name, (u64{j} << 32) | idx, salt),
              [&] {
                cluster_.system(sys).put(frag);
                return true;
              });
          report.put_retries += r.attempts > 0 ? r.attempts - 1 : 0;
          report.backoff_seconds += r.backoff_seconds;
          record_health(sys, r.ok());
          return r.ok();
        };

        u32 target = preferred;
        bool stored = try_put(preferred, 0xA0);
        if (!stored) {
          // Persistent failure: re-place on the least-loaded available
          // system (deterministic order: health-allowed first, then fewest
          // fragments, then lowest id) and record the new home.
          ++report.relocations;
          std::vector<std::tuple<u32, u64, u32>> candidates;  // (bad, load, id)
          for (u32 s = 0; s < n; ++s) {
            if (s == preferred || !cluster_.system(s).available()) continue;
            const u32 bad =
                config_.health_tracking && !health().allow(s) ? 1u : 0u;
            candidates.emplace_back(bad, cluster_.system(s).fragment_count(), s);
          }
          std::sort(candidates.begin(), candidates.end());
          for (const auto& [bad, load, s] : candidates) {
            if (try_put(s, 0xB0)) {
              target = s;
              stored = true;
              break;
            }
          }
        }
        if (!stored)
          throw io_error("prepare: no storage system accepted fragment " +
                         frag.id.key());
        locations.emplace_back(frag.id.key(), std::to_string(target));
        ++report.fragments_stored;
      }
      db_.put_batch(locations);
    }
    db_.put(object_key(name),
            std::string(reinterpret_cast<const char*>(record_bytes.data()),
                        record_bytes.size()));
    persist_health();
  }
  report.store_seconds = t.seconds();

  // The object's payloads may have changed: cached levels from a previous
  // prepare of the same name are stale now.
  restore_cache_.invalidate(name);

  report.expected_error = solution->expected_error;
  report.storage_overhead = solution->storage_overhead;
  report.network_overhead = ft_network_overhead(
      n, solution->m, record.level_sizes, obj.original_bytes());
  report.distribution_latency = net::equal_share_latency(
      rfec_distribution_plan(record.level_sizes, solution->m, n),
      cluster_.bandwidths());
  record.meta.levels = std::move(obj.levels);  // keep payloads in the report
  report.record = std::move(record);
  return report;
}

std::optional<ObjectRecord> RapidsPipeline::lookup(const std::string& name) const {
  const auto raw = db_.get(object_key(name));
  if (!raw) return std::nullopt;
  return ObjectRecord::deserialize(
      {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
}

std::map<u32, u32> RapidsPipeline::fragment_locations(const std::string& name,
                                                      u32 level) const {
  std::map<u32, u32> out;
  const std::string prefix = "frag/" + name + "/" + std::to_string(level) + "/";
  for (const auto& [key, value] : db_.scan_prefix(prefix)) {
    const u32 index = static_cast<u32>(std::stoul(key.substr(prefix.size())));
    const u32 system = static_cast<u32>(std::stoul(value));
    // A system may host several fragments of one level after evacuations;
    // keep the first (any one is equally useful to a gather plan).
    out.emplace(system, index);
  }
  return out;
}

net::BandwidthTracker& RapidsPipeline::tracker() {
  if (!tracker_) {
    const auto raw = db_.get("net/bandwidth_tracker");
    if (raw && raw->size() > 0) {
      tracker_ = net::BandwidthTracker::deserialize(
          {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
      if (tracker_->size() != cluster_.size()) tracker_.reset();
    }
    if (!tracker_) tracker_ = net::BandwidthTracker(cluster_.bandwidths());
  }
  return *tracker_;
}

void RapidsPipeline::persist_tracker() {
  if (!tracker_) return;
  const Bytes wire = tracker_->serialize();
  db_.put("net/bandwidth_tracker",
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
}

storage::SystemHealth& RapidsPipeline::health() {
  if (!health_) {
    const auto raw = db_.get("net/system_health");
    if (raw && raw->size() > 0) {
      try {
        health_ = storage::SystemHealth::deserialize(
            {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
      } catch (const io_error&) {
        health_.reset();
      }
      if (health_ && health_->size() != cluster_.size()) health_.reset();
    }
    if (!health_)
      health_ = storage::SystemHealth(cluster_.size(), config_.health);
  }
  return *health_;
}

void RapidsPipeline::persist_health() {
  if (!health_ || !config_.health_tracking) return;
  const Bytes wire = health_->serialize();
  db_.put("net/system_health",
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
}

storage::SystemHealth& RapidsPipeline::system_health() {
  std::lock_guard<std::mutex> lock(io_mu_);
  return health();
}

void RapidsPipeline::record_health(u32 system, bool ok,
                                   f64 latency_multiplier) {
  if (!config_.health_tracking) return;
  if (ok)
    health().record_success(system, latency_multiplier);
  else
    health().record_failure(system);
}

std::vector<f64> RapidsPipeline::bandwidth_estimates() const {
  if (config_.adapt_bandwidth && tracker_) return tracker_->estimates();
  return cluster_.bandwidths();
}

GatherPlan RapidsPipeline::plan_gather(const GatherProblem& problem) const {
  switch (config_.strategy) {
    case GatherStrategy::kRandom: {
      Rng rng(config_.random_seed);
      return random_plan(problem, rng);
    }
    case GatherStrategy::kNaive:
      return naive_plan(problem);
    case GatherStrategy::kOptimized:
      return optimized_plan(problem, config_.aco);
  }
  throw invariant_error("restore: unknown gather strategy");
}

RapidsPipeline::FetchOutcome RapidsPipeline::fetch_with_retry(
    u32 system, const ec::FragmentId& id) {
  FetchOutcome out;
  Backoff backoff(config_.retry, stable_hash(id.key(), system, 0xFE7C4ull));
  u32 attempts = 0;
  for (;;) {
    ++attempts;
    bool transient = false;
    try {
      auto frag = cluster_.system(system).get(id.key());
      if (!frag) {
        out.missing = true;  // permanent: retrying cannot materialize it
      } else if (frag->verify()) {
        out.fragment = std::move(frag);
      } else {
        // In-flight corruption (or at-rest damage): a re-read may verify.
        transient = true;
      }
    } catch (const io_error&) {
      transient = true;  // outage / crash window / injected transient error
    }
    if (!transient) break;  // success or permanent miss: no retry
    backoff.record_failure();
    if (backoff.exhausted()) break;
  }
  out.attempts = attempts;
  out.backoff_seconds = backoff.total_backoff_s();
  return out;
}

RestoreReport RapidsPipeline::restore(const std::string& name) {
  return do_restore(name);
}

std::vector<RestoreReport> RapidsPipeline::restore_batch(
    std::span<const std::string> names) {
  std::vector<RestoreReport> reports(names.size());
  if (pool_ == nullptr || pool_->size() <= 1 || names.size() <= 1) {
    for (std::size_t i = 0; i < names.size(); ++i)
      reports[i] = do_restore(names[i]);
    return reports;
  }
  // One task per object: planning, decode, and reconstruction overlap across
  // objects; the fetch stage serializes internally on io_mu_.
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    group.run([this, &names, &reports, i] { reports[i] = do_restore(names[i]); });
  }
  group.wait();
  return reports;
}

void RapidsPipeline::snapshot_problem(const std::string& name,
                                      std::optional<ObjectRecord>& record,
                                      GatherProblem& problem) {
  const u32 n = cluster_.size();
  // Build the gathering problem from current availability; bandwidths come
  // from the learned tracker when adaptation is on (paper Section 4.3).
  // Metadata lookup + availability/bandwidth snapshot touch shared state.
  std::lock_guard<std::mutex> lock(io_mu_);
  record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "restore: unknown object " + name);
  problem.n = n;
  problem.m = record->ft;
  problem.level_sizes = record->level_sizes;
  problem.bandwidths =
      config_.adapt_bandwidth ? tracker().estimates() : cluster_.bandwidths();
  problem.available.resize(n);
  for (u32 i = 0; i < n; ++i)
    problem.available[i] = cluster_.system(i).available();
  // Route around circuit-open systems — but only when skipping them does
  // not shrink the recoverable prefix (degradation must stay availability-
  // driven, never health-heuristic-driven). allow() doubles as the
  // half-open transition, so cooled-down systems get their probe here.
  if (config_.health_tracking) {
    std::vector<bool> healthy = problem.available;
    bool any_excluded = false;
    for (u32 i = 0; i < n; ++i) {
      if (healthy[i] && !health().allow(i)) {
        healthy[i] = false;
        any_excluded = true;
      }
    }
    if (any_excluded) {
      GatherProblem alt = problem;
      alt.available = healthy;
      if (alt.recoverable_levels() == problem.recoverable_levels())
        problem.available = std::move(healthy);
    }
  }
}

bool RapidsPipeline::fetch_levels(const ObjectRecord& record,
                                  const std::string& name,
                                  GatherProblem& problem,
                                  const std::vector<u32>& levels,
                                  const solver::Selection* preplanned,
                                  RestoreReport& report,
                                  std::vector<Bytes>& payloads) {
  if (levels.empty()) return true;
  const u32 n = cluster_.size();
  const u32 nsub = static_cast<u32>(levels.size());
  Timer t;

  // Plan + fetch, replanning (bounded) when a planned fragment stays missing
  // or damaged after retry and hedging: the offending system is treated as
  // unavailable and the remaining tolerance absorbs it, exactly like one
  // more concurrent outage.
  for (u32 attempt = 0; attempt <= n; ++attempt) {
    // Every requested level must still be recoverable; when one is not, the
    // caller decides how to degrade (shrink the prefix, keep the session's
    // current state, ...).
    u32 failed = 0;
    for (const bool a : problem.available) failed += a ? 0 : 1;
    for (const u32 j : levels)
      if (failed > problem.m[j]) return false;

    // Gathering sub-problem over exactly the requested levels. Level order
    // is preserved, so the m_j stay strictly decreasing and the FT config
    // remains valid.
    GatherProblem sub;
    sub.n = problem.n;
    sub.bandwidths = problem.bandwidths;
    sub.available = problem.available;
    for (const u32 j : levels) {
      sub.m.push_back(problem.m[j]);
      sub.level_sizes.push_back(problem.level_sizes[j]);
    }

    // Reuse the caller's rows when they are still placeable (first attempt
    // only: an internal replan means availability moved under the plan).
    GatherPlan plan;
    bool planned = false;
    if (preplanned != nullptr && attempt == 0 && preplanned->size() == nsub) {
      bool usable = true;
      for (u32 i = 0; i < nsub && usable; ++i) {
        usable = (*preplanned)[i].size() == sub.n - sub.m[i];
        for (const u32 sys : (*preplanned)[i])
          usable = usable && sys < sub.n && sub.available[sys];
      }
      if (usable) {
        plan = evaluate_plan(sub, *preplanned);  // score only, no optimizer
        planned = true;
      }
    }
    if (!planned) plan = plan_gather(sub);  // pure: runs outside the lock
    report.planning_seconds += plan.planning_seconds;

    // Fetch the planned fragments (real bytes; the simulated clock below is
    // the WAN time for those very transfers, with injected stragglers and
    // retry backoff folded in). Shared-state stage: location scans, cluster
    // reads, and health updates run under io_mu_; decode happens after the
    // lock drops.
    t.reset();
    std::optional<u32> bad_system;
    std::vector<std::vector<ec::Fragment>> level_frags(nsub);
    f64 observed_latency = 0.0;
    u64 landed_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(io_mu_);

      // Resolve the plan into (level, system, index, bytes) fetches; a
      // metadata miss (no fragment recorded on a planned system) forces an
      // immediate replan without charging the system's health.
      struct PlannedFetch {
        u32 level = 0;  ///< index into `levels`/`sub`, not the real level
        u32 system = 0;
        u32 index = 0;
        u64 bytes = 0;
      };
      std::vector<PlannedFetch> fetches;
      std::vector<std::map<u32, u32>> locations(nsub);
      for (u32 j = 0; j < nsub && !bad_system; ++j) {
        locations[j] = fragment_locations(name, levels[j]);
        for (u32 sys : plan.systems_per_level[j]) {
          const auto loc = locations[j].find(sys);
          if (loc == locations[j].end()) {
            log::warn("pipeline", "no level-", levels[j],
                      " fragment recorded on system ", sys, "; replanning");
            bad_system = sys;
            break;
          }
          fetches.push_back({j, sys, loc->second, sub.fragment_bytes(j + 1)});
        }
      }

      if (!bad_system) {
        // Simulated transfer clock: equal-share contention over the whole
        // plan, scaled by each transfer's sampled straggler multiplier.
        std::vector<net::Transfer> transfers;
        std::vector<f64> mults;
        transfers.reserve(fetches.size());
        mults.reserve(fetches.size());
        for (const auto& f : fetches) {
          transfers.push_back(net::Transfer{f.system, f.bytes});
          mults.push_back(cluster_.system(f.system).sample_transfer_multiplier());
        }
        std::vector<f64> times = net::equal_share_times_scaled(
            transfers, problem.bandwidths, mults);
        const f64 median = median_of(times);
        const f64 hedge_launch = config_.hedge_threshold * median;

        // Per level, the systems already serving a fragment (planned or
        // hedge), so hedges never duplicate a fragment index.
        std::vector<std::set<u32>> used(nsub);
        for (const auto& f : fetches) used[f.level].insert(f.system);

        for (std::size_t i = 0; i < fetches.size() && !bad_system; ++i) {
          const auto& f = fetches[i];
          auto primary =
              fetch_with_retry(f.system, {name, levels[f.level], f.index});
          report.fetch_retries += primary.attempts - 1;
          report.backoff_seconds += primary.backoff_seconds;
          const bool ok = primary.fragment.has_value();
          if (ok) landed_bytes += primary.fragment->payload.size();
          if (!primary.missing) record_health(f.system, ok, mults[i]);

          f64 effective = times[i];
          std::optional<ec::Fragment> winner = std::move(primary.fragment);

          const bool straggling =
              times[i] > hedge_launch ||
              (config_.retry.op_timeout_s > 0.0 &&
               times[i] > config_.retry.op_timeout_s);
          if (config_.hedged_reads && (straggling || !ok)) {
            // Hedge: duplicate the read against the fastest unplanned holder
            // of a *sibling* fragment of the same level (any k distinct
            // fragments decode). The hedge launches at hedge_launch on the
            // simulated clock and runs at an exclusive share.
            std::optional<u32> spare;
            for (const auto& [sys2, idx2] : locations[f.level]) {
              if (used[f.level].contains(sys2)) continue;
              if (!cluster_.system(sys2).available()) continue;
              if (config_.health_tracking && !health().allow(sys2)) continue;
              if (!spare ||
                  problem.bandwidths[sys2] > problem.bandwidths[*spare])
                spare = sys2;
            }
            if (spare) {
              ++report.hedged_fetches;
              used[f.level].insert(*spare);
              const u32 spare_index = locations[f.level][*spare];
              auto hedge = fetch_with_retry(
                  *spare, {name, levels[f.level], spare_index});
              report.fetch_retries += hedge.attempts - 1;
              report.backoff_seconds += hedge.backoff_seconds;
              if (hedge.fragment)
                landed_bytes += hedge.fragment->payload.size();
              if (!hedge.missing)
                record_health(*spare, hedge.fragment.has_value());
              if (hedge.fragment) {
                const f64 spare_mult =
                    cluster_.system(*spare).sample_transfer_multiplier();
                const f64 hedge_time =
                    hedge_launch + static_cast<f64>(f.bytes) /
                                       problem.bandwidths[*spare] * spare_mult;
                if (!ok || hedge_time < effective) {
                  winner = std::move(hedge.fragment);
                  effective = ok ? std::min(effective, hedge_time) : hedge_time;
                  ++report.hedge_wins;
                }
              }
            }
          }

          if (!winner) {
            log::warn("pipeline", "fragment ", name, "/", levels[f.level], "/",
                      f.index, " missing or damaged on system ", f.system,
                      "; replanning");
            bad_system = f.system;
            break;
          }
          level_frags[f.level].push_back(std::move(*winner));
          observed_latency = std::max(observed_latency, effective);
        }
      }
      persist_health();
    }

    if (!bad_system) {
      report.gather_latency = observed_latency + report.backoff_seconds;
      report.bytes_transferred += landed_bytes;
      report.plan = std::move(plan);
      // Decode every fetched level; levels are independent, so each one is
      // forked as its own task when a pool is available.
      const auto decode_level = [&](u32 i) {
        const ec::ReedSolomon rs = codec_for(record, levels[i]);
        const std::vector<u8> level = rs.decode(level_frags[i], pool_);
        const auto* p = reinterpret_cast<const std::byte*>(level.data());
        payloads[levels[i]] = Bytes(p, p + level.size());
      };
      if (pool_ != nullptr && pool_->size() > 1 && nsub > 1) {
        TaskGroup group(pool_);
        for (u32 i = 0; i < nsub; ++i)
          group.run([&decode_level, i] { decode_level(i); });
        group.wait();
      } else {
        for (u32 i = 0; i < nsub; ++i) decode_level(i);
      }
      report.decode_seconds += t.seconds();

      // Fold the observed (simulated-WAN) per-transfer throughput back into
      // the tracker so later plans adapt to bandwidth changes.
      if (config_.adapt_bandwidth) {
        const auto transfers = plan_transfers(sub, report.plan.systems_per_level);
        std::vector<u32> load(n, 0);
        for (const auto& tr : transfers) load[tr.system] += 1;
        std::lock_guard<std::mutex> lock(io_mu_);
        const auto times =
            net::equal_share_times(transfers, cluster_.bandwidths());
        for (std::size_t i = 0; i < transfers.size(); ++i) {
          // Undo the contention share so the observation estimates the
          // nominal endpoint bandwidth, not this plan's slice of it.
          const f64 exclusive_seconds =
              times[i] / static_cast<f64>(load[transfers[i].system]);
          if (exclusive_seconds > 0.0)
            tracker().observe(transfers[i].system, transfers[i].bytes,
                              exclusive_seconds);
        }
        persist_tracker();
      }
      return true;
    }
    problem.available[*bad_system] = false;
    ++report.replans;
  }
  // Replanning exhausted every system without converging; the caller holds
  // the availability the loop degraded to and decides what is still possible.
  log::warn("pipeline", "restore: replanning did not converge for ", name);
  return false;
}

RestoreReport RapidsPipeline::do_restore(const std::string& name) {
  RestoreReport report;

  std::optional<ObjectRecord> record;
  GatherProblem problem;
  snapshot_problem(name, record, problem);
  const u32 nlevels = static_cast<u32>(record->ft.size());

  // Consult the restore cache before planning: cached levels skip the WAN
  // fetch and erasure decode entirely; a CRC mismatch evicts the entry and
  // falls through to a normal fetch.
  std::vector<Bytes> payloads(nlevels);
  std::vector<bool> cached(nlevels, false);
  for (u32 j = 0; j < nlevels; ++j) {
    Bytes hit;
    switch (restore_cache_.get(name, j, hit)) {
      case storage::RestoreCache::Outcome::kHit:
        payloads[j] = std::move(hit);
        cached[j] = true;
        ++report.cache_hits;
        break;
      case storage::RestoreCache::Outcome::kCorrupt:
        ++report.cache_corrupt;
        [[fallthrough]];
      case storage::RestoreCache::Outcome::kMiss:
        ++report.cache_misses;
        break;
    }
  }

  u32 levels_used = 0;
  for (;;) {
    // Cached levels need no fragments, so the usable prefix extends through
    // them even under outages that would make a fetch impossible.
    levels_used = recoverable_prefix(problem, cached);
    if (levels_used == 0) {
      // Per the RestoreReport contract this is the degraded outcome, not a
      // crash: the caller gets empty data and the honest e_0 = 1 penalty.
      log::warn("pipeline", "object ", name,
                " unrecoverable: too many outages");
      report.rel_error_bound = 1.0;  // the paper's e_0 penalty
      report.data.clear();
      return report;
    }
    std::vector<u32> uncached;
    for (u32 j = 0; j < levels_used; ++j)
      if (!cached[j]) uncached.push_back(j);
    if (fetch_levels(*record, name, problem, uncached, nullptr, report,
                     payloads))
      break;
    // fetch_levels marked at least one more system unavailable, so the
    // recoverable prefix strictly shrinks and this loop terminates.
  }
  report.levels_used = levels_used;
  report.rel_error_bound = record->meta.rel_error_bound(levels_used);

  // Freshly fetched levels feed the cache for later restores and refinements.
  for (u32 j = 0; j < levels_used; ++j)
    if (!cached[j]) restore_cache_.put(name, j, payloads[j]);

  const std::span<const Bytes> prefix(payloads.data(), levels_used);
  report.planes_decoded = mgard::count_magnitude_segments(prefix);

  // Reconstruct the approximation from the recovered prefix.
  Timer t;
  report.data = refactorer_.reconstruct(record->meta, prefix);
  report.reconstruct_seconds = t.seconds();
  return report;
}

std::shared_ptr<RefineSession> RapidsPipeline::begin_refine(
    const std::string& name) {
  return std::make_shared<RefineSession>(name);
}

RestoreReport RapidsPipeline::refine(const std::string& name, f64 rel_bound) {
  std::shared_ptr<RefineSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end())
      it = sessions_.emplace(name, std::make_shared<RefineSession>(name)).first;
    session = it->second;
  }
  return refine(*session, rel_bound);
}

void RapidsPipeline::end_refine(const std::string& name) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(name);
}

RestoreReport RapidsPipeline::refine(RefineSession& session, f64 rel_bound) {
  std::lock_guard<std::mutex> session_lock(session.mu_);
  RestoreReport report;

  std::optional<ObjectRecord> record;
  GatherProblem problem;
  snapshot_problem(session.name_, record, problem);
  const u32 nlevels = static_cast<u32>(record->ft.size());

  // Resolve the requested bound to a target prefix: the fewest retrieval
  // levels whose guaranteed e_j meets it, or all of them when even the full
  // representation cannot.
  u32 target = nlevels;
  for (u32 j = 1; j <= nlevels; ++j) {
    if (record->meta.rel_error_bound(j) <= rel_bound) {
      target = j;
      break;
    }
  }

  const auto current_state = [&](u32 used) {
    report.levels_used = used;
    report.rel_error_bound =
        used == 0 ? 1.0 : record->meta.rel_error_bound(used);
    report.data = session.data_;
    return report;
  };

  // Already refined at least this far: nothing to transfer or decode.
  if (target <= session.cursor_) return current_state(session.cursor_);

  // Consult the shared cache for the levels this rung needs. Levels below
  // the cursor are already materialized in the session's plane sets.
  std::vector<Bytes> payloads(nlevels);
  std::vector<bool> cached(nlevels, false);
  for (u32 j = 0; j < session.cursor_; ++j) cached[j] = true;
  for (u32 j = session.cursor_; j < target; ++j) {
    Bytes hit;
    switch (restore_cache_.get(session.name_, j, hit)) {
      case storage::RestoreCache::Outcome::kHit:
        payloads[j] = std::move(hit);
        cached[j] = true;
        ++report.cache_hits;
        break;
      case storage::RestoreCache::Outcome::kCorrupt:
        ++report.cache_corrupt;
        [[fallthrough]];
      case storage::RestoreCache::Outcome::kMiss:
        ++report.cache_misses;
        break;
    }
  }

  u32 usable = 0;
  std::vector<u32> fetched_levels;
  for (;;) {
    usable = std::min(target, recoverable_prefix(problem, cached));
    if (usable <= session.cursor_) {
      // Outages block any improvement. Hold the session's current state —
      // degraded but monotone — rather than going backwards or throwing.
      log::warn("pipeline", "refine: object ", session.name_,
                " cannot improve past ", session.cursor_,
                " levels under current outages");
      return current_state(session.cursor_);
    }
    std::vector<u32> uncached;
    for (u32 j = session.cursor_; j < usable; ++j)
      if (!cached[j]) uncached.push_back(j);
    if (uncached.empty()) {
      fetched_levels.clear();
      break;
    }

    // Reuse the session's ladder plan when it covers these levels and
    // neither availability nor the learned bandwidths drifted materially
    // since it was computed; otherwise plan the whole remaining ladder once
    // so later rungs can slice rows out of it without re-running the
    // optimizer.
    solver::Selection pre;
    bool have_pre = false;
    if (!session.planned_rows_.empty() &&
        session.plan_available_ == problem.available &&
        session.plan_bandwidths_.size() == problem.bandwidths.size()) {
      f64 max_delta = 0.0;
      for (std::size_t i = 0; i < problem.bandwidths.size(); ++i) {
        const f64 ref = std::max(std::fabs(session.plan_bandwidths_[i]), 1e-12);
        max_delta = std::max(
            max_delta,
            std::fabs(problem.bandwidths[i] - session.plan_bandwidths_[i]) / ref);
      }
      if (max_delta <= config_.plan_reuse_bw_tolerance) {
        have_pre = true;
        for (const u32 j : uncached) {
          const auto it = session.planned_rows_.find(j);
          if (it == session.planned_rows_.end()) {
            have_pre = false;
            break;
          }
          pre.push_back(it->second);
        }
        if (!have_pre) pre.clear();
      }
    }
    if (!have_pre) {
      session.clear_plan();
      const u32 reach = recoverable_prefix(problem, cached);
      std::vector<u32> ladder;
      for (u32 j = session.cursor_; j < reach; ++j)
        if (!cached[j]) ladder.push_back(j);
      GatherProblem sub;
      sub.n = problem.n;
      sub.bandwidths = problem.bandwidths;
      sub.available = problem.available;
      for (const u32 j : ladder) {
        sub.m.push_back(problem.m[j]);
        sub.level_sizes.push_back(problem.level_sizes[j]);
      }
      GatherPlan ladder_plan = plan_gather(sub);
      report.planning_seconds += ladder_plan.planning_seconds;
      for (std::size_t i = 0; i < ladder.size(); ++i)
        session.planned_rows_[ladder[i]] =
            std::move(ladder_plan.systems_per_level[i]);
      session.plan_bandwidths_ = problem.bandwidths;
      session.plan_available_ = problem.available;
      for (const u32 j : uncached) pre.push_back(session.planned_rows_[j]);
    }
    report.plan_reused = have_pre;

    const u32 replans_before = report.replans;
    if (fetch_levels(*record, session.name_, problem, uncached, &pre, report,
                     payloads)) {
      if (report.replans != replans_before) {
        // Availability moved mid-fetch; the remaining ladder rows are stale.
        session.clear_plan();
      } else {
        for (const u32 j : uncached) session.planned_rows_.erase(j);
      }
      fetched_levels = uncached;
      break;
    }
    session.clear_plan();  // prefix shrank; recompute next iteration
  }

  // Newly fetched levels feed the shared cache.
  for (const u32 j : fetched_levels)
    restore_cache_.put(session.name_, j, payloads[j]);

  // Grow the session's plane sets with the new levels only and decode just
  // the bitplanes those levels added; everything below the cursor keeps its
  // already-decoded quantized state.
  if (session.plane_sets_.empty()) {
    session.plane_sets_.resize(record->meta.dlevels.size());
    for (std::size_t d = 0; d < session.plane_sets_.size(); ++d) {
      session.plane_sets_[d].count = record->meta.dlevels[d].count;
      session.plane_sets_[d].max_abs = record->meta.dlevels[d].max_abs;
      session.plane_sets_[d].exponent = record->meta.dlevels[d].exponent;
    }
  }
  const std::span<const Bytes> fresh(payloads.data() + session.cursor_,
                                     usable - session.cursor_);
  report.planes_decoded = mgard::count_magnitude_segments(fresh);
  mgard::append_plane_sets(session.plane_sets_, fresh);

  Timer t;
  session.data_ = refactorer_.reconstruct_incremental(
      record->meta, session.plane_sets_, session.pstates_);
  report.reconstruct_seconds = t.seconds();

  session.cursor_ = usable;
  session.bound_ = record->meta.rel_error_bound(usable);
  return current_state(usable);
}

void RapidsPipeline::repair_fragment(const std::string& name, u32 level,
                                     u32 index, u32 target_system) {
  std::lock_guard<std::mutex> lock(io_mu_);
  repair_fragment_locked(name, level, index, target_system);
}

void RapidsPipeline::repair_fragment_locked(const std::string& name, u32 level,
                                            u32 index, u32 target_system) {
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "repair: unknown object " + name);
  const ec::ReedSolomon rs = codec_for(*record, level);

  std::vector<ec::Fragment> survivors;
  for (const auto& [sys, idx] : fragment_locations(name, level)) {
    if (survivors.size() >= rs.k()) break;
    if (!cluster_.system(sys).available()) continue;
    if (idx == index) continue;  // the lost one
    auto out = fetch_with_retry(sys, {name, level, idx});
    if (!out.missing) record_health(sys, out.fragment.has_value());
    if (out.fragment) survivors.push_back(std::move(*out.fragment));
  }
  RAPIDS_REQUIRE_MSG(survivors.size() >= rs.k(),
                     "repair: not enough surviving fragments");
  // Pool-free while io_mu_ is held: a helping waiter could steal a task
  // that needs this very lock.
  ec::Fragment rebuilt = rs.reconstruct_fragment(survivors, index, nullptr);
  const auto put = retry_io(
      config_.retry, stable_hash(rebuilt.id.key(), target_system, 0x9E9Aull),
      [&] {
        cluster_.system(target_system).put(rebuilt);
        return true;
      });
  record_health(target_system, put.ok());
  if (!put.ok())
    throw io_error("repair: target system rejected rebuilt fragment " +
                   rebuilt.id.key() + ": " + put.last_error);
  const std::pair<std::string, std::string> location{
      rebuilt.id.key(), std::to_string(target_system)};
  db_.put_batch({&location, 1});
}

std::vector<std::string> RapidsPipeline::list_objects() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : db_.scan_prefix("obj/"))
    out.push_back(key.substr(4));
  return out;
}

RapidsPipeline::ScrubReport RapidsPipeline::scrub(const std::string& name,
                                                  bool repair) {
  std::optional<ObjectRecord> record;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    record = lookup(name);
  }
  RAPIDS_REQUIRE_MSG(record.has_value(), "scrub: unknown object " + name);
  ScrubReport report;
  for (u32 level = 0; level < record->ft.size(); ++level) {
    std::map<u32, u32> locations;
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      locations = fragment_locations(name, level);
    }
    for (const auto& [sys, idx] : locations) {
      // Fine-grained locking: one fragment's check+repair per critical
      // section, so concurrent batch traffic interleaves with a long scrub.
      std::lock_guard<std::mutex> lock(io_mu_);
      if (!cluster_.system(sys).available()) continue;  // outage, not damage
      ++report.fragments_checked;
      auto out = fetch_with_retry(sys, {name, level, idx});
      if (!out.missing) record_health(sys, out.fragment.has_value());
      if (out.fragment) continue;
      report.damaged.emplace_back(level, idx, sys);
      log::warn("pipeline", "scrub: fragment ", name, "/", level, "/", idx,
                " on system ", sys,
                out.missing ? " is missing" : " is damaged or unreadable");
      if (repair) {
        repair_fragment_locked(name, level, idx, sys);
        ++report.repaired;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    persist_health();
  }
  return report;
}

u64 RapidsPipeline::age_object(const std::string& name, u32 keep_levels) {
  std::lock_guard<std::mutex> lock(io_mu_);
  auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "age: unknown object " + name);
  const u32 current = static_cast<u32>(record->ft.size());
  RAPIDS_REQUIRE_MSG(keep_levels >= 1 && keep_levels < current,
                     "age: keep_levels must be in [1, levels)");

  // Drop the deep levels' fragments everywhere and forget their locations.
  u64 reclaimed = 0;
  for (u32 level = keep_levels; level < current; ++level) {
    for (const auto& [sys, idx] : fragment_locations(name, level)) {
      const std::string key = ec::FragmentId{name, level, idx}.key();
      auto& host = cluster_.system(sys);
      if (host.has(key)) {
        // Logical payload size: level bytes spread over k fragments.
        reclaimed += ceil_div(record->level_sizes[level],
                              cluster_.size() - record->ft[level]);
        host.erase(key);
      }
      db_.del(key);
    }
  }

  // Truncate the record so future restores plan only the kept levels.
  record->ft.resize(keep_levels);
  record->level_sizes.resize(keep_levels);
  record->meta.levels.resize(keep_levels);
  const Bytes wire = record->serialize();
  db_.put(object_key(name),
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
  // Cached payloads of the dropped levels must never serve again.
  restore_cache_.invalidate_from(name, keep_levels);
  log::info("pipeline", "aged ", name, " to ", keep_levels,
            " levels, reclaimed ", reclaimed, " bytes");
  return reclaimed;
}

u32 RapidsPipeline::evacuate_system(const std::string& name, u32 system) {
  std::lock_guard<std::mutex> lock(io_mu_);
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "evacuate: unknown object " + name);
  const u32 n = cluster_.size();
  RAPIDS_REQUIRE(system < n);

  u32 moved = 0;
  std::vector<std::pair<std::string, std::string>> new_locations;
  for (u32 level = 0; level < record->ft.size(); ++level) {
    const auto locations = fragment_locations(name, level);
    const auto loc = locations.find(system);
    if (loc == locations.end()) continue;  // nothing of this level here
    const u32 idx = loc->second;
    const std::string key = ec::FragmentId{name, level, idx}.key();
    if (!cluster_.system(system).has(key)) continue;  // already elsewhere

    // Destination: the system (other than the source) currently holding the
    // fewest fragments — keeps load roughly even as systems retire.
    u32 target = system == 0 ? 1 : 0;
    for (u32 s = 0; s < n; ++s) {
      if (s == system || !cluster_.system(s).available()) continue;
      if (cluster_.system(s).fragment_count() <
          cluster_.system(target).fragment_count())
        target = s;
    }
    RAPIDS_REQUIRE_MSG(target != system && cluster_.system(target).available(),
                       "evacuate: no destination system available");

    // Prefer a direct move (with retry around both sides); fall back to
    // rebuilding from survivors if the source copy is unreadable.
    std::optional<ec::Fragment> frag;
    if (cluster_.system(system).available()) {
      auto out = fetch_with_retry(system, {name, level, idx});
      frag = std::move(out.fragment);
    }
    bool moved_direct = false;
    if (frag) {
      const auto put = retry_io(
          config_.retry, stable_hash(key, target, 0xE7A0ull), [&] {
            cluster_.system(target).put(*frag);
            return true;
          });
      record_health(target, put.ok());
      moved_direct = put.ok();
    }
    if (!moved_direct) repair_fragment_locked(name, level, idx, target);
    cluster_.system(system).erase(key);
    new_locations.emplace_back(key, std::to_string(target));
    ++moved;
  }
  // One metadata batch for the whole evacuation. (The repair fallback above
  // already wrote the same key -> target, so the batch only confirms it.)
  db_.put_batch(new_locations);
  persist_health();
  return moved;
}

}  // namespace rapids::core
