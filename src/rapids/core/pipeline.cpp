#include "rapids/core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <utility>

#include "rapids/core/baselines.hpp"

#include "rapids/parallel/channel.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/util/logging.hpp"
#include "rapids/util/timer.hpp"

namespace rapids::core {

namespace {
constexpr u32 kRecordMagic = 0x524F4252u;  // "ROBR"

std::string object_key(const std::string& name) { return "obj/" + name; }

std::span<const u8> payload_u8(const Bytes& payload) {
  return {reinterpret_cast<const u8*>(payload.data()), payload.size()};
}

f64 median_of(std::vector<f64> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// Deepest restorable prefix when some levels are already on hand: a cached
/// level needs no fragments, so it only requires the levels before it —
/// during a total outage an object can still be served entirely from cache.
u32 recoverable_prefix(const GatherProblem& problem,
                       const std::vector<bool>& cached) {
  u32 failed = 0;
  for (const bool a : problem.available) failed += a ? 0 : 1;
  u32 j = 0;
  while (j < problem.m.size() && (cached[j] || failed <= problem.m[j])) ++j;
  return j;
}
}  // namespace

u32 RefineSession::levels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cursor_;
}

f64 RefineSession::rel_error_bound() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_;
}

std::vector<f32> RefineSession::data() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

std::string generation_storage_name(const std::string& name, u32 generation) {
  if (generation == 0) return name;
  return name + "@g" + std::to_string(generation);
}

Bytes ObjectRecord::serialize() const {
  ByteWriter w;
  w.put_u32(kRecordMagic);
  w.put_u16(2);
  w.put_bytes(as_bytes_view(meta.serialize_metadata()));
  w.put_u32(static_cast<u32>(ft.size()));
  for (u32 m : ft) w.put_u32(m);
  w.put_u32(static_cast<u32>(level_sizes.size()));
  for (u64 s : level_sizes) w.put_u64(s);
  w.put_u8(matrix_kind == ec::MatrixKind::kVandermonde ? 0 : 1);
  w.put_u8(placement == storage::PlacementPolicy::kIdentity ? 0 : 1);
  // v2 tail: the control plane's migration/drift state.
  w.put_u32(generation);
  w.put_f64(planned_p);
  w.put_f64(planned_error);
  return w.take();
}

ObjectRecord ObjectRecord::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.get_u32() != kRecordMagic) throw io_error("ObjectRecord: bad magic");
  const u16 version = r.get_u16();
  if (version != 1 && version != 2)
    throw io_error("ObjectRecord: bad version");
  ObjectRecord rec;
  rec.meta = mgard::RefactoredObject::deserialize_metadata(r.get_bytes());
  const u32 nft = r.get_u32();
  if (u64{nft} * 4 > r.remaining()) throw io_error("ObjectRecord: bad ft count");
  rec.ft.resize(nft);
  for (auto& m : rec.ft) m = r.get_u32();
  const u32 nsz = r.get_u32();
  if (u64{nsz} * 8 > r.remaining())
    throw io_error("ObjectRecord: bad level count");
  rec.level_sizes.resize(nsz);
  for (auto& s : rec.level_sizes) s = r.get_u64();
  rec.matrix_kind =
      r.get_u8() == 0 ? ec::MatrixKind::kVandermonde : ec::MatrixKind::kCauchy;
  rec.placement = r.get_u8() == 0 ? storage::PlacementPolicy::kIdentity
                                  : storage::PlacementPolicy::kRotate;
  if (version >= 2) {
    // v1 records predate migrations: generation 0 and no drift baseline.
    rec.generation = r.get_u32();
    rec.planned_p = r.get_f64();
    rec.planned_error = r.get_f64();
  }
  return rec;
}

RapidsPipeline::RapidsPipeline(storage::Cluster& cluster, kv::KvStore& db,
                               PipelineConfig config, ThreadPool* pool)
    : cluster_(cluster),
      db_(db),
      config_(std::move(config)),
      pool_(pool),
      refactorer_(config_.refactor, pool),
      restore_cache_(config_.restore_cache_bytes) {}

ec::ReedSolomon RapidsPipeline::codec_for(const ObjectRecord& record,
                                          u32 level) const {
  const u32 n = cluster_.size();
  const u32 m = record.ft.at(level);
  return ec::ReedSolomon(n - m, m, record.matrix_kind);
}

PrepareReport RapidsPipeline::prepare(std::span<const f32> data,
                                      mgard::Dims dims, const std::string& name) {
  return do_prepare(data, dims, name);
}

std::vector<PrepareReport> RapidsPipeline::prepare_batch(
    std::span<const PrepareRequest> requests) {
  std::vector<PrepareReport> reports(requests.size());
  if (pool_ == nullptr || pool_->size() <= 1 || requests.size() <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i)
      reports[i] =
          do_prepare(requests[i].data, requests[i].dims, requests[i].name);
    return reports;
  }
  // One task per object: the pool's stealing overlaps object A's encode with
  // object B's refactor while object C distributes fragments under io_mu_.
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    group.run([this, &requests, &reports, i] {
      reports[i] =
          do_prepare(requests[i].data, requests[i].dims, requests[i].name);
    });
  }
  group.wait();
  return reports;
}

PrepareReport RapidsPipeline::do_prepare(std::span<const f32> data,
                                         mgard::Dims dims,
                                         const std::string& name) {
  if (config_.streaming) return do_prepare_streaming(data, dims, name);
  return do_prepare_staged(data, dims, name);
}

void RapidsPipeline::store_level_locked(const std::string& name, u32 level,
                                        const std::vector<ec::Fragment>& frags,
                                        u64 stripe_bytes, StoreStats& stats) {
  const u32 n = cluster_.size();
  std::vector<std::pair<std::string, std::string>> locations;
  locations.reserve(frags.size());
  for (u32 idx = 0; idx < frags.size(); ++idx) {
    const ec::Fragment& frag = frags[idx];
    const u32 preferred =
        storage::place_fragment(config_.placement, n, level, idx);

    const auto try_put = [&](u32 sys, u64 salt) {
      const auto r = retry_io(
          config_.retry, stable_hash(name, (u64{level} << 32) | idx, salt),
          [&] {
            cluster_.system(sys).put(frag);
            return true;
          });
      stats.put_retries += r.attempts > 0 ? r.attempts - 1 : 0;
      stats.backoff_seconds += r.backoff_seconds;
      record_health(sys, r.ok());
      return r.ok();
    };

    u32 target = preferred;
    bool stored = false;
    if (stripe_bytes > 0 && cluster_.system(preferred).available()) {
      // Streamed put: the fragment ships stripe by stripe, so a mid-stream
      // outage or injected fault surfaces before the tail stripes are paid
      // for. Nothing is visible on the system until the commit; any failure
      // degrades to the whole-fragment retry/relocate path below.
      try {
        auto stream = cluster_.system(preferred).begin_put(frag);
        const std::span<const u8> payload(frag.payload);
        for (u64 lo = 0; lo < payload.size(); lo += stripe_bytes)
          stream.append(payload.subspan(
              lo, std::min(stripe_bytes, payload.size() - lo)));
        stream.commit();
        stored = true;
        record_health(preferred, true);
      } catch (const io_error&) {
        ++stats.fallback_puts;
        record_health(preferred, false);
      }
    }
    if (!stored) stored = try_put(preferred, 0xA0);
    if (!stored) {
      // Persistent failure: re-place on the least-loaded available
      // system (deterministic order: health-allowed first, then fewest
      // fragments, then lowest id) and record the new home.
      ++stats.relocations;
      std::vector<std::tuple<u32, u64, u32>> candidates;  // (bad, load, id)
      for (u32 s = 0; s < n; ++s) {
        if (s == preferred || !cluster_.system(s).available()) continue;
        const u32 bad = config_.health_tracking && !health().allow(s) ? 1u : 0u;
        candidates.emplace_back(bad, cluster_.system(s).fragment_count(), s);
      }
      std::sort(candidates.begin(), candidates.end());
      for (const auto& [bad, load, s] : candidates) {
        if (try_put(s, 0xB0)) {
          target = s;
          stored = true;
          break;
        }
      }
    }
    if (!stored)
      throw io_error("prepare: no storage system accepted fragment " +
                     frag.id.key());
    locations.emplace_back(frag.id.key(), std::to_string(target));
    ++stats.fragments_stored;
    stats.transfers.push_back(net::Transfer{target, frag.payload.size()});
  }
  db_.put_batch(locations);
}

PrepareReport RapidsPipeline::do_prepare_staged(std::span<const f32> data,
                                                mgard::Dims dims,
                                                const std::string& name) {
  const u32 n = cluster_.size();
  PrepareReport report;
  Timer t;

  // 1-2) Read + refactor into the hierarchical representation.
  mgard::RefactorTimings rt;
  mgard::RefactoredObject obj = refactorer_.refactor(data, dims, name, &rt);
  report.refactor_seconds = t.seconds();
  report.transform_seconds = rt.transform_seconds;
  report.plane_encode_seconds = rt.plane_encode_seconds;
  report.plane_codec = rt.plane_codec;

  // 3) Optimize the fault-tolerance configuration (Algorithm 1).
  t.reset();
  FtProblem problem;
  problem.n = n;
  problem.p = cluster_.config().failure_prob;
  problem.original_size = obj.original_bytes();
  problem.overhead_budget = config_.overhead_budget;
  for (u32 j = 0; j < obj.levels.size(); ++j) {
    problem.level_sizes.push_back(obj.level_bytes(j));
    problem.level_errors.push_back(obj.rel_error_bound(j + 1));
  }
  const auto solution = ft_optimize_heuristic(problem);
  RAPIDS_REQUIRE_MSG(solution.has_value(),
                     "prepare: no FT configuration fits the overhead budget");
  report.optimize_seconds = t.seconds();

  // 4) Erasure-code every level with its own configuration. Levels are
  // independent, so each one's encode is forked as its own task — a second
  // axis of parallelism on top of the intra-encode parallel_for.
  t.reset();
  std::vector<std::vector<ec::Fragment>> per_level(obj.levels.size());
  const auto encode_level = [&](u32 j) {
    const u32 m = solution->m[j];
    const ec::ReedSolomon rs(n - m, m, config_.matrix_kind);
    per_level[j] = rs.encode(payload_u8(obj.levels[j].payload), name, j, pool_);
  };
  if (pool_ != nullptr && pool_->size() > 1 && obj.levels.size() > 1) {
    TaskGroup group(pool_);
    for (u32 j = 0; j < obj.levels.size(); ++j)
      group.run([&encode_level, j] { encode_level(j); });
    group.wait();
  } else {
    for (u32 j = 0; j < obj.levels.size(); ++j) encode_level(j);
  }
  report.encode_seconds = t.seconds();

  // Build and serialize the object record before taking the lock: only the
  // actual stores below need to be serialized against other batch objects.
  ObjectRecord record;
  record.meta = obj;
  record.ft = solution->m;
  for (u32 j = 0; j < obj.levels.size(); ++j)
    record.level_sizes.push_back(obj.level_bytes(j));
  record.matrix_kind = config_.matrix_kind;
  record.placement = config_.placement;
  record.planned_p = cluster_.config().failure_prob;
  record.planned_error = solution->expected_error;
  const Bytes record_bytes = record.serialize();

  // 5-6) Distribute one fragment of every level to every system and persist
  // the object record. Shared-state stage: cluster and metadata store are
  // not thread-safe, so it runs under io_mu_ (and never touches the pool
  // while holding it). Transient put failures are retried with deterministic
  // backoff; a system that keeps failing gets its fragment re-placed on the
  // least-loaded healthy system, and the metadata records where the fragment
  // actually landed. Fragment locations go to the store as one batch per
  // level instead of one put per fragment.
  t.reset();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    const auto prior = lookup(name);
    StoreStats stats;
    for (u32 j = 0; j < per_level.size(); ++j)
      store_level_locked(name, j, per_level[j], 0, stats);
    report.fragments_stored = stats.fragments_stored;
    report.put_retries = stats.put_retries;
    report.relocations = stats.relocations;
    report.backoff_seconds = stats.backoff_seconds;
    db_.put(object_key(name),
            std::string(reinterpret_cast<const char*>(record_bytes.data()),
                        record_bytes.size()));
    // Re-preparing a migrated object rewinds it to generation 0 (the puts
    // above overwrote the plain keys); its old generation's fragments are
    // garbage now.
    if (prior && prior->generation > 0)
      gc_generation_locked(name, prior->generation);
    persist_health();
  }
  report.store_seconds = t.seconds();

  // The object's payloads may have changed: cached levels from a previous
  // prepare of the same name are stale now.
  restore_cache_.invalidate(name);

  report.expected_error = solution->expected_error;
  report.storage_overhead = solution->storage_overhead;
  report.network_overhead = ft_network_overhead(
      n, solution->m, record.level_sizes, obj.original_bytes());
  report.distribution_latency = net::equal_share_latency(
      rfec_distribution_plan(record.level_sizes, solution->m, n),
      cluster_.bandwidths());
  // Staged distribution starts only after everything is refactored and
  // encoded, so the end-to-end latency pays the full compute wall first.
  report.prepare_latency = report.refactor_seconds + report.optimize_seconds +
                           report.encode_seconds + report.store_seconds +
                           report.distribution_latency;
  record.meta.levels = std::move(obj.levels);  // keep payloads in the report
  report.record = std::move(record);
  return report;
}

PrepareReport RapidsPipeline::do_prepare_streaming(std::span<const f32> data,
                                                   mgard::Dims dims,
                                                   const std::string& name) {
  const u32 n = cluster_.size();
  PrepareReport report;
  Timer total;

  const bool concurrent = pool_ != nullptr && pool_->size() > 1;
  const u64 stripe_bytes = std::max<u64>(config_.stream_stripe_bytes, 1);

  struct LevelWork {
    u32 level = 0;
    mgard::RetrievalLevel lvl;
  };
  struct EncodedLevel {
    mgard::RetrievalLevel lvl;
    std::vector<ec::Fragment> frags;
    f64 encode_seconds = 0.0;
  };

  // Aggregation state shared by the producer (the refactor thread, which
  // may help downstream when the channel backs up) and the pump task.
  // agg_mu guards all of it; io_mu_ is only ever taken with agg_mu released.
  std::mutex agg_mu;
  std::optional<FtSolution> solution;  // set by the plan sink before level 0
  std::vector<mgard::RetrievalLevel> stored_levels;
  std::map<u32, EncodedLevel> ready;  // encoded, waiting for store order
  u32 next_store = 0;
  bool storing = false;
  StoreStats stats;
  f64 optimize_seconds = 0.0;
  f64 encode_seconds = 0.0;
  f64 store_seconds = 0.0;
  f64 sim_finish = 0.0;  // max over levels: store-start wall + WAN latency
  u32 levels_streamed = 0;

  const auto on_plan = [&](const mgard::RefactoredObject& meta,
                           const std::vector<u64>& level_sizes) {
    // All level sizes are known from the retrieval plan before any payload
    // is serialized — the FT optimizer runs here, ahead of the stream.
    Timer ot;
    FtProblem problem;
    problem.n = n;
    problem.p = cluster_.config().failure_prob;
    problem.original_size = meta.original_bytes();
    problem.overhead_budget = config_.overhead_budget;
    for (u32 j = 0; j < level_sizes.size(); ++j) {
      problem.level_sizes.push_back(level_sizes[j]);
      problem.level_errors.push_back(meta.rel_error_bound(j + 1));
    }
    auto sol = ft_optimize_heuristic(problem);
    RAPIDS_REQUIRE_MSG(sol.has_value(),
                       "prepare: no FT configuration fits the overhead budget");
    std::lock_guard<std::mutex> al(agg_mu);
    solution = std::move(*sol);
    stored_levels.resize(level_sizes.size());
    optimize_seconds = ot.seconds();
  };

  const auto process_level = [&](LevelWork&& w) {
    // Stripe-granular RS encode: fixed-size stripes fan out on the pool, so
    // this level's parity overlaps the refactorer's next level (and, via the
    // conveyor below, the previous level's WAN puts).
    Timer et;
    const u32 m = solution->m[w.level];
    const ec::ReedSolomon rs(n - m, m, config_.matrix_kind);
    const std::span<const u8> payload = payload_u8(w.lvl.payload);
    std::vector<ec::Fragment> frags =
        rs.make_fragments(payload.size(), name, w.level);
    const u64 frag_size = frags.empty() ? 0 : frags[0].payload.size();
    if (concurrent && frag_size > stripe_bytes) {
      TaskGroup group(pool_);
      for (u64 lo = 0; lo < frag_size; lo += stripe_bytes) {
        const u64 hi = std::min(lo + stripe_bytes, frag_size);
        group.run([&rs, payload, lo, hi, &frags] {
          rs.encode_stripe(payload, lo, hi, frags);
        });
      }
      group.wait();
    } else {
      rs.encode_stripe(payload, 0, frag_size, frags);
    }
    rs.finish_fragments(frags, concurrent ? pool_ : nullptr);
    const f64 enc = et.seconds();

    // Conveyor: stores run strictly in level order (deterministic fault
    // draws and location batches, exactly like the staged path), one thread
    // at a time, while other levels keep encoding.
    std::unique_lock<std::mutex> al(agg_mu);
    ready.emplace(w.level,
                  EncodedLevel{std::move(w.lvl), std::move(frags), enc});
    if (storing) return;
    storing = true;
    for (;;) {
      const auto it = ready.find(next_store);
      if (it == ready.end()) break;
      const u32 level = it->first;
      EncodedLevel el = std::move(it->second);
      ready.erase(it);
      encode_seconds += el.encode_seconds;
      al.unlock();
      const f64 begin_wall = total.seconds();
      Timer st;
      StoreStats level_stats;
      {
        std::lock_guard<std::mutex> lock(io_mu_);
        store_level_locked(name, level, el.frags, stripe_bytes, level_stats);
      }
      const f64 store_wall = st.seconds();
      const f64 level_latency = net::equal_share_latency(
          level_stats.transfers, cluster_.bandwidths());
      al.lock();
      store_seconds += store_wall;
      sim_finish = std::max(sim_finish, begin_wall + level_latency);
      stats.fragments_stored += level_stats.fragments_stored;
      stats.put_retries += level_stats.put_retries;
      stats.relocations += level_stats.relocations;
      stats.fallback_puts += level_stats.fallback_puts;
      stats.backoff_seconds += level_stats.backoff_seconds;
      stored_levels[level] = std::move(el.lvl);
      ++levels_streamed;
      ++next_store;
    }
    storing = false;
  };

  // Bounded channel refactor -> encode/distribute. Every push forks one
  // short-lived drain task (pop one item, process it, exit) rather than a
  // resident consumer loop: TaskGroup::wait() helps by inlining arbitrary
  // queued tasks, so any task parked in this pool must terminate on its own
  // — a consumer that loops until close() can be inlined into another
  // prepare's join and deadlock the two streams against each other. Drain
  // tasks never block: a failed try_pop means the item was already taken by
  // the producer's self-pump (below) or an earlier task, and since each of
  // the P pushes forks a task and try_pop only fails on an empty queue,
  // all P items are processed before the group joins.
  std::optional<Channel<LevelWork>> channel;
  std::optional<TaskGroup> drains;
  if (concurrent) {
    channel.emplace(std::max<u32>(config_.stream_level_window, 1));
    drains.emplace(pool_);
  }

  mgard::RefactorTimings rt;
  mgard::RefactoredObject obj;
  std::exception_ptr err;
  try {
    obj = refactorer_.refactor_streaming(
        data, dims, name, on_plan,
        [&](u32 j, mgard::RetrievalLevel&& lvl) {
          LevelWork w{j, std::move(lvl)};
          if (!concurrent) {
            process_level(std::move(w));
            return;
          }
          // Self-pump backpressure: a full window turns into work, never a
          // blocked refactor thread.
          while (!channel->try_push(std::move(w))) {
            LevelWork other;
            if (channel->try_pop(other))
              process_level(std::move(other));
            else
              std::this_thread::yield();
          }
          drains->run([&] {
            LevelWork got;
            if (channel->try_pop(got)) process_level(std::move(got));
          });
        },
        &rt);
  } catch (...) {
    err = std::current_exception();
  }
  if (channel) channel->close();
  if (drains) {
    try {
      drains->wait();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
  RAPIDS_REQUIRE_MSG(next_store == stored_levels.size(),
                     "prepare: streaming dataflow lost a level");

  report.transform_seconds = rt.transform_seconds;
  report.plane_encode_seconds = rt.plane_encode_seconds;
  report.plane_codec = rt.plane_codec;
  report.refactor_seconds =
      rt.transform_seconds + rt.plane_encode_seconds + rt.assemble_seconds;
  report.optimize_seconds = optimize_seconds;
  report.encode_seconds = encode_seconds;
  report.store_seconds = store_seconds;
  report.levels_streamed = levels_streamed;
  report.fragments_stored = stats.fragments_stored;
  report.put_retries = stats.put_retries;
  report.relocations = stats.relocations;
  report.stream_fallback_puts = stats.fallback_puts;
  report.backoff_seconds = stats.backoff_seconds;

  // Reattach the streamed payloads so the record (and its serialized bytes)
  // match the staged path exactly.
  obj.levels = std::move(stored_levels);

  ObjectRecord record;
  record.meta = obj;
  record.ft = solution->m;
  for (u32 j = 0; j < obj.levels.size(); ++j)
    record.level_sizes.push_back(obj.level_bytes(j));
  record.matrix_kind = config_.matrix_kind;
  record.placement = config_.placement;
  record.planned_p = cluster_.config().failure_prob;
  record.planned_error = solution->expected_error;
  const Bytes record_bytes = record.serialize();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    const auto prior = lookup(name);
    db_.put(object_key(name),
            std::string(reinterpret_cast<const char*>(record_bytes.data()),
                        record_bytes.size()));
    // Re-preparing a migrated object rewinds it to generation 0; its old
    // generation's fragments are garbage now.
    if (prior && prior->generation > 0)
      gc_generation_locked(name, prior->generation);
    persist_health();
  }
  restore_cache_.invalidate(name);

  report.expected_error = solution->expected_error;
  report.storage_overhead = solution->storage_overhead;
  report.network_overhead = ft_network_overhead(
      n, solution->m, record.level_sizes, obj.original_bytes());
  report.distribution_latency = net::equal_share_latency(
      rfec_distribution_plan(record.level_sizes, solution->m, n),
      cluster_.bandwidths());
  // Each level's puts started while later levels still refactored, so the
  // end-to-end latency is the worst (store-start wall + that level's WAN
  // share), not compute-wall + whole-plan latency.
  report.prepare_latency = sim_finish + stats.backoff_seconds;
  record.meta.levels = std::move(obj.levels);  // keep payloads in the report
  report.record = std::move(record);
  return report;
}

std::optional<ObjectRecord> RapidsPipeline::lookup(const std::string& name) const {
  const auto raw = db_.get(object_key(name));
  if (!raw) return std::nullopt;
  return ObjectRecord::deserialize(
      {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
}

std::map<u32, u32> RapidsPipeline::fragment_locations(const std::string& name,
                                                      u32 level) const {
  std::map<u32, u32> out;
  const std::string prefix = "frag/" + name + "/" + std::to_string(level) + "/";
  for (const auto& [key, value] : db_.scan_prefix(prefix)) {
    const u32 index = static_cast<u32>(std::stoul(key.substr(prefix.size())));
    const u32 system = static_cast<u32>(std::stoul(value));
    // A system may host several fragments of one level after evacuations;
    // keep the first (any one is equally useful to a gather plan).
    out.emplace(system, index);
  }
  return out;
}

net::BandwidthTracker& RapidsPipeline::tracker() {
  if (!tracker_) {
    const auto raw = db_.get("net/bandwidth_tracker");
    if (raw && raw->size() > 0) {
      tracker_ = net::BandwidthTracker::deserialize(
          {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
      if (tracker_->size() != cluster_.size()) tracker_.reset();
    }
    if (!tracker_) tracker_ = net::BandwidthTracker(cluster_.bandwidths());
  }
  return *tracker_;
}

void RapidsPipeline::persist_tracker() {
  if (!tracker_) return;
  const Bytes wire = tracker_->serialize();
  db_.put("net/bandwidth_tracker",
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
}

storage::SystemHealth& RapidsPipeline::health() {
  if (!health_) {
    const auto raw = db_.get("net/system_health");
    if (raw && raw->size() > 0) {
      try {
        health_ = storage::SystemHealth::deserialize(
            {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
      } catch (const io_error&) {
        health_.reset();
      }
      if (health_ && health_->size() != cluster_.size()) health_.reset();
    }
    if (!health_)
      health_ = storage::SystemHealth(cluster_.size(), config_.health);
  }
  return *health_;
}

void RapidsPipeline::persist_health() {
  if (!health_ || !config_.health_tracking) return;
  const Bytes wire = health_->serialize();
  db_.put("net/system_health",
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
}

storage::SystemHealth& RapidsPipeline::system_health() {
  std::lock_guard<std::mutex> lock(io_mu_);
  return health();
}

void RapidsPipeline::record_health(u32 system, bool ok,
                                   f64 latency_multiplier) {
  if (!config_.health_tracking) return;
  if (ok)
    health().record_success(system, latency_multiplier);
  else
    health().record_failure(system);
}

std::vector<f64> RapidsPipeline::bandwidth_estimates() const {
  if (config_.adapt_bandwidth && tracker_) return tracker_->estimates();
  return cluster_.bandwidths();
}

GatherPlan RapidsPipeline::plan_gather(const GatherProblem& problem) const {
  switch (config_.strategy) {
    case GatherStrategy::kRandom: {
      Rng rng(config_.random_seed);
      return random_plan(problem, rng);
    }
    case GatherStrategy::kNaive:
      return naive_plan(problem);
    case GatherStrategy::kOptimized:
      return optimized_plan(problem, config_.aco);
  }
  throw invariant_error("restore: unknown gather strategy");
}

RapidsPipeline::FetchOutcome RapidsPipeline::fetch_with_retry(
    u32 system, const ec::FragmentId& id, f64 budget_s) {
  FetchOutcome out;
  Backoff backoff(config_.retry, stable_hash(id.key(), system, 0xFE7C4ull),
                  budget_s);
  u32 attempts = 0;
  for (;;) {
    ++attempts;
    bool transient = false;
    try {
      auto frag = cluster_.system(system).get(id.key());
      if (!frag) {
        out.missing = true;  // permanent: retrying cannot materialize it
      } else if (frag->verify()) {
        out.fragment = std::move(frag);
      } else {
        // In-flight corruption (or at-rest damage): a re-read may verify.
        transient = true;
      }
    } catch (const io_error&) {
      transient = true;  // outage / crash window / injected transient error
    }
    if (!transient) break;  // success or permanent miss: no retry
    backoff.record_failure();
    if (backoff.exhausted()) break;
  }
  out.attempts = attempts;
  out.backoff_seconds = backoff.total_backoff_s();
  return out;
}

RestoreReport RapidsPipeline::restore(const std::string& name) {
  return do_restore(name);
}

RestoreReport RapidsPipeline::restore(const std::string& name,
                                      const RestoreOptions& opts) {
  return do_restore(name, opts);
}

std::vector<RestoreReport> RapidsPipeline::restore_batch(
    std::span<const std::string> names) {
  std::vector<RestoreReport> reports(names.size());
  if (pool_ == nullptr || pool_->size() <= 1 || names.size() <= 1) {
    for (std::size_t i = 0; i < names.size(); ++i)
      reports[i] = do_restore(names[i]);
    return reports;
  }
  // One task per object: planning, decode, and reconstruction overlap across
  // objects; the fetch stage serializes internally on io_mu_.
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    group.run([this, &names, &reports, i] { reports[i] = do_restore(names[i]); });
  }
  group.wait();
  return reports;
}

void RapidsPipeline::snapshot_problem(const std::string& name,
                                      std::optional<ObjectRecord>& record,
                                      GatherProblem& problem) {
  const u32 n = cluster_.size();
  // Build the gathering problem from current availability; bandwidths come
  // from the learned tracker when adaptation is on (paper Section 4.3).
  // Metadata lookup + availability/bandwidth snapshot touch shared state.
  std::lock_guard<std::mutex> lock(io_mu_);
  record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "restore: unknown object " + name);
  problem.n = n;
  problem.m = record->ft;
  problem.level_sizes = record->level_sizes;
  problem.bandwidths =
      config_.adapt_bandwidth ? tracker().estimates() : cluster_.bandwidths();
  problem.available.resize(n);
  for (u32 i = 0; i < n; ++i)
    problem.available[i] = cluster_.system(i).available();
  // Route around circuit-open systems — but only when skipping them does
  // not shrink the recoverable prefix (degradation must stay availability-
  // driven, never health-heuristic-driven). allow() doubles as the
  // half-open transition, so cooled-down systems get their probe here.
  if (config_.health_tracking) {
    std::vector<bool> healthy = problem.available;
    bool any_excluded = false;
    for (u32 i = 0; i < n; ++i) {
      if (healthy[i] && !health().allow(i)) {
        healthy[i] = false;
        any_excluded = true;
      }
    }
    if (any_excluded) {
      GatherProblem alt = problem;
      alt.available = healthy;
      if (alt.recoverable_levels() == problem.recoverable_levels())
        problem.available = std::move(healthy);
    }
  }
}

bool RapidsPipeline::fetch_levels(const ObjectRecord& record,
                                  const std::string& name,
                                  GatherProblem& problem,
                                  const std::vector<u32>& levels,
                                  const solver::Selection* preplanned,
                                  RestoreReport& report,
                                  std::vector<Bytes>& payloads,
                                  const FetchSink& sink,
                                  const RestoreOptions& opts) {
  if (levels.empty()) return true;
  const u32 n = cluster_.size();
  // Fragment keys live under the record's current generation.
  const std::string sname = record.storage_name(name);
  Timer t;

  // Remaining deadline budget for the resilience extras of this call:
  // every retry backoff spends from it, and a hedge whose simulated launch
  // point lies past it is never issued — no I/O outlives the request.
  f64 budget_s = opts.sim_budget_s;
  const auto spend_budget = [&budget_s](f64 backoff_seconds) {
    if (std::isfinite(budget_s)) budget_s -= backoff_seconds;
  };

  // A landed level is decoded, announced through the sink, and never
  // refetched: replanning around a failed system only covers the levels
  // still in flight, so streamed consumers keep every level that arrived.
  std::vector<bool> landed(levels.size(), false);
  f64 max_effective = 0.0;  // slowest landed transfer across all attempts

  // Plan + fetch, replanning (bounded) when a planned fragment stays missing
  // or damaged after retry and hedging: the offending system is treated as
  // unavailable and the remaining tolerance absorbs it, exactly like one
  // more concurrent outage.
  for (u32 attempt = 0; attempt <= n; ++attempt) {
    std::vector<u32> rem;  // indices into `levels` still to fetch
    for (u32 i = 0; i < levels.size(); ++i)
      if (!landed[i]) rem.push_back(i);
    if (rem.empty()) break;

    // Every remaining level must still be recoverable; when one is not, the
    // caller decides how to degrade (shrink the prefix, keep the session's
    // current state, ...) — levels that already landed stay delivered.
    u32 failed = 0;
    for (const bool a : problem.available) failed += a ? 0 : 1;
    for (const u32 i : rem)
      if (failed > problem.m[levels[i]]) return false;

    // Gathering sub-problem over exactly the remaining levels. Level order
    // is preserved, so the m_j stay strictly decreasing and the FT config
    // remains valid.
    const u32 nsub = static_cast<u32>(rem.size());
    GatherProblem sub;
    sub.n = problem.n;
    sub.bandwidths = problem.bandwidths;
    sub.available = problem.available;
    for (const u32 i : rem) {
      sub.m.push_back(problem.m[levels[i]]);
      sub.level_sizes.push_back(problem.level_sizes[levels[i]]);
    }

    // Look up where the remaining levels' fragments actually live, and
    // exclude systems that hold none of them (their fragments were migrated
    // or repaired away) before planning — instead of planning a fetch there
    // and discovering the miss afterwards, one replan round per restore.
    // Only safe while the deepest remaining level tolerates the exclusions;
    // otherwise keep the old plan-then-replan path.
    std::vector<std::map<u32, u32>> locations(nsub);
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (u32 j = 0; j < nsub; ++j)
        locations[j] = fragment_locations(sname, levels[rem[j]]);
    }
    {
      std::vector<bool> holds(sub.n, false);
      for (u32 j = 0; j < nsub; ++j)
        for (const auto& [sys, idx] : locations[j])
          if (sys < sub.n) holds[sys] = true;
      auto trial = sub.available;
      u32 failed_after = 0;
      for (u32 s = 0; s < sub.n; ++s) {
        if (!holds[s]) trial[s] = false;
        failed_after += trial[s] ? 0 : 1;
      }
      if (failed_after <= sub.m.back()) sub.available = std::move(trial);
    }

    // Reuse the caller's rows when they are still placeable (first attempt
    // only: an internal replan means availability moved under the plan).
    GatherPlan plan;
    bool planned = false;
    if (preplanned != nullptr && attempt == 0 && preplanned->size() == nsub) {
      bool usable = true;
      for (u32 i = 0; i < nsub && usable; ++i) {
        usable = (*preplanned)[i].size() == sub.n - sub.m[i];
        for (const u32 sys : (*preplanned)[i])
          usable = usable && sys < sub.n && sub.available[sys];
      }
      if (usable) {
        plan = evaluate_plan(sub, *preplanned);  // score only, no optimizer
        planned = true;
      }
    }
    if (!planned) plan = plan_gather(sub);  // pure: runs outside the lock
    report.planning_seconds += plan.planning_seconds;

    // Resolve the plan into (level, system, index, bytes) fetches and start
    // the simulated transfer clock: equal-share contention over the whole
    // plan, scaled by per-transfer straggler draws — all sampled up front,
    // in plan order, exactly as the staged gather did. A metadata miss (no
    // fragment recorded on a planned system) forces an immediate replan
    // without charging the system's health.
    struct PlannedFetch {
      u32 level = 0;  ///< index into `rem`/`sub`, not the real level
      u32 system = 0;
      u32 index = 0;
      u64 bytes = 0;
    };
    t.reset();
    std::optional<u32> bad_system;
    std::vector<PlannedFetch> fetches;
    std::vector<f64> mults;
    std::vector<f64> times;
    f64 hedge_launch = 0.0;
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (u32 j = 0; j < nsub && !bad_system; ++j) {
        for (u32 sys : plan.systems_per_level[j]) {
          const auto loc = locations[j].find(sys);
          if (loc == locations[j].end()) {
            log::warn("pipeline", "no level-", levels[rem[j]],
                      " fragment recorded on system ", sys, "; replanning");
            bad_system = sys;
            break;
          }
          fetches.push_back({j, sys, loc->second, sub.fragment_bytes(j + 1)});
        }
      }
      if (!bad_system) {
        std::vector<net::Transfer> transfers;
        transfers.reserve(fetches.size());
        mults.reserve(fetches.size());
        for (const auto& f : fetches) {
          transfers.push_back(net::Transfer{f.system, f.bytes});
          mults.push_back(
              cluster_.system(f.system).sample_transfer_multiplier());
        }
        times = net::equal_share_times_scaled(transfers, problem.bandwidths,
                                              mults);
        hedge_launch = config_.hedge_threshold * median_of(times);
      }
    }
    report.fetch_seconds += t.seconds();

    // Per level, the systems already serving a fragment (planned or hedge),
    // so hedges never duplicate a fragment index.
    std::vector<std::set<u32>> used(nsub);
    for (const auto& f : fetches) used[f.level].insert(f.system);

    // Fetch and decode level by level, ascending: as soon as a level's
    // quorum lands it is decoded and announced, while deeper levels are
    // still in flight — the decode-as-stripes-land half of the streaming
    // dataflow. io_mu_ is held per level, not across the whole gather.
    for (u32 j = 0; j < nsub && !bad_system; ++j) {
      const u32 real = levels[rem[j]];
      std::vector<ec::Fragment> frags;
      f64 level_effective = 0.0;
      u64 landed_bytes = 0;
      t.reset();
      {
        std::lock_guard<std::mutex> lock(io_mu_);
        for (std::size_t i = 0; i < fetches.size() && !bad_system; ++i) {
          const auto& f = fetches[i];
          if (f.level != j) continue;
          auto primary =
              fetch_with_retry(f.system, {sname, real, f.index}, budget_s);
          report.fetch_retries += primary.attempts - 1;
          report.backoff_seconds += primary.backoff_seconds;
          spend_budget(primary.backoff_seconds);
          const bool ok = primary.fragment.has_value();
          if (ok) landed_bytes += primary.fragment->payload.size();
          if (!primary.missing) record_health(f.system, ok, mults[i]);

          f64 effective = times[i];
          std::optional<ec::Fragment> winner = std::move(primary.fragment);

          const bool straggling =
              times[i] > hedge_launch ||
              (config_.retry.op_timeout_s > 0.0 &&
               times[i] > config_.retry.op_timeout_s);
          if (config_.hedged_reads && (straggling || !ok) &&
              hedge_launch <= budget_s) {
            // Hedge: duplicate the read against the fastest unplanned holder
            // of a *sibling* fragment of the same level (any k distinct
            // fragments decode). The hedge launches at hedge_launch on the
            // simulated clock and runs at an exclusive share.
            std::optional<u32> spare;
            for (const auto& [sys2, idx2] : locations[f.level]) {
              if (used[f.level].contains(sys2)) continue;
              if (!cluster_.system(sys2).available()) continue;
              if (config_.health_tracking && !health().allow(sys2)) continue;
              if (!spare ||
                  problem.bandwidths[sys2] > problem.bandwidths[*spare])
                spare = sys2;
            }
            if (spare) {
              ++report.hedged_fetches;
              used[f.level].insert(*spare);
              const u32 spare_index = locations[f.level][*spare];
              auto hedge = fetch_with_retry(*spare, {sname, real, spare_index},
                                            budget_s);
              report.fetch_retries += hedge.attempts - 1;
              report.backoff_seconds += hedge.backoff_seconds;
              spend_budget(hedge.backoff_seconds);
              if (hedge.fragment)
                landed_bytes += hedge.fragment->payload.size();
              if (!hedge.missing)
                record_health(*spare, hedge.fragment.has_value());
              if (hedge.fragment) {
                const f64 spare_mult =
                    cluster_.system(*spare).sample_transfer_multiplier();
                const f64 hedge_time =
                    hedge_launch + static_cast<f64>(f.bytes) /
                                       problem.bandwidths[*spare] * spare_mult;
                if (!ok || hedge_time < effective) {
                  winner = std::move(hedge.fragment);
                  effective = ok ? std::min(effective, hedge_time) : hedge_time;
                  ++report.hedge_wins;
                }
              }
            }
          }

          if (!winner) {
            log::warn("pipeline", "fragment ", sname, "/", real, "/", f.index,
                      " missing or damaged on system ", f.system,
                      "; replanning");
            bad_system = f.system;
            break;
          }
          frags.push_back(std::move(*winner));
          level_effective = std::max(level_effective, effective);
        }
        persist_health();
      }
      report.fetch_seconds += t.seconds();
      report.bytes_transferred += landed_bytes;
      if (bad_system) break;

      // Decode this level outside the lock and hand it downstream while the
      // next level's fragments are still unfetched.
      t.reset();
      const ec::ReedSolomon rs = codec_for(record, real);
      const std::vector<u8> level = rs.decode(frags, pool_);
      const auto* p = reinterpret_cast<const std::byte*>(level.data());
      payloads[real] = Bytes(p, p + level.size());
      report.decode_seconds += t.seconds();
      landed[rem[j]] = true;
      max_effective = std::max(max_effective, level_effective);
      if (sink) sink(real, payloads[real],
                     level_effective + report.backoff_seconds);
    }

    if (!bad_system) {
      report.gather_latency = max_effective + report.backoff_seconds;
      report.plan = std::move(plan);

      // Fold the observed (simulated-WAN) per-transfer throughput back into
      // the tracker so later plans adapt to bandwidth changes.
      if (config_.adapt_bandwidth) {
        const auto transfers = plan_transfers(sub, report.plan.systems_per_level);
        std::vector<u32> load(n, 0);
        for (const auto& tr : transfers) load[tr.system] += 1;
        std::lock_guard<std::mutex> lock(io_mu_);
        const auto obs_times =
            net::equal_share_times(transfers, cluster_.bandwidths());
        for (std::size_t i = 0; i < transfers.size(); ++i) {
          // Undo the contention share so the observation estimates the
          // nominal endpoint bandwidth, not this plan's slice of it.
          const f64 exclusive_seconds =
              obs_times[i] / static_cast<f64>(load[transfers[i].system]);
          if (exclusive_seconds > 0.0)
            tracker().observe(transfers[i].system, transfers[i].bytes,
                              exclusive_seconds);
        }
        persist_tracker();
      }
      return true;
    }
    problem.available[*bad_system] = false;
    ++report.replans;
  }
  // Replanning exhausted every system without converging; the caller holds
  // the availability the loop degraded to and decides what is still possible.
  log::warn("pipeline", "restore: replanning did not converge for ", name);
  return false;
}

RestoreReport RapidsPipeline::do_restore(const std::string& name,
                                         const RestoreOptions& opts) {
  RestoreReport report;
  Timer total;

  std::optional<ObjectRecord> record;
  GatherProblem problem;
  snapshot_problem(name, record, problem);
  const u32 nlevels = static_cast<u32>(record->ft.size());

  // Consult the restore cache before planning: cached levels skip the WAN
  // fetch and erasure decode entirely; a CRC mismatch evicts the entry and
  // falls through to a normal fetch.
  const u32 generation = record->generation;
  std::vector<Bytes> payloads(nlevels);
  std::vector<bool> have(nlevels, false);        // cached or streamed in
  std::vector<bool> from_cache(nlevels, false);  // skip the cache store-back
  for (u32 j = 0; j < nlevels; ++j) {
    Bytes hit;
    switch (restore_cache_.get(name, generation, j, hit)) {
      case storage::RestoreCache::Outcome::kHit:
        payloads[j] = std::move(hit);
        have[j] = true;
        from_cache[j] = true;
        ++report.cache_hits;
        break;
      case storage::RestoreCache::Outcome::kCorrupt:
        ++report.cache_corrupt;
        [[fallthrough]];
      case storage::RestoreCache::Outcome::kMiss:
        ++report.cache_misses;
        break;
    }
  }

  // Streaming restore state: retrieval levels merge into the plane sets the
  // moment they (or their cached copies) complete the contiguous prefix, and
  // the first level triggers an immediate coarse reconstruction — the
  // time-to-first-byte the staged full gather forfeits. All merging runs on
  // this thread; reconstruct_incremental keeps the final field bit-identical
  // to a staged reconstruct of the same prefix.
  const bool streaming = config_.streaming;
  std::vector<mgard::PlaneSet> sets;
  std::vector<mgard::ProgressiveState> pstates;
  u32 merged = 0;         // contiguous levels merged into `sets`
  u32 reconstructed = 0;  // value of `merged` at the last recompose
  bool first_done = false;
  if (streaming) {
    sets.resize(record->meta.dlevels.size());
    for (std::size_t d = 0; d < sets.size(); ++d) {
      sets[d].count = record->meta.dlevels[d].count;
      sets[d].max_abs = record->meta.dlevels[d].max_abs;
      sets[d].exponent = record->meta.dlevels[d].exponent;
    }
  }
  const auto merge_ready = [&](u32 limit) {
    while (merged < limit && have[merged]) {
      const std::span<const Bytes> one(payloads.data() + merged, 1);
      mgard::append_plane_sets(sets, one);
      ++merged;
    }
  };
  const auto recompose_now = [&] {
    Timer rt;
    report.data = refactorer_.reconstruct_incremental(record->meta, sets,
                                                      pstates,
                                                      &report.plane_codec);
    report.reconstruct_seconds += rt.seconds();
    reconstructed = merged;
  };
  const auto first_byte = [&](f64 latency) {
    if (!first_done && merged >= 1) {
      first_done = true;
      report.first_level_latency = latency;
      recompose_now();
      report.first_byte_seconds = total.seconds();
    }
  };

  u32 levels_used = 0;
  for (;;) {
    // Cached (or already-landed) levels need no fragments, so the usable
    // prefix extends through them even under outages that would make a
    // fetch impossible.
    levels_used = recoverable_prefix(problem, have);
    if (levels_used == 0) {
      // Per the RestoreReport contract this is the degraded outcome, not a
      // crash: the caller gets empty data and the honest e_0 = 1 penalty.
      log::warn("pipeline", "object ", name,
                " unrecoverable: too many outages");
      report.rel_error_bound = 1.0;  // the paper's e_0 penalty
      report.data.clear();
      return report;
    }
    if (streaming) {
      merge_ready(levels_used);
      first_byte(0.0);  // level 1 from cache: no WAN wait at all
    }
    std::vector<u32> uncached;
    for (u32 j = 0; j < levels_used; ++j)
      if (!have[j]) uncached.push_back(j);
    if (uncached.empty()) break;
    const u32 limit = levels_used;
    FetchSink sink;
    if (streaming) {
      sink = [&, limit](u32 level, const Bytes& payload, f64 latency) {
        have[level] = true;
        ++report.levels_streamed;
        restore_cache_.put(name, generation, level, payload);
        merge_ready(limit);
        first_byte(latency);
      };
    }
    if (fetch_levels(*record, name, problem, uncached, nullptr, report,
                     payloads, sink, opts))
      break;
    // fetch_levels marked at least one more system unavailable (landed
    // levels stay landed), so the recoverable prefix strictly shrinks
    // beyond them and this loop terminates.
  }
  report.levels_used = levels_used;
  report.rel_error_bound = record->meta.rel_error_bound(levels_used);

  const std::span<const Bytes> prefix(payloads.data(), levels_used);
  report.planes_decoded = mgard::count_magnitude_segments(prefix);

  if (streaming) {
    merge_ready(levels_used);
    if (reconstructed < merged) recompose_now();
    return report;
  }

  // Staged path: fetched levels feed the cache, one reconstruct at the end.
  for (u32 j = 0; j < levels_used; ++j)
    if (!from_cache[j]) restore_cache_.put(name, generation, j, payloads[j]);
  Timer t;
  report.data =
      refactorer_.reconstruct(record->meta, prefix, &report.plane_codec);
  report.reconstruct_seconds = t.seconds();
  report.first_level_latency = report.gather_latency;
  report.first_byte_seconds = total.seconds();
  return report;
}

std::shared_ptr<RefineSession> RapidsPipeline::begin_refine(
    const std::string& name) {
  return std::make_shared<RefineSession>(name);
}

RestoreReport RapidsPipeline::refine(const std::string& name, f64 rel_bound) {
  return refine(name, rel_bound, RestoreOptions{});
}

RestoreReport RapidsPipeline::refine(const std::string& name, f64 rel_bound,
                                     const RestoreOptions& opts) {
  std::shared_ptr<RefineSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end())
      it = sessions_.emplace(name, std::make_shared<RefineSession>(name)).first;
    session = it->second;
  }
  return refine(*session, rel_bound, opts);
}

void RapidsPipeline::end_refine(const std::string& name) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(name);
}

RestoreReport RapidsPipeline::refine(RefineSession& session, f64 rel_bound) {
  return refine(session, rel_bound, RestoreOptions{});
}

RestoreReport RapidsPipeline::refine(RefineSession& session, f64 rel_bound,
                                     const RestoreOptions& opts) {
  std::lock_guard<std::mutex> session_lock(session.mu_);
  RestoreReport report;

  std::optional<ObjectRecord> record;
  GatherProblem problem;
  snapshot_problem(session.name_, record, problem);
  const u32 nlevels = static_cast<u32>(record->ft.size());

  // Resolve the requested bound to a target prefix: the fewest retrieval
  // levels whose guaranteed e_j meets it, or all of them when even the full
  // representation cannot.
  u32 target = nlevels;
  for (u32 j = 1; j <= nlevels; ++j) {
    if (record->meta.rel_error_bound(j) <= rel_bound) {
      target = j;
      break;
    }
  }

  const auto current_state = [&](u32 used) {
    report.levels_used = used;
    report.rel_error_bound =
        used == 0 ? 1.0 : record->meta.rel_error_bound(used);
    report.data = session.data_;
    return report;
  };

  // Already refined at least this far: nothing to transfer or decode.
  if (target <= session.cursor_) return current_state(session.cursor_);

  // Consult the shared cache for the levels this rung needs. Levels below
  // the cursor are already materialized in the session's plane sets.
  const u32 generation = record->generation;
  std::vector<Bytes> payloads(nlevels);
  std::vector<bool> cached(nlevels, false);
  for (u32 j = 0; j < session.cursor_; ++j) cached[j] = true;
  for (u32 j = session.cursor_; j < target; ++j) {
    Bytes hit;
    switch (restore_cache_.get(session.name_, generation, j, hit)) {
      case storage::RestoreCache::Outcome::kHit:
        payloads[j] = std::move(hit);
        cached[j] = true;
        ++report.cache_hits;
        break;
      case storage::RestoreCache::Outcome::kCorrupt:
        ++report.cache_corrupt;
        [[fallthrough]];
      case storage::RestoreCache::Outcome::kMiss:
        ++report.cache_misses;
        break;
    }
  }

  // Levels land one at a time through the fetch sink: each is cached and
  // marked the moment it decodes, so a replan after a partial fetch only
  // re-plans the levels still missing and the first delivery's simulated
  // latency becomes the rung's time-to-first-level.
  bool first_landed = false;
  const FetchSink sink = [&](u32 level, const Bytes& payload, f64 latency) {
    cached[level] = true;
    ++report.levels_streamed;
    restore_cache_.put(session.name_, generation, level, payload);
    if (!first_landed) {
      first_landed = true;
      report.first_level_latency = latency;
    }
  };

  u32 usable = 0;
  for (;;) {
    usable = std::min(target, recoverable_prefix(problem, cached));
    if (usable <= session.cursor_) {
      // Outages block any improvement. Hold the session's current state —
      // degraded but monotone — rather than going backwards or throwing.
      log::warn("pipeline", "refine: object ", session.name_,
                " cannot improve past ", session.cursor_,
                " levels under current outages");
      return current_state(session.cursor_);
    }
    std::vector<u32> uncached;
    for (u32 j = session.cursor_; j < usable; ++j)
      if (!cached[j]) uncached.push_back(j);
    if (uncached.empty()) break;

    // Reuse the session's ladder plan when it covers these levels and
    // neither availability nor the learned bandwidths drifted materially
    // since it was computed; otherwise plan the whole remaining ladder once
    // so later rungs can slice rows out of it without re-running the
    // optimizer.
    solver::Selection pre;
    bool have_pre = false;
    if (!session.planned_rows_.empty() &&
        session.plan_available_ == problem.available &&
        session.plan_bandwidths_.size() == problem.bandwidths.size()) {
      f64 max_delta = 0.0;
      for (std::size_t i = 0; i < problem.bandwidths.size(); ++i) {
        const f64 ref = std::max(std::fabs(session.plan_bandwidths_[i]), 1e-12);
        max_delta = std::max(
            max_delta,
            std::fabs(problem.bandwidths[i] - session.plan_bandwidths_[i]) / ref);
      }
      if (max_delta <= config_.plan_reuse_bw_tolerance) {
        have_pre = true;
        for (const u32 j : uncached) {
          const auto it = session.planned_rows_.find(j);
          if (it == session.planned_rows_.end()) {
            have_pre = false;
            break;
          }
          pre.push_back(it->second);
        }
        if (!have_pre) pre.clear();
      }
    }
    if (!have_pre) {
      session.clear_plan();
      const u32 reach = recoverable_prefix(problem, cached);
      std::vector<u32> ladder;
      for (u32 j = session.cursor_; j < reach; ++j)
        if (!cached[j]) ladder.push_back(j);
      GatherProblem sub;
      sub.n = problem.n;
      sub.bandwidths = problem.bandwidths;
      sub.available = problem.available;
      for (const u32 j : ladder) {
        sub.m.push_back(problem.m[j]);
        sub.level_sizes.push_back(problem.level_sizes[j]);
      }
      GatherPlan ladder_plan = plan_gather(sub);
      report.planning_seconds += ladder_plan.planning_seconds;
      for (std::size_t i = 0; i < ladder.size(); ++i)
        session.planned_rows_[ladder[i]] =
            std::move(ladder_plan.systems_per_level[i]);
      session.plan_bandwidths_ = problem.bandwidths;
      session.plan_available_ = problem.available;
      for (const u32 j : uncached) pre.push_back(session.planned_rows_[j]);
    }
    report.plan_reused = have_pre;

    const u32 replans_before = report.replans;
    if (fetch_levels(*record, session.name_, problem, uncached, &pre, report,
                     payloads, sink, opts)) {
      if (report.replans != replans_before) {
        // Availability moved mid-fetch; the remaining ladder rows are stale.
        session.clear_plan();
      } else {
        for (const u32 j : uncached) session.planned_rows_.erase(j);
      }
      break;
    }
    session.clear_plan();  // prefix shrank; recompute next iteration
  }

  // Grow the session's plane sets with the new levels only and decode just
  // the bitplanes those levels added; everything below the cursor keeps its
  // already-decoded quantized state.
  if (session.plane_sets_.empty()) {
    session.plane_sets_.resize(record->meta.dlevels.size());
    for (std::size_t d = 0; d < session.plane_sets_.size(); ++d) {
      session.plane_sets_[d].count = record->meta.dlevels[d].count;
      session.plane_sets_[d].max_abs = record->meta.dlevels[d].max_abs;
      session.plane_sets_[d].exponent = record->meta.dlevels[d].exponent;
    }
  }
  const std::span<const Bytes> fresh(payloads.data() + session.cursor_,
                                     usable - session.cursor_);
  report.planes_decoded = mgard::count_magnitude_segments(fresh);
  mgard::append_plane_sets(session.plane_sets_, fresh);

  Timer t;
  session.data_ = refactorer_.reconstruct_incremental(
      record->meta, session.plane_sets_, session.pstates_,
      &report.plane_codec);
  report.reconstruct_seconds = t.seconds();

  session.cursor_ = usable;
  session.bound_ = record->meta.rel_error_bound(usable);
  return current_state(usable);
}

void RapidsPipeline::repair_fragment(const std::string& name, u32 level,
                                     u32 index, u32 target_system) {
  std::lock_guard<std::mutex> lock(io_mu_);
  repair_fragment_locked(name, level, index, target_system);
}

void RapidsPipeline::repair_fragment_locked(const std::string& name, u32 level,
                                            u32 index, u32 target_system) {
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "repair: unknown object " + name);
  const std::string sname = record->storage_name(name);
  const ec::ReedSolomon rs = codec_for(*record, level);

  std::vector<ec::Fragment> survivors;
  for (const auto& [sys, idx] : fragment_locations(sname, level)) {
    if (survivors.size() >= rs.k()) break;
    if (!cluster_.system(sys).available()) continue;
    if (idx == index) continue;  // the lost one
    auto out = fetch_with_retry(sys, {sname, level, idx});
    if (!out.missing) record_health(sys, out.fragment.has_value());
    if (out.fragment) survivors.push_back(std::move(*out.fragment));
  }
  RAPIDS_REQUIRE_MSG(survivors.size() >= rs.k(),
                     "repair: not enough surviving fragments");
  // Pool-free while io_mu_ is held: a helping waiter could steal a task
  // that needs this very lock.
  ec::Fragment rebuilt = rs.reconstruct_fragment(survivors, index, nullptr);
  const auto put = retry_io(
      config_.retry, stable_hash(rebuilt.id.key(), target_system, 0x9E9Aull),
      [&] {
        cluster_.system(target_system).put(rebuilt);
        return true;
      });
  record_health(target_system, put.ok());
  if (!put.ok())
    throw io_error("repair: target system rejected rebuilt fragment " +
                   rebuilt.id.key() + ": " + put.last_error);
  const std::pair<std::string, std::string> location{
      rebuilt.id.key(), std::to_string(target_system)};
  db_.put_batch({&location, 1});
}

std::vector<std::string> RapidsPipeline::list_objects() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : db_.scan_prefix("obj/"))
    out.push_back(key.substr(4));
  return out;
}

RapidsPipeline::ScrubReport RapidsPipeline::scrub(const std::string& name,
                                                  bool repair) {
  std::optional<ObjectRecord> record;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    record = lookup(name);
  }
  RAPIDS_REQUIRE_MSG(record.has_value(), "scrub: unknown object " + name);
  const std::string sname = record->storage_name(name);
  ScrubReport report;
  for (u32 level = 0; level < record->ft.size(); ++level) {
    std::map<u32, u32> locations;
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      locations = fragment_locations(sname, level);
    }
    for (const auto& [sys, idx] : locations) {
      // Fine-grained locking: one fragment's check+repair per critical
      // section, so concurrent batch traffic interleaves with a long scrub.
      std::lock_guard<std::mutex> lock(io_mu_);
      if (!cluster_.system(sys).available()) continue;  // outage, not damage
      ++report.fragments_checked;
      auto out = fetch_with_retry(sys, {sname, level, idx});
      if (!out.missing) record_health(sys, out.fragment.has_value());
      if (out.fragment) continue;
      report.damaged.emplace_back(level, idx, sys);
      log::warn("pipeline", "scrub: fragment ", sname, "/", level, "/", idx,
                " on system ", sys,
                out.missing ? " is missing" : " is damaged or unreadable");
      if (repair) {
        repair_fragment_locked(name, level, idx, sys);
        ++report.repaired;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    persist_health();
  }
  return report;
}

u64 RapidsPipeline::age_object(const std::string& name, u32 keep_levels) {
  std::lock_guard<std::mutex> lock(io_mu_);
  auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "age: unknown object " + name);
  const u32 current = static_cast<u32>(record->ft.size());
  RAPIDS_REQUIRE_MSG(keep_levels >= 1 && keep_levels < current,
                     "age: keep_levels must be in [1, levels)");

  // Drop the deep levels' fragments everywhere and forget their locations.
  const std::string sname = record->storage_name(name);
  u64 reclaimed = 0;
  for (u32 level = keep_levels; level < current; ++level) {
    for (const auto& [sys, idx] : fragment_locations(sname, level)) {
      const std::string key = ec::FragmentId{sname, level, idx}.key();
      auto& host = cluster_.system(sys);
      if (host.has(key)) {
        // Logical payload size: level bytes spread over k fragments.
        reclaimed += ceil_div(record->level_sizes[level],
                              cluster_.size() - record->ft[level]);
        host.erase(key);
      }
      db_.del(key);
    }
  }

  // Truncate the record so future restores plan only the kept levels.
  record->ft.resize(keep_levels);
  record->level_sizes.resize(keep_levels);
  record->meta.levels.resize(keep_levels);
  const Bytes wire = record->serialize();
  db_.put(object_key(name),
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
  // Cached payloads of the dropped levels must never serve again.
  restore_cache_.invalidate_from(name, keep_levels);
  log::info("pipeline", "aged ", name, " to ", keep_levels,
            " levels, reclaimed ", reclaimed, " bytes");
  return reclaimed;
}

u32 RapidsPipeline::evacuate_system(const std::string& name, u32 system) {
  std::lock_guard<std::mutex> lock(io_mu_);
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "evacuate: unknown object " + name);
  const u32 n = cluster_.size();
  RAPIDS_REQUIRE(system < n);

  const std::string sname = record->storage_name(name);
  u32 moved = 0;
  std::vector<std::pair<std::string, std::string>> new_locations;
  for (u32 level = 0; level < record->ft.size(); ++level) {
    const auto locations = fragment_locations(sname, level);
    const auto loc = locations.find(system);
    if (loc == locations.end()) continue;  // nothing of this level here
    const u32 idx = loc->second;
    const std::string key = ec::FragmentId{sname, level, idx}.key();
    if (!cluster_.system(system).has(key)) continue;  // already elsewhere

    // Destination: the system (other than the source) currently holding the
    // fewest fragments — keeps load roughly even as systems retire.
    u32 target = system == 0 ? 1 : 0;
    for (u32 s = 0; s < n; ++s) {
      if (s == system || !cluster_.system(s).available()) continue;
      if (cluster_.system(s).fragment_count() <
          cluster_.system(target).fragment_count())
        target = s;
    }
    RAPIDS_REQUIRE_MSG(target != system && cluster_.system(target).available(),
                       "evacuate: no destination system available");

    // Prefer a direct move (with retry around both sides); fall back to
    // rebuilding from survivors if the source copy is unreadable.
    std::optional<ec::Fragment> frag;
    if (cluster_.system(system).available()) {
      auto out = fetch_with_retry(system, {sname, level, idx});
      frag = std::move(out.fragment);
    }
    bool moved_direct = false;
    if (frag) {
      const auto put = retry_io(
          config_.retry, stable_hash(key, target, 0xE7A0ull), [&] {
            cluster_.system(target).put(*frag);
            return true;
          });
      record_health(target, put.ok());
      moved_direct = put.ok();
    }
    if (!moved_direct) repair_fragment_locked(name, level, idx, target);
    cluster_.system(system).erase(key);
    new_locations.emplace_back(key, std::to_string(target));
    ++moved;
  }
  // One metadata batch for the whole evacuation. (The repair fallback above
  // already wrote the same key -> target, so the batch only confirms it.)
  db_.put_batch(new_locations);
  persist_health();
  return moved;
}

f64 RapidsPipeline::nominal_failure_prob() const {
  return cluster_.config().failure_prob;
}

std::optional<ObjectRecord> RapidsPipeline::snapshot_record(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(io_mu_);
  return lookup(name);
}

std::vector<std::string> RapidsPipeline::snapshot_object_names() {
  std::lock_guard<std::mutex> lock(io_mu_);
  return list_objects();
}

std::vector<f64> RapidsPipeline::snapshot_bandwidths() {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (config_.adapt_bandwidth) return tracker().estimates();
  return cluster_.bandwidths();
}

std::vector<f64> RapidsPipeline::failure_prob_estimates(f64 prior_strength) {
  std::lock_guard<std::mutex> lock(io_mu_);
  const u32 n = cluster_.size();
  const f64 prior_p = cluster_.config().failure_prob;
  std::vector<f64> out(n, prior_p);
  for (u32 i = 0; i < n; ++i) {
    if (!cluster_.system(i).available()) {
      out[i] = 1.0;  // hard down right now, not a statistical estimate
    } else if (config_.health_tracking) {
      out[i] = health().estimated_failure_prob(i, prior_p, prior_strength);
    }
  }
  return out;
}

std::vector<storage::CircuitState> RapidsPipeline::breaker_states() {
  std::lock_guard<std::mutex> lock(io_mu_);
  const u32 n = cluster_.size();
  std::vector<storage::CircuitState> out(n, storage::CircuitState::kClosed);
  if (config_.health_tracking)
    for (u32 i = 0; i < n; ++i) out[i] = health().circuit_state(i);
  return out;
}

void RapidsPipeline::set_health_transition_callback(
    storage::SystemHealth::TransitionCallback cb) {
  std::lock_guard<std::mutex> lock(io_mu_);
  health().set_transition_callback(std::move(cb));
}

void RapidsPipeline::with_metadata_lock(
    const std::function<void(kv::KvStore&)>& fn) {
  std::lock_guard<std::mutex> lock(io_mu_);
  fn(db_);
}

Bytes RapidsPipeline::fetch_level_payload(const std::string& name, u32 level,
                                          u64* wan_bytes) {
  std::optional<ObjectRecord> record;
  GatherProblem problem;
  snapshot_problem(name, record, problem);
  RAPIDS_REQUIRE_MSG(level < record->ft.size(),
                     "fetch_level: level out of range for " + name);
  const u32 generation = record->generation;
  Bytes hit;
  if (restore_cache_.get(name, generation, level, hit) ==
      storage::RestoreCache::Outcome::kHit)
    return hit;

  const u32 nlevels = static_cast<u32>(record->ft.size());
  std::vector<Bytes> payloads(nlevels);
  RestoreReport report;
  const std::vector<u32> wanted{level};
  for (;;) {
    u32 failed = 0;
    for (const bool a : problem.available) failed += a ? 0 : 1;
    if (failed > problem.m[level])
      throw io_error("fetch_level: level " + std::to_string(level) + " of " +
                     name + " is not recoverable under current outages");
    // false means fetch_levels marked at least one more system unavailable,
    // so the failure count above strictly grows and this loop terminates.
    if (fetch_levels(*record, name, problem, wanted, nullptr, report, payloads,
                     {}))
      break;
  }
  if (wan_bytes != nullptr) *wan_bytes += report.bytes_transferred;
  restore_cache_.put(name, generation, level, payloads[level]);
  return std::move(payloads[level]);
}

u64 RapidsPipeline::store_level_generation(const std::string& name,
                                           u32 generation, u32 level,
                                           u32 m_new,
                                           std::span<const std::byte> payload) {
  const u32 n = cluster_.size();
  RAPIDS_REQUIRE_MSG(m_new >= 1 && m_new < n,
                     "store_level_generation: parity count out of range");
  std::optional<ObjectRecord> record;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    record = lookup(name);
  }
  RAPIDS_REQUIRE_MSG(record.has_value(),
                     "store_level_generation: unknown object " + name);
  RAPIDS_REQUIRE_MSG(level < record->ft.size(),
                     "store_level_generation: level out of range");
  RAPIDS_REQUIRE_MSG(generation != record->generation,
                     "store_level_generation: target generation is live");

  // Encode outside the lock: pure compute over the caller's payload.
  const std::string sname = generation_storage_name(name, generation);
  const ec::ReedSolomon rs(n - m_new, m_new, record->matrix_kind);
  const std::span<const u8> data{reinterpret_cast<const u8*>(payload.data()),
                                 payload.size()};
  const auto frags = rs.encode(data, sname, level, pool_);

  StoreStats stats;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    store_level_locked(sname, level, frags,
                       config_.streaming ? config_.stream_stripe_bytes : 0,
                       stats);
    persist_health();
  }
  u64 bytes = 0;
  for (const auto& tr : stats.transfers) bytes += tr.bytes;
  return bytes;
}

void RapidsPipeline::flip_generation(const std::string& name,
                                     u32 new_generation,
                                     const FtConfig& new_ft, f64 planned_p,
                                     f64 planned_error) {
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    auto record = lookup(name);
    RAPIDS_REQUIRE_MSG(record.has_value(),
                       "flip_generation: unknown object " + name);
    RAPIDS_REQUIRE_MSG(new_ft.size() == record->ft.size(),
                       "flip_generation: ft level count mismatch");
    RAPIDS_REQUIRE_MSG(valid_ft_config(cluster_.size(), new_ft),
                       "flip_generation: invalid ft config");
    if (record->generation == new_generation && record->ft == new_ft)
      return;  // idempotent replay after a crash between flip and journal
    record->generation = new_generation;
    record->ft = new_ft;
    record->planned_p = planned_p;
    record->planned_error = planned_error;
    const Bytes wire = record->serialize();
    // The commit point: one put, one WAL barrier. Before it every restore
    // reads the old generation; after it, the new one. No torn state exists.
    db_.put(object_key(name), std::string(
        reinterpret_cast<const char*>(wire.data()), wire.size()));
  }
  // Cached payloads belong to the old generation's keys; drop them all so a
  // concurrent restore that raced the flip cannot serve a stale mix.
  restore_cache_.invalidate(name);
}

u64 RapidsPipeline::gc_generation(const std::string& name, u32 generation) {
  std::lock_guard<std::mutex> lock(io_mu_);
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(!record || record->generation != generation,
                     "gc_generation: refusing to drop the live generation");
  return gc_generation_locked(name, generation);
}

u64 RapidsPipeline::gc_generation_locked(const std::string& name,
                                         u32 generation) {
  const std::string sname = generation_storage_name(name, generation);
  const std::string prefix = "frag/" + sname + "/";
  u64 erased = 0;
  std::vector<std::string> stale_keys;
  for (const auto& [key, value] : db_.scan_prefix(prefix)) {
    stale_keys.push_back(key);
    u32 sys = 0;
    try {
      sys = static_cast<u32>(std::stoul(value));
    } catch (...) {
      continue;  // malformed location entry: tombstone it anyway
    }
    if (sys >= cluster_.size()) continue;
    auto& host = cluster_.system(sys);
    if (host.has(key)) {
      host.erase(key);
      ++erased;
    }
  }
  // Orphan sweep: a phase-1 crash can leave fragments whose location entry
  // never made it into the batch (store_level_locked writes locations after
  // all puts of a level). The per-system key index catches those.
  for (u32 s = 0; s < cluster_.size(); ++s) {
    for (const auto& key : cluster_.system(s).keys_with_prefix(prefix)) {
      cluster_.system(s).erase(key);
      ++erased;
    }
  }
  if (!stale_keys.empty()) db_.del_batch(stale_keys);
  return erased;
}

}  // namespace rapids::core
