#include "rapids/core/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "rapids/core/baselines.hpp"

#include "rapids/parallel/thread_pool.hpp"
#include "rapids/util/logging.hpp"
#include "rapids/util/timer.hpp"

namespace rapids::core {

namespace {
constexpr u32 kRecordMagic = 0x524F4252u;  // "ROBR"

std::string object_key(const std::string& name) { return "obj/" + name; }

std::span<const u8> payload_u8(const Bytes& payload) {
  return {reinterpret_cast<const u8*>(payload.data()), payload.size()};
}
}  // namespace

Bytes ObjectRecord::serialize() const {
  ByteWriter w;
  w.put_u32(kRecordMagic);
  w.put_u16(1);
  w.put_bytes(as_bytes_view(meta.serialize_metadata()));
  w.put_u32(static_cast<u32>(ft.size()));
  for (u32 m : ft) w.put_u32(m);
  w.put_u32(static_cast<u32>(level_sizes.size()));
  for (u64 s : level_sizes) w.put_u64(s);
  w.put_u8(matrix_kind == ec::MatrixKind::kVandermonde ? 0 : 1);
  w.put_u8(placement == storage::PlacementPolicy::kIdentity ? 0 : 1);
  return w.take();
}

ObjectRecord ObjectRecord::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.get_u32() != kRecordMagic) throw io_error("ObjectRecord: bad magic");
  if (r.get_u16() != 1) throw io_error("ObjectRecord: bad version");
  ObjectRecord rec;
  rec.meta = mgard::RefactoredObject::deserialize_metadata(r.get_bytes());
  const u32 nft = r.get_u32();
  if (u64{nft} * 4 > r.remaining()) throw io_error("ObjectRecord: bad ft count");
  rec.ft.resize(nft);
  for (auto& m : rec.ft) m = r.get_u32();
  const u32 nsz = r.get_u32();
  if (u64{nsz} * 8 > r.remaining())
    throw io_error("ObjectRecord: bad level count");
  rec.level_sizes.resize(nsz);
  for (auto& s : rec.level_sizes) s = r.get_u64();
  rec.matrix_kind =
      r.get_u8() == 0 ? ec::MatrixKind::kVandermonde : ec::MatrixKind::kCauchy;
  rec.placement = r.get_u8() == 0 ? storage::PlacementPolicy::kIdentity
                                  : storage::PlacementPolicy::kRotate;
  return rec;
}

RapidsPipeline::RapidsPipeline(storage::Cluster& cluster, kv::KvStore& db,
                               PipelineConfig config, ThreadPool* pool)
    : cluster_(cluster), db_(db), config_(std::move(config)), pool_(pool) {}

ec::ReedSolomon RapidsPipeline::codec_for(const ObjectRecord& record,
                                          u32 level) const {
  const u32 n = cluster_.size();
  const u32 m = record.ft.at(level);
  return ec::ReedSolomon(n - m, m, record.matrix_kind);
}

PrepareReport RapidsPipeline::prepare(std::span<const f32> data,
                                      mgard::Dims dims, const std::string& name) {
  return do_prepare(data, dims, name);
}

std::vector<PrepareReport> RapidsPipeline::prepare_batch(
    std::span<const PrepareRequest> requests) {
  std::vector<PrepareReport> reports(requests.size());
  if (pool_ == nullptr || pool_->size() <= 1 || requests.size() <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i)
      reports[i] =
          do_prepare(requests[i].data, requests[i].dims, requests[i].name);
    return reports;
  }
  // One task per object: the pool's stealing overlaps object A's encode with
  // object B's refactor while object C distributes fragments under io_mu_.
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    group.run([this, &requests, &reports, i] {
      reports[i] =
          do_prepare(requests[i].data, requests[i].dims, requests[i].name);
    });
  }
  group.wait();
  return reports;
}

PrepareReport RapidsPipeline::do_prepare(std::span<const f32> data,
                                         mgard::Dims dims,
                                         const std::string& name) {
  const u32 n = cluster_.size();
  PrepareReport report;
  Timer t;

  // 1-2) Read + refactor into the hierarchical representation.
  const mgard::Refactorer refactorer(config_.refactor, pool_);
  mgard::RefactoredObject obj = refactorer.refactor(data, dims, name);
  report.refactor_seconds = t.seconds();

  // 3) Optimize the fault-tolerance configuration (Algorithm 1).
  t.reset();
  FtProblem problem;
  problem.n = n;
  problem.p = cluster_.config().failure_prob;
  problem.original_size = obj.original_bytes();
  problem.overhead_budget = config_.overhead_budget;
  for (u32 j = 0; j < obj.levels.size(); ++j) {
    problem.level_sizes.push_back(obj.level_bytes(j));
    problem.level_errors.push_back(obj.rel_error_bound(j + 1));
  }
  const auto solution = ft_optimize_heuristic(problem);
  RAPIDS_REQUIRE_MSG(solution.has_value(),
                     "prepare: no FT configuration fits the overhead budget");
  report.optimize_seconds = t.seconds();

  // 4) Erasure-code every level with its own configuration. Levels are
  // independent, so each one's encode is forked as its own task — a second
  // axis of parallelism on top of the intra-encode parallel_for.
  t.reset();
  std::vector<std::vector<ec::Fragment>> per_level(obj.levels.size());
  const auto encode_level = [&](u32 j) {
    const u32 m = solution->m[j];
    const ec::ReedSolomon rs(n - m, m, config_.matrix_kind);
    per_level[j] = rs.encode(payload_u8(obj.levels[j].payload), name, j, pool_);
  };
  if (pool_ != nullptr && pool_->size() > 1 && obj.levels.size() > 1) {
    TaskGroup group(pool_);
    for (u32 j = 0; j < obj.levels.size(); ++j)
      group.run([&encode_level, j] { encode_level(j); });
    group.wait();
  } else {
    for (u32 j = 0; j < obj.levels.size(); ++j) encode_level(j);
  }
  report.encode_seconds = t.seconds();

  // Build and serialize the object record before taking the lock: only the
  // actual stores below need to be serialized against other batch objects.
  ObjectRecord record;
  record.meta = obj;
  record.ft = solution->m;
  for (u32 j = 0; j < obj.levels.size(); ++j)
    record.level_sizes.push_back(obj.level_bytes(j));
  record.matrix_kind = config_.matrix_kind;
  record.placement = config_.placement;
  const Bytes record_bytes = record.serialize();

  // 5-6) Distribute one fragment of every level to every system and persist
  // the object record. Shared-state stage: cluster and metadata store are
  // not thread-safe, so it runs under io_mu_ (and never touches the pool
  // while holding it). Fragment locations go to the store as one batch per
  // level instead of one put per fragment.
  t.reset();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    std::vector<std::pair<std::string, std::string>> locations;
    for (u32 j = 0; j < per_level.size(); ++j) {
      locations.clear();
      locations.reserve(per_level[j].size());
      for (u32 idx = 0; idx < per_level[j].size(); ++idx) {
        const u32 sys = storage::place_fragment(config_.placement, n, j, idx);
        cluster_.system(sys).put(per_level[j][idx]);
        locations.emplace_back(per_level[j][idx].id.key(), std::to_string(sys));
        ++report.fragments_stored;
      }
      db_.put_batch(locations);
    }
    db_.put(object_key(name),
            std::string(reinterpret_cast<const char*>(record_bytes.data()),
                        record_bytes.size()));
  }
  report.store_seconds = t.seconds();

  report.expected_error = solution->expected_error;
  report.storage_overhead = solution->storage_overhead;
  report.network_overhead = ft_network_overhead(
      n, solution->m, record.level_sizes, obj.original_bytes());
  report.distribution_latency = net::equal_share_latency(
      rfec_distribution_plan(record.level_sizes, solution->m, n),
      cluster_.bandwidths());
  record.meta.levels = std::move(obj.levels);  // keep payloads in the report
  report.record = std::move(record);
  return report;
}

std::optional<ObjectRecord> RapidsPipeline::lookup(const std::string& name) const {
  const auto raw = db_.get(object_key(name));
  if (!raw) return std::nullopt;
  return ObjectRecord::deserialize(
      {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
}

std::map<u32, u32> RapidsPipeline::fragment_locations(const std::string& name,
                                                      u32 level) const {
  std::map<u32, u32> out;
  const std::string prefix = "frag/" + name + "/" + std::to_string(level) + "/";
  for (const auto& [key, value] : db_.scan_prefix(prefix)) {
    const u32 index = static_cast<u32>(std::stoul(key.substr(prefix.size())));
    const u32 system = static_cast<u32>(std::stoul(value));
    // A system may host several fragments of one level after evacuations;
    // keep the first (any one is equally useful to a gather plan).
    out.emplace(system, index);
  }
  return out;
}

net::BandwidthTracker& RapidsPipeline::tracker() {
  if (!tracker_) {
    const auto raw = db_.get("net/bandwidth_tracker");
    if (raw && raw->size() > 0) {
      tracker_ = net::BandwidthTracker::deserialize(
          {reinterpret_cast<const std::byte*>(raw->data()), raw->size()});
      if (tracker_->size() != cluster_.size()) tracker_.reset();
    }
    if (!tracker_) tracker_ = net::BandwidthTracker(cluster_.bandwidths());
  }
  return *tracker_;
}

void RapidsPipeline::persist_tracker() {
  if (!tracker_) return;
  const Bytes wire = tracker_->serialize();
  db_.put("net/bandwidth_tracker",
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
}

std::vector<f64> RapidsPipeline::bandwidth_estimates() const {
  if (config_.adapt_bandwidth && tracker_) return tracker_->estimates();
  return cluster_.bandwidths();
}

GatherPlan RapidsPipeline::plan_gather(const GatherProblem& problem) const {
  switch (config_.strategy) {
    case GatherStrategy::kRandom: {
      Rng rng(config_.random_seed);
      return random_plan(problem, rng);
    }
    case GatherStrategy::kNaive:
      return naive_plan(problem);
    case GatherStrategy::kOptimized:
      return optimized_plan(problem, config_.aco);
  }
  throw invariant_error("restore: unknown gather strategy");
}

RestoreReport RapidsPipeline::restore(const std::string& name) {
  return do_restore(name);
}

std::vector<RestoreReport> RapidsPipeline::restore_batch(
    std::span<const std::string> names) {
  std::vector<RestoreReport> reports(names.size());
  if (pool_ == nullptr || pool_->size() <= 1 || names.size() <= 1) {
    for (std::size_t i = 0; i < names.size(); ++i)
      reports[i] = do_restore(names[i]);
    return reports;
  }
  // One task per object: planning, decode, and reconstruction overlap across
  // objects; the fetch stage serializes internally on io_mu_.
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    group.run([this, &names, &reports, i] { reports[i] = do_restore(names[i]); });
  }
  group.wait();
  return reports;
}

RestoreReport RapidsPipeline::do_restore(const std::string& name) {
  const u32 n = cluster_.size();

  RestoreReport report;

  // Build the gathering problem from current availability; bandwidths come
  // from the learned tracker when adaptation is on (paper Section 4.3).
  // Metadata lookup + availability/bandwidth snapshot touch shared state.
  std::optional<ObjectRecord> record;
  GatherProblem problem;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    record = lookup(name);
    RAPIDS_REQUIRE_MSG(record.has_value(), "restore: unknown object " + name);
    problem.n = n;
    problem.m = record->ft;
    problem.level_sizes = record->level_sizes;
    problem.bandwidths =
        config_.adapt_bandwidth ? tracker().estimates() : cluster_.bandwidths();
    problem.available.resize(n);
    for (u32 i = 0; i < n; ++i)
      problem.available[i] = cluster_.system(i).available();
  }

  // Plan + fetch, replanning (bounded) when a planned fragment is missing or
  // damaged: the offending system is treated as unavailable and the
  // remaining tolerance absorbs it, exactly like one more concurrent outage.
  Timer t;
  std::vector<Bytes> payloads;
  for (u32 attempt = 0; attempt <= n; ++attempt) {
    report.levels_used = problem.recoverable_levels();
    if (report.levels_used == 0) {
      log::warn("pipeline", "object ", name, " unrecoverable: too many outages");
      report.rel_error_bound = 1.0;  // the paper's e_0 penalty
      return report;
    }
    report.rel_error_bound = record->meta.rel_error_bound(report.levels_used);

    report.plan = plan_gather(problem);  // pure: runs outside the lock
    report.planning_seconds += report.plan.planning_seconds;
    report.gather_latency = report.plan.latency;

    // Fetch the planned fragments (real bytes; the WAN time above is the
    // simulated clock for those very transfers). Shared-state stage: the
    // location scans and cluster reads run under io_mu_; decoding happens
    // after the lock drops.
    t.reset();
    payloads.clear();
    std::optional<u32> bad_system;
    std::vector<std::vector<ec::Fragment>> level_frags(report.levels_used);
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (u32 j = 0; j < report.levels_used && !bad_system; ++j) {
        const auto locations = fragment_locations(name, j);
        for (u32 sys : report.plan.systems_per_level[j]) {
          const auto loc = locations.find(sys);
          if (loc == locations.end()) {
            log::warn("pipeline", "no level-", j, " fragment recorded on system ",
                      sys, "; replanning");
            bad_system = sys;
            break;
          }
          const u32 idx = loc->second;
          auto frag = cluster_.system(sys).get(ec::FragmentId{name, j, idx}.key());
          if (!frag || !frag->verify()) {
            log::warn("pipeline", "fragment ", name, "/", j, "/", idx,
                      " missing or damaged on system ", sys, "; replanning");
            bad_system = sys;
            break;
          }
          level_frags[j].push_back(std::move(*frag));
        }
      }
    }
    if (!bad_system) {
      // Decode every fetched level; levels are independent, so each one is
      // forked as its own task when a pool is available.
      payloads.resize(report.levels_used);
      const auto decode_level = [&](u32 j) {
        const ec::ReedSolomon rs = codec_for(*record, j);
        const std::vector<u8> level = rs.decode(level_frags[j], pool_);
        const auto* p = reinterpret_cast<const std::byte*>(level.data());
        payloads[j] = Bytes(p, p + level.size());
      };
      if (pool_ != nullptr && pool_->size() > 1 && report.levels_used > 1) {
        TaskGroup group(pool_);
        for (u32 j = 0; j < report.levels_used; ++j)
          group.run([&decode_level, j] { decode_level(j); });
        group.wait();
      } else {
        for (u32 j = 0; j < report.levels_used; ++j) decode_level(j);
      }
      break;
    }
    problem.available[*bad_system] = false;
    RAPIDS_REQUIRE_MSG(attempt < n, "restore: replanning did not converge");
  }
  report.decode_seconds = t.seconds();

  // Fold the observed (simulated-WAN) per-transfer throughput back into the
  // tracker so later plans adapt to bandwidth changes.
  if (config_.adapt_bandwidth) {
    const auto transfers = plan_transfers(problem, report.plan.systems_per_level);
    std::vector<u32> load(n, 0);
    for (const auto& tr : transfers) load[tr.system] += 1;
    std::lock_guard<std::mutex> lock(io_mu_);
    const auto times = net::equal_share_times(transfers, cluster_.bandwidths());
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      // Undo the contention share so the observation estimates the nominal
      // endpoint bandwidth, not this plan's slice of it.
      const f64 exclusive_seconds =
          times[i] / static_cast<f64>(load[transfers[i].system]);
      if (exclusive_seconds > 0.0)
        tracker().observe(transfers[i].system, transfers[i].bytes,
                          exclusive_seconds);
    }
    persist_tracker();
  }

  // Reconstruct the approximation from the recovered prefix.
  t.reset();
  const mgard::Refactorer refactorer(config_.refactor, pool_);
  report.data = refactorer.reconstruct(record->meta, payloads);
  report.reconstruct_seconds = t.seconds();
  return report;
}

void RapidsPipeline::repair_fragment(const std::string& name, u32 level,
                                     u32 index, u32 target_system) {
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "repair: unknown object " + name);
  const u32 n = cluster_.size();
  const ec::ReedSolomon rs = codec_for(*record, level);

  std::vector<ec::Fragment> survivors;
  for (const auto& [sys, idx] : fragment_locations(name, level)) {
    if (survivors.size() >= rs.k()) break;
    if (!cluster_.system(sys).available()) continue;
    if (idx == index) continue;  // the lost one
    auto frag = cluster_.system(sys).get(ec::FragmentId{name, level, idx}.key());
    if (frag && frag->verify()) survivors.push_back(std::move(*frag));
  }
  RAPIDS_REQUIRE_MSG(survivors.size() >= rs.k(),
                     "repair: not enough surviving fragments");
  ec::Fragment rebuilt = rs.reconstruct_fragment(survivors, index, pool_);
  cluster_.system(target_system).put(rebuilt);
  const std::pair<std::string, std::string> location{
      rebuilt.id.key(), std::to_string(target_system)};
  db_.put_batch({&location, 1});
}

std::vector<std::string> RapidsPipeline::list_objects() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : db_.scan_prefix("obj/"))
    out.push_back(key.substr(4));
  return out;
}

RapidsPipeline::ScrubReport RapidsPipeline::scrub(const std::string& name,
                                                  bool repair) {
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "scrub: unknown object " + name);
  ScrubReport report;
  for (u32 level = 0; level < record->ft.size(); ++level) {
    for (const auto& [sys, idx] : fragment_locations(name, level)) {
      auto& host = cluster_.system(sys);
      if (!host.available()) continue;  // outage, not damage
      ++report.fragments_checked;
      const auto frag = host.get(ec::FragmentId{name, level, idx}.key());
      if (frag && frag->verify()) continue;
      report.damaged.emplace_back(level, idx, sys);
      log::warn("pipeline", "scrub: fragment ", name, "/", level, "/", idx,
                " on system ", sys, frag ? " is corrupt" : " is missing");
      if (repair) {
        repair_fragment(name, level, idx, sys);
        ++report.repaired;
      }
    }
  }
  return report;
}

u64 RapidsPipeline::age_object(const std::string& name, u32 keep_levels) {
  auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "age: unknown object " + name);
  const u32 current = static_cast<u32>(record->ft.size());
  RAPIDS_REQUIRE_MSG(keep_levels >= 1 && keep_levels < current,
                     "age: keep_levels must be in [1, levels)");

  // Drop the deep levels' fragments everywhere and forget their locations.
  u64 reclaimed = 0;
  for (u32 level = keep_levels; level < current; ++level) {
    for (const auto& [sys, idx] : fragment_locations(name, level)) {
      const std::string key = ec::FragmentId{name, level, idx}.key();
      auto& host = cluster_.system(sys);
      if (host.has(key)) {
        // Logical payload size: level bytes spread over k fragments.
        reclaimed += ceil_div(record->level_sizes[level],
                              cluster_.size() - record->ft[level]);
        host.erase(key);
      }
      db_.del(key);
    }
  }

  // Truncate the record so future restores plan only the kept levels.
  record->ft.resize(keep_levels);
  record->level_sizes.resize(keep_levels);
  record->meta.levels.resize(keep_levels);
  const Bytes wire = record->serialize();
  db_.put(object_key(name),
          std::string(reinterpret_cast<const char*>(wire.data()), wire.size()));
  log::info("pipeline", "aged ", name, " to ", keep_levels,
            " levels, reclaimed ", reclaimed, " bytes");
  return reclaimed;
}

u32 RapidsPipeline::evacuate_system(const std::string& name, u32 system) {
  const auto record = lookup(name);
  RAPIDS_REQUIRE_MSG(record.has_value(), "evacuate: unknown object " + name);
  const u32 n = cluster_.size();
  RAPIDS_REQUIRE(system < n);

  u32 moved = 0;
  std::vector<std::pair<std::string, std::string>> new_locations;
  for (u32 level = 0; level < record->ft.size(); ++level) {
    const auto locations = fragment_locations(name, level);
    const auto loc = locations.find(system);
    if (loc == locations.end()) continue;  // nothing of this level here
    const u32 idx = loc->second;
    const std::string key = ec::FragmentId{name, level, idx}.key();
    if (!cluster_.system(system).has(key)) continue;  // already elsewhere

    // Destination: the system (other than the source) currently holding the
    // fewest fragments — keeps load roughly even as systems retire.
    u32 target = system == 0 ? 1 : 0;
    for (u32 s = 0; s < n; ++s) {
      if (s == system || !cluster_.system(s).available()) continue;
      if (cluster_.system(s).fragment_count() <
          cluster_.system(target).fragment_count())
        target = s;
    }
    RAPIDS_REQUIRE_MSG(target != system && cluster_.system(target).available(),
                       "evacuate: no destination system available");

    // Prefer a direct move; fall back to rebuilding from survivors if the
    // source copy is unreadable.
    const auto frag = cluster_.system(system).available()
                          ? cluster_.system(system).get(key)
                          : std::nullopt;
    if (frag && frag->verify()) {
      cluster_.system(target).put(*frag);
    } else {
      repair_fragment(name, level, idx, target);
    }
    cluster_.system(system).erase(key);
    new_locations.emplace_back(key, std::to_string(target));
    ++moved;
  }
  // One metadata batch for the whole evacuation. (The repair fallback above
  // already wrote the same key -> target, so the batch only confirms it.)
  db_.put_batch(new_locations);
  return moved;
}

}  // namespace rapids::core
