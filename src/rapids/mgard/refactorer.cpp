#include "rapids/mgard/refactorer.hpp"

#include <algorithm>
#include <cmath>

#include "rapids/mgard/workspace.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/util/timer.hpp"

namespace rapids::mgard {

u64 RefactoredObject::refactored_bytes() const {
  u64 total = 0;
  for (const auto& l : levels) total += l.payload.size();
  return total;
}

Bytes RefactoredObject::serialize_metadata() const {
  ByteWriter w;
  w.put_u32(0x5246524Du);  // "RFRM"
  w.put_u16(1);
  w.put_string(name);
  w.put_u64(dims.nx);
  w.put_u64(dims.ny);
  w.put_u64(dims.nz);
  w.put_u32(decomp_levels);
  w.put_u8(l2_correction ? 1 : 0);
  w.put_f64(bound_factor);
  w.put_f64(data_max_abs);
  w.put_u32(static_cast<u32>(dlevels.size()));
  for (const auto& d : dlevels) {
    w.put_u64(d.count);
    w.put_f64(d.max_abs);
    w.put_i64(d.exponent);
  }
  w.put_u32(static_cast<u32>(levels.size()));
  for (const auto& l : levels) {
    w.put_u64(l.payload.size());
    w.put_f64(l.abs_error_bound);
    w.put_f64(l.rel_error_bound);
  }
  return w.take();
}

RefactoredObject RefactoredObject::deserialize_metadata(
    std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.get_u32() != 0x5246524Du) throw io_error("RefactoredObject: bad magic");
  if (r.get_u16() != 1) throw io_error("RefactoredObject: bad version");
  RefactoredObject o;
  o.name = r.get_string();
  o.dims.nx = r.get_u64();
  o.dims.ny = r.get_u64();
  o.dims.nz = r.get_u64();
  o.decomp_levels = r.get_u32();
  o.l2_correction = r.get_u8() != 0;
  o.bound_factor = r.get_f64();
  o.data_max_abs = r.get_f64();
  const u32 nd = r.get_u32();
  if (u64{nd} * 24 > r.remaining())
    throw io_error("RefactoredObject: bad decomposition-level count");
  o.dlevels.resize(nd);
  for (auto& d : o.dlevels) {
    d.count = r.get_u64();
    d.max_abs = r.get_f64();
    d.exponent = static_cast<i32>(r.get_i64());
  }
  const u32 nl = r.get_u32();
  if (u64{nl} * 24 > r.remaining())
    throw io_error("RefactoredObject: bad retrieval-level count");
  o.levels.resize(nl);
  for (auto& l : o.levels) {
    (void)r.get_u64();  // payload size: informational, payloads travel apart
    l.abs_error_bound = r.get_f64();
    l.rel_error_bound = r.get_f64();
  }
  return o;
}

RefactoredObject Refactorer::refactor(std::span<const f32> data, Dims dims,
                                      const std::string& name,
                                      RefactorTimings* timings) const {
  // The staged refactor is the streaming one with a collecting sink, so the
  // two paths cannot drift apart.
  std::vector<RetrievalLevel> levels;
  RefactoredObject out = refactor_streaming(
      data, dims, name, PlanSink{},
      [&levels](u32 j, RetrievalLevel&& lvl) {
        if (levels.size() <= j) levels.resize(j + 1);
        levels[j] = std::move(lvl);
      },
      timings);
  out.levels = std::move(levels);
  return out;
}

RefactoredObject Refactorer::refactor_streaming(
    std::span<const f32> data, Dims dims, const std::string& name,
    const PlanSink& on_plan, const LevelSink& on_level,
    RefactorTimings* timings) const {
  RAPIDS_REQUIRE(data.size() == dims.total());
  RAPIDS_REQUIRE(options_.decomp_levels >= 1);

  const GridHierarchy h(dims, options_.decomp_levels);
  Timer t;

  // Work in f64: the transform and quantization stay well below f32 noise.
  std::vector<f64> field(data.size());
  std::transform(data.begin(), data.end(), field.begin(),
                 [](f32 v) { return static_cast<f64>(v); });
  f64 max_abs = 0.0;
  bool finite = true;
  for (f64 v : field) {
    finite &= std::isfinite(v);
    max_abs = std::max(max_abs, std::fabs(v));
  }
  RAPIDS_REQUIRE_MSG(finite, "refactor: input contains NaN or infinity");
  RAPIDS_REQUIRE_MSG(max_abs > 0.0, "refactor: all-zero input has no scale");

  std::vector<f64> padded = pad_field(field, dims, h.padded());
  field.clear();
  field.shrink_to_fit();

  DecomposeOptions dopt{options_.l2_correction};
  {
    // Lease a warm workspace so per-level scratch survives across levels and
    // across pipeline calls instead of being reallocated.
    auto ws = WorkspacePool::global().acquire();
    decompose(padded, h, dopt, pool_, ws.get());
  }
  if (timings != nullptr) timings->transform_seconds = t.seconds();

  // Encode every decomposition level's coefficients into planes.
  t.reset();
  std::vector<PlaneSet> plane_sets(h.num_decomp_levels());
  CodecStats* codec = timings != nullptr ? &timings->plane_codec : nullptr;
  for (u32 d = 0; d < h.num_decomp_levels(); ++d) {
    std::vector<f64> coeffs = gather_level(padded, h, d, pool_);
    plane_sets[d] = encode_planes(coeffs, options_.max_planes, pool_, codec);
  }
  if (timings != nullptr) timings->plane_encode_seconds = t.seconds();

  RetrievalOptions ropt;
  ropt.num_levels = options_.num_retrieval_levels;
  ropt.target_rel_errors = options_.target_rel_errors;
  ropt.final_rel_error = options_.final_rel_error;
  ropt.bound_factor = options_.bound_factor;

  RefactoredObject out;
  out.name = name;
  out.dims = dims;
  out.decomp_levels = options_.decomp_levels;
  out.l2_correction = options_.l2_correction;
  out.bound_factor = options_.bound_factor;
  out.data_max_abs = max_abs;
  out.dlevels.resize(plane_sets.size());
  for (u32 d = 0; d < plane_sets.size(); ++d) {
    out.dlevels[d] =
        DLevelMeta{plane_sets[d].count, plane_sets[d].max_abs, plane_sets[d].exponent};
  }

  // Plan every retrieval level first — the downstream FT optimizer needs all
  // level sizes — then materialize and hand off one level at a time so later
  // levels' serialization overlaps with downstream encode/distribute work.
  t.reset();
  const auto plans = plan_retrieval_levels(plane_sets, max_abs, ropt);
  out.levels.resize(plans.size());
  std::vector<u64> level_sizes(plans.size());
  for (u32 j = 0; j < plans.size(); ++j) {
    out.levels[j].abs_error_bound = plans[j].abs_error_bound;
    out.levels[j].rel_error_bound = plans[j].rel_error_bound;
    out.levels[j].segments = plans[j].segments;
    level_sizes[j] = plans[j].payload_bytes;
  }
  f64 assemble = t.seconds();
  if (on_plan) on_plan(out, level_sizes);

  for (u32 j = 0; j < plans.size(); ++j) {
    t.reset();
    RetrievalLevel lvl = materialize_retrieval_level(plane_sets, plans[j]);
    assemble += t.seconds();
    if (on_level) on_level(j, std::move(lvl));
  }
  if (timings != nullptr) timings->assemble_seconds = assemble;
  return out;
}

std::vector<f32> Refactorer::reconstruct(
    const RefactoredObject& meta, std::span<const Bytes> level_payloads,
    CodecStats* codec) const {
  RAPIDS_REQUIRE_MSG(!level_payloads.empty(),
                     "reconstruct: need at least retrieval level 1");
  RAPIDS_REQUIRE(level_payloads.size() <= meta.levels.size());
  const std::vector<PlaneSet> sets =
      collect_plane_sets(meta.dlevels, level_payloads);
  return reconstruct_from_sets(meta, sets, nullptr, codec);
}

std::vector<f32> Refactorer::reconstruct_incremental(
    const RefactoredObject& meta, const std::vector<PlaneSet>& sets,
    std::vector<ProgressiveState>& states, CodecStats* codec) const {
  if (states.empty()) states.resize(sets.size());
  RAPIDS_REQUIRE_MSG(states.size() == sets.size(),
                     "reconstruct: progressive states do not match plane sets");
  return reconstruct_from_sets(meta, sets, &states, codec);
}

std::vector<f32> Refactorer::reconstruct_from_sets(
    const RefactoredObject& meta, const std::vector<PlaneSet>& sets,
    std::vector<ProgressiveState>* states, CodecStats* codec) const {
  const GridHierarchy h(meta.dims, meta.decomp_levels);
  RAPIDS_REQUIRE(sets.size() == h.num_decomp_levels());

  std::vector<f64> padded(h.padded().total(), 0.0);
  for (u32 d = 0; d < sets.size(); ++d) {
    const u32 avail = static_cast<u32>(sets[d].planes.size());
    std::vector<f64> coeffs;
    if (sets[d].count != 0) {
      coeffs = states != nullptr
                   ? decode_planes_incremental(sets[d], avail, (*states)[d],
                                               pool_, codec)
                   : decode_planes(sets[d], avail, pool_, codec);
    }
    if (coeffs.empty() && sets[d].count > 0)
      coeffs.assign(sets[d].count, 0.0);
    scatter_level(padded, h, d, coeffs, pool_);
  }

  DecomposeOptions dopt{meta.l2_correction};
  {
    auto ws = WorkspacePool::global().acquire();
    recompose(padded, h, dopt, pool_, ws.get());
  }

  std::vector<f64> cropped = crop_field(padded, h.padded(), meta.dims);
  std::vector<f32> out(cropped.size());
  std::transform(cropped.begin(), cropped.end(), out.begin(),
                 [](f64 v) { return static_cast<f32>(v); });
  return out;
}

}  // namespace rapids::mgard
