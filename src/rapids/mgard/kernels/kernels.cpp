#include "rapids/mgard/kernels/kernels.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

// Scalar reference kernels and the dispatch glue. This translation unit is
// compiled with -fno-tree-vectorize (see src/CMakeLists.txt): these loops are
// the bit-identity arbiter for every SIMD tier and the baseline the
// benchmarks report speedups against, so they must stay honestly scalar.

namespace rapids::mgard::kernels {

namespace {

template <typename T>
void cascade_fwd_s(T* odd, const T* lo, const T* hi, u64 n) {
  for (u64 i = 0; i < n; ++i)
    odd[i] -= static_cast<T>(0.5) * (lo[i] + hi[i]);
}

template <typename T>
void cascade_inv_s(T* odd, const T* lo, const T* hi, u64 n) {
  for (u64 i = 0; i < n; ++i)
    odd[i] += static_cast<T>(0.5) * (lo[i] + hi[i]);
}

template <typename T>
void load_interior_s(T* out, const T* m2, const T* m1, const T* c0,
                     const T* p1, const T* p2, u64 n) {
  const T c6 = static_cast<T>(1.0 / 6.0);
  for (u64 i = 0; i < n; ++i)
    out[i] = c6 * (static_cast<T>(0.5) * m2[i] + 3 * m1[i] + 5 * c0[i] +
                   3 * p1[i] + static_cast<T>(0.5) * p2[i]);
}

template <typename T>
void load_boundary_s(T* out, const T* v0, const T* v1, const T* v2, u64 n) {
  const T c6 = static_cast<T>(1.0 / 6.0);
  for (u64 i = 0; i < n; ++i)
    out[i] = c6 * (static_cast<T>(2.5) * v0[i] + 3 * v1[i] +
                   static_cast<T>(0.5) * v2[i]);
}

template <typename T>
void thomas_first_s(T* v, f64 diag, u64 n) {
  for (u64 i = 0; i < n; ++i) v[i] = static_cast<T>(v[i] / diag);
}

template <typename T>
void thomas_fwd_s(T* cur, const T* prev, f64 off, f64 denom, u64 n) {
  for (u64 i = 0; i < n; ++i)
    cur[i] = static_cast<T>((cur[i] - off * prev[i]) / denom);
}

template <typename T>
void thomas_bwd_s(T* cur, const T* next, f64 cp, u64 n) {
  for (u64 i = 0; i < n; ++i) cur[i] -= static_cast<T>(cp * next[i]);
}

template <typename T>
void cascade_fwd_x_s(T* v, u64 len) {
  for (u64 i = 1; i + 1 < len; i += 2)
    v[i] -= static_cast<T>(0.5) * (v[i - 1] + v[i + 1]);
}

template <typename T>
void cascade_inv_x_s(T* v, u64 len) {
  for (u64 i = 1; i + 1 < len; i += 2)
    v[i] += static_cast<T>(0.5) * (v[i - 1] + v[i + 1]);
}

template <typename T>
void load_x_s(T* out, const T* src, u64 olen, u64 slen) {
  const T c6 = static_cast<T>(1.0 / 6.0);
  out[0] = c6 * (static_cast<T>(2.5) * src[0] + 3 * src[1] +
                 static_cast<T>(0.5) * src[2]);
  for (u64 i = 1; i + 1 < olen; ++i) {
    const T* p = src + 2 * i;
    out[i] = c6 * (static_cast<T>(0.5) * p[-2] + 3 * p[-1] + 5 * p[0] +
                   3 * p[1] + static_cast<T>(0.5) * p[2]);
  }
  if (olen > 1) {
    const T* e = src + (slen - 1);
    out[olen - 1] = c6 * (static_cast<T>(2.5) * e[0] + 3 * e[-1] +
                          static_cast<T>(0.5) * e[-2]);
  }
}

template <typename T>
void gather_stride_s(T* dst, const T* src, u64 n, u64 stride) {
  for (u64 i = 0; i < n; ++i) dst[i] = src[i * stride];
}

template <typename T>
void scatter_stride_s(T* dst, const T* src, u64 n, u64 stride) {
  for (u64 i = 0; i < n; ++i) dst[i * stride] = src[i];
}

template <typename T>
void copy_zero_s(T* dst, const T* src, u64 n, u64 zstride) {
  for (u64 i = 0; i < n; ++i) dst[i] = src[i];
  for (u64 i = 0; i < n; i += zstride) dst[i] = 0;
}

template <typename T>
void pack_panel_s(T* dst, const T* src, u64 w, u64 len, u64 line_stride) {
  // Blocked over i so each line contributes a short contiguous run per step
  // (w lines' cache lines stay resident instead of thrashing).
  constexpr u64 kBlock = 16;
  for (u64 i0 = 0; i0 < len; i0 += kBlock) {
    const u64 i1 = i0 + kBlock < len ? i0 + kBlock : len;
    for (u64 l = 0; l < w; ++l)
      for (u64 i = i0; i < i1; ++i) dst[i * w + l] = src[l * line_stride + i];
  }
}

template <typename T>
void unpack_panel_s(T* dst, const T* src, u64 w, u64 len, u64 line_stride) {
  constexpr u64 kBlock = 16;
  for (u64 i0 = 0; i0 < len; i0 += kBlock) {
    const u64 i1 = i0 + kBlock < len ? i0 + kBlock : len;
    for (u64 l = 0; l < w; ++l)
      for (u64 i = i0; i < i1; ++i) dst[l * line_stride + i] = src[i * w + l];
  }
}

f64 max_abs_s(const f64* v, u64 n) {
  f64 m = 0.0;
  for (u64 i = 0; i < n; ++i) m = m < std::fabs(v[i]) ? std::fabs(v[i]) : m;
  return m;
}

void quantize64_s(const f64* c, u32 valid, f64 scale, u64 block[64],
                  u64* sign_word) {
  u64 sw = 0;
  for (u32 i = 0; i < valid; ++i) {
    f64 m = std::fabs(c[i]) * scale;
    if (m >= 4294967295.0) m = 4294967295.0;
    block[i] = static_cast<u64>(static_cast<u32>(m));
    if (std::signbit(c[i])) sw |= u64{1} << i;
  }
  for (u32 i = valid; i < 64; ++i) block[i] = 0;
  *sign_word = sw;
}

/// Hacker's Delight 7-7 style recursive block swap. Involution.
void transpose64_s(u64 a[64]) {
  u64 m = 0x00000000FFFFFFFFull;
  for (u32 j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (u32 k = 0; k < 64; k = (k + j + 1) & ~j) {
      const u64 t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

void dequantize_s(f64* out, const u32* q, const u64* sign_words, f64 inv_scale,
                  u32 mid, u64 n) {
  for (u64 i = 0; i < n; ++i) {
    u32 qi = q[i];
    if (qi == 0) {
      out[i] = 0.0;  // insignificant: stays exactly zero
      continue;
    }
    qi += mid;
    f64 m = static_cast<f64>(qi) * inv_scale;
    if (sign_words[i >> 6] & (u64{1} << (i & 63))) m = -m;
    out[i] = m;
  }
}

// --- entropy-codec kernels ---

void segment_stats_s(const u64* words, u64 n, u64* ones, u64* nonzero_words) {
  u64 o = 0;
  u64 nz = 0;
  for (u64 i = 0; i < n; ++i) {
    o += static_cast<u64>(std::popcount(words[i]));
    nz += (words[i] != 0);
  }
  *ones = o;
  *nonzero_words = nz;
}

u64 bit_positions_s(const u64* words, u64 n, u64* out) {
  u64 c = 0;
  for (u64 i = 0; i < n; ++i) {
    u64 w = words[i];
    const u64 base = i * 64;
    while (w != 0) {
      out[c++] = base + static_cast<u64>(std::countr_zero(w));
      w &= w - 1;
    }
  }
  return c;
}

u64 sparse_pack_s(const u64* words, u64 n, u64* bitmap, u64* packed) {
  u64 nz = 0;
  for (u64 i = 0; i < n; ++i) {
    if (words[i] != 0) {
      bitmap[i >> 6] |= u64{1} << (i & 63);
      packed[nz++] = words[i];
    }
  }
  return nz;
}

u64 sparse_expand_s(u64* words, u64 n, const u64* bitmap, const u64* packed) {
  u64 c = 0;
  for (u64 i = 0; i < n; ++i)
    if (bitmap[i >> 6] & (u64{1} << (i & 63))) words[i] = packed[c++];
  return c;
}

u64 rice_length_bits_s(const u64* pos, u64 count, u32 k) {
  u64 bits = count * (u64{1} + k);
  u64 prev = 0;
  for (u64 i = 0; i < count; ++i) {
    bits += (pos[i] - prev) >> k;
    prev = pos[i] + 1;
  }
  return bits;
}

void rice_emit_s(const u64* pos, u64 count, u32 k, u64* bits) {
  // Per gap: unary(gap >> k) = q zeros then a one, then the k low bits of the
  // gap, LSB-first. The buffer is pre-zeroed, so zeros are just a skip and
  // every write is an OR — no per-bit loop, at most three word touches.
  const u64 low_mask = k == 0 ? 0 : (u64{1} << k) - 1;
  u64 bitpos = 0;
  u64 prev = 0;
  for (u64 i = 0; i < count; ++i) {
    const u64 gap = pos[i] - prev;
    prev = pos[i] + 1;
    bitpos += gap >> k;  // the unary zeros
    bits[bitpos >> 6] |= u64{1} << (bitpos & 63);
    ++bitpos;
    if (k != 0) {
      const u64 v = gap & low_mask;
      const u32 off = static_cast<u32>(bitpos & 63);
      bits[bitpos >> 6] |= v << off;
      if (off + k > 64) bits[(bitpos >> 6) + 1] |= v >> (64 - off);
      bitpos += k;
    }
  }
}

bool rice_expand_s(const u64* stream, u64 stream_bits, u64 ones, u32 k,
                   u64 num_bits, u64* words) {
  // k <= 63 and ones <= num_bits are validated by the caller; here only the
  // stream itself can be malformed. Positions must stay < num_bits and the
  // stream must hold every coded bit — zero padding past stream_bits never
  // fabricates gaps because a unary run into the padding trips the
  // bitpos >= stream_bits check before a terminator can be found.
  const u64 low_mask = k == 0 ? 0 : (u64{1} << k) - 1;
  const u64 q_limit = num_bits >> k;  // any valid gap has gap >> k <= this
  u64 bitpos = 0;
  u64 prev = 0;
  for (u64 i = 0; i < ones; ++i) {
    u64 q = 0;
    for (;;) {
      if (bitpos >= stream_bits) return false;
      const u32 off = static_cast<u32>(bitpos & 63);
      const u64 w = stream[bitpos >> 6] >> off;
      if (w == 0) {
        q += 64 - off;
        bitpos += 64 - off;
        if (q > q_limit) return false;
        continue;
      }
      const u32 z = static_cast<u32>(std::countr_zero(w));
      q += z;
      bitpos += z + u64{1};
      break;
    }
    if (q > q_limit) return false;
    u64 low = 0;
    if (k != 0) {
      if (bitpos + k > stream_bits) return false;
      const u32 off = static_cast<u32>(bitpos & 63);
      u64 v = stream[bitpos >> 6] >> off;
      if (off + k > 64) v |= stream[(bitpos >> 6) + 1] << (64 - off);
      low = v & low_mask;
      bitpos += k;
    }
    const u64 pos = prev + ((q << k) | low);
    if (pos >= num_bits) return false;
    words[pos >> 6] |= u64{1} << (pos & 63);
    prev = pos + 1;
  }
  return true;
}

template <typename T>
constexpr RowOps<T> make_scalar_row_ops() {
  RowOps<T> ops{};
  ops.cascade_fwd = &cascade_fwd_s<T>;
  ops.cascade_inv = &cascade_inv_s<T>;
  ops.load_interior = &load_interior_s<T>;
  ops.load_boundary = &load_boundary_s<T>;
  ops.thomas_first = &thomas_first_s<T>;
  ops.thomas_fwd = &thomas_fwd_s<T>;
  ops.thomas_bwd = &thomas_bwd_s<T>;
  ops.cascade_fwd_x = &cascade_fwd_x_s<T>;
  ops.cascade_inv_x = &cascade_inv_x_s<T>;
  ops.load_x = &load_x_s<T>;
  ops.gather_stride = &gather_stride_s<T>;
  ops.scatter_stride = &scatter_stride_s<T>;
  ops.copy_zero = &copy_zero_s<T>;
  ops.pack_panel = &pack_panel_s<T>;
  ops.unpack_panel = &unpack_panel_s<T>;
  return ops;
}

constexpr BitplaneOps kScalarBitplaneOps{&max_abs_s, &quantize64_s,
                                         &transpose64_s, &dequantize_s};

constexpr CodecOps kScalarCodecOps{
    &segment_stats_s, &bit_positions_s,    &sparse_pack_s, &sparse_expand_s,
    &rice_length_bits_s, &rice_emit_s, &rice_expand_s};

}  // namespace

template <typename T>
const RowOps<T>& row_ops_scalar() {
  static constexpr RowOps<T> ops = make_scalar_row_ops<T>();
  return ops;
}

const BitplaneOps& bitplane_ops_scalar() { return kScalarBitplaneOps; }

const CodecOps& codec_ops_scalar() { return kScalarCodecOps; }

template <typename T>
const RowOps<T>& row_ops_at(simd::IsaLevel level) {
  switch (level) {
    case simd::IsaLevel::kAvx2:
      return detail::row_ops_avx2<T>();
    case simd::IsaLevel::kNeon:
      return detail::row_ops_neon<T>();
    case simd::IsaLevel::kSsse3:  // no float tier between SSE2 and AVX2 here
    case simd::IsaLevel::kScalar:
      break;
  }
  return row_ops_scalar<T>();
}

const BitplaneOps& bitplane_ops_at(simd::IsaLevel level) {
  switch (level) {
    case simd::IsaLevel::kAvx2:
      return detail::bitplane_ops_avx2();
    case simd::IsaLevel::kNeon:
      return detail::bitplane_ops_neon();
    case simd::IsaLevel::kSsse3:
    case simd::IsaLevel::kScalar:
      break;
  }
  return bitplane_ops_scalar();
}

const CodecOps& codec_ops_at(simd::IsaLevel level) {
  switch (level) {
    case simd::IsaLevel::kAvx2:
      return detail::codec_ops_avx2();
    case simd::IsaLevel::kNeon:
      return detail::codec_ops_neon();
    case simd::IsaLevel::kSsse3:
    case simd::IsaLevel::kScalar:
      break;
  }
  return codec_ops_scalar();
}

template <typename T>
const RowOps<T>& row_ops() {
  return row_ops_at<T>(simd::active_isa());
}

const BitplaneOps& bitplane_ops() {
  return bitplane_ops_at(simd::active_isa());
}

const CodecOps& codec_ops() { return codec_ops_at(simd::active_isa()); }

template const RowOps<f32>& row_ops_scalar<f32>();
template const RowOps<f64>& row_ops_scalar<f64>();
template const RowOps<f32>& row_ops_at<f32>(simd::IsaLevel);
template const RowOps<f64>& row_ops_at<f64>(simd::IsaLevel);
template const RowOps<f32>& row_ops<f32>();
template const RowOps<f64>& row_ops<f64>();

}  // namespace rapids::mgard::kernels
