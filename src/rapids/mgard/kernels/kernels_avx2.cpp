#include "rapids/mgard/kernels/kernels.hpp"

// AVX2 tier of the multigrid refactor kernels. Compiled with -mavx2 (no FMA:
// fusing a multiply-add would change rounding and break the bit-identity
// contract with the scalar reference) and reached strictly behind the runtime
// dispatch in kernels.cpp, so nothing here executes on non-AVX2 machines.
//
// Vectorization strategy per kernel family:
//  - cross-line row kernels: plain unit-stride 4-lane (f64) / 8-lane (f32)
//    arithmetic, one element per lane, operand order exactly as the scalar
//    expression;
//  - in-line x kernels: even/odd de-interleave with unpack+permute so odd
//    positions update 4 at a time while even positions are rewritten
//    bit-unchanged;
//  - Thomas rows: f64 lanes (f32 inputs widened through cvtps/cvtpd like the
//    scalar code's f64 intermediates) with hardware vdivpd;
//  - bitplane: fused |c|*scale quantization with the exact-truncation u32
//    conversion trick, a register-resident 64x64 bit transpose, and magic-
//    constant exact u32→f64 dequantization.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>

namespace rapids::mgard::kernels {
namespace {

// ---------------------------------------------------------------- f64 rows

void cascade_fwd_d(f64* odd, const f64* lo, const f64* hi, u64 n) {
  const __m256d half = _mm256_set1_pd(0.5);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_add_pd(_mm256_loadu_pd(lo + i), _mm256_loadu_pd(hi + i));
    _mm256_storeu_pd(odd + i, _mm256_sub_pd(_mm256_loadu_pd(odd + i),
                                            _mm256_mul_pd(half, s)));
  }
  for (; i < n; ++i) odd[i] -= 0.5 * (lo[i] + hi[i]);
}

void cascade_inv_d(f64* odd, const f64* lo, const f64* hi, u64 n) {
  const __m256d half = _mm256_set1_pd(0.5);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_add_pd(_mm256_loadu_pd(lo + i), _mm256_loadu_pd(hi + i));
    _mm256_storeu_pd(odd + i, _mm256_add_pd(_mm256_loadu_pd(odd + i),
                                            _mm256_mul_pd(half, s)));
  }
  for (; i < n; ++i) odd[i] += 0.5 * (lo[i] + hi[i]);
}

/// c6 * ((((0.5*m2 + 3*m1) + 5*c0) + 3*p1) + 0.5*p2), scalar operand order.
inline __m256d load_stencil(__m256d m2, __m256d m1, __m256d c0, __m256d p1,
                            __m256d p2) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d three = _mm256_set1_pd(3.0);
  const __m256d five = _mm256_set1_pd(5.0);
  const __m256d c6 = _mm256_set1_pd(1.0 / 6.0);
  __m256d t = _mm256_add_pd(_mm256_mul_pd(half, m2), _mm256_mul_pd(three, m1));
  t = _mm256_add_pd(t, _mm256_mul_pd(five, c0));
  t = _mm256_add_pd(t, _mm256_mul_pd(three, p1));
  t = _mm256_add_pd(t, _mm256_mul_pd(half, p2));
  return _mm256_mul_pd(c6, t);
}

void load_interior_d(f64* out, const f64* m2, const f64* m1, const f64* c0,
                     const f64* p1, const f64* p2, u64 n) {
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     load_stencil(_mm256_loadu_pd(m2 + i), _mm256_loadu_pd(m1 + i),
                                  _mm256_loadu_pd(c0 + i), _mm256_loadu_pd(p1 + i),
                                  _mm256_loadu_pd(p2 + i)));
  }
  for (; i < n; ++i)
    out[i] = (1.0 / 6.0) * (0.5 * m2[i] + 3 * m1[i] + 5 * c0[i] + 3 * p1[i] +
                            0.5 * p2[i]);
}

void load_boundary_d(f64* out, const f64* v0, const f64* v1, const f64* v2,
                     u64 n) {
  const __m256d w0 = _mm256_set1_pd(2.5);
  const __m256d three = _mm256_set1_pd(3.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d c6 = _mm256_set1_pd(1.0 / 6.0);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d t = _mm256_add_pd(_mm256_mul_pd(w0, _mm256_loadu_pd(v0 + i)),
                              _mm256_mul_pd(three, _mm256_loadu_pd(v1 + i)));
    t = _mm256_add_pd(t, _mm256_mul_pd(half, _mm256_loadu_pd(v2 + i)));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(c6, t));
  }
  for (; i < n; ++i)
    out[i] = (1.0 / 6.0) * (2.5 * v0[i] + 3 * v1[i] + 0.5 * v2[i]);
}

void thomas_first_d(f64* v, f64 diag, u64 n) {
  const __m256d d = _mm256_set1_pd(diag);
  u64 i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(v + i, _mm256_div_pd(_mm256_loadu_pd(v + i), d));
  for (; i < n; ++i) v[i] = v[i] / diag;
}

void thomas_fwd_d(f64* cur, const f64* prev, f64 off, f64 denom, u64 n) {
  const __m256d o = _mm256_set1_pd(off);
  const __m256d d = _mm256_set1_pd(denom);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_sub_pd(_mm256_loadu_pd(cur + i),
                                    _mm256_mul_pd(o, _mm256_loadu_pd(prev + i)));
    _mm256_storeu_pd(cur + i, _mm256_div_pd(t, d));
  }
  for (; i < n; ++i) cur[i] = (cur[i] - off * prev[i]) / denom;
}

void thomas_bwd_d(f64* cur, const f64* next, f64 cp, u64 n) {
  const __m256d c = _mm256_set1_pd(cp);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(cur + i,
                     _mm256_sub_pd(_mm256_loadu_pd(cur + i),
                                   _mm256_mul_pd(c, _mm256_loadu_pd(next + i))));
  }
  for (; i < n; ++i) cur[i] -= cp * next[i];
}

// ------------------------------------------------------------ f64 in-line x

/// {a0,a2,b0,b2} resp. {a1,a3,b1,b3} of two adjacent loads — the de-
/// interleave halves, back in memory order after the cross-lane permute.
inline __m256d deint_even(__m256d a, __m256d b) {
  return _mm256_permute4x64_pd(_mm256_unpacklo_pd(a, b), _MM_SHUFFLE(3, 1, 2, 0));
}
inline __m256d deint_odd(__m256d a, __m256d b) {
  return _mm256_permute4x64_pd(_mm256_unpackhi_pd(a, b), _MM_SHUFFLE(3, 1, 2, 0));
}

template <bool kForward>
void cascade_x_d(f64* v, u64 len) {
  const __m256d half = _mm256_set1_pd(0.5);
  u64 i = 1;
  for (; i + 7 < len; i += 8) {
    // Odd positions i, i+2, i+4, i+6; their even neighbors i-1 .. i+7.
    const __m256d a = _mm256_loadu_pd(v + i - 1);  // v[i-1 .. i+2]
    const __m256d b = _mm256_loadu_pd(v + i + 3);  // v[i+3 .. i+6]
    const __m256d el = deint_even(a, b);           // v[i-1], v[i+1], v[i+3], v[i+5]
    const __m256d od = deint_odd(a, b);            // v[i],   v[i+2], v[i+4], v[i+6]
    // Evens shifted one right: v[i+1], v[i+3], v[i+5], v[i+7].
    const __m256d sh = _mm256_permute4x64_pd(el, _MM_SHUFFLE(3, 3, 2, 1));
    const __m256d er =
        _mm256_blend_pd(sh, _mm256_broadcast_sd(v + i + 7), 0b1000);
    const __m256d s = _mm256_mul_pd(half, _mm256_add_pd(el, er));
    const __m256d no = kForward ? _mm256_sub_pd(od, s) : _mm256_add_pd(od, s);
    // Re-interleave (evens bit-unchanged) and store v[i-1 .. i+6].
    const __m256d tlo = _mm256_unpacklo_pd(el, no);
    const __m256d thi = _mm256_unpackhi_pd(el, no);
    _mm256_storeu_pd(v + i - 1, _mm256_permute2f128_pd(tlo, thi, 0x20));
    _mm256_storeu_pd(v + i + 3, _mm256_permute2f128_pd(tlo, thi, 0x31));
  }
  for (; i + 1 < len; i += 2) {
    if (kForward)
      v[i] -= 0.5 * (v[i - 1] + v[i + 1]);
    else
      v[i] += 0.5 * (v[i - 1] + v[i + 1]);
  }
}

void load_x_d(f64* out, const f64* src, u64 olen, u64 slen) {
  out[0] = (1.0 / 6.0) * (2.5 * src[0] + 3 * src[1] + 0.5 * src[2]);
  u64 i = 1;
  // Four interior outputs per sweep need src[2i-2 .. 2i+8] (11 samples).
  for (; i + 4 <= olen - 1; i += 4) {
    const __m256d a = _mm256_loadu_pd(src + 2 * i - 2);  // s[2i-2 .. 2i+1]
    const __m256d b = _mm256_loadu_pd(src + 2 * i + 2);  // s[2i+2 .. 2i+5]
    const __m256d c = _mm256_loadu_pd(src + 2 * i + 5);  // s[2i+5 .. 2i+8]
    const __m256d m2 = deint_even(a, b);  // E[i-1 .. i+2]
    const __m256d m1 = deint_odd(a, b);   // O[i-1 .. i+2]
    // C0 = E[i .. i+3]: shift m2 left, append E[i+3] = c[1].
    const __m256d c0 = _mm256_blend_pd(
        _mm256_permute4x64_pd(m2, _MM_SHUFFLE(3, 3, 2, 1)),
        _mm256_permute4x64_pd(c, _MM_SHUFFLE(1, 0, 0, 0)), 0b1000);
    // P1 = O[i .. i+3]: shift m1 left, append O[i+3] = c[2].
    const __m256d p1 = _mm256_blend_pd(
        _mm256_permute4x64_pd(m1, _MM_SHUFFLE(3, 3, 2, 1)),
        _mm256_permute4x64_pd(c, _MM_SHUFFLE(2, 0, 0, 0)), 0b1000);
    // P2 = E[i+1 .. i+4] = {m2[2], m2[3], c[1], c[3]}.
    const __m256d p2 = _mm256_blend_pd(
        _mm256_permute4x64_pd(m2, _MM_SHUFFLE(0, 0, 3, 2)),
        _mm256_permute4x64_pd(c, _MM_SHUFFLE(3, 1, 0, 0)), 0b1100);
    _mm256_storeu_pd(out + i, load_stencil(m2, m1, c0, p1, p2));
  }
  for (; i + 1 < olen; ++i) {
    const f64* p = src + 2 * i;
    out[i] = (1.0 / 6.0) *
             (0.5 * p[-2] + 3 * p[-1] + 5 * p[0] + 3 * p[1] + 0.5 * p[2]);
  }
  if (olen > 1) {
    const f64* e = src + (slen - 1);
    out[olen - 1] = (1.0 / 6.0) * (2.5 * e[0] + 3 * e[-1] + 0.5 * e[-2]);
  }
}

// ----------------------------------------------------- f64 movement kernels

void gather_stride_d(f64* dst, const f64* src, u64 n, u64 stride) {
  if (stride == 1) {
    u64 i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
    for (; i < n; ++i) dst[i] = src[i];
    return;
  }
  for (u64 i = 0; i < n; ++i) dst[i] = src[i * stride];
}

void scatter_stride_d(f64* dst, const f64* src, u64 n, u64 stride) {
  if (stride == 1) {
    u64 i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
    for (; i < n; ++i) dst[i] = src[i];
    return;
  }
  for (u64 i = 0; i < n; ++i) dst[i * stride] = src[i];
}

void copy_zero_d(f64* dst, const f64* src, u64 n, u64 zstride) {
  const __m256d zero = _mm256_setzero_pd();
  if (zstride == 1) {
    u64 i = 0;
    for (; i + 4 <= n; i += 4) _mm256_storeu_pd(dst + i, zero);
    for (; i < n; ++i) dst[i] = 0;
    return;
  }
  if (zstride == 2) {
    u64 i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(dst + i,
                       _mm256_blend_pd(_mm256_loadu_pd(src + i), zero, 0b0101));
    for (; i < n; ++i) dst[i] = (i % 2 == 0) ? 0 : src[i];
    return;
  }
  u64 i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
  for (; i < n; ++i) dst[i] = src[i];
  for (u64 z = 0; z < n; z += zstride) dst[z] = 0;
}

void pack_panel_d(f64* dst, const f64* src, u64 w, u64 len, u64 line_stride) {
  u64 i = 0;
  if (w % 4 == 0) {
    for (; i + 4 <= len; i += 4) {
      for (u64 l = 0; l + 4 <= w; l += 4) {
        // 4x4 transpose: rows are lines l..l+3 at columns i..i+3.
        const __m256d r0 = _mm256_loadu_pd(src + (l + 0) * line_stride + i);
        const __m256d r1 = _mm256_loadu_pd(src + (l + 1) * line_stride + i);
        const __m256d r2 = _mm256_loadu_pd(src + (l + 2) * line_stride + i);
        const __m256d r3 = _mm256_loadu_pd(src + (l + 3) * line_stride + i);
        const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
        const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
        const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
        const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
        _mm256_storeu_pd(dst + (i + 0) * w + l, _mm256_permute2f128_pd(t0, t2, 0x20));
        _mm256_storeu_pd(dst + (i + 1) * w + l, _mm256_permute2f128_pd(t1, t3, 0x20));
        _mm256_storeu_pd(dst + (i + 2) * w + l, _mm256_permute2f128_pd(t0, t2, 0x31));
        _mm256_storeu_pd(dst + (i + 3) * w + l, _mm256_permute2f128_pd(t1, t3, 0x31));
      }
    }
  }
  for (; i < len; ++i)
    for (u64 l = 0; l < w; ++l) dst[i * w + l] = src[l * line_stride + i];
}

void unpack_panel_d(f64* dst, const f64* src, u64 w, u64 len, u64 line_stride) {
  u64 i = 0;
  if (w % 4 == 0) {
    for (; i + 4 <= len; i += 4) {
      for (u64 l = 0; l + 4 <= w; l += 4) {
        const __m256d r0 = _mm256_loadu_pd(src + (i + 0) * w + l);
        const __m256d r1 = _mm256_loadu_pd(src + (i + 1) * w + l);
        const __m256d r2 = _mm256_loadu_pd(src + (i + 2) * w + l);
        const __m256d r3 = _mm256_loadu_pd(src + (i + 3) * w + l);
        const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
        const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
        const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
        const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
        _mm256_storeu_pd(dst + (l + 0) * line_stride + i, _mm256_permute2f128_pd(t0, t2, 0x20));
        _mm256_storeu_pd(dst + (l + 1) * line_stride + i, _mm256_permute2f128_pd(t1, t3, 0x20));
        _mm256_storeu_pd(dst + (l + 2) * line_stride + i, _mm256_permute2f128_pd(t0, t2, 0x31));
        _mm256_storeu_pd(dst + (l + 3) * line_stride + i, _mm256_permute2f128_pd(t1, t3, 0x31));
      }
    }
  }
  for (; i < len; ++i)
    for (u64 l = 0; l < w; ++l) dst[l * line_stride + i] = src[i * w + l];
}

// ---------------------------------------------------------------- f32 rows

void cascade_fwd_f(f32* odd, const f32* lo, const f32* hi, u64 n) {
  const __m256 half = _mm256_set1_ps(0.5f);
  u64 i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 s = _mm256_add_ps(_mm256_loadu_ps(lo + i), _mm256_loadu_ps(hi + i));
    _mm256_storeu_ps(odd + i, _mm256_sub_ps(_mm256_loadu_ps(odd + i),
                                            _mm256_mul_ps(half, s)));
  }
  for (; i < n; ++i) odd[i] -= 0.5f * (lo[i] + hi[i]);
}

void cascade_inv_f(f32* odd, const f32* lo, const f32* hi, u64 n) {
  const __m256 half = _mm256_set1_ps(0.5f);
  u64 i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 s = _mm256_add_ps(_mm256_loadu_ps(lo + i), _mm256_loadu_ps(hi + i));
    _mm256_storeu_ps(odd + i, _mm256_add_ps(_mm256_loadu_ps(odd + i),
                                            _mm256_mul_ps(half, s)));
  }
  for (; i < n; ++i) odd[i] += 0.5f * (lo[i] + hi[i]);
}

void load_interior_f(f32* out, const f32* m2, const f32* m1, const f32* c0,
                     const f32* p1, const f32* p2, u64 n) {
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 three = _mm256_set1_ps(3.0f);
  const __m256 five = _mm256_set1_ps(5.0f);
  const __m256 c6 = _mm256_set1_ps(static_cast<f32>(1.0 / 6.0));
  u64 i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_add_ps(_mm256_mul_ps(half, _mm256_loadu_ps(m2 + i)),
                             _mm256_mul_ps(three, _mm256_loadu_ps(m1 + i)));
    t = _mm256_add_ps(t, _mm256_mul_ps(five, _mm256_loadu_ps(c0 + i)));
    t = _mm256_add_ps(t, _mm256_mul_ps(three, _mm256_loadu_ps(p1 + i)));
    t = _mm256_add_ps(t, _mm256_mul_ps(half, _mm256_loadu_ps(p2 + i)));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(c6, t));
  }
  const f32 c6s = static_cast<f32>(1.0 / 6.0);
  for (; i < n; ++i)
    out[i] = c6s * (0.5f * m2[i] + 3 * m1[i] + 5 * c0[i] + 3 * p1[i] +
                    0.5f * p2[i]);
}

void load_boundary_f(f32* out, const f32* v0, const f32* v1, const f32* v2,
                     u64 n) {
  const __m256 w0 = _mm256_set1_ps(2.5f);
  const __m256 three = _mm256_set1_ps(3.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 c6 = _mm256_set1_ps(static_cast<f32>(1.0 / 6.0));
  u64 i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_add_ps(_mm256_mul_ps(w0, _mm256_loadu_ps(v0 + i)),
                             _mm256_mul_ps(three, _mm256_loadu_ps(v1 + i)));
    t = _mm256_add_ps(t, _mm256_mul_ps(half, _mm256_loadu_ps(v2 + i)));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(c6, t));
  }
  const f32 c6s = static_cast<f32>(1.0 / 6.0);
  for (; i < n; ++i) out[i] = c6s * (2.5f * v0[i] + 3 * v1[i] + 0.5f * v2[i]);
}

// f32 Thomas rows run in f64 lanes, mirroring the scalar code's f64
// intermediates: widen 4 floats, compute in pd, narrow back.

void thomas_first_f(f32* v, f64 diag, u64 n) {
  const __m256d d = _mm256_set1_pd(diag);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
    _mm_storeu_ps(v + i, _mm256_cvtpd_ps(_mm256_div_pd(x, d)));
  }
  for (; i < n; ++i) v[i] = static_cast<f32>(v[i] / diag);
}

void thomas_fwd_f(f32* cur, const f32* prev, f64 off, f64 denom, u64 n) {
  const __m256d o = _mm256_set1_pd(off);
  const __m256d d = _mm256_set1_pd(denom);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d c = _mm256_cvtps_pd(_mm_loadu_ps(cur + i));
    const __m256d p = _mm256_cvtps_pd(_mm_loadu_ps(prev + i));
    const __m256d t = _mm256_div_pd(_mm256_sub_pd(c, _mm256_mul_pd(o, p)), d);
    _mm_storeu_ps(cur + i, _mm256_cvtpd_ps(t));
  }
  for (; i < n; ++i)
    cur[i] = static_cast<f32>((cur[i] - off * prev[i]) / denom);
}

void thomas_bwd_f(f32* cur, const f32* next, f64 cp, u64 n) {
  // rhs = f32(cp * next) in f64, then the subtraction happens in f32.
  const __m256d c = _mm256_set1_pd(cp);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nx = _mm256_cvtps_pd(_mm_loadu_ps(next + i));
    const __m128 rhs = _mm256_cvtpd_ps(_mm256_mul_pd(c, nx));
    _mm_storeu_ps(cur + i, _mm_sub_ps(_mm_loadu_ps(cur + i), rhs));
  }
  for (; i < n; ++i) cur[i] -= static_cast<f32>(cp * next[i]);
}

// f32 in-line x kernels: 8-lane de-interleave of a 16-float window. Lane
// math uses the exact scalar operand order (mul/add only, no FMA), so the
// results stay bit-identical to the scalar reference.

/// Even offsets (0,2,..,14) of the 16-float window [a|b] into lanes 0..7.
inline __m256 deint_even_ps(__m256 a, __m256 b) {
  const __m256i fix = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  return _mm256_permutevar8x32_ps(
      _mm256_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0)), fix);
}

/// Odd offsets (1,3,..,15) of the 16-float window [a|b] into lanes 0..7.
inline __m256 deint_odd_ps(__m256 a, __m256 b) {
  const __m256i fix = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  return _mm256_permutevar8x32_ps(
      _mm256_shuffle_ps(a, b, _MM_SHUFFLE(3, 1, 3, 1)), fix);
}

/// Shift lanes down by one (lane k takes lane k+1) and feed `last` into the
/// vacated top lane.
inline __m256 shift1_ps(__m256 v, f32 last) {
  const __m256i rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 7);
  return _mm256_blend_ps(_mm256_permutevar8x32_ps(v, rot),
                         _mm256_set1_ps(last), 0x80);
}

/// Shared body of the forward/inverse x cascade: each 16-float window holds
/// 8 odd entries (the lifted values) and their even neighbors; the evens are
/// stored back unchanged so the interleaved store needs no masking.
template <bool kForward>
void cascade_x_f_impl(f32* v, u64 len) {
  const __m256 half = _mm256_set1_ps(0.5f);
  u64 i = 1;
  for (; i + 15 < len; i += 16) {
    const __m256 a = _mm256_loadu_ps(v + i - 1);
    const __m256 b = _mm256_loadu_ps(v + i + 7);
    const __m256 el = deint_even_ps(a, b);        // v[i-1 + 2k]
    const __m256 od = deint_odd_ps(a, b);         // v[i   + 2k]
    const __m256 er = shift1_ps(el, v[i + 15]);   // v[i+1 + 2k]
    const __m256 s = _mm256_mul_ps(half, _mm256_add_ps(el, er));
    const __m256 no = kForward ? _mm256_sub_ps(od, s) : _mm256_add_ps(od, s);
    const __m256 t0 = _mm256_unpacklo_ps(el, no);
    const __m256 t1 = _mm256_unpackhi_ps(el, no);
    _mm256_storeu_ps(v + i - 1, _mm256_permute2f128_ps(t0, t1, 0x20));
    _mm256_storeu_ps(v + i + 7, _mm256_permute2f128_ps(t0, t1, 0x31));
  }
  for (; i + 1 < len; i += 2) {
    if (kForward)
      v[i] -= 0.5f * (v[i - 1] + v[i + 1]);
    else
      v[i] += 0.5f * (v[i - 1] + v[i + 1]);
  }
}

void cascade_fwd_x_f(f32* v, u64 len) { cascade_x_f_impl<true>(v, len); }

void cascade_inv_x_f(f32* v, u64 len) { cascade_x_f_impl<false>(v, len); }

void load_x_f(f32* out, const f32* src, u64 olen, u64 slen) {
  const f32 c6 = static_cast<f32>(1.0 / 6.0);
  out[0] = c6 * (2.5f * src[0] + 3 * src[1] + 0.5f * src[2]);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 three = _mm256_set1_ps(3.0f);
  const __m256 five = _mm256_set1_ps(5.0f);
  const __m256 vc6 = _mm256_set1_ps(c6);
  u64 i = 1;
  // Outputs i..i+7 must all be interior (i+7 <= olen-2); the widest read is
  // p[16] = src[2(i+8)] <= src[2*olen-2] <= src[slen-1].
  for (; i + 9 <= olen; i += 8) {
    const f32* p = src + 2 * i;
    const __m256 a = _mm256_loadu_ps(p - 2);
    const __m256 b = _mm256_loadu_ps(p + 6);
    const __m256 m2 = deint_even_ps(a, b);   // p[-2 + 2k]
    const __m256 m1 = deint_odd_ps(a, b);    // p[-1 + 2k]
    const __m256 c0 = shift1_ps(m2, p[14]);  // p[ 0 + 2k]
    const __m256 p1 = shift1_ps(m1, p[15]);  // p[ 1 + 2k]
    const __m256 p2 = shift1_ps(c0, p[16]);  // p[ 2 + 2k]
    __m256 t = _mm256_add_ps(_mm256_mul_ps(half, m2), _mm256_mul_ps(three, m1));
    t = _mm256_add_ps(t, _mm256_mul_ps(five, c0));
    t = _mm256_add_ps(t, _mm256_mul_ps(three, p1));
    t = _mm256_add_ps(t, _mm256_mul_ps(half, p2));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(vc6, t));
  }
  for (; i + 1 < olen; ++i) {
    const f32* p = src + 2 * i;
    out[i] = c6 * (0.5f * p[-2] + 3 * p[-1] + 5 * p[0] + 3 * p[1] + 0.5f * p[2]);
  }
  if (olen > 1) {
    const f32* e = src + (slen - 1);
    out[olen - 1] = c6 * (2.5f * e[0] + 3 * e[-1] + 0.5f * e[-2]);
  }
}

void gather_stride_f(f32* dst, const f32* src, u64 n, u64 stride) {
  if (stride == 1) {
    u64 i = 0;
    for (; i + 8 <= n; i += 8)
      _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
    for (; i < n; ++i) dst[i] = src[i];
    return;
  }
  for (u64 i = 0; i < n; ++i) dst[i] = src[i * stride];
}

void scatter_stride_f(f32* dst, const f32* src, u64 n, u64 stride) {
  if (stride == 1) {
    gather_stride_f(dst, src, n, 1);
    return;
  }
  for (u64 i = 0; i < n; ++i) dst[i * stride] = src[i];
}

void copy_zero_f(f32* dst, const f32* src, u64 n, u64 zstride) {
  for (u64 i = 0; i < n; ++i) dst[i] = src[i];
  for (u64 i = 0; i < n; i += zstride) dst[i] = 0;
}

void pack_panel_f(f32* dst, const f32* src, u64 w, u64 len, u64 line_stride) {
  constexpr u64 kBlock = 16;
  for (u64 i0 = 0; i0 < len; i0 += kBlock) {
    const u64 i1 = i0 + kBlock < len ? i0 + kBlock : len;
    for (u64 l = 0; l < w; ++l)
      for (u64 i = i0; i < i1; ++i) dst[i * w + l] = src[l * line_stride + i];
  }
}

void unpack_panel_f(f32* dst, const f32* src, u64 w, u64 len, u64 line_stride) {
  constexpr u64 kBlock = 16;
  for (u64 i0 = 0; i0 < len; i0 += kBlock) {
    const u64 i1 = i0 + kBlock < len ? i0 + kBlock : len;
    for (u64 l = 0; l < w; ++l)
      for (u64 i = i0; i < i1; ++i) dst[l * line_stride + i] = src[i * w + l];
  }
}

// ----------------------------------------------------------------- bitplane

f64 max_abs_avx2(const f64* v, u64 n) {
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  __m256d acc = _mm256_setzero_pd();
  u64 i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_max_pd(acc, _mm256_and_pd(_mm256_loadu_pd(v + i), absmask));
  alignas(32) f64 lanes[4];
  _mm256_store_pd(lanes, acc);
  f64 m = lanes[0];
  for (int l = 1; l < 4; ++l) m = m < lanes[l] ? lanes[l] : m;
  for (; i < n; ++i) m = m < std::fabs(v[i]) ? std::fabs(v[i]) : m;
  return m;
}

void quantize64_avx2(const f64* c, u32 valid, f64 scale, u64 block[64],
                     u64* sign_word) {
  if (valid < 64) {
    // Partial tail block (once per level): scalar reference semantics.
    u64 sw = 0;
    for (u32 i = 0; i < valid; ++i) {
      f64 m = std::fabs(c[i]) * scale;
      if (m >= 4294967295.0) m = 4294967295.0;
      block[i] = static_cast<u64>(static_cast<u32>(m));
      if (std::signbit(c[i])) sw |= u64{1} << i;
    }
    for (u32 i = valid; i < 64; ++i) block[i] = 0;
    *sign_word = sw;
    return;
  }
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d limit = _mm256_set1_pd(4294967295.0);
  const __m256d two31 = _mm256_set1_pd(2147483648.0);
  const __m256i pick_hi32 = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
  u64 sw = 0;
  for (u32 i = 0; i < 64; i += 4) {
    const __m256d x = _mm256_loadu_pd(c + i);
    sw |= static_cast<u64>(_mm256_movemask_pd(x)) << i;
    __m256d m = _mm256_mul_pd(_mm256_and_pd(x, absmask), vscale);
    m = _mm256_min_pd(m, limit);
    // Exact f64 -> u32 truncation: values >= 2^31 go through an exact
    // subtract-then-rebias (m - 2^31 is exactly representable here).
    const __m256d ge = _mm256_cmp_pd(m, two31, _CMP_GE_OQ);
    const __m128i lo = _mm256_cvttpd_epi32(m);
    const __m128i hi = _mm_add_epi32(_mm256_cvttpd_epi32(_mm256_sub_pd(m, two31)),
                                     _mm_set1_epi32(INT32_MIN));
    const __m128i mask32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(ge), pick_hi32));
    const __m128i q = _mm_blendv_epi8(lo, hi, mask32);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + i),
                        _mm256_cvtepu32_epi64(q));
  }
  *sign_word = sw;
}

/// 64x64 bit transpose with all 64 rows resident in 16 ymm registers; each
/// stage applies t = ((x >> j) ^ y) & m; x ^= t << j; y ^= t to row pairs at
/// distance j (cross-register for j >= 4, in-register shuffles for j = 2, 1).
void transpose64_avx2(u64 a[64]) {
  __m256i r[16];
  for (int k = 0; k < 16; ++k)
    r[k] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * k));

  auto stage = [](__m256i& x, __m256i& y, int j, __m256i m) {
    const __m256i t =
        _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64(x, j), y), m);
    x = _mm256_xor_si256(x, _mm256_slli_epi64(t, j));
    y = _mm256_xor_si256(y, t);
  };

  const __m256i m32 = _mm256_set1_epi64x(0x00000000FFFFFFFFll);
  const __m256i m16 = _mm256_set1_epi64x(0x0000FFFF0000FFFFll);
  const __m256i m8 = _mm256_set1_epi64x(0x00FF00FF00FF00FFll);
  const __m256i m4 = _mm256_set1_epi64x(0x0F0F0F0F0F0F0F0Fll);
  const __m256i m2 = _mm256_set1_epi64x(0x3333333333333333ll);
  const __m256i m1 = _mm256_set1_epi64x(0x5555555555555555ll);

  for (int k = 0; k < 8; ++k) stage(r[k], r[k + 8], 32, m32);
  for (int g = 0; g < 16; g += 8)
    for (int k = g; k < g + 4; ++k) stage(r[k], r[k + 4], 16, m16);
  for (int g = 0; g < 16; g += 4)
    for (int k = g; k < g + 2; ++k) stage(r[k], r[k + 2], 8, m8);
  for (int k = 0; k < 16; k += 2) stage(r[k], r[k + 1], 4, m4);

  // j = 2: partners are lanes (0,2) and (1,3) of one register.
  for (int k = 0; k < 16; ++k) {
    const __m256i y = _mm256_permute4x64_epi64(r[k], _MM_SHUFFLE(1, 0, 3, 2));
    const __m256i t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(r[k], 2), y), m2);
    // lanes {t0<<2, t1<<2, t0, t1}: valid t lives in lanes 0,1.
    const __m256i u =
        _mm256_permute2x128_si256(_mm256_slli_epi64(t, 2), t, 0x20);
    r[k] = _mm256_xor_si256(r[k], u);
  }
  // j = 1: partners are lanes (0,1) and (2,3).
  for (int k = 0; k < 16; ++k) {
    const __m256i y = _mm256_permute4x64_epi64(r[k], _MM_SHUFFLE(2, 3, 0, 1));
    const __m256i t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(r[k], 1), y), m1);
    // lanes {t0<<1, t0, t2<<1, t2}: valid t lives in lanes 0,2.
    const __m256i u = _mm256_unpacklo_epi64(_mm256_slli_epi64(t, 1), t);
    r[k] = _mm256_xor_si256(r[k], u);
  }

  for (int k = 0; k < 16; ++k)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + 4 * k), r[k]);
}

void dequantize_avx2(f64* out, const u32* q, const u64* sign_words,
                     f64 inv_scale, u32 mid, u64 n) {
  // Sign-flip masks for every 4-bit sign nibble.
  alignas(32) static const u64 kSignTable[16][4] = {
#define ROW(n4)                                                      \
  {((n4) & 1) ? 0x8000000000000000ull : 0, ((n4) & 2) ? 0x8000000000000000ull : 0, \
   ((n4) & 4) ? 0x8000000000000000ull : 0, ((n4) & 8) ? 0x8000000000000000ull : 0}
      ROW(0), ROW(1), ROW(2), ROW(3), ROW(4), ROW(5), ROW(6), ROW(7), ROW(8),
      ROW(9), ROW(10), ROW(11), ROW(12), ROW(13), ROW(14), ROW(15)
#undef ROW
  };
  const __m256i vmid = _mm256_set1_epi32(static_cast<int>(mid));
  const __m256i magic_i = _mm256_set1_epi64x(0x4330000000000000ll);
  const __m256d magic_d = _mm256_castsi256_pd(magic_i);
  const __m256d vinv = _mm256_set1_pd(inv_scale);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i q4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
    const __m256i zero64 =
        _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(q4, _mm_setzero_si128()));
    const __m128i qm = _mm_add_epi32(q4, _mm256_castsi256_si128(vmid));
    // Exact u32 -> f64: glue the value into the mantissa of 2^52, subtract.
    const __m256d f = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_cvtepu32_epi64(qm), magic_i)),
        magic_d);
    __m256d m = _mm256_mul_pd(f, vinv);
    const u32 nib =
        static_cast<u32>((sign_words[i >> 6] >> (i & 63)) & 0xF);
    m = _mm256_xor_pd(m, _mm256_load_pd(
                             reinterpret_cast<const f64*>(kSignTable[nib])));
    m = _mm256_andnot_pd(_mm256_castsi256_pd(zero64), m);
    _mm256_storeu_pd(out + i, m);
  }
  for (; i < n; ++i) {
    u32 qi = q[i];
    if (qi == 0) {
      out[i] = 0.0;
      continue;
    }
    qi += mid;
    f64 m = static_cast<f64>(qi) * inv_scale;
    if (sign_words[i >> 6] & (u64{1} << (i & 63))) m = -m;
    out[i] = m;
  }
}

template <typename T>
RowOps<T> make_avx2_row_ops();

template <>
RowOps<f64> make_avx2_row_ops<f64>() {
  RowOps<f64> ops{};
  ops.cascade_fwd = &cascade_fwd_d;
  ops.cascade_inv = &cascade_inv_d;
  ops.load_interior = &load_interior_d;
  ops.load_boundary = &load_boundary_d;
  ops.thomas_first = &thomas_first_d;
  ops.thomas_fwd = &thomas_fwd_d;
  ops.thomas_bwd = &thomas_bwd_d;
  ops.cascade_fwd_x = &cascade_x_d<true>;
  ops.cascade_inv_x = &cascade_x_d<false>;
  ops.load_x = &load_x_d;
  ops.gather_stride = &gather_stride_d;
  ops.scatter_stride = &scatter_stride_d;
  ops.copy_zero = &copy_zero_d;
  ops.pack_panel = &pack_panel_d;
  ops.unpack_panel = &unpack_panel_d;
  return ops;
}

template <>
RowOps<f32> make_avx2_row_ops<f32>() {
  RowOps<f32> ops{};
  ops.cascade_fwd = &cascade_fwd_f;
  ops.cascade_inv = &cascade_inv_f;
  ops.load_interior = &load_interior_f;
  ops.load_boundary = &load_boundary_f;
  ops.thomas_first = &thomas_first_f;
  ops.thomas_fwd = &thomas_fwd_f;
  ops.thomas_bwd = &thomas_bwd_f;
  ops.cascade_fwd_x = &cascade_fwd_x_f;
  ops.cascade_inv_x = &cascade_inv_x_f;
  ops.load_x = &load_x_f;
  ops.gather_stride = &gather_stride_f;
  ops.scatter_stride = &scatter_stride_f;
  ops.copy_zero = &copy_zero_f;
  ops.pack_panel = &pack_panel_f;
  ops.unpack_panel = &unpack_panel_f;
  return ops;
}

constexpr BitplaneOps kAvx2BitplaneOps{&max_abs_avx2, &quantize64_avx2,
                                       &transpose64_avx2, &dequantize_avx2};

// --- entropy-codec kernels ---
//
// All integer-exact, so bit-identity with the scalar tier is structural.
// rice_emit / rice_expand / sparse_expand stay on the scalar entry points
// (serial bit packing with loop-carried positions); the vector wins are the
// streaming stats, bitmap construction, set-bit extraction, and gap-length
// reduction that feed them.

void segment_stats_avx2(const u64* words, u64 n, u64* ones,
                        u64* nonzero_words) {
  // Nibble-LUT popcount (vpshufb) summed with vpsadbw, plus a 4-lane
  // zero-word compare for the nonzero count.
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  u64 nz = 0;
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo = _mm256_and_si256(v, low4);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low4);
    const __m256i pc = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                       _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(pc, zero));
    const int zmask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero)));
    nz += 4 - static_cast<u64>(__builtin_popcount(zmask));
  }
  alignas(32) u64 lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  u64 o = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    o += static_cast<u64>(__builtin_popcountll(words[i]));
    nz += (words[i] != 0);
  }
  *ones = o;
  *nonzero_words = nz;
}

/// Shuffle table for set-bit extraction: row v holds the in-byte bit indices
/// of the set bits of byte value v, front-packed.
struct BytePosTable {
  alignas(16) u8 pos[256][8];
};

constexpr BytePosTable make_byte_pos_table() {
  BytePosTable t{};
  for (u32 v = 0; v < 256; ++v) {
    u32 c = 0;
    for (u32 b = 0; b < 8; ++b)
      if ((v >> b) & 1) t.pos[v][c++] = static_cast<u8>(b);
    for (; c < 8; ++c) t.pos[v][c] = 0;
  }
  return t;
}

constexpr BytePosTable kBytePos = make_byte_pos_table();

u64 bit_positions_avx2(const u64* words, u64 n, u64* out) {
  // Table-driven extraction: one shuffle-table row per nonzero byte, widened
  // to u64 lanes and stored unconditionally (the cursor advances by the
  // byte's popcount, so over-stored lanes are overwritten by the next byte).
  // Requires the 7-entry slack past the true count that the CodecOps
  // contract reserves in `out`.
  u64 c = 0;
  for (u64 i = 0; i < n; ++i) {
    u64 w = words[i];
    if (w == 0) continue;
    const u64 wbase = i * 64;
    for (u32 b = 0; b < 8 && w != 0; ++b, w >>= 8) {
      const u32 byte = static_cast<u32>(w & 0xFF);
      if (byte == 0) continue;
      const __m128i row = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(kBytePos.pos[byte]));
      const __m256i base = _mm256_set1_epi64x(
          static_cast<long long>(wbase + u64{8} * b));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + c),
          _mm256_add_epi64(_mm256_cvtepu8_epi64(row), base));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + c + 4),
          _mm256_add_epi64(_mm256_cvtepu8_epi64(_mm_srli_epi64(row, 32)),
                           base));
      c += static_cast<u64>(__builtin_popcount(byte));
    }
  }
  return c;
}

u64 sparse_pack_avx2(const u64* words, u64 n, u64* bitmap, u64* packed) {
  // Bitmap nibbles from a 4-lane zero compare; the packed append walks only
  // the nonzero lanes of each group.
  const __m256i zero = _mm256_setzero_si256();
  u64 nz = 0;
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    u32 m = static_cast<u32>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero)))) ^
            0xF;
    bitmap[i >> 6] |= static_cast<u64>(m) << (i & 63);
    while (m != 0) {
      const u32 j = static_cast<u32>(__builtin_ctz(m));
      packed[nz++] = words[i + j];
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (words[i] != 0) {
      bitmap[i >> 6] |= u64{1} << (i & 63);
      packed[nz++] = words[i];
    }
  }
  return nz;
}

u64 rice_length_bits_avx2(const u64* pos, u64 count, u32 k) {
  // gap_i = pos_i - (pos_{i-1} + 1) for i > 0, pos_0 for i = 0; the shifted
  // gaps reduce in four u64 lanes off two unaligned loads per step.
  u64 bits = count * (u64{1} + k);
  if (count == 0) return bits;
  bits += pos[0] >> k;
  const __m256i ones4 = _mm256_set1_epi64x(1);
  __m256i acc = _mm256_setzero_si256();
  u64 i = 1;
  for (; i + 4 <= count; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + i));
    const __m256i prv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + i - 1));
    const __m256i gap = _mm256_sub_epi64(cur, _mm256_add_epi64(prv, ones4));
    acc = _mm256_add_epi64(acc, _mm256_srli_epi64(gap, static_cast<int>(k)));
  }
  alignas(32) u64 lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  bits += lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < count; ++i) bits += (pos[i] - pos[i - 1] - 1) >> k;
  return bits;
}

}  // namespace

namespace detail {

template <typename T>
const RowOps<T>& row_ops_avx2() {
  static const RowOps<T> ops = make_avx2_row_ops<T>();
  return ops;
}

const BitplaneOps& bitplane_ops_avx2() { return kAvx2BitplaneOps; }

const CodecOps& codec_ops_avx2() {
  static const CodecOps ops = [] {
    CodecOps t = codec_ops_scalar();  // serial bit-packing entry points
    t.segment_stats = &segment_stats_avx2;
    t.bit_positions = &bit_positions_avx2;
    t.sparse_pack = &sparse_pack_avx2;
    t.rice_length_bits = &rice_length_bits_avx2;
    return t;
  }();
  return ops;
}

template const RowOps<f32>& row_ops_avx2<f32>();
template const RowOps<f64>& row_ops_avx2<f64>();

}  // namespace detail
}  // namespace rapids::mgard::kernels

#else  // non-x86: forward to the scalar reference.

namespace rapids::mgard::kernels::detail {

template <typename T>
const RowOps<T>& row_ops_avx2() {
  return row_ops_scalar<T>();
}

const BitplaneOps& bitplane_ops_avx2() { return bitplane_ops_scalar(); }

const CodecOps& codec_ops_avx2() { return codec_ops_scalar(); }

template const RowOps<f32>& row_ops_avx2<f32>();
template const RowOps<f64>& row_ops_avx2<f64>();

}  // namespace rapids::mgard::kernels::detail

#endif
