#pragma once

/// \file kernels.hpp
/// Panel-major compute kernels for the multigrid refactor/reconstruct hot
/// path, behind the same runtime ISA dispatch as the byte-domain kernels in
/// src/rapids/simd/ (scalar / AVX2 / NEON, honoring RAPIDS_FORCE_SCALAR and
/// simd::set_isa_override).
///
/// The decompose/recompose sweeps are restructured so that every inner loop
/// is unit-stride: sweeps along y and z walk whole contiguous x-rows at a
/// time (the "panel" of the GPU refactoring papers), and the per-line Thomas
/// solve along x is run over register-width batches of independent lines via
/// a small panel transpose. Because vectorization always runs *across*
/// independent coefficients — never by reassociating the arithmetic of one
/// coefficient — every kernel is required to produce bit-identical results
/// to its scalar reference; tests/kernel_test.cpp enforces this for every
/// entry point on awkward shapes.
///
/// Two dispatch tables exist per element type:
///   row_ops<T>()        — the ISA the dispatcher selected
///   row_ops_scalar<T>() — the portable reference (also the FORCE_SCALAR path)
/// The scalar translation unit is compiled with -fno-tree-vectorize so the
/// reference stays honestly scalar: it is the bit-identity arbiter and the
/// baseline the benchmarks report speedups against.

#include "rapids/simd/cpu_features.hpp"
#include "rapids/util/common.hpp"

namespace rapids::mgard::kernels {

/// Unit-stride kernels over rows of coefficients. All pointers may alias only
/// where a kernel writes the row it reads (cascade_*_x, thomas_*); distinct
/// row arguments must not overlap. `n` is the element count of every row.
///
/// Floating-point contract: each kernel evaluates, per element, exactly the
/// expression of the scalar reference (same operand order, same f64
/// intermediates for the Thomas kernels even when T = f32), so scalar and
/// SIMD variants are bit-identical.
template <typename T>
struct RowOps {
  /// odd[i] -= 0.5 * (lo[i] + hi[i]) — forward interpolation cascade row.
  void (*cascade_fwd)(T* odd, const T* lo, const T* hi, u64 n);
  /// odd[i] += 0.5 * (lo[i] + hi[i]) — inverse cascade row.
  void (*cascade_inv)(T* odd, const T* lo, const T* hi, u64 n);
  /// out[i] = 1/6 * (0.5*m2[i] + 3*m1[i] + 5*c0[i] + 3*p1[i] + 0.5*p2[i]).
  void (*load_interior)(T* out, const T* m2, const T* m1, const T* c0,
                        const T* p1, const T* p2, u64 n);
  /// out[i] = 1/6 * (2.5*v0[i] + 3*v1[i] + 0.5*v2[i]) — load boundary row.
  void (*load_boundary)(T* out, const T* v0, const T* v1, const T* v2, u64 n);
  /// v[i] = T(v[i] / diag) — first row of the Thomas forward sweep.
  void (*thomas_first)(T* v, f64 diag, u64 n);
  /// cur[i] = T((cur[i] - off * prev[i]) / denom) — Thomas forward row.
  void (*thomas_fwd)(T* cur, const T* prev, f64 off, f64 denom, u64 n);
  /// cur[i] -= T(cp * next[i]) — Thomas backward row.
  void (*thomas_bwd)(T* cur, const T* next, f64 cp, u64 n);

  /// In-line cascade along x: v[i] -=/+= 0.5*(v[i-1]+v[i+1]) at odd i,
  /// 1 <= i < len-1. Vectorized by de-interleaving even/odd positions.
  void (*cascade_fwd_x)(T* v, u64 len);
  void (*cascade_inv_x)(T* v, u64 len);
  /// Full 1-D load stencil along x (boundaries included): olen outputs from
  /// slen = 2*olen-1 strided samples, identical to the y/z stencils above.
  void (*load_x)(T* out, const T* src, u64 olen, u64 slen);

  /// dst[i] = src[i * stride] for i in [0, n) — strided gather of one line.
  void (*gather_stride)(T* dst, const T* src, u64 n, u64 stride);
  /// dst[i * stride] = src[i] — strided scatter of one line.
  void (*scatter_stride)(T* dst, const T* src, u64 n, u64 stride);
  /// dst[i] = (i % zstride == 0) ? 0 : src[i] — residual row copy that zeroes
  /// the coarse positions in one pass (zstride == 1 zeroes the whole row).
  void (*copy_zero)(T* dst, const T* src, u64 n, u64 zstride);

  /// Panel transpose for the x-axis Thomas batch: dst[i*w + l] =
  /// src[l*line_stride + i] (pack) and its inverse (unpack), for w lines of
  /// len elements. dst and src must not overlap.
  void (*pack_panel)(T* dst, const T* src, u64 w, u64 len, u64 line_stride);
  void (*unpack_panel)(T* dst, const T* src, u64 w, u64 len, u64 line_stride);
};

/// Bitplane-side kernels: quantization fused with the 64x64 bit transpose,
/// and the inverse sign/magnitude materialization.
struct BitplaneOps {
  /// max(|v[i]|) — exact under any association, so SIMD reduction is safe.
  f64 (*max_abs)(const f64* v, u64 n);
  /// Quantize up to 64 coefficients: block[i] = u64(u32(min(|c[i]|*scale,
  /// 2^32-1))) for i < valid, 0 beyond; *sign_word collects signbit(c[i])
  /// at bit i. Exactly the scalar quantizer of encode_planes.
  void (*quantize64)(const f64* c, u32 valid, f64 scale, u64 block[64],
                     u64* sign_word);
  /// In-place 64x64 bit-matrix transpose (involution).
  void (*transpose64)(u64 a[64]);
  /// out[i] = q[i] == 0 ? 0 : +-(f64(q[i] + mid) * inv_scale) with the sign
  /// from bit i of sign_words. Caller-chunked on 64-coefficient boundaries so
  /// sign bit i of a chunk is bit i of its first sign word.
  void (*dequantize)(f64* out, const u32* q, const u64* sign_words,
                     f64 inv_scale, u32 mid, u64 n);
};

/// Entropy-codec kernels for the plane-segment coder (bitplane.cpp). Every
/// kernel is integer-exact, so any implementation tier yields byte-identical
/// encoded segments — the bit-identity matrix in kernel_test enforces it per
/// entry point. Buffers marked "pre-zeroed" must be zero-filled by the caller;
/// kernels only OR bits in.
struct CodecOps {
  /// *ones = popcount over words[0..n), *nonzero_words = #(words[i] != 0).
  void (*segment_stats)(const u64* words, u64 n, u64* ones,
                        u64* nonzero_words);
  /// Write the ascending absolute positions of every set bit in words[0..n)
  /// to out. `out` must have room for count + 7 entries (count from
  /// segment_stats): vector tiers store full table rows and let the cursor
  /// overwrite the slack. Returns the count written.
  u64 (*bit_positions)(const u64* words, u64 n, u64* out);
  /// bitmap bit i = (words[i] != 0) (bitmap pre-zeroed, ceil(n/64) words);
  /// packed collects the nonzero words in order. Returns #nonzero words.
  u64 (*sparse_pack)(const u64* words, u64 n, u64* bitmap, u64* packed);
  /// Inverse of sparse_pack: scatter packed words into words[0..n)
  /// (pre-zeroed) at the bitmap's set positions. Returns #words consumed.
  u64 (*sparse_expand)(u64* words, u64 n, const u64* bitmap,
                       const u64* packed);
  /// Exact bit length of the Rice gap stream for set-bit positions
  /// pos[0..count) at parameter k: sum(gap_i >> k) + count * (1 + k).
  u64 (*rice_length_bits)(const u64* pos, u64 count, u32 k);
  /// Emit that gap stream (LSB-first within 64-bit words) into bits
  /// (pre-zeroed, ceil(rice_length_bits/64) words).
  void (*rice_emit)(const u64* pos, u64 count, u32 k, u64* bits);
  /// Decode `ones` Rice gaps from stream[0..ceil(stream_bits/64)) (LSB-first,
  /// zero-padded past stream_bits) and set the positions in words
  /// (pre-zeroed, ceil(num_bits/64) words). Returns false on any malformed
  /// body: truncated stream, gap overflow, or a position >= num_bits.
  bool (*rice_expand)(const u64* stream, u64 stream_bits, u64 ones, u32 k,
                      u64 num_bits, u64* words);
};

/// Dispatched tables (test override > RAPIDS_FORCE_SCALAR > best ISA). The
/// lookup re-reads simd::active_isa() every call so overrides take effect
/// immediately; the tables themselves are static.
template <typename T>
const RowOps<T>& row_ops();
const BitplaneOps& bitplane_ops();
const CodecOps& codec_ops();

/// The portable scalar reference tables.
template <typename T>
const RowOps<T>& row_ops_scalar();
const BitplaneOps& bitplane_ops_scalar();
const CodecOps& codec_ops_scalar();

/// Table for an explicit ISA level (used by tests and benchmarks to pin a
/// tier). Unsupported levels fall back to scalar.
template <typename T>
const RowOps<T>& row_ops_at(simd::IsaLevel level);
const BitplaneOps& bitplane_ops_at(simd::IsaLevel level);
const CodecOps& codec_ops_at(simd::IsaLevel level);

/// Number of independent x-lines batched per Thomas panel sweep. Wide enough
/// that several vector division chains overlap; one panel of f64 scratch is
/// kPanelWidth * len elements (L1/L2 resident for every grid this code sees).
inline constexpr u64 kThomasPanelWidth = 16;

/// Chunk grain (in lines) targeting ~192 KiB of working set per task, so a
/// chunk's lines stay L2-resident across a fused pass. Used to tune
/// parallel_for_chunks instead of the default ~4-chunks-per-worker split.
inline u64 grain_for_lines(u64 bytes_per_line) {
  constexpr u64 kTargetBytes = 192 * 1024;
  if (bytes_per_line == 0) return 1;
  const u64 g = kTargetBytes / bytes_per_line;
  return g == 0 ? 1 : g;
}

// Implementation detail: per-ISA table providers, each defined in its own
// translation unit compiled with that ISA's flags (see src/CMakeLists.txt).
// On foreign architectures they return the scalar tables.
namespace detail {
template <typename T>
const RowOps<T>& row_ops_avx2();
const BitplaneOps& bitplane_ops_avx2();
const CodecOps& codec_ops_avx2();
template <typename T>
const RowOps<T>& row_ops_neon();
const BitplaneOps& bitplane_ops_neon();
const CodecOps& codec_ops_neon();
}  // namespace detail

}  // namespace rapids::mgard::kernels
