#include "rapids/mgard/kernels/kernels.hpp"

// NEON tier of the multigrid refactor kernels (AArch64 only; on other
// architectures this TU forwards to the scalar reference). Same bit-identity
// contract as the AVX2 tier: 2-lane f64 / 4-lane f32 arithmetic across
// independent coefficients, per-element operand order exactly as the scalar
// expression, no fused multiply-add.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace rapids::mgard::kernels {
namespace {

void cascade_fwd_d(f64* odd, const f64* lo, const f64* hi, u64 n) {
  const float64x2_t half = vdupq_n_f64(0.5);
  u64 i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t s = vaddq_f64(vld1q_f64(lo + i), vld1q_f64(hi + i));
    vst1q_f64(odd + i, vsubq_f64(vld1q_f64(odd + i), vmulq_f64(half, s)));
  }
  for (; i < n; ++i) odd[i] -= 0.5 * (lo[i] + hi[i]);
}

void cascade_inv_d(f64* odd, const f64* lo, const f64* hi, u64 n) {
  const float64x2_t half = vdupq_n_f64(0.5);
  u64 i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t s = vaddq_f64(vld1q_f64(lo + i), vld1q_f64(hi + i));
    vst1q_f64(odd + i, vaddq_f64(vld1q_f64(odd + i), vmulq_f64(half, s)));
  }
  for (; i < n; ++i) odd[i] += 0.5 * (lo[i] + hi[i]);
}

void load_interior_d(f64* out, const f64* m2, const f64* m1, const f64* c0,
                     const f64* p1, const f64* p2, u64 n) {
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t three = vdupq_n_f64(3.0);
  const float64x2_t five = vdupq_n_f64(5.0);
  const float64x2_t c6 = vdupq_n_f64(1.0 / 6.0);
  u64 i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t t = vaddq_f64(vmulq_f64(half, vld1q_f64(m2 + i)),
                              vmulq_f64(three, vld1q_f64(m1 + i)));
    t = vaddq_f64(t, vmulq_f64(five, vld1q_f64(c0 + i)));
    t = vaddq_f64(t, vmulq_f64(three, vld1q_f64(p1 + i)));
    t = vaddq_f64(t, vmulq_f64(half, vld1q_f64(p2 + i)));
    vst1q_f64(out + i, vmulq_f64(c6, t));
  }
  for (; i < n; ++i)
    out[i] = (1.0 / 6.0) * (0.5 * m2[i] + 3 * m1[i] + 5 * c0[i] + 3 * p1[i] +
                            0.5 * p2[i]);
}

void load_boundary_d(f64* out, const f64* v0, const f64* v1, const f64* v2,
                     u64 n) {
  const float64x2_t w0 = vdupq_n_f64(2.5);
  const float64x2_t three = vdupq_n_f64(3.0);
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t c6 = vdupq_n_f64(1.0 / 6.0);
  u64 i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t t = vaddq_f64(vmulq_f64(w0, vld1q_f64(v0 + i)),
                              vmulq_f64(three, vld1q_f64(v1 + i)));
    t = vaddq_f64(t, vmulq_f64(half, vld1q_f64(v2 + i)));
    vst1q_f64(out + i, vmulq_f64(c6, t));
  }
  for (; i < n; ++i)
    out[i] = (1.0 / 6.0) * (2.5 * v0[i] + 3 * v1[i] + 0.5 * v2[i]);
}

void thomas_first_d(f64* v, f64 diag, u64 n) {
  const float64x2_t d = vdupq_n_f64(diag);
  u64 i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(v + i, vdivq_f64(vld1q_f64(v + i), d));
  for (; i < n; ++i) v[i] = v[i] / diag;
}

void thomas_fwd_d(f64* cur, const f64* prev, f64 off, f64 denom, u64 n) {
  const float64x2_t o = vdupq_n_f64(off);
  const float64x2_t d = vdupq_n_f64(denom);
  u64 i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t t =
        vsubq_f64(vld1q_f64(cur + i), vmulq_f64(o, vld1q_f64(prev + i)));
    vst1q_f64(cur + i, vdivq_f64(t, d));
  }
  for (; i < n; ++i) cur[i] = (cur[i] - off * prev[i]) / denom;
}

void thomas_bwd_d(f64* cur, const f64* next, f64 cp, u64 n) {
  const float64x2_t c = vdupq_n_f64(cp);
  u64 i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(cur + i, vsubq_f64(vld1q_f64(cur + i),
                                 vmulq_f64(c, vld1q_f64(next + i))));
  }
  for (; i < n; ++i) cur[i] -= cp * next[i];
}

void cascade_fwd_f(f32* odd, const f32* lo, const f32* hi, u64 n) {
  const float32x4_t half = vdupq_n_f32(0.5f);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t s = vaddq_f32(vld1q_f32(lo + i), vld1q_f32(hi + i));
    vst1q_f32(odd + i, vsubq_f32(vld1q_f32(odd + i), vmulq_f32(half, s)));
  }
  for (; i < n; ++i) odd[i] -= 0.5f * (lo[i] + hi[i]);
}

void cascade_inv_f(f32* odd, const f32* lo, const f32* hi, u64 n) {
  const float32x4_t half = vdupq_n_f32(0.5f);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t s = vaddq_f32(vld1q_f32(lo + i), vld1q_f32(hi + i));
    vst1q_f32(odd + i, vaddq_f32(vld1q_f32(odd + i), vmulq_f32(half, s)));
  }
  for (; i < n; ++i) odd[i] += 0.5f * (lo[i] + hi[i]);
}

void load_interior_f(f32* out, const f32* m2, const f32* m1, const f32* c0,
                     const f32* p1, const f32* p2, u64 n) {
  const float32x4_t half = vdupq_n_f32(0.5f);
  const float32x4_t three = vdupq_n_f32(3.0f);
  const float32x4_t five = vdupq_n_f32(5.0f);
  const float32x4_t c6 = vdupq_n_f32(static_cast<f32>(1.0 / 6.0));
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t t = vaddq_f32(vmulq_f32(half, vld1q_f32(m2 + i)),
                              vmulq_f32(three, vld1q_f32(m1 + i)));
    t = vaddq_f32(t, vmulq_f32(five, vld1q_f32(c0 + i)));
    t = vaddq_f32(t, vmulq_f32(three, vld1q_f32(p1 + i)));
    t = vaddq_f32(t, vmulq_f32(half, vld1q_f32(p2 + i)));
    vst1q_f32(out + i, vmulq_f32(c6, t));
  }
  const f32 c6s = static_cast<f32>(1.0 / 6.0);
  for (; i < n; ++i)
    out[i] = c6s * (0.5f * m2[i] + 3 * m1[i] + 5 * c0[i] + 3 * p1[i] +
                    0.5f * p2[i]);
}

void load_boundary_f(f32* out, const f32* v0, const f32* v1, const f32* v2,
                     u64 n) {
  const float32x4_t w0 = vdupq_n_f32(2.5f);
  const float32x4_t three = vdupq_n_f32(3.0f);
  const float32x4_t half = vdupq_n_f32(0.5f);
  const float32x4_t c6 = vdupq_n_f32(static_cast<f32>(1.0 / 6.0));
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t t = vaddq_f32(vmulq_f32(w0, vld1q_f32(v0 + i)),
                              vmulq_f32(three, vld1q_f32(v1 + i)));
    t = vaddq_f32(t, vmulq_f32(half, vld1q_f32(v2 + i)));
    vst1q_f32(out + i, vmulq_f32(c6, t));
  }
  const f32 c6s = static_cast<f32>(1.0 / 6.0);
  for (; i < n; ++i) out[i] = c6s * (2.5f * v0[i] + 3 * v1[i] + 0.5f * v2[i]);
}

// f32 Thomas rows widen to f64 pairs to match the scalar f64 intermediates.

void thomas_first_f(f32* v, f64 diag, u64 n) {
  const float64x2_t d = vdupq_n_f64(diag);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t x = vld1q_f32(v + i);
    const float64x2_t lo = vdivq_f64(vcvt_f64_f32(vget_low_f32(x)), d);
    const float64x2_t hi = vdivq_f64(vcvt_high_f64_f32(x), d);
    vst1q_f32(v + i, vcombine_f32(vcvt_f32_f64(lo), vcvt_f32_f64(hi)));
  }
  for (; i < n; ++i) v[i] = static_cast<f32>(v[i] / diag);
}

void thomas_fwd_f(f32* cur, const f32* prev, f64 off, f64 denom, u64 n) {
  const float64x2_t o = vdupq_n_f64(off);
  const float64x2_t d = vdupq_n_f64(denom);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t c = vld1q_f32(cur + i);
    const float32x4_t p = vld1q_f32(prev + i);
    const float64x2_t lo = vdivq_f64(
        vsubq_f64(vcvt_f64_f32(vget_low_f32(c)),
                  vmulq_f64(o, vcvt_f64_f32(vget_low_f32(p)))),
        d);
    const float64x2_t hi = vdivq_f64(
        vsubq_f64(vcvt_high_f64_f32(c), vmulq_f64(o, vcvt_high_f64_f32(p))), d);
    vst1q_f32(cur + i, vcombine_f32(vcvt_f32_f64(lo), vcvt_f32_f64(hi)));
  }
  for (; i < n; ++i)
    cur[i] = static_cast<f32>((cur[i] - off * prev[i]) / denom);
}

void thomas_bwd_f(f32* cur, const f32* next, f64 cp, u64 n) {
  const float64x2_t c = vdupq_n_f64(cp);
  u64 i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t nx = vld1q_f32(next + i);
    const float32x4_t rhs =
        vcombine_f32(vcvt_f32_f64(vmulq_f64(c, vcvt_f64_f32(vget_low_f32(nx)))),
                     vcvt_f32_f64(vmulq_f64(c, vcvt_high_f64_f32(nx))));
    vst1q_f32(cur + i, vsubq_f32(vld1q_f32(cur + i), rhs));
  }
  for (; i < n; ++i) cur[i] -= static_cast<f32>(cp * next[i]);
}

// In-line x kernels, movement kernels, and bitplane kernels keep the scalar
// reference shapes on NEON (the panel-major y/z sweeps above carry the bulk
// of the arithmetic; revisit if an AArch64 deployment shows up in profiles).

template <typename T>
void cascade_fwd_x_g(T* v, u64 len) {
  for (u64 i = 1; i + 1 < len; i += 2)
    v[i] -= static_cast<T>(0.5) * (v[i - 1] + v[i + 1]);
}

template <typename T>
void cascade_inv_x_g(T* v, u64 len) {
  for (u64 i = 1; i + 1 < len; i += 2)
    v[i] += static_cast<T>(0.5) * (v[i - 1] + v[i + 1]);
}

template <typename T>
void load_x_g(T* out, const T* src, u64 olen, u64 slen) {
  const T c6 = static_cast<T>(1.0 / 6.0);
  out[0] = c6 * (static_cast<T>(2.5) * src[0] + 3 * src[1] +
                 static_cast<T>(0.5) * src[2]);
  for (u64 i = 1; i + 1 < olen; ++i) {
    const T* p = src + 2 * i;
    out[i] = c6 * (static_cast<T>(0.5) * p[-2] + 3 * p[-1] + 5 * p[0] +
                   3 * p[1] + static_cast<T>(0.5) * p[2]);
  }
  if (olen > 1) {
    const T* e = src + (slen - 1);
    out[olen - 1] = c6 * (static_cast<T>(2.5) * e[0] + 3 * e[-1] +
                          static_cast<T>(0.5) * e[-2]);
  }
}

template <typename T>
void gather_stride_g(T* dst, const T* src, u64 n, u64 stride) {
  for (u64 i = 0; i < n; ++i) dst[i] = src[i * stride];
}

template <typename T>
void scatter_stride_g(T* dst, const T* src, u64 n, u64 stride) {
  for (u64 i = 0; i < n; ++i) dst[i * stride] = src[i];
}

template <typename T>
void copy_zero_g(T* dst, const T* src, u64 n, u64 zstride) {
  for (u64 i = 0; i < n; ++i) dst[i] = src[i];
  for (u64 i = 0; i < n; i += zstride) dst[i] = 0;
}

template <typename T>
void pack_panel_g(T* dst, const T* src, u64 w, u64 len, u64 line_stride) {
  constexpr u64 kBlock = 16;
  for (u64 i0 = 0; i0 < len; i0 += kBlock) {
    const u64 i1 = i0 + kBlock < len ? i0 + kBlock : len;
    for (u64 l = 0; l < w; ++l)
      for (u64 i = i0; i < i1; ++i) dst[i * w + l] = src[l * line_stride + i];
  }
}

template <typename T>
void unpack_panel_g(T* dst, const T* src, u64 w, u64 len, u64 line_stride) {
  constexpr u64 kBlock = 16;
  for (u64 i0 = 0; i0 < len; i0 += kBlock) {
    const u64 i1 = i0 + kBlock < len ? i0 + kBlock : len;
    for (u64 l = 0; l < w; ++l)
      for (u64 i = i0; i < i1; ++i) dst[l * line_stride + i] = src[i * w + l];
  }
}

template <typename T>
RowOps<T> make_neon_row_ops();

template <>
RowOps<f64> make_neon_row_ops<f64>() {
  RowOps<f64> ops{};
  ops.cascade_fwd = &cascade_fwd_d;
  ops.cascade_inv = &cascade_inv_d;
  ops.load_interior = &load_interior_d;
  ops.load_boundary = &load_boundary_d;
  ops.thomas_first = &thomas_first_d;
  ops.thomas_fwd = &thomas_fwd_d;
  ops.thomas_bwd = &thomas_bwd_d;
  ops.cascade_fwd_x = &cascade_fwd_x_g<f64>;
  ops.cascade_inv_x = &cascade_inv_x_g<f64>;
  ops.load_x = &load_x_g<f64>;
  ops.gather_stride = &gather_stride_g<f64>;
  ops.scatter_stride = &scatter_stride_g<f64>;
  ops.copy_zero = &copy_zero_g<f64>;
  ops.pack_panel = &pack_panel_g<f64>;
  ops.unpack_panel = &unpack_panel_g<f64>;
  return ops;
}

template <>
RowOps<f32> make_neon_row_ops<f32>() {
  RowOps<f32> ops{};
  ops.cascade_fwd = &cascade_fwd_f;
  ops.cascade_inv = &cascade_inv_f;
  ops.load_interior = &load_interior_f;
  ops.load_boundary = &load_boundary_f;
  ops.thomas_first = &thomas_first_f;
  ops.thomas_fwd = &thomas_fwd_f;
  ops.thomas_bwd = &thomas_bwd_f;
  ops.cascade_fwd_x = &cascade_fwd_x_g<f32>;
  ops.cascade_inv_x = &cascade_inv_x_g<f32>;
  ops.load_x = &load_x_g<f32>;
  ops.gather_stride = &gather_stride_g<f32>;
  ops.scatter_stride = &scatter_stride_g<f32>;
  ops.copy_zero = &copy_zero_g<f32>;
  ops.pack_panel = &pack_panel_g<f32>;
  ops.unpack_panel = &unpack_panel_g<f32>;
  return ops;
}

// --- entropy-codec kernels ---
//
// Integer-exact, so bit-identity with the scalar reference is structural.
// Only the streaming reductions get NEON forms; the serial bit-packing entry
// points (rice_emit / rice_expand) and the extraction/scatter loops stay on
// the scalar reference via the copied table below.

void segment_stats_neon(const u64* words, u64 n, u64* ones,
                        u64* nonzero_words) {
  uint64x2_t acc = vdupq_n_u64(0);
  u64 nz = 0;
  u64 i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(words + i);
    acc = vaddq_u64(
        acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(
                 vreinterpretq_u8_u64(v))))));
    nz += (vgetq_lane_u64(v, 0) != 0) + (vgetq_lane_u64(v, 1) != 0);
  }
  u64 o = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) {
    o += static_cast<u64>(__builtin_popcountll(words[i]));
    nz += (words[i] != 0);
  }
  *ones = o;
  *nonzero_words = nz;
}

u64 rice_length_bits_neon(const u64* pos, u64 count, u32 k) {
  u64 bits = count * (u64{1} + k);
  if (count == 0) return bits;
  bits += pos[0] >> k;
  const uint64x2_t ones2 = vdupq_n_u64(1);
  const int64x2_t shift = vdupq_n_s64(-static_cast<i64>(k));
  uint64x2_t acc = vdupq_n_u64(0);
  u64 i = 1;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t cur = vld1q_u64(pos + i);
    const uint64x2_t prv = vld1q_u64(pos + i - 1);
    const uint64x2_t gap = vsubq_u64(cur, vaddq_u64(prv, ones2));
    acc = vaddq_u64(acc, vshlq_u64(gap, shift));
  }
  bits += vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < count; ++i) bits += (pos[i] - pos[i - 1] - 1) >> k;
  return bits;
}

}  // namespace

namespace detail {

template <typename T>
const RowOps<T>& row_ops_neon() {
  static const RowOps<T> ops = make_neon_row_ops<T>();
  return ops;
}

const BitplaneOps& bitplane_ops_neon() { return bitplane_ops_scalar(); }

const CodecOps& codec_ops_neon() {
  static const CodecOps ops = [] {
    CodecOps t = codec_ops_scalar();
    t.segment_stats = &segment_stats_neon;
    t.rice_length_bits = &rice_length_bits_neon;
    return t;
  }();
  return ops;
}

template const RowOps<f32>& row_ops_neon<f32>();
template const RowOps<f64>& row_ops_neon<f64>();

}  // namespace detail
}  // namespace rapids::mgard::kernels

#else  // non-AArch64: forward to the scalar reference.

namespace rapids::mgard::kernels::detail {

template <typename T>
const RowOps<T>& row_ops_neon() {
  return row_ops_scalar<T>();
}

const BitplaneOps& bitplane_ops_neon() { return bitplane_ops_scalar(); }

const CodecOps& codec_ops_neon() { return codec_ops_scalar(); }

template const RowOps<f32>& row_ops_neon<f32>();
template const RowOps<f64>& row_ops_neon<f64>();

}  // namespace rapids::mgard::kernels::detail

#endif
