#pragma once

/// \file grid.hpp
/// Tensor-grid topology for the multilevel decomposition. Input arrays of
/// arbitrary (nx, ny, nz) are ghost-padded per axis to the next size of the
/// form c*2^L + 1 so that L dyadic coarsening steps are possible; the
/// original extent is recorded so reconstruction can crop the padding away.
///
/// Node classification: along one axis, a node index i survives coarsening
/// step t iff 2^t divides i. A node (i, j, k) is a *coarse* node of the final
/// hierarchy iff every index is divisible by 2^L; otherwise it carries a
/// detail coefficient created at step t = c+1 where c = min over axes of the
/// dyadic valuation of the index. Decomposition level d in [0, L]:
/// d = 0 holds the coarsest grid values, d = 1..L hold details, coarse to
/// fine, with node counts growing by ~2^dims per level.

#include <array>
#include <vector>

#include "rapids/util/common.hpp"

namespace rapids::mgard {

/// Extents of a (up to) 3-D array; unused trailing axes are 1.
struct Dims {
  u64 nx = 1;
  u64 ny = 1;
  u64 nz = 1;

  u64 total() const { return nx * ny * nz; }
  bool operator==(const Dims&) const = default;

  /// Number of axes with extent > 1.
  u32 dimensionality() const {
    return static_cast<u32>((nx > 1) + (ny > 1) + (nz > 1));
  }
};

/// Full topology of one decomposition hierarchy.
class GridHierarchy {
 public:
  /// Build a hierarchy over `original` extents with `levels` coarsening
  /// steps (L >= 1). Axes of extent 1 are left alone. Axes of extent >= 2
  /// are padded to c*2^L + 1.
  GridHierarchy(Dims original, u32 levels);

  Dims original() const { return original_; }
  Dims padded() const { return padded_; }
  u32 levels() const { return levels_; }

  /// Number of decomposition levels including the coarse base: levels()+1.
  u32 num_decomp_levels() const { return levels_ + 1; }

  /// Grid extent at coarsening step t (0 = full padded grid, L = coarsest).
  Dims grid_at_step(u32 t) const;

  /// Number of nodes whose coefficients live in decomposition level d
  /// (d = 0 coarse base, d = levels() finest details).
  u64 decomp_level_size(u32 d) const { return level_sizes_[d]; }

  /// Flattened row-major (x fastest) index for (i, j, k) in the padded grid.
  u64 index(u64 i, u64 j, u64 k) const {
    return (k * padded_.ny + j) * padded_.nx + i;
  }

  /// Decomposition level that owns node (i, j, k). See file comment.
  u32 level_of(u64 i, u64 j, u64 k) const;

  /// Gather/scatter maps: for each decomposition level d, the sorted list of
  /// flattened padded-grid indices of its nodes. Built lazily on first use
  /// and cached (the maps are what the bitplane encoder iterates over).
  const std::vector<u64>& level_nodes(u32 d) const;

 private:
  u32 valuation(u64 i) const;  // min(levels_, dyadic valuation of i)
  void build_level_nodes() const;

  Dims original_;
  Dims padded_;
  u32 levels_;
  std::array<u64, 3> axis_levels_{};  // effective per-axis coarsening depth
  std::vector<u64> level_sizes_;
  mutable std::vector<std::vector<u64>> level_nodes_;  // lazy cache
};

/// Pad a field from `original` extents into `padded` extents, replicating the
/// last sample along each padded axis (edge replication keeps the field
/// continuous so padding contributes only small detail coefficients).
/// `src` has original.total() elements; returns padded.total() elements.
template <typename T>
std::vector<T> pad_field(const std::vector<T>& src, Dims original, Dims padded);

/// Crop a padded field back to the original extents.
template <typename T>
std::vector<T> crop_field(const std::vector<T>& src, Dims padded, Dims original);

}  // namespace rapids::mgard
