#include "rapids/mgard/grid.hpp"

#include <algorithm>

namespace rapids::mgard {

namespace {

/// Padded extent for one axis: smallest c*2^L + 1 >= s (s >= 2), or s for
/// degenerate axes.
u64 padded_axis(u64 s, u32 levels) {
  if (s <= 1) return s;
  const u64 step = u64{1} << levels;
  return round_up(s - 1, step) + 1;
}

}  // namespace

GridHierarchy::GridHierarchy(Dims original, u32 levels)
    : original_(original), levels_(levels) {
  RAPIDS_REQUIRE_MSG(levels >= 1, "GridHierarchy: need at least one level");
  RAPIDS_REQUIRE_MSG(levels <= 20, "GridHierarchy: implausible level count");
  RAPIDS_REQUIRE_MSG(original.total() >= 2, "GridHierarchy: need >= 2 samples");
  padded_ = Dims{padded_axis(original.nx, levels), padded_axis(original.ny, levels),
                 padded_axis(original.nz, levels)};
  axis_levels_ = {original.nx > 1 ? levels_ : 0, original.ny > 1 ? levels_ : 0,
                  original.nz > 1 ? levels_ : 0};

  // Count nodes per decomposition level by classifying every padded node.
  // Done axis-factored: the level of (i,j,k) depends only on the per-axis
  // valuations, so count per-axis valuation histograms and combine.
  auto axis_histogram = [&](u64 extent) {
    // hist[v] = number of indices in [0, extent) whose valuation (capped at
    // levels_) equals v; degenerate axes put their single index at cap.
    std::vector<u64> hist(levels_ + 1, 0);
    if (extent == 1) {
      hist[levels_] = 1;
      return hist;
    }
    for (u64 i = 0; i < extent; ++i) {
      u32 v = 0;
      u64 x = i;
      while (v < levels_ && x != 0 && (x & 1) == 0) {
        ++v;
        x >>= 1;
      }
      if (i == 0) v = levels_;
      hist[v] += 1;
    }
    return hist;
  };

  const auto hx = axis_histogram(padded_.nx);
  const auto hy = axis_histogram(padded_.ny);
  const auto hz = axis_histogram(padded_.nz);

  level_sizes_.assign(levels_ + 1, 0);
  for (u32 vx = 0; vx <= levels_; ++vx)
    for (u32 vy = 0; vy <= levels_; ++vy)
      for (u32 vz = 0; vz <= levels_; ++vz) {
        const u32 c = std::min({vx, vy, vz});
        const u32 d = c == levels_ ? 0 : levels_ - c;
        level_sizes_[d] += hx[vx] * hy[vy] * hz[vz];
      }
}

Dims GridHierarchy::grid_at_step(u32 t) const {
  RAPIDS_REQUIRE(t <= levels_);
  auto shrink = [&](u64 s) {
    if (s <= 1) return s;
    return ((s - 1) >> t) + 1;
  };
  return Dims{shrink(padded_.nx), shrink(padded_.ny), shrink(padded_.nz)};
}

u32 GridHierarchy::valuation(u64 i) const {
  if (i == 0) return levels_;
  u32 v = 0;
  while (v < levels_ && (i & 1) == 0) {
    ++v;
    i >>= 1;
  }
  return v;
}

u32 GridHierarchy::level_of(u64 i, u64 j, u64 k) const {
  const u32 vx = padded_.nx == 1 ? levels_ : valuation(i);
  const u32 vy = padded_.ny == 1 ? levels_ : valuation(j);
  const u32 vz = padded_.nz == 1 ? levels_ : valuation(k);
  const u32 c = std::min({vx, vy, vz});
  return c == levels_ ? 0 : levels_ - c;
}

void GridHierarchy::build_level_nodes() const {
  level_nodes_.assign(levels_ + 1, {});
  for (u32 d = 0; d <= levels_; ++d) level_nodes_[d].reserve(level_sizes_[d]);
  for (u64 k = 0; k < padded_.nz; ++k)
    for (u64 j = 0; j < padded_.ny; ++j)
      for (u64 i = 0; i < padded_.nx; ++i)
        level_nodes_[level_of(i, j, k)].push_back(index(i, j, k));
}

const std::vector<u64>& GridHierarchy::level_nodes(u32 d) const {
  RAPIDS_REQUIRE(d <= levels_);
  if (level_nodes_.empty()) build_level_nodes();
  return level_nodes_[d];
}

template <typename T>
std::vector<T> pad_field(const std::vector<T>& src, Dims original, Dims padded) {
  RAPIDS_REQUIRE(src.size() == original.total());
  if (original == padded) return src;
  std::vector<T> out(padded.total());
  for (u64 k = 0; k < padded.nz; ++k) {
    const u64 sk = std::min(k, original.nz - 1);
    for (u64 j = 0; j < padded.ny; ++j) {
      const u64 sj = std::min(j, original.ny - 1);
      const T* row = src.data() + (sk * original.ny + sj) * original.nx;
      T* dst = out.data() + (k * padded.ny + j) * padded.nx;
      std::copy(row, row + original.nx, dst);
      for (u64 i = original.nx; i < padded.nx; ++i) dst[i] = row[original.nx - 1];
    }
  }
  return out;
}

template <typename T>
std::vector<T> crop_field(const std::vector<T>& src, Dims padded, Dims original) {
  RAPIDS_REQUIRE(src.size() == padded.total());
  if (original == padded) return src;
  std::vector<T> out(original.total());
  for (u64 k = 0; k < original.nz; ++k)
    for (u64 j = 0; j < original.ny; ++j) {
      const T* row = src.data() + (k * padded.ny + j) * padded.nx;
      std::copy(row, row + original.nx,
                out.data() + (k * original.ny + j) * original.nx);
    }
  return out;
}

template std::vector<f32> pad_field<f32>(const std::vector<f32>&, Dims, Dims);
template std::vector<f64> pad_field<f64>(const std::vector<f64>&, Dims, Dims);
template std::vector<f32> crop_field<f32>(const std::vector<f32>&, Dims, Dims);
template std::vector<f64> crop_field<f64>(const std::vector<f64>&, Dims, Dims);

}  // namespace rapids::mgard
