#include "rapids/mgard/workspace.hpp"

namespace rapids::mgard {

WorkspacePool::Lease WorkspacePool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<RefactorWorkspace> ws = std::move(free_.back());
      free_.pop_back();
      return Lease(this, std::move(ws));
    }
    ++created_;
  }
  return Lease(this, std::make_unique<RefactorWorkspace>());
}

void WorkspacePool::release(std::unique_ptr<RefactorWorkspace> ws) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ws));
}

u64 WorkspacePool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

u64 WorkspacePool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

WorkspacePool& WorkspacePool::global() {
  static WorkspacePool pool;
  return pool;
}

}  // namespace rapids::mgard
