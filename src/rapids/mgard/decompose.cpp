#include "rapids/mgard/decompose.hpp"

#include <algorithm>
#include <utility>

#include "rapids/mgard/kernels/kernels.hpp"
#include "rapids/mgard/workspace.hpp"
#include "rapids/parallel/thread_pool.hpp"

// Panel-major implementation of the multigrid transform: every sweep along y
// and z walks whole contiguous x-rows through the dispatched unit-stride row
// kernels (kernels/kernels.hpp), the x-axis Thomas solve batches
// kThomasPanelWidth independent lines per register sweep via a panel
// transpose, and the gather/scatter against the padded array is fused with
// the adjacent x cascade. Per-element arithmetic order is identical to the
// pre-panel per-line code, so results are bit-identical to it and across ISA
// tiers (tests/kernel_test.cpp holds both properties).

namespace rapids::mgard {

namespace {

using kernels::grain_for_lines;
using kernels::kThomasPanelWidth;
using kernels::RowOps;

u64 axis_extent(Dims d, u32 axis) {
  return axis == 0 ? d.nx : axis == 1 ? d.ny : d.nz;
}

/// Coarsened extents along `axis` only.
Dims coarsen_axis(Dims d, u32 axis) {
  auto shrink = [](u64 s) { return s <= 1 ? s : (s - 1) / 2 + 1; };
  if (axis == 0) d.nx = shrink(d.nx);
  else if (axis == 1) d.ny = shrink(d.ny);
  else d.nz = shrink(d.nz);
  return d;
}

/// body(lo, hi) over [0, n), striped across the pool in chunks of ~grain.
template <typename Body>
void run_chunked(ThreadPool* pool, u64 n, u64 grain, const Body& body) {
  if (n == 0) return;
  if (pool != nullptr && n > 1) {
    pool->parallel_for_chunks(0, n, body, grain);
  } else {
    body(0, n);
  }
}

/// Interpolation cascade along one axis, forward (odd nodes become residuals)
/// or inverse. Axis 0 runs the in-line kernel per row; axis 1 feeds each odd
/// row and its two even neighbors to the row kernel; axis 2 does the same
/// with whole contiguous planes.
template <typename T>
void cascade_axis(T* w, Dims dims, u32 axis, bool forward, ThreadPool* pool) {
  const RowOps<T>& ops = kernels::row_ops<T>();
  const u64 nx = dims.nx, ny = dims.ny, nz = dims.nz;
  if (axis == 0) {
    const auto fn = forward ? ops.cascade_fwd_x : ops.cascade_inv_x;
    run_chunked(pool, ny * nz, grain_for_lines(nx * sizeof(T)),
                [&](u64 lo, u64 hi) {
                  for (u64 l = lo; l < hi; ++l) fn(w + l * nx, nx);
                });
    return;
  }
  const auto fn = forward ? ops.cascade_fwd : ops.cascade_inv;
  if (axis == 1) {
    const u64 hy = (ny - 1) / 2;  // odd-j rows per z-slab
    run_chunked(pool, nz * hy, grain_for_lines(3 * nx * sizeof(T)),
                [&](u64 lo, u64 hi) {
                  for (u64 idx = lo; idx < hi; ++idx) {
                    const u64 k = idx / hy;
                    const u64 j = 2 * (idx % hy) + 1;
                    T* base = w + (k * ny + j) * nx;
                    fn(base, base - nx, base + nx, nx);
                  }
                });
  } else {
    const u64 hz = (nz - 1) / 2;  // odd planes
    const u64 plane = nx * ny;
    run_chunked(pool, hz, 1, [&](u64 lo, u64 hi) {
      for (u64 m = lo; m < hi; ++m) {
        T* base = w + (2 * m + 1) * plane;
        fn(base, base - plane, base + plane, plane);
      }
    });
  }
}

/// Apply the 1-D load operator along `axis` into `out` (coarsened extent
/// along that axis). Stencil (1/6)[0.5 3 5 3 0.5] interior, (1/6)[2.5 3 0.5]
/// at the boundary (mirrored at the far end). Axes 1/2 are pure row kernels
/// over contiguous rows/planes; axis 0 uses the strided in-line kernel.
template <typename T>
void apply_load_axis(const T* src, Dims sdims, u32 axis, T* out,
                     ThreadPool* pool) {
  const RowOps<T>& ops = kernels::row_ops<T>();
  const Dims odims = coarsen_axis(sdims, axis);
  const u64 slen = axis_extent(sdims, axis);
  RAPIDS_REQUIRE_MSG(slen >= 3 && slen % 2 == 1,
                     "apply_load: axis must be odd-sized >= 3");
  if (axis == 0) {
    run_chunked(pool, sdims.ny * sdims.nz,
                grain_for_lines(sdims.nx * sizeof(T)), [&](u64 lo, u64 hi) {
                  for (u64 l = lo; l < hi; ++l)
                    ops.load_x(out + l * odims.nx, src + l * sdims.nx,
                               odims.nx, sdims.nx);
                });
  } else if (axis == 1) {
    const u64 nx = sdims.nx, sny = sdims.ny, ony = odims.ny;
    run_chunked(pool, sdims.nz * ony, grain_for_lines(6 * nx * sizeof(T)),
                [&](u64 lo, u64 hi) {
                  for (u64 idx = lo; idx < hi; ++idx) {
                    const u64 k = idx / ony;
                    const u64 j = idx % ony;
                    const T* sb = src + k * sny * nx;
                    T* o = out + (k * ony + j) * nx;
                    if (j == 0) {
                      ops.load_boundary(o, sb, sb + nx, sb + 2 * nx, nx);
                    } else if (j + 1 == ony) {
                      ops.load_boundary(o, sb + (sny - 1) * nx,
                                        sb + (sny - 2) * nx,
                                        sb + (sny - 3) * nx, nx);
                    } else {
                      const T* c = sb + 2 * j * nx;
                      ops.load_interior(o, c - 2 * nx, c - nx, c, c + nx,
                                        c + 2 * nx, nx);
                    }
                  }
                });
  } else {
    const u64 pw = sdims.nx * sdims.ny, snz = sdims.nz, onz = odims.nz;
    run_chunked(pool, onz, 1, [&](u64 lo, u64 hi) {
      for (u64 j = lo; j < hi; ++j) {
        T* o = out + j * pw;
        if (j == 0) {
          ops.load_boundary(o, src, src + pw, src + 2 * pw, pw);
        } else if (j + 1 == onz) {
          ops.load_boundary(o, src + (snz - 1) * pw, src + (snz - 2) * pw,
                            src + (snz - 3) * pw, pw);
        } else {
          const T* c = src + 2 * j * pw;
          ops.load_interior(o, c - 2 * pw, c - pw, c, c + pw, c + 2 * pw, pw);
        }
      }
    });
  }
}

/// Column width for the cross-axis Thomas sweeps such that the forward plus
/// backward pass over all `len` rows of one column panel stays ~L2-resident.
u64 thomas_chunk_width(u64 len, u64 row_width, u64 elem_size) {
  const u64 target = (192 * 1024) / (elem_size * (len == 0 ? 1 : len));
  return std::min(row_width, std::max<u64>(target, 16));
}

/// Thomas solve of the coarse mass system along `axis`, in place.
/// Tridiagonal: diag 4/3 interior / 2/3 boundary, off-diagonals 1/3. The c'
/// and denominator sweeps depend only on (i, len), so they are precomputed
/// once per call into the workspace (values identical to the per-line
/// recurrence) instead of per line.
template <typename T>
void mass_solve_axis(T* g, Dims dims, u32 axis, RefactorWorkspace& ws,
                     ThreadPool* pool) {
  const u64 len = axis_extent(dims, axis);
  if (len <= 1) return;
  const RowOps<T>& ops = kernels::row_ops<T>();
  constexpr f64 off = 1.0 / 3.0;
  constexpr f64 kDiagBoundary = 2.0 / 3.0;
  ws.cp.resize(len);
  ws.denom.resize(len);
  ws.cp[0] = off / kDiagBoundary;
  ws.denom[0] = kDiagBoundary;
  for (u64 i = 1; i < len; ++i) {
    const f64 diag = (i + 1 == len) ? kDiagBoundary : 4.0 / 3.0;
    ws.denom[i] = diag - off * ws.cp[i - 1];
    ws.cp[i] = off / ws.denom[i];
  }
  const f64* cp = ws.cp.data();
  const f64* denom = ws.denom.data();

  const u64 nx = dims.nx, ny = dims.ny, nz = dims.nz;
  if (axis == 0) {
    // The solve direction is the contiguous one: batch kThomasPanelWidth
    // consecutive x-lines through a panel transpose so each register sweep
    // advances all lines of the panel by one solve step.
    const u64 lines = ny * nz;
    const u64 groups = ceil_div(lines, kThomasPanelWidth);
    run_chunked(
        pool, groups, grain_for_lines(kThomasPanelWidth * nx * sizeof(T)),
        [&](u64 lo, u64 hi) {
          static thread_local std::vector<T> panel;
          panel.resize(kThomasPanelWidth * nx);
          T* p = panel.data();
          for (u64 gi = lo; gi < hi; ++gi) {
            const u64 first = gi * kThomasPanelWidth;
            const u64 w = std::min<u64>(kThomasPanelWidth, lines - first);
            T* base = g + first * nx;
            ops.pack_panel(p, base, w, nx, nx);
            ops.thomas_first(p, kDiagBoundary, w);
            for (u64 i = 1; i < nx; ++i)
              ops.thomas_fwd(p + i * w, p + (i - 1) * w, off, denom[i], w);
            for (u64 i = nx - 1; i-- > 0;)
              ops.thomas_bwd(p + i * w, p + (i + 1) * w, cp[i], w);
            ops.unpack_panel(base, p, w, nx, nx);
          }
        });
  } else if (axis == 1) {
    const u64 cw = thomas_chunk_width(len, nx, sizeof(T));
    const u64 npan = ceil_div(nx, cw);
    run_chunked(pool, nz * npan, 1, [&](u64 lo, u64 hi) {
      for (u64 idx = lo; idx < hi; ++idx) {
        const u64 x0 = (idx % npan) * cw;
        const u64 cn = std::min(cw, nx - x0);
        T* s = g + (idx / npan) * ny * nx + x0;
        ops.thomas_first(s, kDiagBoundary, cn);
        for (u64 i = 1; i < len; ++i)
          ops.thomas_fwd(s + i * nx, s + (i - 1) * nx, off, denom[i], cn);
        for (u64 i = len - 1; i-- > 0;)
          ops.thomas_bwd(s + i * nx, s + (i + 1) * nx, cp[i], cn);
      }
    });
  } else {
    const u64 pw = nx * ny;
    const u64 cw = thomas_chunk_width(len, pw, sizeof(T));
    const u64 npan = ceil_div(pw, cw);
    run_chunked(pool, npan, 1, [&](u64 lo, u64 hi) {
      for (u64 pidx = lo; pidx < hi; ++pidx) {
        const u64 c0 = pidx * cw;
        const u64 cn = std::min(cw, pw - c0);
        T* s = g + c0;
        ops.thomas_first(s, kDiagBoundary, cn);
        for (u64 i = 1; i < len; ++i)
          ops.thomas_fwd(s + i * pw, s + (i - 1) * pw, off, denom[i], cn);
        for (u64 i = len - 1; i-- > 0;)
          ops.thomas_bwd(s + i * pw, s + (i + 1) * pw, cp[i], cn);
      }
    });
  }
}

/// Compute the L2 correction from the residual field `w` (coarse nodes of `w`
/// are at even positions in every axis and are *not* part of the residual).
/// Returns the correction on the coarse grid; the buffer belongs to `ws` and
/// stays valid until the next correction uses the workspace.
template <typename T>
std::pair<const T*, Dims> compute_correction(const T* w, Dims adims,
                                             RefactorWorkspace& ws,
                                             ThreadPool* pool) {
  auto& bufs = ws.bufs<T>();
  const RowOps<T>& ops = kernels::row_ops<T>();
  const u64 nx = adims.nx, ny = adims.ny, nz = adims.nz;
  const u64 sx = nx > 1 ? 2 : 1;
  const u64 sy = ny > 1 ? 2 : 1;
  const u64 sz = nz > 1 ? 2 : 1;

  // Residual copy with zeros at coarse (even-in-all-axes) nodes, one fused
  // pass per row.
  bufs.resid.resize(adims.total());
  T* resid = bufs.resid.data();
  run_chunked(pool, ny * nz, grain_for_lines(2 * nx * sizeof(T)),
              [&](u64 lo, u64 hi) {
                for (u64 l = lo; l < hi; ++l) {
                  const u64 j = l % ny;
                  const u64 k = l / ny;
                  const T* s = w + l * nx;
                  T* d = resid + l * nx;
                  if (k % sz == 0 && j % sy == 0) {
                    ops.copy_zero(d, s, nx, sx);
                  } else {
                    ops.gather_stride(d, s, nx, 1);
                  }
                }
              });

  // Load along each non-degenerate axis (ping-ponging between the two
  // workspace buffers), then mass solves in place on the coarse grid.
  const T* src = resid;
  Dims cur = adims;
  std::vector<T>* next = &bufs.load_a;
  std::vector<T>* other = &bufs.load_b;
  for (u32 axis = 0; axis < 3; ++axis) {
    if (axis_extent(cur, axis) <= 1) continue;
    const Dims odims = coarsen_axis(cur, axis);
    next->resize(odims.total());
    apply_load_axis(src, cur, axis, next->data(), pool);
    src = next->data();
    cur = odims;
    std::swap(next, other);
  }
  T* corr = const_cast<T*>(src);  // always one of the load buffers by now
  for (u32 axis = 0; axis < 3; ++axis)
    if (axis_extent(cur, axis) > 1) mass_solve_axis(corr, cur, axis, ws, pool);
  return {corr, cur};
}

/// Add (sign=+1) or subtract (sign=-1) the coarse-grid correction into the
/// coarse nodes of the active buffer (even positions per decomposed axis).
/// When `tap` is non-null it receives a compact (cdims row-major) copy of the
/// corrected coarse nodes — the correction is their last writer within a
/// step, so the copy costs one contiguous store stream while the values are
/// still in registers.
template <typename T>
void apply_correction(T* w, Dims adims, const T* z, Dims cdims, T sign,
                      ThreadPool* pool, T* tap = nullptr) {
  const u64 sx = adims.nx > 1 ? 2 : 1;
  const u64 sy = adims.ny > 1 ? 2 : 1;
  const u64 sz = adims.nz > 1 ? 2 : 1;
  run_chunked(pool, cdims.ny * cdims.nz,
              grain_for_lines(3 * cdims.nx * sizeof(T)), [&](u64 lo, u64 hi) {
                for (u64 r = lo; r < hi; ++r) {
                  const u64 j = r % cdims.ny;
                  const u64 k = r / cdims.ny;
                  const T* src = z + r * cdims.nx;
                  T* dst = w + ((k * sz) * adims.ny + j * sy) * adims.nx;
                  if (tap != nullptr) {
                    T* trow = tap + r * cdims.nx;
                    for (u64 i = 0; i < cdims.nx; ++i)
                      trow[i] = dst[i * sx] += sign * src[i];
                  } else {
                    for (u64 i = 0; i < cdims.nx; ++i)
                      dst[i * sx] += sign * src[i];
                  }
                }
              });
}

/// Gather the active sub-grid (stride 2^(t-1)) into `w`; when `cascade_x` is
/// set, the first forward x cascade runs on each line while it is cache-hot.
template <typename T>
void gather_active_cascade(const T* full, Dims pdims, T* w, Dims adims,
                           u64 stride, bool cascade_x, ThreadPool* pool) {
  const RowOps<T>& ops = kernels::row_ops<T>();
  run_chunked(pool, adims.ny * adims.nz,
              grain_for_lines(adims.nx * sizeof(T)), [&](u64 lo, u64 hi) {
                for (u64 l = lo; l < hi; ++l) {
                  const u64 j = l % adims.ny;
                  const u64 k = l / adims.ny;
                  const T* src = full + ((k * stride) * pdims.ny + j * stride) *
                                            pdims.nx;
                  T* dst = w + l * adims.nx;
                  ops.gather_stride(dst, src, adims.nx, stride);
                  if (cascade_x) ops.cascade_fwd_x(dst, adims.nx);
                }
              });
}

/// Gather like gather_active_cascade (no x cascade), except rows even in
/// both y and z skip their even-x positions: the fused recompose injection
/// overwrites exactly that stride-2 subset from the pending deeper grid, so
/// its stale strided loads from `full` are pure waste. Every skipped slot is
/// written by the injection before anything reads `w`.
template <typename T>
void gather_active_skip_pending(const T* full, Dims pdims, T* w, Dims adims,
                                u64 stride, ThreadPool* pool) {
  const RowOps<T>& ops = kernels::row_ops<T>();
  run_chunked(pool, adims.ny * adims.nz,
              grain_for_lines(adims.nx * sizeof(T)), [&](u64 lo, u64 hi) {
                for (u64 l = lo; l < hi; ++l) {
                  const u64 j = l % adims.ny;
                  const u64 k = l / adims.ny;
                  const T* src = full + ((k * stride) * pdims.ny + j * stride) *
                                            pdims.nx;
                  T* dst = w + l * adims.nx;
                  if ((j & 1) == 0 && (k & 1) == 0) {
                    for (u64 i = 1; i < adims.nx; i += 2)
                      dst[i] = src[i * stride];
                  } else {
                    ops.gather_stride(dst, src, adims.nx, stride);
                  }
                }
              });
}

/// Scatter the active buffer back into the full array; when `cascade_x` is
/// set, the last inverse x cascade runs on each line just before the scatter.
template <typename T>
void cascade_scatter_active(T* full, Dims pdims, T* w, Dims adims, u64 stride,
                            bool cascade_x, ThreadPool* pool) {
  const RowOps<T>& ops = kernels::row_ops<T>();
  run_chunked(pool, adims.ny * adims.nz,
              grain_for_lines(adims.nx * sizeof(T)), [&](u64 lo, u64 hi) {
                for (u64 l = lo; l < hi; ++l) {
                  const u64 j = l % adims.ny;
                  const u64 k = l / adims.ny;
                  T* src = w + l * adims.nx;
                  T* dst = full + ((k * stride) * pdims.ny + j * stride) *
                                      pdims.nx;
                  if (cascade_x) ops.cascade_inv_x(src, adims.nx);
                  ops.scatter_stride(dst, src, adims.nx, stride);
                }
              });
}

/// Closed-form geometry of one decomposition level: the level's nodes are
/// the stride-2^c sub-grid (c = L for d = 0, L-d otherwise) minus, for
/// d >= 1, its even-in-all-axes subset. Rows (kk, jj) with jj or kk odd keep
/// every ii; both-even rows keep odd ii only. Row offsets are closed-form,
/// so rows gather/scatter independently and in parallel, in exactly
/// level_nodes(d) order (ascending flattened index).
struct LevelGeom {
  u64 stride;          ///< node stride in the padded grid
  u64 ex, ey, ez;      ///< sub-grid extents
  u64 half;            ///< odd-ii count per both-even row
  u64 ejy;             ///< even-jj count per slab
  bool base;           ///< d == 0: no even-in-all-axes exclusion
  u64 total;           ///< node count of the level

  u64 row_offset(u64 kk, u64 jj) const {
    const u64 r = kk * ey + jj;
    if (base) return r * ex;
    // Rows before (kk, jj) with both coordinates even.
    const u64 be = ((kk + 1) / 2) * ejy + ((kk & 1) == 0 ? (jj + 1) / 2 : 0);
    return (r - be) * ex + be * half;
  }
};

LevelGeom level_geometry(const GridHierarchy& h, u32 d) {
  const u32 levels = h.levels();
  RAPIDS_REQUIRE(d <= levels);
  const u32 c = d == 0 ? levels : levels - d;
  const Dims p = h.padded();
  auto sub = [&](u64 s) { return s <= 1 ? u64{1} : ((s - 1) >> c) + 1; };
  LevelGeom g;
  g.stride = u64{1} << c;
  g.ex = sub(p.nx);
  g.ey = sub(p.ny);
  g.ez = sub(p.nz);
  g.half = g.ex / 2;
  g.ejy = (g.ey + 1) / 2;
  g.base = d == 0;
  if (g.base) {
    g.total = g.ex * g.ey * g.ez;
  } else {
    const u64 be_rows = g.ejy * ((g.ez + 1) / 2);
    g.total = (g.ey * g.ez - be_rows) * g.ex + be_rows * g.half;
  }
  return g;
}

}  // namespace

template <typename T>
void decompose(std::vector<T>& data, const GridHierarchy& h,
               const DecomposeOptions& opt, ThreadPool* pool,
               RefactorWorkspace* ws) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  RefactorWorkspace local_ws;
  RefactorWorkspace& work = ws != nullptr ? *ws : local_ws;
  auto& bufs = work.bufs<T>();
  const Dims pdims = h.padded();
  // Level fusion: step t's active grid is exactly the stride-2 sub-grid of
  // step t-1's active grid (extents are 2^j + 1 or 1 per axis), and after
  // step t-1 finishes, its compact buffer holds the same values the padded
  // array holds at those nodes (the scatter below copies, never transforms).
  // So step t >= 3 gathers from the L2-resident previous buffer at relative
  // stride 2 instead of re-striding the full field at 2^(t-1) — one fewer
  // full-field read pass per level. Step 2 is covered by a tap in step 1's
  // correction pass (see below), which hands it a compact copy of its grid
  // at relative stride 1. The scatter into `data` stays: the coefficients
  // must land there for gather_level. Two buffers ping-pong so the gather
  // never reads the buffer it writes.
  const bool fuse = opt.level_fusion;
  const T* prev = data.data();
  Dims prev_dims = pdims;
  u64 prev_rel = 2;  // relative stride of the next grid within `prev`
  bool flip = false;
  for (u32 t = 1; t <= h.levels(); ++t) {
    const Dims adims = h.grid_at_step(t - 1);
    const u64 stride = u64{1} << (t - 1);
    T* w;
    if (stride == 1) {
      // Active grid == padded grid: transform in place, no copy.
      w = data.data();
      if (adims.nx > 1) cascade_axis(w, adims, 0, /*forward=*/true, pool);
    } else {
      std::vector<T>& cur = (fuse && flip) ? bufs.active2 : bufs.active;
      if (fuse) flip = !flip;
      cur.resize(adims.total());
      w = cur.data();
      if (fuse) {
        gather_active_cascade(prev, prev_dims, w, adims, prev_rel,
                              adims.nx > 1, pool);
      } else {
        gather_active_cascade(data.data(), pdims, w, adims, stride,
                              adims.nx > 1, pool);
      }
    }
    if (adims.ny > 1) cascade_axis(w, adims, 1, true, pool);
    if (adims.nz > 1) cascade_axis(w, adims, 2, true, pool);
    bool tapped = false;
    if (opt.l2_correction) {
      const auto [z, cdims] = compute_correction(w, adims, work, pool);
      T* tap = nullptr;
      if (fuse && stride == 1 && t < h.levels()) {
        // Fused step 1 -> 2 hand-off: the correction is the last writer of
        // exactly the stride-2 sub-grid step 2 gathers, so tap the corrected
        // values into a compact buffer as they are produced. Step 2 then
        // reads it contiguously (relative stride 1) instead of re-striding
        // the whole padded field — the largest strided read of the
        // traversal. Values are bit-identical either way.
        std::vector<T>& tbuf = flip ? bufs.active2 : bufs.active;
        flip = !flip;
        tbuf.resize(cdims.total());
        tap = tbuf.data();
        prev = tap;
        prev_dims = cdims;
        prev_rel = 1;
        tapped = true;
      }
      apply_correction(w, adims, z, cdims, static_cast<T>(1), pool, tap);
    }
    if (stride != 1) {
      cascade_scatter_active(data.data(), pdims, w, adims, stride,
                             /*cascade_x=*/false, pool);
    }
    if (!tapped) {
      prev = w;
      prev_dims = adims;
      prev_rel = 2;
    }
  }
}

template <typename T>
void recompose(std::vector<T>& data, const GridHierarchy& h,
               const DecomposeOptions& opt, ThreadPool* pool,
               RefactorWorkspace* ws) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  RefactorWorkspace local_ws;
  RefactorWorkspace& work = ws != nullptr ? *ws : local_ws;
  auto& bufs = work.bufs<T>();
  const Dims pdims = h.padded();
  // Level fusion, mirrored: a step t >= 3 skips the full-field scatter and
  // keeps its processed active grid pending (inverse x cascade still
  // deferred, exactly as the fused scatter would have run it). Step t-1
  // gathers from `data` with the pending stride-2 subset skipped (those
  // strided loads would be stale and immediately overwritten), then the
  // injection below runs the deferred cascade and writes that subset of the
  // freshly gathered buffer straight from the compact pending grid.
  // Step 2 must scatter into `data` for real (step 1 transforms the padded
  // array in place), which also lands every coarser level's final values:
  // their nodes are a subset of step 2's grid. One fewer full-field write
  // pass per level; values and order are identical, so output is
  // bit-identical to the unfused traversal.
  const bool fuse = opt.level_fusion;
  T* pending = nullptr;
  Dims pending_dims{};
  bool flip = false;
  for (u32 t = h.levels(); t >= 1; --t) {
    const Dims adims = h.grid_at_step(t - 1);
    const u64 stride = u64{1} << (t - 1);
    T* w;
    if (stride == 1) {
      w = data.data();
    } else {
      std::vector<T>& cur = (fuse && flip) ? bufs.active2 : bufs.active;
      if (fuse) flip = !flip;
      cur.resize(adims.total());
      w = cur.data();
      if (pending != nullptr)
        gather_active_skip_pending(data.data(), pdims, w, adims, stride, pool);
      else
        gather_active_cascade(data.data(), pdims, w, adims, stride,
                              /*cascade_x=*/false, pool);
    }
    if (pending != nullptr) {
      // Deferred injection of level t+1's processed grid: runs its deferred
      // inverse x cascade and scatters into this buffer's stride-2 subset
      // (which is exactly level t+1's grid), before the correction reads it.
      cascade_scatter_active(w, adims, pending, pending_dims, /*stride=*/2,
                             pending_dims.nx > 1, pool);
      pending = nullptr;
    }
    if (opt.l2_correction) {
      const auto [z, cdims] = compute_correction(w, adims, work, pool);
      apply_correction(w, adims, z, cdims, static_cast<T>(-1), pool);
    }
    if (adims.nz > 1) cascade_axis(w, adims, 2, /*forward=*/false, pool);
    if (adims.ny > 1) cascade_axis(w, adims, 1, false, pool);
    if (stride == 1) {
      if (adims.nx > 1) cascade_axis(w, adims, 0, false, pool);
    } else if (fuse && t > 2) {
      pending = w;
      pending_dims = adims;
    } else {
      cascade_scatter_active(data.data(), pdims, w, adims, stride,
                             adims.nx > 1, pool);
    }
  }
}

template <typename T>
std::vector<T> gather_level(const std::vector<T>& data, const GridHierarchy& h,
                            u32 d, ThreadPool* pool) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  const LevelGeom g = level_geometry(h, d);
  RAPIDS_REQUIRE(g.total == h.decomp_level_size(d));
  const Dims p = h.padded();
  const RowOps<T>& ops = kernels::row_ops<T>();
  std::vector<T> out(g.total);
  const T* src0 = data.data();
  T* o = out.data();
  run_chunked(pool, g.ey * g.ez, grain_for_lines(2 * g.ex * sizeof(T)),
              [&](u64 lo, u64 hi) {
                for (u64 row = lo; row < hi; ++row) {
                  const u64 jj = row % g.ey;
                  const u64 kk = row / g.ey;
                  const T* src =
                      src0 +
                      ((kk * g.stride) * p.ny + jj * g.stride) * p.nx;
                  T* dst = o + g.row_offset(kk, jj);
                  if (g.base || ((jj | kk) & 1)) {
                    ops.gather_stride(dst, src, g.ex, g.stride);
                  } else {
                    ops.gather_stride(dst, src + g.stride, g.half,
                                      2 * g.stride);
                  }
                }
              });
  return out;
}

template <typename T>
void scatter_level(std::vector<T>& data, const GridHierarchy& h, u32 d,
                   const std::vector<T>& coeffs, ThreadPool* pool) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  const LevelGeom g = level_geometry(h, d);
  RAPIDS_REQUIRE(g.total == h.decomp_level_size(d));
  RAPIDS_REQUIRE(coeffs.size() == g.total);
  const Dims p = h.padded();
  const RowOps<T>& ops = kernels::row_ops<T>();
  T* dst0 = data.data();
  const T* src0 = coeffs.data();
  run_chunked(pool, g.ey * g.ez, grain_for_lines(2 * g.ex * sizeof(T)),
              [&](u64 lo, u64 hi) {
                for (u64 row = lo; row < hi; ++row) {
                  const u64 jj = row % g.ey;
                  const u64 kk = row / g.ey;
                  T* dst = dst0 +
                           ((kk * g.stride) * p.ny + jj * g.stride) * p.nx;
                  const T* src = src0 + g.row_offset(kk, jj);
                  if (g.base || ((jj | kk) & 1)) {
                    ops.scatter_stride(dst, src, g.ex, g.stride);
                  } else {
                    ops.scatter_stride(dst + g.stride, src, g.half,
                                       2 * g.stride);
                  }
                }
              });
}

template void decompose<f32>(std::vector<f32>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*,
                             RefactorWorkspace*);
template void decompose<f64>(std::vector<f64>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*,
                             RefactorWorkspace*);
template void recompose<f32>(std::vector<f32>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*,
                             RefactorWorkspace*);
template void recompose<f64>(std::vector<f64>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*,
                             RefactorWorkspace*);
template std::vector<f32> gather_level<f32>(const std::vector<f32>&,
                                            const GridHierarchy&, u32,
                                            ThreadPool*);
template std::vector<f64> gather_level<f64>(const std::vector<f64>&,
                                            const GridHierarchy&, u32,
                                            ThreadPool*);
template void scatter_level<f32>(std::vector<f32>&, const GridHierarchy&, u32,
                                 const std::vector<f32>&, ThreadPool*);
template void scatter_level<f64>(std::vector<f64>&, const GridHierarchy&, u32,
                                 const std::vector<f64>&, ThreadPool*);

}  // namespace rapids::mgard
