#include "rapids/mgard/decompose.hpp"

#include <algorithm>

#include "rapids/parallel/thread_pool.hpp"

namespace rapids::mgard {

namespace {

/// Run body(line) for every 1-D line of `dims` along `axis`, possibly in
/// parallel. body receives (base_index, stride, length) of the line in the
/// flattened row-major array.
template <typename Body>
void for_each_line(Dims dims, u32 axis, ThreadPool* pool, const Body& body) {
  u64 len = 0, stride = 0, o1 = 0, s1 = 0, o2 = 0, s2 = 0;
  switch (axis) {
    case 0:  // x lines: iterate (z, y)
      len = dims.nx; stride = 1;
      o1 = dims.ny; s1 = dims.nx;           // y
      o2 = dims.nz; s2 = dims.nx * dims.ny; // z
      break;
    case 1:  // y lines: iterate (z, x)
      len = dims.ny; stride = dims.nx;
      o1 = dims.nx; s1 = 1;
      o2 = dims.nz; s2 = dims.nx * dims.ny;
      break;
    default:  // z lines: iterate (y, x)
      len = dims.nz; stride = dims.nx * dims.ny;
      o1 = dims.nx; s1 = 1;
      o2 = dims.ny; s2 = dims.nx;
      break;
  }
  const u64 num_lines = o1 * o2;
  auto run = [&](u64 lo, u64 hi) {
    // One div/mod to seed the (a, b) coordinates at `lo`, then step them
    // incrementally — the quotient/remainder per line was the hot spot.
    u64 a = lo % o1;
    u64 b = lo / o1;
    u64 base = a * s1 + b * s2;
    for (u64 li = lo; li < hi; ++li) {
      body(base, stride, len);
      if (++a == o1) {
        a = 0;
        base = ++b * s2;
      } else {
        base += s1;
      }
    }
  };
  if (pool != nullptr && num_lines > 1) {
    pool->parallel_for_chunks(0, num_lines, run, /*grain=*/0);
  } else {
    run(0, num_lines);
  }
}

/// Forward cascade along one axis: odd positions become interpolation
/// residuals.
template <typename T>
void cascade_forward(std::vector<T>& w, Dims dims, u32 axis, ThreadPool* pool) {
  for_each_line(dims, axis, pool, [&w](u64 base, u64 stride, u64 len) {
    T* v = w.data() + base;
    for (u64 i = 1; i + 1 < len; i += 2)
      v[i * stride] -= static_cast<T>(0.5) * (v[(i - 1) * stride] + v[(i + 1) * stride]);
  });
}

/// Inverse cascade along one axis.
template <typename T>
void cascade_inverse(std::vector<T>& w, Dims dims, u32 axis, ThreadPool* pool) {
  for_each_line(dims, axis, pool, [&w](u64 base, u64 stride, u64 len) {
    T* v = w.data() + base;
    for (u64 i = 1; i + 1 < len; i += 2)
      v[i * stride] += static_cast<T>(0.5) * (v[(i - 1) * stride] + v[(i + 1) * stride]);
  });
}

/// Coarsened extents along `axis` only.
Dims coarsen_axis(Dims d, u32 axis) {
  auto shrink = [](u64 s) { return s <= 1 ? s : (s - 1) / 2 + 1; };
  if (axis == 0) d.nx = shrink(d.nx);
  else if (axis == 1) d.ny = shrink(d.ny);
  else d.nz = shrink(d.nz);
  return d;
}

/// Apply the 1-D load operator along `axis`: out has coarsened extent along
/// that axis. Stencil (1/6)[0.5 3 5 3 0.5] interior, (1/6)[2.5 3 0.5] at the
/// boundary (mirrored at the far end).
template <typename T>
std::vector<T> apply_load(const std::vector<T>& src, Dims sdims, u32 axis,
                          ThreadPool* pool) {
  const Dims odims = coarsen_axis(sdims, axis);
  std::vector<T> out(odims.total());
  const u64 slen = axis == 0 ? sdims.nx : axis == 1 ? sdims.ny : sdims.nz;
  RAPIDS_REQUIRE_MSG(slen >= 3 && slen % 2 == 1,
                     "apply_load: axis must be odd-sized >= 3");

  // Line geometry in both grids. The cross-axis (a, b) iteration is shared —
  // only `axis` is coarsened, so the cross extents match and just the
  // flattening strides differ between the output and the source.
  u64 olen = 0, ostride = 0, sstride = 0;
  u64 o1 = 0, s1o = 0, s1s = 0;  // inner cross axis: count + strides
  u64 o2 = 0, s2o = 0, s2s = 0;  // outer cross axis: count + strides
  switch (axis) {
    case 0:  // x lines: iterate (z, y)
      olen = odims.nx; ostride = 1; sstride = 1;
      o1 = odims.ny; s1o = odims.nx; s1s = sdims.nx;
      o2 = odims.nz; s2o = odims.nx * odims.ny; s2s = sdims.nx * sdims.ny;
      break;
    case 1:  // y lines: iterate (z, x)
      olen = odims.ny; ostride = odims.nx; sstride = sdims.nx;
      o1 = odims.nx; s1o = 1; s1s = 1;
      o2 = odims.nz; s2o = odims.nx * odims.ny; s2s = sdims.nx * sdims.ny;
      break;
    default:  // z lines: iterate (y, x)
      olen = odims.nz; ostride = odims.nx * odims.ny;
      sstride = sdims.nx * sdims.ny;
      o1 = odims.nx; s1o = 1; s1s = 1;
      o2 = odims.ny; s2o = odims.nx; s2s = sdims.nx;
      break;
  }

  const T c6 = static_cast<T>(1.0 / 6.0);
  auto line = [&](u64 obase, u64 sbase) {
    const T* v = src.data() + sbase;
    T* o = out.data() + obase;
    // Boundary i = 0.
    o[0] = c6 * (static_cast<T>(2.5) * v[0] + 3 * v[sstride] +
                 static_cast<T>(0.5) * v[2 * sstride]);
    // Interior.
    for (u64 i = 1; i + 1 < olen; ++i) {
      const T* p = v + 2 * i * sstride;
      o[i * ostride] =
          c6 * (static_cast<T>(0.5) * p[-2 * static_cast<i64>(sstride)] +
                3 * p[-static_cast<i64>(sstride)] + 5 * p[0] + 3 * p[sstride] +
                static_cast<T>(0.5) * p[2 * sstride]);
    }
    // Boundary i = olen-1.
    const T* e = v + (slen - 1) * sstride;
    o[(olen - 1) * ostride] =
        c6 * (static_cast<T>(2.5) * e[0] + 3 * e[-static_cast<i64>(sstride)] +
              static_cast<T>(0.5) * e[-2 * static_cast<i64>(sstride)]);
  };

  const u64 num_lines = o1 * o2;
  auto run = [&](u64 lo, u64 hi) {
    // One div/mod to seed (a, b) per chunk, then step both grids' line bases
    // incrementally — the same scheme as for_each_line's run.
    u64 a = lo % o1;
    u64 b = lo / o1;
    u64 obase = a * s1o + b * s2o;
    u64 sbase = a * s1s + b * s2s;
    for (u64 li = lo; li < hi; ++li) {
      line(obase, sbase);
      if (++a == o1) {
        a = 0;
        ++b;
        obase = b * s2o;
        sbase = b * s2s;
      } else {
        obase += s1o;
        sbase += s1s;
      }
    }
  };
  if (pool != nullptr && num_lines > 1) {
    pool->parallel_for_chunks(0, num_lines, run, /*grain=*/0);
  } else {
    run(0, num_lines);
  }
  return out;
}

/// Thomas solve of the coarse mass system along `axis`, in place.
/// Tridiagonal: diag 4/3 interior / 2/3 boundary, off-diagonals 1/3.
template <typename T>
void mass_solve(std::vector<T>& g, Dims dims, u32 axis, ThreadPool* pool) {
  const u64 n = axis == 0 ? dims.nx : axis == 1 ? dims.ny : dims.nz;
  if (n <= 1) return;
  for_each_line(dims, axis, pool, [&](u64 base, u64 stride, u64 len) {
    T* v = g.data() + base;
    // Thomas with constant coefficients; scratch on stack-ish vector per line.
    // c' and d' sweeps specialized for our symmetric tridiagonal.
    constexpr f64 off = 1.0 / 3.0;
    std::vector<f64> cp(len);
    f64 diag0 = 2.0 / 3.0;
    cp[0] = off / diag0;
    v[0] = static_cast<T>(v[0] / diag0);
    for (u64 i = 1; i < len; ++i) {
      const f64 diag = (i + 1 == len) ? 2.0 / 3.0 : 4.0 / 3.0;
      const f64 denom = diag - off * cp[i - 1];
      cp[i] = off / denom;
      v[i * stride] =
          static_cast<T>((v[i * stride] - off * v[(i - 1) * stride]) / denom);
    }
    for (u64 i = len - 1; i-- > 0;)
      v[i * stride] -= static_cast<T>(cp[i] * v[(i + 1) * stride]);
  });
}

/// Compute the L2 correction from the residual field `w` (coarse nodes of `w`
/// are at even positions in every axis and are *not* part of the residual).
/// Returns the correction on the coarse grid.
template <typename T>
std::vector<T> compute_correction(const std::vector<T>& w, Dims adims,
                                  ThreadPool* pool) {
  // Residual copy with zeros at coarse (even-in-all-axes) nodes.
  std::vector<T> r = w;
  const u64 sx = adims.nx > 1 ? 2 : 1;
  const u64 sy = adims.ny > 1 ? 2 : 1;
  const u64 sz = adims.nz > 1 ? 2 : 1;
  for (u64 k = 0; k < adims.nz; k += sz)
    for (u64 j = 0; j < adims.ny; j += sy)
      for (u64 i = 0; i < adims.nx; i += sx)
        r[(k * adims.ny + j) * adims.nx + i] = 0;

  // Load along each non-degenerate axis, then mass solves on the coarse grid.
  Dims cur = adims;
  for (u32 axis = 0; axis < 3; ++axis) {
    const u64 extent = axis == 0 ? cur.nx : axis == 1 ? cur.ny : cur.nz;
    if (extent <= 1) continue;
    r = apply_load(r, cur, axis, pool);
    cur = coarsen_axis(cur, axis);
  }
  for (u32 axis = 0; axis < 3; ++axis) {
    const u64 extent = axis == 0 ? cur.nx : axis == 1 ? cur.ny : cur.nz;
    if (extent <= 1) continue;
    mass_solve(r, cur, axis, pool);
  }
  return r;
}

/// Gather the active sub-grid (stride 2^(t-1)) into a contiguous buffer.
template <typename T>
std::vector<T> gather_active(const std::vector<T>& full, Dims pdims, Dims adims,
                             u64 stride, ThreadPool* pool) {
  std::vector<T> w(adims.total());
  auto run = [&](u64 lo, u64 hi) {
    for (u64 line = lo; line < hi; ++line) {
      const u64 j = line % adims.ny;
      const u64 k = line / adims.ny;
      const T* src = full.data() + ((k * stride) * pdims.ny + j * stride) * pdims.nx;
      T* dst = w.data() + (k * adims.ny + j) * adims.nx;
      for (u64 i = 0; i < adims.nx; ++i) dst[i] = src[i * stride];
    }
  };
  const u64 lines = adims.ny * adims.nz;
  if (pool != nullptr && lines > 1) pool->parallel_for_chunks(0, lines, run, 0);
  else run(0, lines);
  return w;
}

/// Scatter the active sub-grid buffer back into the full array.
template <typename T>
void scatter_active(std::vector<T>& full, Dims pdims, const std::vector<T>& w,
                    Dims adims, u64 stride, ThreadPool* pool) {
  auto run = [&](u64 lo, u64 hi) {
    for (u64 line = lo; line < hi; ++line) {
      const u64 j = line % adims.ny;
      const u64 k = line / adims.ny;
      T* dst = full.data() + ((k * stride) * pdims.ny + j * stride) * pdims.nx;
      const T* src = w.data() + (k * adims.ny + j) * adims.nx;
      for (u64 i = 0; i < adims.nx; ++i) dst[i * stride] = src[i];
    }
  };
  const u64 lines = adims.ny * adims.nz;
  if (pool != nullptr && lines > 1) pool->parallel_for_chunks(0, lines, run, 0);
  else run(0, lines);
}

/// Add (sign=+1) or subtract (sign=-1) the coarse-grid correction into the
/// coarse nodes of the active buffer (even positions per decomposed axis).
template <typename T>
void apply_correction(std::vector<T>& w, Dims adims, const std::vector<T>& z,
                      Dims cdims, T sign) {
  const u64 sx = adims.nx > 1 ? 2 : 1;
  const u64 sy = adims.ny > 1 ? 2 : 1;
  const u64 sz = adims.nz > 1 ? 2 : 1;
  for (u64 k = 0; k < cdims.nz; ++k)
    for (u64 j = 0; j < cdims.ny; ++j) {
      const T* src = z.data() + (k * cdims.ny + j) * cdims.nx;
      T* dst = w.data() + ((k * sz) * adims.ny + j * sy) * adims.nx;
      for (u64 i = 0; i < cdims.nx; ++i) dst[i * sx] += sign * src[i];
    }
}

}  // namespace

template <typename T>
void decompose(std::vector<T>& data, const GridHierarchy& h,
               const DecomposeOptions& opt, ThreadPool* pool) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  const Dims pdims = h.padded();
  for (u32 t = 1; t <= h.levels(); ++t) {
    const Dims adims = h.grid_at_step(t - 1);
    const u64 stride = u64{1} << (t - 1);
    std::vector<T> w = gather_active(data, pdims, adims, stride, pool);
    for (u32 axis = 0; axis < 3; ++axis) {
      const u64 extent = axis == 0 ? adims.nx : axis == 1 ? adims.ny : adims.nz;
      if (extent > 1) cascade_forward(w, adims, axis, pool);
    }
    if (opt.l2_correction) {
      const std::vector<T> z = compute_correction(w, adims, pool);
      apply_correction(w, adims, z, h.grid_at_step(t), static_cast<T>(1));
    }
    scatter_active(data, pdims, w, adims, stride, pool);
  }
}

template <typename T>
void recompose(std::vector<T>& data, const GridHierarchy& h,
               const DecomposeOptions& opt, ThreadPool* pool) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  const Dims pdims = h.padded();
  for (u32 t = h.levels(); t >= 1; --t) {
    const Dims adims = h.grid_at_step(t - 1);
    const u64 stride = u64{1} << (t - 1);
    std::vector<T> w = gather_active(data, pdims, adims, stride, pool);
    if (opt.l2_correction) {
      const std::vector<T> z = compute_correction(w, adims, pool);
      apply_correction(w, adims, z, h.grid_at_step(t), static_cast<T>(-1));
    }
    for (u32 axis = 3; axis-- > 0;) {
      const u64 extent = axis == 0 ? adims.nx : axis == 1 ? adims.ny : adims.nz;
      if (extent > 1) cascade_inverse(w, adims, axis, pool);
    }
    scatter_active(data, pdims, w, adims, stride, pool);
  }
}

template <typename T>
std::vector<T> gather_level(const std::vector<T>& data, const GridHierarchy& h,
                            u32 d) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  const auto& nodes = h.level_nodes(d);
  std::vector<T> out(nodes.size());
  for (u64 i = 0; i < nodes.size(); ++i) out[i] = data[nodes[i]];
  return out;
}

template <typename T>
void scatter_level(std::vector<T>& data, const GridHierarchy& h, u32 d,
                   const std::vector<T>& coeffs) {
  RAPIDS_REQUIRE(data.size() == h.padded().total());
  const auto& nodes = h.level_nodes(d);
  RAPIDS_REQUIRE(coeffs.size() == nodes.size());
  for (u64 i = 0; i < nodes.size(); ++i) data[nodes[i]] = coeffs[i];
}

template void decompose<f32>(std::vector<f32>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*);
template void decompose<f64>(std::vector<f64>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*);
template void recompose<f32>(std::vector<f32>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*);
template void recompose<f64>(std::vector<f64>&, const GridHierarchy&,
                             const DecomposeOptions&, ThreadPool*);
template std::vector<f32> gather_level<f32>(const std::vector<f32>&,
                                            const GridHierarchy&, u32);
template std::vector<f64> gather_level<f64>(const std::vector<f64>&,
                                            const GridHierarchy&, u32);
template void scatter_level<f32>(std::vector<f32>&, const GridHierarchy&, u32,
                                 const std::vector<f32>&);
template void scatter_level<f64>(std::vector<f64>&, const GridHierarchy&, u32,
                                 const std::vector<f64>&);

}  // namespace rapids::mgard
