#include "rapids/mgard/bitplane.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "rapids/mgard/kernels/kernels.hpp"
#include "rapids/parallel/thread_pool.hpp"
#include "rapids/util/timer.hpp"

namespace rapids::mgard {

namespace {

constexpr u8 kModeRaw = 0;
constexpr u8 kModeSparse = 1;
constexpr u8 kModeZero = 2;
constexpr u8 kModeRice = 3;

u64 words_for_bits(u64 bits) { return ceil_div(bits, 64); }

/// The segment byte streams are LSB-first within bytes, i.e. the
/// little-endian image of the packed 64-bit words the kernels work in; swap
/// on big-endian hosts so bulk word moves emit the canonical layout.
u64 host_to_le64(u64 v) {
  if constexpr (std::endian::native == std::endian::big)
    return __builtin_bswap64(v);
  return v;
}

/// Emit nbytes of the packed words' little-endian image (the last word may be
/// cut mid-way, matching the old bit writer's zero-padded byte tail).
void store_words_le(std::byte* dst, const u64* words, u64 nbytes) {
  const u64 whole = nbytes & ~u64{7};
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, words, whole);  // bulk move: the words are the image
  } else {
    for (u64 i = 0; i < whole; i += 8) {
      const u64 w = host_to_le64(words[i >> 3]);
      std::memcpy(dst + i, &w, 8);
    }
  }
  if (whole < nbytes) {
    const u64 w = host_to_le64(words[whole >> 3]);
    std::memcpy(dst + whole, &w, nbytes - whole);
  }
}

/// Inverse of store_words_le; the final partial word is zero-padded so bit
/// kernels never see fabricated high bits.
void load_words_le(u64* dst, const std::byte* src, u64 nbytes) {
  const u64 whole = nbytes & ~u64{7};
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, src, whole);  // bulk move: the image is the words
  } else {
    for (u64 i = 0; i < whole; i += 8) {
      u64 w;
      std::memcpy(&w, src + i, 8);
      dst[i >> 3] = host_to_le64(w);
    }
  }
  if (whole < nbytes) {
    u64 w = 0;
    std::memcpy(&w, src + whole, nbytes - whole);
    dst[whole >> 3] = host_to_le64(w);
  }
}

/// Rice parameter for gap coding at a given mean gap: k ~ log2(mean).
u32 rice_parameter(u64 num_bits, u64 ones) {
  RAPIDS_REQUIRE(ones > 0);
  const u64 mean_gap = std::max<u64>(1, num_bits / ones);
  u32 k = 0;
  while ((u64{2} << k) < mean_gap && k < 40) ++k;
  return k;
}

/// Mode histogram / byte accounting for one finished segment.
void tally_segment(const PlaneSegment& seg, CodecStats& s) {
  ++s.segments;
  s.bytes += seg.size();
  if (seg.data.empty()) return;
  switch (static_cast<u8>(seg.data[0])) {
    case kModeRaw: ++s.mode_raw; break;
    case kModeSparse: ++s.mode_sparse; break;
    case kModeZero: ++s.mode_zero; break;
    case kModeRice: ++s.mode_rice; break;
    default: break;
  }
}

}  // namespace

u64 PlaneSet::prefix_bytes(u32 p) const {
  RAPIDS_REQUIRE(p <= planes.size());
  u64 total = sign.size();
  for (u32 i = 0; i < p; ++i) total += planes[i].size();
  return total;
}

f64 PlaneSet::error_bound(u32 p) const {
  if (count == 0 || max_abs == 0.0) return 0.0;
  const u32 eff = std::min<u32>(p, kMagnitudePlanes);
  return std::ldexp(1.0, exponent - static_cast<i32>(eff));
}

PlaneSegment encode_segment(std::span<const u64> words, u64 num_bits) {
  RAPIDS_REQUIRE(words.size() == words_for_bits(num_bits));
  const u64 nwords = words.size();
  const kernels::CodecOps& cops = kernels::codec_ops();

  u64 ones = 0;
  u64 nonzero_words = 0;
  cops.segment_stats(words.data(), nwords, &ones, &nonzero_words);

  PlaneSegment seg;
  if (ones == 0) {
    seg.data.assign(1, static_cast<std::byte>(kModeZero));
    return seg;
  }

  const u64 raw_bytes = nwords * 8;
  const u64 bitmap_words = words_for_bits(nwords);
  const u64 sparse_bytes = bitmap_words * 8 + nonzero_words * 8;

  // Rice candidate: the exact encoded size falls out of the set-bit positions
  // and the gap-length reduction without emitting a stream, so arbitration
  // happens before any Rice bytes exist. Size and tie-breaks are identical to
  // the historical coder: body = [k u8][ones u64][gap bits, byte-padded].
  u64 rice_bytes = 0;
  u64 rice_bits = 0;
  u32 k = 0;
  std::vector<u64> pos;
  const auto extract_positions = [&] {
    pos.resize(ones + 7);  // slack for the vector extraction tiers
    const u64 extracted = cops.bit_positions(words.data(), nwords, pos.data());
    RAPIDS_REQUIRE(extracted == ones);
  };
  if (ones * 2 < num_bits) {
    k = rice_parameter(num_bits, ones);
    // The highest set bit pins the gap sum (sum(gap) = pos_last + 1 - ones),
    // which lets dense planes settle the Rice candidate without materializing
    // every set-bit position.  Arbitration is unchanged -- the same exact
    // rice_bytes decides -- it is just computed lazily.
    u64 w = nwords;
    while (words[w - 1] == 0) --w;  // ones > 0 guarantees a nonzero word
    const u64 pos_last =
        (w - 1) * 64 + (63 - static_cast<u64>(std::countl_zero(words[w - 1])));
    if (k == 0) {
      // k == 0 spends gap + 1 bits per gap, so the stream length collapses
      // to sum(gap) + ones == pos_last + 1 exactly.
      rice_bits = pos_last + 1;
      rice_bytes = 1 + 8 + ceil_div(rice_bits, 8);
    } else {
      // Sound lower bound: gap >> k >= (gap - (2^k - 1)) / 2^k per gap, so
      // the quotient tail is at least (sum(gap) - ones*(2^k - 1)) >> k.  If
      // even that floor cannot beat the cheaper of raw and sparse, Rice
      // loses without an extraction pass.
      const u64 sum_gaps = pos_last + 1 - ones;
      const u64 kmask = (u64{1} << k) - 1;
      const u64 slack =
          (kmask != 0 && ones > sum_gaps / kmask) ? sum_gaps : ones * kmask;
      const u64 lb_bits = ones * (1 + k) + ((sum_gaps - slack) >> k);
      const u64 lb_bytes = 1 + 8 + ceil_div(lb_bits, 8);
      if (lb_bytes < raw_bytes && lb_bytes < sparse_bytes) {
        extract_positions();
        rice_bits = cops.rice_length_bits(pos.data(), ones, k);
        rice_bytes = 1 + 8 + ceil_div(rice_bits, 8);
      }
    }
  }

  if (rice_bytes != 0 && rice_bytes < raw_bytes && rice_bytes < sparse_bytes) {
    if (pos.empty()) extract_positions();
    seg.data.resize(1 + rice_bytes);
    seg.data[0] = static_cast<std::byte>(kModeRice);
    seg.data[1] = static_cast<std::byte>(k);
    const u64 ones_le = host_to_le64(ones);
    std::memcpy(seg.data.data() + 2, &ones_le, 8);
    std::vector<u64> bits(words_for_bits(rice_bits), 0);
    cops.rice_emit(pos.data(), ones, k, bits.data());
    store_words_le(seg.data.data() + 10, bits.data(), ceil_div(rice_bits, 8));
  } else if (sparse_bytes < raw_bytes) {
    std::vector<u64> bitmap(bitmap_words, 0);
    std::vector<u64> packed(nonzero_words);
    const u64 packed_words =
        cops.sparse_pack(words.data(), nwords, bitmap.data(), packed.data());
    RAPIDS_REQUIRE(packed_words == nonzero_words);
    seg.data.resize(1 + sparse_bytes);
    seg.data[0] = static_cast<std::byte>(kModeSparse);
    store_words_le(seg.data.data() + 1, bitmap.data(), bitmap_words * 8);
    store_words_le(seg.data.data() + 1 + bitmap_words * 8, packed.data(),
                   nonzero_words * 8);
  } else {
    seg.data.resize(1 + raw_bytes);
    seg.data[0] = static_cast<std::byte>(kModeRaw);
    store_words_le(seg.data.data() + 1, words.data(), raw_bytes);
  }
  return seg;
}

std::vector<u64> decode_segment(const PlaneSegment& seg, u64 num_bits) {
  const u64 nwords = words_for_bits(num_bits);
  std::vector<u64> words(nwords, 0);
  const std::span<const std::byte> data = as_bytes_view(seg.data);
  if (data.empty()) throw io_error("bitplane: truncated segment");
  const u8 mode = static_cast<u8>(data[0]);
  const std::span<const std::byte> body = data.subspan(1);
  const kernels::CodecOps& cops = kernels::codec_ops();
  switch (mode) {
    case kModeZero:
      break;
    case kModeRaw:
      if (body.size() < nwords * 8)
        throw io_error("bitplane: truncated raw segment");
      load_words_le(words.data(), body.data(), nwords * 8);
      break;
    case kModeSparse: {
      const u64 bitmap_words = words_for_bits(nwords);
      if (body.size() < bitmap_words * 8)
        throw io_error("bitplane: truncated sparse bitmap");
      std::vector<u64> bitmap(bitmap_words, 0);
      load_words_le(bitmap.data(), body.data(), bitmap_words * 8);
      // Bitmap bits past nwords are meaningless; mask them so the payload
      // bound below counts only in-range words (a malformed body cannot read
      // past its own bytes).
      if ((nwords & 63) != 0)
        bitmap[bitmap_words - 1] &= (u64{1} << (nwords & 63)) - 1;
      u64 set_words = 0;
      u64 dummy = 0;
      cops.segment_stats(bitmap.data(), bitmap_words, &set_words, &dummy);
      if (body.size() < bitmap_words * 8 + set_words * 8)
        throw io_error("bitplane: truncated sparse words");
      std::vector<u64> packed(set_words, 0);
      load_words_le(packed.data(), body.data() + bitmap_words * 8,
                    set_words * 8);
      cops.sparse_expand(words.data(), nwords, bitmap.data(), packed.data());
      break;
    }
    case kModeRice: {
      if (body.size() < 9) throw io_error("bitplane: truncated Rice header");
      const u32 k = static_cast<u32>(body[0]);
      u64 ones_le;
      std::memcpy(&ones_le, body.data() + 1, 8);
      const u64 ones = host_to_le64(ones_le);
      // Bounds audit: a valid body has k <= 40 (see rice_parameter) and at
      // most one set bit per coded position; reject before the gap walk so a
      // malformed header cannot drive shifts past 63 or unbounded work.
      if (k > 63 || ones > num_bits)
        throw io_error("bitplane: malformed Rice header");
      const u64 stream_bytes = body.size() - 9;
      std::vector<u64> stream(words_for_bits(stream_bytes * 8), 0);
      load_words_le(stream.data(), body.data() + 9, stream_bytes);
      if (!cops.rice_expand(stream.data(), stream_bytes * 8, ones, k,
                            num_bits, words.data()))
        throw io_error("bitplane: malformed Rice body");
      break;
    }
    default:
      throw io_error("bitplane: unknown segment mode " + std::to_string(mode));
  }
  return words;
}

PlaneSet encode_planes(std::span<const f64> coeffs, u32 max_planes,
                       ThreadPool* pool, CodecStats* stats) {
  RAPIDS_REQUIRE(max_planes <= kMagnitudePlanes);
  PlaneSet ps;
  ps.count = coeffs.size();
  if (coeffs.empty()) return ps;

  const kernels::BitplaneOps& ops = kernels::bitplane_ops();
  const f64 max_abs = ops.max_abs(coeffs.data(), coeffs.size());
  ps.max_abs = max_abs;
  if (max_abs == 0.0) {
    // All-zero level: a zero sign plane and no magnitude planes needed, but
    // keep the requested plane count so retrieval bookkeeping stays uniform.
    const u64 nwords = words_for_bits(ps.count);
    std::vector<u64> zero(nwords, 0);
    Timer t;
    ps.sign = encode_segment(zero, ps.count);
    ps.planes.assign(max_planes, ps.sign);
    if (stats != nullptr) {
      stats->seconds += t.seconds();
      tally_segment(ps.sign, *stats);
      for (const PlaneSegment& seg : ps.planes) tally_segment(seg, *stats);
    }
    return ps;
  }

  // E such that |c| / 2^E < 1 for every coefficient.
  ps.exponent = std::ilogb(max_abs) + 1;
  const f64 scale = std::ldexp(1.0, 32 - ps.exponent);  // |c| * scale in [0, 2^32)

  // Quantize, extract signs, and slice planes in one fused blocked pass:
  // each 64-coefficient block is quantized straight into the transpose
  // scratch (no intermediate q[] array and no separate sign pass), bit-
  // transposed, and contributes one 64-bit word to every plane plus one sign
  // word. Blocks own disjoint sign/plane words, so the pass parallelizes
  // without the 64-aligned-grain footwork the split passes needed.
  const u64 n = ps.count;
  const u64 nwords = words_for_bits(n);
  std::vector<u64> sign_words(nwords, 0);
  std::vector<std::vector<u64>> plane_words(max_planes);
  for (auto& w : plane_words) w.assign(nwords, 0);
  auto slice_blocks = [&](u64 wlo, u64 whi) {
    u64 block[64];
    for (u64 w = wlo; w < whi; ++w) {
      const u64 base = w * 64;
      const u32 valid = static_cast<u32>(std::min<u64>(64, n - base));
      ops.quantize64(coeffs.data() + base, valid, scale, block,
                     &sign_words[w]);
      // After the bit transpose, row b holds bit b of every coefficient:
      // plane p (MSB-first) is row 31-p.
      ops.transpose64(block);
      for (u32 p = 0; p < max_planes; ++p)
        plane_words[p][w] = block[31 - p];
    }
  };
  if (pool != nullptr && nwords > 64) {
    pool->parallel_for_chunks(0, nwords, slice_blocks, 0);
  } else {
    slice_blocks(0, nwords);
  }

  // Segment encode: the sign plane and every magnitude plane are independent,
  // so all max_planes + 1 segments fork across the pool in one go (index 0 is
  // the sign). Each task writes only its own preallocated slot, so the bytes
  // are identical to the serial order.
  ps.planes.resize(max_planes);
  Timer t;
  auto compress = [&](u64 idx) {
    if (idx == 0) {
      ps.sign = encode_segment(sign_words, n);
    } else {
      const u64 p = idx - 1;
      ps.planes[p] = encode_segment(plane_words[p], n);
    }
  };
  if (pool != nullptr && max_planes > 0) {
    pool->parallel_for(0, u64{max_planes} + 1, compress);
  } else {
    for (u64 idx = 0; idx <= max_planes; ++idx) compress(idx);
  }
  if (stats != nullptr) {
    stats->seconds += t.seconds();
    tally_segment(ps.sign, *stats);
    for (const PlaneSegment& seg : ps.planes) tally_segment(seg, *stats);
  }
  return ps;
}

std::vector<f64> decode_planes(const PlaneSet& ps, u32 num_planes,
                               ThreadPool* pool, CodecStats* stats) {
  // Single code path with the incremental decoder: a throwaway state starting
  // at zero planes is exactly the from-scratch decode, which is what makes
  // incremental refinement provably byte-identical to it.
  ProgressiveState scratch;
  return decode_planes_incremental(ps, num_planes, scratch, pool, stats);
}

std::vector<f64> decode_planes_incremental(const PlaneSet& ps, u32 num_planes,
                                           ProgressiveState& state,
                                           ThreadPool* pool,
                                           CodecStats* stats) {
  RAPIDS_REQUIRE(num_planes <= ps.planes.size() ||
                 (ps.max_abs == 0.0 && ps.count > 0));
  if (!state.initialized) {
    state.count = ps.count;
    state.initialized = true;
  }
  RAPIDS_REQUIRE_MSG(state.count == ps.count,
                     "bitplane: progressive state belongs to another plane set");
  RAPIDS_REQUIRE_MSG(num_planes >= state.planes_decoded,
                     "bitplane: progressive decode cannot drop planes");

  std::vector<f64> out(ps.count, 0.0);
  if (ps.count == 0 || ps.max_abs == 0.0 || num_planes == 0) {
    state.planes_decoded = num_planes;
    return out;
  }

  const u64 n = ps.count;
  const u64 nwords = words_for_bits(n);
  if (state.q.empty()) state.q.assign(n, 0);

  const u32 p0 = state.planes_decoded;
  const u32 delta = num_planes - p0;
  // The sign segment joins the first call's parallel decode as index 0; the
  // delta planes follow. Every task fills its own slot, so the incremental
  // schedule and the pool width cannot change the decoded words.
  const u32 want_sign = state.sign_words.empty() ? 1 : 0;
  if (delta + want_sign > 0) {
    std::vector<std::vector<u64>> plane_words(delta);
    Timer t;
    auto decode_one = [&](u64 i) {
      if (want_sign != 0 && i == 0) {
        state.sign_words = decode_segment(ps.sign, n);
      } else {
        const u64 p = i - want_sign;
        plane_words[p] = decode_segment(ps.planes[p0 + p], n);
      }
    };
    if (pool != nullptr && delta + want_sign > 1) {
      pool->parallel_for(0, u64{delta} + want_sign, decode_one);
    } else {
      for (u64 i = 0; i < u64{delta} + want_sign; ++i) decode_one(i);
    }
    if (stats != nullptr) {
      stats->seconds += t.seconds();
      if (want_sign != 0) tally_segment(ps.sign, *stats);
      for (u32 i = 0; i < delta; ++i) tally_segment(ps.planes[p0 + i], *stats);
    }

    // Blocked merge mirroring the encoder's transpose. The new planes occupy
    // bit positions of q that previous planes never touched, so OR-ing the
    // transposed block in reproduces a full decode exactly.
    if (delta > 0) {
      const kernels::BitplaneOps& mops = kernels::bitplane_ops();
      std::vector<u32>& q = state.q;
      auto merge = [&](u64 wlo, u64 whi) {
        u64 block[64];
        for (u64 w = wlo; w < whi; ++w) {
          const u64 base = w * 64;
          const u32 valid = static_cast<u32>(std::min<u64>(64, n - base));
          std::fill(std::begin(block), std::end(block), 0);
          for (u32 i = 0; i < delta; ++i)
            block[31 - (p0 + i)] = plane_words[i][w];
          mops.transpose64(block);  // involution: rows become coefficient values
          for (u32 i = 0; i < valid; ++i)
            q[base + i] |= static_cast<u32>(block[i]);
        }
      };
      if (pool != nullptr && nwords > 64) {
        pool->parallel_for_chunks(0, nwords, merge, 0);
      } else {
        merge(0, nwords);
      }
    }
    state.planes_decoded = num_planes;
  }

  const std::vector<u32>& q = state.q;
  const std::vector<u64>& sign_words = state.sign_words;
  const f64 inv_scale = std::ldexp(1.0, ps.exponent - 32);
  // Midpoint of the truncated tail: half of the last decoded plane's weight.
  // Applied at materialization only — q itself stays raw, so the next
  // refinement can re-derive the midpoint for its own plane count.
  const u32 mid = num_planes < 32 ? (1u << (31 - num_planes)) : 0u;
  // Chunk over whole sign words so the dispatched kernel's relative sign
  // indexing lines up with absolute coefficient positions.
  const kernels::BitplaneOps& rops = kernels::bitplane_ops();
  auto reconstruct = [&](u64 wlo, u64 whi) {
    const u64 lo = wlo * 64;
    const u64 hi = std::min(n, whi * 64);
    rops.dequantize(out.data() + lo, q.data() + lo, sign_words.data() + wlo,
                    inv_scale, mid, hi - lo);
  };
  if (pool != nullptr && nwords > (1u << 10)) {
    pool->parallel_for_chunks(0, nwords, reconstruct, 0);
  } else {
    reconstruct(0, nwords);
  }
  return out;
}

}  // namespace rapids::mgard
