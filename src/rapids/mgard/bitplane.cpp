#include "rapids/mgard/bitplane.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "rapids/mgard/kernels/kernels.hpp"
#include "rapids/parallel/thread_pool.hpp"

namespace rapids::mgard {

namespace {

constexpr u8 kModeRaw = 0;
constexpr u8 kModeSparse = 1;
constexpr u8 kModeZero = 2;
constexpr u8 kModeRice = 3;

u64 words_for_bits(u64 bits) { return ceil_div(bits, 64); }

/// Append-only bit stream (LSB-first within bytes) with a 64-bit staging
/// accumulator so the common path is shift+or, not per-bit byte writes.
class BitWriter {
 public:
  void put_bit(u32 bit) { put_bits(bit, 1); }

  void put_bits(u64 value, u32 count) {
    if (count == 0) return;
    if (count < 64) value &= (u64{1} << count) - 1;
    acc_ |= value << fill_;
    const u32 room = 64 - fill_;
    if (count < room) {
      fill_ += count;
      return;
    }
    flush_word();
    if (count > room) {
      acc_ = value >> room;
      fill_ = count - room;
    }
  }

  /// Unary: `q` zeros then a one.
  void put_unary(u64 q) {
    while (q >= 32) {
      put_bits(0, 32);
      q -= 32;
    }
    put_bits(u64{1} << q, static_cast<u32>(q) + 1);
  }

  /// Finalize and take the buffer (byte-padded with zeros).
  Bytes take() {
    if (fill_ > 0) {
      const u64 word = host_to_le(acc_);
      const std::size_t tail = (fill_ + 7) / 8;
      const std::size_t off = buf_.size();
      buf_.resize(off + tail);
      std::memcpy(buf_.data() + off, &word, tail);
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(buf_);
  }

 private:
  /// The stream is LSB-first within bytes, i.e. the accumulator's
  /// little-endian image; swap on big-endian hosts so one memcpy emits it.
  static u64 host_to_le(u64 v) {
    if constexpr (std::endian::native == std::endian::big)
      return __builtin_bswap64(v);
    return v;
  }

  void flush_word() {
    const u64 word = host_to_le(acc_);
    const std::size_t off = buf_.size();
    buf_.resize(off + 8);
    std::memcpy(buf_.data() + off, &word, 8);
    acc_ = 0;
    fill_ = 0;
  }

  Bytes buf_;
  u64 acc_ = 0;
  u32 fill_ = 0;
};

/// Bounds-checked bit stream reader matching BitWriter's layout. Reads stage
/// up to 64 bits at a time (Rice gap decoding is the hot segment mode), so
/// get_bits is a mask+shift and get_unary a countr_zero instead of per-bit
/// byte loads. Truncation still throws: a read that needs more bits than the
/// buffer has left fails at the refill.
class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> data) : data_(data) {}

  u32 get_bit() { return static_cast<u32>(get_bits(1)); }

  u64 get_bits(u32 count) {
    u64 v = 0;
    u32 got = 0;
    while (got < count) {  // at most two iterations for count <= 64
      if (avail_ == 0) refill();
      const u32 take = std::min(count - got, avail_);
      v |= (acc_ & mask(take)) << got;
      consume(take);
      got += take;
    }
    return v;
  }

  u64 get_unary() {
    u64 q = 0;
    for (;;) {
      if (avail_ == 0) refill();
      if (acc_ == 0) {
        // Every staged bit is zero: the run continues into the next word.
        q += avail_;
        avail_ = 0;
        continue;
      }
      const u32 z = static_cast<u32>(std::countr_zero(acc_));
      q += z;
      consume(z + 1);
      return q;
    }
  }

 private:
  static u64 mask(u32 bits) {
    return bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1;
  }

  void consume(u32 bits) {
    acc_ = bits >= 64 ? 0 : acc_ >> bits;
    avail_ -= bits;
  }

  /// Stage the next 1..8 bytes. Unloaded high bytes stay zero, so a zero
  /// accumulator near the stream tail never fabricates bits past the end —
  /// the next refill on an empty buffer throws instead.
  void refill() {
    const std::size_t left = data_.size() - pos_;
    if (left == 0) throw io_error("bitplane: truncated bit stream");
    const std::size_t load = std::min<std::size_t>(8, left);
    u64 word = 0;
    std::memcpy(&word, data_.data() + pos_, load);
    if constexpr (std::endian::native == std::endian::big)
      word = __builtin_bswap64(word);
    acc_ = word;
    avail_ = static_cast<u32>(load * 8);
    pos_ += load;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  u64 acc_ = 0;   ///< next bits, LSB first
  u32 avail_ = 0; ///< valid bits in acc_
};

/// Rice parameter for gap coding at a given mean gap: k ~ log2(mean).
u32 rice_parameter(u64 num_bits, u64 ones) {
  RAPIDS_REQUIRE(ones > 0);
  const u64 mean_gap = std::max<u64>(1, num_bits / ones);
  u32 k = 0;
  while ((u64{2} << k) < mean_gap && k < 40) ++k;
  return k;
}

/// Rice-encode the positions of set bits as gaps. Returns the encoded body
/// (without the mode byte): [k u8][ones u64][gap bitstream].
Bytes rice_encode(std::span<const u64> words, u64 num_bits, u64 ones) {
  const u32 k = rice_parameter(num_bits, ones);
  BitWriter bw;
  u64 prev = 0;  // position + 1 of the previous set bit
  for (u64 w = 0; w < words.size(); ++w) {
    u64 word = words[w];
    while (word != 0) {
      const u64 pos = w * 64 + static_cast<u64>(__builtin_ctzll(word));
      const u64 gap = pos - prev;
      bw.put_unary(gap >> k);
      bw.put_bits(gap, k);
      prev = pos + 1;
      word &= word - 1;
    }
  }
  const Bytes stream = bw.take();
  ByteWriter out;
  out.put_u8(static_cast<u8>(k));
  out.put_u64(ones);
  out.put_raw(as_bytes_view(stream));
  return out.take();
}

std::vector<u64> rice_decode(std::span<const std::byte> body, u64 num_bits) {
  ByteReader r(body);
  const u32 k = r.get_u8();
  const u64 ones = r.get_u64();
  BitReader br(r.get_raw(r.remaining()));
  std::vector<u64> words(words_for_bits(num_bits), 0);
  u64 prev = 0;
  for (u64 i = 0; i < ones; ++i) {
    const u64 gap = (br.get_unary() << k) | br.get_bits(k);
    const u64 pos = prev + gap;
    if (pos >= num_bits) throw io_error("bitplane: Rice position out of range");
    words[pos >> 6] |= u64{1} << (pos & 63);
    prev = pos + 1;
  }
  return words;
}

}  // namespace

u64 PlaneSet::prefix_bytes(u32 p) const {
  RAPIDS_REQUIRE(p <= planes.size());
  u64 total = sign.size();
  for (u32 i = 0; i < p; ++i) total += planes[i].size();
  return total;
}

f64 PlaneSet::error_bound(u32 p) const {
  if (count == 0 || max_abs == 0.0) return 0.0;
  const u32 eff = std::min<u32>(p, kMagnitudePlanes);
  return std::ldexp(1.0, exponent - static_cast<i32>(eff));
}

PlaneSegment encode_segment(std::span<const u64> words, u64 num_bits) {
  RAPIDS_REQUIRE(words.size() == words_for_bits(num_bits));
  const u64 nwords = words.size();
  u64 nonzero_words = 0;
  u64 ones = 0;
  for (u64 w : words) {
    nonzero_words += (w != 0);
    ones += static_cast<u64>(__builtin_popcountll(w));
  }

  ByteWriter out;
  if (ones == 0) {
    out.put_u8(kModeZero);
    return PlaneSegment{out.take()};
  }

  const u64 raw_bytes = nwords * 8;

  // Rice-coded gaps win whenever set bits are reasonably sparse; the exact
  // size check below arbitrates against the other modes.
  Bytes rice;
  if (ones * 2 < num_bits) rice = rice_encode(words, num_bits, ones);

  // Sparse: bitmap of nonzero words (nwords bits) + the nonzero words.
  const u64 sparse_bytes = words_for_bits(nwords) * 8 + nonzero_words * 8;

  if (!rice.empty() && rice.size() < raw_bytes && rice.size() < sparse_bytes) {
    out.put_u8(kModeRice);
    out.put_raw(as_bytes_view(rice));
  } else if (sparse_bytes < raw_bytes) {
    out.put_u8(kModeSparse);
    std::vector<u64> bitmap(words_for_bits(nwords), 0);
    for (u64 i = 0; i < nwords; ++i)
      if (words[i] != 0) bitmap[i >> 6] |= u64{1} << (i & 63);
    for (u64 b : bitmap) out.put_u64(b);
    for (u64 i = 0; i < nwords; ++i)
      if (words[i] != 0) out.put_u64(words[i]);
  } else {
    out.put_u8(kModeRaw);
    for (u64 w : words) out.put_u64(w);
  }
  return PlaneSegment{out.take()};
}

std::vector<u64> decode_segment(const PlaneSegment& seg, u64 num_bits) {
  const u64 nwords = words_for_bits(num_bits);
  std::vector<u64> words(nwords, 0);
  ByteReader r(as_bytes_view(seg.data));
  const u8 mode = r.get_u8();
  switch (mode) {
    case kModeZero:
      break;
    case kModeRaw:
      for (u64 i = 0; i < nwords; ++i) words[i] = r.get_u64();
      break;
    case kModeSparse: {
      std::vector<u64> bitmap(words_for_bits(nwords));
      for (auto& b : bitmap) b = r.get_u64();
      for (u64 i = 0; i < nwords; ++i)
        if (bitmap[i >> 6] & (u64{1} << (i & 63))) words[i] = r.get_u64();
      break;
    }
    case kModeRice:
      words = rice_decode(r.get_raw(r.remaining()), num_bits);
      break;
    default:
      throw io_error("bitplane: unknown segment mode " + std::to_string(mode));
  }
  return words;
}

PlaneSet encode_planes(std::span<const f64> coeffs, u32 max_planes,
                       ThreadPool* pool) {
  RAPIDS_REQUIRE(max_planes <= kMagnitudePlanes);
  PlaneSet ps;
  ps.count = coeffs.size();
  if (coeffs.empty()) return ps;

  const kernels::BitplaneOps& ops = kernels::bitplane_ops();
  const f64 max_abs = ops.max_abs(coeffs.data(), coeffs.size());
  ps.max_abs = max_abs;
  if (max_abs == 0.0) {
    // All-zero level: a zero sign plane and no magnitude planes needed, but
    // keep the requested plane count so retrieval bookkeeping stays uniform.
    const u64 nwords = words_for_bits(ps.count);
    std::vector<u64> zero(nwords, 0);
    ps.sign = encode_segment(zero, ps.count);
    ps.planes.assign(max_planes, ps.sign);
    return ps;
  }

  // E such that |c| / 2^E < 1 for every coefficient.
  ps.exponent = std::ilogb(max_abs) + 1;
  const f64 scale = std::ldexp(1.0, 32 - ps.exponent);  // |c| * scale in [0, 2^32)

  // Quantize, extract signs, and slice planes in one fused blocked pass:
  // each 64-coefficient block is quantized straight into the transpose
  // scratch (no intermediate q[] array and no separate sign pass), bit-
  // transposed, and contributes one 64-bit word to every plane plus one sign
  // word. Blocks own disjoint sign/plane words, so the pass parallelizes
  // without the 64-aligned-grain footwork the split passes needed.
  const u64 n = ps.count;
  const u64 nwords = words_for_bits(n);
  std::vector<u64> sign_words(nwords, 0);
  std::vector<std::vector<u64>> plane_words(max_planes);
  for (auto& w : plane_words) w.assign(nwords, 0);
  auto slice_blocks = [&](u64 wlo, u64 whi) {
    u64 block[64];
    for (u64 w = wlo; w < whi; ++w) {
      const u64 base = w * 64;
      const u32 valid = static_cast<u32>(std::min<u64>(64, n - base));
      ops.quantize64(coeffs.data() + base, valid, scale, block,
                     &sign_words[w]);
      // After the bit transpose, row b holds bit b of every coefficient:
      // plane p (MSB-first) is row 31-p.
      ops.transpose64(block);
      for (u32 p = 0; p < max_planes; ++p)
        plane_words[p][w] = block[31 - p];
    }
  };
  if (pool != nullptr && nwords > 64) {
    pool->parallel_for_chunks(0, nwords, slice_blocks, 0);
  } else {
    slice_blocks(0, nwords);
  }
  ps.sign = encode_segment(sign_words, n);

  ps.planes.resize(max_planes);
  auto compress_plane = [&](u64 p) {
    ps.planes[p] = encode_segment(plane_words[p], n);
  };
  if (pool != nullptr && max_planes > 1) {
    pool->parallel_for(0, max_planes, compress_plane);
  } else {
    for (u64 p = 0; p < max_planes; ++p) compress_plane(p);
  }
  return ps;
}

std::vector<f64> decode_planes(const PlaneSet& ps, u32 num_planes,
                               ThreadPool* pool) {
  // Single code path with the incremental decoder: a throwaway state starting
  // at zero planes is exactly the from-scratch decode, which is what makes
  // incremental refinement provably byte-identical to it.
  ProgressiveState scratch;
  return decode_planes_incremental(ps, num_planes, scratch, pool);
}

std::vector<f64> decode_planes_incremental(const PlaneSet& ps, u32 num_planes,
                                           ProgressiveState& state,
                                           ThreadPool* pool) {
  RAPIDS_REQUIRE(num_planes <= ps.planes.size() ||
                 (ps.max_abs == 0.0 && ps.count > 0));
  if (!state.initialized) {
    state.count = ps.count;
    state.initialized = true;
  }
  RAPIDS_REQUIRE_MSG(state.count == ps.count,
                     "bitplane: progressive state belongs to another plane set");
  RAPIDS_REQUIRE_MSG(num_planes >= state.planes_decoded,
                     "bitplane: progressive decode cannot drop planes");

  std::vector<f64> out(ps.count, 0.0);
  if (ps.count == 0 || ps.max_abs == 0.0 || num_planes == 0) {
    state.planes_decoded = num_planes;
    return out;
  }

  const u64 n = ps.count;
  const u64 nwords = words_for_bits(n);
  if (state.q.empty()) state.q.assign(n, 0);
  if (state.sign_words.empty()) state.sign_words = decode_segment(ps.sign, n);

  const u32 p0 = state.planes_decoded;
  const u32 delta = num_planes - p0;
  if (delta > 0) {
    // Decode only the new planes' segments (parallel across planes; merging
    // in parallel would race on q, so it stays a blocked pass below).
    std::vector<std::vector<u64>> plane_words(delta);
    auto decode_one = [&](u64 i) {
      plane_words[i] = decode_segment(ps.planes[p0 + i], n);
    };
    if (pool != nullptr && delta > 1) {
      pool->parallel_for(0, delta, decode_one);
    } else {
      for (u64 i = 0; i < delta; ++i) decode_one(i);
    }

    // Blocked merge mirroring the encoder's transpose. The new planes occupy
    // bit positions of q that previous planes never touched, so OR-ing the
    // transposed block in reproduces a full decode exactly.
    const kernels::BitplaneOps& mops = kernels::bitplane_ops();
    std::vector<u32>& q = state.q;
    auto merge = [&](u64 wlo, u64 whi) {
      u64 block[64];
      for (u64 w = wlo; w < whi; ++w) {
        const u64 base = w * 64;
        const u32 valid = static_cast<u32>(std::min<u64>(64, n - base));
        std::fill(std::begin(block), std::end(block), 0);
        for (u32 i = 0; i < delta; ++i)
          block[31 - (p0 + i)] = plane_words[i][w];
        mops.transpose64(block);  // involution: rows become coefficient values
        for (u32 i = 0; i < valid; ++i)
          q[base + i] |= static_cast<u32>(block[i]);
      }
    };
    if (pool != nullptr && nwords > 64) {
      pool->parallel_for_chunks(0, nwords, merge, 0);
    } else {
      merge(0, nwords);
    }
    state.planes_decoded = num_planes;
  }

  const std::vector<u32>& q = state.q;
  const std::vector<u64>& sign_words = state.sign_words;
  const f64 inv_scale = std::ldexp(1.0, ps.exponent - 32);
  // Midpoint of the truncated tail: half of the last decoded plane's weight.
  // Applied at materialization only — q itself stays raw, so the next
  // refinement can re-derive the midpoint for its own plane count.
  const u32 mid = num_planes < 32 ? (1u << (31 - num_planes)) : 0u;
  // Chunk over whole sign words so the dispatched kernel's relative sign
  // indexing lines up with absolute coefficient positions.
  const kernels::BitplaneOps& rops = kernels::bitplane_ops();
  auto reconstruct = [&](u64 wlo, u64 whi) {
    const u64 lo = wlo * 64;
    const u64 hi = std::min(n, whi * 64);
    rops.dequantize(out.data() + lo, q.data() + lo, sign_words.data() + wlo,
                    inv_scale, mid, hi - lo);
  };
  if (pool != nullptr && nwords > (1u << 10)) {
    pool->parallel_for_chunks(0, nwords, reconstruct, 0);
  } else {
    reconstruct(0, nwords);
  }
  return out;
}

}  // namespace rapids::mgard
