#pragma once

/// \file workspace.hpp
/// Reusable scratch memory for the multigrid refactor/reconstruct path. One
/// decompose() or recompose() call needs an active-subgrid buffer plus two or
/// three correction buffers *per level*; before this arena existed every level
/// of every pipeline call allocated them fresh. A RefactorWorkspace owns those
/// buffers and is handed down through decompose/recompose so the vectors are
/// resized (capacity retained) instead of reallocated across levels and calls.
///
/// Lifetime: a workspace is single-owner while in use (the transform writes
/// into its buffers), so concurrent refactor calls each need their own. The
/// WorkspacePool hands out leases RAII-style: acquire() pops a free workspace
/// (or creates one when the pool is empty — the pool never blocks), and the
/// lease returns it on destruction. The Refactorer leases one per
/// refactor/reconstruct call from the process-wide pool, so steady-state
/// pipeline traffic reuses a small set of warm workspaces sized by the
/// observed concurrency.

#include <memory>
#include <mutex>
#include <vector>

#include "rapids/util/common.hpp"

namespace rapids::mgard {

/// Per-element-type scratch of one transform invocation.
template <typename T>
struct RefactorBuffers {
  std::vector<T> active;   ///< gathered active sub-grid of the current level
  std::vector<T> active2;  ///< level-fusion ping-pong partner of `active`:
                           ///< the fused traversal reads the previous level's
                           ///< active grid while writing the current one
  std::vector<T> resid;    ///< residual field (zeroed coarse nodes)
  std::vector<T> load_a;   ///< load-operator ping buffer
  std::vector<T> load_b;   ///< load-operator pong buffer
};

/// All scratch one decompose()/recompose() call needs. Not thread-safe:
/// one workspace, one transform at a time.
struct RefactorWorkspace {
  RefactorBuffers<f32> f32_bufs;
  RefactorBuffers<f64> f64_bufs;
  std::vector<f64> cp;     ///< Thomas c' coefficients (per mass_solve call)
  std::vector<f64> denom;  ///< Thomas forward denominators

  template <typename T>
  RefactorBuffers<T>& bufs();
};

template <>
inline RefactorBuffers<f32>& RefactorWorkspace::bufs<f32>() {
  return f32_bufs;
}
template <>
inline RefactorBuffers<f64>& RefactorWorkspace::bufs<f64>() {
  return f64_bufs;
}

/// Free-list of RefactorWorkspaces. acquire() never blocks: it reuses a free
/// workspace when one exists and creates one otherwise.
class WorkspacePool {
 public:
  /// RAII lease; returns the workspace to the pool on destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<RefactorWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr && ws_ != nullptr) pool_->release(std::move(ws_));
    }

    RefactorWorkspace* get() const { return ws_.get(); }
    RefactorWorkspace& operator*() const { return *ws_; }
    RefactorWorkspace* operator->() const { return ws_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<RefactorWorkspace> ws_;
  };

  Lease acquire();

  /// Number of workspaces ever constructed by this pool (== observed peak
  /// concurrency; steady state allocates none).
  u64 created() const;

  /// Number of workspaces currently parked in the free list.
  u64 idle() const;

  /// The process-wide pool the Refactorer leases from.
  static WorkspacePool& global();

 private:
  friend class Lease;
  void release(std::unique_ptr<RefactorWorkspace> ws);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RefactorWorkspace>> free_;
  u64 created_ = 0;
};

}  // namespace rapids::mgard
