#pragma once

/// \file refactorer.hpp
/// Public facade of the refactoring subsystem: turn a float field into a
/// hierarchical, error-bounded representation (refactor) and rebuild an
/// approximation from any prefix of retrieval levels (reconstruct). This is
/// the role pMGARD plays in the paper.

#include <functional>
#include <string>
#include <vector>

#include "rapids/mgard/decompose.hpp"
#include "rapids/mgard/grid.hpp"
#include "rapids/mgard/retrieval.hpp"
#include "rapids/util/bytes.hpp"
#include "rapids/util/common.hpp"

namespace rapids {
class ThreadPool;
}

namespace rapids::mgard {

/// Options for a refactor run.
struct RefactorOptions {
  u32 decomp_levels = 4;        ///< dyadic coarsening steps L
  u32 num_retrieval_levels = 4; ///< hierarchy depth the paper calls "l"
  /// Explicit relative-error targets per retrieval level (e_1 > ... > e_l).
  /// Empty = geometric spacing down to final_rel_error.
  std::vector<f64> target_rel_errors;
  f64 final_rel_error = 1e-7;   ///< accuracy of the full representation
  bool l2_correction = true;    ///< MGARD projection step (ablatable)
  f64 bound_factor = 2.0;       ///< multilevel L-inf amplification constant
  u32 max_planes = kMagnitudePlanes;  ///< magnitude planes kept per level
};

/// A refactored data object: metadata + the retrieval-level payloads.
/// The payloads are what gets erasure-coded and distributed; the metadata is
/// what the metadata-management component persists in the key-value store.
struct RefactoredObject {
  std::string name;
  Dims dims;                  ///< original extents
  u32 decomp_levels = 0;
  bool l2_correction = true;
  f64 bound_factor = 2.0;
  f64 data_max_abs = 0.0;     ///< max |original| (relative-error denominator)
  std::vector<DLevelMeta> dlevels;
  std::vector<RetrievalLevel> levels;

  /// Bytes of the original (uncompressed f32) data.
  u64 original_bytes() const { return dims.total() * sizeof(f32); }

  /// Total bytes across all retrieval-level payloads.
  u64 refactored_bytes() const;

  /// Payload size of retrieval level j (0-based) — the paper's s_{j+1}.
  u64 level_bytes(u32 j) const { return levels.at(j).payload.size(); }

  /// Guaranteed relative L-infinity error when reconstructing from the first
  /// j retrieval levels (j >= 1) — the paper's e_j.
  f64 rel_error_bound(u32 j) const { return levels.at(j - 1).rel_error_bound; }

  /// Serialize everything except the payloads (for the metadata store).
  Bytes serialize_metadata() const;

  /// Inverse of serialize_metadata(); `levels[i].payload` stay empty.
  static RefactoredObject deserialize_metadata(std::span<const std::byte> data);
};

/// Wall-time breakdown of one refactor run (all stages run on the calling
/// thread; parallel_for fan-out is included in its stage).
struct RefactorTimings {
  f64 transform_seconds = 0.0;     ///< widen + pad + multigrid decompose
  f64 plane_encode_seconds = 0.0;  ///< per-dlevel gather + bitplane encode
  f64 assemble_seconds = 0.0;      ///< retrieval-level plan + materialize
  CodecStats plane_codec;          ///< entropy-codec substage of plane encode
};

/// The refactoring engine. Stateless apart from options and the worker pool;
/// safe to reuse across objects.
class Refactorer {
 public:
  explicit Refactorer(RefactorOptions options = {}, ThreadPool* pool = nullptr)
      : options_(std::move(options)), pool_(pool) {}

  const RefactorOptions& options() const { return options_; }

  /// Decompose, quantize, and pack `data` (extents `dims`, row-major,
  /// x fastest) into a RefactoredObject named `name`. `timings`, when
  /// non-null, receives the per-stage wall-time breakdown.
  RefactoredObject refactor(std::span<const f32> data, Dims dims,
                            const std::string& name,
                            RefactorTimings* timings = nullptr) const;

  /// Announces the complete object metadata (bounds, dlevels, per-level
  /// segment plans — payloads still empty) plus the exact serialized size of
  /// every retrieval level, before any payload exists. The streaming prepare
  /// path runs its FT optimizer here.
  using PlanSink =
      std::function<void(const RefactoredObject& meta,
                         const std::vector<u64>& level_sizes)>;
  /// Delivers one materialized retrieval level (0-based, strictly
  /// ascending). The payload is byte-identical to refactor()'s levels[j].
  using LevelSink = std::function<void(u32 level, RetrievalLevel&& lvl)>;

  /// Streaming refactor: identical computation to refactor(), but retrieval
  /// levels are handed to `on_level` one at a time as they materialize, so a
  /// downstream encode/distribute stage overlaps with the remaining levels'
  /// serialization. `on_plan` (optional) fires once, before the first level,
  /// with the metadata and all planned level sizes. Both sinks run on the
  /// calling thread. The returned object carries the same metadata as
  /// refactor()'s but its levels' payloads are empty — they were moved into
  /// `on_level`.
  RefactoredObject refactor_streaming(std::span<const f32> data, Dims dims,
                                      const std::string& name,
                                      const PlanSink& on_plan,
                                      const LevelSink& on_level,
                                      RefactorTimings* timings = nullptr) const;

  /// Rebuild an approximation using the first `level_payloads.size()`
  /// retrieval levels (must be a prefix: levels 1..j). `meta` may come from
  /// refactor() or deserialize_metadata(). `codec`, when non-null, receives
  /// the entropy-codec substage accounting of the plane decode.
  std::vector<f32> reconstruct(const RefactoredObject& meta,
                               std::span<const Bytes> level_payloads,
                               CodecStats* codec = nullptr) const;

  /// Incremental counterpart of reconstruct() for refinement sessions.
  /// `sets` are the accumulated plane sets of a retrieval prefix (grown with
  /// append_plane_sets); `states` (initially empty, owned by the caller
  /// across rungs) lets the bitplane decode pay only for planes added since
  /// the last call — the recompose itself still runs over the full grid.
  /// Bit-identical to reconstruct() over the same prefix.
  std::vector<f32> reconstruct_incremental(
      const RefactoredObject& meta, const std::vector<PlaneSet>& sets,
      std::vector<ProgressiveState>& states, CodecStats* codec = nullptr) const;

 private:
  /// Shared tail of the two reconstruct flavors: decode (incrementally when
  /// `states` is non-null), scatter, recompose, crop.
  std::vector<f32> reconstruct_from_sets(
      const RefactoredObject& meta, const std::vector<PlaneSet>& sets,
      std::vector<ProgressiveState>* states, CodecStats* codec) const;

  RefactorOptions options_;
  ThreadPool* pool_;
};

}  // namespace rapids::mgard
