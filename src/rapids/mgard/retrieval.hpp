#pragma once

/// \file retrieval.hpp
/// Reorders the bitplane segments of all decomposition levels into a small
/// number of *retrieval levels* — the units the paper erasure-codes and
/// distributes. Segments are emitted greedily by error impact: at every step
/// the decomposition level whose remaining error bound is largest contributes
/// its next magnitude plane (its sign plane rides along in front of its first
/// magnitude plane). The running total of per-level bounds, scaled by the
/// multilevel amplification factor, gives a guaranteed absolute error bound
/// for every prefix of the stream; the stream is then cut into retrieval
/// levels at user-specified (or geometrically spaced) relative-error targets.
/// Everything past the last target is dropped — that lossy tail cut plus the
/// sparse plane encoding is where the compression comes from.

#include <string>
#include <vector>

#include "rapids/mgard/bitplane.hpp"
#include "rapids/util/bytes.hpp"
#include "rapids/util/common.hpp"

namespace rapids::mgard {

/// Reference to one plane segment inside the global stream.
struct SegmentRef {
  u32 dlevel = 0;    ///< decomposition level the segment came from
  u32 plane = 0;     ///< 0 = sign plane, p >= 1 = magnitude plane p-1
  u64 bytes = 0;     ///< encoded size
};

/// One retrieval level: a self-contained payload (parseable stream of
/// segments) plus the guaranteed error bounds after consuming levels 1..j.
struct RetrievalLevel {
  Bytes payload;
  f64 abs_error_bound = 0.0;  ///< absolute L-infinity bound using levels 1..j
  f64 rel_error_bound = 0.0;  ///< abs bound / max|original data|
  std::vector<SegmentRef> segments;  ///< index (also recoverable from payload)
};

/// Controls for the stream partitioning.
struct RetrievalOptions {
  u32 num_levels = 4;  ///< retrieval levels to produce
  /// Target relative errors e_1 > e_2 > ... > e_l. Empty = geometric spacing
  /// from the first achievable bound down to final_rel_error.
  std::vector<f64> target_rel_errors;
  f64 final_rel_error = 1e-7;  ///< tail cut when targets are auto-spaced
  f64 bound_factor = 2.0;      ///< multilevel L-inf amplification constant
};

/// The plan of one retrieval level before any payload is serialized: the
/// segment sequence the greedy partitioner chose, the exact wire size that
/// sequence will occupy, and the guaranteed bounds. plan + materialize is the
/// split the streaming prepare path runs on: planning every level up front
/// yields all level sizes (the FT optimizer's input) without copying a byte,
/// then each level's payload is materialized — and handed downstream — one
/// at a time.
struct RetrievalLevelPlan {
  std::vector<SegmentRef> segments;
  u64 payload_bytes = 0;      ///< serialized size of the segment sequence
  f64 abs_error_bound = 0.0;  ///< after consuming levels 1..j
  f64 rel_error_bound = 0.0;
};

/// Run the greedy partitioner over the plane sets without serializing any
/// payload. `data_max_abs` is max|original data| (relative-error
/// denominator).
std::vector<RetrievalLevelPlan> plan_retrieval_levels(
    const std::vector<PlaneSet>& plane_sets, f64 data_max_abs,
    const RetrievalOptions& opt);

/// Serialize one planned level's payload from the plane sets. Byte-identical
/// to the corresponding assemble_retrieval_levels() output level.
RetrievalLevel materialize_retrieval_level(
    const std::vector<PlaneSet>& plane_sets, const RetrievalLevelPlan& plan);

/// Assemble retrieval levels from the per-decomposition-level plane sets.
/// `data_max_abs` is max|original data| (denominator of the relative error).
/// Implemented as plan_retrieval_levels + materialize_retrieval_level per
/// level, so staged and streamed payloads agree by construction.
std::vector<RetrievalLevel> assemble_retrieval_levels(
    const std::vector<PlaneSet>& plane_sets, f64 data_max_abs,
    const RetrievalOptions& opt);

/// Parse a retrieval-level payload back into (ref, bytes) segments.
std::vector<std::pair<SegmentRef, PlaneSegment>> parse_retrieval_payload(
    std::span<const std::byte> payload);

/// Rebuild per-decomposition-level truncated PlaneSets from the payloads of
/// the first j retrieval levels. `dlevel_meta` carries (count, max_abs,
/// exponent) per decomposition level as recorded at refactor time. The
/// returned PlaneSets contain only the planes present in the prefix; decode
/// with planes.size().
struct DLevelMeta {
  u64 count = 0;
  f64 max_abs = 0.0;
  i32 exponent = 0;
};
std::vector<PlaneSet> collect_plane_sets(
    const std::vector<DLevelMeta>& dlevel_meta,
    std::span<const Bytes> level_payloads);

/// Append further retrieval-level payloads to plane sets previously built by
/// collect_plane_sets (possibly from an empty payload prefix). The payloads
/// must continue the retrieval prefix exactly where `sets` left off — plane
/// contiguity per decomposition level is enforced. This is how a refinement
/// session grows its plane sets one rung at a time without reparsing the
/// levels it already holds.
void append_plane_sets(std::vector<PlaneSet>& sets,
                       std::span<const Bytes> level_payloads);

/// Number of magnitude-plane segments across the payloads (sign planes
/// excluded) — a header skim with no segment copies. The restore path
/// reports this as "planes decoded".
u64 count_magnitude_segments(std::span<const Bytes> level_payloads);

}  // namespace rapids::mgard
