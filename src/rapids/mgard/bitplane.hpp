#pragma once

/// \file bitplane.hpp
/// Bitplane encoding of multilevel coefficients — the mechanism pMGARD uses
/// for fine-grained error control. Coefficients of one decomposition level
/// are normalized by 2^E (E = exponent above the level's max magnitude) and
/// quantized to 32-bit fixed point; the quantized values are then sliced into
/// a sign plane plus 32 magnitude planes (MSB first). Reconstructing from the
/// first p magnitude planes leaves a per-coefficient error < 2^(E-p), which
/// is what lets the retrieval layer attach a guaranteed error bound to any
/// prefix of planes.
///
/// Each plane is stored in whichever of four segment modes is smallest: zero
/// (a mode byte only), raw (bit-packed), sparse (bitmap of nonzero 64-bit
/// words + the nonzero words), or Rice-coded set-bit gaps. High planes of
/// smooth fields are almost entirely zero, so the sparse and Rice forms are
/// where the refactorer's compression comes from. The segment coder itself
/// runs on the dispatched entropy kernels (kernels::codec_ops) and forks
/// per-segment work across the thread pool; output bytes are identical for
/// every ISA tier, pool width, and incremental-decode schedule.

#include <vector>

#include "rapids/util/bytes.hpp"
#include "rapids/util/common.hpp"

namespace rapids {
class ThreadPool;
}

namespace rapids::mgard {

/// Number of magnitude bitplanes kept per decomposition level.
inline constexpr u32 kMagnitudePlanes = 32;

/// One encoded segment: the sign plane or one magnitude plane, already
/// compressed. Segments are the atoms the retrieval layer distributes across
/// retrieval levels.
struct PlaneSegment {
  Bytes data;  ///< encoded plane (mode byte + payload)

  u64 size() const { return data.size(); }
};

/// All planes of one decomposition level.
struct PlaneSet {
  u64 count = 0;      ///< number of coefficients
  f64 max_abs = 0.0;  ///< max |coefficient| (0 for an all-zero level)
  i32 exponent = 0;   ///< E with max_abs < 2^E (undefined when max_abs == 0)
  PlaneSegment sign;  ///< sign plane
  std::vector<PlaneSegment> planes;  ///< magnitude planes, MSB first

  /// Total encoded bytes of the sign plane plus the first p magnitude planes.
  u64 prefix_bytes(u32 p) const;

  /// Absolute error bound when reconstructing from the first p planes
  /// (p <= planes.size()); beyond the last stored plane the quantization
  /// floor 2^(E-32) remains.
  f64 error_bound(u32 p) const;
};

/// Entropy-codec substage accounting: how long the segment coder ran, how
/// many bytes it produced/consumed, and which segment modes were chosen.
/// `seconds` is the wall time of the (possibly pool-parallel) segment
/// encode/decode region; the counters are exact and deterministic.
struct CodecStats {
  f64 seconds = 0.0;  ///< wall time in segment encode/decode
  u64 segments = 0;   ///< segments encoded or decoded
  u64 bytes = 0;      ///< encoded segment bytes (mode byte included)
  u64 mode_raw = 0;
  u64 mode_sparse = 0;
  u64 mode_zero = 0;
  u64 mode_rice = 0;

  CodecStats& operator+=(const CodecStats& o) {
    seconds += o.seconds;
    segments += o.segments;
    bytes += o.bytes;
    mode_raw += o.mode_raw;
    mode_sparse += o.mode_sparse;
    mode_zero += o.mode_zero;
    mode_rice += o.mode_rice;
    return *this;
  }
};

/// Encode coefficients into sign + magnitude planes. `max_planes` caps how
/// many magnitude planes are produced (32 = lossless to the quantization
/// floor). If `pool` is non-null, the sign and magnitude segments are encoded
/// in parallel (byte-identical to the serial order). If `stats` is non-null,
/// the codec substage accounting is accumulated into it.
PlaneSet encode_planes(std::span<const f64> coeffs, u32 max_planes = kMagnitudePlanes,
                       ThreadPool* pool = nullptr, CodecStats* stats = nullptr);

/// Reconstruct coefficients from the sign plane and the first
/// `num_planes` magnitude planes of `ps` (num_planes <= ps.planes.size()).
/// Coefficients whose decoded prefix is zero stay exactly zero; others get
/// midpoint reconstruction of the truncated tail.
std::vector<f64> decode_planes(const PlaneSet& ps, u32 num_planes,
                               ThreadPool* pool = nullptr,
                               CodecStats* stats = nullptr);

/// Carry-over state for incremental plane decoding: the raw quantized values
/// and sign words accumulated so far for one decomposition level. Planes
/// occupy disjoint bit positions of q, so merging later planes is a pure OR;
/// the truncated-tail midpoint is applied fresh at every materialization and
/// never baked into q, which is what makes refining p0 -> p1 byte-identical
/// to a from-scratch decode_planes(p1).
struct ProgressiveState {
  u64 count = 0;             ///< coefficients (fixed at first use)
  u32 planes_decoded = 0;    ///< planes already merged into q
  bool initialized = false;
  std::vector<u32> q;          ///< quantized magnitudes, no midpoint applied
  std::vector<u64> sign_words; ///< decoded sign plane (decoded once)
};

/// Incremental decode_planes: advance `state` from its current plane count to
/// `num_planes` by decoding and OR-merging only the new planes of `ps`, then
/// materialize the coefficients. For any refinement chain ending at p, the
/// result is bit-for-bit identical to decode_planes(ps, p) — decode_planes
/// itself is implemented as this function with a throwaway state.
std::vector<f64> decode_planes_incremental(const PlaneSet& ps, u32 num_planes,
                                           ProgressiveState& state,
                                           ThreadPool* pool = nullptr,
                                           CodecStats* stats = nullptr);

/// Low-level plane codecs, exposed for tests and benches. ///

/// Compress one packed bit plane (num_bits bits in ceil(num_bits/64) words)
/// into the smallest of the four segment modes. Mode arbitration is part of
/// the byte-identity contract: zero wins iff no bit is set; Rice is
/// considered iff ones * 2 < num_bits and wins iff strictly smaller than
/// both raw and sparse; otherwise sparse wins iff strictly smaller than raw.
PlaneSegment encode_segment(std::span<const u64> words, u64 num_bits);

/// Expand a segment back to packed 64-bit words (num_bits bits valid).
std::vector<u64> decode_segment(const PlaneSegment& seg, u64 num_bits);

}  // namespace rapids::mgard
