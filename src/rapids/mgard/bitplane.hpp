#pragma once

/// \file bitplane.hpp
/// Bitplane encoding of multilevel coefficients — the mechanism pMGARD uses
/// for fine-grained error control. Coefficients of one decomposition level
/// are normalized by 2^E (E = exponent above the level's max magnitude) and
/// quantized to 32-bit fixed point; the quantized values are then sliced into
/// a sign plane plus 32 magnitude planes (MSB first). Reconstructing from the
/// first p magnitude planes leaves a per-coefficient error < 2^(E-p), which
/// is what lets the retrieval layer attach a guaranteed error bound to any
/// prefix of planes.
///
/// Each plane is stored either raw (bit-packed) or sparse (bitmap of nonzero
/// 64-bit words + the nonzero words). High planes of smooth fields are almost
/// entirely zero, so the sparse form is where the refactorer's compression
/// comes from.

#include <vector>

#include "rapids/util/bytes.hpp"
#include "rapids/util/common.hpp"

namespace rapids {
class ThreadPool;
}

namespace rapids::mgard {

/// Number of magnitude bitplanes kept per decomposition level.
inline constexpr u32 kMagnitudePlanes = 32;

/// One encoded segment: the sign plane or one magnitude plane, already
/// compressed. Segments are the atoms the retrieval layer distributes across
/// retrieval levels.
struct PlaneSegment {
  Bytes data;  ///< encoded plane (mode byte + payload)

  u64 size() const { return data.size(); }
};

/// All planes of one decomposition level.
struct PlaneSet {
  u64 count = 0;      ///< number of coefficients
  f64 max_abs = 0.0;  ///< max |coefficient| (0 for an all-zero level)
  i32 exponent = 0;   ///< E with max_abs < 2^E (undefined when max_abs == 0)
  PlaneSegment sign;  ///< sign plane
  std::vector<PlaneSegment> planes;  ///< magnitude planes, MSB first

  /// Total encoded bytes of the sign plane plus the first p magnitude planes.
  u64 prefix_bytes(u32 p) const;

  /// Absolute error bound when reconstructing from the first p planes
  /// (p <= planes.size()); beyond the last stored plane the quantization
  /// floor 2^(E-32) remains.
  f64 error_bound(u32 p) const;
};

/// Encode coefficients into sign + magnitude planes. `max_planes` caps how
/// many magnitude planes are produced (32 = lossless to the quantization
/// floor). If `pool` is non-null, planes are encoded in parallel.
PlaneSet encode_planes(std::span<const f64> coeffs, u32 max_planes = kMagnitudePlanes,
                       ThreadPool* pool = nullptr);

/// Reconstruct coefficients from the sign plane and the first
/// `num_planes` magnitude planes of `ps` (num_planes <= ps.planes.size()).
/// Coefficients whose decoded prefix is zero stay exactly zero; others get
/// midpoint reconstruction of the truncated tail.
std::vector<f64> decode_planes(const PlaneSet& ps, u32 num_planes,
                               ThreadPool* pool = nullptr);

/// Carry-over state for incremental plane decoding: the raw quantized values
/// and sign words accumulated so far for one decomposition level. Planes
/// occupy disjoint bit positions of q, so merging later planes is a pure OR;
/// the truncated-tail midpoint is applied fresh at every materialization and
/// never baked into q, which is what makes refining p0 -> p1 byte-identical
/// to a from-scratch decode_planes(p1).
struct ProgressiveState {
  u64 count = 0;             ///< coefficients (fixed at first use)
  u32 planes_decoded = 0;    ///< planes already merged into q
  bool initialized = false;
  std::vector<u32> q;          ///< quantized magnitudes, no midpoint applied
  std::vector<u64> sign_words; ///< decoded sign plane (decoded once)
};

/// Incremental decode_planes: advance `state` from its current plane count to
/// `num_planes` by decoding and OR-merging only the new planes of `ps`, then
/// materialize the coefficients. For any refinement chain ending at p, the
/// result is bit-for-bit identical to decode_planes(ps, p) — decode_planes
/// itself is implemented as this function with a throwaway state.
std::vector<f64> decode_planes_incremental(const PlaneSet& ps, u32 num_planes,
                                           ProgressiveState& state,
                                           ThreadPool* pool = nullptr);

/// Low-level plane codecs, exposed for tests and benches. ///

/// Pack a bit-per-coefficient plane and compress it (raw vs sparse,
/// whichever is smaller). `bits` holds 0/1 per coefficient.
PlaneSegment encode_segment(std::span<const u64> words, u64 num_bits);

/// Expand a segment back to packed 64-bit words (num_bits bits valid).
std::vector<u64> decode_segment(const PlaneSegment& seg, u64 num_bits);

}  // namespace rapids::mgard
