#pragma once

/// \file decompose.hpp
/// The multigrid transform at the heart of the refactorer. One coarsening
/// step over a (2N_x+1, 2N_y+1, 2N_z+1) grid:
///
///  1. *Interpolation cascade* — per axis, at odd positions:
///     u[i] -= (u[i-1] + u[i+1]) / 2. After all axes, nodes that are odd in
///     at least one axis hold the residual of the multilinear interpolant of
///     the coarse (even-in-every-axis) nodes; this cascade annihilates any
///     function in the coarse space exactly.
///  2. *L2 correction* — the coarse nodes are replaced by the L2 projection
///     of the original function onto the coarse space: solve
///     (M_x (x) M_y (x) M_z) z = (L_x o L_y o L_z) r, where r is the residual
///     field (zero at coarse nodes), L is the 1-D piecewise-linear load
///     operator with stencil (1/6)[0.5 3 5 3 0.5], M is the coarse mass
///     matrix (1/3)[1 4 1] (boundary diag 2/3), and add z to the coarse
///     values. This is MGARD's projection step; it is what gives the L2-
///     orthogonal multilevel decomposition and its error guarantees.
///
/// The full decomposition repeats this step L times on grids of stride
/// 2^(t-1). Everything is in place over the padded array; per-step working
/// copies of the active sub-grid keep the kernels contiguous and
/// cache-friendly (at step 1, where active == padded, the transform runs
/// directly in place and skips the copy entirely).
///
/// Execution model (see kernels/kernels.hpp): every sweep is panel-major —
/// cross-axis passes along y and z walk whole contiguous x-rows through the
/// dispatched unit-stride row kernels, and the x-axis Thomas solve batches
/// kThomasPanelWidth independent lines per register sweep via a small panel
/// transpose. The gather from the padded array is fused with the first x
/// cascade (decompose) and the last inverse x cascade is fused with the
/// scatter back (recompose). All heavy loops stripe across an optional
/// ThreadPool with an L2-sized chunk grain. Results are bit-identical across
/// ISA tiers and to the pre-panel per-line implementation.

#include <vector>

#include "rapids/mgard/grid.hpp"
#include "rapids/util/common.hpp"

namespace rapids {
class ThreadPool;
}

namespace rapids::mgard {

struct RefactorWorkspace;

/// Tuning knobs for the transform.
struct DecomposeOptions {
  /// Apply the L2 correction (true = full MGARD-style projection; false =
  /// plain hierarchical interpolation basis). Ablated in bench/ablation.
  bool l2_correction = true;
  /// Level-fused traversal: hand each step's active grid to the next step
  /// directly instead of bouncing it through the full padded array, so
  /// consecutive levels touch an L2-resident compact buffer rather than
  /// re-striding the whole field. Decompose gathers step t >= 3 from the
  /// step t-1 active buffer (relative stride 2); recompose defers the step
  /// t >= 3 scatter and injects the processed grid into the next gathered
  /// buffer. Pure data-movement change: output is bit-identical either way
  /// (kernel_test pins fused == unfused). Off switches back to the padded-
  /// array round trip per level.
  bool level_fusion = true;
};

/// In-place multilevel decomposition of `data` (padded extents of `h`).
/// After the call, the coarse base values live at stride-2^L nodes and the
/// detail coefficients of decomposition level d at their nodes (see grid.hpp).
/// Pass a RefactorWorkspace to reuse the per-level scratch buffers across
/// calls; omitted, the call allocates a private one.
template <typename T>
void decompose(std::vector<T>& data, const GridHierarchy& h,
               const DecomposeOptions& opt = {}, ThreadPool* pool = nullptr,
               RefactorWorkspace* ws = nullptr);

/// Exact inverse of decompose() (up to floating-point rounding).
template <typename T>
void recompose(std::vector<T>& data, const GridHierarchy& h,
               const DecomposeOptions& opt = {}, ThreadPool* pool = nullptr,
               RefactorWorkspace* ws = nullptr);

/// Gather the coefficients of decomposition level `d` into a contiguous
/// vector ordered exactly like the hierarchy's level_nodes(d) map. Walks the
/// level geometry directly (strided sub-grid rows minus their even-in-all-
/// axes prefix) instead of chasing the index vector, so it parallelizes and
/// never materializes level_nodes.
template <typename T>
std::vector<T> gather_level(const std::vector<T>& data, const GridHierarchy& h,
                            u32 d, ThreadPool* pool = nullptr);

/// Scatter a contiguous coefficient vector back into the full array.
template <typename T>
void scatter_level(std::vector<T>& data, const GridHierarchy& h, u32 d,
                   const std::vector<T>& coeffs, ThreadPool* pool = nullptr);

}  // namespace rapids::mgard
