#include "rapids/mgard/retrieval.hpp"

#include <algorithm>
#include <cmath>

namespace rapids::mgard {

namespace {

/// Remaining absolute bound of decomposition level l with p planes consumed.
f64 level_bound(const PlaneSet& ps, u32 p) {
  if (ps.count == 0 || ps.max_abs == 0.0) return 0.0;
  if (p == 0) return ps.max_abs;  // nothing decoded yet: coefficients are zero
  return ps.error_bound(p);
}

void append_segment(ByteWriter& w, std::vector<SegmentRef>& refs, u32 dlevel,
                    u32 plane, const PlaneSegment& seg) {
  w.put_u32(dlevel);
  w.put_u32(plane);
  w.put_bytes(as_bytes_view(seg.data));
  refs.push_back(SegmentRef{dlevel, plane, seg.size()});
}

/// Wire bytes one segment occupies in a retrieval payload: dlevel (u32) +
/// plane (u32) + the u32 length prefix put_bytes writes + the body.
u64 segment_wire_bytes(u64 body) { return 4 + 4 + 4 + body; }

}  // namespace

std::vector<RetrievalLevelPlan> plan_retrieval_levels(
    const std::vector<PlaneSet>& plane_sets, f64 data_max_abs,
    const RetrievalOptions& opt) {
  RAPIDS_REQUIRE(opt.num_levels >= 1);
  RAPIDS_REQUIRE(data_max_abs > 0.0);
  const u32 nd = static_cast<u32>(plane_sets.size());

  // Per-decomposition-level plane cursors.
  std::vector<u32> cursor(nd, 0);
  auto total_bound = [&] {
    f64 b = 0.0;
    for (u32 l = 0; l < nd; ++l) b += level_bound(plane_sets[l], cursor[l]);
    return b * opt.bound_factor;
  };

  // Resolve targets.
  std::vector<f64> targets = opt.target_rel_errors;
  if (targets.empty()) {
    // First target: bound after giving every level its first plane would be
    // too eager; instead take the initial bound and space geometrically down
    // to final_rel_error.
    const f64 first = std::max(total_bound() / data_max_abs / 4.0,
                               opt.final_rel_error);
    const f64 last = opt.final_rel_error;
    targets.resize(opt.num_levels);
    if (opt.num_levels == 1) {
      targets[0] = last;
    } else {
      const f64 ratio = std::pow(last / first,
                                 1.0 / static_cast<f64>(opt.num_levels - 1));
      f64 t = first;
      for (u32 j = 0; j < opt.num_levels; ++j, t *= ratio) targets[j] = t;
    }
  }
  RAPIDS_REQUIRE_MSG(targets.size() == opt.num_levels,
                     "target_rel_errors size must equal num_levels");
  for (u32 j = 1; j < targets.size(); ++j)
    RAPIDS_REQUIRE_MSG(targets[j] < targets[j - 1],
                       "target relative errors must strictly decrease");

  std::vector<RetrievalLevelPlan> out;
  out.reserve(opt.num_levels);

  RetrievalLevelPlan plan;
  auto take_segment = [&](u32 dlevel, u32 plane, const PlaneSegment& seg) {
    plan.segments.push_back(SegmentRef{dlevel, plane, seg.size()});
    plan.payload_bytes += segment_wire_bytes(seg.size());
  };

  for (u32 j = 0; j < opt.num_levels; ++j) {
    const f64 abs_target = targets[j] * data_max_abs;
    // Emit planes greedily until the bound meets this level's target or we
    // run out of planes.
    for (;;) {
      const f64 bound = total_bound();
      if (bound <= abs_target) break;
      // Pick the level with the largest remaining bound that still has
      // planes left.
      u32 best = nd;
      f64 best_bound = -1.0;
      for (u32 l = 0; l < nd; ++l) {
        if (cursor[l] >= plane_sets[l].planes.size()) continue;
        const f64 b = level_bound(plane_sets[l], cursor[l]);
        if (b > best_bound) {
          best_bound = b;
          best = l;
        }
      }
      if (best == nd) break;  // exhausted: bound is at the quantization floor
      if (cursor[best] == 0)
        take_segment(best, 0, plane_sets[best].sign);
      take_segment(best, cursor[best] + 1,
                   plane_sets[best].planes[cursor[best]]);
      cursor[best] += 1;
    }
    plan.abs_error_bound = total_bound();
    plan.rel_error_bound = plan.abs_error_bound / data_max_abs;
    out.push_back(std::move(plan));
    plan = RetrievalLevelPlan{};
  }
  return out;
}

RetrievalLevel materialize_retrieval_level(
    const std::vector<PlaneSet>& plane_sets, const RetrievalLevelPlan& plan) {
  RetrievalLevel lvl;
  ByteWriter writer;
  std::vector<SegmentRef> refs;
  refs.reserve(plan.segments.size());
  for (const SegmentRef& ref : plan.segments) {
    RAPIDS_REQUIRE_MSG(ref.dlevel < plane_sets.size(),
                       "materialize: plan references unknown level");
    const PlaneSet& ps = plane_sets[ref.dlevel];
    const PlaneSegment& seg =
        ref.plane == 0 ? ps.sign : ps.planes.at(ref.plane - 1);
    append_segment(writer, refs, ref.dlevel, ref.plane, seg);
  }
  lvl.payload = writer.take();
  RAPIDS_REQUIRE_MSG(lvl.payload.size() == plan.payload_bytes,
                     "materialize: payload size disagrees with the plan");
  lvl.abs_error_bound = plan.abs_error_bound;
  lvl.rel_error_bound = plan.rel_error_bound;
  lvl.segments = std::move(refs);
  return lvl;
}

std::vector<RetrievalLevel> assemble_retrieval_levels(
    const std::vector<PlaneSet>& plane_sets, f64 data_max_abs,
    const RetrievalOptions& opt) {
  const auto plans = plan_retrieval_levels(plane_sets, data_max_abs, opt);
  std::vector<RetrievalLevel> out;
  out.reserve(plans.size());
  for (const auto& plan : plans)
    out.push_back(materialize_retrieval_level(plane_sets, plan));
  return out;
}

std::vector<std::pair<SegmentRef, PlaneSegment>> parse_retrieval_payload(
    std::span<const std::byte> payload) {
  std::vector<std::pair<SegmentRef, PlaneSegment>> out;
  ByteReader r(payload);
  while (!r.at_end()) {
    SegmentRef ref;
    ref.dlevel = r.get_u32();
    ref.plane = r.get_u32();
    auto body = r.get_bytes();
    ref.bytes = body.size();
    PlaneSegment seg;
    seg.data.assign(body.begin(), body.end());
    out.emplace_back(ref, std::move(seg));
  }
  return out;
}

std::vector<PlaneSet> collect_plane_sets(
    const std::vector<DLevelMeta>& dlevel_meta,
    std::span<const Bytes> level_payloads) {
  std::vector<PlaneSet> sets(dlevel_meta.size());
  for (u32 l = 0; l < dlevel_meta.size(); ++l) {
    sets[l].count = dlevel_meta[l].count;
    sets[l].max_abs = dlevel_meta[l].max_abs;
    sets[l].exponent = dlevel_meta[l].exponent;
  }
  append_plane_sets(sets, level_payloads);
  return sets;
}

void append_plane_sets(std::vector<PlaneSet>& sets,
                       std::span<const Bytes> level_payloads) {
  for (const Bytes& payload : level_payloads) {
    for (auto& [ref, seg] : parse_retrieval_payload(as_bytes_view(payload))) {
      RAPIDS_REQUIRE_MSG(ref.dlevel < sets.size(),
                         "retrieval payload references unknown level");
      PlaneSet& ps = sets[ref.dlevel];
      if (ref.plane == 0) {
        ps.sign = std::move(seg);
      } else {
        // Planes arrive MSB-first in stream order; enforce contiguity.
        RAPIDS_REQUIRE_MSG(ref.plane == ps.planes.size() + 1,
                           "retrieval payload planes out of order");
        ps.planes.push_back(std::move(seg));
      }
    }
  }
}

u64 count_magnitude_segments(std::span<const Bytes> level_payloads) {
  u64 count = 0;
  for (const Bytes& payload : level_payloads) {
    ByteReader r(as_bytes_view(payload));
    while (!r.at_end()) {
      (void)r.get_u32();  // dlevel
      const u32 plane = r.get_u32();
      (void)r.get_bytes();  // borrowed view, not copied
      count += plane != 0 ? 1 : 0;
    }
  }
  return count;
}

}  // namespace rapids::mgard
