#pragma once

/// \file db.hpp
/// The metadata database — rapids' RocksDB stand-in. A directory holding a
/// write-ahead log plus numbered sorted runs; newest-wins lookup order is
/// memtable, then runs newest to oldest. Used by the pipeline to persist
/// refactoring metadata, EC geometry, fragment locations, and observed
/// transfer throughput (Section 4.3 of the paper).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rapids/kvstore/kvstore.hpp"
#include "rapids/kvstore/memtable.hpp"
#include "rapids/kvstore/sorted_run.hpp"
#include "rapids/kvstore/wal.hpp"
#include "rapids/util/common.hpp"

namespace rapids::kv {

/// Tuning options.
struct DbOptions {
  /// Flush the memtable to a sorted run when it exceeds this many bytes.
  u64 memtable_flush_bytes = 4 << 20;
  /// Merge all runs into one when their count exceeds this.
  u32 compaction_trigger = 8;
};

/// Embedded ordered key-value store with WAL durability.
class Db : public KvStore {
 public:
  /// Open (creating if needed) a database directory. Replays the WAL,
  /// recovering cleanly from a torn tail.
  static std::unique_ptr<Db> open(const std::string& dir, DbOptions options = {});

  ~Db() override = default;
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Insert or overwrite. May trigger a flush/compaction.
  void put(const std::string& key, const std::string& value) override;

  /// Batched insert: all entries go to the WAL as one buffered write (one
  /// flush barrier for N entries) and the flush/compaction check runs once
  /// at the end. Equivalent to N put() calls for every read that follows.
  void put_batch(
      std::span<const std::pair<std::string, std::string>> entries) override;

  /// Delete (tombstone).
  void del(const std::string& key) override;

  /// Batched delete: all tombstones go to the WAL as one buffered write (one
  /// flush barrier for N keys) and the flush check runs once at the end.
  void del_batch(std::span<const std::string> keys) override;

  /// Lookup; nullopt if absent or deleted.
  std::optional<std::string> get(const std::string& key) override;

  /// All live (non-tombstoned) entries whose keys start with `prefix`,
  /// in key order — how the pipeline enumerates an object's fragments.
  std::vector<std::pair<std::string, std::string>> scan_prefix(
      const std::string& prefix) override;

  /// Force the memtable into a sorted run (empties the WAL).
  void flush();

  /// Merge every run into a single one, dropping tombstoned history.
  void compact();

  /// Introspection for tests.
  std::size_t num_runs() const { return runs_.size(); }
  std::size_t memtable_size() const { return memtable_.size(); }
  const std::string& dir() const { return dir_; }

 private:
  Db(std::string dir, DbOptions options);
  void maybe_flush();
  std::string run_path(u64 seq) const;

  std::string dir_;
  DbOptions options_;
  MemTable memtable_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<SortedRun> runs_;  // oldest first
  u64 next_run_seq_ = 1;
};

}  // namespace rapids::kv
