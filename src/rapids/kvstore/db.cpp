#include "rapids/kvstore/db.hpp"

#include <algorithm>
#include <filesystem>
#include <map>

namespace rapids::kv {

namespace fs = std::filesystem;

Db::Db(std::string dir, DbOptions options)
    : dir_(std::move(dir)), options_(options) {}

std::string Db::run_path(u64 seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "run-%06llu.sst",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + buf;
}

std::unique_ptr<Db> Db::open(const std::string& dir, DbOptions options) {
  fs::create_directories(dir);
  std::unique_ptr<Db> db(new Db(dir, options));

  // Load existing runs in sequence order.
  std::vector<std::pair<u64, std::string>> found;
  for (const auto& ent : fs::directory_iterator(dir)) {
    const std::string name = ent.path().filename().string();
    if (name.starts_with("run-") && name.ends_with(".sst")) {
      const u64 seq = std::stoull(name.substr(4, name.size() - 8));
      found.emplace_back(seq, ent.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  for (const auto& [seq, path] : found) {
    db->runs_.push_back(SortedRun::open(path));
    db->next_run_seq_ = std::max(db->next_run_seq_, seq + 1);
  }

  // Replay the WAL into the memtable; truncate any torn tail so appends
  // after recovery are not hidden behind garbage.
  const std::string wal_path = dir + "/wal.log";
  u64 valid_bytes = 0;
  wal_replay(
      wal_path,
      [&db](const WalRecord& rec) {
        if (rec.op == WalOp::kPut) {
          db->memtable_.put(rec.key, rec.value);
        } else {
          db->memtable_.del(rec.key);
        }
      },
      &valid_bytes);
  std::error_code ec;
  if (fs::exists(wal_path, ec) && fs::file_size(wal_path, ec) != valid_bytes)
    fs::resize_file(wal_path, valid_bytes, ec);
  db->wal_ = std::make_unique<WalWriter>(wal_path);
  return db;
}

void Db::put(const std::string& key, const std::string& value) {
  RAPIDS_REQUIRE_MSG(!key.empty(), "Db::put: empty key");
  wal_->append(WalOp::kPut, key, value);
  memtable_.put(key, value);
  maybe_flush();
}

void Db::put_batch(
    std::span<const std::pair<std::string, std::string>> entries) {
  if (entries.empty()) return;
  for (const auto& [key, value] : entries) {
    (void)value;
    RAPIDS_REQUIRE_MSG(!key.empty(), "Db::put_batch: empty key");
  }
  wal_->append_batch(entries);
  for (const auto& [key, value] : entries) memtable_.put(key, value);
  maybe_flush();
}

void Db::del(const std::string& key) {
  wal_->append(WalOp::kDelete, key, "");
  memtable_.del(key);
  maybe_flush();
}

void Db::del_batch(std::span<const std::string> keys) {
  if (keys.empty()) return;
  for (const auto& key : keys)
    RAPIDS_REQUIRE_MSG(!key.empty(), "Db::del_batch: empty key");
  wal_->append_delete_batch(keys);
  for (const auto& key : keys) memtable_.del(key);
  maybe_flush();
}

std::optional<std::string> Db::get(const std::string& key) {
  if (auto hit = memtable_.get(key)) return *hit;  // value or tombstone
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it)
    if (auto hit = it->get(key)) return *hit;
  return std::nullopt;
}

std::vector<std::pair<std::string, std::string>> Db::scan_prefix(
    const std::string& prefix) {
  // Merge newest-wins across memtable and runs.
  std::map<std::string, std::optional<std::string>> merged;
  for (const auto& run : runs_)  // oldest first: later inserts overwrite
    for (const auto& e : run.scan_prefix(prefix)) merged[e.key] = e.value;
  for (const auto& [k, v] : memtable_.entries())
    if (k.compare(0, prefix.size(), prefix) == 0) merged[k] = v;
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [k, v] : merged)
    if (v.has_value()) out.emplace_back(k, *v);
  return out;
}

void Db::maybe_flush() {
  if (memtable_.approximate_bytes() >= options_.memtable_flush_bytes) flush();
}

void Db::flush() {
  if (memtable_.empty()) return;
  std::vector<RunEntry> entries;
  entries.reserve(memtable_.size());
  for (const auto& [k, v] : memtable_.entries())
    entries.push_back(RunEntry{k, v});
  runs_.push_back(SortedRun::write(run_path(next_run_seq_++), entries));
  memtable_.clear();
  wal_->reset();
  if (runs_.size() > options_.compaction_trigger) compact();
}

void Db::compact() {
  if (runs_.size() <= 1) return;
  std::map<std::string, std::optional<std::string>> merged;
  for (const auto& run : runs_)
    for (const auto& e : run.entries()) merged[e.key] = e.value;
  std::vector<RunEntry> entries;
  entries.reserve(merged.size());
  for (auto& [k, v] : merged)
    if (v.has_value())  // full compaction: tombstones can be dropped
      entries.push_back(RunEntry{k, v});
  std::vector<std::string> old_paths;
  for (const auto& run : runs_) old_paths.push_back(run.path());
  runs_.clear();
  runs_.push_back(SortedRun::write(run_path(next_run_seq_++), entries));
  for (const auto& p : old_paths) {
    std::error_code ignore;
    fs::remove(p, ignore);
  }
}

}  // namespace rapids::kv
