#pragma once

/// \file kvstore.hpp
/// The metadata-store interface the pipeline programs against. Two
/// implementations ship: the embedded single-node Db (the paper's deployed
/// configuration) and the quorum-replicated ReplicatedDb (the paper's
/// future-work configuration). Swapping them changes the metadata fault
/// model without touching the pipeline.

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace rapids::kv {

/// Minimal ordered key-value contract used by the data-management layers.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Insert or overwrite.
  virtual void put(const std::string& key, const std::string& value) = 0;

  /// Insert or overwrite a batch of entries. Implementations may group the
  /// batch into a single durability barrier (one WAL append / flush for all
  /// N entries) instead of one per entry — the pipeline writes all fragment
  /// locations of one level this way. Default: loop over put().
  virtual void put_batch(
      std::span<const std::pair<std::string, std::string>> entries) {
    for (const auto& [key, value] : entries) put(key, value);
  }

  /// Delete (absent keys are a no-op).
  virtual void del(const std::string& key) = 0;

  /// Delete a batch of keys. Like put_batch, implementations may group the
  /// batch into a single durability barrier — migration GC drops every
  /// superseded fragment-location key of an object this way. Default: loop
  /// over del().
  virtual void del_batch(std::span<const std::string> keys) {
    for (const auto& key : keys) del(key);
  }

  /// Lookup; nullopt if absent or deleted.
  virtual std::optional<std::string> get(const std::string& key) = 0;

  /// All live entries whose keys start with `prefix`, in key order.
  virtual std::vector<std::pair<std::string, std::string>> scan_prefix(
      const std::string& prefix) = 0;
};

}  // namespace rapids::kv
