#include "rapids/kvstore/memtable.hpp"

namespace rapids::kv {

void MemTable::put(std::string key, std::string value) {
  bytes_ += key.size() + value.size();
  entries_[std::move(key)] = std::move(value);
}

void MemTable::del(std::string key) {
  bytes_ += key.size();
  entries_[std::move(key)] = std::nullopt;
}

std::optional<std::optional<std::string>> MemTable::get(
    const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void MemTable::clear() {
  entries_.clear();
  bytes_ = 0;
}

}  // namespace rapids::kv
