#pragma once

/// \file wal.hpp
/// Write-ahead log for the metadata store. Every mutation is appended as a
/// CRC-framed record before being applied to the memtable, so a crash loses
/// at most the unsynced tail; replay stops cleanly at the first torn or
/// corrupt record instead of propagating garbage into the database.

#include <cstdio>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "rapids/util/common.hpp"

namespace rapids::kv {

/// Record types in the log.
enum class WalOp : u8 { kPut = 1, kDelete = 2 };

/// One replayed record.
struct WalRecord {
  WalOp op;
  std::string key;
  std::string value;  // empty for deletes
};

/// Append-side handle. Opens (creating or appending) the log file.
class WalWriter {
 public:
  explicit WalWriter(const std::string& path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append one record; flushes to the OS on every call (fsync-level
  /// durability is out of scope for the simulation, but torn-tail handling
  /// is still exercised by the recovery tests).
  void append(WalOp op, std::string_view key, std::string_view value);

  /// Append a batch of puts as one write: every entry is individually
  /// CRC-framed (replay-compatible with append()), but the frames are
  /// concatenated into a single buffer and hit the file with one
  /// fwrite+fflush instead of N — the durability barrier is paid once per
  /// batch. A torn tail mid-batch loses only the suffix, as with N appends.
  void append_batch(std::span<const std::pair<std::string, std::string>> entries);

  /// Append a batch of deletes with the same single-barrier semantics as
  /// append_batch (one fwrite+fflush for all N tombstone frames).
  void append_delete_batch(std::span<const std::string> keys);

  /// Truncate the log to empty (after a successful memtable flush).
  void reset();

  u64 bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  std::FILE* file_;
  u64 bytes_written_ = 0;
};

/// Replay a log, invoking `apply` per valid record. Returns the number of
/// records applied. Stops silently at the first torn/corrupt record (crash
/// tail); a missing file replays zero records. If `valid_bytes` is non-null
/// it receives the length of the valid prefix so the caller can truncate the
/// torn tail before appending new records after it.
u64 wal_replay(const std::string& path,
               const std::function<void(const WalRecord&)>& apply,
               u64* valid_bytes = nullptr);

}  // namespace rapids::kv
