#include "rapids/kvstore/replicated_db.hpp"

#include <algorithm>
#include <map>

#include "rapids/util/bytes.hpp"
#include "rapids/util/logging.hpp"

namespace rapids::kv {

ReplicatedDb::ReplicatedDb(std::vector<std::unique_ptr<Db>> replicas,
                           u32 write_quorum, u32 read_quorum)
    : replicas_(std::move(replicas)), write_quorum_(write_quorum),
      read_quorum_(read_quorum) {
  const u32 n = num_replicas();
  RAPIDS_REQUIRE_MSG(n >= 1, "ReplicatedDb: need at least one replica");
  RAPIDS_REQUIRE_MSG(write_quorum >= 1 && write_quorum <= n,
                     "ReplicatedDb: invalid write quorum");
  RAPIDS_REQUIRE_MSG(read_quorum >= 1 && read_quorum <= n,
                     "ReplicatedDb: invalid read quorum");
  RAPIDS_REQUIRE_MSG(write_quorum + read_quorum > n,
                     "ReplicatedDb: quorums must intersect (W + R > N)");
  up_.assign(n, true);

  // Resume the sequence counter past anything already stored.
  for (const auto& db : replicas_) {
    for (const auto& [key, raw] : db->scan_prefix("")) {
      (void)key;
      try {
        next_seq_ = std::max(next_seq_, decode(raw).seq + 1);
      } catch (const io_error&) {
        // Unversioned foreign record: ignore for sequencing.
      }
    }
  }
}

std::unique_ptr<ReplicatedDb> ReplicatedDb::open(const std::string& dir_prefix,
                                                 u32 num_replicas,
                                                 u32 write_quorum,
                                                 u32 read_quorum,
                                                 DbOptions options) {
  std::vector<std::unique_ptr<Db>> replicas;
  replicas.reserve(num_replicas);
  for (u32 i = 0; i < num_replicas; ++i)
    replicas.push_back(Db::open(dir_prefix + std::to_string(i), options));
  return std::make_unique<ReplicatedDb>(std::move(replicas), write_quorum,
                                        read_quorum);
}

void ReplicatedDb::set_replica_up(u32 index, bool up) { up_.at(index) = up; }

std::string ReplicatedDb::encode(const Versioned& v) {
  ByteWriter w(v.value.size() + 16);
  w.put_u32(0x52444256u);  // "RDBV"
  w.put_u64(v.seq);
  w.put_u8(v.tombstone ? 1 : 0);
  w.put_string(v.value);
  const Bytes& b = w.bytes();
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

ReplicatedDb::Versioned ReplicatedDb::decode(const std::string& raw) {
  ByteReader r({reinterpret_cast<const std::byte*>(raw.data()), raw.size()});
  if (r.get_u32() != 0x52444256u)
    throw io_error("ReplicatedDb: unversioned record");
  Versioned v;
  v.seq = r.get_u64();
  v.tombstone = r.get_u8() != 0;
  v.value = r.get_string();
  return v;
}

std::vector<u32> ReplicatedDb::up_replicas() const {
  std::vector<u32> out;
  for (u32 i = 0; i < num_replicas(); ++i)
    if (up_[i]) out.push_back(i);
  return out;
}

void ReplicatedDb::write_versioned(const std::string& key, const Versioned& v,
                                   const char* op_name) {
  const auto up = up_replicas();
  if (up.size() < write_quorum_)
    throw quorum_error(std::string(op_name) + ": only " +
                       std::to_string(up.size()) + " of " +
                       std::to_string(write_quorum_) + " required replicas up");
  const std::string encoded = encode(v);
  for (u32 i : up) replicas_[i]->put(key, encoded);
}

void ReplicatedDb::put(const std::string& key, const std::string& value) {
  write_versioned(key, Versioned{next_seq_++, false, value}, "put");
}

void ReplicatedDb::put_batch(
    std::span<const std::pair<std::string, std::string>> entries) {
  if (entries.empty()) return;
  const auto up = up_replicas();
  if (up.size() < write_quorum_)
    throw quorum_error("put_batch: only " + std::to_string(up.size()) + " of " +
                       std::to_string(write_quorum_) + " required replicas up");
  std::vector<std::pair<std::string, std::string>> encoded;
  encoded.reserve(entries.size());
  for (const auto& [key, value] : entries)
    encoded.emplace_back(key, encode(Versioned{next_seq_++, false, value}));
  for (u32 i : up) replicas_[i]->put_batch(encoded);
}

void ReplicatedDb::del(const std::string& key) {
  write_versioned(key, Versioned{next_seq_++, true, ""}, "del");
}

std::optional<std::string> ReplicatedDb::get(const std::string& key) {
  const auto up = up_replicas();
  if (up.size() < read_quorum_)
    throw quorum_error("get: only " + std::to_string(up.size()) + " of " +
                       std::to_string(read_quorum_) + " required replicas up");

  // Collect versions from every up replica (>= R satisfies the quorum).
  std::optional<Versioned> newest;
  std::vector<std::pair<u32, u64>> seen;  // replica -> seq (0 = absent)
  for (u32 i : up) {
    const auto raw = replicas_[i]->get(key);
    u64 seq = 0;
    if (raw) {
      const Versioned v = decode(*raw);
      seq = v.seq;
      if (!newest || v.seq > newest->seq) newest = v;
    }
    seen.emplace_back(i, seq);
  }
  if (!newest) return std::nullopt;

  // Read repair: push the newest version to stale replicas we touched.
  const std::string encoded = encode(*newest);
  for (const auto& [i, seq] : seen) {
    if (seq < newest->seq) {
      log::debug("kv", "read-repairing replica ", i, " for key ", key);
      replicas_[i]->put(key, encoded);
    }
  }
  if (newest->tombstone) return std::nullopt;
  return newest->value;
}

std::vector<std::pair<std::string, std::string>> ReplicatedDb::scan_prefix(
    const std::string& prefix) {
  const auto up = up_replicas();
  if (up.size() < read_quorum_)
    throw quorum_error("scan: only " + std::to_string(up.size()) + " of " +
                       std::to_string(read_quorum_) + " required replicas up");

  std::map<std::string, Versioned> merged;
  for (u32 i : up) {
    for (const auto& [key, raw] : replicas_[i]->scan_prefix(prefix)) {
      const Versioned v = decode(raw);
      auto it = merged.find(key);
      if (it == merged.end() || v.seq > it->second.seq) merged[key] = v;
    }
  }
  // Repair stragglers and build the result.
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, v] : merged) {
    const std::string encoded = encode(v);
    for (u32 i : up) {
      const auto raw = replicas_[i]->get(key);
      if (!raw || decode(*raw).seq < v.seq) replicas_[i]->put(key, encoded);
    }
    if (!v.tombstone) out.emplace_back(key, v.value);
  }
  return out;
}

u64 ReplicatedDb::sync_replica(u32 index) {
  RAPIDS_REQUIRE(index < num_replicas());
  RAPIDS_REQUIRE_MSG(up_.at(index), "sync_replica: replica must be up");
  u64 repaired = 0;
  // Union of peers' records, newest version per key.
  std::map<std::string, Versioned> newest;
  for (u32 i = 0; i < num_replicas(); ++i) {
    if (!up_[i] || i == index) continue;
    for (const auto& [key, raw] : replicas_[i]->scan_prefix("")) {
      const Versioned v = decode(raw);
      auto it = newest.find(key);
      if (it == newest.end() || v.seq > it->second.seq) newest[key] = v;
    }
  }
  for (const auto& [key, v] : newest) {
    const auto raw = replicas_[index]->get(key);
    if (!raw || decode(*raw).seq < v.seq) {
      replicas_[index]->put(key, encode(v));
      ++repaired;
    }
  }
  return repaired;
}

}  // namespace rapids::kv
