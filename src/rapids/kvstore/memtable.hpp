#pragma once

/// \file memtable.hpp
/// The in-memory mutable layer of the metadata store: an ordered map of
/// key -> (value | tombstone). Tombstones are needed so a delete can shadow
/// an older value living in a flushed sorted run.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rapids/util/common.hpp"

namespace rapids::kv {

/// Ordered mutable key-value buffer.
class MemTable {
 public:
  /// Insert or overwrite.
  void put(std::string key, std::string value);

  /// Record a tombstone (delete marker).
  void del(std::string key);

  /// Lookup. outer nullopt = key unknown here (consult older runs);
  /// inner nullopt = tombstoned (definitively absent).
  std::optional<std::optional<std::string>> get(const std::string& key) const;

  /// All entries ordered by key (tombstones included), for flushing.
  const std::map<std::string, std::optional<std::string>>& entries() const {
    return entries_;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  u64 approximate_bytes() const { return bytes_; }
  void clear();

 private:
  std::map<std::string, std::optional<std::string>> entries_;
  u64 bytes_ = 0;
};

}  // namespace rapids::kv
