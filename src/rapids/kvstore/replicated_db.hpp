#pragma once

/// \file replicated_db.hpp
/// Replicated metadata management — the paper's Section 4.3 names
/// single-node metadata as its weak point ("the metadata is only maintained
/// on one system, which is prone to failures. In future development, the
/// metadata duplication and distributed metadata management will be
/// added."). This module adds that future work: a quorum-replicated wrapper
/// over N embedded Db instances.
///
/// Every record carries a monotonically increasing sequence number; writes
/// must reach a write quorum W, reads consult a read quorum R and take the
/// highest sequence (newest-wins), repairing any stale replica touched along
/// the way. With W + R > N, a read quorum always intersects the newest
/// write's quorum, so reads are linearizable at the record level despite up
/// to N - W replica outages at write time and N - R at read time. Deletes
/// are sequenced tombstones for the same reason.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rapids/kvstore/db.hpp"
#include "rapids/kvstore/kvstore.hpp"
#include "rapids/util/common.hpp"

namespace rapids::kv {

/// Thrown when fewer than the required quorum of replicas acknowledged.
class quorum_error : public io_error {
 public:
  explicit quorum_error(const std::string& what) : io_error(what) {}
};

/// Quorum-replicated metadata store.
class ReplicatedDb : public KvStore {
 public:
  /// Wrap pre-opened replicas. Requires 1 <= W, R <= N and W + R > N.
  ReplicatedDb(std::vector<std::unique_ptr<Db>> replicas, u32 write_quorum,
               u32 read_quorum);

  /// Open N replicas under `dir_prefix`0..N-1 with the given quorums.
  static std::unique_ptr<ReplicatedDb> open(const std::string& dir_prefix,
                                            u32 num_replicas, u32 write_quorum,
                                            u32 read_quorum,
                                            DbOptions options = {});

  u32 num_replicas() const { return static_cast<u32>(replicas_.size()); }
  u32 write_quorum() const { return write_quorum_; }
  u32 read_quorum() const { return read_quorum_; }

  /// Simulate a metadata-server outage (down replicas reject reads/writes).
  void set_replica_up(u32 index, bool up);
  bool replica_up(u32 index) const { return up_.at(index); }

  /// Quorum write. Throws quorum_error if fewer than W replicas are up.
  void put(const std::string& key, const std::string& value) override;

  /// Quorum batch write: every entry gets its own sequence number, but each
  /// up replica receives the whole batch as one Db::put_batch (one WAL
  /// barrier per replica per batch instead of per entry).
  void put_batch(
      std::span<const std::pair<std::string, std::string>> entries) override;

  /// Quorum delete (sequenced tombstone).
  void del(const std::string& key) override;

  /// Quorum read: newest sequence wins; stale or missing replicas touched by
  /// the read are repaired in passing. Throws quorum_error if fewer than R
  /// replicas are up. nullopt = absent or tombstoned.
  std::optional<std::string> get(const std::string& key) override;

  /// Prefix scan across a read quorum, newest-wins per key, tombstones
  /// filtered. Repairs stale replicas for the scanned range.
  std::vector<std::pair<std::string, std::string>> scan_prefix(
      const std::string& prefix) override;

  /// Bring a recovered (previously down) replica fully up to date from its
  /// peers. Returns the number of records repaired.
  u64 sync_replica(u32 index);

  /// Direct access for tests.
  Db& replica(u32 index) { return *replicas_.at(index); }

 private:
  struct Versioned {
    u64 seq = 0;
    bool tombstone = false;
    std::string value;
  };

  static std::string encode(const Versioned& v);
  static Versioned decode(const std::string& raw);
  std::vector<u32> up_replicas() const;
  void write_versioned(const std::string& key, const Versioned& v,
                       const char* op_name);

  std::vector<std::unique_ptr<Db>> replicas_;
  std::vector<bool> up_;
  u32 write_quorum_;
  u32 read_quorum_;
  u64 next_seq_ = 1;
};

}  // namespace rapids::kv
