#include "rapids/kvstore/sorted_run.hpp"

#include <algorithm>

#include "rapids/util/bytes.hpp"
#include "rapids/util/crc32c.hpp"

namespace rapids::kv {

namespace {
constexpr u32 kRunMagic = 0x52535354u;  // "RSST"
}

SortedRun SortedRun::write(const std::string& path,
                           const std::vector<RunEntry>& entries) {
  for (std::size_t i = 1; i < entries.size(); ++i)
    RAPIDS_REQUIRE_MSG(entries[i - 1].key < entries[i].key,
                       "SortedRun::write: entries must be sorted and unique");
  ByteWriter body;
  body.put_u64(entries.size());
  for (const auto& e : entries) {
    body.put_string(e.key);
    body.put_u8(e.value.has_value() ? 1 : 0);
    body.put_string(e.value.value_or(""));
  }
  ByteWriter file;
  file.put_u32(kRunMagic);
  file.put_u32(crc32c(as_bytes_view(body.bytes())));
  file.put_u64(body.size());
  file.put_raw(as_bytes_view(body.bytes()));
  write_file(path, as_bytes_view(file.bytes()));
  return SortedRun(path, entries);
}

SortedRun SortedRun::open(const std::string& path) {
  const Bytes raw = read_file(path);
  ByteReader r(as_bytes_view(raw));
  if (r.get_u32() != kRunMagic) throw io_error("SortedRun: bad magic in " + path);
  const u32 crc = r.get_u32();
  const u64 len = r.get_u64();
  auto body = r.get_raw(len);
  if (crc32c(body) != crc) throw io_error("SortedRun: CRC mismatch in " + path);
  ByteReader br(body);
  const u64 count = br.get_u64();
  // Every entry costs at least 9 encoded bytes; a larger count is corruption.
  if (count * 9 > br.remaining()) throw io_error("SortedRun: bad entry count");
  std::vector<RunEntry> entries;
  entries.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    RunEntry e;
    e.key = br.get_string();
    const bool has_value = br.get_u8() != 0;
    std::string v = br.get_string();
    e.value = has_value ? std::optional<std::string>(std::move(v)) : std::nullopt;
    entries.push_back(std::move(e));
  }
  return SortedRun(path, std::move(entries));
}

std::optional<std::optional<std::string>> SortedRun::get(
    const std::string& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const RunEntry& e, const std::string& k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return std::nullopt;
  return it->value;
}

std::vector<RunEntry> SortedRun::scan_prefix(const std::string& prefix) const {
  std::vector<RunEntry> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RunEntry& e, const std::string& k) { return e.key < k; });
  for (; it != entries_.end() && it->key.compare(0, prefix.size(), prefix) == 0;
       ++it)
    out.push_back(*it);
  return out;
}

}  // namespace rapids::kv
