#include "rapids/kvstore/wal.hpp"

#include <vector>

#include "rapids/util/bytes.hpp"
#include "rapids/util/crc32c.hpp"

namespace rapids::kv {

namespace {

// Record framing: [u32 crc][u32 body_len][body], body = [u8 op][u32 klen]
// [key][u32 vlen][value]. crc covers the body.
Bytes encode_body(WalOp op, std::string_view key, std::string_view value) {
  ByteWriter w(key.size() + value.size() + 16);
  w.put_u8(static_cast<u8>(op));
  w.put_string(key);
  w.put_string(value);
  return w.take();
}

void frame_record(ByteWriter& out, WalOp op, std::string_view key,
                  std::string_view value) {
  const Bytes body = encode_body(op, key, value);
  out.put_u32(crc32c(as_bytes_view(body)));
  out.put_u32(static_cast<u32>(body.size()));
  out.put_raw(as_bytes_view(body));
}

}  // namespace

WalWriter::WalWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) throw io_error("WAL: cannot open " + path);
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void WalWriter::append(WalOp op, std::string_view key, std::string_view value) {
  ByteWriter frame(key.size() + value.size() + 24);
  frame_record(frame, op, key, value);
  const Bytes& buf = frame.bytes();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size())
    throw io_error("WAL: short append to " + path_);
  std::fflush(file_);
  bytes_written_ += buf.size();
}

void WalWriter::append_batch(
    std::span<const std::pair<std::string, std::string>> entries) {
  if (entries.empty()) return;
  u64 total = 0;
  for (const auto& [key, value] : entries)
    total += key.size() + value.size() + 24;
  ByteWriter frames(total);
  for (const auto& [key, value] : entries)
    frame_record(frames, WalOp::kPut, key, value);
  const Bytes& buf = frames.bytes();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size())
    throw io_error("WAL: short batch append to " + path_);
  std::fflush(file_);
  bytes_written_ += buf.size();
}

void WalWriter::append_delete_batch(std::span<const std::string> keys) {
  if (keys.empty()) return;
  u64 total = 0;
  for (const auto& key : keys) total += key.size() + 24;
  ByteWriter frames(total);
  for (const auto& key : keys) frame_record(frames, WalOp::kDelete, key, "");
  const Bytes& buf = frames.bytes();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size())
    throw io_error("WAL: short delete-batch append to " + path_);
  std::fflush(file_);
  bytes_written_ += buf.size();
}

void WalWriter::reset() {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) throw io_error("WAL: cannot truncate " + path_);
  std::fflush(file_);
  bytes_written_ = 0;
}

u64 wal_replay(const std::string& path,
               const std::function<void(const WalRecord&)>& apply,
               u64* valid_bytes) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;  // no log yet
  u64 applied = 0;
  std::vector<std::byte> body;
  for (;;) {
    unsigned char hdr[8];
    if (std::fread(hdr, 1, 8, f) != 8) break;  // clean end or torn header
    const u32 crc = static_cast<u32>(hdr[0]) | (static_cast<u32>(hdr[1]) << 8) |
                    (static_cast<u32>(hdr[2]) << 16) |
                    (static_cast<u32>(hdr[3]) << 24);
    const u32 len = static_cast<u32>(hdr[4]) | (static_cast<u32>(hdr[5]) << 8) |
                    (static_cast<u32>(hdr[6]) << 16) |
                    (static_cast<u32>(hdr[7]) << 24);
    if (len > (64u << 20)) break;  // implausible: corrupt length
    body.resize(len);
    if (len > 0 && std::fread(body.data(), 1, len, f) != len) break;  // torn body
    if (crc32c({body.data(), body.size()}) != crc) break;  // corrupt body
    try {
      ByteReader r({body.data(), body.size()});
      WalRecord rec;
      rec.op = static_cast<WalOp>(r.get_u8());
      if (rec.op != WalOp::kPut && rec.op != WalOp::kDelete) break;
      rec.key = r.get_string();
      rec.value = r.get_string();
      apply(rec);
      ++applied;
      if (valid_bytes != nullptr) *valid_bytes += 8 + len;
    } catch (const io_error&) {
      break;  // malformed body despite CRC (should not happen)
    }
  }
  std::fclose(f);
  return applied;
}

}  // namespace rapids::kv
