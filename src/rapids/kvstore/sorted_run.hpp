#pragma once

/// \file sorted_run.hpp
/// Immutable on-disk sorted run (simplified SSTable): a CRC-protected file of
/// key-ordered entries flushed from the memtable. Runs are small (metadata,
/// not data), so a run is loaded fully at open; lookups binary-search the
/// in-memory index.

#include <optional>
#include <string>
#include <vector>

#include "rapids/util/common.hpp"

namespace rapids::kv {

/// One entry: key + value-or-tombstone.
struct RunEntry {
  std::string key;
  std::optional<std::string> value;  // nullopt = tombstone
};

/// Immutable sorted run.
class SortedRun {
 public:
  /// Write `entries` (must be sorted by key, unique) to `path`, then open it.
  static SortedRun write(const std::string& path,
                         const std::vector<RunEntry>& entries);

  /// Open an existing run file. Throws io_error on corruption.
  static SortedRun open(const std::string& path);

  /// Lookup (outer nullopt = not in this run; inner nullopt = tombstone).
  std::optional<std::optional<std::string>> get(const std::string& key) const;

  /// All entries with keys beginning with `prefix`, in order.
  std::vector<RunEntry> scan_prefix(const std::string& prefix) const;

  const std::vector<RunEntry>& entries() const { return entries_; }
  const std::string& path() const { return path_; }
  std::size_t size() const { return entries_.size(); }

 private:
  SortedRun(std::string path, std::vector<RunEntry> entries)
      : path_(std::move(path)), entries_(std::move(entries)) {}

  std::string path_;
  std::vector<RunEntry> entries_;
};

}  // namespace rapids::kv
