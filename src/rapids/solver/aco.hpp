#pragma once

/// \file aco.hpp
/// Ant Colony Optimization for grouped subset selection — the solver behind
/// the paper's data-gathering MINLP (their MIDACO solver is closed source,
/// but is documented as an ACO evolutionary method; see DESIGN.md
/// substitution #4). The problem shape: G groups; group g must pick exactly
/// size_g items out of the items allowed for it; a user callback scores a
/// complete selection (lower is better). Pheromone lives per (item, group);
/// construction samples items proportional to pheromone^alpha * bias^beta
/// without replacement; the best ant of each iteration deposits.

#include <functional>
#include <optional>
#include <vector>

#include "rapids/util/common.hpp"
#include "rapids/util/rng.hpp"

namespace rapids::solver {

/// One candidate solution: per group, the sorted list of selected items.
using Selection = std::vector<std::vector<u32>>;

/// Objective callback: score a complete selection (minimize).
using Objective = std::function<f64(const Selection&)>;

/// ACO tuning parameters.
struct AcoOptions {
  u32 ants = 24;            ///< ants per iteration
  u32 iterations = 250;     ///< iteration cap
  f64 time_budget_seconds = 0.0;  ///< wall-clock cap (0 = iterations only)
  f64 evaporation = 0.12;   ///< pheromone decay per iteration
  f64 alpha = 1.0;          ///< pheromone exponent
  f64 beta = 1.0;           ///< heuristic-bias exponent
  f64 warm_start_boost = 4.0;  ///< initial pheromone multiplier on warm start
  u64 seed = 1234;          ///< RNG seed (deterministic runs)
};

/// Result of a solve.
struct AcoResult {
  Selection best;
  f64 best_value = 0.0;
  u32 iterations_run = 0;
  u64 evaluations = 0;
};

/// Grouped-subset ACO solver.
class SubsetAco {
 public:
  /// `num_items` items; `group_sizes[g]` items must be chosen for group g;
  /// `allowed[g][i]` gates item i for group g; `bias[i]` is the heuristic
  /// desirability of item i (e.g. endpoint bandwidth), > 0.
  SubsetAco(u32 num_items, std::vector<u32> group_sizes,
            std::vector<std::vector<bool>> allowed, std::vector<f64> bias);

  /// Minimize `objective`. `warm_start`, if given, seeds the pheromone and
  /// the incumbent (the paper warm-starts MIDACO with the Naive strategy).
  AcoResult solve(const Objective& objective, const AcoOptions& options,
                  const std::optional<Selection>& warm_start = std::nullopt) const;

  /// Check a selection satisfies sizes and allowed-masks.
  bool feasible(const Selection& s) const;

 private:
  u32 num_items_;
  std::vector<u32> group_sizes_;
  std::vector<std::vector<bool>> allowed_;
  std::vector<f64> bias_;
};

}  // namespace rapids::solver
