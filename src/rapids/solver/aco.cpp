#include "rapids/solver/aco.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rapids/util/timer.hpp"

namespace rapids::solver {

SubsetAco::SubsetAco(u32 num_items, std::vector<u32> group_sizes,
                     std::vector<std::vector<bool>> allowed, std::vector<f64> bias)
    : num_items_(num_items), group_sizes_(std::move(group_sizes)),
      allowed_(std::move(allowed)), bias_(std::move(bias)) {
  RAPIDS_REQUIRE(allowed_.size() == group_sizes_.size());
  RAPIDS_REQUIRE(bias_.size() == num_items_);
  for (f64 b : bias_) RAPIDS_REQUIRE_MSG(b > 0.0, "ACO bias must be positive");
  for (std::size_t g = 0; g < group_sizes_.size(); ++g) {
    RAPIDS_REQUIRE(allowed_[g].size() == num_items_);
    u32 avail = 0;
    for (bool a : allowed_[g]) avail += a;
    RAPIDS_REQUIRE_MSG(group_sizes_[g] <= avail,
                       "ACO group " + std::to_string(g) + " infeasible: needs " +
                           std::to_string(group_sizes_[g]) + " of " +
                           std::to_string(avail));
  }
}

bool SubsetAco::feasible(const Selection& s) const {
  if (s.size() != group_sizes_.size()) return false;
  for (std::size_t g = 0; g < s.size(); ++g) {
    if (s[g].size() != group_sizes_[g]) return false;
    std::vector<bool> seen(num_items_, false);
    for (u32 i : s[g]) {
      if (i >= num_items_ || !allowed_[g][i] || seen[i]) return false;
      seen[i] = true;
    }
  }
  return true;
}

AcoResult SubsetAco::solve(const Objective& objective, const AcoOptions& options,
                           const std::optional<Selection>& warm_start) const {
  const std::size_t groups = group_sizes_.size();
  Rng rng(options.seed);
  Timer timer;

  // Pheromone per (group, item), uniform start.
  std::vector<std::vector<f64>> tau(groups, std::vector<f64>(num_items_, 1.0));

  AcoResult result;
  result.best_value = std::numeric_limits<f64>::infinity();

  if (warm_start) {
    RAPIDS_REQUIRE_MSG(feasible(*warm_start), "ACO warm start infeasible");
    for (std::size_t g = 0; g < groups; ++g)
      for (u32 i : (*warm_start)[g]) tau[g][i] *= options.warm_start_boost;
    result.best = *warm_start;
    result.best_value = objective(*warm_start);
    result.evaluations += 1;
  }

  // Construct one ant's selection.
  auto construct = [&](Rng& r) {
    Selection s(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      // Weighted sampling without replacement.
      std::vector<u32> pool;
      std::vector<f64> weight;
      for (u32 i = 0; i < num_items_; ++i) {
        if (!allowed_[g][i]) continue;
        pool.push_back(i);
        weight.push_back(std::pow(tau[g][i], options.alpha) *
                         std::pow(bias_[i], options.beta));
      }
      auto& sel = s[g];
      for (u32 pick = 0; pick < group_sizes_[g]; ++pick) {
        f64 total = 0.0;
        for (f64 w : weight) total += w;
        f64 roll = r.next_double() * total;
        std::size_t chosen = 0;
        for (std::size_t c = 0; c < pool.size(); ++c) {
          roll -= weight[c];
          if (roll <= 0.0) {
            chosen = c;
            break;
          }
          chosen = c;  // numeric fallback: last element
        }
        sel.push_back(pool[chosen]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(chosen));
        weight.erase(weight.begin() + static_cast<std::ptrdiff_t>(chosen));
      }
      std::sort(sel.begin(), sel.end());
    }
    return s;
  };

  for (u32 it = 0; it < options.iterations; ++it) {
    if (options.time_budget_seconds > 0.0 &&
        timer.seconds() >= options.time_budget_seconds)
      break;
    Selection iter_best;
    f64 iter_best_value = std::numeric_limits<f64>::infinity();
    for (u32 a = 0; a < options.ants; ++a) {
      Rng ant_rng = rng.fork();
      Selection s = construct(ant_rng);
      const f64 v = objective(s);
      result.evaluations += 1;
      if (v < iter_best_value) {
        iter_best_value = v;
        iter_best = std::move(s);
      }
    }
    if (iter_best_value < result.best_value) {
      result.best_value = iter_best_value;
      result.best = iter_best;
    }
    // Evaporate, then deposit on the global best (elitist) and iteration
    // best, proportional to solution quality.
    for (auto& row : tau)
      for (f64& t : row) t *= (1.0 - options.evaporation);
    auto deposit = [&](const Selection& s, f64 value, f64 scale) {
      const f64 amount = scale / (1.0 + value);
      for (std::size_t g = 0; g < groups; ++g)
        for (u32 i : s[g]) tau[g][i] += amount;
    };
    if (!iter_best.empty()) deposit(iter_best, iter_best_value, 1.0);
    if (!result.best.empty()) deposit(result.best, result.best_value, 1.0);
    result.iterations_run = it + 1;
  }
  RAPIDS_REQUIRE_MSG(!result.best.empty(),
                     "ACO produced no solution (zero iterations and no warm start)");
  return result;
}

}  // namespace rapids::solver
