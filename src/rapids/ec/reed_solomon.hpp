#pragma once

/// \file reed_solomon.hpp
/// Systematic Reed-Solomon erasure codec over GF(2^8): RS(k, m) splits a byte
/// payload into k equal data fragments and computes m parity fragments such
/// that *any* k of the k+m fragments reconstruct the payload. This is the
/// same contract the paper obtains from liberasurecode. Encode and decode of
/// large payloads are parallelized by striping across a ThreadPool.

#include <optional>
#include <vector>

#include "rapids/ec/fragment.hpp"
#include "rapids/ec/matrix.hpp"
#include "rapids/util/common.hpp"

namespace rapids {
class ThreadPool;
}

namespace rapids::ec {

/// Which construction to use for the encode matrix. Both satisfy the
/// any-k-of-n property; Cauchy has slightly denser parity rows but a closed
/// form. The default matches the classic jerasure/vandermonde behaviour.
enum class MatrixKind { kVandermonde, kCauchy };

/// Reed-Solomon codec for a fixed (k, m) geometry. Thread-safe after
/// construction (encode/decode do not mutate shared state).
class ReedSolomon {
 public:
  /// Build an RS(k, m) codec. Requires 1 <= k, 1 <= m, k + m <= 255.
  ReedSolomon(u32 k, u32 m, MatrixKind kind = MatrixKind::kVandermonde);

  u32 k() const { return k_; }
  u32 m() const { return m_; }
  u32 n() const { return k_ + m_; }
  MatrixKind kind() const { return kind_; }

  /// Fragment payload size for an input of `data_size` bytes: the input is
  /// zero-padded up to a multiple of k and split evenly.
  u64 fragment_size(u64 data_size) const { return ceil_div(data_size, k_); }

  /// Encode `data` into k data + m parity fragments for object/level
  /// identified by (object_name, level). Fragment payloads are
  /// fragment_size(data.size()) bytes each; CRCs are filled in. If `pool` is
  /// non-null, parity computation is striped across it.
  std::vector<Fragment> encode(std::span<const u8> data,
                               const std::string& object_name, u32 level,
                               ThreadPool* pool = nullptr) const;

  // --- stripe-ranged entry points (streaming encode/decode) ---
  //
  // The systematic layout makes encoding separable by payload offset: parity
  // byte o depends only on the data rows' byte o, so disjoint [lo, hi)
  // ranges of one level can be encoded independently — by different tasks,
  // in any order — and the stitched result is byte-identical to a whole-
  // payload encode(). The streaming prepare path uses exactly this:
  // make_fragments once, encode_stripe per fixed-size stripe as tasks,
  // finish_fragments when every stripe has landed.

  /// Build the n fragment shells for a level of `data_size` bytes: ids,
  /// geometry, and zeroed payloads of fragment_size(data_size) bytes. CRCs
  /// are left unset (finish_fragments fills them).
  std::vector<Fragment> make_fragments(u64 data_size,
                                       const std::string& object_name,
                                       u32 level) const;

  /// Encode payload range [lo, hi) — any range, no alignment requirement —
  /// into shells previously built by make_fragments for this very `data`
  /// size: copies the data rows' slices and computes the parity rows' slices
  /// in place. Ranges are clamped to the fragment size; disjoint ranges may
  /// run concurrently. Bytes outside every encoded range keep the shells'
  /// zero padding, so covering [0, fragment_size) in stripes of any width
  /// reproduces encode() byte-for-byte.
  void encode_stripe(std::span<const u8> data, u64 lo, u64 hi,
                     std::span<Fragment> frags) const;

  /// Fill every shell's payload CRC once all stripes are encoded (fanned out
  /// over `pool` for large payloads). After this the fragments are
  /// indistinguishable from encode() output.
  void finish_fragments(std::span<Fragment> frags,
                        ThreadPool* pool = nullptr) const;

  /// Decode payload range [lo, hi) from any >= k surviving fragments into
  /// `out`, row-major: out[i * (hi - lo) ..] is data row i's slice. Same
  /// validation/CRC-skip rules as decode(); `out.size()` must be
  /// k * (hi - lo). Stitching every stripe of [0, fragment_size) and
  /// truncating to level_bytes reproduces decode() byte-for-byte.
  void decode_stripe(std::span<const Fragment> fragments, u64 lo, u64 hi,
                     std::span<u8> out) const;

  /// Reconstruct the original payload from any >= k surviving fragments
  /// (mixed data/parity, any order). Duplicate indices and fragments failing
  /// their CRC check are skipped as long as k distinct healthy fragments
  /// remain. Throws invariant_error if fewer than k healthy distinct
  /// fragments are available or if geometry disagrees. If `pool` is
  /// non-null, the matrix application is striped.
  std::vector<u8> decode(std::span<const Fragment> fragments,
                         ThreadPool* pool = nullptr) const;

  /// Rebuild the payload of one specific missing fragment (data or parity)
  /// from any >= k survivors — the "repair" path used when a storage system
  /// permanently loses a fragment.
  Fragment reconstruct_fragment(std::span<const Fragment> survivors,
                                u32 missing_index, ThreadPool* pool = nullptr) const;

  /// The (k+m) x k encode matrix (top k rows = identity).
  const Matrix& encode_matrix() const { return encode_matrix_; }

 private:
  std::vector<u8> decode_rows(std::span<const Fragment> fragments, u64* level_bytes,
                              ThreadPool* pool) const;

  u32 k_;
  u32 m_;
  MatrixKind kind_;
  Matrix encode_matrix_;
};

}  // namespace rapids::ec
