#pragma once

/// \file gf256.hpp
/// Arithmetic over GF(2^8) with the AES/Rijndael-compatible primitive
/// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by classic
/// Reed-Solomon storage codes (and by liberasurecode's isa-l/jerasure
/// backends). Scalar multiplication uses log/exp tables; the bulk kernels
/// (mul_acc/mul_to/add_acc) dispatch through rapids/simd/gf256_kernels.hpp
/// to runtime-selected PSHUFB/TBL split-nibble implementations (SSSE3, AVX2,
/// NEON), falling back to a per-coefficient 256-entry product table when no
/// SIMD path is available or RAPIDS_FORCE_SCALAR=1 is set.

#include <array>
#include <span>

#include "rapids/util/common.hpp"

namespace rapids::ec {

/// GF(2^8) field element operations. All functions are pure and thread-safe.
class GF256 {
 public:
  /// Field addition = XOR.
  static u8 add(u8 a, u8 b) { return a ^ b; }

  /// Field subtraction = XOR (characteristic 2).
  static u8 sub(u8 a, u8 b) { return a ^ b; }

  /// Field multiplication via log/exp tables.
  static u8 mul(u8 a, u8 b) {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + t.log[b]];
  }

  /// Multiplicative inverse. Precondition: a != 0.
  static u8 inv(u8 a) {
    RAPIDS_REQUIRE_MSG(a != 0, "GF256: inverse of zero");
    const Tables& t = tables();
    return t.exp[255 - t.log[a]];
  }

  /// a / b. Precondition: b != 0.
  static u8 div(u8 a, u8 b) {
    RAPIDS_REQUIRE_MSG(b != 0, "GF256: division by zero");
    if (a == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + 255 - t.log[b]];
  }

  /// a^e for e >= 0 (a^0 == 1, including 0^0 by convention here).
  static u8 pow(u8 a, u32 e);

  /// The generator element alpha = 2 raised to `e` (mod 255 exponent).
  static u8 alpha_pow(u32 e) { return tables().exp[e % 255]; }

  /// dst[i] ^= c * src[i] for all i — the inner kernel of RS encode/decode.
  static void mul_acc(std::span<u8> dst, std::span<const u8> src, u8 c);

  /// dst[i] = c * src[i].
  static void mul_to(std::span<u8> dst, std::span<const u8> src, u8 c);

  /// dst[i] ^= src[i] (coefficient 1 fast path).
  static void add_acc(std::span<u8> dst, std::span<const u8> src);

  /// The full 256-entry product row c*x for x in 0..255 — the table the
  /// scalar bulk kernel walks (exposed for rapids::simd's reference path).
  static const u8* mul_row(u8 c) { return tables().mul_table[c].data(); }

 private:
  struct Tables {
    // exp has 512 entries so mul can skip the mod-255 reduction.
    std::array<u8, 512> exp{};
    std::array<u16, 256> log{};
    // mul_table[c] is the full 256-entry row of products c*x, built lazily is
    // too racy; we precompute all rows once (64 KiB, trivially cache-fits for
    // the handful of hot coefficients).
    std::array<std::array<u8, 256>, 256> mul_table{};
    Tables();
  };

  static const Tables& tables();
};

}  // namespace rapids::ec
