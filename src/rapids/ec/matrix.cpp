#include "rapids/ec/matrix.hpp"

#include <algorithm>
#include <utility>

namespace rapids::ec {

Matrix Matrix::identity(u32 n) {
  Matrix m(n, n);
  for (u32 i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(u32 rows, u32 cols) {
  RAPIDS_REQUIRE_MSG(rows <= 255, "GF(2^8) Vandermonde needs <= 255 distinct points");
  Matrix m(rows, cols);
  for (u32 r = 0; r < rows; ++r)
    for (u32 c = 0; c < cols; ++c)
      m.at(r, c) = GF256::pow(static_cast<u8>(r + 1), c);
  return m;
}

Matrix Matrix::rs_vandermonde(u32 k, u32 m) {
  RAPIDS_REQUIRE(k >= 1 && m >= 1);
  RAPIDS_REQUIRE_MSG(k + m <= 255, "RS(k,m): k+m must be <= 255 for GF(2^8)");
  // Start with a (k+m) x k Vandermonde and column-reduce so the top k x k
  // block becomes the identity. Column operations preserve the property that
  // every k x k row-submatrix is invertible.
  Matrix v = vandermonde(k + m, k);

  for (u32 c = 0; c < k; ++c) {
    // The diagonal element of a Vandermonde with distinct points is reducible
    // to nonzero; if v.at(c,c) is zero, swap in a column with nonzero pivot.
    if (v.at(c, c) == 0) {
      for (u32 c2 = c + 1; c2 < k; ++c2) {
        if (v.at(c, c2) != 0) {
          for (u32 r = 0; r < v.rows(); ++r) std::swap(v.at(r, c), v.at(r, c2));
          break;
        }
      }
    }
    RAPIDS_REQUIRE_MSG(v.at(c, c) != 0, "rs_vandermonde: zero pivot");
    // Scale column c so pivot is 1.
    const u8 inv = GF256::inv(v.at(c, c));
    for (u32 r = 0; r < v.rows(); ++r) v.at(r, c) = GF256::mul(v.at(r, c), inv);
    // Eliminate row c from every other column.
    for (u32 c2 = 0; c2 < k; ++c2) {
      if (c2 == c) continue;
      const u8 f = v.at(c, c2);
      if (f == 0) continue;
      for (u32 r = 0; r < v.rows(); ++r)
        v.at(r, c2) = GF256::add(v.at(r, c2), GF256::mul(f, v.at(r, c)));
    }
  }
  return v;
}

Matrix Matrix::rs_cauchy(u32 k, u32 m) {
  RAPIDS_REQUIRE(k >= 1 && m >= 1);
  RAPIDS_REQUIRE_MSG(k + m <= 256, "Cauchy RS(k,m): k+m must be <= 256");
  Matrix e(k + m, k);
  for (u32 i = 0; i < k; ++i) e.at(i, i) = 1;
  // x_i = k + i (parity points), y_j = j (data points); all distinct in
  // GF(2^8) since k + m <= 256, and x_i + y_j != 0 because the sets are
  // disjoint (addition is XOR).
  for (u32 i = 0; i < m; ++i) {
    for (u32 j = 0; j < k; ++j) {
      const u8 x = static_cast<u8>(k + i);
      const u8 y = static_cast<u8>(j);
      e.at(k + i, j) = GF256::inv(GF256::add(x, y));
    }
  }
  return e;
}

Matrix Matrix::multiply(const Matrix& other) const {
  RAPIDS_REQUIRE(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  for (u32 r = 0; r < rows_; ++r) {
    for (u32 i = 0; i < cols_; ++i) {
      const u8 a = at(r, i);
      if (a == 0) continue;
      GF256::mul_acc(out.row(r), other.row(i), a);
    }
  }
  return out;
}

void Matrix::apply(std::span<const u8> x, std::span<u8> y) const {
  RAPIDS_REQUIRE(x.size() == cols_ && y.size() == rows_);
  for (u32 r = 0; r < rows_; ++r) {
    u8 acc = 0;
    const auto rr = row(r);
    for (u32 c = 0; c < cols_; ++c) acc = GF256::add(acc, GF256::mul(rr[c], x[c]));
    y[r] = acc;
  }
}

Matrix Matrix::inverted() const {
  RAPIDS_REQUIRE_MSG(rows_ == cols_, "inverted(): matrix must be square");
  const u32 n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);

  for (u32 col = 0; col < n; ++col) {
    // Find pivot.
    u32 pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw invariant_error("Matrix::inverted: singular matrix");
    if (pivot != col) {
      for (u32 c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Normalize pivot row.
    const u8 pinv = GF256::inv(a.at(col, col));
    GF256::mul_to(a.row(col), a.row(col), pinv);
    GF256::mul_to(inv.row(col), inv.row(col), pinv);
    // Eliminate other rows.
    for (u32 r = 0; r < n; ++r) {
      if (r == col) continue;
      const u8 f = a.at(r, col);
      if (f == 0) continue;
      GF256::mul_acc(a.row(r), a.row(col), f);
      GF256::mul_acc(inv.row(r), inv.row(col), f);
    }
  }
  return inv;
}

Matrix Matrix::select_rows(std::span<const u32> row_indices) const {
  Matrix out(static_cast<u32>(row_indices.size()), cols_);
  for (u32 i = 0; i < row_indices.size(); ++i) {
    RAPIDS_REQUIRE(row_indices[i] < rows_);
    auto dst = out.row(i);
    auto src = row(row_indices[i]);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

bool Matrix::singular() const {
  if (rows_ != cols_) return true;
  try {
    (void)inverted();
    return false;
  } catch (const invariant_error&) {
    return true;
  }
}

}  // namespace rapids::ec
