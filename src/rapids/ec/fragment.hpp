#pragma once

/// \file fragment.hpp
/// The unit of distribution: one erasure-coded fragment of one retrieval
/// level of one data object. Fragments carry a self-describing header (object
/// name, level, index, geometry) and a CRC-32C of the payload so damage is
/// detected before decode, mirroring what the paper stores via HDF5/ADIOS
/// self-describing files.

#include <optional>
#include <string>
#include <vector>

#include "rapids/util/bytes.hpp"
#include "rapids/util/common.hpp"

namespace rapids::ec {

/// Identifies a fragment within an object's EC layout.
struct FragmentId {
  std::string object_name;  ///< data object this fragment belongs to
  u32 level = 0;            ///< retrieval level index (0-based)
  u32 index = 0;            ///< fragment row index in the encode matrix (0..k+m-1)

  bool operator==(const FragmentId&) const = default;

  /// Canonical string key used by the metadata store:
  /// "frag/<object>/<level>/<index>".
  std::string key() const;
};

/// One erasure-coded fragment: id + EC geometry + payload + checksum.
struct Fragment {
  FragmentId id;
  u32 k = 0;             ///< data fragments in this level's code
  u32 m = 0;             ///< parity fragments in this level's code
  u64 level_bytes = 0;   ///< unpadded byte size of the encoded level payload
  u32 payload_crc = 0;   ///< CRC-32C of `payload`
  std::vector<u8> payload;

  /// True for rows < k (systematic data fragment), false for parity rows.
  bool is_data() const { return id.index < k; }

  /// Recompute the payload CRC and compare with the stored one.
  bool verify() const;

  /// Serialize header + payload to a self-contained byte buffer.
  Bytes serialize() const;

  /// Parse a buffer produced by serialize(). Throws io_error on corruption
  /// (bad magic, truncation); CRC mismatches are reported via verify().
  static Fragment deserialize(std::span<const std::byte> data);
};

/// Compute `payload_crc` over a payload.
u32 fragment_crc(std::span<const u8> payload);

}  // namespace rapids::ec
