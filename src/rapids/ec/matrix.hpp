#pragma once

/// \file matrix.hpp
/// Dense matrices over GF(2^8) and the constructions Reed-Solomon needs:
/// Vandermonde-derived systematic encode matrices, Cauchy matrices, and
/// Gauss-Jordan inversion (used to build the decode matrix from surviving
/// fragment rows).

#include <span>
#include <vector>

#include "rapids/ec/gf256.hpp"
#include "rapids/util/common.hpp"

namespace rapids::ec {

/// Row-major dense matrix over GF(2^8).
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(u32 rows, u32 cols) : rows_(rows), cols_(cols), data_(u64{rows} * cols, 0) {}

  u32 rows() const { return rows_; }
  u32 cols() const { return cols_; }

  u8& at(u32 r, u32 c) {
    RAPIDS_REQUIRE(r < rows_ && c < cols_);
    return data_[u64{r} * cols_ + c];
  }
  u8 at(u32 r, u32 c) const {
    RAPIDS_REQUIRE(r < rows_ && c < cols_);
    return data_[u64{r} * cols_ + c];
  }

  /// The whole matrix as one contiguous row-major span — rows r..r+q are the
  /// q*cols coefficients starting at r*cols, which is exactly the layout the
  /// fused simd::matrix_apply kernel consumes.
  std::span<const u8> flat() const { return {data_.data(), data_.size()}; }

  /// Borrow one row.
  std::span<const u8> row(u32 r) const {
    RAPIDS_REQUIRE(r < rows_);
    return {data_.data() + u64{r} * cols_, cols_};
  }
  std::span<u8> row(u32 r) {
    RAPIDS_REQUIRE(r < rows_);
    return {data_.data() + u64{r} * cols_, cols_};
  }

  bool operator==(const Matrix&) const = default;

  /// n x n identity.
  static Matrix identity(u32 n);

  /// rows x cols Vandermonde matrix V[r][c] = (r+1)^c over GF(2^8) —
  /// nonsingular for distinct evaluation points; any square submatrix of the
  /// *systematized* form stays invertible after the elimination below.
  static Matrix vandermonde(u32 rows, u32 cols);

  /// Systematic RS encode matrix with a Vandermonde tail: (k+m) x k whose top
  /// k rows are the identity (data fragments = data) and bottom m rows are
  /// derived by Gauss-Jordan elimination of an extended Vandermonde matrix,
  /// guaranteeing any k rows form an invertible matrix.
  static Matrix rs_vandermonde(u32 k, u32 m);

  /// Systematic RS encode matrix with a Cauchy tail: C[i][j] = 1/(x_i + y_j),
  /// x_i = i + k, y_j = j; requires k + m <= 256. Any k rows are invertible
  /// by the Cauchy determinant formula.
  static Matrix rs_cauchy(u32 k, u32 m);

  /// this * other.
  Matrix multiply(const Matrix& other) const;

  /// Matrix-vector product y = A x (x.size() == cols, y.size() == rows).
  void apply(std::span<const u8> x, std::span<u8> y) const;

  /// Gauss-Jordan inverse. Throws invariant_error if singular.
  Matrix inverted() const;

  /// Build a square matrix from the given rows of this matrix (for RS decode:
  /// pick the rows of the encode matrix matching surviving fragments).
  Matrix select_rows(std::span<const u32> row_indices) const;

  /// True if the matrix has no inverse (checked by attempting elimination).
  bool singular() const;

 private:
  u32 rows_ = 0;
  u32 cols_ = 0;
  std::vector<u8> data_;
};

}  // namespace rapids::ec
