#include "rapids/ec/reed_solomon.hpp"

#include <algorithm>
#include <cstring>

#include "rapids/parallel/thread_pool.hpp"

namespace rapids::ec {

namespace {

// Minimum stripe width (bytes) worth parallelizing; below this the pool
// overhead dominates the XOR/table kernels.
constexpr u64 kParallelStripe = 64 * 1024;

void for_each_stripe(u64 size, ThreadPool* pool,
                     const std::function<void(u64, u64)>& body) {
  if (pool == nullptr || size < 2 * kParallelStripe) {
    body(0, size);
    return;
  }
  pool->parallel_for_chunks(0, size, body, kParallelStripe);
}

}  // namespace

ReedSolomon::ReedSolomon(u32 k, u32 m, MatrixKind kind)
    : k_(k), m_(m), kind_(kind) {
  RAPIDS_REQUIRE_MSG(k >= 1 && m >= 1, "RS(k,m): need k >= 1 and m >= 1");
  RAPIDS_REQUIRE_MSG(k + m <= 255, "RS(k,m): k+m must be <= 255");
  encode_matrix_ = kind == MatrixKind::kVandermonde ? Matrix::rs_vandermonde(k, m)
                                                    : Matrix::rs_cauchy(k, m);
}

std::vector<Fragment> ReedSolomon::encode(std::span<const u8> data,
                                          const std::string& object_name,
                                          u32 level, ThreadPool* pool) const {
  const u64 frag_size = fragment_size(data.size());
  std::vector<Fragment> frags(n());
  for (u32 i = 0; i < n(); ++i) {
    Fragment& f = frags[i];
    f.id = FragmentId{object_name, level, i};
    f.k = k_;
    f.m = m_;
    f.level_bytes = data.size();
    f.payload.assign(frag_size, 0);
  }

  // Data fragments: contiguous slices of the (conceptually zero-padded) input.
  for (u32 i = 0; i < k_; ++i) {
    const u64 off = u64{i} * frag_size;
    if (off < data.size()) {
      const u64 len = std::min<u64>(frag_size, data.size() - off);
      std::memcpy(frags[i].payload.data(), data.data() + off, len);
    }
  }

  // Parity fragments: row (k+i) of the encode matrix applied to the data
  // fragments, striped across the pool for large payloads.
  for_each_stripe(frag_size, pool, [&](u64 lo, u64 hi) {
    for (u32 pi = 0; pi < m_; ++pi) {
      auto dst = std::span<u8>(frags[k_ + pi].payload).subspan(lo, hi - lo);
      const auto row = encode_matrix_.row(k_ + pi);
      for (u32 di = 0; di < k_; ++di) {
        auto src = std::span<const u8>(frags[di].payload).subspan(lo, hi - lo);
        GF256::mul_acc(dst, src, row[di]);
      }
    }
  });

  for (auto& f : frags) f.payload_crc = fragment_crc(f.payload);
  return frags;
}

std::vector<u8> ReedSolomon::decode_rows(std::span<const Fragment> fragments,
                                         u64* level_bytes, ThreadPool* pool) const {
  RAPIDS_REQUIRE_MSG(fragments.size() >= k_,
                     "RS decode: need at least k fragments");
  // Validate geometry + integrity; keep the first k distinct indices.
  std::vector<const Fragment*> chosen;
  std::vector<u32> rows;
  chosen.reserve(k_);
  rows.reserve(k_);
  const u64 frag_size = fragments[0].payload.size();
  *level_bytes = fragments[0].level_bytes;
  for (const Fragment& f : fragments) {
    RAPIDS_REQUIRE_MSG(f.k == k_ && f.m == m_, "RS decode: geometry mismatch");
    RAPIDS_REQUIRE_MSG(f.payload.size() == frag_size,
                       "RS decode: fragment size mismatch");
    RAPIDS_REQUIRE_MSG(f.level_bytes == *level_bytes,
                       "RS decode: level size mismatch");
    RAPIDS_REQUIRE_MSG(f.id.index < n(), "RS decode: fragment index out of range");
    RAPIDS_REQUIRE_MSG(f.verify(), "RS decode: fragment CRC mismatch (index " +
                                       std::to_string(f.id.index) + ")");
    if (std::find(rows.begin(), rows.end(), f.id.index) != rows.end()) continue;
    chosen.push_back(&f);
    rows.push_back(f.id.index);
    if (chosen.size() == k_) break;
  }
  RAPIDS_REQUIRE_MSG(chosen.size() == k_,
                     "RS decode: need k distinct fragment indices");

  // Fast path: all k systematic data fragments present.
  const bool all_data =
      std::all_of(rows.begin(), rows.end(), [this](u32 r) { return r < k_; });

  std::vector<u8> stripes(u64{k_} * frag_size);
  auto stripe = [&](u32 i) {
    return std::span<u8>(stripes.data() + u64{i} * frag_size, frag_size);
  };

  if (all_data) {
    for (u32 i = 0; i < k_; ++i) {
      // Place each data fragment at its own row position.
      auto dst = stripe(rows[i]);
      std::memcpy(dst.data(), chosen[i]->payload.data(), frag_size);
    }
  } else {
    const Matrix sub = encode_matrix_.select_rows(rows);
    const Matrix dec = sub.inverted();
    for_each_stripe(frag_size, pool, [&](u64 lo, u64 hi) {
      for (u32 out = 0; out < k_; ++out) {
        auto dst = stripe(out).subspan(lo, hi - lo);
        std::fill(dst.begin(), dst.end(), u8{0});
        const auto drow = dec.row(out);
        for (u32 in = 0; in < k_; ++in) {
          auto src =
              std::span<const u8>(chosen[in]->payload).subspan(lo, hi - lo);
          GF256::mul_acc(dst, src, drow[in]);
        }
      }
    });
  }

  return stripes;
}

std::vector<u8> ReedSolomon::decode(std::span<const Fragment> fragments,
                                    ThreadPool* pool) const {
  u64 level_bytes = 0;
  std::vector<u8> stripes = decode_rows(fragments, &level_bytes, pool);
  stripes.resize(level_bytes);  // strip zero padding
  return stripes;
}

Fragment ReedSolomon::reconstruct_fragment(std::span<const Fragment> survivors,
                                           u32 missing_index,
                                           ThreadPool* pool) const {
  RAPIDS_REQUIRE_MSG(missing_index < n(), "reconstruct_fragment: bad index");
  u64 level_bytes = 0;
  std::vector<u8> stripes = decode_rows(survivors, &level_bytes, pool);
  const u64 frag_size = fragment_size(level_bytes);

  Fragment out;
  out.id = survivors[0].id;
  out.id.index = missing_index;
  out.k = k_;
  out.m = m_;
  out.level_bytes = level_bytes;
  out.payload.assign(frag_size, 0);

  if (missing_index < k_) {
    std::memcpy(out.payload.data(), stripes.data() + u64{missing_index} * frag_size,
                frag_size);
  } else {
    const auto row = encode_matrix_.row(missing_index);
    for_each_stripe(frag_size, pool, [&](u64 lo, u64 hi) {
      auto dst = std::span<u8>(out.payload).subspan(lo, hi - lo);
      for (u32 di = 0; di < k_; ++di) {
        auto src = std::span<const u8>(stripes.data() + u64{di} * frag_size,
                                       frag_size)
                       .subspan(lo, hi - lo);
        GF256::mul_acc(dst, src, row[di]);
      }
    });
  }
  out.payload_crc = fragment_crc(out.payload);
  return out;
}

}  // namespace rapids::ec
